package dmac_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dmac"
)

// TestPublicAPIQuickstart exercises the README quick-start path end to end
// through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	const rows, cols, bs = 300, 120, 32
	s := dmac.NewSession(dmac.PlannerDMac, dmac.ClusterConfig{Workers: 4, LocalParallelism: 2}, bs)
	v := dmac.SparseUniform(1, rows, cols, bs, 0.05)
	if err := s.Bind("V", v); err != nil {
		t.Fatal(err)
	}
	p := dmac.NewProgram()
	V := p.Var("V", rows, cols, 0.05)
	gram := p.Mul(V.T(), V)
	p.Assign("G", gram)
	p.Sum("total", gram)

	plan, err := s.Plan(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "compute") {
		t.Error("plan explain missing compute op")
	}
	m, err := s.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.CommBytes <= 0 || m.Stages < 2 {
		t.Errorf("metrics: %+v", m)
	}
	g, ok := s.Grid("G")
	if !ok || g.Rows() != cols || g.Cols() != cols {
		t.Fatalf("G missing or wrong shape")
	}
	// Verify the Gram matrix numerically at a few cells.
	total, _ := s.Scalar("total")
	check := 0.0
	for i := 0; i < cols; i++ {
		for j := 0; j < cols; j++ {
			check += g.At(i, j)
		}
	}
	if math.Abs(total-check) > 1e-6 {
		t.Errorf("sum scalar %v != matrix sum %v", total, check)
	}
	// Symmetry of VᵀV.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if math.Abs(g.At(i, j)-g.At(j, i)) > 1e-9 {
				t.Fatalf("Gram not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

// TestFacadeHelpers covers the re-exported constructors and registries.
func TestFacadeHelpers(t *testing.T) {
	if got := dmac.ChooseBlockSize(1000, 1000, 8, 4); got < 1 || got > 1000 {
		t.Errorf("ChooseBlockSize = %d", got)
	}
	g := dmac.FromDense(2, 2, 2, []float64{1, 2, 3, 4})
	if g.At(1, 0) != 3 {
		t.Error("FromDense wrong")
	}
	sp := dmac.FromCoords(3, 3, 2, []dmac.Coord{{Row: 2, Col: 2, Val: 5}})
	if sp.At(2, 2) != 5 {
		t.Error("FromCoords wrong")
	}
	if len(dmac.Graphs) != 4 {
		t.Error("graph registry incomplete")
	}
	if _, ok := dmac.GraphByName("LiveJournal"); !ok {
		t.Error("GraphByName failed")
	}
	if dmac.Netflix.Movies != 17770 {
		t.Error("Netflix spec wrong")
	}
	link := dmac.RowNormalize(dmac.PowerLawGraph(1, 100, 4, 32))
	if link.Rows() != 100 {
		t.Error("RowNormalize wrong shape")
	}
}

// TestFacadeIO exercises the re-exported I/O helpers.
func TestFacadeIO(t *testing.T) {
	g := dmac.SparseUniform(1, 20, 15, 8, 0.1)
	var mm strings.Builder
	if err := dmac.WriteMatrixMarket(&mm, g); err != nil {
		t.Fatal(err)
	}
	back, err := dmac.ReadMatrixMarket(strings.NewReader(mm.String()), 8)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != g.NNZ() {
		t.Error("MatrixMarket round trip lost entries")
	}
	var bin bytes.Buffer
	if err := dmac.WriteGrid(&bin, g); err != nil {
		t.Fatal(err)
	}
	back2, err := dmac.ReadGrid(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if back2.NNZ() != g.NNZ() || back2.BlockSize() != 8 {
		t.Error("binary round trip mismatch")
	}
}

// TestFacadeUFuncAndExtras covers the element-wise function path and the
// extension applications through the facade.
func TestFacadeUFuncAndExtras(t *testing.T) {
	const bs = 8
	s := dmac.NewSession(dmac.PlannerDMac, dmac.ScaledConfig(2, 2), bs)
	v := dmac.DenseRandom(1, 24, 6, bs)
	if err := s.Bind("V", v); err != nil {
		t.Fatal(err)
	}
	p := dmac.NewProgram()
	V := p.Var("V", 24, 6, 1)
	p.Assign("S", p.Func(dmac.FuncSigmoid, V))
	if _, err := s.Run(p, nil); err != nil {
		t.Fatal(err)
	}
	g, _ := s.Grid("S")
	for i := 0; i < 24; i++ {
		for j := 0; j < 6; j++ {
			if got := g.At(i, j); got <= 0 || got >= 1 {
				t.Fatalf("sigmoid output %v outside (0,1)", got)
			}
		}
	}
	// Triangle counting through the facade.
	s2 := dmac.NewSession(dmac.PlannerDMac, dmac.ScaledConfig(2, 2), bs)
	adj := dmac.Symmetrize(dmac.PowerLawGraph(3, 40, 4, bs))
	if _, tri, err := dmac.TriangleCount(s2, adj); err != nil || tri < 0 {
		t.Errorf("TriangleCount: %v, %v", tri, err)
	}
	// Logistic regression through the facade.
	s3 := dmac.NewSession(dmac.PlannerDMac, dmac.ScaledConfig(2, 2), bs)
	fv, fy, _ := dmac.LabeledData(9, 60, 10, bs, 0.3)
	if _, err := dmac.LogReg(s3, fv, fy, 0.3, 0, 3, 1); err != nil {
		t.Errorf("LogReg: %v", err)
	}
}

// TestFacadeApps runs each bundled application once through the facade.
func TestFacadeApps(t *testing.T) {
	cfg := dmac.ClusterConfig{Workers: 2, LocalParallelism: 2}
	const bs = 16

	s := dmac.NewSession(dmac.PlannerDMac, cfg, bs)
	if _, err := dmac.GNMF(s, dmac.Ratings(1, 40, 50, bs, 0.2), 4, 2, 2); err != nil {
		t.Errorf("GNMF: %v", err)
	}
	s = dmac.NewSession(dmac.PlannerDMac, cfg, bs)
	if _, err := dmac.PageRank(s, dmac.PowerLawGraph(2, 80, 4, bs), 3, 3); err != nil {
		t.Errorf("PageRank: %v", err)
	}
	s = dmac.NewSession(dmac.PlannerDMac, cfg, bs)
	if _, err := dmac.LinReg(s, dmac.SparseUniform(3, 60, 20, bs, 0.2), dmac.DenseRandom(4, 60, 1, bs), 1e-6, 2, 5); err != nil {
		t.Errorf("LinReg: %v", err)
	}
	s = dmac.NewSession(dmac.PlannerDMac, cfg, bs)
	if _, err := dmac.CF(s, dmac.Ratings(5, 30, 40, bs, 0.2)); err != nil {
		t.Errorf("CF: %v", err)
	}
	s = dmac.NewSession(dmac.PlannerDMac, cfg, bs)
	if _, sv, err := dmac.SVD(s, dmac.Ratings(6, 30, 12, bs, 0.3), 6, 7); err != nil || len(sv) == 0 {
		t.Errorf("SVD: %v (%d values)", err, len(sv))
	}
}
