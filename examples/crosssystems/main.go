// Cross-system comparison (Table 4): one matrix multiplication, sparse and
// dense, across the ScaLAPACK and SciDB simulations and the two DMac-family
// engines — all on the same calibrated time model.
package main

import (
	"flag"
	"fmt"
	"log"

	"dmac"
	"dmac/internal/bench"
)

func main() {
	scale := flag.Int("scale", 40, "Netflix scale denominator")
	flag.Parse()

	movies := dmac.Netflix.Movies / *scale
	users := dmac.Netflix.Users / *scale
	fmt.Printf("V (%dx%d) %%*%% H: sparse (s=%.2f) vs dense V, 8 workers x 8 threads\n\n",
		movies, users, dmac.Netflix.Sparsity)
	rows, err := bench.Table4(*scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %12s %12s\n", "system", "MM-Sparse s", "MM-Dense s")
	for _, r := range rows {
		fmt.Printf("%-12s %12.3f %12.3f\n", r.System, r.SparseSec, r.DenseSec)
	}
	fmt.Println("\npaper (Table 4): ScaLAPACK 107s/116s, SciDB 695s/735s,")
	fmt.Println("SystemML-S 18.5s/133s, DMac 17s/121s — same ordering and")
	fmt.Println("the same sparsity-(in)sensitivity per system.")
}
