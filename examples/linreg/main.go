// Linear regression by conjugate gradient (Code 4): the driver computes
// alpha/beta from cluster-side aggregates each iteration. Prints the
// residual convergence and the engine comparison of Figure 9(b)/10.
package main

import (
	"flag"
	"fmt"
	"log"

	"dmac"
)

func main() {
	rows := flag.Int("rows", 20000, "training points")
	cols := flag.Int("cols", 500, "features")
	nnzPerRow := flag.Int("nnz", 10, "non-zeros per training point")
	iters := flag.Int("iters", 10, "CG iterations")
	flag.Parse()

	sparsity := float64(*nnzPerRow) / float64(*cols)
	bs := dmac.ChooseBlockSize(*rows, *cols, 8, 4)
	fmt.Printf("CG linear regression: V %dx%d (%.4f sparse), %d iterations\n\n",
		*rows, *cols, sparsity, *iters)

	for _, planner := range []dmac.Planner{dmac.PlannerDMac, dmac.PlannerSystemMLS} {
		s := dmac.NewSession(planner, dmac.ScaledConfig(4, 8), bs)
		v := dmac.SparseUniform(3, *rows, *cols, bs, sparsity)
		y := dmac.DenseRandom(4, *rows, 1, bs)
		res, err := dmac.LinReg(s, v, y, 1e-6, *iters, 5)
		if err != nil {
			log.Fatal(err)
		}
		t := res.Total()
		fmt.Printf("%-11s model time %7.4fs  comm %8.3f MB  final residual² %.6g\n",
			planner, t.ModelSeconds, float64(t.CommBytes)/1e6, res.Scalars["norm_r2"])
		if planner == dmac.PlannerDMac {
			fmt.Println("            per-iteration communication (MB):")
			for i, m := range res.PerIteration {
				fmt.Printf("              iter %2d: %8.3f\n", i+1, float64(m.CommBytes)/1e6)
			}
		}
	}
	fmt.Println("\nDMac partitions V once; the baseline repartitions it twice per iteration (Section 6.5).")
}
