// Logistic regression by gradient descent: demonstrates the element-wise
// function operator (sigmoid / log) flowing through the dependency-aware
// planner, and the engine comparison on an iterative classifier.
package main

import (
	"flag"
	"fmt"
	"log"

	"dmac"
)

func main() {
	n := flag.Int("n", 20000, "training points")
	d := flag.Int("d", 200, "features")
	iters := flag.Int("iters", 20, "gradient steps")
	lr := flag.Float64("lr", 0.5, "learning rate")
	flag.Parse()

	bs := dmac.ChooseBlockSize(*n, *d, 8, 4)
	v, y, _ := dmac.LabeledData(17, *n, *d, bs, 0.05)
	fmt.Printf("logistic regression: %d points, %d features, %d steps\n\n", *n, *d, *iters)

	for _, planner := range []dmac.Planner{dmac.PlannerDMac, dmac.PlannerSystemMLS} {
		s := dmac.NewSession(planner, dmac.ScaledConfig(4, 8), bs)
		res, err := dmac.LogReg(s, v.Clone(), y.Clone(), *lr, 1e-4, *iters, 3)
		if err != nil {
			log.Fatal(err)
		}
		t := res.Total()
		fmt.Printf("%-11s model time %7.4fs  comm %8.3f MB  final NLL %.4f\n",
			planner, t.ModelSeconds, float64(t.CommBytes)/1e6, res.Scalars["nll"])
		if planner == dmac.PlannerDMac {
			w, _ := s.Grid("w")
			fmt.Printf("            learned %d weights; first three: %.4f %.4f %.4f\n\n",
				w.Rows(), w.At(0, 0), w.At(1, 0), w.At(2, 0))
		}
	}
}
