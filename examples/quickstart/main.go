// Quickstart: build a small matrix program, run it on the dependency-aware
// DMac planner and on the SystemML-S baseline, and compare the communication
// each one needs.
package main

import (
	"fmt"
	"log"

	"dmac"
)

func main() {
	const (
		rows, cols = 2000, 800
		sparsity   = 0.01
		workers    = 4
		threads    = 8
	)
	bs := dmac.ChooseBlockSize(rows, cols, threads, workers)
	fmt.Printf("block size chosen by Eq. 3: %d\n\n", bs)

	for _, planner := range []dmac.Planner{dmac.PlannerDMac, dmac.PlannerSystemMLS} {
		s := dmac.NewSession(planner, dmac.ScaledConfig(workers, threads), bs)
		v := dmac.SparseUniform(1, rows, cols, bs, sparsity)
		if err := s.Bind("V", v); err != nil {
			log.Fatal(err)
		}

		// Gram = Vᵀ V, then scale it; the transposed read is free for DMac
		// (Transpose dependency) but a shuffle for the baseline.
		p := dmac.NewProgram()
		V := p.Var("V", rows, cols, sparsity)
		gram := p.Mul(V.T(), V)
		p.Assign("G", p.Scalar(dmac.ScalarMul, gram, 0.5))
		p.Sum("total", gram)

		// Inspect the plan before running it.
		plan, err := s.Plan(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n%s\n", planner, plan)

		m, err := s.Run(p, nil)
		if err != nil {
			log.Fatal(err)
		}
		total, _ := s.Scalar("total")
		g, _ := s.Grid("G")
		fmt.Printf("result G is %dx%d, sum(VᵀV) = %.2f\n", g.Rows(), g.Cols(), total)
		fmt.Printf("communication: %.2f MB in %d shuffles across %d stages\n\n",
			float64(m.CommBytes)/1e6, m.CommEvents, m.Stages)
	}
}
