// PageRank runs the Code 2 iteration on a synthetic stand-in for one of the
// paper's graph datasets and prints the top-ranked nodes plus the
// communication profile per engine.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"dmac"
)

func main() {
	graph := flag.String("graph", "soc-pokec", "dataset: soc-pokec | cit-Patents | LiveJournal | Wikipedia")
	scale := flag.Int("scale", 1000, "scale denominator")
	iters := flag.Int("iters", 20, "iterations")
	flag.Parse()

	spec, ok := dmac.GraphByName(*graph)
	if !ok {
		log.Fatalf("unknown graph %q", *graph)
	}
	nodes := spec.ScaledNodes(*scale)
	bs := dmac.ChooseBlockSize(nodes, nodes, 8, 4)
	fmt.Printf("PageRank on %s stand-in: %d nodes (paper: %d), %d iterations\n\n",
		spec.Name, nodes, spec.PaperNodes, *iters)

	var ranks []float64
	for _, planner := range []dmac.Planner{dmac.PlannerDMac, dmac.PlannerSystemMLS} {
		s := dmac.NewSession(planner, dmac.ScaledConfig(4, 8), bs)
		adj := spec.Generate(*scale, bs).Adjacency
		res, err := dmac.PageRank(s, adj, *iters, 7)
		if err != nil {
			log.Fatal(err)
		}
		t := res.Total()
		fmt.Printf("%-11s model time %7.4fs  comm %8.3f MB  shuffles %d\n",
			planner, t.ModelSeconds, float64(t.CommBytes)/1e6, t.CommEvents)
		if planner == dmac.PlannerDMac {
			r, _ := s.Grid("rank")
			ranks = r.ToDense()
		}
	}

	type nodeRank struct {
		node int
		rank float64
	}
	top := make([]nodeRank, len(ranks))
	for i, r := range ranks {
		top[i] = nodeRank{i, r}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Println("\ntop 10 nodes by rank:")
	for i := 0; i < 10 && i < len(top); i++ {
		fmt.Printf("  #%-2d node %-6d rank %.6f\n", i+1, top[i].node, top[i].rank)
	}
	sum := 0.0
	for _, r := range ranks {
		sum += r
	}
	fmt.Printf("rank mass: %.6f (converges to 1)\n", sum)
}
