// Recommender: item-based collaborative filtering (Code 3) on Netflix-shaped
// ratings. Prints the top predicted items for a user and the engine
// comparison.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"dmac"
)

func main() {
	scale := flag.Int("scale", 40, "Netflix scale denominator")
	user := flag.Int("user", 0, "user column to recommend for")
	flag.Parse()

	movies := dmac.Netflix.Movies / *scale
	users := dmac.Netflix.Users / *scale
	bs := dmac.ChooseBlockSize(movies, users, 8, 4)
	fmt.Printf("CF on %d items x %d users (sparsity %.3f)\n\n", movies, users, dmac.Netflix.Sparsity)

	var predictions *dmac.Grid
	var ratings *dmac.Grid
	for _, planner := range []dmac.Planner{dmac.PlannerDMac, dmac.PlannerSystemMLS} {
		s := dmac.NewSession(planner, dmac.ScaledConfig(4, 8), bs)
		_, _, r := dmac.Netflix.Scaled(*scale, bs)
		res, err := dmac.CF(s, r)
		if err != nil {
			log.Fatal(err)
		}
		t := res.Total()
		fmt.Printf("%-11s model time %7.4fs  comm %8.3f MB  shuffles %d\n",
			planner, t.ModelSeconds, float64(t.CommBytes)/1e6, t.CommEvents)
		if planner == dmac.PlannerDMac {
			predictions, _ = s.Grid("predict")
			ratings = r
		}
	}

	type scored struct {
		item  int
		score float64
	}
	var unseen []scored
	for i := 0; i < movies; i++ {
		if ratings.At(i, *user) == 0 { // not yet rated by this user
			unseen = append(unseen, scored{i, predictions.At(i, *user)})
		}
	}
	sort.Slice(unseen, func(i, j int) bool { return unseen[i].score > unseen[j].score })
	fmt.Printf("\ntop 5 recommendations for user %d (unrated items):\n", *user)
	for i := 0; i < 5 && i < len(unseen); i++ {
		fmt.Printf("  item %-6d score %.6f\n", unseen[i].item, unseen[i].score)
	}
}
