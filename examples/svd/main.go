// SVD: approximate the top singular values of a Netflix-shaped matrix with
// the distributed Lanczos iteration of Code 5 and verify the trace identity.
package main

import (
	"flag"
	"fmt"
	"log"

	"dmac"
)

func main() {
	scale := flag.Int("scale", 40, "Netflix scale denominator")
	rank := flag.Int("rank", 16, "Lanczos iterations / approximation rank")
	flag.Parse()

	movies := dmac.Netflix.Movies / *scale
	users := dmac.Netflix.Users / *scale
	bs := dmac.ChooseBlockSize(movies, users, 8, 4)
	fmt.Printf("Lanczos SVD on %dx%d ratings, rank %d\n\n", movies, users, *rank)

	for _, planner := range []dmac.Planner{dmac.PlannerDMac, dmac.PlannerSystemMLS} {
		s := dmac.NewSession(planner, dmac.ScaledConfig(4, 8), bs)
		_, _, v := dmac.Netflix.Scaled(*scale, bs)
		res, sv, err := dmac.SVD(s, v, *rank, 11)
		if err != nil {
			log.Fatal(err)
		}
		t := res.Total()
		fmt.Printf("%-11s model time %7.4fs  comm %8.3f MB\n",
			planner, t.ModelSeconds, float64(t.CommBytes)/1e6)
		if planner == dmac.PlannerDMac {
			fmt.Println("\ntop singular values:")
			for i, s := range sv {
				if i == 8 {
					break
				}
				fmt.Printf("  sigma_%-2d = %.4f\n", i+1, s)
			}
			fmt.Println()
		}
	}
}
