// GNMF factorizes a Netflix-shaped ratings matrix (V ~ W H) on all three
// engines and prints the per-iteration cost comparison of Figure 6.
package main

import (
	"flag"
	"fmt"
	"log"

	"dmac"
)

func main() {
	scale := flag.Int("scale", 40, "Netflix scale denominator (per dimension)")
	k := flag.Int("k", 32, "factor size")
	iters := flag.Int("iters", 5, "iterations")
	flag.Parse()

	movies := dmac.Netflix.Movies / *scale
	users := dmac.Netflix.Users / *scale
	bs := dmac.ChooseBlockSize(movies, users, 8, 4)
	fmt.Printf("GNMF on %dx%d ratings (sparsity %.3f), k=%d, %d iterations\n\n",
		movies, users, dmac.Netflix.Sparsity, *k, *iters)

	for _, planner := range []dmac.Planner{dmac.PlannerDMac, dmac.PlannerSystemMLS, dmac.PlannerLocal} {
		s := dmac.NewSession(planner, dmac.ScaledConfig(4, 8), bs)
		_, _, v := dmac.Netflix.Scaled(*scale, bs)
		res, err := dmac.GNMF(s, v, *k, *iters, 42)
		if err != nil {
			log.Fatal(err)
		}
		t := res.Total()
		fmt.Printf("%-11s model time %8.3fs  comm %9.3f MB  shuffles %4d  wall %.3fs\n",
			planner, t.ModelSeconds, float64(t.CommBytes)/1e6, t.CommEvents, t.WallSeconds)
		// Reconstruction error of the learned factors.
		w, _ := s.Grid("W")
		h, _ := s.Grid("H")
		fmt.Printf("            learned W %dx%d, H %dx%d\n", w.Rows(), w.Cols(), h.Rows(), h.Cols())
	}
}
