package dmac

import (
	"io"

	"dmac/internal/mio"
)

// ReadMatrixMarket parses a MatrixMarket stream (coordinate or array format;
// real, integer or pattern fields; general or symmetric) into a grid with
// the given block size.
func ReadMatrixMarket(r io.Reader, blockSize int) (*Grid, error) {
	return mio.ReadMatrixMarket(r, blockSize)
}

// WriteMatrixMarket writes a grid in MatrixMarket format, picking the
// coordinate or array variant by the grid's density.
func WriteMatrixMarket(w io.Writer, g *Grid) error {
	return mio.WriteMatrixMarket(w, g)
}

// WriteGrid serializes a grid to DMac's compact binary format, preserving
// block representations exactly (suitable for checkpointing session
// variables).
func WriteGrid(w io.Writer, g *Grid) error { return mio.WriteGrid(w, g) }

// WriteGridChecked serializes a grid like WriteGrid but in the checksummed
// format (version 2): every block carries a CRC32C that ReadGrid verifies on
// the way back in, failing with ErrChecksum on any bit damage. The session
// checkpoint manager writes its snapshots in this format.
func WriteGridChecked(w io.Writer, g *Grid) error { return mio.WriteGridChecked(w, g) }

// ReadGrid deserializes a grid written by WriteGrid or WriteGridChecked
// (the format version is read from the header).
func ReadGrid(r io.Reader) (*Grid, error) { return mio.ReadGrid(r) }

// ErrChecksum is the error ReadGrid wraps when a checksummed block's stored
// CRC32C does not match its bytes.
var ErrChecksum = mio.ErrChecksum
