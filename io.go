package dmac

import (
	"io"

	"dmac/internal/mio"
)

// ReadMatrixMarket parses a MatrixMarket stream (coordinate or array format;
// real, integer or pattern fields; general or symmetric) into a grid with
// the given block size.
func ReadMatrixMarket(r io.Reader, blockSize int) (*Grid, error) {
	return mio.ReadMatrixMarket(r, blockSize)
}

// WriteMatrixMarket writes a grid in MatrixMarket format, picking the
// coordinate or array variant by the grid's density.
func WriteMatrixMarket(w io.Writer, g *Grid) error {
	return mio.WriteMatrixMarket(w, g)
}

// WriteGrid serializes a grid to DMac's compact binary format, preserving
// block representations exactly (suitable for checkpointing session
// variables).
func WriteGrid(w io.Writer, g *Grid) error { return mio.WriteGrid(w, g) }

// ReadGrid deserializes a grid written by WriteGrid.
func ReadGrid(r io.Reader) (*Grid, error) { return mio.ReadGrid(r) }
