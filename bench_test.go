package dmac

// One testing.B benchmark per table and figure of the paper's evaluation
// (Section 6). Each benchmark regenerates its experiment through the harness
// in internal/bench and reports the paper-relevant quantities as custom
// metrics (modelled seconds, communicated bytes, speedups), so
// `go test -bench=. -benchmem` reproduces the whole evaluation. The
// cmd/dmacbench tool prints the same experiments as full tables.

import (
	"testing"

	"dmac/internal/bench"
)

// BenchmarkFig6aGNMFTime reproduces Figure 6(a): accumulated GNMF execution
// time over 10 iterations for DMac, SystemML-S and the single-machine R
// reference.
func BenchmarkFig6aGNMFTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig6(10, 40, 32)
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.DMac) - 1
		b.ReportMetric(res.DMac[last].AccTimeSec, "dmac-s")
		b.ReportMetric(res.SystemMLS[last].AccTimeSec, "systemml-s")
		b.ReportMetric(res.R[last].AccTimeSec, "r-s")
	}
}

// BenchmarkFig6bGNMFComm reproduces Figure 6(b): accumulated communication
// of the same GNMF run, plus the communication share of execution time
// discussed in Section 6.2 (paper: 6% vs 44%).
func BenchmarkFig6bGNMFComm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.Fig6(10, 40, 32)
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.DMac) - 1
		b.ReportMetric(res.DMac[last].AccCommGB*1e3, "dmac-MB")
		b.ReportMetric(res.SystemMLS[last].AccCommGB*1e3, "systemml-MB")
		b.ReportMetric(100*res.DMacCommShare, "dmac-comm-%")
		b.ReportMetric(100*res.SysCommShare, "systemml-comm-%")
	}
}

// BenchmarkFig7InPlaceVsBuffer reproduces Figure 7: peak memory of the two
// local aggregation strategies on the four graph datasets.
func BenchmarkFig7InPlaceVsBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7(nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.BufferPeak)/float64(r.InPlacePeak), r.Graph+"-buffer/inplace")
		}
	}
}

// BenchmarkFig8BlockSize reproduces Figure 8: the block-size sweep on
// soc-pokec, reporting the best block size found against the Eq. 3
// threshold.
func BenchmarkFig8BlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, threshold, err := bench.Fig8("soc-pokec", 4000, nil)
		if err != nil {
			b.Fatal(err)
		}
		best := points[0]
		for _, p := range points {
			if p.ModelSec < best.ModelSec {
				best = p
			}
		}
		b.ReportMetric(float64(best.BlockSize), "best-bs")
		b.ReportMetric(threshold, "eq3-threshold")
		b.ReportMetric(float64(best.PeakMem)/1e6, "best-peak-MB")
	}
}

// BenchmarkFig9aPageRank reproduces Figure 9(a): steady-state per-iteration
// PageRank time on the four graph datasets.
func BenchmarkFig9aPageRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig9a(nil, 5)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.SysSec/r.DMacSec, r.Graph+"-speedup")
		}
	}
}

// BenchmarkFig9bApps reproduces Figure 9(b): LR / CF / SVD time normalized
// to DMac = 1.
func BenchmarkFig9bApps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig9b()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.NormalizedSys, r.App+"-systemml-ratio")
		}
	}
}

// BenchmarkFig10abDataScaling reproduces Figures 10(a,b): per-iteration time
// of GNMF and LinReg as the non-zero count of V grows.
func BenchmarkFig10abDataScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gnmf, linreg, err := bench.Fig10ab(nil, 0, 0, 3)
		if err != nil {
			b.Fatal(err)
		}
		lastG, lastL := gnmf[len(gnmf)-1], linreg[len(linreg)-1]
		b.ReportMetric(lastG.SysSec/lastG.DMacSec, "gnmf-gap-at-max")
		b.ReportMetric(lastL.SysSec/lastL.DMacSec, "linreg-gap-at-max")
	}
}

// BenchmarkFig10cdWorkerScaling reproduces Figures 10(c,d): per-iteration
// time of GNMF and LinReg as the worker count grows from 4 to 24 (the paper
// reports a 3.25x GNMF speedup from 4 to 20 workers).
func BenchmarkFig10cdWorkerScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gnmf, linreg, err := bench.Fig10cd(nil, 0, 0, 0, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(gnmf[0].DMacSec/gnmf[len(gnmf)-1].DMacSec, "gnmf-dmac-speedup")
		b.ReportMetric(linreg[0].DMacSec/linreg[len(linreg)-1].DMacSec, "linreg-dmac-speedup")
	}
}

// BenchmarkTable4MM reproduces Table 4: one sparse and one dense matrix
// multiplication across ScaLAPACK, SciDB, SystemML-S and DMac.
func BenchmarkTable4MM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4(40)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.SparseSec*1e3, r.System+"-sparse-ms")
			b.ReportMetric(r.DenseSec*1e3, r.System+"-dense-ms")
		}
	}
}

// BenchmarkAblationHeuristics quantifies the planner's design choices
// (extension): communication with each heuristic disabled, on GNMF and on
// the micro-workloads that isolate the two heuristics.
func BenchmarkAblationHeuristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gnmf, err := bench.AblationGNMF(3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(gnmf[3].CommBytes)/float64(gnmf[0].CommBytes), "gnmf-noCPMM-ratio")
		b.ReportMetric(float64(gnmf[4].CommBytes)/float64(gnmf[0].CommBytes), "gnmf-baseline-ratio")
		pullUp, reassign, err := bench.AblationMicro()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pullUp[1].CommBytes)/float64(pullUp[0].CommBytes), "pullup-off-ratio")
		b.ReportMetric(float64(reassign[1].CommBytes)/float64(reassign[0].CommBytes), "reassign-off-ratio")
	}
}
