// dmacbench regenerates the paper's evaluation: every figure and table of
// Section 6, plus the heuristic ablation study. Each experiment prints a
// text table whose rows/series correspond to the paper's plot.
//
// Usage:
//
//	dmacbench -exp all
//	dmacbench -exp fig6 -iters 10
//	dmacbench -exp fig8 -graph LiveJournal
//	dmacbench -chaos
//	dmacbench -trace out.json -metrics-out metrics.json
//	dmacbench -kernels -kernel-sizes 64,128,256,512 -kernel-workers 1,2,4,8 -kernels-out BENCH_kernels.json
//	dmacbench -serve -serve-tenants 3 -serve-jobs 8 -serve-out BENCH_serve.json
//	dmacbench -serve -open-loop -serve-out BENCH_autoscale.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"dmac/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig6 | fig7 | fig8 | fig9a | fig9b | fig10ab | fig10cd | table3 | table4 | ablation | chaos | checkpoint | rewrite | all")
	iters := flag.Int("iters", 10, "iterations for iterative workloads")
	scale := flag.Int("scale", 40, "Netflix scale denominator for fig6/table4")
	graph := flag.String("graph", "soc-pokec", "graph for fig8")
	chaos := flag.Bool("chaos", false, "run only the fault-injection chaos sweep")
	chaosCorrupt := flag.Bool("chaos-corrupt", false, "with -chaos, restrict the sweep to fault plans that inject block corruption (the CI smoke configuration)")
	chaosWire := flag.Bool("chaos-wire", false, "with -chaos, route every faulted cell over a real loopback TCP data plane (in-process workers), so fault plans exercise the wire transport")
	checkpointDir := flag.String("checkpoint-dir", "", "checkpoint directory for the chaos sweep and the checkpoint experiment (default: a temp dir for the checkpoint experiment, disabled for chaos)")
	timeout := flag.Duration("timeout", 0, "deadline for the chaos sweep and checkpoint experiment (0 = none); runs abort cleanly between stages and block tasks")
	tracePath := flag.String("trace", "", "run a traced workload and write Chrome trace JSON to this path (skips -exp)")
	traceApp := flag.String("trace-app", "pagerank", "application the -trace run executes: pagerank | gnmf | linreg")
	metricsPath := flag.String("metrics-out", "", "with -trace, also write the metrics registry dump to this path")
	kernels := flag.Bool("kernels", false, "run only the local kernel microbenchmarks")
	kernelSizes := flag.String("kernel-sizes", "64,128,256,512", "comma-separated square block sizes for -kernels")
	kernelWorkers := flag.String("kernel-workers", "1,2,4,8", "comma-separated kernel worker counts for the -kernels multi-core curve")
	kernelsOut := flag.String("kernels-out", "", "with -kernels, also write the report JSON to this path")
	serveMode := flag.Bool("serve", false, "run only the closed-loop serve load benchmark (K tenants x M jobs against an in-process job service)")
	serveTenants := flag.Int("serve-tenants", 3, "with -serve, concurrent tenants (K)")
	serveJobs := flag.Int("serve-jobs", 8, "with -serve, jobs per tenant (M)")
	serveSlots := flag.Int("serve-slots", 3, "with -serve, engine pool size")
	serveSeed := flag.Int64("serve-seed", 1, "with -serve, workload-mix seed")
	serveOut := flag.String("serve-out", "", "with -serve, also write the report JSON to this path")
	openLoop := flag.Bool("open-loop", false, "with -serve, run the open-loop (Poisson-arrival) autoscaler ramp instead of the closed-loop load: warm -> 10x surge -> cool, autoscaled vs fixed 1-slot pool")
	surgeFactor := flag.Float64("surge-factor", 10, "with -open-loop, surge-to-base arrival-rate ratio")
	openLoopMax := flag.Int("open-loop-max-slots", 6, "with -open-loop, autoscaled pool upper bound")
	rewriteOut := flag.String("rewrite-out", "", "with -exp rewrite, also write the A/B report JSON to this path")
	flag.Parse()

	// Validate the sweep's fault plans up front: a malformed plan should die
	// with a descriptive error here, not as silently odd fault behaviour
	// deep inside a run.
	for _, cp := range bench.ChaosPlans() {
		if err := cp.Plan.Validate(); err != nil {
			log.Fatalf("fault plan %s: %v", cp.Name, err)
		}
	}
	chaosOpts := bench.ChaosOptions{
		CheckpointDir: *checkpointDir,
		CorruptOnly:   *chaosCorrupt,
		Timeout:       *timeout,
		Wire:          *chaosWire,
	}

	w := os.Stdout
	if *kernels {
		if err := runKernels(w, *kernelSizes, *kernelWorkers, *kernelsOut); err != nil {
			log.Fatalf("kernels: %v", err)
		}
		return
	}
	if *tracePath != "" {
		if err := runTraced(w, *traceApp, *tracePath, *metricsPath, *iters, *scale); err != nil {
			log.Fatalf("trace: %v", err)
		}
		return
	}
	if *serveMode && *openLoop {
		opts := bench.OpenLoopOptions{
			Seed:        *serveSeed,
			SurgeFactor: *surgeFactor,
			MaxSlots:    *openLoopMax,
			Timeout:     *timeout,
		}
		if err := bench.OpenLoop(w, opts, *serveOut, func(path string, data []byte) error {
			return os.WriteFile(path, data, 0o644)
		}); err != nil {
			log.Fatalf("open-loop: %v", err)
		}
		return
	}
	if *serveMode {
		opts := bench.ServeOptions{
			Tenants:       *serveTenants,
			JobsPerTenant: *serveJobs,
			Slots:         *serveSlots,
			Seed:          *serveSeed,
			Timeout:       *timeout,
		}
		if err := bench.Serve(w, opts, *serveOut, func(path string, data []byte) error {
			return os.WriteFile(path, data, 0o644)
		}); err != nil {
			log.Fatalf("serve: %v", err)
		}
		return
	}
	if *chaos {
		if err := bench.Chaos(w, chaosOpts); err != nil {
			log.Fatalf("chaos: %v", err)
		}
		return
	}
	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Fprintf(w, "\n================ %s ================\n", name)
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("fig6", func() error {
		res, err := bench.Fig6(*iters, *scale, 32)
		if err != nil {
			return err
		}
		res.Write(w)
		return nil
	})
	run("fig7", func() error {
		rows, err := bench.Fig7(nil)
		if err != nil {
			return err
		}
		bench.WriteFig7(w, rows)
		return nil
	})
	run("fig8", func() error {
		points, threshold, err := bench.Fig8(*graph, 4000, nil)
		if err != nil {
			return err
		}
		bench.WriteFig8(w, *graph, points, threshold)
		return nil
	})
	run("fig9a", func() error {
		rows, err := bench.Fig9a(nil, 5)
		if err != nil {
			return err
		}
		bench.WriteFig9a(w, rows)
		return nil
	})
	run("fig9b", func() error {
		rows, err := bench.Fig9b()
		if err != nil {
			return err
		}
		bench.WriteFig9b(w, rows)
		return nil
	})
	run("fig10ab", func() error {
		gnmf, linreg, err := bench.Fig10ab(nil, 0, 0, 3)
		if err != nil {
			return err
		}
		bench.WriteFig10(w, "Figure 10(a): GNMF, data scaling", "nnz (M)", gnmf)
		fmt.Fprintln(w)
		bench.WriteFig10(w, "Figure 10(b): LinReg, data scaling", "nnz (M)", linreg)
		return nil
	})
	run("fig10cd", func() error {
		gnmf, linreg, err := bench.Fig10cd(nil, 0, 0, 0, 3)
		if err != nil {
			return err
		}
		bench.WriteFig10(w, "Figure 10(c): GNMF, worker scaling", "workers", gnmf)
		fmt.Fprintln(w)
		bench.WriteFig10(w, "Figure 10(d): LinReg, worker scaling", "workers", linreg)
		return nil
	})
	run("table3", func() error {
		bench.Table3(w)
		return nil
	})
	run("table4", func() error {
		rows, err := bench.Table4(*scale)
		if err != nil {
			return err
		}
		bench.WriteTable4(w, rows)
		return nil
	})
	run("chaos", func() error {
		return bench.Chaos(w, chaosOpts)
	})
	run("rewrite", func() error {
		return bench.Rewrite(w, 3, *rewriteOut, func(path string, data []byte) error {
			return os.WriteFile(path, data, 0o644)
		})
	})
	run("checkpoint", func() error {
		dir := *checkpointDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "dmac-ckpt-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		rows, killStage, err := bench.CheckpointSweep(ctx, dir, []int{0, 4, 2, 1}, 3)
		if err != nil {
			return err
		}
		bench.WriteCheckpointSweep(w, killStage, rows)
		return nil
	})
	run("ablation", func() error {
		gnmf, err := bench.AblationGNMF(3)
		if err != nil {
			return err
		}
		bench.WriteAblation(w, "Ablation: GNMF communication by planner configuration", gnmf)
		fmt.Fprintln(w)
		cf, err := bench.AblationCF()
		if err != nil {
			return err
		}
		bench.WriteAblation(w, "Ablation: CF communication by planner configuration", cf)
		fmt.Fprintln(w)
		pullUp, reassign, err := bench.AblationMicro()
		if err != nil {
			return err
		}
		bench.WriteAblation(w, "Ablation: Pull-Up Broadcast on its trigger workload", pullUp)
		fmt.Fprintln(w)
		bench.WriteAblation(w, "Ablation: Re-assignment on its trigger workload", reassign)
		return nil
	})
}

// runKernels runs the kernel microbenchmark suite, prints the table, and
// optionally writes the JSON artifact.
func runKernels(w io.Writer, sizesCSV, workersCSV, outPath string) error {
	parseCSV := func(csv, what string) ([]int, error) {
		var out []int
		for _, s := range strings.Split(csv, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			n, err := strconv.Atoi(s)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("invalid kernel %s %q", what, s)
			}
			out = append(out, n)
		}
		return out, nil
	}
	sizes, err := parseCSV(sizesCSV, "size")
	if err != nil {
		return err
	}
	if len(sizes) == 0 {
		return fmt.Errorf("no kernel sizes given")
	}
	workers, err := parseCSV(workersCSV, "worker count")
	if err != nil {
		return err
	}
	rep := bench.Kernels(sizes, workers)
	bench.WriteKernels(w, rep)
	if outPath == "" {
		return nil
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runTraced executes one traced workload and writes the Chrome trace JSON
// (and optionally the metrics dump), then prints the timeline report.
func runTraced(w io.Writer, app, tracePath, metricsPath string, iters, scale int) error {
	res, err := bench.TracedRun(app, iters, scale, 0)
	if err != nil {
		return err
	}
	tf, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	defer tf.Close()
	var mf *os.File
	if metricsPath != "" {
		if mf, err = os.Create(metricsPath); err != nil {
			return err
		}
		defer mf.Close()
	}
	var mw io.Writer
	if mf != nil {
		mw = mf
	}
	fmt.Fprintf(w, "traced %s: %d comm events, %.3f MB\n\n", app, res.Net.CommEvents, float64(res.Net.Bytes)/1e6)
	if err := res.WriteTraceArtifacts(tf, mw, w); err != nil {
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if mf != nil {
		return mf.Close()
	}
	return nil
}
