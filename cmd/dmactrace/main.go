// dmactrace inspects DMac execution traces. In analyze mode it loads a
// Chrome trace_event JSON file written by `dmacbench -trace` (or any engine
// run with a tracer attached) and prints the per-stage timeline: wall time
// per stage, compute vs communication split, the dominant communication
// pattern, and the longest spans. In record mode it runs one of the bundled
// applications with tracing on and writes the trace itself.
//
// Usage:
//
//	dmactrace -in trace.json
//	dmactrace -in trace.json -stages
//	dmactrace -app pagerank -iters 5 -out trace.json -metrics-out metrics.json
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"dmac/internal/bench"
	"dmac/internal/obs"
)

func main() {
	in := flag.String("in", "", "analyze: Chrome trace JSON file to load")
	stagesOnly := flag.Bool("stages", false, "analyze: print only the per-stage table")
	app := flag.String("app", "", "record: application to trace: pagerank | gnmf | linreg")
	iters := flag.Int("iters", 5, "record: iterations")
	scale := flag.Int("scale", 40, "record: dataset scale denominator")
	workers := flag.Int("workers", 0, "record: cluster workers (0 = default)")
	out := flag.String("out", "", "record: write Chrome trace JSON to this path")
	metricsOut := flag.String("metrics-out", "", "record: write metrics dump to this path")
	flag.Parse()

	switch {
	case *in != "":
		if err := analyze(*in, *stagesOnly); err != nil {
			log.Fatal(err)
		}
	case *app != "":
		if err := record(*app, *out, *metricsOut, *iters, *scale, *workers); err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "dmactrace: need -in <trace.json> (analyze) or -app <name> (record)")
		flag.Usage()
		os.Exit(2)
	}
}

// analyze loads a Chrome trace file and prints the timeline report.
func analyze(path string, stagesOnly bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ReadChromeTrace(f)
	if err != nil {
		return fmt.Errorf("dmactrace: %s: %w", path, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("dmactrace: %s: trace holds no events", path)
	}
	spans := obs.EventsToSpans(events)
	if stagesOnly {
		obs.WriteStageTable(os.Stdout, spans)
		return nil
	}
	obs.WriteTimeline(os.Stdout, spans)
	return nil
}

// record runs one traced application and writes the requested artifacts.
func record(app, out, metricsOut string, iters, scale, workers int) error {
	res, err := bench.TracedRun(app, iters, scale, workers)
	if err != nil {
		return err
	}
	var tw, mw *os.File
	if out != "" {
		if tw, err = os.Create(out); err != nil {
			return err
		}
		defer tw.Close()
	}
	if metricsOut != "" {
		if mw, err = os.Create(metricsOut); err != nil {
			return err
		}
		defer mw.Close()
	}
	// A nil *os.File must reach WriteTraceArtifacts as a nil interface.
	var traceW, metricsW io.Writer
	if tw != nil {
		traceW = tw
	}
	if mw != nil {
		metricsW = mw
	}
	if err := res.WriteTraceArtifacts(traceW, metricsW, os.Stdout); err != nil {
		return err
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			return err
		}
	}
	if mw != nil {
		return mw.Close()
	}
	return nil
}
