// dmacrun executes one of the bundled applications end-to-end on a chosen
// engine and prints per-iteration metrics.
//
// Usage:
//
//	dmacrun -app gnmf -planner dmac -iters 5 -scale 40 -workers 4
//	dmacrun -app pagerank -trace trace.json -metrics-out metrics.json
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"dmac"
)

func main() {
	app := flag.String("app", "gnmf", "application: gnmf | pagerank | linreg | cf | svd")
	plannerName := flag.String("planner", "dmac", "engine: dmac | systemml | local")
	iters := flag.Int("iters", 5, "iterations")
	scale := flag.Int("scale", 40, "dataset scale denominator")
	workers := flag.Int("workers", 4, "cluster workers")
	k := flag.Int("k", 32, "factor size / rank where applicable")
	timeout := flag.Duration("timeout", 0, "deadline for the whole run (0 = none); the engine aborts cleanly between stages and block tasks")
	checkpointDir := flag.String("checkpoint-dir", "", "checkpoint session values into this directory (interval 1); recovery after injected or simulated failures restores snapshots instead of replaying lineage")
	noRewrite := flag.Bool("no-rewrite", false, "disable the algebraic rewrite pass (chain reordering, transpose pushdown, identity folding) that runs before planning")
	tracePath := flag.String("trace", "", "write a Chrome trace JSON of the run to this path")
	metricsPath := flag.String("metrics-out", "", "write the metrics registry dump to this path")
	flag.Parse()

	var planner dmac.Planner
	switch *plannerName {
	case "dmac":
		planner = dmac.PlannerDMac
	case "systemml":
		planner = dmac.PlannerSystemMLS
	case "local":
		planner = dmac.PlannerLocal
	default:
		log.Fatalf("unknown planner %q", *plannerName)
	}

	var tracer *dmac.Tracer
	var registry *dmac.MetricsRegistry
	if *tracePath != "" || *metricsPath != "" {
		tracer = dmac.NewTracer()
		registry = dmac.NewMetricsRegistry()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := run(ctx, *app, planner, *iters, *scale, *workers, *k, *checkpointDir, !*noRewrite, tracer, registry)
	if err != nil {
		log.Fatal(err)
	}
	if *tracePath != "" {
		if err := writeFile(*tracePath, func(f *os.File) error {
			return dmac.WriteChromeTrace(f, tracer.Spans())
		}); err != nil {
			log.Fatalf("trace: %v", err)
		}
	}
	if *metricsPath != "" {
		if err := writeFile(*metricsPath, func(f *os.File) error {
			return dmac.WriteMetricsJSON(f, registry.Snapshot())
		}); err != nil {
			log.Fatalf("metrics: %v", err)
		}
	}
	fmt.Printf("\n%-4s %12s %12s %10s %8s\n", "iter", "model s", "comm MB", "shuffles", "stages")
	for i, m := range res.PerIteration {
		fmt.Printf("%-4d %12.4f %12.3f %10d %8d\n", i+1, m.ModelSeconds, float64(m.CommBytes)/1e6, m.CommEvents, m.Stages)
	}
	t := res.Total()
	fmt.Printf("\ntotal: %.4f modelled seconds, %.3f MB communicated, wall %.3fs\n",
		t.ModelSeconds, float64(t.CommBytes)/1e6, t.WallSeconds)
	for name, v := range res.Scalars {
		fmt.Printf("scalar %s = %.6g\n", name, v)
	}
}

// writeFile creates path, hands it to write, and closes it, surfacing write
// and close errors.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(ctx context.Context, app string, planner dmac.Planner, iters, scale, workers, k int, checkpointDir string, rewrite bool, tracer *dmac.Tracer, registry *dmac.MetricsRegistry) (*dmac.AppResult, error) {
	cfg := dmac.ClusterConfig{Workers: workers, LocalParallelism: 8}
	newSession := func(bs int) *dmac.Session {
		s := dmac.NewSession(planner, cfg, bs)
		s.SetBaseContext(ctx)
		if rewrite {
			s.SetRewriter(dmac.NewRewriter())
		}
		if checkpointDir != "" {
			if err := s.SetCheckpoint(checkpointDir, dmac.CheckpointPolicy{Interval: 1}); err != nil {
				log.Fatalf("checkpoint: %v", err)
			}
		}
		if tracer != nil || registry != nil {
			s.SetObserver(tracer, registry)
		}
		return s
	}
	switch app {
	case "gnmf":
		movies, users := dmac.Netflix.Movies/scale, dmac.Netflix.Users/scale
		bs := dmac.ChooseBlockSize(movies, users, 8, workers)
		s := newSession(bs)
		_, _, v := dmac.Netflix.Scaled(scale, bs)
		fmt.Printf("GNMF on %dx%d ratings, k=%d, %s\n", movies, users, k, planner)
		return dmac.GNMF(s, v, k, iters, 42)
	case "pagerank":
		spec, _ := dmac.GraphByName("soc-pokec")
		nodes := spec.ScaledNodes(scale)
		bs := dmac.ChooseBlockSize(nodes, nodes, 8, workers)
		s := newSession(bs)
		fmt.Printf("PageRank on soc-pokec/%d (%d nodes), %s\n", scale, nodes, planner)
		return dmac.PageRank(s, spec.Generate(scale, bs).Adjacency, iters, 7)
	case "linreg":
		rows, cols := 800000/scale, 500
		bs := dmac.ChooseBlockSize(rows, cols, 8, workers)
		s := newSession(bs)
		v := dmac.SparseUniform(3, rows, cols, bs, 10.0/float64(cols))
		y := dmac.DenseRandom(4, rows, 1, bs)
		fmt.Printf("LinReg on %dx%d, %s\n", rows, cols, planner)
		return dmac.LinReg(s, v, y, 1e-6, iters, 5)
	case "cf":
		movies, users := dmac.Netflix.Movies/scale, dmac.Netflix.Users/scale
		bs := dmac.ChooseBlockSize(movies, users, 8, workers)
		s := newSession(bs)
		_, _, r := dmac.Netflix.Scaled(scale, bs)
		fmt.Printf("CF on %dx%d ratings, %s\n", movies, users, planner)
		return dmac.CF(s, r)
	case "svd":
		movies, users := dmac.Netflix.Movies/scale, dmac.Netflix.Users/scale
		bs := dmac.ChooseBlockSize(movies, users, 8, workers)
		s := newSession(bs)
		_, _, v := dmac.Netflix.Scaled(scale, bs)
		fmt.Printf("SVD on %dx%d ratings, rank %d, %s\n", movies, users, k, planner)
		res, sv, err := dmac.SVD(s, v, k, 11)
		if err != nil {
			return nil, err
		}
		for i, sigma := range sv {
			if i == 5 {
				break
			}
			fmt.Printf("  sigma_%d = %.4f\n", i+1, sigma)
		}
		return res, nil
	default:
		return nil, fmt.Errorf("unknown app %q", app)
	}
}
