// dmacworker runs one worker endpoint of the cluster's TCP data plane: it
// accepts block frames from the coordinator (and ring forwards from sibling
// workers), verifies every block against its CRC32C, stores the newest
// stage's blocks, and answers collects and heartbeats.
//
// Usage:
//
//	dmacworker -addr 127.0.0.1:9301
//	dmacworker -addr 127.0.0.1:0 -addr-file /tmp/w0.addr   # scripted setups
//
// The coordinator side is any dmac engine configured with worker addresses
// (dmacserve -worker-addrs, or dist.Config.WorkerAddrs): the engine dials
// each listed address and the order of the list is the worker index. A
// SIGINT/SIGTERM stops the listener and exits cleanly; killing the process
// outright is also survivable for the job — the coordinator's heartbeat
// detects the silence and lineage recovery re-partitions around the loss.
package main

import (
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"dmac/internal/dist/transport"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:9301", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once listening (for scripted coordinators)")
	ioTimeout := flag.Float64("io-timeout", 10, "per-frame read/write deadline in seconds")
	dialTimeout := flag.Float64("dial-timeout", 2, "ring-forward dial deadline in seconds")
	maxBlocks := flag.Int("max-blocks", 0, "block store capacity (0 uses the built-in default)")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("dmacworker: bad -log-level", "value", *logLevel)
		return 1
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	w := transport.NewWorker(transport.WorkerConfig{
		IOTimeoutSec:   *ioTimeout,
		DialTimeoutSec: *dialTimeout,
		MaxBlocks:      *maxBlocks,
	})
	bound, err := w.Listen(*addr)
	if err != nil {
		logger.Error("dmacworker: listen failed", "addr", *addr, "err", err)
		return 1
	}
	logger.Info("dmacworker: listening", "addr", bound.String())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound.String()+"\n"), 0o644); err != nil {
			logger.Error("dmacworker: write -addr-file failed", "path", *addrFile, "err", err)
			w.Close()
			return 1
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- w.Serve() }()
	select {
	case s := <-sig:
		logger.Info("dmacworker: signal received, stopping", "signal", s.String())
		w.Close()
		<-done
	case err := <-done:
		if err != nil {
			logger.Error("dmacworker: serve failed", "err", err)
			return 1
		}
	}
	logger.Info("dmacworker: stopped", "blocks_held", w.BlockCount())
	return 0
}
