// dmacserve runs the multi-tenant DMac job service: an HTTP JSON API over a
// pool of reusable engines with per-tenant admission control and quotas.
//
// Usage:
//
//	dmacserve -addr :8421 -slots 4 -workers 4
//	dmacserve -autoscale -min-slots 1 -max-slots 8 -autoscale-target 1.0
//	curl -s localhost:8421/v1/jobs -d '{"tenant":"alice","workload":"pagerank","params":{"nodes":256,"iters":5}}'
//	curl -s localhost:8421/v1/jobs/job-000001?include=result
//	curl -s localhost:8421/v1/stats
//	curl -s localhost:8421/metrics          # Prometheus text exposition
//	curl -s localhost:8421/v1/slo           # per-tenant burn rates
//	curl -s localhost:8421/v1/jobs/job-000001/trace > trace.json
//
// Logs are structured JSON on stderr (one object per line). -debug-addr
// serves net/http/pprof on a separate listener for live profiling.
//
// SIGINT/SIGTERM trigger a graceful drain: admission stops immediately,
// in-flight and queued jobs get -drain-timeout to finish, then the queue is
// shed and running jobs are canceled (engines started with -checkpoint-dir
// have flushed per-stage snapshots of whatever was interrupted). The
// -metrics-out dump — a JSON object with the final metrics snapshot and SLO
// snapshot — is written on every exit path, clean or forced or errored, so
// a crash-looping deploy still leaves evidence behind.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dmac/internal/autoscale"
	"dmac/internal/dist"
	"dmac/internal/engine"
	"dmac/internal/obs"
	"dmac/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8421", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once serving (for scripted clients)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty disables)")
	plannerName := flag.String("planner", "dmac", "engine: dmac | systemml | local")
	workers := flag.Int("workers", 4, "simulated cluster workers per engine slot")
	workerAddrs := flag.String("worker-addrs", "", "comma-separated dmacworker addresses; when set, the data plane is real TCP to these workers (list order is worker index) and -workers is ignored")
	blockSize := flag.Int("block", 64, "block size for served jobs")
	paceComm := flag.Duration("pace-comm", 0, "spend this much wall-clock time per communication primitive (real-time shuffle emulation; 0 disables) so job durations behave like a real cluster's")
	slots := flag.Int("slots", 2, "initial engine pool size = max concurrently running jobs")
	autoscaleOn := flag.Bool("autoscale", false, "enable the model-based elastic autoscaler (pool resizes within [-min-slots, -max-slots])")
	minSlots := flag.Int("min-slots", 1, "autoscaler lower pool bound")
	maxSlots := flag.Int("max-slots", 8, "autoscaler upper pool bound")
	asTarget := flag.Float64("autoscale-target", 1.0, "autoscaler queue-wait objective in seconds (the latency SLO the pool defends)")
	asUtil := flag.Float64("autoscale-util", 0.7, "autoscaler target per-slot utilization (lower = more headroom)")
	asInterval := flag.Duration("autoscale-interval", 2*time.Second, "autoscaler reconciliation period")
	asUpCooldown := flag.Duration("autoscale-up-cooldown", time.Second, "minimum gap between grow decisions")
	asDownCooldown := flag.Duration("autoscale-down-cooldown", 30*time.Second, "minimum gap between the last scale decision and a shrink")
	queueCap := flag.Int("queue", 32, "admission queue capacity across all tenants")
	maxConcurrent := flag.Int("tenant-concurrent", 2, "default per-tenant concurrent-job quota")
	maxQueued := flag.Int("tenant-queued", 8, "default per-tenant queued-job quota")
	maxBytes := flag.Int64("tenant-bytes", 256<<20, "default per-tenant estimated-memory quota for running jobs")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-job run deadline")
	drainTimeout := flag.Duration("drain-timeout", 20*time.Second, "how long a shutdown waits for queued and running jobs")
	noRewrite := flag.Bool("no-rewrite", false, "disable the algebraic rewrite pass that every engine slot runs before planning")
	checkpointDir := flag.String("checkpoint-dir", "", "per-slot per-stage checkpoints under this directory (forced shutdowns leave flushed snapshots)")
	metricsPath := flag.String("metrics-out", "", "write the final metrics + SLO dump to this path on exit (every exit path)")
	sloObjective := flag.Float64("slo-objective", 0, "default per-tenant SLO good-job objective, e.g. 0.99 (0 uses the built-in default)")
	sloLatency := flag.Float64("slo-latency", 0, "default per-tenant end-to-end latency objective in seconds (0 uses the built-in default)")
	flightJobs := flag.Int("flight-jobs", 0, "flight recorder capacity in completed job traces (0 uses the built-in default)")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("dmacserve: bad -log-level", "value", *logLevel)
		return 1
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var planner engine.Planner
	switch *plannerName {
	case "dmac":
		planner = engine.DMac
	case "systemml":
		planner = engine.SystemMLS
	case "local":
		planner = engine.Local
	default:
		logger.Error("unknown planner", "planner", *plannerName)
		return 1
	}

	cluster := dist.ScaledConfig(*workers, 8)
	cluster.PaceCommLatencySec = paceComm.Seconds()
	if *workerAddrs != "" {
		cluster.WorkerAddrs = strings.Split(*workerAddrs, ",")
		logger.Info("wire data plane enabled", "workers", len(cluster.WorkerAddrs))
	}

	var asCfg *autoscale.Config
	if *autoscaleOn {
		asCfg = &autoscale.Config{
			Min:                *minSlots,
			Max:                *maxSlots,
			TargetQueueWaitSec: *asTarget,
			TargetUtilization:  *asUtil,
			Interval:           *asInterval,
			ScaleUpCooldown:    *asUpCooldown,
			ScaleDownCooldown:  *asDownCooldown,
		}
	}

	registry := obs.NewRegistry()
	svc, err := serve.NewService(serve.Options{
		Planner:            planner,
		Cluster:            cluster,
		BlockSize:          *blockSize,
		Slots:              *slots,
		QueueCapacity:      *queueCap,
		DefaultQuota:       serve.TenantQuota{MaxConcurrent: *maxConcurrent, MaxQueued: *maxQueued, MaxBytes: *maxBytes},
		DefaultDeadline:    *deadline,
		Metrics:            registry,
		CheckpointDir:      *checkpointDir,
		DisableRewrite:     *noRewrite,
		Logger:             logger,
		SLO:                serve.SLOConfig{Objective: *sloObjective, LatencySec: *sloLatency},
		FlightRecorderJobs: *flightJobs,
		Autoscale:          asCfg,
	})
	if err != nil {
		logger.Error("dmacserve startup failed", "err", err.Error())
		return 1
	}
	// From here on, every return path dumps the final metrics + SLO snapshot.
	defer dumpMetrics(*metricsPath, registry, svc, logger)

	if *debugAddr != "" {
		// pprof on its own mux and listener so profiling is never exposed on
		// the service port (and the service mux stays pattern-only).
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Error("debug listen failed", "addr", *debugAddr, "err", err.Error())
			return 1
		}
		logger.Info("pprof serving", "addr", dln.Addr().String())
		go func() { _ = http.Serve(dln, dbg) }()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err.Error())
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			logger.Error("addr-file write failed", "path", *addrFile, "err", err.Error())
			return 1
		}
	}
	srv := &http.Server{Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	logger.Info("dmacserve serving", "addr", ln.Addr().String(), "planner", planner.String(),
		"slots", *slots, "workers", *workers, "block", *blockSize, "autoscale", *autoscaleOn)

	exit := 0
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("signal received, draining", "signal", sig.String(), "timeout", drainTimeout.String())
	case err := <-errCh:
		// Serve only errors before Shutdown (bad listener, port stolen):
		// still drain the pool and dump metrics before exiting nonzero.
		logger.Error("server failed, draining", "err", err.Error())
		exit = 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Stop(ctx); err != nil {
		logger.Warn("forced drain", "err", err.Error())
	} else {
		logger.Info("drained cleanly")
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("http shutdown", "err", err.Error())
	}
	<-errCh

	st := svc.Stats()
	logger.Info("dmacserve exit",
		"submitted", st.Submitted, "completed", st.Completed, "failed", st.Failed,
		"canceled", st.Canceled, "rejected", st.Rejected)
	return exit
}

// dumpMetrics writes the final observability dump: the full metrics registry
// snapshot plus the final per-tenant SLO snapshot, as one JSON object.
func dumpMetrics(path string, r *obs.Registry, svc *serve.Service, logger *slog.Logger) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		logger.Error("metrics-out failed", "path", path, "err", err.Error())
		return
	}
	defer f.Close()
	if err := svc.WriteFinalDump(f, r.Snapshot()); err != nil {
		logger.Error("metrics-out failed", "path", path, "err", err.Error())
		return
	}
	logger.Info("metrics dump written", "path", path)
}
