// dmacserve runs the multi-tenant DMac job service: an HTTP JSON API over a
// pool of reusable engines with per-tenant admission control and quotas.
//
// Usage:
//
//	dmacserve -addr :8421 -slots 4 -workers 4
//	curl -s localhost:8421/v1/jobs -d '{"tenant":"alice","workload":"pagerank","params":{"nodes":256,"iters":5}}'
//	curl -s localhost:8421/v1/jobs/job-000001?include=result
//	curl -s localhost:8421/v1/stats
//
// SIGINT/SIGTERM trigger a graceful drain: admission stops immediately,
// in-flight and queued jobs get -drain-timeout to finish, then the queue is
// shed and running jobs are canceled (engines started with -checkpoint-dir
// have flushed per-stage snapshots of whatever was interrupted).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmac/internal/dist"
	"dmac/internal/engine"
	"dmac/internal/obs"
	"dmac/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8421", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the actual listen address to this file once serving (for scripted clients)")
	plannerName := flag.String("planner", "dmac", "engine: dmac | systemml | local")
	workers := flag.Int("workers", 4, "simulated cluster workers per engine slot")
	blockSize := flag.Int("block", 64, "block size for served jobs")
	slots := flag.Int("slots", 2, "engine pool size = max concurrently running jobs")
	queueCap := flag.Int("queue", 32, "admission queue capacity across all tenants")
	maxConcurrent := flag.Int("tenant-concurrent", 2, "default per-tenant concurrent-job quota")
	maxQueued := flag.Int("tenant-queued", 8, "default per-tenant queued-job quota")
	maxBytes := flag.Int64("tenant-bytes", 256<<20, "default per-tenant estimated-memory quota for running jobs")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-job run deadline")
	drainTimeout := flag.Duration("drain-timeout", 20*time.Second, "how long a shutdown waits for queued and running jobs")
	noRewrite := flag.Bool("no-rewrite", false, "disable the algebraic rewrite pass that every engine slot runs before planning")
	checkpointDir := flag.String("checkpoint-dir", "", "per-slot per-stage checkpoints under this directory (forced shutdowns leave flushed snapshots)")
	metricsPath := flag.String("metrics-out", "", "write the metrics registry dump to this path on exit")
	flag.Parse()

	var planner engine.Planner
	switch *plannerName {
	case "dmac":
		planner = engine.DMac
	case "systemml":
		planner = engine.SystemMLS
	case "local":
		planner = engine.Local
	default:
		log.Fatalf("unknown planner %q", *plannerName)
	}

	registry := obs.NewRegistry()
	svc, err := serve.NewService(serve.Options{
		Planner:         planner,
		Cluster:         dist.ScaledConfig(*workers, 8),
		BlockSize:       *blockSize,
		Slots:           *slots,
		QueueCapacity:   *queueCap,
		DefaultQuota:    serve.TenantQuota{MaxConcurrent: *maxConcurrent, MaxQueued: *maxQueued, MaxBytes: *maxBytes},
		DefaultDeadline: *deadline,
		Metrics:         registry,
		CheckpointDir:   *checkpointDir,
		DisableRewrite:  *noRewrite,
	})
	if err != nil {
		log.Fatalf("dmacserve: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("dmacserve: listen %s: %v", *addr, err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatalf("dmacserve: addr-file: %v", err)
		}
	}
	srv := &http.Server{Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	log.Printf("dmacserve: serving on %s (planner=%s slots=%d workers=%d block=%d)",
		ln.Addr(), planner, *slots, *workers, *blockSize)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("dmacserve: %s: draining (timeout %s)", sig, *drainTimeout)
	case err := <-errCh:
		log.Fatalf("dmacserve: server: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Stop(ctx); err != nil {
		log.Printf("dmacserve: forced drain: %v", err)
	} else {
		log.Printf("dmacserve: drained cleanly")
	}
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("dmacserve: http shutdown: %v", err)
	}
	<-errCh

	st := svc.Stats()
	log.Printf("dmacserve: exit: submitted=%d completed=%d failed=%d canceled=%d rejected=%d",
		st.Submitted, st.Completed, st.Failed, st.Canceled, st.Rejected)
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, registry); err != nil {
			log.Printf("dmacserve: metrics-out: %v", err)
		}
	}
}

func writeMetrics(path string, r *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return obs.WriteMetricsJSON(f, r.Snapshot())
}
