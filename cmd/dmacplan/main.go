// dmacplan explains the execution plan DMac (or the SystemML-S baseline)
// generates for one of the bundled application programs — the Figure 3
// analogue. It prints the operator table with stages, strategies, dependency
// types and communication estimates, and optionally the Graphviz DAG.
//
// Usage:
//
//	dmacplan -app gnmf [-planner dmac|systemml] [-workers 4] [-dot]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dmac/internal/apps"
	"dmac/internal/core"
	"dmac/internal/dep"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/rewrite"
)

func main() {
	app := flag.String("app", "gnmf", "program: gnmf | pagerank | cf | linreg-q")
	planner := flag.String("planner", "dmac", "planner: dmac | systemml")
	workers := flag.Int("workers", 4, "cluster workers (N)")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of the table")
	doRewrite := flag.Bool("rewrite", false, "run the algebraic rewrite pass before planning and print its decisions")
	flag.Parse()

	prog, vars, err := buildProgram(*app)
	if err != nil {
		log.Fatal(err)
	}
	if *doRewrite {
		res, err := rewrite.New().Rewrite(prog)
		if err != nil {
			log.Fatalf("rewrite: %v", err)
		}
		fmt.Printf("rewrite decisions (cost %.4g -> %.4g):\n%s\n",
			res.CostBefore, res.CostAfter, rewrite.FormatDecisions(res.Decisions))
		prog = res.Program
	}
	cfg := core.Config{Workers: *workers, Vars: vars}
	var plan *core.Plan
	switch *planner {
	case "dmac":
		plan, err = core.Generate(prog, cfg)
	case "systemml":
		plan, err = core.GenerateSystemMLS(prog, cfg)
	default:
		log.Fatalf("unknown planner %q", *planner)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.Check(); err != nil {
		log.Fatalf("generated plan failed validation: %v", err)
	}
	if *dot {
		fmt.Fprint(os.Stdout, plan.DOT())
		return
	}
	fmt.Printf("%s plan for %s (N=%d):\n\n%s", *planner, *app, *workers, plan)
}

// buildProgram constructs the named program with the paper's dataset shapes
// and the session schemes a steady-state iteration would see.
func buildProgram(app string) (*expr.Program, map[string][]dep.Scheme, error) {
	switch app {
	case "gnmf":
		// Netflix shape, factor 200, session schemes of Figure 3.
		prog := apps.GNMFIteration(17770, 480189, 200, 0.01)
		return prog, map[string][]dep.Scheme{
			"V": {dep.Col},
			"W": {dep.Row},
			"H": {dep.Col},
		}, nil
	case "pagerank":
		prog := apps.PageRankIteration(1632803, 18.75/1632803.0)
		return prog, map[string][]dep.Scheme{
			"link": {dep.Col},
			"rank": {dep.Col},
			"D":    {dep.Col},
		}, nil
	case "cf":
		p := expr.NewProgram()
		R := p.Var("R", 17770, 480189, 0.01)
		sim := p.Mul(R, R.T())
		p.Assign("result", p.Mul(sim, R))
		return p, map[string][]dep.Scheme{"R": {dep.Row}}, nil
	case "linreg-q":
		// The q-step of conjugate gradient: q = Vᵀ(V p) + p*lambda.
		p := expr.NewProgram()
		V := p.Var("V", 100000000, 100000, 1e-4)
		pv := p.Var("p", 100000, 1, 1)
		q := p.Add(p.Mul(V.T(), p.Mul(V, pv)), p.Scalar(matrix.ScalarMul, pv, 1e-6))
		p.Value("pq", p.Mul(pv.T(), q))
		p.Assign("q", q)
		return p, map[string][]dep.Scheme{"V": {dep.Row}, "p": {dep.Row}}, nil
	default:
		return nil, nil, fmt.Errorf("unknown app %q (want gnmf, pagerank, cf, linreg-q)", app)
	}
}
