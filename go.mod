module dmac

go 1.22
