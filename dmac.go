// Package dmac is a distributed matrix computation library that exploits
// matrix dependencies to minimize communication, reproducing the DMac system
// of Yu, Shao and Cui, "Exploiting Matrix Dependency for Efficient
// Distributed Matrix Computation" (SIGMOD 2015).
//
// A matrix program is written with an R-like builder (Program), planned by a
// dependency-aware optimizer that picks the communication-minimal execution
// strategy per operator (RMM1/RMM2/CPMM for multiplication, aligned schemes
// for cell-wise operators), and executed on a simulated cluster of workers
// whose network traffic is accounted byte-for-byte. Sessions keep variables
// — and their partition schemes — across program executions, so iterative
// algorithms reuse data without repartitioning.
//
// Quick start:
//
//	s := dmac.NewSession(dmac.PlannerDMac, dmac.ClusterConfig{Workers: 4}, 64)
//	v := dmac.SparseUniform(1, 1000, 500, 64, 0.01)
//	s.Bind("V", v)
//	p := dmac.NewProgram()
//	V := p.Var("V", 1000, 500, 0.01)
//	p.Assign("G", p.Mul(V.T(), V))   // Gram matrix
//	metrics, err := s.Run(p, nil)
//	...
//
// The package re-exports the user-facing pieces of the internal packages;
// applications (GNMF, PageRank, linear regression, collaborative filtering,
// SVD) and dataset generators are available directly.
package dmac

import (
	"dmac/internal/apps"
	"dmac/internal/core"
	"dmac/internal/dep"
	"dmac/internal/dist"
	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/obs"
	"dmac/internal/rewrite"
	"dmac/internal/sched"
	"dmac/internal/workload"
)

// Core user-facing types, re-exported from the implementation packages.
type (
	// Program is a matrix program under construction (R-like builder).
	Program = expr.Program
	// Ref references a program value, possibly transposed (Ref.T).
	Ref = expr.Ref
	// Grid is a block-partitioned matrix.
	Grid = matrix.Grid
	// Coord is a sparse matrix entry used to build grids.
	Coord = matrix.Coord
	// Session runs programs and keeps variables (and their schemes) between
	// runs.
	Session = engine.Engine
	// Planner selects the planning mode of a session.
	Planner = engine.Planner
	// ClusterConfig describes the simulated cluster.
	ClusterConfig = dist.Config
	// Metrics reports the cost of one program execution.
	Metrics = engine.Metrics
	// Plan is an executable plan (for explain-style inspection).
	Plan = core.Plan
	// Scheme is a matrix distribution scheme (Row/Col/Broadcast).
	Scheme = dep.Scheme
	// AppResult collects per-iteration metrics of a bundled application.
	AppResult = apps.Result
	// GraphSpec describes a Table 3 dataset stand-in.
	GraphSpec = workload.GraphSpec
	// UFunc is a named element-wise function for Program.Func.
	UFunc = matrix.UFunc
	// FaultPlan deterministically injects worker faults into a session's
	// cluster (set ClusterConfig.Faults); the runtime recovers via stage
	// retry and lineage recomputation — or, with Session.SetCheckpoint, by
	// restoring the newest valid snapshot. Validate rejects malformed plans.
	FaultPlan = dist.FaultPlan
	// FaultEvent is one scripted fault of a FaultPlan.
	FaultEvent = dist.FaultEvent
	// FaultKind discriminates kill, delay and corruption faults.
	FaultKind = dist.FaultKind
	// CheckpointPolicy decides when a session snapshots its live values
	// (Session.SetCheckpoint): a fixed stage interval, a cost-model trigger,
	// or both.
	CheckpointPolicy = engine.CheckpointPolicy
	// WorkerFailure is the error a stage attempt fails with when a worker is
	// lost (recovered internally; visible only when retries are exhausted).
	WorkerFailure = dist.WorkerFailure
	// Tracer records execution spans when attached to a session with
	// Session.SetObserver; a nil Tracer is a valid no-op.
	Tracer = obs.Tracer
	// MetricsRegistry collects counters, gauges and histograms when attached
	// to a session with Session.SetObserver; nil is a valid no-op.
	MetricsRegistry = obs.Registry
	// TraceSpan is one recorded span of a Tracer.
	TraceSpan = obs.Span
)

// Rewriter is the algebraic rewrite pass a session runs before planning
// (chain reordering, transpose pushdown, identity folding, sparsity
// refinement); attach with Session.SetRewriter.
type Rewriter = rewrite.Rewriter

// RewriterConfig selectively disables individual rewrite rules (see
// NewRewriterWithConfig); the zero value enables everything.
type RewriterConfig = rewrite.Config

// NewRewriter returns a rewriter with every rule enabled for
// Session.SetRewriter.
func NewRewriter() *Rewriter { return rewrite.New() }

// NewRewriterWithConfig returns a rewriter with the configured rules
// disabled.
func NewRewriterWithConfig(cfg RewriterConfig) *Rewriter { return rewrite.NewWithConfig(cfg) }

// NewTracer returns an enabled execution tracer for Session.SetObserver.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetricsRegistry returns an empty metrics registry for
// Session.SetObserver.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Trace exporters (see internal/obs): WriteChromeTrace emits chrome://tracing
// JSON, WriteTimeline prints the human-readable per-stage report,
// WriteMetricsJSON dumps a registry snapshot, WritePrometheus renders one in
// Prometheus text exposition format (what dmacserve serves at /metrics).
var (
	WriteChromeTrace = obs.WriteChromeTrace
	WriteTimeline    = obs.WriteTimeline
	WriteMetricsJSON = obs.WriteMetricsJSON
	WritePrometheus  = obs.WritePrometheus
)

// Planner modes.
const (
	// PlannerDMac plans with matrix-dependency analysis (the paper's
	// system).
	PlannerDMac = engine.DMac
	// PlannerSystemMLS is the dependency-oblivious baseline.
	PlannerSystemMLS = engine.SystemMLS
	// PlannerLocal runs single-machine and in-memory (the "R" reference).
	PlannerLocal = engine.Local
)

// Partition schemes.
const (
	Row       = dep.Row
	Col       = dep.Col
	Broadcast = dep.Broadcast
)

// Fault kinds for FaultEvent.
const (
	// FaultKillBoundary kills a worker at a stage boundary.
	FaultKillBoundary = dist.FaultKillBoundary
	// FaultKillTask kills a worker while a stage's block tasks run.
	FaultKillTask = dist.FaultKillTask
	// FaultDelay stalls a stage without losing data.
	FaultDelay = dist.FaultDelay
	// FaultCorrupt flips bytes in a block in transit at the stage's first
	// hand-off; the checksum at hand-off detects, quarantines and re-fetches
	// it (counted in Metrics.CorruptionsInjected/Detected).
	FaultCorrupt = dist.FaultCorrupt
	// FaultNetDrop loses one worker's blocks of a collective once; the
	// transport retransmits them (real repeated bytes on the TCP data plane)
	// and the run is charged one retransmit round-trip of stall.
	FaultNetDrop = dist.FaultNetDrop
	// FaultNetDelay stalls a stage's first collective by DelaySec without
	// losing data.
	FaultNetDelay = dist.FaultNetDelay
	// FaultNetPartition cuts a worker off: the first collective that must
	// reach it fails with a *WorkerFailure and lineage recovery removes the
	// worker, exactly as for a kill.
	FaultNetPartition = dist.FaultNetPartition
)

// ErrWorkerLost classifies every lost-worker failure — injected kills,
// network partitions, and heartbeat-detected deaths on the TCP transport —
// via errors.Is, regardless of which layer detected the loss.
var ErrWorkerLost = dist.ErrWorkerLost

// RandomFaultPlan returns a seeded fault plan that kills each (stage,
// worker) pair with the given probability — the same seed always kills the
// same workers at the same stages.
func RandomFaultPlan(seed int64, rate float64) FaultPlan {
	return dist.RandomFaultPlan(seed, rate)
}

// Element-wise functions for Program.Func.
const (
	FuncSigmoid = matrix.FuncSigmoid
	FuncExp     = matrix.FuncExp
	FuncLog     = matrix.FuncLog
	FuncSqrt    = matrix.FuncSqrt
	FuncAbs     = matrix.FuncAbs
	FuncSign    = matrix.FuncSign
)

// Cell-wise and scalar operators for Program.Scalar/ScalarParam.
const (
	ScalarMul  = matrix.ScalarMul
	ScalarAdd  = matrix.ScalarAdd
	ScalarSub  = matrix.ScalarSub
	ScalarDiv  = matrix.ScalarDiv
	ScalarRSub = matrix.ScalarRSub
	ScalarRDiv = matrix.ScalarRDiv
)

// NewSession creates a session with the given planner over a simulated
// cluster. blockSize is the block side used for all matrices in the session
// (see ChooseBlockSize).
func NewSession(p Planner, cfg ClusterConfig, blockSize int) *Session {
	return engine.New(p, cfg, blockSize)
}

// ScaledConfig returns a cluster configuration whose time-model constants
// are calibrated for reduced-scale reproductions of the paper's experiments
// (the benchmark harness uses exactly this). Use the same configuration for
// every engine being compared.
func ScaledConfig(workers, localParallelism int) ClusterConfig {
	return dist.ScaledConfig(workers, localParallelism)
}

// NewProgram returns an empty matrix program.
func NewProgram() *Program { return expr.NewProgram() }

// FromDense builds a grid from a row-major slice.
func FromDense(rows, cols, blockSize int, data []float64) *Grid {
	return matrix.FromDense(rows, cols, blockSize, data)
}

// FromCoords builds a sparse grid from coordinates.
func FromCoords(rows, cols, blockSize int, coords []Coord) *Grid {
	return matrix.FromCoords(rows, cols, blockSize, coords)
}

// ChooseBlockSize implements the automatic block-size selection of Eq. 3 in
// the paper: as large as possible while giving every thread of every worker
// at least one task.
func ChooseBlockSize(rows, cols, localParallelism, workers int) int {
	return sched.ChooseBlockSize(rows, cols, localParallelism, workers)
}

// Dataset generators (deterministic; see internal/workload).
var (
	// SparseUniform generates a random sparse matrix with the given
	// sparsity.
	SparseUniform = workload.SparseUniform
	// DenseRandom generates a dense positive random matrix.
	DenseRandom = workload.DenseRandom
	// Ratings generates a Netflix-shaped integer ratings matrix.
	Ratings = workload.Ratings
	// PowerLawGraph generates a directed graph with power-law out-degrees.
	PowerLawGraph = workload.PowerLawGraph
	// RowNormalize turns an adjacency matrix into a PageRank link matrix.
	RowNormalize = workload.RowNormalize
	// GraphByName looks up a Table 3 dataset stand-in.
	GraphByName = workload.GraphByName
)

// Graphs lists the Table 3 dataset stand-ins.
var Graphs = workload.Graphs

// Netflix is the Netflix dataset stand-in recipe.
var Netflix = workload.Netflix

// Bundled applications (Appendix A of the paper). Each runs on any session
// planner, which is how the comparative experiments are driven.
var (
	// GNMF is Gaussian non-negative matrix factorization (Code 1).
	GNMF = apps.GNMF
	// PageRank is the link-analysis iteration of Code 2.
	PageRank = apps.PageRank
	// LinReg is conjugate-gradient linear regression (Code 4).
	LinReg = apps.LinReg
	// CF is item-based collaborative filtering (Code 3).
	CF = apps.CF
	// SVD approximates singular values with the Lanczos algorithm (Code 5).
	SVD = apps.SVD
	// LogReg trains logistic regression by gradient descent (extension;
	// exercises the element-wise function operator).
	LogReg = apps.LogReg
	// LabeledData generates a separable binary classification problem for
	// LogReg.
	LabeledData = apps.LabeledData
	// TriangleCount counts triangles via trace(A³)/6 (extension).
	TriangleCount = apps.TriangleCount
	// Symmetrize converts a directed adjacency matrix into an undirected
	// simple-graph adjacency for TriangleCount.
	Symmetrize = apps.Symmetrize
)
