package apps_test

import (
	"testing"

	"dmac/internal/apps"
	"dmac/internal/dist"
	"dmac/internal/dist/transport"
	"dmac/internal/engine"
	"dmac/internal/workload"
)

// TestWireBytesReconcileWithModel runs the two headline applications
// fault-free over a real loopback TCP data plane and checks that the measured
// wire traffic reconciles with the communication model. The two totals are
// different quantities — the model charges every collective's dense payload,
// the wire counts actual frames (5-byte header per frame, 16-byte PUT/RING
// block headers, acks, hellos) carrying actual encodings (sparse blocks
// encode smaller than their dense charge) — so the test pins the ratio to a
// generous band rather than equality: measured within [0.5x, 2x] of modeled.
// The logged numbers are the source for the EXPERIMENTS.md reconciliation
// table.
func TestWireBytesReconcileWithModel(t *testing.T) {
	const bs = 16
	newEngine := func() (*engine.Engine, func()) {
		addrs := make([]string, 2)
		var workers []*transport.Worker
		for i := range addrs {
			w := transport.NewWorker(transport.WorkerConfig{})
			a, err := w.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go w.Serve()
			workers = append(workers, w)
			addrs[i] = a.String()
		}
		e := engine.New(engine.DMac, dist.Config{WorkerAddrs: addrs, LocalParallelism: 2}, bs)
		return e, func() {
			e.Close()
			for _, w := range workers {
				w.Close()
			}
		}
	}

	runs := []struct {
		name string
		run  func(e *engine.Engine) (*apps.Result, error)
	}{
		{"pagerank", func(e *engine.Engine) (*apps.Result, error) {
			adj := workload.PowerLawGraph(2, 64, 3, bs)
			return apps.PageRank(e, adj, 3, 11)
		}},
		{"gnmf", func(e *engine.Engine) (*apps.Result, error) {
			v := workload.SparseUniform(1, 48, 64, bs, 0.3)
			return apps.GNMF(e, v, 5, 3, 42)
		}},
	}
	for _, tc := range runs {
		e, cleanup := newEngine()
		res, err := tc.run(e)
		cleanup()
		if err != nil {
			t.Fatalf("%s over TCP: %v", tc.name, err)
		}
		m := res.Total()
		if m.WireBytes == 0 || m.CommBytes == 0 {
			t.Fatalf("%s: wire %d B / modeled %d B — both must be nonzero", tc.name, m.WireBytes, m.CommBytes)
		}
		ratio := float64(m.WireBytes) / float64(m.CommBytes)
		t.Logf("%s: modeled %d B, wire %d B (%d frames), ratio %.3f",
			tc.name, m.CommBytes, m.WireBytes, m.WireFrames, ratio)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: wire/modeled ratio %.3f outside [0.5, 2]", tc.name, ratio)
		}
	}
}
