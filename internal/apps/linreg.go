package apps

import (
	"fmt"

	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/workload"
)

// LinReg runs the conjugate-gradient linear regression of Code 4. v holds
// one training point per row (n x d), y the n x 1 targets. Per iteration the
// driver computes alpha and beta from cluster-side aggregates, exactly as
// the Scala driver does:
//
//	q     = Vᵀ (V p) + p*lambda
//	alpha = norm_r2 / (pᵀ q)
//	w     = w + p*alpha
//	r     = r + q*alpha
//	beta  = norm_r2' / norm_r2
//	p     = -r + p*beta
//
// The final model is left in session variable "w"; the result records the
// residual norm per iteration under scalar "norm_r2".
func LinReg(e *engine.Engine, v, y *matrix.Grid, lambda float64, iterations int, seed int64) (*Result, error) {
	if y.Rows() != v.Rows() || y.Cols() != 1 {
		return nil, fmt.Errorf("apps: y must be %dx1, got %dx%d", v.Rows(), y.Rows(), y.Cols())
	}
	n, d := v.Rows(), v.Cols()
	bs := e.BlockSize()
	w := workload.DenseRandom(seed, d, 1, bs)
	if err := bindAll(e, map[string]*matrix.Grid{"V": v, "y": y, "w": w}); err != nil {
		return nil, err
	}
	vs := sparsityOf(v)

	// Initialization (Code 4 lines 6-8): r = -(Vᵀ y); p = -r = Vᵀ y;
	// norm_r2 = sum(r*r).
	init := expr.NewProgram()
	{
		V := init.Var("V", n, d, vs)
		Y := init.Var("y", n, 1, 1)
		vty := init.Mul(V.T(), Y)
		r := init.Scalar(matrix.ScalarMul, vty, -1)
		p := init.Scalar(matrix.ScalarMul, r, -1)
		init.Sum("norm_r2", init.CellMul(r, r))
		init.Assign("r", r)
		init.Assign("p", p)
	}
	res := &Result{Scalars: map[string]float64{}}
	initM, err := e.Run(init, nil)
	if err != nil {
		return nil, err
	}
	normR2, _ := e.Scalar("norm_r2")

	progA, progB, progC := linRegPrograms(n, d, vs, lambda)
	for i := 0; i < iterations; i++ {
		iter := initM
		initM = engine.Metrics{} // charge initialization to the first iteration only
		mA, err := e.Run(progA, nil)
		if err != nil {
			return nil, err
		}
		pq, _ := e.Scalar("pq")
		alpha := normR2 / pq
		mB, err := e.Run(progB, map[string]float64{"alpha": alpha})
		if err != nil {
			return nil, err
		}
		newNorm, _ := e.Scalar("norm_r2")
		beta := newNorm / normR2
		normR2 = newNorm
		mC, err := e.Run(progC, map[string]float64{"beta": beta})
		if err != nil {
			return nil, err
		}
		iter.Add(mA)
		iter.Add(mB)
		iter.Add(mC)
		res.PerIteration = append(res.PerIteration, iter)
	}
	res.Scalars["norm_r2"] = normR2
	return res, nil
}

// linRegPrograms builds the three per-iteration programs of the conjugate
// gradient loop; driver scalars flow between them as parameters.
func linRegPrograms(n, d int, vSparsity, lambda float64) (qProg, updateProg, directionProg *expr.Program) {
	// Program A: q = Vᵀ(V p) + p*lambda; pq = value(pᵀ q).
	qProg = expr.NewProgram()
	{
		V := qProg.Var("V", n, d, vSparsity)
		p := qProg.Var("p", d, 1, 1)
		vp := qProg.Mul(V, p)
		q := qProg.Add(qProg.Mul(V.T(), vp), qProg.Scalar(matrix.ScalarMul, p, lambda))
		qProg.Value("pq", qProg.Mul(p.T(), q))
		qProg.Assign("q", q)
	}
	// Program B: w += p*alpha; r += q*alpha; norm_r2 = sum(r*r).
	updateProg = expr.NewProgram()
	{
		w := updateProg.Var("w", d, 1, 1)
		p := updateProg.Var("p", d, 1, 1)
		r := updateProg.Var("r", d, 1, 1)
		q := updateProg.Var("q", d, 1, 1)
		newW := updateProg.Add(w, updateProg.ScalarParam(matrix.ScalarMul, p, "alpha"))
		newR := updateProg.Add(r, updateProg.ScalarParam(matrix.ScalarMul, q, "alpha"))
		updateProg.Sum("norm_r2", updateProg.CellMul(newR, newR))
		updateProg.Assign("w", newW)
		updateProg.Assign("r", newR)
	}
	// Program C: p = -r + p*beta.
	directionProg = expr.NewProgram()
	{
		p := directionProg.Var("p", d, 1, 1)
		r := directionProg.Var("r", d, 1, 1)
		newP := directionProg.Add(
			directionProg.Scalar(matrix.ScalarMul, r, -1),
			directionProg.ScalarParam(matrix.ScalarMul, p, "beta"),
		)
		directionProg.Assign("p", newP)
	}
	return qProg, updateProg, directionProg
}
