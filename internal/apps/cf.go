package apps

import (
	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/matrix"
)

// CF runs the item-based collaborative filtering of Code 3 on a ratings
// matrix R (items x users):
//
//	result  = R %*% Rᵀ %*% R
//	predict = result.normalize
//
// The normalization step divides by the Frobenius norm of the result — a
// driver scalar computed by an aggregate, flowing back in as a parameter.
// The predictions are left in session variable "predict".
func CF(e *engine.Engine, r *matrix.Grid) (*Result, error) {
	if err := bindAll(e, map[string]*matrix.Grid{"R": r}); err != nil {
		return nil, err
	}
	items, users := r.Rows(), r.Cols()
	rs := sparsityOf(r)

	// R %*% Rᵀ is the item-similarity matrix; multiplying it with R gives
	// the predicted ratings.
	scoreProg := expr.NewProgram()
	{
		R := scoreProg.Var("R", items, users, rs)
		sim := scoreProg.Mul(R, R.T())
		result := scoreProg.Mul(sim, R)
		scoreProg.Norm2("result_norm", result)
		scoreProg.Assign("result", result)
	}
	normProg := expr.NewProgram()
	{
		result := normProg.Var("result", items, users, 1)
		normProg.Assign("predict", normProg.ScalarParam(matrix.ScalarMul, result, "inv_norm"))
	}
	res := &Result{Scalars: map[string]float64{}}
	m1, err := e.Run(scoreProg, nil)
	if err != nil {
		return nil, err
	}
	norm, _ := e.Scalar("result_norm")
	inv := 0.0
	if norm != 0 {
		inv = 1 / norm
	}
	m2, err := e.Run(normProg, map[string]float64{"inv_norm": inv})
	if err != nil {
		return nil, err
	}
	m1.Add(m2)
	res.PerIteration = append(res.PerIteration, m1)
	res.Scalars["result_norm"] = norm
	return res, nil
}
