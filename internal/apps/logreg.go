package apps

import (
	"fmt"

	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/workload"
)

// LogReg trains an L2-regularized logistic regression with batch gradient
// descent — an application beyond the paper's appendix that exercises the
// element-wise function operator (sigmoid / log):
//
//	P    = sigmoid(V w)
//	G    = Vᵀ (P − y)
//	w    = w·(1 − lr·λ) − G·(lr/n)
//	nll  = −Σ ( y·log P + (1−y)·log(1−P) )
//
// v holds one training point per row (n x d), y the n x 1 labels in {0, 1}.
// The model is left in session variable "w"; Result.Scalars["nll"] is the
// final negative log-likelihood and the per-iteration values are recorded
// through the engine scalar "nll".
func LogReg(e *engine.Engine, v, y *matrix.Grid, lr, lambda float64, iterations int, seed int64) (*Result, error) {
	if y.Rows() != v.Rows() || y.Cols() != 1 {
		return nil, fmt.Errorf("apps: y must be %dx1, got %dx%d", v.Rows(), y.Rows(), y.Cols())
	}
	n, d := v.Rows(), v.Cols()
	bs := e.BlockSize()
	w := matrix.ScalarGrid(matrix.ScalarMul, workload.DenseRandom(seed, d, 1, bs), 0.01)
	if err := bindAll(e, map[string]*matrix.Grid{"V": v, "y": y, "w": w}); err != nil {
		return nil, err
	}
	prog := logRegIteration(n, d, sparsityOf(v), lr, lambda)
	res := &Result{Scalars: map[string]float64{}}
	for i := 0; i < iterations; i++ {
		m, err := e.Run(prog, nil)
		if err != nil {
			return nil, err
		}
		res.PerIteration = append(res.PerIteration, m)
	}
	if nll, ok := e.Scalar("nll"); ok {
		res.Scalars["nll"] = nll
	}
	return res, nil
}

// logRegIteration builds one gradient-descent step.
func logRegIteration(n, d int, vSparsity, lr, lambda float64) *expr.Program {
	p := expr.NewProgram()
	V := p.Var("V", n, d, vSparsity)
	y := p.Var("y", n, 1, 1)
	w := p.Var("w", d, 1, 1)
	pred := p.Func(matrix.FuncSigmoid, p.Mul(V, w))
	grad := p.Mul(V.T(), p.Sub(pred, y))
	newW := p.Sub(
		p.Scalar(matrix.ScalarMul, w, 1-lr*lambda),
		p.Scalar(matrix.ScalarMul, grad, lr/float64(n)),
	)
	p.Assign("w", newW)
	// Negative log-likelihood: -(y·log P + (1-y)·log(1-P)).
	logP := p.Func(matrix.FuncLog, pred)
	log1P := p.Func(matrix.FuncLog, p.Scalar(matrix.ScalarRSub, pred, 1))
	oneMinusY := p.Scalar(matrix.ScalarRSub, y, 1)
	ll := p.Add(p.CellMul(y, logP), p.CellMul(oneMinusY, log1P))
	p.Sum("ll", ll)
	negLL := p.Scalar(matrix.ScalarMul, ll, -1)
	p.Sum("nll", negLL)
	return p
}

// LabeledData generates a linearly separable binary classification problem:
// features from the sparse generator and labels y = 1 when x·wTrue > 0.
// Returns the features, labels and the ground-truth weights.
func LabeledData(seed int64, n, d, blockSize int, sparsity float64) (v, y, wTrue *matrix.Grid) {
	v = workload.SparseUniform(seed, n, d, blockSize, sparsity)
	raw := workload.DenseRandom(seed+1, d, 1, blockSize)
	// Center the ground truth around zero so classes are balanced.
	wTrue = matrix.ScalarGrid(matrix.ScalarSub, raw, 0.6)
	scores, err := matrix.MulGrid(v, wTrue)
	if err != nil {
		panic(err) // shapes are constructed to match
	}
	y = matrix.NewDenseGrid(n, 1, blockSize)
	for i := 0; i < n; i++ {
		if scores.At(i, 0) > 0 {
			y.Set(i, 0, 1)
		}
	}
	return v, y, wTrue
}
