package apps

import (
	"fmt"

	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/matrix"
)

// TriangleCount counts triangles in an undirected simple graph via the
// matrix identity
//
//	triangles = trace(A³) / 6 = sum(A² ∘ Aᵀ) / 6
//
// (Aᵀ = A for an undirected graph). It demonstrates a one-shot graph-mining
// matrix program, the class of workloads the paper's introduction motivates
// through Pegasus-style algorithms. The adjacency matrix must be symmetric
// with a zero diagonal.
func TriangleCount(e *engine.Engine, adjacency *matrix.Grid) (*Result, float64, error) {
	n := adjacency.Rows()
	if adjacency.Cols() != n {
		return nil, 0, fmt.Errorf("apps: adjacency must be square, got %dx%d", n, adjacency.Cols())
	}
	if err := bindAll(e, map[string]*matrix.Grid{"A": adjacency}); err != nil {
		return nil, 0, err
	}
	s := sparsityOf(adjacency)
	p := expr.NewProgram()
	A := p.Var("A", n, n, s)
	A2 := p.Mul(A, A)
	// Hadamard with the transposed read keeps the identity valid even for
	// near-symmetric inputs and exercises the Transpose dependency.
	p.Sum("path3", p.CellMul(A2, A.T()))
	m, err := e.Run(p, nil)
	if err != nil {
		return nil, 0, err
	}
	res := &Result{PerIteration: []engine.Metrics{m}, Scalars: map[string]float64{}}
	path3, _ := e.Scalar("path3")
	triangles := path3 / 6
	res.Scalars["triangles"] = triangles
	return res, triangles, nil
}

// Symmetrize returns the undirected version of a directed adjacency matrix:
// an edge in either direction becomes an edge in both, the diagonal is
// cleared, and weights collapse to 1.
func Symmetrize(g *matrix.Grid) *matrix.Grid {
	n := g.Rows()
	seen := make(map[[2]int]bool)
	var coords []matrix.Coord
	add := func(i, j int) {
		if i == j || seen[[2]int{i, j}] {
			return
		}
		seen[[2]int{i, j}] = true
		coords = append(coords, matrix.Coord{Row: i, Col: j, Val: 1})
	}
	for bi := 0; bi < g.BlockRows(); bi++ {
		for bj := 0; bj < g.BlockCols(); bj++ {
			r0, c0 := bi*g.BlockSize(), bj*g.BlockSize()
			b := g.Block(bi, bj)
			if t, ok := b.(*matrix.CSCBlock); ok {
				t.EachNZ(func(i, j int, v float64) {
					add(r0+i, c0+j)
					add(c0+j, r0+i)
				})
				continue
			}
			for i := 0; i < b.Rows(); i++ {
				for j := 0; j < b.Cols(); j++ {
					if b.At(i, j) != 0 {
						add(r0+i, c0+j)
						add(c0+j, r0+i)
					}
				}
			}
		}
	}
	return matrix.FromCoords(n, n, g.BlockSize(), coords)
}
