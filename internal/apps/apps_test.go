package apps

import (
	"math"
	"testing"

	"dmac/internal/dist"
	"dmac/internal/engine"
	"dmac/internal/matrix"
	"dmac/internal/workload"
)

const testBS = 16

func newEngine(p engine.Planner) *engine.Engine {
	return engine.New(p, dist.Config{Workers: 4, LocalParallelism: 2}, testBS)
}

func TestGNMFAgreesAcrossEngines(t *testing.T) {
	v := workload.Ratings(1, 48, 64, testBS, 0.2)
	grids := map[engine.Planner]*matrix.Grid{}
	var comm = map[engine.Planner]int64{}
	for _, p := range []engine.Planner{engine.Local, engine.DMac, engine.SystemMLS} {
		e := newEngine(p)
		res, err := GNMF(e, v.Clone(), 6, 4, 99)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(res.PerIteration) != 4 {
			t.Fatalf("%s: %d iterations recorded", p, len(res.PerIteration))
		}
		h, ok := e.Grid("H")
		if !ok {
			t.Fatalf("%s: H missing", p)
		}
		grids[p] = h
		comm[p] = res.Total().CommBytes
	}
	if !matrix.GridEqual(grids[engine.DMac], grids[engine.Local], 1e-8) {
		t.Error("DMac H differs from local reference")
	}
	if !matrix.GridEqual(grids[engine.SystemMLS], grids[engine.Local], 1e-8) {
		t.Error("SystemML-S H differs from local reference")
	}
	if comm[engine.DMac] >= comm[engine.SystemMLS] {
		t.Errorf("DMac comm %d >= SystemML-S comm %d", comm[engine.DMac], comm[engine.SystemMLS])
	}
	if comm[engine.Local] != 0 {
		t.Errorf("local engine communicated %d bytes", comm[engine.Local])
	}
}

func TestGNMFReducesReconstructionError(t *testing.T) {
	v := workload.Ratings(2, 40, 50, testBS, 0.3)
	e := newEngine(engine.Local)
	errAt := func(iter int) float64 {
		eng := newEngine(engine.Local)
		if _, err := GNMF(eng, v.Clone(), 5, iter, 7); err != nil {
			t.Fatal(err)
		}
		w, _ := eng.Grid("W")
		h, _ := eng.Grid("H")
		wh, err := matrix.MulGrid(w, h)
		if err != nil {
			t.Fatal(err)
		}
		diff, err := matrix.CellwiseGrid(matrix.OpSub, v, wh)
		if err != nil {
			t.Fatal(err)
		}
		return matrix.FrobeniusSqGrid(diff)
	}
	_ = e
	if e1, e10 := errAt(1), errAt(10); e10 >= e1 {
		t.Errorf("GNMF error did not decrease: %v -> %v", e1, e10)
	}
}

func TestPageRankConvergesAndAgrees(t *testing.T) {
	adj := workload.PowerLawGraph(3, 150, 6, testBS)
	ranks := map[engine.Planner]*matrix.Grid{}
	for _, p := range []engine.Planner{engine.Local, engine.DMac, engine.SystemMLS} {
		e := newEngine(p)
		res, err := PageRank(e, adj.Clone(), 40, 5)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(res.PerIteration) != 40 {
			t.Fatalf("%s: iterations %d", p, len(res.PerIteration))
		}
		r, _ := e.Grid("rank")
		ranks[p] = r
	}
	// Every node has out-edges, so the stationary ranks sum to 1.
	if s := matrix.SumGrid(ranks[engine.Local]); math.Abs(s-1) > 1e-6 {
		t.Errorf("rank sum = %v, want 1", s)
	}
	// All ranks positive.
	for _, v := range ranks[engine.Local].ToDense() {
		if v <= 0 {
			t.Fatal("non-positive rank")
		}
	}
	if !matrix.GridEqual(ranks[engine.DMac], ranks[engine.Local], 1e-10) {
		t.Error("DMac ranks differ from local")
	}
	if !matrix.GridEqual(ranks[engine.SystemMLS], ranks[engine.Local], 1e-10) {
		t.Error("SystemML-S ranks differ from local")
	}
}

func TestPageRankDMacCachesLink(t *testing.T) {
	// The paper (Section 6.4): DMac caches the Column scheme of link; per
	// iteration only the small rank matrix moves. SystemML-S repartitions
	// the link matrix every iteration.
	adj := workload.PowerLawGraph(4, 200, 8, testBS)
	var perIter [2]int64
	for i, p := range []engine.Planner{engine.DMac, engine.SystemMLS} {
		e := newEngine(p)
		res, err := PageRank(e, adj.Clone(), 5, 5)
		if err != nil {
			t.Fatal(err)
		}
		// Use the last iteration (steady state).
		perIter[i] = res.PerIteration[4].CommBytes
	}
	if perIter[0]*4 > perIter[1] {
		t.Errorf("DMac steady-state comm %d should be <1/4 of SystemML-S %d", perIter[0], perIter[1])
	}
}

func TestLinRegSolvesAndAgrees(t *testing.T) {
	v := workload.SparseUniform(6, 80, 24, testBS, 0.3)
	y := workload.DenseRandom(7, 80, 1, testBS)
	ws := map[engine.Planner]*matrix.Grid{}
	var norms = map[engine.Planner]float64{}
	for _, p := range []engine.Planner{engine.Local, engine.DMac, engine.SystemMLS} {
		e := newEngine(p)
		res, err := LinReg(e, v.Clone(), y.Clone(), 1e-6, 12, 11)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		w, ok := e.Grid("w")
		if !ok {
			t.Fatalf("%s: w missing", p)
		}
		ws[p] = w
		norms[p] = res.Scalars["norm_r2"]
	}
	if !matrix.GridEqual(ws[engine.DMac], ws[engine.Local], 1e-6) {
		t.Error("DMac w differs from local")
	}
	if !matrix.GridEqual(ws[engine.SystemMLS], ws[engine.Local], 1e-6) {
		t.Error("SystemML-S w differs from local")
	}
	// CG on a full-column-rank system drives the residual toward zero.
	e := newEngine(engine.Local)
	res1, err := LinReg(e, v.Clone(), y.Clone(), 1e-6, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	if norms[engine.Local] >= res1.Scalars["norm_r2"] {
		t.Errorf("residual did not decrease: %v -> %v", res1.Scalars["norm_r2"], norms[engine.Local])
	}
}

func TestLinRegValidatesShapes(t *testing.T) {
	e := newEngine(engine.Local)
	v := workload.SparseUniform(6, 30, 10, testBS, 0.3)
	badY := workload.DenseRandom(7, 10, 1, testBS)
	if _, err := LinReg(e, v, badY, 0, 2, 1); err == nil {
		t.Error("expected shape error for y")
	}
}

func TestCFAgreesAndNormalizes(t *testing.T) {
	r := workload.Ratings(9, 40, 60, testBS, 0.15)
	preds := map[engine.Planner]*matrix.Grid{}
	for _, p := range []engine.Planner{engine.Local, engine.DMac, engine.SystemMLS} {
		e := newEngine(p)
		res, err := CF(e, r.Clone())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Scalars["result_norm"] <= 0 {
			t.Fatalf("%s: norm %v", p, res.Scalars["result_norm"])
		}
		pr, ok := e.Grid("predict")
		if !ok {
			t.Fatalf("%s: predict missing", p)
		}
		preds[p] = pr
	}
	if !matrix.GridEqual(preds[engine.DMac], preds[engine.Local], 1e-9) {
		t.Error("DMac predictions differ from local")
	}
	if !matrix.GridEqual(preds[engine.SystemMLS], preds[engine.Local], 1e-9) {
		t.Error("SystemML-S predictions differ from local")
	}
	// Normalized: unit Frobenius norm.
	if n := math.Sqrt(matrix.FrobeniusSqGrid(preds[engine.Local])); math.Abs(n-1) > 1e-9 {
		t.Errorf("predictions have norm %v, want 1", n)
	}
	// predict == (R Rᵀ R) / ‖R Rᵀ R‖.
	rrt, _ := matrix.MulGrid(r, r.Transpose())
	rrtr, _ := matrix.MulGrid(rrt, r)
	scale := 1 / math.Sqrt(matrix.FrobeniusSqGrid(rrtr))
	want := matrix.ScalarGrid(matrix.ScalarMul, rrtr, scale)
	if !matrix.GridEqual(preds[engine.Local], want, 1e-9) {
		t.Error("predictions do not match R RᵀR normalized")
	}
}

func TestSVDSingularValues(t *testing.T) {
	// Build V with known singular values: a diagonal-ish matrix.
	const n, d = 24, 8
	coords := []matrix.Coord{}
	want := []float64{9, 7, 5, 4, 3, 2.5, 1.5, 0.5}
	for i, s := range want {
		coords = append(coords, matrix.Coord{Row: i, Col: i, Val: s})
	}
	v := matrix.FromCoords(n, d, testBS, coords)
	for _, p := range []engine.Planner{engine.Local, engine.DMac, engine.SystemMLS} {
		e := newEngine(p)
		_, sv, err := SVD(e, v.Clone(), d, 21)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(sv) == 0 {
			t.Fatalf("%s: no singular values", p)
		}
		// Lanczos with full rank recovers the spectrum; compare the top
		// values (the tail may be perturbed by breakdown handling).
		for i := 0; i < 3 && i < len(sv); i++ {
			if math.Abs(sv[i]-want[i]) > 1e-6 {
				t.Errorf("%s: sigma[%d] = %v, want %v", p, i, sv[i], want[i])
			}
		}
	}
}

func TestSVDTraceIdentity(t *testing.T) {
	// With rank = d, the sum of squared singular values equals ‖V‖F².
	v := workload.SparseUniform(13, 30, 6, testBS, 0.5)
	e := newEngine(engine.Local)
	_, sv, err := SVD(e, v.Clone(), 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, s := range sv {
		sum += s * s
	}
	want := matrix.FrobeniusSqGrid(v)
	if math.Abs(sum-want) > 1e-6*want {
		t.Errorf("sum of squared singular values = %v, want %v", sum, want)
	}
}

func TestSVDRankValidation(t *testing.T) {
	v := workload.SparseUniform(13, 10, 5, testBS, 0.5)
	e := newEngine(engine.Local)
	if _, _, err := SVD(e, v, 0, 1); err == nil {
		t.Error("rank 0 must fail")
	}
	if _, _, err := SVD(e, v, 6, 1); err == nil {
		t.Error("rank > d must fail")
	}
}

func TestEigTridiag(t *testing.T) {
	// Diagonal matrix.
	eig, err := EigTridiag([]float64{3, 1, 2}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(eig[i]-want) > 1e-9 {
			t.Errorf("eig[%d] = %v, want %v", i, eig[i], want)
		}
	}
	// 2x2 analytic: [[a, b], [b, c]].
	a, b, c := 2.0, 1.5, -1.0
	mean, diff := (a+c)/2, (a-c)/2
	r := math.Sqrt(diff*diff + b*b)
	eig, err = EigTridiag([]float64{a, c}, []float64{b})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-(mean-r)) > 1e-9 || math.Abs(eig[1]-(mean+r)) > 1e-9 {
		t.Errorf("2x2 eig = %v, want [%v %v]", eig, mean-r, mean+r)
	}
	// Error and degenerate cases.
	if _, err := EigTridiag([]float64{1, 2}, []float64{}); err == nil {
		t.Error("expected length error")
	}
	if eig, err := EigTridiag(nil, nil); err != nil || len(eig) != 0 {
		t.Error("empty input should be fine")
	}
	if eig, _ := EigTridiag([]float64{5}, []float64{}); math.Abs(eig[0]-5) > 1e-9 {
		t.Errorf("1x1 eig = %v", eig)
	}
}

func TestResultTotal(t *testing.T) {
	r := &Result{PerIteration: []engine.Metrics{
		{CommBytes: 10, WallSeconds: 1},
		{CommBytes: 20, WallSeconds: 2},
	}}
	tot := r.Total()
	if tot.CommBytes != 30 || tot.WallSeconds != 3 {
		t.Errorf("Total = %+v", tot)
	}
}
