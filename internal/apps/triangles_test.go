package apps

import (
	"testing"

	"dmac/internal/engine"
	"dmac/internal/matrix"
	"dmac/internal/workload"
)

// bruteTriangles counts triangles by enumerating all vertex triples.
func bruteTriangles(g *matrix.Grid) int {
	n := g.Rows()
	d := g.ToDense()
	at := func(i, j int) bool { return d[i*n+j] != 0 }
	count := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !at(i, j) {
				continue
			}
			for k := j + 1; k < n; k++ {
				if at(j, k) && at(i, k) {
					count++
				}
			}
		}
	}
	return count
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	adj := Symmetrize(workload.PowerLawGraph(21, 60, 5, testBS))
	want := bruteTriangles(adj)
	for _, p := range []engine.Planner{engine.Local, engine.DMac, engine.SystemMLS} {
		e := newEngine(p)
		_, got, err := TriangleCount(e, adj.Clone())
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if int(got+0.5) != want {
			t.Errorf("%s: triangles = %v, want %d", p, got, want)
		}
	}
}

func TestTriangleCountKnownGraphs(t *testing.T) {
	// K4: 4 triangles.
	var coords []matrix.Coord
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				coords = append(coords, matrix.Coord{Row: i, Col: j, Val: 1})
			}
		}
	}
	k4 := matrix.FromCoords(4, 4, testBS, coords)
	e := newEngine(engine.Local)
	_, got, err := TriangleCount(e, k4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("K4 triangles = %v, want 4", got)
	}
	// A 4-cycle has none.
	cycle := matrix.FromCoords(4, 4, testBS, []matrix.Coord{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 1, Col: 2, Val: 1}, {Row: 2, Col: 1, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
		{Row: 3, Col: 0, Val: 1}, {Row: 0, Col: 3, Val: 1},
	})
	e2 := newEngine(engine.Local)
	_, got, err = TriangleCount(e2, cycle)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("C4 triangles = %v, want 0", got)
	}
	// Non-square input is rejected.
	e3 := newEngine(engine.Local)
	if _, _, err := TriangleCount(e3, matrix.NewDenseGrid(3, 4, testBS)); err == nil {
		t.Error("expected shape error")
	}
}

func TestSymmetrize(t *testing.T) {
	g := workload.PowerLawGraph(5, 40, 4, testBS)
	sym := Symmetrize(g)
	d := sym.ToDense()
	n := sym.Rows()
	for i := 0; i < n; i++ {
		if d[i*n+i] != 0 {
			t.Fatalf("diagonal entry at %d", i)
		}
		for j := 0; j < n; j++ {
			if d[i*n+j] != d[j*n+i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
			if v := d[i*n+j]; v != 0 && v != 1 {
				t.Fatalf("non-binary weight %v", v)
			}
		}
	}
	// Every original edge is present in some direction.
	orig := g.ToDense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && orig[i*n+j] != 0 && d[i*n+j] == 0 {
				t.Fatalf("edge (%d,%d) lost", i, j)
			}
		}
	}
}
