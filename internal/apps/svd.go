package apps

import (
	"fmt"
	"math"
	"sort"

	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/workload"
)

// SVD approximates the top singular values of V (n x d) with the Lanczos
// algorithm of Code 5: the cluster iterates w = Vᵀ(V vc), the driver builds
// the rank x rank tridiagonal matrix, and the singular values are the square
// roots of its eigenvalues. It returns the singular values in descending
// order together with the per-iteration metrics.
//
// The Lanczos recurrence follows the standard form (the paper's listing has
// two well-known typos — alpha uses vc, not vp, and beta is ‖w‖ — which are
// corrected here, as any implementation must).
func SVD(e *engine.Engine, v *matrix.Grid, rank int, seed int64) (*Result, []float64, error) {
	n, d := v.Rows(), v.Cols()
	if rank < 1 || rank > d {
		return nil, nil, fmt.Errorf("apps: rank %d out of range [1, %d]", rank, d)
	}
	bs := e.BlockSize()
	// vc starts as a random unit vector; vp starts as zero.
	vc := workload.DenseRandom(seed, d, 1, bs)
	norm := math.Sqrt(matrix.FrobeniusSqGrid(vc))
	vc = matrix.ScalarGrid(matrix.ScalarMul, vc, 1/norm)
	vp := matrix.NewDenseGrid(d, 1, bs)
	if err := bindAll(e, map[string]*matrix.Grid{"V": v, "vc": vc, "vp": vp}); err != nil {
		return nil, nil, err
	}
	vs := sparsityOf(v)

	// Program A: wv = Vᵀ(V vc); alpha = value(vcᵀ wv).
	progA := expr.NewProgram()
	{
		V := progA.Var("V", n, d, vs)
		c := progA.Var("vc", d, 1, 1)
		wv := progA.Mul(V.T(), progA.Mul(V, c))
		progA.Value("alpha", progA.Mul(c.T(), wv))
		progA.Assign("wv", wv)
	}
	// Program B: w2 = wv - vc*alpha - vp*beta; beta' = norm2(w2); vp = vc.
	progB := expr.NewProgram()
	{
		wv := progB.Var("wv", d, 1, 1)
		c := progB.Var("vc", d, 1, 1)
		p := progB.Var("vp", d, 1, 1)
		w2 := progB.Sub(progB.Sub(wv, progB.ScalarParam(matrix.ScalarMul, c, "alpha")),
			progB.ScalarParam(matrix.ScalarMul, p, "beta"))
		progB.Norm2("beta_next", w2)
		progB.Assign("w2", w2)
		progB.Assign("vp", c)
	}
	// Program C: vc = w2 * (1/beta').
	progC := expr.NewProgram()
	{
		w2 := progC.Var("w2", d, 1, 1)
		progC.Assign("vc", progC.ScalarParam(matrix.ScalarMul, w2, "inv_beta"))
	}

	res := &Result{Scalars: map[string]float64{}}
	diag := make([]float64, 0, rank)
	sub := make([]float64, 0, rank)
	beta := 0.0
	for i := 0; i < rank; i++ {
		var iter engine.Metrics
		mA, err := e.Run(progA, nil)
		if err != nil {
			return nil, nil, err
		}
		alpha, _ := e.Scalar("alpha")
		mB, err := e.Run(progB, map[string]float64{"alpha": alpha, "beta": beta})
		if err != nil {
			return nil, nil, err
		}
		betaNext, _ := e.Scalar("beta_next")
		diag = append(diag, alpha)
		iter.Add(mA)
		iter.Add(mB)
		if betaNext < 1e-12 {
			// Lanczos breakdown: the Krylov space is exhausted; the
			// tridiagonal matrix built so far carries all information.
			res.PerIteration = append(res.PerIteration, iter)
			break
		}
		mC, err := e.Run(progC, map[string]float64{"inv_beta": 1 / betaNext})
		if err != nil {
			return nil, nil, err
		}
		iter.Add(mC)
		res.PerIteration = append(res.PerIteration, iter)
		if i < rank-1 {
			sub = append(sub, betaNext)
		}
		beta = betaNext
	}
	if len(sub) >= len(diag) && len(diag) > 0 {
		sub = sub[:len(diag)-1]
	}
	eig, err := EigTridiag(diag, sub)
	if err != nil {
		return nil, nil, err
	}
	// Singular values of V are the square roots of the eigenvalues of VᵀV;
	// clamp tiny negatives from finite precision.
	sv := make([]float64, 0, len(eig))
	for _, l := range eig {
		if l < 0 {
			l = 0
		}
		sv = append(sv, math.Sqrt(l))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sv)))
	if len(sv) > 0 {
		res.Scalars["sigma_max"] = sv[0]
	}
	return res, sv, nil
}
