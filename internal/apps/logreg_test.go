package apps

import (
	"testing"

	"dmac/internal/engine"
	"dmac/internal/matrix"
)

func TestLogRegLearnsAndAgrees(t *testing.T) {
	v, y, _ := LabeledData(31, 120, 12, testBS, 0.4)
	ws := map[engine.Planner]*matrix.Grid{}
	var nll1, nllEnd float64
	for _, p := range []engine.Planner{engine.Local, engine.DMac, engine.SystemMLS} {
		e := newEngine(p)
		res, err := LogReg(e, v.Clone(), y.Clone(), 0.5, 1e-4, 30, 7)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		w, ok := e.Grid("w")
		if !ok {
			t.Fatalf("%s: w missing", p)
		}
		ws[p] = w
		if p == engine.Local {
			nllEnd = res.Scalars["nll"]
		}
	}
	if !matrix.GridEqual(ws[engine.DMac], ws[engine.Local], 1e-8) {
		t.Error("DMac weights differ from local")
	}
	if !matrix.GridEqual(ws[engine.SystemMLS], ws[engine.Local], 1e-8) {
		t.Error("SystemML-S weights differ from local")
	}
	// The loss decreases with training.
	eShort := newEngine(engine.Local)
	resShort, err := LogReg(eShort, v.Clone(), y.Clone(), 0.5, 1e-4, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	nll1 = resShort.Scalars["nll"]
	if nllEnd >= nll1 {
		t.Errorf("NLL did not decrease: %v -> %v", nll1, nllEnd)
	}
	// Training accuracy beats chance comfortably.
	scores, err := matrix.MulGrid(v, ws[engine.Local])
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < v.Rows(); i++ {
		pred := 0.0
		if scores.At(i, 0) > 0 {
			pred = 1
		}
		if pred == y.At(i, 0) {
			correct++
		}
	}
	if acc := float64(correct) / float64(v.Rows()); acc < 0.85 {
		t.Errorf("training accuracy %.2f, want >= 0.85", acc)
	}
}

func TestLogRegValidatesShapes(t *testing.T) {
	e := newEngine(engine.Local)
	v, _, _ := LabeledData(1, 30, 5, testBS, 0.5)
	badY := matrix.NewDenseGrid(29, 1, testBS)
	if _, err := LogReg(e, v, badY, 0.1, 0, 1, 1); err == nil {
		t.Error("expected shape error")
	}
}

func TestLabeledDataBalanced(t *testing.T) {
	_, y, _ := LabeledData(5, 400, 20, testBS, 0.3)
	pos := 0
	for i := 0; i < 400; i++ {
		if y.At(i, 0) == 1 {
			pos++
		}
	}
	// Both classes present with at least 10% each.
	if pos < 40 || pos > 360 {
		t.Errorf("class balance: %d/400 positive", pos)
	}
}
