package apps

import (
	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/workload"
)

// GNMF runs the Gaussian non-negative matrix factorization of Code 1:
// V ~ W H with factor size k, iterating
//
//	H = H * (Wᵀ V) / (Wᵀ W H)
//	W = W * (V Hᵀ) / (W H Hᵀ)
//
// for the given number of iterations. v is the input (movies x users in the
// Netflix experiments); W and H are initialized from the seed.
func GNMF(e *engine.Engine, v *matrix.Grid, k, iterations int, seed int64) (*Result, error) {
	bs := e.BlockSize()
	w := workload.DenseRandom(seed, v.Rows(), k, bs)
	h := workload.DenseRandom(seed+1, k, v.Cols(), bs)
	if err := bindAll(e, map[string]*matrix.Grid{"V": v, "W": w, "H": h}); err != nil {
		return nil, err
	}
	prog := GNMFIteration(v.Rows(), v.Cols(), k, sparsityOf(v))
	res := &Result{Scalars: map[string]float64{}}
	for i := 0; i < iterations; i++ {
		m, err := e.Run(prog, nil)
		if err != nil {
			return nil, err
		}
		res.PerIteration = append(res.PerIteration, m)
	}
	return res, nil
}

// GNMFIteration builds the program for one GNMF iteration over session
// variables V (rows x cols, sparsity s), W (rows x k) and H (k x cols).
func GNMFIteration(rows, cols, k int, vSparsity float64) *expr.Program {
	p := expr.NewProgram()
	V := p.Var("V", rows, cols, vSparsity)
	W := p.Var("W", rows, k, 1)
	H := p.Var("H", k, cols, 1)
	// H = H * (Wᵀ V) / (Wᵀ W %*% H)
	WtV := p.Mul(W.T(), V)
	WtW := p.Mul(W.T(), W)
	WtWH := p.Mul(WtW, H)
	newH := p.CellDiv(p.CellMul(H, WtV), WtWH)
	// W = W * (V Hᵀ) / (W %*% (H Hᵀ)), with the updated H as in Code 1.
	VHt := p.Mul(V, newH.T())
	HHt := p.Mul(newH, newH.T())
	WHHt := p.Mul(W, HHt)
	newW := p.CellDiv(p.CellMul(W, VHt), WHHt)
	p.Assign("H", newH)
	p.Assign("W", newW)
	return p
}
