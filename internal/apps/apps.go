// Package apps implements the matrix applications of the paper's evaluation
// (Section 6.4 and the Appendix) against the engine API: GNMF (Code 1),
// PageRank (Code 2), Collaborative Filtering (Code 3), Linear Regression via
// conjugate gradient (Code 4) and SVD via the Lanczos algorithm (Code 5).
//
// Each application binds its inputs, then runs one or more programs per
// iteration; driver-side scalars (alpha, beta, ...) flow between programs as
// parameters, exactly as the Scala driver does in the paper's codes. The
// same application code runs on any engine (DMac, SystemML-S, Local), which
// is what the comparative experiments exercise.
package apps

import (
	"fmt"

	"dmac/internal/engine"
	"dmac/internal/matrix"
)

// Result collects per-iteration metrics of an application run.
type Result struct {
	// PerIteration has one entry per outer iteration (all programs of the
	// iteration folded together).
	PerIteration []engine.Metrics
	// Scalars carries named application outputs (e.g. singular values).
	Scalars map[string]float64
}

// Total folds all iterations into one Metrics value.
func (r *Result) Total() engine.Metrics {
	var t engine.Metrics
	for _, m := range r.PerIteration {
		t.Add(m)
	}
	return t
}

// sparsityOf returns the realized sparsity of a grid, for worst-case
// propagation seeds.
func sparsityOf(g *matrix.Grid) float64 {
	cells := float64(g.Rows()) * float64(g.Cols())
	if cells == 0 {
		return 0
	}
	return float64(g.NNZ()) / cells
}

func bindAll(e *engine.Engine, grids map[string]*matrix.Grid) error {
	for name, g := range grids {
		if err := e.Bind(name, g); err != nil {
			return fmt.Errorf("apps: bind %s: %w", name, err)
		}
	}
	return nil
}
