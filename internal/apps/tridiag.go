package apps

import (
	"fmt"
	"math"
	"sort"
)

// EigTridiag computes all eigenvalues of a symmetric tridiagonal matrix with
// the given diagonal (length n) and sub-diagonal (length n-1), in ascending
// order. It uses bisection over Sturm sequences, which is robust and exact
// to the requested tolerance — sufficient for the small tridiagonal systems
// the Lanczos SVD builds at the driver (Code 5 line 22,
// "triDiag.computeSingularValue").
func EigTridiag(diag, sub []float64) ([]float64, error) {
	n := len(diag)
	if n == 0 {
		return nil, nil
	}
	if len(sub) != n-1 {
		return nil, fmt.Errorf("apps: sub-diagonal length %d, want %d", len(sub), n-1)
	}
	// Gershgorin bounds.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		radius := 0.0
		if i > 0 {
			radius += math.Abs(sub[i-1])
		}
		if i < n-1 {
			radius += math.Abs(sub[i])
		}
		lo = math.Min(lo, diag[i]-radius)
		hi = math.Max(hi, diag[i]+radius)
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	tol := 1e-12 * span

	// countBelow returns the number of eigenvalues strictly less than x
	// (Sturm sequence sign count).
	sq := make([]float64, n-1)
	for i, v := range sub {
		sq[i] = v * v
	}
	countBelow := func(x float64) int {
		count := 0
		d := diag[0] - x
		if d < 0 {
			count++
		}
		for i := 1; i < n; i++ {
			den := d
			if den == 0 {
				den = 1e-300
			}
			d = diag[i] - x - sq[i-1]/den
			if d < 0 {
				count++
			}
		}
		return count
	}

	eig := make([]float64, n)
	for k := 0; k < n; k++ {
		a, b := lo, hi
		for b-a > tol {
			mid := (a + b) / 2
			if countBelow(mid) <= k {
				a = mid
			} else {
				b = mid
			}
			if mid == a && mid == b {
				break
			}
		}
		eig[k] = (a + b) / 2
	}
	sort.Float64s(eig)
	return eig, nil
}
