package apps

import (
	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/workload"
)

// PageRank runs Code 2 on a row-normalized link matrix:
//
//	rank = (rank %*% link) * 0.85 + D * 0.15
//
// where rank is 1 x N and D is the uniform teleport vector. adjacency is the
// raw graph; it is row-normalized here.
func PageRank(e *engine.Engine, adjacency *matrix.Grid, iterations int, seed int64) (*Result, error) {
	n := adjacency.Rows()
	bs := e.BlockSize()
	link := workload.RowNormalize(adjacency)
	rank := workload.DenseRandom(seed, 1, n, bs)
	// Normalize the random initial ranks to a distribution so the iteration
	// converges to the stationary scale quickly.
	rank = matrix.ScalarGrid(matrix.ScalarMul, rank, 1/matrix.SumGrid(rank))
	// D is the uniform distribution so the ranks keep a probability-like
	// scale.
	dData := make([]float64, n)
	for i := range dData {
		dData[i] = 1.0 / float64(n)
	}
	d := matrix.FromDense(1, n, bs, dData)
	if err := bindAll(e, map[string]*matrix.Grid{"link": link, "rank": rank, "D": d}); err != nil {
		return nil, err
	}
	prog := PageRankIteration(n, sparsityOf(link))
	res := &Result{Scalars: map[string]float64{}}
	for i := 0; i < iterations; i++ {
		m, err := e.Run(prog, nil)
		if err != nil {
			return nil, err
		}
		res.PerIteration = append(res.PerIteration, m)
	}
	return res, nil
}

// PageRankIteration builds the program for one PageRank iteration over
// session variables link (n x n, given sparsity), rank and D (1 x n).
func PageRankIteration(n int, linkSparsity float64) *expr.Program {
	p := expr.NewProgram()
	link := p.Var("link", n, n, linkSparsity)
	rank := p.Var("rank", 1, n, 1)
	d := p.Var("D", 1, n, 1)
	walked := p.Scalar(matrix.ScalarMul, p.Mul(rank, link), 0.85)
	teleport := p.Scalar(matrix.ScalarMul, d, 0.15)
	p.Assign("rank", p.Add(walked, teleport))
	return p
}
