// Package retry is the shared backoff policy of the runtime: capped
// exponential backoff with optional deterministic jitter and a total-budget
// cap. Two very different consumers share it. The engine's stage retry uses
// the deterministic (jitter-free) Backoff schedule to price modelled stall
// time — the differential harnesses depend on the same plan always costing
// the same modelled seconds. The wire transport uses a jittered schedule
// with real sleeping (Do) for dials and reconnects, where jitter exists
// precisely to decorrelate peers retrying against the same endpoint.
package retry

import (
	"context"
	"math"
	"math/rand"
	"time"
)

// Policy describes a backoff schedule. The zero value is usable and falls
// back to the package defaults (50 ms base, 1 s cap, unlimited attempts and
// budget, no jitter).
type Policy struct {
	// BaseSec is the backoff before the first retry; it doubles per attempt.
	BaseSec float64
	// CapSec caps the per-attempt backoff.
	CapSec float64
	// Jitter spreads each backoff uniformly over [1-Jitter, 1+Jitter] times
	// its nominal value. Must be in [0, 1); 0 disables jitter and makes the
	// schedule fully deterministic.
	Jitter float64
	// MaxAttempts caps how many attempts Do makes (and how many Next calls a
	// Backoff allows). 0 means unlimited.
	MaxAttempts int
	// BudgetSec caps the total backoff a Backoff (or Do loop) may accumulate
	// across attempts; once the next backoff would exceed the remaining
	// budget the retry sequence is exhausted. 0 means unlimited.
	BudgetSec float64
	// Seed drives the jitter stream, so a seeded policy retries identically
	// across runs. Ignored when Jitter is 0.
	Seed int64
}

func (p Policy) withDefaults() Policy {
	if p.BaseSec <= 0 {
		p.BaseSec = 0.05
	}
	if p.CapSec <= 0 {
		p.CapSec = 1.0
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter >= 1 {
		p.Jitter = 0.999
	}
	return p
}

// Backoff returns the deterministic (jitter-free) backoff before retry
// `attempt` (0-based): BaseSec * 2^attempt, capped at CapSec. This is the
// exact schedule the engine's stage retry has always charged as modelled
// stall time.
func (p Policy) Backoff(attempt int) float64 {
	p = p.withDefaults()
	b := p.BaseSec * math.Pow(2, float64(attempt))
	if b > p.CapSec {
		b = p.CapSec
	}
	return b
}

// Backoff is the stateful retry sequence of one operation: it tracks the
// attempt count, the jitter stream, and the remaining budget. Not safe for
// concurrent use; each retried operation gets its own Backoff.
type Backoff struct {
	p       Policy
	rng     *rand.Rand
	attempt int
	spent   float64
}

// New starts a retry sequence under the policy.
func New(p Policy) *Backoff {
	p = p.withDefaults()
	b := &Backoff{p: p}
	if p.Jitter > 0 {
		b.rng = rand.New(rand.NewSource(p.Seed))
	}
	return b
}

// Attempt returns how many backoffs have been taken so far.
func (b *Backoff) Attempt() int { return b.attempt }

// SpentSec returns the total backoff seconds accumulated so far.
func (b *Backoff) SpentSec() float64 { return b.spent }

// Next returns the backoff to wait before the next retry, and whether the
// sequence still has budget for it. Exhaustion (false) means the caller
// should stop retrying: either MaxAttempts retries have been handed out or
// the budget cannot pay for the next wait.
func (b *Backoff) Next() (float64, bool) {
	if b.p.MaxAttempts > 0 && b.attempt >= b.p.MaxAttempts {
		return 0, false
	}
	d := b.p.Backoff(b.attempt)
	if b.rng != nil {
		// Uniform over [1-J, 1+J] times nominal, from the seeded stream.
		d *= 1 - b.p.Jitter + 2*b.p.Jitter*b.rng.Float64()
	}
	if b.p.BudgetSec > 0 && b.spent+d > b.p.BudgetSec {
		return 0, false
	}
	b.attempt++
	b.spent += d
	return d, true
}

// Do runs op, retrying with real (jittered, budgeted) sleeping while it
// fails. It stops and returns the last error when the policy is exhausted,
// and returns the context's error as soon as ctx is done — a sleep in
// progress is interrupted. This is the transport-dial retry loop.
func Do(ctx context.Context, p Policy, op func(ctx context.Context) error) error {
	b := New(p)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		d, ok := b.Next()
		if !ok {
			return err
		}
		t := time.NewTimer(time.Duration(d * float64(time.Second)))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}
