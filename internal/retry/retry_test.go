package retry

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"
)

// TestBackoffScheduleMatchesEngine pins the deterministic schedule to the
// exact doubling-then-cap sequence the engine's stage retry has always
// charged as modelled stall: base*2^attempt capped at CapSec.
func TestBackoffScheduleMatchesEngine(t *testing.T) {
	p := Policy{BaseSec: 0.05, CapSec: 1.0}
	want := []float64{0.05, 0.1, 0.2, 0.4, 0.8, 1.0, 1.0, 1.0}
	for i, w := range want {
		if got := p.Backoff(i); math.Abs(got-w) > 1e-12 {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	var p Policy
	if got := p.Backoff(0); got != 0.05 {
		t.Errorf("zero policy Backoff(0) = %v, want default base 0.05", got)
	}
	if got := p.Backoff(20); got != 1.0 {
		t.Errorf("zero policy Backoff(20) = %v, want default cap 1.0", got)
	}
}

// TestJitterBounds draws many jittered backoffs and checks every one stays
// inside [1-J, 1+J] times the nominal value — and that jitter actually
// spreads them (not all equal).
func TestJitterBounds(t *testing.T) {
	const jitter = 0.25
	p := Policy{BaseSec: 0.1, CapSec: 100, Jitter: jitter, Seed: 7}
	nominal := p.Backoff(0)
	lo, hi := nominal*(1-jitter), nominal*(1+jitter)
	seen := make(map[float64]bool)
	for trial := 0; trial < 200; trial++ {
		b := New(Policy{BaseSec: 0.1, CapSec: 100, Jitter: jitter, Seed: int64(trial)})
		d, ok := b.Next()
		if !ok {
			t.Fatalf("trial %d: first Next exhausted", trial)
		}
		if d < lo-1e-12 || d > hi+1e-12 {
			t.Fatalf("trial %d: jittered backoff %v outside [%v, %v]", trial, d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 50 {
		t.Errorf("jitter produced only %d distinct values over 200 seeds", len(seen))
	}
}

// TestJitterDeterministicPerSeed pins that the jitter stream is a pure
// function of the seed, so retries are reproducible.
func TestJitterDeterministicPerSeed(t *testing.T) {
	mk := func() []float64 {
		b := New(Policy{BaseSec: 0.1, CapSec: 10, Jitter: 0.5, Seed: 42})
		var out []float64
		for i := 0; i < 5; i++ {
			d, ok := b.Next()
			if !ok {
				t.Fatal("exhausted early")
			}
			out = append(out, d)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCapAppliesBeforeJitterScale(t *testing.T) {
	// At a high attempt the nominal value is the cap; jitter still spreads
	// around the cap but never exceeds cap*(1+J).
	p := Policy{BaseSec: 1, CapSec: 2, Jitter: 0.1, Seed: 3}
	b := New(p)
	for i := 0; i < 10; i++ {
		d, ok := b.Next()
		if !ok {
			break
		}
		if d > 2*1.1+1e-12 {
			t.Fatalf("attempt %d: backoff %v exceeds jittered cap", i, d)
		}
	}
}

// TestBudgetExhaustion verifies the total-backoff budget: once the next
// wait cannot be paid for, Next reports exhaustion, and the spent total
// never exceeds the budget.
func TestBudgetExhaustion(t *testing.T) {
	// 0.1 + 0.2 + 0.4 = 0.7 fits a 0.8 budget; the next 0.8 does not.
	b := New(Policy{BaseSec: 0.1, CapSec: 10, BudgetSec: 0.8})
	var n int
	for {
		_, ok := b.Next()
		if !ok {
			break
		}
		n++
		if n > 100 {
			t.Fatal("budget never exhausted")
		}
	}
	if n != 3 {
		t.Errorf("budget 0.8 allowed %d retries, want 3", n)
	}
	if b.SpentSec() > 0.8+1e-12 {
		t.Errorf("spent %v exceeds budget", b.SpentSec())
	}
}

func TestMaxAttemptsExhaustion(t *testing.T) {
	b := New(Policy{BaseSec: 0.01, CapSec: 1, MaxAttempts: 2})
	if _, ok := b.Next(); !ok {
		t.Fatal("attempt 1 refused")
	}
	if _, ok := b.Next(); !ok {
		t.Fatal("attempt 2 refused")
	}
	if _, ok := b.Next(); ok {
		t.Fatal("attempt 3 allowed past MaxAttempts=2")
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{BaseSec: 1e-4, CapSec: 1e-3}, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestDoReturnsLastErrorOnExhaustion(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := Do(context.Background(), Policy{BaseSec: 1e-5, CapSec: 1e-4, MaxAttempts: 2}, func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Do = %v, want last error %v", err, boom)
	}
	if calls != 3 { // initial attempt + 2 retries
		t.Fatalf("Do made %d calls, want 3", calls)
	}
}

func TestDoHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Do(ctx, Policy{BaseSec: 10, CapSec: 10}, func(context.Context) error {
		return errors.New("always fails")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not interrupt the sleep")
	}
}
