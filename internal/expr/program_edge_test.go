package expr

import (
	"strings"
	"testing"

	"dmac/internal/matrix"
)

// A node must not read itself: the definition-order check catches it because
// a node's own ID is not yet marked as seen while its inputs are validated.
func TestValidateRejectsSelfReference(t *testing.T) {
	p := NewProgram()
	x := p.Var("X", 4, 4, 1)
	x.Node.Inputs = []Ref{x}
	err := p.Validate()
	if err == nil {
		t.Fatal("expected error for self-referential node")
	}
	if !strings.Contains(err.Error(), "before it is defined") {
		t.Errorf("unexpected error: %v", err)
	}
}

// Reading a node defined later in the program is equally invalid.
func TestValidateRejectsForwardReference(t *testing.T) {
	p := NewProgram()
	x := p.Var("X", 4, 4, 1)
	y := p.Var("Y", 4, 4, 1)
	x.Node.Inputs = []Ref{y}
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for forward reference")
	}
}

func TestValidateRejectsZeroDimShapes(t *testing.T) {
	cases := []struct {
		name       string
		rows, cols int
	}{
		{"zero-rows", 0, 4},
		{"zero-cols", 4, 0},
		{"negative-rows", -1, 4},
		{"both-zero", 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewProgram()
			x := p.Var("X", 8, 8, 1)
			x.Node.Rows, x.Node.Cols = tc.rows, tc.cols
			err := p.Validate()
			if err == nil {
				t.Fatal("expected error for non-positive shape")
			}
			if !strings.Contains(err.Error(), "non-positive shape") {
				t.Errorf("unexpected error: %v", err)
			}
		})
	}
}

// Ref.T is an involution: transposing twice restores the original reference,
// and shape accessors follow the flag.
func TestTransposeOfTransposeChains(t *testing.T) {
	p := NewProgram()
	a := p.Var("A", 3, 7, 1)
	tt := a.T().T()
	if tt != a {
		t.Fatalf("t(t(A)) = %v, want %v", tt, a)
	}
	if a.T().Rows() != 7 || a.T().Cols() != 3 {
		t.Errorf("t(A) shape = %dx%d, want 7x3", a.T().Rows(), a.T().Cols())
	}
	// Even-length chains are the identity, odd-length chains one transpose.
	r := a
	for i := 0; i < 6; i++ {
		r = r.T()
	}
	if r.Transposed {
		t.Error("six transposes should cancel")
	}
	if !r.T().Transposed {
		t.Error("seventh transpose should flip")
	}

	// A product built from doubly-transposed refs is a plain product and
	// validates with the untransposed inner dimensions.
	b := p.Var("B", 7, 5, 1)
	m := p.Mul(a.T().T(), b.T().T())
	if m.Node.Inputs[0].Transposed || m.Node.Inputs[1].Transposed {
		t.Error("double transpose must not survive in inputs")
	}
	if m.Node.Rows != 3 || m.Node.Cols != 5 {
		t.Errorf("product shape = %dx%d, want 3x5", m.Node.Rows, m.Node.Cols)
	}
	p.Assign("out", m.T().T())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Node.Label(); got != "m0 %*% m1" {
		t.Errorf("label = %q", got)
	}
}

// Aggregates over transposed refs validate: sum(t(X)) is as legal as sum(X).
func TestAggregateOverTransposedRef(t *testing.T) {
	p := NewProgram()
	x := p.Var("X", 4, 6, 0.5)
	s := p.Sum("s", x.T())
	if !s.Inputs[0].Transposed {
		t.Error("sum input lost its transpose")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Corrupting a scalar op's arity after construction must fail validation.
func TestValidateRejectsCorruptedArity(t *testing.T) {
	p := NewProgram()
	x := p.Var("X", 4, 4, 1)
	y := p.Scalar(matrix.ScalarMul, x, 2)
	y.Node.Inputs = nil
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for unary op with no inputs")
	}
}
