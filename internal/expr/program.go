package expr

import (
	"fmt"

	"dmac/internal/dep"
	"dmac/internal/matrix"
)

// Assignment binds a session variable name to a matrix value produced by the
// program, e.g. `H = ...` at the end of a GNMF iteration.
type Assignment struct {
	Name string
	Ref  Ref
}

// ScalarOut binds a driver-scalar name to an aggregate node (sum / value /
// norm2), e.g. `norm_r2 = (r*r).sum` in conjugate gradient.
type ScalarOut struct {
	Name string
	Node *Node
}

// Program is a matrix program: an ordered sequence of operator nodes plus
// the variable assignments and scalar outputs it produces. One Program
// typically corresponds to one loop body of the paper's examples; session
// variables (KindVar) carry matrices — and their partition schemes — across
// executions, which is what exposes cross-iteration matrix dependencies to
// the planner.
type Program struct {
	nodes   []*Node
	assigns []Assignment
	scalars []ScalarOut
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{} }

// Nodes returns the operator sequence in construction order.
func (p *Program) Nodes() []*Node { return p.nodes }

// Assignments returns the variable assignments of the program.
func (p *Program) Assignments() []Assignment { return p.assigns }

// ScalarOuts returns the scalar outputs of the program.
func (p *Program) ScalarOuts() []ScalarOut { return p.scalars }

func (p *Program) add(n *Node) Ref {
	n.ID = dep.MatrixID(len(p.nodes))
	p.nodes = append(p.nodes, n)
	return Ref{Node: n}
}

// Load introduces an input matrix with the given shape and sparsity
// (sparsity may be pre-computed offline or specified by the user,
// Section 5.1).
func (p *Program) Load(name string, rows, cols int, sparsity float64) Ref {
	checkDims(name, rows, cols)
	return p.add(&Node{Kind: KindLoad, Name: name, Rows: rows, Cols: cols, Sparsity: clampSparsity(sparsity)})
}

// Var references a session variable produced by an earlier program
// execution. Shape and sparsity describe the materialized value.
func (p *Program) Var(name string, rows, cols int, sparsity float64) Ref {
	checkDims(name, rows, cols)
	return p.add(&Node{Kind: KindVar, Name: name, Rows: rows, Cols: cols, Sparsity: clampSparsity(sparsity)})
}

// Mul appends a matrix multiplication a %*% b.
func (p *Program) Mul(a, b Ref) Ref {
	if a.Cols() != b.Rows() {
		panic(fmt.Sprintf("expr: %%*%% shape mismatch %dx%d * %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
	// Worst-case estimate: a multiplication output is dense (Section 5.1).
	return p.add(&Node{Kind: KindMul, Inputs: []Ref{a, b}, Rows: a.Rows(), Cols: b.Cols(), Sparsity: 1})
}

func (p *Program) cell(op matrix.BinOp, a, b Ref) Ref {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		panic(fmt.Sprintf("expr: %s shape mismatch %dx%d vs %dx%d", op, a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
	// Worst-case sparsity of a non-multiplication binary operator is the
	// saturating sum of the input sparsities (Section 5.1).
	s := clampSparsity(a.Node.Sparsity + b.Node.Sparsity)
	return p.add(&Node{Kind: KindCell, BinOp: op, Inputs: []Ref{a, b}, Rows: a.Rows(), Cols: a.Cols(), Sparsity: s})
}

// Add appends the cell-wise sum a + b.
func (p *Program) Add(a, b Ref) Ref { return p.cell(matrix.OpAdd, a, b) }

// Sub appends the cell-wise difference a - b.
func (p *Program) Sub(a, b Ref) Ref { return p.cell(matrix.OpSub, a, b) }

// CellMul appends the cell-wise product a * b.
func (p *Program) CellMul(a, b Ref) Ref { return p.cell(matrix.OpCellMul, a, b) }

// CellDiv appends the cell-wise quotient a / b.
func (p *Program) CellDiv(a, b Ref) Ref { return p.cell(matrix.OpCellDiv, a, b) }

// Scalar appends an operation between matrix a and constant c.
func (p *Program) Scalar(op matrix.ScalarOp, a Ref, c float64) Ref {
	s := a.Node.Sparsity
	if !op.SparsityPreserving(c) {
		s = 1
	}
	return p.add(&Node{Kind: KindScalar, ScalarOp: op, Const: c, Inputs: []Ref{a}, Rows: a.Rows(), Cols: a.Cols(), Sparsity: s})
}

// ScalarParam appends an operation between matrix a and a named dynamic
// parameter whose value is supplied at execution time (e.g. alpha, beta in
// conjugate gradient). The worst-case estimate conservatively assumes the
// parameter value does not preserve sparsity unless the operator does for
// every constant.
func (p *Program) ScalarParam(op matrix.ScalarOp, a Ref, param string) Ref {
	if param == "" {
		panic("expr: empty parameter name")
	}
	s := a.Node.Sparsity
	if op != matrix.ScalarMul && op != matrix.ScalarDiv {
		s = 1
	}
	return p.add(&Node{Kind: KindScalar, ScalarOp: op, Param: param, Inputs: []Ref{a}, Rows: a.Rows(), Cols: a.Cols(), Sparsity: s})
}

// Func appends a named element-wise function application, e.g. sigmoid for
// logistic regression. Sparse results stay sparse when the function maps
// zero to zero.
func (p *Program) Func(f matrix.UFunc, a Ref) Ref {
	if !f.Valid() {
		panic(fmt.Sprintf("expr: invalid UFunc %d", f))
	}
	s := a.Node.Sparsity
	if !f.SparsityPreserving() {
		s = 1
	}
	return p.add(&Node{Kind: KindUFunc, UFunc: f, Inputs: []Ref{a}, Rows: a.Rows(), Cols: a.Cols(), Sparsity: s})
}

// Sum appends a driver-side reduction of a to the sum of its cells and binds
// it to the named scalar output.
func (p *Program) Sum(name string, a Ref) *Node {
	return p.aggregate(KindSum, name, a)
}

// Value appends a driver-side extraction of the single cell of a 1x1 matrix.
func (p *Program) Value(name string, a Ref) *Node {
	if a.Rows() != 1 || a.Cols() != 1 {
		panic(fmt.Sprintf("expr: value() requires a 1x1 matrix, got %dx%d", a.Rows(), a.Cols()))
	}
	return p.aggregate(KindValue, name, a)
}

// Norm2 appends a driver-side reduction of a to its Frobenius norm.
func (p *Program) Norm2(name string, a Ref) *Node {
	return p.aggregate(KindNorm2, name, a)
}

func (p *Program) aggregate(k Kind, name string, a Ref) *Node {
	if name == "" {
		panic("expr: empty scalar output name")
	}
	ref := p.add(&Node{Kind: k, Inputs: []Ref{a}, Rows: 1, Cols: 1, Sparsity: 1})
	p.scalars = append(p.scalars, ScalarOut{Name: name, Node: ref.Node})
	return ref.Node
}

// Assign binds a variable name to a program value; the engine materializes
// it into the session after execution.
func (p *Program) Assign(name string, r Ref) {
	if name == "" {
		panic("expr: empty assignment name")
	}
	p.assigns = append(p.assigns, Assignment{Name: name, Ref: r})
}

// Validate re-checks the structural invariants of the program: acyclic
// construction order, operand shapes, and input arity. It returns the first
// violation found.
func (p *Program) Validate() error {
	seen := make(map[dep.MatrixID]bool, len(p.nodes))
	for i, n := range p.nodes {
		if int(n.ID) != i {
			return fmt.Errorf("expr: node %d has ID %d", i, n.ID)
		}
		if n.Rows <= 0 || n.Cols <= 0 {
			return fmt.Errorf("expr: node %d has non-positive shape %dx%d", i, n.Rows, n.Cols)
		}
		for _, in := range n.Inputs {
			if in.Node == nil {
				return fmt.Errorf("expr: node %d has nil input", i)
			}
			if !seen[in.Node.ID] {
				return fmt.Errorf("expr: node %d reads m%d before it is defined", i, in.Node.ID)
			}
		}
		switch n.Kind {
		case KindLoad, KindVar:
			if len(n.Inputs) != 0 {
				return fmt.Errorf("expr: leaf node %d has inputs", i)
			}
			if n.Name == "" {
				return fmt.Errorf("expr: leaf node %d has no name", i)
			}
		case KindMul:
			if len(n.Inputs) != 2 {
				return fmt.Errorf("expr: node %d: %%*%% needs 2 inputs", i)
			}
			if n.Inputs[0].Cols() != n.Inputs[1].Rows() {
				return fmt.Errorf("expr: node %d: inner dimensions %d vs %d", i, n.Inputs[0].Cols(), n.Inputs[1].Rows())
			}
		case KindCell:
			if len(n.Inputs) != 2 {
				return fmt.Errorf("expr: node %d: cell op needs 2 inputs", i)
			}
			a, b := n.Inputs[0], n.Inputs[1]
			if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
				return fmt.Errorf("expr: node %d: cell op shapes %dx%d vs %dx%d", i, a.Rows(), a.Cols(), b.Rows(), b.Cols())
			}
		case KindScalar, KindUFunc, KindSum, KindValue, KindNorm2:
			if len(n.Inputs) != 1 {
				return fmt.Errorf("expr: node %d: unary op needs 1 input", i)
			}
			if n.Kind == KindUFunc && !n.UFunc.Valid() {
				return fmt.Errorf("expr: node %d: invalid UFunc %d", i, n.UFunc)
			}
		default:
			return fmt.Errorf("expr: node %d: unknown kind %v", i, n.Kind)
		}
		seen[n.ID] = true
	}
	names := make(map[string]bool)
	for _, a := range p.assigns {
		if a.Ref.Node == nil || !seen[a.Ref.Node.ID] {
			return fmt.Errorf("expr: assignment %q references undefined value", a.Name)
		}
		if names[a.Name] {
			return fmt.Errorf("expr: duplicate assignment %q", a.Name)
		}
		names[a.Name] = true
	}
	return nil
}

// OperatorOrder returns the execution order of the program's operator nodes
// as indices into Nodes(). Leaves come first; among simultaneously ready
// operators, multiplications are scheduled ahead of other operators — the
// decomposition rule of Section 4.2.3 ("we put the operators with
// multiplication ahead" so Pull-Up Broadcast has more opportunities).
// The order is deterministic: ties break on construction order.
func (p *Program) OperatorOrder() []int {
	n := len(p.nodes)
	remaining := make([]int, n) // unscheduled input count
	dependents := make([][]int, n)
	for i, node := range p.nodes {
		// Count distinct producer nodes (a node may read the same input
		// twice, e.g. r * r).
		producers := map[dep.MatrixID]bool{}
		for _, in := range node.Inputs {
			producers[in.Node.ID] = true
		}
		remaining[i] = len(producers)
		for id := range producers {
			dependents[id] = append(dependents[id], i)
		}
	}
	order := make([]int, 0, n)
	scheduled := make([]bool, n)
	for len(order) < n {
		pick := -1
		pickMul := false
		for i := 0; i < n; i++ {
			if scheduled[i] || remaining[i] != 0 {
				continue
			}
			isMul := p.nodes[i].Kind == KindMul
			// Prefer the first ready multiplication; otherwise the first
			// ready node.
			if pick == -1 || (isMul && !pickMul) {
				pick, pickMul = i, isMul
				if isMul {
					break
				}
			}
		}
		if pick == -1 {
			// Unreachable for validated programs; guard against cycles.
			panic("expr: cyclic program")
		}
		scheduled[pick] = true
		order = append(order, pick)
		for _, d := range dependents[pick] {
			remaining[d]--
		}
	}
	return order
}

func checkDims(name string, rows, cols int) {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("expr: %s: non-positive dimensions %dx%d", name, rows, cols))
	}
}

func clampSparsity(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}
