package expr

import (
	"strings"
	"testing"

	"dmac/internal/matrix"
)

// buildGNMFIteration constructs the H-update of Code 1:
// H = H * (Wᵀ V) / (Wᵀ W %*% H).
func buildGNMFIteration(t *testing.T) (*Program, Ref) {
	t.Helper()
	p := NewProgram()
	V := p.Load("V", 1000, 800, 0.01)
	W := p.Var("W", 1000, 20, 1)
	H := p.Var("H", 20, 800, 1)
	WtV := p.Mul(W.T(), V)
	WtW := p.Mul(W.T(), W)
	WtWH := p.Mul(WtW, H)
	num := p.CellMul(H, WtV)
	newH := p.CellDiv(num, WtWH)
	p.Assign("H", newH)
	return p, newH
}

func TestBuilderShapesAndSparsity(t *testing.T) {
	p, newH := buildGNMFIteration(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if newH.Rows() != 20 || newH.Cols() != 800 {
		t.Errorf("result shape %dx%d, want 20x800", newH.Rows(), newH.Cols())
	}
	nodes := p.Nodes()
	if len(nodes) != 8 {
		t.Fatalf("node count = %d, want 8", len(nodes))
	}
	// Multiplication output has worst-case sparsity 1.
	if nodes[3].Sparsity != 1 {
		t.Errorf("mul sparsity = %v, want 1", nodes[3].Sparsity)
	}
}

func TestRefTranspose(t *testing.T) {
	p := NewProgram()
	a := p.Load("A", 3, 7, 1)
	at := a.T()
	if at.Rows() != 7 || at.Cols() != 3 {
		t.Errorf("transpose shape %dx%d, want 7x3", at.Rows(), at.Cols())
	}
	if !at.Transposed || at.T().Transposed {
		t.Error("T() must toggle the flag")
	}
	if a.String() != "m0" || at.String() != "m0ᵀ" {
		t.Errorf("Ref strings: %q %q", a, at)
	}
	if (Ref{}).String() != "m?" {
		t.Error("nil ref string")
	}
}

func TestWorstCaseSparsityPropagation(t *testing.T) {
	p := NewProgram()
	a := p.Load("A", 10, 10, 0.3)
	b := p.Load("B", 10, 10, 0.4)
	sum := p.Add(a, b)
	if got := sum.Node.Sparsity; got != 0.7 {
		t.Errorf("add sparsity = %v, want 0.7", got)
	}
	c := p.Load("C", 10, 10, 0.8)
	sat := p.Add(sum, c)
	if got := sat.Node.Sparsity; got != 1 {
		t.Errorf("saturating add sparsity = %v, want 1", got)
	}
	mul := p.Mul(a, b)
	if mul.Node.Sparsity != 1 {
		t.Errorf("mul sparsity = %v, want 1", mul.Node.Sparsity)
	}
	sc := p.Scalar(matrix.ScalarMul, a, 5)
	if sc.Node.Sparsity != 0.3 {
		t.Errorf("zero-preserving scalar op changed sparsity: %v", sc.Node.Sparsity)
	}
	sc2 := p.Scalar(matrix.ScalarAdd, a, 5)
	if sc2.Node.Sparsity != 1 {
		t.Errorf("densifying scalar op sparsity = %v, want 1", sc2.Node.Sparsity)
	}
	pp := p.ScalarParam(matrix.ScalarMul, a, "alpha")
	if pp.Node.Sparsity != 0.3 {
		t.Errorf("param scalar-mul sparsity = %v, want 0.3", pp.Node.Sparsity)
	}
	pa := p.ScalarParam(matrix.ScalarAdd, a, "beta")
	if pa.Node.Sparsity != 1 {
		t.Errorf("param scalar-add sparsity = %v, want 1", pa.Node.Sparsity)
	}
}

func TestBuilderPanicsOnShapeMismatch(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	p := NewProgram()
	a := p.Load("A", 3, 4, 1)
	b := p.Load("B", 3, 4, 1)
	mustPanic("mul inner mismatch", func() { p.Mul(a, b) })
	mustPanic("cell shape mismatch", func() { p.Add(a, b.T()) })
	mustPanic("value on non-1x1", func() { p.Value("v", a) })
	mustPanic("empty param", func() { p.ScalarParam(matrix.ScalarMul, a, "") })
	mustPanic("empty assign", func() { p.Assign("", a) })
	mustPanic("bad dims", func() { p.Load("Z", 0, 5, 1) })
	mustPanic("empty scalar name", func() { p.Sum("", a) })
}

func TestAggregatesAndScalarOuts(t *testing.T) {
	p := NewProgram()
	r := p.Var("r", 100, 1, 1)
	rr := p.CellMul(r, r)
	p.Sum("norm_r2", rr)
	q := p.Var("q", 100, 1, 1)
	pq := p.Mul(r.T(), q)
	p.Value("pq", pq)
	p.Norm2("rn", r)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	outs := p.ScalarOuts()
	if len(outs) != 3 {
		t.Fatalf("scalar outs = %d, want 3", len(outs))
	}
	if outs[0].Name != "norm_r2" || outs[0].Node.Kind != KindSum {
		t.Error("sum output wrong")
	}
	if outs[1].Name != "pq" || outs[1].Node.Kind != KindValue {
		t.Error("value output wrong")
	}
	if outs[2].Name != "rn" || outs[2].Node.Kind != KindNorm2 {
		t.Error("norm2 output wrong")
	}
	for _, o := range outs {
		if !o.Node.Kind.IsAggregate() {
			t.Errorf("%s should be aggregate", o.Node.Kind)
		}
	}
	if KindMul.IsAggregate() || KindCell.IsAggregate() {
		t.Error("matrix kinds must not be aggregates")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	p, _ := buildGNMFIteration(t)
	// Corrupt an ID.
	p.nodes[2].ID = 99
	if err := p.Validate(); err == nil {
		t.Error("expected ID error")
	}
	p.nodes[2].ID = 2
	// Forward reference.
	p.nodes[3].Inputs[1] = Ref{Node: p.nodes[7]}
	if err := p.Validate(); err == nil {
		t.Error("expected forward-reference error")
	}
}

func TestValidateDuplicateAssignment(t *testing.T) {
	p := NewProgram()
	a := p.Load("A", 2, 2, 1)
	p.Assign("X", a)
	p.Assign("X", a)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("expected duplicate-assignment error, got %v", err)
	}
}

func TestOperatorOrderPrefersMultiplication(t *testing.T) {
	p := NewProgram()
	a := p.Load("A", 4, 4, 1)
	b := p.Load("B", 4, 4, 1)
	sum := p.Add(a, b)  // node 2: ready as soon as leaves are scheduled
	prod := p.Mul(a, b) // node 3: ready at the same time
	p.Assign("S", sum)
	p.Assign("P", prod)
	order := p.OperatorOrder()
	pos := make(map[int]int, len(order))
	for i, idx := range order {
		pos[idx] = i
	}
	if pos[3] > pos[2] {
		t.Errorf("multiplication (node 3) scheduled at %d, after cell op at %d", pos[3], pos[2])
	}
	// Order must be a valid topological order.
	for i, idx := range order {
		for _, in := range p.Nodes()[idx].Inputs {
			if pos[int(in.Node.ID)] >= i {
				t.Fatalf("node %d scheduled before its input m%d", idx, in.Node.ID)
			}
		}
	}
}

func TestOperatorOrderStableAndComplete(t *testing.T) {
	p, _ := buildGNMFIteration(t)
	o1 := p.OperatorOrder()
	o2 := p.OperatorOrder()
	if len(o1) != len(p.Nodes()) {
		t.Fatalf("order length %d, want %d", len(o1), len(p.Nodes()))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("OperatorOrder is not deterministic")
		}
	}
	seen := make(map[int]bool)
	for _, idx := range o1 {
		if seen[idx] {
			t.Fatal("node scheduled twice")
		}
		seen[idx] = true
	}
}

func TestNodeLabels(t *testing.T) {
	p := NewProgram()
	a := p.Load("A", 2, 2, 1)
	v := p.Var("X", 2, 2, 1)
	m := p.Mul(a, v)
	c := p.Add(a, v)
	s := p.Scalar(matrix.ScalarMul, a, 2.5)
	sp := p.ScalarParam(matrix.ScalarAdd, a, "alpha")
	p.Sum("s", c)
	cases := []struct {
		n    *Node
		want string
	}{
		{a.Node, "load(A)"},
		{v.Node, "var(X)"},
		{m.Node, "m0 %*% m1"},
		{c.Node, "m0 + m1"},
		{s.Node, "m0 *c(2.5)"},
		{sp.Node, "m0 +c(alpha)"},
	}
	for _, c := range cases {
		if got := c.n.Label(); got != c.want {
			t.Errorf("Label = %q, want %q", got, c.want)
		}
	}
	if !strings.HasPrefix(p.Nodes()[6].Label(), "sum(") {
		t.Errorf("sum label = %q", p.Nodes()[6].Label())
	}
}

func TestUFuncBuilder(t *testing.T) {
	p := NewProgram()
	a := p.Load("A", 4, 4, 0.3)
	sq := p.Func(matrix.FuncSqrt, a)
	if sq.Node.Kind != KindUFunc || sq.Node.UFunc != matrix.FuncSqrt {
		t.Error("Func node malformed")
	}
	if sq.Node.Sparsity != 0.3 {
		t.Errorf("sqrt should preserve sparsity, got %v", sq.Node.Sparsity)
	}
	sig := p.Func(matrix.FuncSigmoid, a)
	if sig.Node.Sparsity != 1 {
		t.Errorf("sigmoid should densify, got %v", sig.Node.Sparsity)
	}
	if sig.Node.Label() != "sigmoid(m0)" {
		t.Errorf("label = %q", sig.Node.Label())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Invalid function panics at build time and fails validation if forced.
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid UFunc")
		}
	}()
	p.Func(matrix.UFunc(99), a)
}

func TestValidateRejectsInvalidUFunc(t *testing.T) {
	p := NewProgram()
	a := p.Load("A", 2, 2, 1)
	f := p.Func(matrix.FuncAbs, a)
	f.Node.UFunc = matrix.UFunc(42)
	if err := p.Validate(); err == nil {
		t.Error("expected validation error for corrupted UFunc")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindLoad, KindVar, KindMul, KindCell, KindScalar, KindUFunc, KindSum, KindValue, KindNorm2} {
		if k.String() == "" || strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d missing name", k)
		}
	}
	if !strings.HasPrefix(Kind(42).String(), "Kind(") {
		t.Error("unknown kind must print")
	}
}
