// Package expr represents matrix programs as sequences of operators, the
// form DMac's plan generator consumes (Section 4). A Program is built with an
// R-like fluent API mirroring the paper's Scala DSL:
//
//	p := expr.NewProgram()
//	V := p.Load("V", rows, cols, sparsity)
//	W := p.Var("W", d, k, 1)
//	H := p.Var("H", k, w, 1)
//	// H = H * (Wᵀ V) / (Wᵀ W H)
//	newH := p.CellMul(H, p.CellDiv(p.Mul(W.T(), V), p.Mul(p.Mul(W.T(), W), H)))
//	p.Assign("H", newH)
//
// Reading a transpose is a property of the reference (Ref.T), not an
// operator: this is what lets the dependency analyzer recognize Transpose /
// Extract-Transpose dependencies and satisfy them without communication.
//
// Builder methods panic on shape mismatches (they indicate a malformed
// program, analogous to a compile error in the paper's DSL); Validate
// re-checks a finished program and returns errors for dynamic use.
package expr

import (
	"fmt"

	"dmac/internal/dep"
	"dmac/internal/matrix"
)

// Kind discriminates the operator kinds of a program node.
type Kind int

// Node kinds. Leaf kinds (Load, Var) introduce matrices; the remaining kinds
// are the binary/unary operators of Section 3.1 plus the driver-side
// aggregations used by the appendix programs (sum, value, norm).
const (
	// KindLoad introduces an input matrix loaded from storage.
	KindLoad Kind = iota
	// KindVar references a session variable materialized by a previous
	// program execution (e.g. W and H carried across GNMF iterations).
	KindVar
	// KindMul is matrix multiplication (%*%).
	KindMul
	// KindCell is a cell-wise binary operator (+, -, *, /).
	KindCell
	// KindScalar is an operator between a matrix and a scalar constant or
	// named parameter.
	KindScalar
	// KindUFunc applies a named element-wise function (sigmoid, exp, ...).
	KindUFunc
	// KindSum reduces a matrix to the sum of its cells (driver scalar).
	KindSum
	// KindValue extracts the single cell of a 1x1 matrix (driver scalar).
	KindValue
	// KindNorm2 reduces a matrix to its Frobenius (2-)norm (driver scalar).
	KindNorm2
)

// String names the node kind.
func (k Kind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindVar:
		return "var"
	case KindMul:
		return "%*%"
	case KindCell:
		return "cell"
	case KindScalar:
		return "scalar"
	case KindUFunc:
		return "ufunc"
	case KindSum:
		return "sum"
	case KindValue:
		return "value"
	case KindNorm2:
		return "norm2"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsAggregate reports whether the kind produces a driver-side scalar rather
// than a distributed matrix.
func (k Kind) IsAggregate() bool {
	return k == KindSum || k == KindValue || k == KindNorm2
}

// Node is one operator (or leaf) of a program. Nodes are created only
// through Program builder methods, which assign IDs in construction order.
type Node struct {
	// ID is the SSA value produced by this node.
	ID dep.MatrixID
	// Kind discriminates the operator.
	Kind Kind
	// Name is the variable name for KindLoad/KindVar leaves, empty otherwise.
	Name string
	// BinOp is the cell-wise operator for KindCell.
	BinOp matrix.BinOp
	// ScalarOp is the operator for KindScalar.
	ScalarOp matrix.ScalarOp
	// UFunc is the element-wise function for KindUFunc.
	UFunc matrix.UFunc
	// Const is the scalar constant for KindScalar when Param is empty.
	Const float64
	// Param names a dynamic scalar parameter for KindScalar (e.g. alpha in
	// conjugate gradient); the value is supplied at execution time.
	Param string
	// Inputs are the operand references (one for KindScalar and aggregates,
	// two for KindMul/KindCell, none for leaves).
	Inputs []Ref
	// Rows, Cols are the inferred result dimensions.
	Rows, Cols int
	// Sparsity is the worst-case sparsity estimate of the result
	// (Section 5.1).
	Sparsity float64
}

// Label returns a short human-readable description for plan printing.
func (n *Node) Label() string {
	switch n.Kind {
	case KindLoad:
		return fmt.Sprintf("load(%s)", n.Name)
	case KindVar:
		return fmt.Sprintf("var(%s)", n.Name)
	case KindMul:
		return fmt.Sprintf("%s %%*%% %s", n.Inputs[0], n.Inputs[1])
	case KindCell:
		return fmt.Sprintf("%s %s %s", n.Inputs[0], n.BinOp, n.Inputs[1])
	case KindScalar:
		c := n.Param
		if c == "" {
			c = fmt.Sprintf("%g", n.Const)
		}
		return fmt.Sprintf("%s %s(%s)", n.Inputs[0], n.ScalarOp, c)
	case KindUFunc:
		return fmt.Sprintf("%s(%s)", n.UFunc, n.Inputs[0])
	case KindSum:
		return fmt.Sprintf("sum(%s)", n.Inputs[0])
	case KindValue:
		return fmt.Sprintf("value(%s)", n.Inputs[0])
	case KindNorm2:
		return fmt.Sprintf("norm2(%s)", n.Inputs[0])
	default:
		return n.Kind.String()
	}
}

// Ref is a reference to a node's result, possibly transposed. Transposition
// composes: r.T().T() == r.
type Ref struct {
	Node       *Node
	Transposed bool
}

// T returns the transposed reference (the paper's A.t / Aᵀ).
func (r Ref) T() Ref { return Ref{Node: r.Node, Transposed: !r.Transposed} }

// Rows returns the row count of the referenced (possibly transposed) value.
func (r Ref) Rows() int {
	if r.Transposed {
		return r.Node.Cols
	}
	return r.Node.Rows
}

// Cols returns the column count of the referenced (possibly transposed)
// value.
func (r Ref) Cols() int {
	if r.Transposed {
		return r.Node.Rows
	}
	return r.Node.Cols
}

// String formats the reference as mID or mIDᵀ.
func (r Ref) String() string {
	if r.Node == nil {
		return "m?"
	}
	if r.Transposed {
		return fmt.Sprintf("m%dᵀ", r.Node.ID)
	}
	return fmt.Sprintf("m%d", r.Node.ID)
}
