package sched

import "math"

// ChooseBlockSize implements the automatic block-size selection of
// Section 5.3. For an M x N matrix executed on K workers with local
// parallelism L, the RMM-based multiplication produces at least M*N/(K*m^2)
// tasks per worker; requiring at least one task per thread gives the upper
// bound of Eq. 3:
//
//	m <= sqrt(M*N / (L*K))
//
// DMac prefers blocks as large as possible (to avoid duplicating the CSC
// column-pointer arrays, Eq. 2) while staying under this bound, so the
// chooser returns a value near the bound.
func ChooseBlockSize(rows, cols, localParallelism, workers int) int {
	if rows <= 0 || cols <= 0 {
		return 1
	}
	if localParallelism < 1 {
		localParallelism = 1
	}
	if workers < 1 {
		workers = 1
	}
	bound := math.Sqrt(float64(rows) * float64(cols) / float64(localParallelism*workers))
	m := int(bound)
	if m < 1 {
		m = 1
	}
	maxDim := rows
	if cols > maxDim {
		maxDim = cols
	}
	if m > maxDim {
		m = maxDim
	}
	return m
}

// BlockSizeBound returns the raw Eq. 3 upper bound without clamping, for
// reporting and for the Figure 8 threshold annotations.
func BlockSizeBound(rows, cols, localParallelism, workers int) float64 {
	return math.Sqrt(float64(rows) * float64(cols) / float64(localParallelism*workers))
}
