package sched

import (
	"sync"
	"testing"

	"dmac/internal/matrix"
)

// TestBufferPoolSteadyStateAllocFree pins the pool's steady-state allocation
// contract: once a block of a shape has been pooled, a sequential
// acquire/release cycle at that shape is served entirely from pooled arrays —
// zero fresh allocations.
func TestBufferPoolSteadyStateAllocFree(t *testing.T) {
	mem := NewMemTracker()
	p := NewBufferPool(4, mem)
	p.Release(p.Acquire(32, 32))
	base := p.Allocs()
	for r := 0; r < 100; r++ {
		b := p.Acquire(32, 32)
		b.Data[0] = float64(r)
		p.Release(b)
	}
	if got := p.Allocs() - base; got != 0 {
		t.Errorf("steady state allocated %d fresh blocks, want 0", got)
	}
	if p.Idle() != 1 {
		t.Errorf("idle = %d, want 1", p.Idle())
	}
	if mem.Current() != 32*32*8 {
		t.Errorf("accounted bytes = %d, want %d", mem.Current(), 32*32*8)
	}
}

// TestBufferPoolConcurrent hammers the sharded pool from many goroutines
// (run under -race in CI) and checks the invariants concurrency must not
// break: the idle count never exceeds maxIdle, accounting matches the pooled
// footprint exactly once everything is released, and reuse still works (the
// vast majority of acquires are pool hits).
func TestBufferPoolConcurrent(t *testing.T) {
	const (
		workers = 8
		rounds  = 200
		rows    = 32
		cols    = 32
	)
	mem := NewMemTracker()
	p := NewBufferPool(2*workers, mem)

	// Warm-up: fill the pool so the steady state has arrays to reuse.
	held := make([]*matrix.DenseBlock, 2*workers)
	for i := range held {
		held[i] = p.Acquire(rows, cols)
	}
	for _, b := range held {
		p.Release(b)
	}
	base := p.Allocs()

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				b := p.Acquire(rows, cols)
				b.Data[0] = float64(r)
				p.Release(b)
			}
		}()
	}
	wg.Wait()

	if idle := p.Idle(); idle > 2*workers {
		t.Errorf("idle = %d, exceeds maxIdle %d", idle, 2*workers)
	}
	if mem.Current() != int64(p.Idle())*int64(rows*cols)*8 {
		t.Errorf("accounted bytes = %d, want %d (idle %d)", mem.Current(), p.Idle()*rows*cols*8, p.Idle())
	}
	// With 2x workers pooled, transient release windows can force an
	// occasional fresh allocation, but reuse must dominate: fewer misses than
	// one per goroutine per ten rounds.
	if got := p.Allocs() - base; got > int64(workers*rounds/10) {
		t.Errorf("concurrent phase allocated %d fresh blocks out of %d acquires", got, workers*rounds)
	}
}
