package sched

import (
	"errors"
	"sync/atomic"
	"testing"

	"dmac/internal/obs"
)

// TestForEachErrTraced checks the batch span the executor emits around a
// traced ForEachErr: task count, queue-wait/compute split, and parenting
// under the tracer's current scope. Run under -race this also exercises the
// tracer from all pool workers at once.
func TestForEachErrTraced(t *testing.T) {
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	e := NewExecutor(4, nil)
	e.SetObserver(tr, reg)

	root := tr.Start("engine", "op", 0)
	tr.SetScope(root)
	const n = 64
	var ran atomic.Int64
	err := e.ForEachErr(n, func(i int) error {
		// Workers emit nested spans of their own; under -race this verifies
		// tracer internals against the batch span bookkeeping.
		id := tr.Start("sched", "task", tr.Scope(), obs.Int64("i", int64(i)))
		ran.Add(1)
		tr.End(id)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.End(root)

	if ran.Load() != n {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), n)
	}
	var batch *obs.Span
	spans := tr.Spans()
	for i := range spans {
		if spans[i].Cat == "sched" && spans[i].Name == "batch" {
			if batch != nil {
				t.Fatal("more than one batch span")
			}
			batch = &spans[i]
		}
	}
	if batch == nil {
		t.Fatal("no batch span recorded")
	}
	if batch.Parent != root {
		t.Fatalf("batch parented to %d, want scope %d", batch.Parent, root)
	}
	if a, ok := batch.Attr("tasks"); !ok || a.Int != n {
		t.Fatalf("tasks attr = %+v, want %d", a, n)
	}
	if a, ok := batch.Attr("compute_s"); !ok || a.Float < 0 {
		t.Fatalf("compute_s attr = %+v", a)
	}
	if a, ok := batch.Attr("queue_wait_s"); !ok || a.Float < 0 {
		t.Fatalf("queue_wait_s attr = %+v", a)
	}
	taskSpans := 0
	for _, s := range spans {
		if s.Name == "task" {
			taskSpans++
		}
	}
	if taskSpans != n {
		t.Fatalf("got %d task spans, want %d", taskSpans, n)
	}
	snap := reg.Snapshot()
	h, ok := snap.Histograms["sched.batch.tasks"]
	if !ok || h.Count != 1 || h.Sum != n {
		t.Fatalf("sched.batch.tasks histogram = %+v", h)
	}
	if _, ok := snap.Histograms["sched.batch.compute.seconds"]; !ok {
		t.Fatal("sched.batch.compute.seconds histogram missing")
	}
}

// TestForEachErrTracedError checks instrumentation does not change
// ForEachErr's error semantics: the first error wins and the batch span is
// still closed.
func TestForEachErrTracedError(t *testing.T) {
	tr := obs.NewTracer()
	e := NewExecutor(4, nil)
	e.SetObserver(tr, nil)
	boom := errors.New("boom")
	err := e.ForEachErr(16, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	closed := false
	for _, s := range tr.Spans() {
		if s.Cat == "sched" && s.Name == "batch" {
			closed = true
		}
	}
	if !closed {
		t.Fatal("batch span not closed on error")
	}
}

// TestForEachErrUntracedUnchanged pins the zero-observer fast path: no
// observer, no spans, same results.
func TestForEachErrUntracedUnchanged(t *testing.T) {
	e := NewExecutor(4, nil)
	var ran atomic.Int64
	if err := e.ForEachErr(32, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 32 {
		t.Fatalf("ran %d, want 32", ran.Load())
	}
}
