package sched

import "sync/atomic"

// MemTracker is an analytic memory accountant. Allocation sites report the
// block-model byte counts (matrix.MemBytes) of live data; the tracker keeps
// the current total and the high-water mark. Using the paper's analytic
// model instead of runtime heap statistics makes the memory experiments
// (Figures 7 and 8b) deterministic.
type MemTracker struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// NewMemTracker returns a tracker with zero usage.
func NewMemTracker() *MemTracker { return &MemTracker{} }

// Add records bytes of newly live data and updates the high-water mark.
func (m *MemTracker) Add(bytes int64) {
	now := m.cur.Add(bytes)
	for {
		p := m.peak.Load()
		if now <= p || m.peak.CompareAndSwap(p, now) {
			return
		}
	}
}

// Sub records bytes of data that became dead.
func (m *MemTracker) Sub(bytes int64) { m.cur.Add(-bytes) }

// Current returns the currently live byte count.
func (m *MemTracker) Current() int64 { return m.cur.Load() }

// Peak returns the high-water mark since creation or the last Reset.
func (m *MemTracker) Peak() int64 { return m.peak.Load() }

// Reset zeroes both the current usage and the peak.
func (m *MemTracker) Reset() {
	m.cur.Store(0)
	m.peak.Store(0)
}

// ResetPeak sets the peak back to the current usage, keeping live data
// accounted. Useful between benchmark phases.
func (m *MemTracker) ResetPeak() { m.peak.Store(m.cur.Load()) }
