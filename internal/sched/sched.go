// Package sched implements DMac's local execution strategy (Section 5.3):
// a block-based executor that splits matrix operations into per-result-block
// tasks, runs them on a fixed pool of worker threads, and recycles result
// blocks through a buffer pool. Two aggregation strategies for block
// multiplication are provided — the paper's In-Place approach and the
// traditional Buffer approach it is compared against in Figure 7.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dmac/internal/matrix"
	"dmac/internal/obs"
)

// Executor runs block tasks on a fixed number of local threads. It models
// the per-worker execution flow of Figure 4: a task queue drained by L
// threads, each acquiring result blocks from a shared buffer pool.
type Executor struct {
	parallelism int
	pool        *BufferPool
	mem         *MemTracker
	// tracer and metrics observe task batches when set (see SetObserver);
	// atomic so enabling observability never races with running batches.
	tracer  atomic.Pointer[obs.Tracer]
	metrics atomic.Pointer[obs.Registry]
	// ctx is the cancellation context task batches observe (see SetContext);
	// nil means context.Background(). Atomic for the same reason the
	// observers are.
	ctx atomic.Pointer[context.Context]
}

// NewExecutor creates an executor with the given local parallelism (L in the
// paper). If parallelism <= 0, runtime.NumCPU() is used. The memory tracker
// may be nil, in which case a private one is created.
func NewExecutor(parallelism int, mem *MemTracker) *Executor {
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	if mem == nil {
		mem = NewMemTracker()
	}
	return &Executor{
		parallelism: parallelism,
		mem:         mem,
		pool:        NewBufferPool(2*parallelism, mem),
	}
}

// Parallelism returns the number of local threads (L).
func (e *Executor) Parallelism() int { return e.parallelism }

// Mem returns the executor's memory tracker.
func (e *Executor) Mem() *MemTracker { return e.mem }

// Pool returns the executor's result buffer pool.
func (e *Executor) Pool() *BufferPool { return e.pool }

// SetObserver attaches a span tracer and a metrics registry to the
// executor. Every subsequent task batch (ForEach/ForEachErr) emits one
// "sched" span under the tracer's current scope, splitting the batch into
// queue-wait and compute time, and feeds the batch-size histogram. Either
// argument may be nil to disable that half.
func (e *Executor) SetObserver(t *obs.Tracer, m *obs.Registry) {
	e.tracer.Store(t)
	e.metrics.Store(m)
}

// SetContext installs the context every subsequent task batch observes:
// workers check it between tasks, so cancelling it (or its deadline passing)
// aborts a batch at the next task boundary and ForEachErr returns the
// context's error. Tasks already running are allowed to finish — block tasks
// are short, which makes the boundary check a clean and prompt cancellation
// point. A nil context restores context.Background() (never cancelled).
func (e *Executor) SetContext(ctx context.Context) {
	if ctx == nil {
		e.ctx.Store(nil)
		return
	}
	e.ctx.Store(&ctx)
}

// Context returns the context task batches currently observe.
func (e *Executor) Context() context.Context {
	if p := e.ctx.Load(); p != nil {
		return *p
	}
	return context.Background()
}

// ForEach runs fn(i) for i in [0, n) on the executor's threads. It blocks
// until all tasks complete. Tasks are pulled from a shared queue, matching
// the task-queue model of Figure 4.
func (e *Executor) ForEach(n int, fn func(i int)) {
	e.ForEachErr(n, func(i int) error {
		fn(i)
		return nil
	})
}

// ForEachErr runs fn(i) for i in [0, n) on the executor's threads and
// returns the first error any task produced. Once a task fails, remaining
// queued tasks are cancelled (drained without running) — the task-level
// cancellation a failed stage attempt needs so a worker death doesn't
// compute the rest of the stage for nothing. Tasks already running are
// allowed to finish. Workers also observe the executor's context (see
// SetContext) between tasks: a cancelled context aborts the batch the same
// way a failed task does, and its error is returned.
func (e *Executor) ForEachErr(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	ctx := e.Context()
	workers := e.parallelism
	if workers > n {
		workers = n
	}
	// Observability: one span per task batch with a queue-wait vs compute
	// split. A task's queue wait is the time between batch submission and a
	// worker picking it up; its compute time is the fn call itself. The
	// wrapping only happens when a tracer is attached, so the disabled path
	// costs one atomic load.
	if tr := e.tracer.Load(); tr.Enabled() {
		batchStart := time.Now()
		batch := tr.Start("sched", "batch", tr.Scope(),
			obs.Int64("tasks", int64(n)), obs.Int64("workers", int64(workers)))
		var waitNs, computeNs atomic.Int64
		inner := fn
		fn = func(i int) error {
			ts := time.Now()
			waitNs.Add(ts.Sub(batchStart).Nanoseconds())
			err := inner(i)
			computeNs.Add(time.Since(ts).Nanoseconds())
			return err
		}
		defer func() {
			tr.End(batch,
				obs.Float64("queue_wait_s", float64(waitNs.Load())/1e9),
				obs.Float64("compute_s", float64(computeNs.Load())/1e9))
			if m := e.metrics.Load(); m != nil {
				m.Histogram("sched.batch.tasks", obs.TasksBuckets).Observe(float64(n))
				m.Histogram("sched.batch.compute.seconds", obs.SecondsBuckets).Observe(float64(computeNs.Load()) / 1e9)
			}
		}()
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	queue := make(chan int, n)
	for i := 0; i < n; i++ {
		queue <- i
	}
	close(queue)
	var failed atomic.Bool
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range queue {
				if failed.Load() {
					continue // drain cancelled tasks without running them
				}
				err := ctx.Err()
				if err == nil {
					err = fn(i)
				}
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// MulStrategy selects the local aggregation strategy for blocked matrix
// multiplication.
type MulStrategy int

// The two local multiplication strategies compared in Section 5.3.
const (
	// InPlace packages all block products contributing to one result block
	// into a single task and accumulates them directly into the result
	// block — no intermediate buffers (the DMac default).
	InPlace MulStrategy = iota
	// Buffer parallelizes individual block products, materializes every
	// intermediate product block, and aggregates at the end (the traditional
	// approach; memory-hungry).
	Buffer
)

// String names the strategy.
func (s MulStrategy) String() string {
	switch s {
	case InPlace:
		return "in-place"
	case Buffer:
		return "buffer"
	default:
		return fmt.Sprintf("MulStrategy(%d)", int(s))
	}
}

// Mul multiplies two grids with the chosen aggregation strategy. Both grids
// must share a block size. The result is a dense grid (worst-case sparsity
// of a product is 1, Section 5.1).
func (e *Executor) Mul(a, b *matrix.Grid, strategy MulStrategy) (*matrix.Grid, error) {
	return e.MulTrans(a, b, false, false, strategy)
}

// MulTrans multiplies op(a) * op(b), where op(x) is x or its transpose
// according to the aT/bT flags. Transposition is fused into the block
// kernels: logical block (bi, bk) of a transposed grid is stored block
// (bk, bi) read by stride, so no transposed grid or block is ever
// materialized on the multiply path. Block products run the classical tiled
// kernel; MulTransAlgo selects per-operator algorithms.
func (e *Executor) MulTrans(a, b *matrix.Grid, aT, bT bool, strategy MulStrategy) (*matrix.Grid, error) {
	return e.MulTransAlgo(a, b, aT, bT, strategy, matrix.MulClassical)
}

// MulTransAlgo is MulTrans with an explicit multiply algorithm (the planner's
// per-operator pick): every block product dispatches through the algorithm,
// with Strassen silently falling back to classical on ineligible shapes.
// When a metrics registry is attached the achieved GFLOPS of the whole
// multiply is recorded under kernel.mul.*, the algorithm under
// kernel.strategy.count{strategy}, and the current intra-op parallelism under
// the kernel.workers gauge.
func (e *Executor) MulTransAlgo(a, b *matrix.Grid, aT, bT bool, strategy MulStrategy, algo matrix.MulAlgo) (*matrix.Grid, error) {
	aRows, aCols := gridDims(a, aT)
	bRows, bCols := gridDims(b, bT)
	if aCols != bRows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", matrix.ErrShape, aRows, aCols, bRows, bCols)
	}
	if a.BlockSize() != b.BlockSize() {
		return nil, fmt.Errorf("%w: block sizes %d vs %d", matrix.ErrShape, a.BlockSize(), b.BlockSize())
	}
	m := e.metrics.Load()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	var out *matrix.Grid
	switch strategy {
	case InPlace:
		out = e.mulInPlace(a, b, aT, bT, algo)
	case Buffer:
		out = e.mulBuffer(a, b, aT, bT, algo)
	default:
		return nil, fmt.Errorf("sched: unknown multiplication strategy %d", strategy)
	}
	if m != nil {
		elapsed := time.Since(start).Seconds()
		flops := mulWorkFLOPs(a, b, aCols)
		m.Counter("kernel.mul.count").Inc()
		m.Counter("kernel.mul.flops").Add(int64(flops))
		m.CounterVec("kernel.strategy.count", "strategy").With(algo.String()).Inc()
		m.Gauge("kernel.workers").Set(float64(matrix.KernelWorkers()))
		if elapsed > 0 && flops > 0 {
			gf := flops / elapsed / 1e9
			m.Gauge("kernel.mul.gflops").Set(gf)
			m.Histogram("kernel.mul.gflops", obs.GFLOPSBuckets).Observe(gf)
		}
	}
	return out, nil
}

// gridDims returns the logical dimensions of op(g).
func gridDims(g *matrix.Grid, t bool) (rows, cols int) {
	if t {
		return g.Cols(), g.Rows()
	}
	return g.Rows(), g.Cols()
}

// mulWorkFLOPs estimates the multiply's floating-point work with the
// sparsity model of Section 5.1: each stored element of a meets roughly
// nnz(b)/inner stored elements of b, at a multiply-add (2 flops) each.
func mulWorkFLOPs(a, b *matrix.Grid, inner int) float64 {
	if inner <= 0 {
		return 0
	}
	per := b.NNZ() / inner
	if per < 1 {
		per = 1
	}
	return 2 * float64(a.NNZ()) * float64(per)
}

// mulInPlace: one task per result block; each task accumulates its full
// inner-dimension sum into a single owned block.
func (e *Executor) mulInPlace(a, b *matrix.Grid, aT, bT bool, algo matrix.MulAlgo) *matrix.Grid {
	aRows, _ := gridDims(a, aT)
	_, bCols := gridDims(b, bT)
	out := matrix.NewGrid(aRows, bCols, a.BlockSize())
	brows, bcols := out.BlockRows(), out.BlockCols()
	inner := a.BlockCols()
	if aT {
		inner = a.BlockRows()
	}
	e.ForEach(brows*bcols, func(idx int) {
		bi, bj := idx/bcols, idx%bcols
		r, c := out.BlockDims(bi, bj)
		dst := e.pool.Acquire(r, c)
		for k := 0; k < inner; k++ {
			// Accumulate directly into the result block: no intermediate
			// product blocks exist at any point.
			if err := matrix.MulAddTransAlgoInto(dst, gridBlock(a, bi, k, aT), gridBlock(b, k, bj, bT), aT, bT, algo); err != nil {
				panic(err) // shapes were validated by MulTrans
			}
		}
		// The block leaves the pool and becomes part of the result.
		final := e.pool.Detach(dst)
		e.mem.Add(final.CapBytes())
		out.SetBlock(bi, bj, final)
	})
	return out
}

// gridBlock returns the block at logical block coordinates (bi, bj) of
// op(g): the stored block at (bj, bi) when transposed.
func gridBlock(g *matrix.Grid, bi, bj int, t bool) matrix.Block {
	if t {
		return g.Block(bj, bi)
	}
	return g.Block(bi, bj)
}

// mulBuffer: one task per (bi, k, bj) block product; all intermediate blocks
// are buffered and aggregated afterwards.
func (e *Executor) mulBuffer(a, b *matrix.Grid, aT, bT bool, algo matrix.MulAlgo) *matrix.Grid {
	aRows, _ := gridDims(a, aT)
	_, bCols := gridDims(b, bT)
	out := matrix.NewGrid(aRows, bCols, a.BlockSize())
	brows, bcols := out.BlockRows(), out.BlockCols()
	inner := a.BlockCols()
	if aT {
		inner = a.BlockRows()
	}
	intermediates := make([]*matrix.DenseBlock, brows*bcols*inner)
	e.ForEach(brows*bcols*inner, func(idx int) {
		bi := idx / (bcols * inner)
		rem := idx % (bcols * inner)
		bj, k := rem/inner, rem%inner
		r, c := out.BlockDims(bi, bj)
		prod := matrix.NewDense(r, c)
		e.mem.Add(prod.MemBytes())
		if err := matrix.MulAddTransAlgoInto(prod, gridBlock(a, bi, k, aT), gridBlock(b, k, bj, bT), aT, bT, algo); err != nil {
			panic(err)
		}
		intermediates[idx] = prod
	})
	// Aggregation pass: sum the buffered products per result block.
	e.ForEach(brows*bcols, func(idx int) {
		bi, bj := idx/bcols, idx%bcols
		r, c := out.BlockDims(bi, bj)
		dst := matrix.NewDense(r, c)
		e.mem.Add(dst.MemBytes())
		for k := 0; k < inner; k++ {
			prod := intermediates[(bi*bcols+bj)*inner+k]
			for i, v := range prod.Data {
				dst.Data[i] += v
			}
		}
		out.SetBlock(bi, bj, dst)
	})
	// The intermediates become garbage only after aggregation completes.
	for _, p := range intermediates {
		e.mem.Sub(p.MemBytes())
	}
	return out
}

// Cellwise applies op element-wise to two grids in parallel.
func (e *Executor) Cellwise(op matrix.BinOp, a, b *matrix.Grid) (*matrix.Grid, error) {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.BlockSize() != b.BlockSize() {
		return nil, fmt.Errorf("%w: %dx%d/bs=%d vs %dx%d/bs=%d", matrix.ErrShape,
			a.Rows(), a.Cols(), a.BlockSize(), b.Rows(), b.Cols(), b.BlockSize())
	}
	out := matrix.NewGrid(a.Rows(), a.Cols(), a.BlockSize())
	bcols := a.BlockCols()
	err := e.ForEachErr(a.BlockRows()*bcols, func(idx int) error {
		bi, bj := idx/bcols, idx%bcols
		blk, err := matrix.Cellwise(op, a.Block(bi, bj), b.Block(bi, bj))
		if err != nil {
			return err
		}
		e.mem.Add(blk.MemBytes())
		out.SetBlock(bi, bj, blk)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Scalar applies a block-scalar operation to every block in parallel.
func (e *Executor) Scalar(op matrix.ScalarOp, a *matrix.Grid, c float64) *matrix.Grid {
	out := matrix.NewGrid(a.Rows(), a.Cols(), a.BlockSize())
	bcols := a.BlockCols()
	e.ForEach(a.BlockRows()*bcols, func(idx int) {
		bi, bj := idx/bcols, idx%bcols
		blk := matrix.Scalar(op, a.Block(bi, bj), c)
		e.mem.Add(blk.MemBytes())
		out.SetBlock(bi, bj, blk)
	})
	return out
}

// Apply evaluates a named element-wise function on every block in parallel.
func (e *Executor) Apply(f matrix.UFunc, a *matrix.Grid) *matrix.Grid {
	out := matrix.NewGrid(a.Rows(), a.Cols(), a.BlockSize())
	bcols := a.BlockCols()
	e.ForEach(a.BlockRows()*bcols, func(idx int) {
		bi, bj := idx/bcols, idx%bcols
		blk := matrix.ApplyBlock(f, a.Block(bi, bj))
		e.mem.Add(blk.MemBytes())
		out.SetBlock(bi, bj, blk)
	})
	return out
}

// Transpose transposes a grid in parallel (a purely local operation: this is
// what makes the Transpose dependency communication-free). Each call counts
// against exec.transpose.count when metrics are attached, which is how tests
// verify that the fused multiply path materializes no transposed grid.
func (e *Executor) Transpose(a *matrix.Grid) *matrix.Grid {
	if m := e.metrics.Load(); m != nil {
		m.Counter("exec.transpose.count").Inc()
	}
	out := matrix.NewGrid(a.Cols(), a.Rows(), a.BlockSize())
	bcols := a.BlockCols()
	e.ForEach(a.BlockRows()*bcols, func(idx int) {
		bi, bj := idx/bcols, idx%bcols
		blk := a.Block(bi, bj).Transpose()
		e.mem.Add(blk.MemBytes())
		out.SetBlock(bj, bi, blk)
	})
	return out
}
