package sched

import (
	"math/rand"
	"testing"

	"dmac/internal/matrix"
	"dmac/internal/obs"
)

// TestMulTransMatchesMaterialized checks every transpose combination of
// MulTrans against the materializing reference: transpose the grids first,
// then multiply with the plain kernel.
func TestMulTransMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, combo := range []struct {
		name   string
		aT, bT bool
	}{
		{"NN", false, false},
		{"NT", false, true},
		{"TN", true, false},
		{"TT", true, true},
	} {
		t.Run(combo.name, func(t *testing.T) {
			// Stored shapes so that op(a) is 23x17 and op(b) is 17x19.
			ar, ac := 23, 17
			if combo.aT {
				ar, ac = 17, 23
			}
			br, bc := 17, 19
			if combo.bT {
				br, bc = 19, 17
			}
			a := randGrid(rng, ar, ac, 5, 0.4)
			b := randGrid(rng, br, bc, 5, 1)
			ra, rb := a, b
			if combo.aT {
				ra = ra.Transpose()
			}
			if combo.bT {
				rb = rb.Transpose()
			}
			want, err := matrix.MulGrid(ra, rb)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []MulStrategy{InPlace, Buffer} {
				e := NewExecutor(2, nil)
				got, err := e.MulTrans(a, b, combo.aT, combo.bT, s)
				if err != nil {
					t.Fatalf("strategy %v: %v", s, err)
				}
				if !matrix.GridEqual(got, want, 1e-10) {
					t.Errorf("strategy %v: fused %s product differs from materialized reference", s, combo.name)
				}
			}
		})
	}
}

// TestMulTransShapeErrors: logical (post-transpose) dimensions are what must
// agree.
func TestMulTransShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randGrid(rng, 6, 4, 2, 1)
	b := randGrid(rng, 6, 5, 2, 1)
	e := NewExecutor(1, nil)
	// a (6x4) * b (6x5) mismatches untransposed but works as t(a)*b.
	if _, err := e.MulTrans(a, b, false, false, InPlace); err == nil {
		t.Error("expected shape error for untransposed mismatch")
	}
	if _, err := e.MulTrans(a, b, true, false, InPlace); err != nil {
		t.Errorf("t(a)*b should be valid: %v", err)
	}
}

// TestMulTransKernelMetrics: a multiply with a registry attached must record
// the kernel counters and the achieved-GFLOPs gauge/histogram.
func TestMulTransKernelMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randGrid(rng, 20, 20, 5, 1)
	b := randGrid(rng, 20, 20, 5, 1)
	e := NewExecutor(2, nil)
	reg := obs.NewRegistry()
	e.SetObserver(nil, reg)
	if _, err := e.MulTrans(a, b, false, false, InPlace); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["kernel.mul.count"]; got != 1 {
		t.Errorf("kernel.mul.count = %d, want 1", got)
	}
	if got := snap.Counters["kernel.mul.flops"]; got <= 0 {
		t.Errorf("kernel.mul.flops = %d, want > 0", got)
	}
	if got, ok := snap.Gauges["kernel.mul.gflops"]; !ok || got <= 0 {
		t.Errorf("kernel.mul.gflops gauge = %v (present=%v), want > 0", got, ok)
	}
	cs := snap.CounterVecs["kernel.strategy.count"]
	if len(cs) != 1 || cs[0].Labels["strategy"] != "classical" || cs[0].Value != 1 {
		t.Errorf("kernel.strategy.count = %+v, want one classical=1 child", cs)
	}
	if got, ok := snap.Gauges["kernel.workers"]; !ok || got < 1 {
		t.Errorf("kernel.workers gauge = %v (present=%v), want >= 1", got, ok)
	}

	// An explicit Strassen dispatch lands under its own strategy label even
	// when the shape falls back to the classical kernels.
	if _, err := e.MulTransAlgo(a, b, false, false, InPlace, matrix.MulStrassen); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	strategies := map[string]int64{}
	for _, c := range snap.CounterVecs["kernel.strategy.count"] {
		strategies[c.Labels["strategy"]] = c.Value
	}
	if strategies["classical"] != 1 || strategies["strassen"] != 1 {
		t.Errorf("kernel.strategy.count children = %v, want classical=1 strassen=1", strategies)
	}
}

// TestBufferPoolBestFit: with two pooled blocks of different capacity, a
// request that fits the smaller one must not consume the larger one.
func TestBufferPoolBestFit(t *testing.T) {
	mem := NewMemTracker()
	p := NewBufferPool(4, mem)
	big := p.Acquire(10, 10)
	small := p.Acquire(4, 4)
	p.Release(big)
	p.Release(small)
	got := p.Acquire(2, 8) // needs 16; small fits exactly
	if cap(got.Data) != 16 {
		t.Errorf("best fit picked cap %d, want 16", cap(got.Data))
	}
	// The big block must still be pooled for a big request.
	big2 := p.Acquire(10, 10)
	if cap(big2.Data) != 100 {
		t.Errorf("large request got cap %d, want pooled 100", cap(big2.Data))
	}
}

// TestBufferPoolAccountingBalance: memory accounting must return to zero
// through any acquire/release/detach sequence, including oversized reuse
// where the logical size is smaller than the backing array.
func TestBufferPoolAccountingBalance(t *testing.T) {
	mem := NewMemTracker()
	p := NewBufferPool(2, mem)
	b1 := p.Acquire(8, 8)
	p.Release(b1)
	// Oversized reuse: logical 2x2 on a 64-slot backing array.
	b2 := p.Acquire(2, 2)
	if cap(b2.Data) != 64 {
		t.Fatalf("expected oversized reuse, got cap %d", cap(b2.Data))
	}
	if got, want := mem.Current(), b2.CapBytes(); got != want {
		t.Errorf("accounted bytes after oversized acquire = %d, want %d", got, want)
	}
	p.Release(b2)
	if got, want := mem.Current(), b2.CapBytes(); got != want {
		t.Errorf("accounted bytes while pooled = %d, want %d", got, want)
	}
	b3 := p.Acquire(8, 8)
	d := p.Detach(b3)
	if d != b3 {
		t.Error("Detach must return the same block")
	}
	if got := mem.Current(); got != 0 {
		t.Errorf("accounted bytes after detach = %d, want 0", got)
	}
	// Dropped release (pool full) must also balance.
	x1, x2, x3 := p.Acquire(3, 3), p.Acquire(3, 3), p.Acquire(3, 3)
	p.Release(x1)
	p.Release(x2)
	p.Release(x3) // dropped: maxIdle = 2
	if got, want := mem.Current(), x1.CapBytes()+x2.CapBytes(); got != want {
		t.Errorf("accounted bytes with full pool = %d, want %d", got, want)
	}
}
