package sched

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachErrReturnsFirstError(t *testing.T) {
	e := NewExecutor(4, nil)
	sentinel := errors.New("boom")
	err := e.ForEachErr(100, func(i int) error {
		if i == 17 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("ForEachErr = %v, want sentinel", err)
	}
	if err := e.ForEachErr(100, func(int) error { return nil }); err != nil {
		t.Errorf("ForEachErr with no failures = %v", err)
	}
}

func TestForEachErrCancelsRemainingTasks(t *testing.T) {
	e := NewExecutor(2, nil)
	const n = 10000
	var ran atomic.Int32
	err := e.ForEachErr(n, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("ForEachErr returned nil after a task failed")
	}
	// Task 0 is the first task a worker pulls; once it fails, the rest of the
	// queue is drained without running. A couple of in-flight tasks may
	// complete, but nothing close to the full queue should.
	if got := ran.Load(); got > n/2 {
		t.Errorf("%d of %d tasks ran after cancellation", got, n)
	}
}

func TestForEachErrSequentialStopsAtError(t *testing.T) {
	e := NewExecutor(1, nil)
	var ran int
	err := e.ForEachErr(100, func(i int) error {
		ran++
		if i == 5 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || ran != 6 {
		t.Errorf("sequential path ran %d tasks (err=%v), want 6 with error", ran, err)
	}
}

// A context cancelled mid-batch aborts the batch at the next task boundary
// with the context's error, on both the parallel and sequential paths.
func TestForEachErrObservesContext(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := NewExecutor(workers, nil)
		ctx, cancel := context.WithCancel(context.Background())
		e.SetContext(ctx)
		const n = 10000
		var ran atomic.Int32
		err := e.ForEachErr(n, func(i int) error {
			if ran.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: ForEachErr = %v, want context.Canceled", workers, err)
		}
		if got := ran.Load(); got > n/2 {
			t.Errorf("workers=%d: %d of %d tasks ran after cancellation", workers, got, n)
		}
		// Restoring the background context makes batches run normally again.
		e.SetContext(nil)
		if err := e.ForEachErr(10, func(int) error { return nil }); err != nil {
			t.Errorf("workers=%d: ForEachErr after SetContext(nil) = %v", workers, err)
		}
	}
}

// An already-expired deadline aborts the batch before any task runs.
func TestForEachErrExpiredDeadline(t *testing.T) {
	e := NewExecutor(4, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.SetContext(ctx)
	var ran atomic.Int32
	err := e.ForEachErr(100, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("ForEachErr = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Errorf("%d tasks ran under a cancelled context", got)
	}
}

// TestForEachNested runs ForEach from inside ForEach tasks — the shape a
// distributed op takes when a stage-level loop fans out block-level loops —
// and checks every inner task runs exactly once. Run with -race this guards
// the executor's reentrancy.
func TestForEachNested(t *testing.T) {
	e := NewExecutor(4, nil)
	const outer, inner = 8, 50
	var counts [outer * inner]atomic.Int32
	e.ForEach(outer, func(i int) {
		e.ForEach(inner, func(j int) {
			counts[i*inner+j].Add(1)
		})
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("inner task %d ran %d times", i, got)
		}
	}
}

func TestForEachErrNestedPropagates(t *testing.T) {
	e := NewExecutor(4, nil)
	sentinel := errors.New("inner boom")
	err := e.ForEachErr(8, func(i int) error {
		return e.ForEachErr(8, func(j int) error {
			if i == 3 && j == 4 {
				return sentinel
			}
			return nil
		})
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("nested ForEachErr = %v, want sentinel", err)
	}
}
