package sched

import (
	"sync"

	"dmac/internal/matrix"
)

// BufferPool is the result buffer pool of Figure 4. It maintains a bounded
// number of reusable dense blocks; a task acquires a clean block at start
// and either returns it (Release) or detaches it to keep it as a result
// block (Detach). Pooled blocks are accounted against the memory tracker
// while they live in the pool.
type BufferPool struct {
	mu      sync.Mutex
	free    []*matrix.DenseBlock
	maxIdle int
	mem     *MemTracker
}

// NewBufferPool creates a pool that retains at most maxIdle free blocks.
func NewBufferPool(maxIdle int, mem *MemTracker) *BufferPool {
	if maxIdle < 1 {
		maxIdle = 1
	}
	if mem == nil {
		mem = NewMemTracker()
	}
	return &BufferPool{maxIdle: maxIdle, mem: mem}
}

// Acquire returns a zeroed rows x cols dense block, reusing a pooled block
// whose backing array is large enough when possible.
func (p *BufferPool) Acquire(rows, cols int) *matrix.DenseBlock {
	need := rows * cols
	p.mu.Lock()
	for i, b := range p.free {
		if cap(b.Data) >= need {
			last := len(p.free) - 1
			p.free[i] = p.free[last]
			p.free = p.free[:last]
			p.mu.Unlock()
			p.mem.Sub(int64(8 * cap(b.Data)))
			blk := matrix.NewDenseData(rows, cols, b.Data[:need])
			blk.Zero()
			p.mem.Add(blk.MemBytes())
			return blk
		}
	}
	p.mu.Unlock()
	blk := matrix.NewDense(rows, cols)
	p.mem.Add(blk.MemBytes())
	return blk
}

// Release returns a block to the pool for reuse. If the pool is full the
// block is dropped (its memory accounting is removed either way; pooled
// blocks are re-accounted at the pooled capacity).
func (p *BufferPool) Release(b *matrix.DenseBlock) {
	p.mem.Sub(b.MemBytes())
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) < p.maxIdle {
		p.free = append(p.free, b)
		p.mem.Add(int64(8 * cap(b.Data)))
	}
}

// Detach removes a block from pool accounting so the caller can keep it as
// a long-lived result; the caller takes over memory accounting.
func (p *BufferPool) Detach(b *matrix.DenseBlock) *matrix.DenseBlock {
	p.mem.Sub(b.MemBytes())
	return b
}

// Idle returns the number of free blocks currently pooled.
func (p *BufferPool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
