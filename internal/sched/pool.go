package sched

import (
	"sync"

	"dmac/internal/matrix"
)

// BufferPool is the result buffer pool of Figure 4. It maintains a bounded
// number of reusable dense blocks; a task acquires a clean block at start
// and either returns it (Release) or detaches it to keep it as a result
// block (Detach). Pooled blocks are accounted against the memory tracker
// while they live in the pool.
//
// All accounting uses the full backing-array footprint (DenseBlock.CapBytes):
// a recycled block can carry slack capacity from a larger previous life, and
// charging the logical rows*cols while the pool charged cap(Data) would leak
// phantom bytes on every oversized reuse.
type BufferPool struct {
	mu      sync.Mutex
	free    []*matrix.DenseBlock
	maxIdle int
	mem     *MemTracker
}

// NewBufferPool creates a pool that retains at most maxIdle free blocks.
func NewBufferPool(maxIdle int, mem *MemTracker) *BufferPool {
	if maxIdle < 1 {
		maxIdle = 1
	}
	if mem == nil {
		mem = NewMemTracker()
	}
	return &BufferPool{maxIdle: maxIdle, mem: mem}
}

// Acquire returns a zeroed rows x cols dense block, reusing the pooled block
// with the smallest sufficient backing array (best fit). First fit could hand
// a huge block to a tiny request and then allocate fresh for the next big
// request; best fit keeps large pooled arrays available for the requests
// that need them.
func (p *BufferPool) Acquire(rows, cols int) *matrix.DenseBlock {
	need := rows * cols
	p.mu.Lock()
	best := -1
	for i, b := range p.free {
		c := cap(b.Data)
		if c < need {
			continue
		}
		if best < 0 || c < cap(p.free[best].Data) {
			best = i
			if c == need {
				break
			}
		}
	}
	if best >= 0 {
		b := p.free[best]
		last := len(p.free) - 1
		p.free[best] = p.free[last]
		p.free = p.free[:last]
		p.mu.Unlock()
		p.mem.Sub(b.CapBytes())
		blk := matrix.NewDenseData(rows, cols, b.Data[:need])
		blk.Zero()
		p.mem.Add(blk.CapBytes())
		return blk
	}
	p.mu.Unlock()
	blk := matrix.NewDense(rows, cols)
	p.mem.Add(blk.CapBytes())
	return blk
}

// Release returns a block to the pool for reuse. If the pool is full the
// block is dropped; its accounting is removed either way, and pooled blocks
// are re-accounted at the same capacity footprint they were charged at.
func (p *BufferPool) Release(b *matrix.DenseBlock) {
	p.mem.Sub(b.CapBytes())
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) < p.maxIdle {
		p.free = append(p.free, b)
		p.mem.Add(b.CapBytes())
	}
}

// Detach removes a block from pool accounting so the caller can keep it as
// a long-lived result; the caller takes over memory accounting.
func (p *BufferPool) Detach(b *matrix.DenseBlock) *matrix.DenseBlock {
	p.mem.Sub(b.CapBytes())
	return b
}

// Idle returns the number of free blocks currently pooled.
func (p *BufferPool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
