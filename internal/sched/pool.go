package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dmac/internal/matrix"
)

// BufferPool is the result buffer pool of Figure 4. It maintains a bounded
// number of reusable dense blocks; a task acquires a clean block at start
// and either returns it (Release) or detaches it to keep it as a result
// block (Detach). Pooled blocks are accounted against the memory tracker
// while they live in the pool.
//
// The free list is sharded so the executor's worker threads (and nested
// kernel workers) do not serialize on one mutex: acquires and releases
// rotate over the shards, and an acquire that misses its shard steals from
// the others before allocating fresh, so blocks released on any shard stay
// reusable everywhere. Within a shard, acquisition is best fit — first fit
// could hand a huge backing array to a tiny request and then allocate fresh
// for the next big one, so the smallest sufficient array is taken instead.
//
// All accounting uses the full backing-array footprint (DenseBlock.CapBytes):
// a recycled block can carry slack capacity from a larger previous life, and
// charging the logical rows*cols while the pool charged cap(Data) would leak
// phantom bytes on every oversized reuse.
type BufferPool struct {
	shards  []poolShard
	next    atomic.Uint32
	idle    atomic.Int32
	allocs  atomic.Int64
	maxIdle int
	mem     *MemTracker
}

type poolShard struct {
	mu   sync.Mutex
	free []*matrix.DenseBlock
	// padding to keep neighboring shards off one cache line
	_ [40]byte
}

// NewBufferPool creates a pool that retains at most maxIdle free blocks in
// total across all shards.
func NewBufferPool(maxIdle int, mem *MemTracker) *BufferPool {
	if maxIdle < 1 {
		maxIdle = 1
	}
	if mem == nil {
		mem = NewMemTracker()
	}
	shards := runtime.GOMAXPROCS(0)
	if shards > maxIdle {
		shards = maxIdle
	}
	if shards < 1 {
		shards = 1
	}
	return &BufferPool{shards: make([]poolShard, shards), maxIdle: maxIdle, mem: mem}
}

// Acquire returns a zeroed rows x cols dense block, reusing the pooled
// backing array with the smallest sufficient capacity across all shards
// (global best fit), allocating fresh only when every shard missed.
func (p *BufferPool) Acquire(rows, cols int) *matrix.DenseBlock {
	need := rows * cols
	if need > 0 && p.idle.Load() > 0 {
		// Pass 1: find the shard holding the globally best-fitting array.
		// Pass 2: take that shard's best fit (a concurrent steal may have
		// changed it, but whatever it returns still fits). Falls through to
		// the remaining shards if the winner was drained in between.
		start := int(p.next.Add(1)-1) % len(p.shards)
		bestShard, bestCap := -1, 0
		for off := 0; off < len(p.shards); off++ {
			i := (start + off) % len(p.shards)
			if c := p.shards[i].bestFitCap(need); c > 0 && (bestShard < 0 || c < bestCap) {
				bestShard, bestCap = i, c
				if c == need {
					break
				}
			}
		}
		for off := 0; bestShard >= 0 && off < len(p.shards); off++ {
			i := (bestShard + off) % len(p.shards)
			if b := p.shards[i].takeBestFit(need); b != nil {
				p.idle.Add(-1)
				p.mem.Sub(b.CapBytes())
				blk := matrix.NewDenseData(rows, cols, b.Data[:need])
				blk.Zero()
				p.mem.Add(blk.CapBytes())
				return blk
			}
		}
	}
	p.allocs.Add(1)
	blk := matrix.NewDense(rows, cols)
	p.mem.Add(blk.CapBytes())
	return blk
}

// bestFitCap reports the capacity of the shard's best-fitting free array for
// a request of need elements, or 0 when nothing fits.
func (s *poolShard) bestFitCap(need int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := 0
	for _, b := range s.free {
		c := cap(b.Data)
		if c >= need && (best == 0 || c < best) {
			best = c
		}
	}
	return best
}

// takeBestFit removes and returns the free block with the smallest
// sufficient backing array, or nil.
func (s *poolShard) takeBestFit(need int) *matrix.DenseBlock {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := -1
	for i, b := range s.free {
		c := cap(b.Data)
		if c < need {
			continue
		}
		if best < 0 || c < cap(s.free[best].Data) {
			best = i
			if c == need {
				break
			}
		}
	}
	if best < 0 {
		return nil
	}
	b := s.free[best]
	last := len(s.free) - 1
	s.free[best] = s.free[last]
	s.free[last] = nil
	s.free = s.free[:last]
	return b
}

// Release returns a block to the pool for reuse. If the pool already holds
// maxIdle free blocks the block is dropped; its accounting is removed either
// way, and pooled blocks are re-accounted at the same capacity footprint they
// were charged at.
func (p *BufferPool) Release(b *matrix.DenseBlock) {
	p.mem.Sub(b.CapBytes())
	for {
		n := p.idle.Load()
		if int(n) >= p.maxIdle {
			return
		}
		if p.idle.CompareAndSwap(n, n+1) {
			break
		}
	}
	s := &p.shards[int(p.next.Add(1)-1)%len(p.shards)]
	p.mem.Add(b.CapBytes())
	s.mu.Lock()
	s.free = append(s.free, b)
	s.mu.Unlock()
}

// Detach removes a block from pool accounting so the caller can keep it as
// a long-lived result; the caller takes over memory accounting.
func (p *BufferPool) Detach(b *matrix.DenseBlock) *matrix.DenseBlock {
	p.mem.Sub(b.CapBytes())
	return b
}

// Idle returns the number of free blocks currently pooled.
func (p *BufferPool) Idle() int { return int(p.idle.Load()) }

// Allocs returns the number of fresh block allocations the pool performed —
// acquires no pooled array could serve. A steady state that keeps allocating
// indicates the pool is undersized or its blocks are leaking past Release.
func (p *BufferPool) Allocs() int64 { return p.allocs.Load() }
