package sched

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"dmac/internal/matrix"
)

func randGrid(rng *rand.Rand, rows, cols, bs int, sparsity float64) *matrix.Grid {
	if sparsity >= 1 {
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		return matrix.FromDense(rows, cols, bs, data)
	}
	var coords []matrix.Coord
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < sparsity {
				coords = append(coords, matrix.Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return matrix.FromCoords(rows, cols, bs, coords)
}

func TestForEachRunsAllTasksOnce(t *testing.T) {
	e := NewExecutor(4, nil)
	const n = 1000
	var counts [n]atomic.Int32
	e.ForEach(n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
	// n = 0 and single-thread paths must not hang.
	e.ForEach(0, func(int) { t.Error("task ran for n=0") })
	one := NewExecutor(1, nil)
	ran := 0
	one.ForEach(3, func(int) { ran++ })
	if ran != 3 {
		t.Errorf("single-thread ForEach ran %d, want 3", ran)
	}
}

func TestMulStrategiesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := randGrid(rng, 23, 17, 5, 0.3)
	b := randGrid(rng, 17, 19, 5, 1)
	want, err := matrix.MulGrid(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []MulStrategy{InPlace, Buffer} {
		e := NewExecutor(4, nil)
		got, err := e.Mul(a, b, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !matrix.GridEqual(got, want, 1e-9) {
			t.Errorf("%v result differs from reference", s)
		}
	}
}

func TestMulErrors(t *testing.T) {
	e := NewExecutor(2, nil)
	if _, err := e.Mul(matrix.NewDenseGrid(2, 3, 2), matrix.NewDenseGrid(2, 3, 2), InPlace); err == nil {
		t.Error("expected inner-dimension error")
	}
	if _, err := e.Mul(matrix.NewDenseGrid(2, 3, 2), matrix.NewDenseGrid(3, 2, 3), InPlace); err == nil {
		t.Error("expected block-size error")
	}
	if _, err := e.Mul(matrix.NewDenseGrid(2, 3, 2), matrix.NewDenseGrid(3, 2, 2), MulStrategy(42)); err == nil {
		t.Error("expected unknown-strategy error")
	}
}

func TestInPlaceUsesLessPeakMemoryThanBuffer(t *testing.T) {
	// A multiplication with a large inner block dimension: Buffer keeps
	// brows*inner*bcols intermediates alive, In-Place only ~L.
	rng := rand.New(rand.NewSource(31))
	a := randGrid(rng, 40, 120, 8, 0.2)
	b := randGrid(rng, 120, 40, 8, 0.2)

	memIP := NewMemTracker()
	eIP := NewExecutor(2, memIP)
	if _, err := eIP.Mul(a, b, InPlace); err != nil {
		t.Fatal(err)
	}
	memBuf := NewMemTracker()
	eBuf := NewExecutor(2, memBuf)
	if _, err := eBuf.Mul(a, b, Buffer); err != nil {
		t.Fatal(err)
	}
	if memIP.Peak() >= memBuf.Peak() {
		t.Errorf("In-Place peak %d >= Buffer peak %d; expected strictly less", memIP.Peak(), memBuf.Peak())
	}
}

func TestCellwiseAndScalarParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randGrid(rng, 15, 15, 4, 1)
	b := randGrid(rng, 15, 15, 4, 1)
	e := NewExecutor(4, nil)
	got, err := e.Cellwise(matrix.OpCellMul, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := matrix.CellwiseGrid(matrix.OpCellMul, a, b)
	if !matrix.GridEqual(got, want, 0) {
		t.Error("parallel cellwise differs from sequential")
	}
	if _, err := e.Cellwise(matrix.OpAdd, a, matrix.NewDenseGrid(15, 14, 4)); err == nil {
		t.Error("expected shape error")
	}
	sc := e.Scalar(matrix.ScalarMul, a, 3)
	wantSc := matrix.ScalarGrid(matrix.ScalarMul, a, 3)
	if !matrix.GridEqual(sc, wantSc, 0) {
		t.Error("parallel scalar differs from sequential")
	}
}

func TestTransposeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randGrid(rng, 21, 13, 4, 0.3)
	e := NewExecutor(4, nil)
	got := e.Transpose(a)
	if !matrix.GridEqual(got, a.Transpose(), 0) {
		t.Error("parallel transpose differs from sequential")
	}
}

func TestMemTracker(t *testing.T) {
	m := NewMemTracker()
	m.Add(100)
	m.Add(50)
	if m.Current() != 150 || m.Peak() != 150 {
		t.Fatalf("cur=%d peak=%d", m.Current(), m.Peak())
	}
	m.Sub(100)
	if m.Current() != 50 || m.Peak() != 150 {
		t.Fatalf("after sub: cur=%d peak=%d", m.Current(), m.Peak())
	}
	m.Add(10)
	if m.Peak() != 150 {
		t.Fatal("peak should not move below previous high-water mark")
	}
	m.ResetPeak()
	if m.Peak() != 60 {
		t.Fatalf("ResetPeak: peak=%d, want 60", m.Peak())
	}
	m.Reset()
	if m.Current() != 0 || m.Peak() != 0 {
		t.Fatal("Reset did not zero tracker")
	}
}

func TestMemTrackerConcurrentPeak(t *testing.T) {
	m := NewMemTracker()
	e := NewExecutor(8, nil)
	e.ForEach(1000, func(int) {
		m.Add(10)
		m.Sub(10)
	})
	if m.Current() != 0 {
		t.Errorf("current = %d, want 0", m.Current())
	}
	if m.Peak() < 10 {
		t.Errorf("peak = %d, want >= 10", m.Peak())
	}
}

func TestBufferPoolReuse(t *testing.T) {
	mem := NewMemTracker()
	p := NewBufferPool(2, mem)
	b1 := p.Acquire(4, 4)
	b1.Set(0, 0, 7)
	p.Release(b1)
	if p.Idle() != 1 {
		t.Fatalf("idle = %d, want 1", p.Idle())
	}
	b2 := p.Acquire(4, 4)
	if b2.At(0, 0) != 0 {
		t.Error("reused block was not zeroed")
	}
	// Smaller block may reuse a larger backing array.
	p.Release(b2)
	b3 := p.Acquire(2, 2)
	if b3.Rows() != 2 || b3.Cols() != 2 {
		t.Error("wrong shape from pool")
	}
	p.Release(b3)
	// Pool caps idle blocks at maxIdle.
	a, b, c := p.Acquire(3, 3), p.Acquire(3, 3), p.Acquire(3, 3)
	p.Release(a)
	p.Release(b)
	p.Release(c)
	if p.Idle() > 2 {
		t.Errorf("idle = %d, want <= 2", p.Idle())
	}
	if mem.Current() < 0 {
		t.Errorf("negative accounted memory: %d", mem.Current())
	}
}

func TestChooseBlockSizeEq3(t *testing.T) {
	// Paper example (Section 6.3): 4-node cluster, K=4, L=8. For
	// LiveJournal-sized square matrices (~4.85M nodes) the threshold is
	// about 856k.
	n := 4847571
	got := ChooseBlockSize(n, n, 8, 4)
	if got < 800000 || got > 900000 {
		t.Errorf("ChooseBlockSize = %d, want ~856k", got)
	}
	// soc-pokec: ~1.63M nodes -> ~289k.
	n = 1632803
	got = ChooseBlockSize(n, n, 8, 4)
	if got < 270000 || got > 300000 {
		t.Errorf("ChooseBlockSize = %d, want ~289k", got)
	}
	// Degenerate inputs.
	if ChooseBlockSize(0, 5, 1, 1) != 1 {
		t.Error("zero rows should give 1")
	}
	if got := ChooseBlockSize(3, 3, 1, 1); got > 3 {
		t.Errorf("block size %d exceeds matrix dimension", got)
	}
	if got := ChooseBlockSize(10, 10, 0, 0); got < 1 {
		t.Errorf("non-positive parallelism handled wrong: %d", got)
	}
}

// Property: the chosen block size never exceeds the Eq. 3 bound (when the
// bound is at least 1) and is always positive.
func TestQuickChooseBlockSizeWithinBound(t *testing.T) {
	f := func(rRaw, cRaw uint16, lRaw, kRaw uint8) bool {
		rows, cols := int(rRaw)%5000+1, int(cRaw)%5000+1
		l, k := int(lRaw)%16+1, int(kRaw)%32+1
		m := ChooseBlockSize(rows, cols, l, k)
		if m < 1 {
			return false
		}
		bound := BlockSizeBound(rows, cols, l, k)
		if bound >= 1 && float64(m) > bound {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: both local strategies agree with each other on random inputs.
func TestQuickStrategiesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, p := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		bs := 1 + rng.Intn(7)
		a := randGrid(rng, n, m, bs, 0.5)
		b := randGrid(rng, m, p, bs, 0.5)
		e := NewExecutor(3, nil)
		r1, err := e.Mul(a, b, InPlace)
		if err != nil {
			return false
		}
		r2, err := e.Mul(a, b, Buffer)
		if err != nil {
			return false
		}
		return matrix.GridEqual(r1, r2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMulStrategyString(t *testing.T) {
	if InPlace.String() != "in-place" || Buffer.String() != "buffer" {
		t.Error("strategy names wrong")
	}
	if MulStrategy(9).String() == "" {
		t.Error("unknown strategy must still print")
	}
}
