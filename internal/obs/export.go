package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceEvent is one Chrome trace_event entry — the exchange format between
// the exporter, the dmactrace CLI and chrome://tracing / Perfetto. Only
// complete events (ph "X") are emitted; timestamps and durations are
// microseconds.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object trace format expected by the viewers.
type chromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// catTid maps span categories to stable viewer lanes (tid rows in
// chrome://tracing).
func catTid(cat string) int {
	switch cat {
	case "engine":
		return 1
	case "op":
		return 2
	case "comm":
		return 3
	case "sched":
		return 4
	default:
		return 9
	}
}

// SpanEvent converts one span to its trace event.
func SpanEvent(s Span) TraceEvent {
	ev := TraceEvent{
		Name: s.Name,
		Cat:  s.Cat,
		Ph:   "X",
		Ts:   float64(s.Start) / 1e3,
		Dur:  float64(s.End-s.Start) / 1e3,
		Pid:  1,
		Tid:  catTid(s.Cat),
	}
	ev.Args = make(map[string]any, len(s.Attrs)+2)
	ev.Args["span_id"] = int64(s.ID)
	if s.Parent != 0 {
		ev.Args["parent_id"] = int64(s.Parent)
	}
	for _, a := range s.Attrs {
		ev.Args[a.Key] = a.Value()
	}
	return ev
}

// WriteChromeTrace renders spans as a Chrome trace_event JSON document
// loadable in chrome://tracing and Perfetto. Spans are sorted by start time
// (ties broken by ID) so output is deterministic under a deterministic
// clock.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].ID < sorted[j].ID
	})
	doc := chromeTrace{TraceEvents: make([]TraceEvent, 0, len(sorted)), DisplayTimeUnit: "ms"}
	for _, s := range sorted {
		doc.TraceEvents = append(doc.TraceEvents, SpanEvent(s))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// ReadChromeTrace parses a Chrome trace_event JSON document (either the
// object form with a traceEvents key or a bare event array).
func ReadChromeTrace(r io.Reader) ([]TraceEvent, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var doc chromeTrace
	if err := json.Unmarshal(data, &doc); err == nil && doc.TraceEvents != nil {
		return doc.TraceEvents, nil
	}
	var events []TraceEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return nil, fmt.Errorf("obs: not a chrome trace: %w", err)
	}
	return events, nil
}

// EventsToSpans converts parsed trace events back to spans, so the summary
// and table renderers work identically on live tracers and loaded files.
// JSON numbers arrive as float64; integer-valued ones become integer attrs
// (byte counts survive a round trip exactly up to 2^53).
func EventsToSpans(events []TraceEvent) []Span {
	spans := make([]Span, 0, len(events))
	for _, ev := range events {
		if ev.Ph != "X" && ev.Ph != "" {
			continue
		}
		s := Span{
			Cat:   ev.Cat,
			Name:  ev.Name,
			Start: int64(ev.Ts * 1e3),
			End:   int64((ev.Ts + ev.Dur) * 1e3),
		}
		keys := make([]string, 0, len(ev.Args))
		for k := range ev.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch v := ev.Args[k].(type) {
			case float64:
				if v == float64(int64(v)) {
					if k == "span_id" {
						s.ID = SpanID(int64(v))
						continue
					}
					if k == "parent_id" {
						s.Parent = SpanID(int64(v))
						continue
					}
					s.Attrs = append(s.Attrs, Int64(k, int64(v)))
				} else {
					s.Attrs = append(s.Attrs, Float64(k, v))
				}
			case string:
				s.Attrs = append(s.Attrs, String(k, v))
			case json.Number:
				if i, err := v.Int64(); err == nil {
					s.Attrs = append(s.Attrs, Int64(k, i))
				} else if f, err := v.Float64(); err == nil {
					s.Attrs = append(s.Attrs, Float64(k, f))
				}
			}
		}
		spans = append(spans, s)
	}
	return spans
}

// WriteMetricsJSON dumps a registry snapshot as indented JSON — the
// machine-readable metrics export behind -metrics-out.
func WriteMetricsJSON(w io.Writer, snap MetricsSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snap)
}
