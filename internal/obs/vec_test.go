package obs

import (
	"sync"
	"testing"
)

func TestCounterVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("jobs.done", "tenant", "state")
	v.With("alice", "done").Add(3)
	v.With("alice", "done").Inc()
	v.With("bob", "failed").Inc()
	if got := v.With("alice", "done").Value(); got != 4 {
		t.Fatalf("alice/done = %d, want 4", got)
	}
	if got := v.With("bob", "failed").Value(); got != 1 {
		t.Fatalf("bob/failed = %d, want 1", got)
	}
	// Same family on re-lookup.
	if r.CounterVec("jobs.done", "tenant", "state").With("alice", "done").Value() != 4 {
		t.Fatal("re-looked-up family lost its children")
	}
}

func TestVecNilAndMismatchedAreNoOps(t *testing.T) {
	var nilV *CounterVec
	nilV.With("a").Inc() // must not panic

	var nilR *Registry
	nilR.CounterVec("x", "l").With("v").Inc()
	nilR.GaugeVec("x", "l").With("v").Set(1)
	nilR.HistogramVec("x", SecondsBuckets, "l").With("v").Observe(1)

	r := NewRegistry()
	v := r.CounterVec("c", "tenant")
	v.With("a", "extra").Inc() // wrong arity: no-op child
	if len(v.snapshot()) != 0 {
		t.Fatal("mismatched label count created a child")
	}
}

// TestLabelKeyUnambiguous pins that label values containing would-be
// separators cannot alias distinct children.
func TestLabelKeyUnambiguous(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "a", "b")
	v.With("x:", "y").Inc()
	v.With("x", ":y").Inc()
	if n := len(v.snapshot()); n != 2 {
		t.Fatalf("aliased children: got %d, want 2", n)
	}
}

func TestHistogramVecSharesBounds(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("lat", []float64{1, 2, 4}, "tenant")
	v.With("a").Observe(1.5)
	v.With("b").Observe(3)
	snap := v.snapshot()
	if len(snap) != 2 {
		t.Fatalf("children = %d, want 2", len(snap))
	}
	for _, ch := range snap {
		if len(ch.Hist.Bounds) != 3 || ch.Hist.Bounds[2] != 4 {
			t.Fatalf("child bounds = %v", ch.Hist.Bounds)
		}
	}
}

func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c", "k")
	hv := r.HistogramVec("h", SecondsBuckets, "k")
	gv := r.GaugeVec("g", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			keys := []string{"a", "b", "c"}
			for n := 0; n < 500; n++ {
				k := keys[n%len(keys)]
				cv.With(k).Inc()
				hv.With(k).Observe(float64(n) / 100)
				gv.With(k).Set(float64(n))
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, ch := range cv.snapshot() {
		total += ch.Value
	}
	if total != 8*500 {
		t.Fatalf("counter total = %d, want %d", total, 8*500)
	}
}

func TestSnapshotIncludesVecs(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain").Inc()
	r.CounterVec("fam", "tenant").With("a").Add(2)
	r.GaugeVec("gfam", "tenant").With("a").Set(7)
	r.HistogramVec("hfam", []float64{1, 10}, "tenant").With("a").Observe(5)
	snap := r.Snapshot()
	if snap.Counters["plain"] != 1 {
		t.Fatal("plain counter missing")
	}
	cs, ok := snap.CounterVecs["fam"]
	if !ok || len(cs) != 1 || cs[0].Value != 2 || cs[0].Labels["tenant"] != "a" {
		t.Fatalf("counter vec snapshot = %+v", cs)
	}
	gs := snap.GaugeVecs["gfam"]
	if len(gs) != 1 || gs[0].Value != 7 {
		t.Fatalf("gauge vec snapshot = %+v", gs)
	}
	hs := snap.HistogramVecs["hfam"]
	if len(hs) != 1 || hs[0].Hist.Count != 1 || hs[0].Hist.Sum != 5 {
		t.Fatalf("histogram vec snapshot = %+v", hs)
	}
}

// BenchmarkCounterVecWith measures the resolve-then-add hot path against the
// plain counter baseline (the labeled path adds one map lookup under RLock).
func BenchmarkCounterVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("c", "tenant")
	b.Run("with", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.With("tenant-1").Inc()
		}
	})
	c := r.Counter("plain")
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
}
