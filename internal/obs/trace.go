// Package obs is the runtime's observability layer: a lightweight span
// tracer, a metrics registry, and exporters for both. The engine, the
// distributed runtime and the local scheduler all emit into it, so a single
// run can be attributed operator by operator — which shuffle moved which
// bytes under which strategy, how long each stage computed versus waited on
// the (modelled) network, how often the plan cache hit.
//
// Everything is disabled by default at zero cost: a nil *Tracer and a nil
// *Registry are valid no-op receivers, so instrumented code calls them
// unconditionally and pays only a nil check when observability is off.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a span within one Tracer. 0 means "no span" (used for
// roots and for the scope when none is set).
type SpanID int64

// AttrKind discriminates the payload of an Attr.
type AttrKind int

// Attribute payload kinds.
const (
	AttrString AttrKind = iota
	AttrInt
	AttrFloat
)

// Attr is one key/value attribute attached to a span. Values are typed so
// exporters can render numbers as numbers (the Chrome trace viewer and the
// byte-accounting tests both need exact integers).
type Attr struct {
	Key   string
	Kind  AttrKind
	Str   string
	Int   int64
	Float float64
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Kind: AttrString, Str: v} }

// Int64 builds an integer attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, Kind: AttrInt, Int: v} }

// Float64 builds a float attribute.
func Float64(key string, v float64) Attr { return Attr{Key: key, Kind: AttrFloat, Float: v} }

// Value returns the attribute's payload as an interface value (for JSON
// export).
func (a Attr) Value() any {
	switch a.Kind {
	case AttrInt:
		return a.Int
	case AttrFloat:
		return a.Float
	default:
		return a.Str
	}
}

// Span is one finished span: a named interval with a category, a parent
// link, and attributes. Times are nanoseconds since the tracer's epoch, so
// spans from one tracer share a timeline.
type Span struct {
	ID     SpanID
	Parent SpanID
	// Cat groups spans into exporter lanes: "engine", "op", "comm", "sched".
	Cat  string
	Name string
	// Start and End are nanoseconds since the tracer epoch.
	Start, End int64
	Attrs      []Attr
}

// DurationSec returns the span length in seconds.
func (s *Span) DurationSec() float64 { return float64(s.End-s.Start) / 1e9 }

// Attr returns the attribute with the given key and whether it exists.
func (s *Span) Attr(key string) (Attr, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// Tracer records spans. All methods are safe for concurrent use, and all
// methods on a nil *Tracer are no-ops — instrumented code holds a *Tracer
// that is nil until observability is enabled, and calls it unconditionally.
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	// clock returns nanoseconds since the epoch; replaced in tests for
	// deterministic golden output.
	clock  func() int64
	nextID atomic.Int64
	open   map[SpanID]*Span
	done   []Span
	scope  atomic.Int64
}

// NewTracer creates an enabled tracer with a monotonic wall clock.
func NewTracer() *Tracer {
	t := &Tracer{epoch: time.Now(), open: make(map[SpanID]*Span)}
	t.clock = func() int64 { return time.Since(t.epoch).Nanoseconds() }
	return t
}

// SetClock replaces the tracer's clock with fn, which must return
// nanoseconds since the tracer's epoch. Used by tests to make timestamps
// deterministic.
func (t *Tracer) SetClock(fn func() int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = fn
}

// Enabled reports whether spans are being recorded. Hot paths guard
// attribute construction behind it.
func (t *Tracer) Enabled() bool { return t != nil }

// Start opens a span under the given parent (0 for a root) and returns its
// ID. On a nil tracer it returns 0.
func (t *Tracer) Start(cat, name string, parent SpanID, attrs ...Attr) SpanID {
	if t == nil {
		return 0
	}
	id := SpanID(t.nextID.Add(1))
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	t.open[id] = &Span{ID: id, Parent: parent, Cat: cat, Name: name, Start: now, End: now, Attrs: attrs}
	return id
}

// End closes a span, appending any extra attributes (payloads often only
// known at completion: byte counts, task splits). Unknown or already-closed
// IDs are ignored, as is id 0.
func (t *Tracer) End(id SpanID, attrs ...Attr) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sp, ok := t.open[id]
	if !ok {
		return
	}
	delete(t.open, id)
	sp.End = t.clock()
	sp.Attrs = append(sp.Attrs, attrs...)
	t.done = append(t.done, *sp)
}

// Event records a zero-duration span (a point event carrying a payload,
// e.g. one shuffle's byte count).
func (t *Tracer) Event(cat, name string, parent SpanID, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	id := SpanID(t.nextID.Add(1))
	t.done = append(t.done, Span{ID: id, Parent: parent, Cat: cat, Name: name, Start: now, End: now, Attrs: attrs})
}

// SetScope sets the tracer's current scope span — the parent that
// lower-layer spans (dist comm events, sched batches) attach to when the
// engine executes operators sequentially — and returns the previous scope.
func (t *Tracer) SetScope(id SpanID) SpanID {
	if t == nil {
		return 0
	}
	return SpanID(t.scope.Swap(int64(id)))
}

// Scope returns the current scope span (0 if none).
func (t *Tracer) Scope() SpanID {
	if t == nil {
		return 0
	}
	return SpanID(t.scope.Load())
}

// Spans returns a copy of the finished spans in completion order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.done))
	copy(out, t.done)
	return out
}

// Len returns the number of finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.done)
}

// Reset drops all recorded spans (open spans included) and clears the
// scope.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done = nil
	t.open = make(map[SpanID]*Span)
	t.scope.Store(0)
}
