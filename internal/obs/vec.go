package obs

import (
	"sort"
	"strconv"
	"sync"
)

// Labeled metric families. A *Vec is a family of metrics of one kind sharing
// a name and a fixed set of label names; With resolves one child metric per
// distinct label-value tuple, creating it on first use. Children are ordinary
// *Counter/*Gauge/*Histogram values, so the hot path after resolution is
// identical to unlabeled metrics — callers that observe repeatedly for the
// same labels should hold the child, not re-resolve it.
//
// Like everything else in this package, nil receivers are valid no-ops:
// a nil *CounterVec yields a nil *Counter from With, which itself ignores
// Add. A With call whose value count does not match the family's label names
// also yields the nil no-op metric (a forgiving contract, matching
// Registry.Histogram's treatment of mismatched bounds).

// labelKey builds an unambiguous map key from label values using
// length-prefixed encoding (a plain separator join would collide when values
// contain the separator).
func labelKey(values []string) string {
	n := 0
	for _, v := range values {
		n += len(v) + 8
	}
	b := make([]byte, 0, n)
	for _, v := range values {
		b = strconv.AppendInt(b, int64(len(v)), 10)
		b = append(b, ':')
		b = append(b, v...)
	}
	return string(b)
}

// labelMap zips label names and values into the snapshot's map form.
func labelMap(names, values []string) map[string]string {
	m := make(map[string]string, len(names))
	for i, n := range names {
		m[n] = values[i]
	}
	return m
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	names    []string
	mu       sync.RWMutex
	children map[string]*labeledCounter
}

type labeledCounter struct {
	values []string
	c      Counter
}

func newCounterVec(names []string) *CounterVec {
	return &CounterVec{names: append([]string(nil), names...), children: make(map[string]*labeledCounter)}
}

// With returns the child counter for the given label values (one per label
// name, in declaration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || len(values) != len(v.names) {
		return nil
	}
	k := labelKey(values)
	v.mu.RLock()
	ch, ok := v.children[k]
	v.mu.RUnlock()
	if !ok {
		v.mu.Lock()
		ch, ok = v.children[k]
		if !ok {
			ch = &labeledCounter{values: append([]string(nil), values...)}
			v.children[k] = ch
		}
		v.mu.Unlock()
	}
	return &ch.c
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct {
	names    []string
	mu       sync.RWMutex
	children map[string]*labeledGauge
}

type labeledGauge struct {
	values []string
	g      Gauge
}

func newGaugeVec(names []string) *GaugeVec {
	return &GaugeVec{names: append([]string(nil), names...), children: make(map[string]*labeledGauge)}
}

// With returns the child gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || len(values) != len(v.names) {
		return nil
	}
	k := labelKey(values)
	v.mu.RLock()
	ch, ok := v.children[k]
	v.mu.RUnlock()
	if !ok {
		v.mu.Lock()
		ch, ok = v.children[k]
		if !ok {
			ch = &labeledGauge{values: append([]string(nil), values...)}
			v.children[k] = ch
		}
		v.mu.Unlock()
	}
	return &ch.g
}

// HistogramVec is a family of histograms keyed by label values; every child
// shares the family's bucket bounds.
type HistogramVec struct {
	names    []string
	bounds   []float64
	mu       sync.RWMutex
	children map[string]*labeledHistogram
}

type labeledHistogram struct {
	values []string
	h      *Histogram
}

func newHistogramVec(bounds []float64, names []string) *HistogramVec {
	return &HistogramVec{
		names:    append([]string(nil), names...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*labeledHistogram),
	}
}

// With returns the child histogram for the given label values, creating it
// with the family's bounds on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || len(values) != len(v.names) {
		return nil
	}
	k := labelKey(values)
	v.mu.RLock()
	ch, ok := v.children[k]
	v.mu.RUnlock()
	if !ok {
		v.mu.Lock()
		ch, ok = v.children[k]
		if !ok {
			ch = &labeledHistogram{values: append([]string(nil), values...), h: newHistogram(v.bounds)}
			v.children[k] = ch
		}
		v.mu.Unlock()
	}
	return ch.h
}

// LabeledCounterSnapshot is one counter child in a family snapshot.
type LabeledCounterSnapshot struct {
	Labels map[string]string `json:"labels"`
	Value  int64             `json:"value"`
}

// LabeledGaugeSnapshot is one gauge child in a family snapshot.
type LabeledGaugeSnapshot struct {
	Labels map[string]string `json:"labels"`
	Value  float64           `json:"value"`
}

// LabeledHistogramSnapshot is one histogram child in a family snapshot.
type LabeledHistogramSnapshot struct {
	Labels map[string]string `json:"labels"`
	Hist   HistogramSnapshot `json:"hist"`
}

// sortedKeys returns the children keys in deterministic order, so snapshots
// and expositions are stable.
func sortedKeys[T any](m map[string]T) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (v *CounterVec) snapshot() []LabeledCounterSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]LabeledCounterSnapshot, 0, len(v.children))
	for _, k := range sortedKeys(v.children) {
		ch := v.children[k]
		out = append(out, LabeledCounterSnapshot{Labels: labelMap(v.names, ch.values), Value: ch.c.Value()})
	}
	return out
}

func (v *GaugeVec) snapshot() []LabeledGaugeSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]LabeledGaugeSnapshot, 0, len(v.children))
	for _, k := range sortedKeys(v.children) {
		ch := v.children[k]
		out = append(out, LabeledGaugeSnapshot{Labels: labelMap(v.names, ch.values), Value: ch.g.Value()})
	}
	return out
}

func (v *HistogramVec) snapshot() []LabeledHistogramSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]LabeledHistogramSnapshot, 0, len(v.children))
	for _, k := range sortedKeys(v.children) {
		ch := v.children[k]
		out = append(out, LabeledHistogramSnapshot{Labels: labelMap(v.names, ch.values), Hist: ch.h.snapshot()})
	}
	return out
}
