package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// goldenRegistry builds a small fixed registry covering every metric kind,
// plain and labeled.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("serve.jobs.submitted").Add(12)
	r.Gauge("serve.queue.depth").Set(3)
	h := r.Histogram("serve.queue.wait.seconds", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)
	cv := r.CounterVec("serve.tenant.jobs.finished", "tenant", "state")
	cv.With("alice", "done").Add(7)
	cv.With("bob", "failed").Add(1)
	r.GaugeVec("serve.tenant.queue.depth", "tenant").With("alice").Set(2)
	hv := r.HistogramVec("serve.tenant.job.run.seconds", []float64{1, 5}, "tenant")
	hv.With("alice").Observe(0.5)
	hv.With("alice").Observe(2)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden.prom")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("c", "path").With("a\\b\"c\nd").Inc()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `dmac_c_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("exposition missing escaped sample %q:\n%s", want, buf.String())
	}
	// The escaped value must stay on one physical line.
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "dmac_c_total") && !strings.HasSuffix(line, " 1") {
			t.Fatalf("sample line broken by raw newline: %q", line)
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve.admit.rejected.queue-full").Inc()
	r.Gauge("kernel.mul.gflops").Set(1.5)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dmac_serve_admit_rejected_queue_full_total 1",
		"dmac_kernel_mul_gflops 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// parseProm is a minimal exposition-format reader: TYPE lines plus
// name{labels} value samples. It is deliberately independent of the writer's
// internals so round-trip tests exercise the actual format.
func parseProm(t *testing.T, data []byte) (types map[string]string, samples map[string]float64) {
	t.Helper()
	types = map[string]string{}
	samples = map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return types, samples
}

// TestPromHistogramRoundTrip pins that a scraped histogram's count and sum
// equal the MetricsSnapshot's, and that bucket counts are cumulative.
func TestPromHistogramRoundTrip(t *testing.T) {
	r := goldenRegistry()
	snap := r.Snapshot()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	types, samples := parseProm(t, buf.Bytes())

	if types["dmac_serve_queue_wait_seconds"] != "histogram" {
		t.Fatalf("histogram TYPE missing: %v", types)
	}
	hs := snap.Histograms["serve.queue.wait.seconds"]
	if got := samples["dmac_serve_queue_wait_seconds_count"]; got != float64(hs.Count) {
		t.Fatalf("scraped count %v != snapshot %d", got, hs.Count)
	}
	if got := samples["dmac_serve_queue_wait_seconds_sum"]; got != hs.Sum {
		t.Fatalf("scraped sum %v != snapshot %v", got, hs.Sum)
	}
	if got := samples[`dmac_serve_queue_wait_seconds_bucket{le="+Inf"}`]; got != float64(hs.Count) {
		t.Fatalf("+Inf bucket %v != count %d", got, hs.Count)
	}
	// Cumulative: le=1 includes le=0.1's observation.
	if got := samples[`dmac_serve_queue_wait_seconds_bucket{le="1"}`]; got != 2 {
		t.Fatalf("le=1 bucket = %v, want cumulative 2", got)
	}

	// Labeled histogram children keep per-child count/sum.
	lh := snap.HistogramVecs["serve.tenant.job.run.seconds"][0]
	if got := samples[`dmac_serve_tenant_job_run_seconds_count{tenant="alice"}`]; got != float64(lh.Hist.Count) {
		t.Fatalf("labeled count %v != snapshot %d", got, lh.Hist.Count)
	}
	if got := samples[`dmac_serve_tenant_job_run_seconds_sum{tenant="alice"}`]; got != lh.Hist.Sum {
		t.Fatalf("labeled sum %v != snapshot %v", got, lh.Hist.Sum)
	}

	// Counters and counter families carry the _total suffix and counter TYPE.
	if types["dmac_serve_jobs_submitted_total"] != "counter" ||
		types["dmac_serve_tenant_jobs_finished_total"] != "counter" {
		t.Fatalf("counter TYPEs missing: %v", types)
	}
	if got := samples[`dmac_serve_tenant_jobs_finished_total{state="done",tenant="alice"}`]; got != 7 {
		t.Fatalf("labeled counter = %v, want 7", got)
	}
}

// TestPromDeterministic pins byte-identical output across repeated renders
// (map iteration must not leak into the exposition).
func TestPromDeterministic(t *testing.T) {
	r := goldenRegistry()
	var first bytes.Buffer
	if err := WritePrometheus(&first, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var again bytes.Buffer
		if err := WritePrometheus(&again, r.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, first.String(), again.String())
		}
	}
}

func TestQuantileLinearInterpolation(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// 10 observations uniformly in (1,2]: quantiles interpolate inside it.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1.5 {
		t.Fatalf("q0.5 = %v, want 1.5 (midpoint of (1,2])", got)
	}
	if got := h.Quantile(1); got != 2.0 {
		t.Fatalf("q1 = %v, want 2.0 (upper edge)", got)
	}

	// First bucket interpolates from 0.
	h2 := newHistogram([]float64{10})
	h2.Observe(1)
	h2.Observe(2)
	if got := h2.Quantile(0.5); got != 5.0 {
		t.Fatalf("q0.5 = %v, want 5.0 (half of first bucket)", got)
	}

	// Overflow clamps to the highest bound.
	h3 := newHistogram([]float64{1, 2})
	h3.Observe(100)
	if got := h3.Quantile(0.99); got != 2.0 {
		t.Fatalf("overflow quantile = %v, want clamp to 2.0", got)
	}

	// Spread across buckets: exact rank boundaries.
	h4 := newHistogram([]float64{1, 2, 4})
	h4.Observe(0.5) // bucket (0,1]
	h4.Observe(1.5) // bucket (1,2]
	h4.Observe(3)   // bucket (2,4]
	h4.Observe(3.5) // bucket (2,4]
	if got := h4.Quantile(0.25); got != 1.0 {
		t.Fatalf("q0.25 = %v, want 1.0", got)
	}
	if got := h4.Quantile(0.75); got != 3.0 {
		t.Fatalf("q0.75 = %v, want 3.0 (half through (2,4])", got)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile != 0")
	}
	h := newHistogram([]float64{1, 2})
	if h.Quantile(0.9) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Observe(1.5)
	if got := h.Quantile(-1); got < 1 || got > 2 {
		t.Fatalf("clamped q<0 out of bucket: %v", got)
	}
	if got := h.Quantile(2); got != 2 {
		t.Fatalf("clamped q>1 = %v, want 2", got)
	}
}

// BenchmarkWritePrometheus sizes the scrape path for a realistic registry.
func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 50; i++ {
		r.Counter(fmt.Sprintf("c.%d", i)).Add(int64(i))
	}
	hv := r.HistogramVec("h", SecondsBuckets, "tenant")
	for i := 0; i < 10; i++ {
		hv.With(fmt.Sprintf("t%d", i)).Observe(0.1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
			b.Fatal(err)
		}
	}
}
