package obs

import (
	"sync"
	"testing"
)

// fakeClock returns a deterministic clock that advances by step nanoseconds
// per reading.
func fakeClock(step int64) func() int64 {
	var now int64
	return func() int64 {
		now += step
		return now
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	id := tr.Start("engine", "run", 0, String("k", "v"))
	if id != 0 {
		t.Fatalf("nil tracer Start = %d, want 0", id)
	}
	tr.End(id)
	tr.Event("comm", "shuffle", 0)
	if got := tr.SetScope(7); got != 0 {
		t.Fatalf("nil tracer SetScope = %d, want 0", got)
	}
	if got := tr.Scope(); got != 0 {
		t.Fatalf("nil tracer Scope = %d, want 0", got)
	}
	if tr.Spans() != nil || tr.Len() != 0 {
		t.Fatal("nil tracer has spans")
	}
	tr.Reset()
	tr.SetClock(func() int64 { return 0 })
}

func TestTracerSpansAndParents(t *testing.T) {
	tr := NewTracer()
	tr.SetClock(fakeClock(1000))

	root := tr.Start("engine", "run", 0)
	child := tr.Start("engine", "stage 1", root, Int64("stage", 1))
	tr.Event("comm", "shuffle", child, Int64("bytes", 64))
	tr.End(child, Int64("ops", 3))
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// Completion order: event, child, root.
	if spans[0].Name != "shuffle" || spans[0].Parent != child {
		t.Fatalf("event span = %+v, want shuffle under %d", spans[0], child)
	}
	if spans[0].Start != spans[0].End {
		t.Fatal("event span has nonzero duration")
	}
	if spans[1].ID != child || spans[1].Parent != root {
		t.Fatalf("child span = %+v", spans[1])
	}
	if a, ok := spans[1].Attr("ops"); !ok || a.Int != 3 {
		t.Fatalf("end-time attr not recorded: %+v", spans[1].Attrs)
	}
	if a, ok := spans[1].Attr("stage"); !ok || a.Int != 1 {
		t.Fatalf("start-time attr not recorded: %+v", spans[1].Attrs)
	}
	if spans[1].End <= spans[1].Start {
		t.Fatalf("child span not an interval: [%d, %d]", spans[1].Start, spans[1].End)
	}
	if spans[2].ID != root || spans[2].Parent != 0 {
		t.Fatalf("root span = %+v", spans[2])
	}
}

func TestTracerScope(t *testing.T) {
	tr := NewTracer()
	if tr.Scope() != 0 {
		t.Fatal("fresh tracer has a scope")
	}
	prev := tr.SetScope(5)
	if prev != 0 || tr.Scope() != 5 {
		t.Fatalf("SetScope(5): prev=%d scope=%d", prev, tr.Scope())
	}
	prev = tr.SetScope(9)
	if prev != 5 || tr.Scope() != 9 {
		t.Fatalf("SetScope(9): prev=%d scope=%d", prev, tr.Scope())
	}
	tr.Reset()
	if tr.Scope() != 0 {
		t.Fatal("Reset did not clear scope")
	}
}

func TestTracerEndUnknownID(t *testing.T) {
	tr := NewTracer()
	tr.End(0)
	tr.End(42)
	id := tr.Start("op", "x", 0)
	tr.End(id)
	tr.End(id) // double close is ignored
	if tr.Len() != 1 {
		t.Fatalf("got %d spans, want 1", tr.Len())
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer()
	open := tr.Start("op", "left-open", 0)
	tr.Event("comm", "x", 0)
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset left spans behind")
	}
	tr.End(open) // span was dropped by Reset; must not resurface
	if tr.Len() != 0 {
		t.Fatal("End after Reset resurrected a span")
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("engine", "run", 0)
	tr.SetScope(root)
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := tr.Start("sched", "batch", tr.Scope(), Int64("i", int64(i)))
				tr.Event("comm", "shuffle", id, Int64("bytes", 8))
				tr.End(id)
			}
		}()
	}
	wg.Wait()
	tr.End(root)
	want := goroutines*perG*2 + 1
	if tr.Len() != want {
		t.Fatalf("got %d spans, want %d", tr.Len(), want)
	}
	for _, s := range tr.Spans() {
		if s.Cat == "sched" && s.Parent != root {
			t.Fatalf("batch span parented to %d, want %d", s.Parent, root)
		}
	}
}
