package obs

import (
	"sync"
	"testing"
)

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	if c != nil {
		t.Fatal("nil registry returned a live counter")
	}
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := r.Gauge("y")
	g.Set(3.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	h := r.Histogram("z", SecondsBuckets)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram holds observations")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same counter name yields different counters")
	}
	if r.Gauge("b") != r.Gauge("b") {
		t.Fatal("same gauge name yields different gauges")
	}
	if r.Histogram("c", BytesBuckets) != r.Histogram("c", SecondsBuckets) {
		t.Fatal("same histogram name yields different histograms")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{10, 100, 1000})
	for _, v := range []float64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	// SearchFloat64s puts values equal to a bound into that bound's bucket.
	want := []int64{2, 2, 0, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 1+10+11+100+5000 {
		t.Fatalf("Sum = %v", h.Sum())
	}
}

func TestDefaultBuckets(t *testing.T) {
	if len(BytesBuckets) != 12 || BytesBuckets[0] != 256 || BytesBuckets[1] != 1024 {
		t.Fatalf("BytesBuckets = %v", BytesBuckets)
	}
	if len(SecondsBuckets) != 9 || SecondsBuckets[0] != 1e-6 {
		t.Fatalf("SecondsBuckets = %v", SecondsBuckets)
	}
	if len(TasksBuckets) != 8 || TasksBuckets[0] != 1 || TasksBuckets[1] != 4 {
		t.Fatalf("TasksBuckets = %v", TasksBuckets)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Gauge("load").Set(0.5)
	r.Histogram("lat", []float64{1, 2}).Observe(1.5)
	snap := r.Snapshot()
	if snap.Counters["hits"] != 3 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Gauges["load"] != 0.5 {
		t.Fatalf("gauges = %v", snap.Gauges)
	}
	hs := snap.Histograms["lat"]
	if hs.Count != 1 || hs.Sum != 1.5 || len(hs.Counts) != 3 || hs.Counts[1] != 1 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	// The snapshot is a copy: later writes must not leak in.
	r.Counter("hits").Add(10)
	if snap.Counters["hits"] != 3 {
		t.Fatal("snapshot aliases live counter")
	}
}

func TestMetricsConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h", TasksBuckets).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
	if got := r.Histogram("h", TasksBuckets).Count(); got != 800 {
		t.Fatalf("histogram count = %d, want 800", got)
	}
}
