package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenSpans builds a small fixed trace under a deterministic clock: a run
// span holding one stage, one operator with a comm event, and a sched batch.
func goldenSpans() []Span {
	tr := NewTracer()
	tr.SetClock(fakeClock(500_000)) // 0.5 ms per clock reading

	run := tr.Start("engine", "run", 0, String("planner", "DMac"), Int64("stages", 1))
	stage := tr.Start("engine", "stage 1", run, Int64("stage", 1), Int64("ops", 1))
	op := tr.Start("op", "compute W %*% H", stage, Int64("stage", 1), String("strategy", "RMM1"))
	tr.Event("comm", "broadcast", op, Int64("stage", 1), Int64("bytes", 4096), String("from_scheme", "Row"))
	batch := tr.Start("sched", "batch", op, Int64("tasks", 8), Int64("workers", 4))
	tr.End(batch, Float64("compute_s", 0.002))
	tr.End(op)
	tr.End(stage)
	tr.End(run, Int64("comm_bytes", 4096))
	return tr.Spans()
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenSpans()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace output differs from %s:\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	spans := goldenSpans()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	events, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(spans) {
		t.Fatalf("round trip lost events: %d != %d", len(events), len(spans))
	}
	back := EventsToSpans(events)
	byID := map[SpanID]Span{}
	for _, s := range back {
		byID[s.ID] = s
	}
	for _, orig := range spans {
		got, ok := byID[orig.ID]
		if !ok {
			t.Fatalf("span %d lost in round trip", orig.ID)
		}
		if got.Name != orig.Name || got.Cat != orig.Cat || got.Parent != orig.Parent {
			t.Fatalf("span %d mutated: got %+v, want %+v", orig.ID, got, orig)
		}
		for _, a := range orig.Attrs {
			if a.Kind != AttrInt {
				continue
			}
			ra, ok := got.Attr(a.Key)
			if !ok || ra.Int != a.Int {
				t.Fatalf("span %d attr %q: got %+v, want %d (integers must survive exactly)",
					orig.ID, a.Key, ra, a.Int)
			}
		}
	}
}

func TestReadChromeTraceBareArray(t *testing.T) {
	in := `[{"name":"x","cat":"op","ph":"X","ts":1,"dur":2,"pid":1,"tid":2,"args":{"span_id":1}}]`
	events, err := ReadChromeTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Name != "x" {
		t.Fatalf("events = %+v", events)
	}
}

func TestReadChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadChromeTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSummarize(t *testing.T) {
	spans := goldenSpans()
	sum := Summarize(spans)
	if sum.TotalBytes != 4096 {
		t.Fatalf("TotalBytes = %d, want 4096", sum.TotalBytes)
	}
	if len(sum.Stages) != 1 || sum.Stages[0].Stage != 1 {
		t.Fatalf("stages = %+v", sum.Stages)
	}
	st := sum.Stages[0]
	if st.Ops != 1 || st.CommEvents != 1 || st.CommBytes != 4096 {
		t.Fatalf("stage summary = %+v", st)
	}
	d := sum.DominantComm()
	if d.Name != "broadcast" || d.Events != 1 || d.Bytes != 4096 {
		t.Fatalf("DominantComm = %+v", d)
	}
	var buf strings.Builder
	WriteTimeline(&buf, spans)
	out := buf.String()
	for _, want := range []string{"dominant communication: broadcast", "stage", "comm kind"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline output missing %q:\n%s", want, out)
		}
	}
}
