package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// StageSummary aggregates one stage's spans.
type StageSummary struct {
	Stage      int
	Ops        int
	CommEvents int
	CommBytes  int64
	// OpSeconds is wall time spent inside the stage's operator spans.
	OpSeconds float64
	// QueueWaitSeconds and ComputeSeconds split the stage's local task
	// batches into time tasks waited in the queue versus time spent
	// computing (summed across tasks, from sched batch spans).
	QueueWaitSeconds float64
	ComputeSeconds   float64
}

// CommSummary aggregates communication events of one kind.
type CommSummary struct {
	Name   string
	Events int
	Bytes  int64
}

// Summary is the aggregate view of one trace, shared by the dmactrace
// timeline and the per-stage table exporter.
type Summary struct {
	// TotalSeconds spans the earliest start to the latest end.
	TotalSeconds float64
	// TotalBytes sums the bytes attribute over all comm spans — by
	// construction equal to the bytes the instrumented network charged.
	TotalBytes int64
	Stages     []StageSummary
	Comm       []CommSummary
	// TopSpans holds the longest op and comm spans, descending.
	TopSpans []Span
}

// DominantComm returns the communication kind moving the most bytes, or a
// zero value when the trace has none.
func (s *Summary) DominantComm() CommSummary {
	var best CommSummary
	for _, c := range s.Comm {
		if c.Bytes > best.Bytes {
			best = c
		}
	}
	return best
}

// stageOf resolves the stage a span belongs to: its own stage attribute, or
// the nearest ancestor's (sched batches inherit the operator that spawned
// them).
func stageOf(s *Span, byID map[SpanID]*Span) (int, bool) {
	for hops := 0; s != nil && hops < 64; hops++ {
		if a, ok := s.Attr("stage"); ok && a.Kind == AttrInt {
			return int(a.Int), true
		}
		if s.Parent == 0 {
			return 0, false
		}
		s = byID[s.Parent]
	}
	return 0, false
}

// Summarize aggregates spans per stage and per communication kind. It works
// identically on a live tracer's spans and on spans decoded from a trace
// file.
func Summarize(spans []Span) Summary {
	var sum Summary
	if len(spans) == 0 {
		return sum
	}
	byID := make(map[SpanID]*Span, len(spans))
	for i := range spans {
		if spans[i].ID != 0 {
			byID[spans[i].ID] = &spans[i]
		}
	}
	stages := make(map[int]*StageSummary)
	comm := make(map[string]*CommSummary)
	var minStart, maxEnd int64
	minStart = spans[0].Start
	stageAt := func(sp *Span) *StageSummary {
		n, ok := stageOf(sp, byID)
		if !ok {
			return nil
		}
		st := stages[n]
		if st == nil {
			st = &StageSummary{Stage: n}
			stages[n] = st
		}
		return st
	}
	for i := range spans {
		sp := &spans[i]
		if sp.Start < minStart {
			minStart = sp.Start
		}
		if sp.End > maxEnd {
			maxEnd = sp.End
		}
		switch sp.Cat {
		case "op":
			if st := stageAt(sp); st != nil {
				st.Ops++
				st.OpSeconds += sp.DurationSec()
			}
		case "comm":
			var bytes int64
			if a, ok := sp.Attr("bytes"); ok {
				bytes = a.Int
			}
			sum.TotalBytes += bytes
			c := comm[sp.Name]
			if c == nil {
				c = &CommSummary{Name: sp.Name}
				comm[sp.Name] = c
			}
			c.Events++
			c.Bytes += bytes
			if st := stageAt(sp); st != nil {
				st.CommEvents++
				st.CommBytes += bytes
			}
		case "sched":
			if st := stageAt(sp); st != nil {
				if a, ok := sp.Attr("queue_wait_s"); ok {
					st.QueueWaitSeconds += a.Float
				}
				if a, ok := sp.Attr("compute_s"); ok {
					st.ComputeSeconds += a.Float
				}
			}
		}
	}
	sum.TotalSeconds = float64(maxEnd-minStart) / 1e9
	for _, st := range stages {
		sum.Stages = append(sum.Stages, *st)
	}
	sort.Slice(sum.Stages, func(i, j int) bool { return sum.Stages[i].Stage < sum.Stages[j].Stage })
	for _, c := range comm {
		sum.Comm = append(sum.Comm, *c)
	}
	sort.Slice(sum.Comm, func(i, j int) bool {
		if sum.Comm[i].Bytes != sum.Comm[j].Bytes {
			return sum.Comm[i].Bytes > sum.Comm[j].Bytes
		}
		return sum.Comm[i].Name < sum.Comm[j].Name
	})
	for i := range spans {
		if spans[i].Cat == "op" || spans[i].Cat == "comm" {
			sum.TopSpans = append(sum.TopSpans, spans[i])
		}
	}
	sort.SliceStable(sum.TopSpans, func(i, j int) bool {
		return sum.TopSpans[i].DurationSec() > sum.TopSpans[j].DurationSec()
	})
	if len(sum.TopSpans) > 10 {
		sum.TopSpans = sum.TopSpans[:10]
	}
	return sum
}

// WriteStageTable renders the human-readable per-stage table: operator
// count, communication events and bytes, and the queue-wait/compute split
// of each stage.
func WriteStageTable(w io.Writer, spans []Span) {
	sum := Summarize(spans)
	writeAligned(w,
		[]string{"stage", "ops", "comm", "bytes", "op wall s", "task compute s", "task queue s"},
		func(emit func(...string)) {
			for _, st := range sum.Stages {
				emit(
					fmt.Sprintf("%d", st.Stage),
					fmt.Sprintf("%d", st.Ops),
					fmt.Sprintf("%d", st.CommEvents),
					fmt.Sprintf("%d", st.CommBytes),
					fmt.Sprintf("%.6f", st.OpSeconds),
					fmt.Sprintf("%.6f", st.ComputeSeconds),
					fmt.Sprintf("%.6f", st.QueueWaitSeconds),
				)
			}
		})
}

// WriteTimeline renders the full dmactrace report: run totals, the
// per-stage table, the communication breakdown and the longest spans.
func WriteTimeline(w io.Writer, spans []Span) {
	sum := Summarize(spans)
	fmt.Fprintf(w, "trace: %d spans, %.6f s, %d bytes communicated\n",
		len(spans), sum.TotalSeconds, sum.TotalBytes)
	if d := sum.DominantComm(); d.Events > 0 {
		fmt.Fprintf(w, "dominant communication: %s (%d events, %d bytes)\n", d.Name, d.Events, d.Bytes)
	}
	fmt.Fprintln(w)
	WriteStageTable(w, spans)
	if len(sum.Comm) > 0 {
		fmt.Fprintln(w)
		writeAligned(w, []string{"comm kind", "events", "bytes"}, func(emit func(...string)) {
			for _, c := range sum.Comm {
				emit(c.Name, fmt.Sprintf("%d", c.Events), fmt.Sprintf("%d", c.Bytes))
			}
		})
	}
	if len(sum.TopSpans) > 0 {
		fmt.Fprintln(w)
		writeAligned(w, []string{"longest spans", "cat", "dur s", "stage"}, func(emit func(...string)) {
			byID := make(map[SpanID]*Span, len(spans))
			for i := range spans {
				byID[spans[i].ID] = &spans[i]
			}
			for _, sp := range sum.TopSpans {
				stage := "-"
				if n, ok := stageOf(&sp, byID); ok {
					stage = fmt.Sprintf("%d", n)
				}
				emit(sp.Name, sp.Cat, fmt.Sprintf("%.6f", sp.DurationSec()), stage)
			}
		})
	}
}

// writeAligned renders an aligned text table; rows are produced by the
// callback so callers avoid building [][]string by hand.
func writeAligned(w io.Writer, headers []string, rows func(emit func(...string))) {
	var collected [][]string
	rows(func(cells ...string) {
		collected = append(collected, cells)
	})
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range collected {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range collected {
		line(r)
	}
}
