package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) over a metrics snapshot.
// Metric names are sanitized (every character outside [a-zA-Z0-9_:] becomes
// '_') and prefixed "dmac_"; counters additionally get the conventional
// "_total" suffix, and histograms expand to the cumulative _bucket/_sum/
// _count triple. Labeled families and plain metrics render through the same
// path — a plain metric is a family with one unlabeled child — and all
// output is deterministically ordered, so a scrape is diffable and
// golden-testable.

// PrometheusContentType is the Content-Type for /metrics responses.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// sanitizeName maps a dotted metric or label name onto the exposition
// format's identifier alphabet.
func sanitizeName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promName sanitizes a dotted metric name into a Prometheus identifier.
func promName(name string) string {
	return "dmac_" + sanitizeName(name)
}

// escapeLabelValue applies the exposition-format escaping rules for label
// values: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// promLabels renders a label set as {k="v",...} with keys in sorted order;
// empty sets render as nothing.
func promLabels(labels map[string]string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	first := true
	emit := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(sanitizeName(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	for _, k := range keys {
		emit(k, labels[k])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		emit(extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat formats a sample value; Prometheus accepts Go's shortest
// representation, with +Inf spelled explicitly.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeHistogramSamples(w io.Writer, name string, labels map[string]string, hs HistogramSnapshot) error {
	var cum int64
	for i, bound := range hs.Bounds {
		cum += hs.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, promLabels(labels, "le", promFloat(bound)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(labels, "le", "+Inf"), hs.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(labels), promFloat(hs.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(labels), hs.Count)
	return err
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: one "# TYPE" header per family followed by its samples, families
// sorted by exposition name, children in the snapshot's (deterministic)
// order.
func WritePrometheus(w io.Writer, snap MetricsSnapshot) error {
	type family struct {
		kind  string // "counter" | "gauge" | "histogram"
		write func(io.Writer, string) error
	}
	families := make(map[string]family)

	for name, v := range snap.Counters {
		v := v
		families[promName(name)+"_total"] = family{kind: "counter", write: func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "%s %d\n", n, v)
			return err
		}}
	}
	for name, children := range snap.CounterVecs {
		children := children
		families[promName(name)+"_total"] = family{kind: "counter", write: func(w io.Writer, n string) error {
			for _, ch := range children {
				if _, err := fmt.Fprintf(w, "%s%s %d\n", n, promLabels(ch.Labels), ch.Value); err != nil {
					return err
				}
			}
			return nil
		}}
	}
	for name, v := range snap.Gauges {
		v := v
		families[promName(name)] = family{kind: "gauge", write: func(w io.Writer, n string) error {
			_, err := fmt.Fprintf(w, "%s %s\n", n, promFloat(v))
			return err
		}}
	}
	for name, children := range snap.GaugeVecs {
		children := children
		families[promName(name)] = family{kind: "gauge", write: func(w io.Writer, n string) error {
			for _, ch := range children {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", n, promLabels(ch.Labels), promFloat(ch.Value)); err != nil {
					return err
				}
			}
			return nil
		}}
	}
	for name, hs := range snap.Histograms {
		hs := hs
		families[promName(name)] = family{kind: "histogram", write: func(w io.Writer, n string) error {
			return writeHistogramSamples(w, n, nil, hs)
		}}
	}
	for name, children := range snap.HistogramVecs {
		children := children
		families[promName(name)] = family{kind: "histogram", write: func(w io.Writer, n string) error {
			for _, ch := range children {
				if err := writeHistogramSamples(w, n, ch.Labels, ch.Hist); err != nil {
					return err
				}
			}
			return nil
		}}
	}

	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := families[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.kind); err != nil {
			return err
		}
		if err := f.write(w, n); err != nil {
			return err
		}
	}
	return nil
}
