package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. A nil *Counter is a
// valid no-op receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric. A nil *Gauge is a valid no-op
// receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are upper bucket
// edges; one implicit overflow bucket catches everything above the last
// bound. A nil *Histogram is a valid no-op receiver.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sumMu  sync.Mutex
	sum    float64
}

// newHistogram creates a histogram over the given ascending bounds.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMu.Lock()
	h.sum += v
	h.sumMu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.sumMu.Lock()
	defer h.sumMu.Unlock()
	return h.sum
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the upper bucket edges; Counts has one extra entry for the
	// overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Default bucket layouts. Byte buckets are powers of 4 from 256 B to 4 GiB;
// second buckets are powers of 10 from 1 µs to 100 s; task buckets are
// powers of 4 from 1 to 16384; GFLOPS buckets are powers of 2 from
// 1/64 GFLOPS to 512 GFLOPS, covering scalar Go kernels through vectorized
// BLAS.
var (
	BytesBuckets   = geometric(256, 4, 12)
	SecondsBuckets = geometric(1e-6, 10, 9)
	TasksBuckets   = geometric(1, 4, 8)
	GFLOPSBuckets  = geometric(1.0/64, 2, 16)
)

func geometric(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry owns named metrics. Metric accessors create on first use, so
// instrumented code never registers up front. All methods are safe for
// concurrent use, and all methods on a nil *Registry return nil metrics —
// which are themselves no-op receivers — so disabled metrics cost only nil
// checks.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls reuse the existing buckets regardless of
// bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// MetricsSnapshot is a point-in-time copy of every metric in a registry,
// shaped for JSON export.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies all metrics. Nil registry yields an empty snapshot.
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms[name] = hs
	}
	return snap
}
