package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. A nil *Counter is a
// valid no-op receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric. A nil *Gauge is a valid no-op
// receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are upper bucket
// edges; one implicit overflow bucket catches everything above the last
// bound. A nil *Histogram is a valid no-op receiver.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	count  atomic.Int64
	sumMu  sync.Mutex
	sum    float64
}

// newHistogram creates a histogram over the given ascending bounds.
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumMu.Lock()
	h.sum += v
	h.sumMu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.sumMu.Lock()
	defer h.sumMu.Unlock()
	return h.sum
}

// snapshot copies the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.Count(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	return hs
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution by linear interpolation within the bucket containing the
// target rank. See HistogramSnapshot.Quantile for the estimation contract.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.snapshot().Quantile(q)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	// Bounds are the upper bucket edges; Counts has one extra entry for the
	// overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Quantile estimates the q-quantile by linear interpolation within the
// bucket containing the target rank, assuming observations spread uniformly
// inside each bucket. The first bucket interpolates from 0 (all layouts in
// this package are non-negative); ranks landing in the overflow bucket clamp
// to the highest bound, since the overflow bucket has no upper edge to
// interpolate toward. An empty histogram reports 0; q is clamped to [0,1].
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			var lo float64
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Default bucket layouts. Byte buckets are powers of 4 from 256 B to 4 GiB;
// second buckets are powers of 10 from 1 µs to 100 s; task buckets are
// powers of 4 from 1 to 16384; GFLOPS buckets are powers of 2 from
// 1/64 GFLOPS to 512 GFLOPS, covering scalar Go kernels through vectorized
// BLAS.
var (
	BytesBuckets   = geometric(256, 4, 12)
	SecondsBuckets = geometric(1e-6, 10, 9)
	TasksBuckets   = geometric(1, 4, 8)
	GFLOPSBuckets  = geometric(1.0/64, 2, 16)
)

func geometric(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry owns named metrics. Metric accessors create on first use, so
// instrumented code never registers up front. All methods are safe for
// concurrent use, and all methods on a nil *Registry return nil metrics —
// which are themselves no-op receivers — so disabled metrics cost only nil
// checks.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		hists:       make(map[string]*Histogram),
		counterVecs: make(map[string]*CounterVec),
		gaugeVecs:   make(map[string]*GaugeVec),
		histVecs:    make(map[string]*HistogramVec),
	}
}

// Counter returns the named counter, creating it on first use. Nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (later calls reuse the existing buckets regardless of
// bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterVec returns the named counter family with the given label names,
// creating it on first use (later calls reuse the existing family regardless
// of label names, matching Histogram's treatment of bounds).
func (r *Registry) CounterVec(name string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = newCounterVec(labelNames)
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge family, creating it on first use.
func (r *Registry) GaugeVec(name string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = newGaugeVec(labelNames)
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram family whose children share the
// given bounds, creating it on first use.
func (r *Registry) HistogramVec(name string, bounds []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histVecs[name]
	if !ok {
		v = newHistogramVec(bounds, labelNames)
		r.histVecs[name] = v
	}
	return v
}

// MetricsSnapshot is a point-in-time copy of every metric in a registry,
// shaped for JSON export. Labeled families appear separately from plain
// metrics, each child carrying its label set.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`

	CounterVecs   map[string][]LabeledCounterSnapshot   `json:"counter_vecs,omitempty"`
	GaugeVecs     map[string][]LabeledGaugeSnapshot     `json:"gauge_vecs,omitempty"`
	HistogramVecs map[string][]LabeledHistogramSnapshot `json:"histogram_vecs,omitempty"`
}

// Snapshot copies all metrics. Nil registry yields an empty snapshot.
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		snap.Histograms[name] = h.snapshot()
	}
	if len(r.counterVecs) > 0 {
		snap.CounterVecs = make(map[string][]LabeledCounterSnapshot, len(r.counterVecs))
		for name, v := range r.counterVecs {
			snap.CounterVecs[name] = v.snapshot()
		}
	}
	if len(r.gaugeVecs) > 0 {
		snap.GaugeVecs = make(map[string][]LabeledGaugeSnapshot, len(r.gaugeVecs))
		for name, v := range r.gaugeVecs {
			snap.GaugeVecs[name] = v.snapshot()
		}
	}
	if len(r.histVecs) > 0 {
		snap.HistogramVecs = make(map[string][]LabeledHistogramSnapshot, len(r.histVecs))
		for name, v := range r.histVecs {
			snap.HistogramVecs[name] = v.snapshot()
		}
	}
	return snap
}
