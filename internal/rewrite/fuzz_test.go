package rewrite_test

import (
	"math/rand"
	"testing"

	"dmac/internal/core"
	"dmac/internal/engine"
	"dmac/internal/rewrite"
)

// FuzzRewrite feeds seeded random programs through the rewriter and checks
// the structural invariants the engine relies on: the output always
// validates, the pass never increases its own cost model, and rewriting is a
// fixed point — a second pass leaves the canonical form (and therefore the
// shared plan-cache key, engine.ProgramSignature) unchanged.
func FuzzRewrite(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	rw := rewrite.New()
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		prog, _ := core.RandomProgram(rng)
		if err := prog.Validate(); err != nil {
			t.Fatalf("generator produced invalid program: %v", err)
		}
		first, err := rw.Rewrite(prog)
		if err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		if err := first.Program.Validate(); err != nil {
			t.Fatalf("rewritten program invalid: %v\n%s", err, rewrite.FormatProgram(first.Program))
		}
		// Tolerance covers summation-order rounding: node order changes, so
		// the two costs are the same terms added in different orders.
		if first.CostAfter > first.CostBefore*(1+1e-12)+1e-12 {
			t.Fatalf("cost increased: %g -> %g", first.CostBefore, first.CostAfter)
		}
		second, err := rw.Rewrite(first.Program)
		if err != nil {
			t.Fatalf("second rewrite: %v", err)
		}
		if second.Changed {
			t.Fatalf("rewrite is not a fixed point:\n%s\nvs\n%s",
				rewrite.FormatProgram(first.Program), rewrite.FormatProgram(second.Program))
		}
		if a, b := engine.ProgramSignature(first.Program), engine.ProgramSignature(second.Program); a != b {
			t.Fatalf("signature unstable across rewrites:\n%s\nvs\n%s", a, b)
		}
	})
}
