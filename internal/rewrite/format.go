package rewrite

import (
	"fmt"
	"strings"

	"dmac/internal/expr"
)

// FormatProgram renders a program one value per line — ID, operator label,
// shape and sparsity estimate, followed by its assignments and scalar
// outputs. The rendering is canonical (construction order, fixed number
// formatting), so it doubles as the golden-file format for the rewriter's
// regression tests: a rule change shows up as a reviewable diff.
func FormatProgram(p *expr.Program) string {
	var b strings.Builder
	for _, n := range p.Nodes() {
		fmt.Fprintf(&b, "m%-3d = %-36s [%dx%d s=%.4g]\n", n.ID, n.Label(), n.Rows, n.Cols, n.Sparsity)
	}
	for _, a := range p.Assignments() {
		fmt.Fprintf(&b, "assign %s = %s\n", a.Name, a.Ref)
	}
	for _, so := range p.ScalarOuts() {
		fmt.Fprintf(&b, "scalar %s = m%d\n", so.Name, so.Node.ID)
	}
	return b.String()
}

// FormatDecisions renders applied rewrite decisions one per line for golden
// files and the dmacplan explain path.
func FormatDecisions(ds []Decision) string {
	if len(ds) == 0 {
		return "(none)\n"
	}
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "%-18s %-5s %s", d.Rule, d.Node, d.Detail)
		if d.FLOPsSaved != 0 {
			fmt.Fprintf(&b, " [flops %+.4g]", d.FLOPsSaved)
		}
		if d.BytesSaved != 0 {
			fmt.Fprintf(&b, " [bytes %+d]", d.BytesSaved)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
