package rewrite_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dmac/internal/core"
	"dmac/internal/dist"
	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/rewrite"
)

// leafData builds deterministic grids for every leaf of a random program. In
// the sparse regime each cell is zero with probability 1 - the leaf's
// declared sparsity, so the rewriter's sparsity refinements face data that
// matches (and data that contradicts — declared estimates are worst cases)
// its estimates.
func leafData(rng *rand.Rand, p *expr.Program, bs int, sparse bool) map[string]*matrix.Grid {
	data := make(map[string]*matrix.Grid)
	for _, n := range p.Nodes() {
		if n.Kind != expr.KindVar && n.Kind != expr.KindLoad {
			continue
		}
		if _, ok := data[n.Name]; ok {
			continue
		}
		g := matrix.NewDenseGrid(n.Rows, n.Cols, bs)
		for ri := 0; ri < n.Rows; ri++ {
			for ci := 0; ci < n.Cols; ci++ {
				if sparse && rng.Float64() > n.Sparsity {
					continue
				}
				g.Set(ri, ci, 0.2+rng.Float64())
			}
		}
		data[n.Name] = g
	}
	return data
}

// differentialFaults is the fault regime applied to a subset of seeds: a
// scripted worker kill plus a scripted block corruption (stage 1 holds only
// leaves, so the first corruptible hand-offs are in stage 2), on top of
// seeded random corruption.
func differentialFaults() dist.FaultPlan {
	return dist.FaultPlan{
		Seed:        17,
		CorruptRate: 0.2,
		Events: []dist.FaultEvent{
			{Stage: 1, Worker: 1, Attempt: 0, Kind: dist.FaultKillBoundary},
			{Stage: 2, Worker: 2, Attempt: 0, Kind: dist.FaultCorrupt},
		},
	}
}

// TestDifferentialRewriteEquivalence is the rewriter's headline correctness
// property: across >= 100 seeded random programs, dense and sparse data
// regimes, the Local and DMac engines, and injected faults, a rewritten
// program produces results numerically equal (1e-9) to the unrewritten one —
// and every applied rewrite is non-increasing under the pass's cost model.
func TestDifferentialRewriteEquivalence(t *testing.T) {
	const bs = 4
	seeds := int64(100)
	if testing.Short() {
		seeds = 25
	}
	rw := rewrite.New()
	var rewritesSeen, corruptionsSeen int
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed + 4200))
		prog, _ := core.RandomProgram(rng)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}

		// Cost-model invariant: the pass never increases its own metric, and
		// no individual decision claims a negative combined saving.
		res, err := rw.Rewrite(prog)
		if err != nil {
			t.Fatalf("seed %d: rewrite: %v", seed, err)
		}
		if err := res.Program.Validate(); err != nil {
			t.Fatalf("seed %d: rewritten program invalid: %v", seed, err)
		}
		// Relative tolerance covers summation-order rounding only: the costs
		// are sums of the same kind of terms in different node orders.
		if res.CostAfter > res.CostBefore*(1+1e-12)+1e-12 {
			t.Fatalf("seed %d: cost increased %g -> %g", seed, res.CostBefore, res.CostAfter)
		}
		for _, d := range res.Decisions {
			if d.FLOPsSaved+float64(d.BytesSaved) < 0 {
				t.Fatalf("seed %d: decision with negative saving: %+v", seed, d)
			}
		}
		rewritesSeen += len(res.Decisions)

		var outs, scalars []string
		for _, a := range prog.Assignments() {
			outs = append(outs, a.Name)
		}
		for _, s := range prog.ScalarOuts() {
			scalars = append(scalars, s.Name)
		}

		for _, sparse := range []bool{false, true} {
			regime := "dense"
			if sparse {
				regime = "sparse"
			}
			data := leafData(rand.New(rand.NewSource(seed+77)), prog, bs, sparse)

			type result struct {
				grids   map[string]*matrix.Grid
				scalars map[string]float64
				total   engine.Metrics
			}
			runOne := func(planner engine.Planner, rewriteOn bool, faults dist.FaultPlan) result {
				label := fmt.Sprintf("seed %d %s/%s rewrite=%v", seed, planner, regime, rewriteOn)
				cfg := dist.Config{Workers: 4, LocalParallelism: 2, Faults: faults}
				e := engine.New(planner, cfg, bs)
				if rewriteOn {
					e.SetRewriter(rw)
				}
				for name, g := range data {
					if err := e.Bind(name, g.Clone()); err != nil {
						t.Fatalf("%s: %v", label, err)
					}
				}
				r := result{grids: map[string]*matrix.Grid{}, scalars: map[string]float64{}}
				for iter := 0; iter < 2; iter++ {
					m, err := e.Run(prog, nil)
					if err != nil {
						t.Fatalf("%s iter %d: %v", label, iter, err)
					}
					r.total.Add(m)
				}
				for _, name := range outs {
					g, ok := e.Grid(name)
					if !ok {
						t.Fatalf("%s: output %s missing", label, name)
					}
					r.grids[name] = g
				}
				for _, name := range scalars {
					v, ok := e.Scalar(name)
					if !ok {
						t.Fatalf("%s: scalar %s missing", label, name)
					}
					r.scalars[name] = v
				}
				return r
			}
			check := func(label string, ref, got result) {
				for name, g := range ref.grids {
					if !matrix.GridEqual(got.grids[name], g, 1e-9) {
						t.Errorf("%s: output %s differs from unrewritten reference", label, name)
					}
				}
				for name, v := range ref.scalars {
					if d := got.scalars[name] - v; math.Abs(d) > 1e-9*(1+math.Abs(v)) {
						t.Errorf("%s: scalar %s = %v, reference %v", label, name, got.scalars[name], v)
					}
				}
			}

			ref := runOne(engine.Local, false, dist.FaultPlan{})
			check(fmt.Sprintf("seed %d Local/%s", seed, regime),
				ref, runOne(engine.Local, true, dist.FaultPlan{}))
			check(fmt.Sprintf("seed %d DMac/%s", seed, regime),
				ref, runOne(engine.DMac, false, dist.FaultPlan{}))
			check(fmt.Sprintf("seed %d DMac+rw/%s", seed, regime),
				ref, runOne(engine.DMac, true, dist.FaultPlan{}))

			// Fault injection on a subset of seeds: rewritten plans must
			// recover to the same results, and every injected corruption must
			// be detected.
			if seed%5 == 0 && !sparse {
				got := runOne(engine.DMac, true, differentialFaults())
				check(fmt.Sprintf("seed %d DMac+rw/faults", seed), ref, got)
				if got.total.CorruptionsInjected != got.total.CorruptionsDetected {
					t.Errorf("seed %d: %d corruptions injected, %d detected",
						seed, got.total.CorruptionsInjected, got.total.CorruptionsDetected)
				}
				corruptionsSeen += got.total.CorruptionsInjected
			}
		}
	}
	// The property must not be vacuous: rewrites and corruptions both fired.
	if rewritesSeen == 0 {
		t.Error("no rewrite ever applied across all seeds")
	}
	if corruptionsSeen == 0 {
		t.Error("no corruption ever injected across the fault subset")
	}
}
