// Package rewrite implements the cross-operator algebraic rewriter that runs
// before plan generation (the ROADMAP's "MatFast-style" item; see "Scalable
// Relational Query Processing on Big Matrix Data" in PAPERS.md). The paper's
// planner picks the cheapest execution strategy per operator but never
// changes the program itself; this pass rewrites the program — preserving
// results exactly — so the planner starts from a cheaper expression:
//
//   - matrix-chain reordering: (AB)C vs A(BC), chosen by dynamic programming
//     over the planner's cost terms (2mkn FLOPs plus the worst-case dense
//     size of every intermediate);
//   - transpose pushdown: when every consumer reads a product transposed,
//     t(A%*%B) is rewritten to t(B)%*%t(A), turning a materialized transpose
//     into fused transpose-multiply reads (the kernels of PR 3);
//   - identity folding: X*1, X/1, X+0, X-0 disappear;
//   - dead-code elimination: values no assignment or scalar output can reach
//     are never planned;
//   - sparsity refinement: multiplication and cell-product outputs get
//     tighter sparsity estimates than the builder's worst case, propagated
//     through downstream operators so the planner sizes intermediates (and
//     picks dense vs sparse kernels) from better estimates.
//
// Every structural rule is gated on the pass's own cost model (ProgramCost)
// being non-increasing, and the differential harness in this package proves
// rewritten and unrewritten programs produce numerically equal results on
// both the Local and DMac engines. Rewriting is deterministic and idempotent:
// rewriting a rewritten program is a fixed point (the fuzz target checks
// signature stability).
package rewrite

import (
	"fmt"
	"math"

	"dmac/internal/core"
	"dmac/internal/dep"
	"dmac/internal/expr"
	"dmac/internal/matrix"
)

// Version identifies the rewrite-rule set. It participates in the engine's
// plan-cache signatures: bumping it invalidates every cached plan generated
// under older rules, so a binary with new rewrites can never be served a
// stale plan keyed by a pre-rewrite canonical form.
const Version = 1

// Rule names used in decisions, metrics counters and span events.
const (
	RuleChainReorder      = "chain-reorder"
	RuleTransposePushdown = "transpose-pushdown"
	RuleFoldIdentity      = "fold-identity"
	RuleDeadCode          = "dead-code"
	RuleSparsity          = "sparsity-refine"
)

// Config disables individual rule families (all enabled by default); used by
// ablation tests and the A/B bench.
type Config struct {
	DisableChainReorder      bool
	DisableTransposePushdown bool
	DisableFolding           bool
	DisableSparsity          bool
}

// Rewriter applies the algebraic rewrite pass. A Rewriter is stateless and
// safe for concurrent use by multiple engines.
type Rewriter struct {
	cfg Config
}

// New returns a rewriter with every rule enabled.
func New() *Rewriter { return &Rewriter{} }

// NewWithConfig returns a rewriter with the given rule toggles.
func NewWithConfig(cfg Config) *Rewriter { return &Rewriter{cfg: cfg} }

// Decision records one applied rewrite, with the model savings it was gated
// on: FLOPs (compute plus transposed-read charges) and bytes (worst-case
// intermediate sizes).
type Decision struct {
	Rule       string
	Node       string // the source-program value it applied to, e.g. "m4"
	Detail     string
	FLOPsSaved float64
	BytesSaved int64
}

// Result is the outcome of one Rewrite call.
type Result struct {
	// Program is the rewritten program (a fresh Program; the input is never
	// mutated). When nothing applied it is structurally identical to the
	// input but still a distinct object.
	Program *expr.Program
	// Changed reports whether the rewritten program differs from the input.
	Changed bool
	// Decisions lists the applied rewrites in application order.
	Decisions []Decision
	// CostBefore and CostAfter are ProgramCost of the input and the output;
	// the pass guarantees CostAfter <= CostBefore up to floating-point
	// rounding (the costs sum the same kinds of terms in different orders).
	CostBefore, CostAfter float64
}

// FLOPsSaved sums the predicted FLOP savings over all decisions.
func (r *Result) FLOPsSaved() float64 {
	var t float64
	for _, d := range r.Decisions {
		t += d.FLOPsSaved
	}
	return t
}

// BytesSaved sums the predicted byte savings over all decisions.
func (r *Result) BytesSaved() int64 {
	var t int64
	for _, d := range r.Decisions {
		t += d.BytesSaved
	}
	return t
}

// Rewrite returns a rewritten copy of the program. The input program is
// validated first and never mutated; the output program always validates.
//
// The pass iterates until no rule fires: one application can expose another
// (dead-code elimination frees a product to be absorbed into a chain,
// identity folding connects a product directly to a consuming product), and
// iterating is what makes Rewrite itself a fixed point. Termination is
// guaranteed — every structural rule strictly shrinks the program or its
// cost — but a defensive cap bounds the loop regardless.
func (rw *Rewriter) Rewrite(src *expr.Program) (*Result, error) {
	res, err := rw.rewriteOnce(src)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 8 && res.Changed; i++ {
		next, err := rw.rewriteOnce(res.Program)
		if err != nil {
			return nil, err
		}
		if !next.Changed {
			break
		}
		res.Program = next.Program
		res.CostAfter = next.CostAfter
		res.Decisions = append(res.Decisions, next.Decisions...)
	}
	res.Changed = FormatProgram(src) != FormatProgram(res.Program)
	return res, nil
}

func (rw *Rewriter) rewriteOnce(src *expr.Program) (res *Result, err error) {
	if verr := src.Validate(); verr != nil {
		return nil, fmt.Errorf("rewrite: invalid input program: %w", verr)
	}
	// The emitter reuses the expr builder methods, which panic on malformed
	// shapes; a panic here is a rewriter bug, surfaced as an error so the
	// engine can fall back to the unrewritten program.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("rewrite: internal error: %v", r)
		}
	}()
	ps := &pass{
		cfg:        rw.cfg,
		src:        src,
		out:        expr.NewProgram(),
		uses:       make(map[dep.MatrixID][]useRec),
		reachable:  make(map[dep.MatrixID]bool),
		absorbed:   make(map[dep.MatrixID]bool),
		pushdown:   make(map[dep.MatrixID]bool),
		scalarName: make(map[dep.MatrixID]string),
		mapped:     make(map[dep.MatrixID]expr.Ref),
	}
	ps.analyze()
	for _, n := range src.Nodes() {
		if !ps.reachable[n.ID] {
			if n.Kind != expr.KindLoad && n.Kind != expr.KindVar {
				ps.record(Decision{
					Rule:       RuleDeadCode,
					Node:       fmt.Sprintf("m%d", n.ID),
					Detail:     fmt.Sprintf("dropped unreachable %s", n.Label()),
					FLOPsSaved: nodeFlops(n),
					BytesSaved: core.NodeSize(n),
				})
			}
			continue
		}
		if ps.absorbed[n.ID] {
			continue // inlined into its consuming chain
		}
		ps.emit(n)
	}
	for _, a := range src.Assignments() {
		ps.out.Assign(a.Name, ps.mapRef(a.Ref))
	}
	if verr := ps.out.Validate(); verr != nil {
		return nil, fmt.Errorf("rewrite: produced invalid program: %w", verr)
	}
	return &Result{
		Program:    ps.out,
		Changed:    FormatProgram(src) != FormatProgram(ps.out),
		Decisions:  ps.decisions,
		CostBefore: ProgramCost(src),
		CostAfter:  ProgramCost(ps.out),
	}, nil
}

// ProgramCost is the rewriter's abstract cost of a program: modelled FLOPs
// of every operator (multiplications at their dense worst case, so chain
// comparisons are sparsity-independent), the worst-case byte footprint of
// every intermediate, and one estimated-NNZ charge per transposed read (the
// model cost the fused transpose-multiply kernels — and the executor's
// materializing transpose — pay per use). Every rule the pass applies is
// gated on this metric not increasing, which is the invariant the
// differential harness asserts.
func ProgramCost(p *expr.Program) float64 {
	var c float64
	for _, n := range p.Nodes() {
		c += nodeFlops(n) + nodeBytes(n)
		for _, in := range n.Inputs {
			if in.Transposed {
				c += nnzEst(in.Node)
			}
		}
	}
	for _, a := range p.Assignments() {
		if a.Ref.Transposed {
			c += nnzEst(a.Ref.Node)
		}
	}
	return c
}

func nodeFlops(n *expr.Node) float64 {
	switch n.Kind {
	case expr.KindLoad, expr.KindVar:
		return 0
	case expr.KindMul:
		return 2 * float64(n.Rows) * float64(n.Inputs[0].Cols()) * float64(n.Cols)
	case expr.KindUFunc:
		return 4 * elems(n)
	case expr.KindSum, expr.KindValue, expr.KindNorm2:
		in := n.Inputs[0]
		return float64(in.Rows()) * float64(in.Cols())
	default: // KindCell, KindScalar
		return elems(n)
	}
}

func nodeBytes(n *expr.Node) float64 {
	switch n.Kind {
	case expr.KindLoad, expr.KindVar, expr.KindSum, expr.KindValue, expr.KindNorm2:
		return 0
	case expr.KindMul:
		// Fixed dense worst case: chain-reorder comparisons must not depend
		// on the (refinable) sparsity estimate of interior products.
		return float64(core.SizeBytes(n.Rows, n.Cols, 1))
	default:
		return float64(core.NodeSize(n))
	}
}

func elems(n *expr.Node) float64 { return float64(n.Rows) * float64(n.Cols) }

func nnzEst(n *expr.Node) float64 { return n.Sparsity * float64(n.Rows) * float64(n.Cols) }

// useRec is one read of a node's value: by an operator (consumer != nil) or
// by an assignment (consumer == nil).
type useRec struct {
	consumer   *expr.Node
	transposed bool
}

type pass struct {
	cfg Config
	src *expr.Program
	out *expr.Program
	// Analysis over the source program.
	uses       map[dep.MatrixID][]useRec
	reachable  map[dep.MatrixID]bool
	absorbed   map[dep.MatrixID]bool // chain-interior muls inlined into their consumer
	pushdown   map[dep.MatrixID]bool // muls whose every read is transposed
	scalarName map[dep.MatrixID]string
	// mapped holds, per source node, the output-program reference that
	// replaces the *untransposed* read of it; transposed reads compose with
	// Ref.T, so a pushed-down product maps to newRef.T().
	mapped    map[dep.MatrixID]expr.Ref
	decisions []Decision
}

func (ps *pass) record(d Decision) { ps.decisions = append(ps.decisions, d) }

func (ps *pass) analyze() {
	// Reachability from the program's roots: assignments and scalar outputs.
	var stack []*expr.Node
	mark := func(n *expr.Node) {
		if !ps.reachable[n.ID] {
			ps.reachable[n.ID] = true
			stack = append(stack, n)
		}
	}
	for _, a := range ps.src.Assignments() {
		mark(a.Ref.Node)
	}
	for _, so := range ps.src.ScalarOuts() {
		ps.scalarName[so.Node.ID] = so.Name
		mark(so.Node)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, in := range n.Inputs {
			mark(in.Node)
		}
	}
	// Uses count only live readers: a value's dead consumers are dropped by
	// this same pass, so counting them would make absorption and pushdown
	// decisions differ between this pass and the next (breaking idempotence).
	for _, n := range ps.src.Nodes() {
		if !ps.reachable[n.ID] {
			continue
		}
		for _, in := range n.Inputs {
			ps.uses[in.Node.ID] = append(ps.uses[in.Node.ID], useRec{consumer: n, transposed: in.Transposed})
		}
	}
	for _, a := range ps.src.Assignments() {
		ps.uses[a.Ref.Node.ID] = append(ps.uses[a.Ref.Node.ID], useRec{transposed: a.Ref.Transposed})
	}
	// Transpose-pushdown candidates: products whose every read is transposed,
	// gated on the model gain of flipping the transposes onto the operands.
	if !ps.cfg.DisableTransposePushdown {
		for _, n := range ps.src.Nodes() {
			if n.Kind != expr.KindMul || !ps.reachable[n.ID] {
				continue
			}
			us := ps.uses[n.ID]
			if len(us) == 0 {
				continue
			}
			all := true
			for _, u := range us {
				if !u.transposed {
					all = false
					break
				}
			}
			if all && ps.pushdownGain(n) >= 0 {
				ps.pushdown[n.ID] = true
			}
		}
	}
	// Chain interiors: a product read exactly once, untransposed, by another
	// product is absorbed into that consumer's multiplication chain so the
	// chain head can reorder the whole chain at once.
	if !ps.cfg.DisableChainReorder {
		for _, n := range ps.src.Nodes() {
			if n.Kind != expr.KindMul || !ps.reachable[n.ID] || ps.pushdown[n.ID] {
				continue
			}
			us := ps.uses[n.ID]
			if len(us) != 1 {
				continue
			}
			u := us[0]
			if u.consumer == nil || u.consumer.Kind != expr.KindMul || u.transposed || !ps.reachable[u.consumer.ID] {
				continue
			}
			ps.absorbed[n.ID] = true
		}
	}
}

// pushdownGain is the model saving (in transposed-read NNZ charges, using
// the source program's conservative sparsity estimates) of rewriting
// t(A%*%B) reads into reads of t(B)%*%t(A): every consumer stops paying for
// the product's transpose, while each operand's read flips orientation.
func (ps *pass) pushdownGain(n *expr.Node) float64 {
	a, b := n.Inputs[0], n.Inputs[1]
	gain := float64(len(ps.uses[n.ID])) * nnzEst(n)
	if a.Transposed {
		gain += nnzEst(a.Node)
	} else {
		gain -= nnzEst(a.Node)
	}
	if b.Transposed {
		gain += nnzEst(b.Node)
	} else {
		gain -= nnzEst(b.Node)
	}
	return gain
}

// mapRef resolves a source-program reference to its output-program
// replacement, composing the transpose flag.
func (ps *pass) mapRef(r expr.Ref) expr.Ref {
	m := ps.emit(r.Node)
	if r.Transposed {
		m = m.T()
	}
	return m
}

func (ps *pass) emit(n *expr.Node) expr.Ref {
	if r, ok := ps.mapped[n.ID]; ok {
		return r
	}
	var out expr.Ref
	switch n.Kind {
	case expr.KindLoad:
		out = ps.out.Load(n.Name, n.Rows, n.Cols, n.Sparsity)
	case expr.KindVar:
		out = ps.out.Var(n.Name, n.Rows, n.Cols, n.Sparsity)
	case expr.KindMul:
		out = ps.emitMul(n)
	case expr.KindCell:
		out = ps.emitCell(n.BinOp, ps.mapRef(n.Inputs[0]), ps.mapRef(n.Inputs[1]), n.Sparsity)
	case expr.KindScalar:
		out = ps.emitScalar(n)
	case expr.KindUFunc:
		out = ps.out.Func(n.UFunc, ps.mapRef(n.Inputs[0]))
	case expr.KindSum, expr.KindValue, expr.KindNorm2:
		name := ps.scalarName[n.ID]
		in := ps.mapRef(n.Inputs[0])
		var node *expr.Node
		switch n.Kind {
		case expr.KindSum:
			node = ps.out.Sum(name, in)
		case expr.KindValue:
			node = ps.out.Value(name, in)
		default:
			node = ps.out.Norm2(name, in)
		}
		out = expr.Ref{Node: node}
	default:
		panic(fmt.Sprintf("rewrite: unknown node kind %v", n.Kind))
	}
	ps.mapped[n.ID] = out
	return out
}

func (ps *pass) emitMul(n *expr.Node) expr.Ref {
	a, b := n.Inputs[0], n.Inputs[1]
	if ps.pushdown[n.ID] {
		// Every read of n is transposed: emit t(b)%*%t(a) (which equals
		// t(n)) and map n to its transpose, so consumers' transposed reads
		// resolve to plain reads of the new product.
		m := ps.out.Mul(ps.mapRef(b.T()), ps.mapRef(a.T()))
		ps.refineMul(m, n.Sparsity)
		ps.record(Decision{
			Rule:       RuleTransposePushdown,
			Node:       fmt.Sprintf("m%d", n.ID),
			Detail:     fmt.Sprintf("t(%s %%*%% %s) -> %s", a, b, m.Node.Label()),
			FLOPsSaved: ps.pushdownGain(n),
		})
		return m.T()
	}
	if !ps.cfg.DisableChainReorder && !ps.absorbed[n.ID] {
		if ops := ps.flatten(n); len(ops) >= 3 {
			return ps.emitChain(n, ops)
		}
	}
	m := ps.out.Mul(ps.mapRef(a), ps.mapRef(b))
	ps.refineMul(m, n.Sparsity)
	return m
}

// flatten collects the operands of the multiplication chain headed at n,
// descending through absorbed interior products, in left-to-right order.
func (ps *pass) flatten(n *expr.Node) []expr.Ref {
	var ops []expr.Ref
	var walk func(r expr.Ref)
	walk = func(r expr.Ref) {
		if !r.Transposed && r.Node.Kind == expr.KindMul && ps.absorbed[r.Node.ID] {
			walk(r.Node.Inputs[0])
			walk(r.Node.Inputs[1])
			return
		}
		ops = append(ops, r)
	}
	walk(n.Inputs[0])
	walk(n.Inputs[1])
	return ops
}

// mulCostParts is the chain DP's per-multiplication cost: dense FLOPs plus
// the worst-case dense footprint of the intermediate. All terms are exact
// integers in float64, so comparisons are deterministic.
func mulCostParts(m, k, n int) (flops, bytes float64) {
	return 2 * float64(m) * float64(k) * float64(n), float64(core.SizeBytes(m, n, 1))
}

func mulCost(m, k, n int) float64 {
	f, b := mulCostParts(m, k, n)
	return f + b
}

// chainParts is the cost of the original chain structure headed at n.
func (ps *pass) chainParts(n *expr.Node) (flops, bytes float64) {
	flops, bytes = mulCostParts(n.Inputs[0].Rows(), n.Inputs[0].Cols(), n.Inputs[1].Cols())
	for _, in := range n.Inputs {
		if !in.Transposed && in.Node.Kind == expr.KindMul && ps.absorbed[in.Node.ID] {
			f, b := ps.chainParts(in.Node)
			flops += f
			bytes += b
		}
	}
	return flops, bytes
}

// emitChain reorders the multiplication chain headed at n with the classic
// matrix-chain DP over mulCost, emitting the optimal tree only when it is
// strictly cheaper than the original structure (ties keep the original, so
// rewriting is a fixed point).
func (ps *pass) emitChain(head *expr.Node, ops []expr.Ref) expr.Ref {
	k := len(ops)
	dims := make([]int, k+1)
	dims[0] = ops[0].Rows()
	for i, r := range ops {
		dims[i+1] = r.Cols()
	}
	cost := make([][]float64, k)
	split := make([][]int, k)
	for i := range cost {
		cost[i] = make([]float64, k)
		split[i] = make([]int, k)
	}
	for length := 2; length <= k; length++ {
		for i := 0; i+length-1 < k; i++ {
			j := i + length - 1
			best := math.Inf(1)
			for s := i; s < j; s++ {
				c := cost[i][s] + cost[s+1][j] + mulCost(dims[i], dims[s+1], dims[j+1])
				if c < best {
					best = c
					split[i][j] = s
				}
			}
			cost[i][j] = best
		}
	}
	origFlops, origBytes := ps.chainParts(head)
	if cost[0][k-1] >= origFlops+origBytes {
		return ps.emitOrigChain(head)
	}
	var bestFlops, bestBytes float64
	var parts func(i, j int)
	parts = func(i, j int) {
		if i == j {
			return
		}
		s := split[i][j]
		parts(i, s)
		parts(s+1, j)
		f, b := mulCostParts(dims[i], dims[s+1], dims[j+1])
		bestFlops += f
		bestBytes += b
	}
	parts(0, k-1)
	var build func(i, j int) expr.Ref
	build = func(i, j int) expr.Ref {
		if i == j {
			return ps.mapRef(ops[i])
		}
		s := split[i][j]
		l, r := build(i, s), build(s+1, j)
		m := ps.out.Mul(l, r)
		ps.refineMul(m, 1)
		return m
	}
	out := build(0, k-1)
	ps.record(Decision{
		Rule:       RuleChainReorder,
		Node:       fmt.Sprintf("m%d", head.ID),
		Detail:     fmt.Sprintf("reordered %d-matrix chain", k),
		FLOPsSaved: origFlops - bestFlops,
		BytesSaved: int64(origBytes - bestBytes),
	})
	return out
}

// emitOrigChain re-emits the chain headed at n with its original structure,
// inlining absorbed interiors.
func (ps *pass) emitOrigChain(n *expr.Node) expr.Ref {
	in := func(r expr.Ref) expr.Ref {
		if !r.Transposed && r.Node.Kind == expr.KindMul && ps.absorbed[r.Node.ID] {
			return ps.emitOrigChain(r.Node)
		}
		return ps.mapRef(r)
	}
	m := ps.out.Mul(in(n.Inputs[0]), in(n.Inputs[1]))
	ps.refineMul(m, n.Sparsity)
	return m
}

func (ps *pass) emitCell(op matrix.BinOp, a, b expr.Ref, baseline float64) expr.Ref {
	var r expr.Ref
	switch op {
	case matrix.OpAdd:
		r = ps.out.Add(a, b)
	case matrix.OpSub:
		r = ps.out.Sub(a, b)
	case matrix.OpCellMul:
		r = ps.out.CellMul(a, b)
	case matrix.OpCellDiv:
		r = ps.out.CellDiv(a, b)
	default:
		panic(fmt.Sprintf("rewrite: unknown cell op %v", op))
	}
	if op == matrix.OpCellMul && !ps.cfg.DisableSparsity {
		// A cell product's true worst case is min(sa, sb) — a cell is
		// non-zero only where both operands are — tighter than the builder's
		// generic saturating sum.
		if s := math.Min(a.Node.Sparsity, b.Node.Sparsity); s < r.Node.Sparsity {
			old := r.Node.Sparsity
			sizeAt := func(sp float64) int64 { return core.SizeBytes(r.Node.Rows, r.Node.Cols, sp) }
			r.Node.Sparsity = s
			// Record only a genuine refinement over the source node's
			// estimate; a re-pass re-deriving the same value stays silent.
			if s < baseline {
				ps.record(Decision{
					Rule:       RuleSparsity,
					Node:       r.String(),
					Detail:     fmt.Sprintf("cell product sparsity %.3g -> %.3g", old, s),
					BytesSaved: sizeAt(baseline) - sizeAt(s),
				})
			}
		}
	}
	return r
}

// refineMul tightens a freshly emitted product's worst-case sparsity (the
// builder pins it at 1) to the standard independence estimate
// 1-(1-sa*sb)^k. This is an estimate, not a bound — it only steers kernel
// selection and intermediate sizing, never values. baseline is the estimate
// the source node already carried: the refinement always applies, but is
// only recorded as a decision when it beats the baseline (so a re-pass over
// an already refined program records nothing).
func (ps *pass) refineMul(m expr.Ref, baseline float64) {
	if ps.cfg.DisableSparsity {
		return
	}
	n := m.Node
	a, b := n.Inputs[0], n.Inputs[1]
	pair := a.Node.Sparsity * b.Node.Sparsity
	s := 1 - math.Pow(1-pair, float64(a.Cols()))
	if s < 0 {
		s = 0
	}
	if s >= n.Sparsity {
		return
	}
	n.Sparsity = s
	if s < baseline {
		sizeAt := func(sp float64) int64 { return core.SizeBytes(n.Rows, n.Cols, sp) }
		ps.record(Decision{
			Rule:       RuleSparsity,
			Node:       m.String(),
			Detail:     fmt.Sprintf("product sparsity %.3g -> %.3g", baseline, s),
			BytesSaved: sizeAt(baseline) - sizeAt(s),
		})
	}
}

func (ps *pass) emitScalar(n *expr.Node) expr.Ref {
	in := n.Inputs[0]
	if !ps.cfg.DisableFolding && n.Param == "" && isIdentityScalar(n.ScalarOp, n.Const) && ps.foldGain(n) >= 0 {
		mapped := ps.mapRef(in)
		ps.record(Decision{
			Rule:       RuleFoldIdentity,
			Node:       fmt.Sprintf("m%d", n.ID),
			Detail:     fmt.Sprintf("folded %s", n.Label()),
			FLOPsSaved: elems(n),
			BytesSaved: core.NodeSize(n),
		})
		return mapped
	}
	if n.Param != "" {
		return ps.out.ScalarParam(n.ScalarOp, ps.mapRef(in), n.Param)
	}
	return ps.out.Scalar(n.ScalarOp, ps.mapRef(in), n.Const)
}

// isIdentityScalar reports whether op with constant c maps every matrix to
// itself exactly. All four identities preserve sparsity, so folding never
// changes downstream estimates either.
func isIdentityScalar(op matrix.ScalarOp, c float64) bool {
	switch op {
	case matrix.ScalarMul, matrix.ScalarDiv:
		return c == 1
	case matrix.ScalarAdd, matrix.ScalarSub:
		return c == 0
	}
	return false
}

// foldGain gates identity folding: removing the node saves its FLOPs and
// footprint, but when its input is read transposed, every consumer of the
// folded value inherits that transposed read (there are len(uses) of them,
// versus the single one the folded node paid for).
func (ps *pass) foldGain(n *expr.Node) float64 {
	gain := elems(n) + float64(core.NodeSize(n))
	if in := n.Inputs[0]; in.Transposed {
		gain += (1 - float64(len(ps.uses[n.ID]))) * nnzEst(in.Node)
	}
	return gain
}
