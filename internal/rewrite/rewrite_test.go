package rewrite_test

import (
	"strings"
	"testing"

	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/rewrite"
)

func hasRule(t *testing.T, res *rewrite.Result, rule string) bool {
	t.Helper()
	for _, d := range res.Decisions {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

func mustRewrite(t *testing.T, p *expr.Program) *rewrite.Result {
	t.Helper()
	res, err := rewrite.New().Rewrite(p)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if err := res.Program.Validate(); err != nil {
		t.Fatalf("rewritten program invalid: %v", err)
	}
	if res.CostAfter > res.CostBefore*(1+1e-12)+1e-12 {
		t.Fatalf("cost increased: %g -> %g", res.CostBefore, res.CostAfter)
	}
	return res
}

// A left-associated chain (AB)C with a tiny inner product must be reordered
// to A(BC): BC is 6x6, so the DP picks the right-associated tree.
func TestChainReorder(t *testing.T) {
	p := expr.NewProgram()
	a := p.Var("A", 96, 6, 1)
	b := p.Var("B", 6, 96, 1)
	c := p.Var("C", 96, 6, 1)
	p.Assign("out", p.Mul(p.Mul(a, b), c))

	res := mustRewrite(t, p)
	if !hasRule(t, res, rewrite.RuleChainReorder) {
		t.Fatalf("no chain-reorder decision; got %v", res.Decisions)
	}
	// The reordered program materializes the 6x6 interior instead of 96x96.
	small, big := false, false
	for _, n := range res.Program.Nodes() {
		if n.Kind == expr.KindMul && n.Rows == 6 && n.Cols == 6 {
			small = true
		}
		if n.Kind == expr.KindMul && n.Rows == 96 && n.Cols == 96 {
			big = true
		}
	}
	if !small || big {
		t.Fatalf("expected 6x6 interior and no 96x96 interior:\n%s", rewrite.FormatProgram(res.Program))
	}
	if res.CostAfter >= res.CostBefore {
		t.Fatalf("reorder did not reduce cost: %g -> %g", res.CostBefore, res.CostAfter)
	}
}

// A four-matrix chain built through absorbed interiors reorders as a whole.
func TestChainReorderFourMatrices(t *testing.T) {
	p := expr.NewProgram()
	a := p.Var("A", 96, 6, 1)
	b := p.Var("B", 6, 96, 1)
	c := p.Var("C", 96, 6, 1)
	d := p.Var("D", 6, 96, 1)
	p.Assign("out", p.Mul(p.Mul(p.Mul(a, b), c), d))

	res := mustRewrite(t, p)
	if !hasRule(t, res, rewrite.RuleChainReorder) {
		t.Fatalf("no chain-reorder decision; got %v", res.Decisions)
	}
	for _, n := range res.Program.Nodes() {
		if n.Kind == expr.KindMul && n.Rows == 96 && n.Cols == 96 && n != res.Program.Nodes()[len(res.Program.Nodes())-1] {
			t.Fatalf("96x96 interior survived:\n%s", rewrite.FormatProgram(res.Program))
		}
	}
}

// t(A%*%B)%*%C: the product is only ever read transposed, so it becomes
// t(B)%*%t(A) — read plainly, with the transposes fused into operand reads.
func TestTransposePushdown(t *testing.T) {
	p := expr.NewProgram()
	a := p.Var("A", 64, 8, 1)
	b := p.Var("B", 8, 64, 1)
	c := p.Var("C", 64, 32, 1)
	ab := p.Mul(a, b)
	p.Assign("out", p.Mul(ab.T(), c))

	res := mustRewrite(t, p)
	if !hasRule(t, res, rewrite.RuleTransposePushdown) {
		t.Fatalf("no transpose-pushdown decision; got %v", res.Decisions)
	}
	// No multiplication result may be read transposed afterwards.
	for _, n := range res.Program.Nodes() {
		for _, in := range n.Inputs {
			if in.Transposed && in.Node.Kind == expr.KindMul {
				t.Fatalf("transposed read of a product survived:\n%s", rewrite.FormatProgram(res.Program))
			}
		}
	}
}

// When the product is tiny and its operands large, flipping the transposes
// onto the operands costs more than it saves; the gate must reject it.
func TestTransposePushdownGated(t *testing.T) {
	p := expr.NewProgram()
	a := p.Var("A", 2, 100, 1)
	b := p.Var("B", 100, 2, 1)
	c := p.Var("C", 2, 2, 1)
	ab := p.Mul(a, b)
	p.Assign("out", p.Mul(ab.T(), c))

	res := mustRewrite(t, p)
	if hasRule(t, res, rewrite.RuleTransposePushdown) {
		t.Fatalf("pushdown applied despite negative gain: %v", res.Decisions)
	}
}

func TestFoldIdentity(t *testing.T) {
	p := expr.NewProgram()
	x := p.Var("X", 8, 8, 1)
	y := p.Scalar(matrix.ScalarMul, x, 1)
	z := p.Scalar(matrix.ScalarAdd, y, 0)
	w := p.Scalar(matrix.ScalarMul, z, 2) // not an identity
	p.Assign("out", w)

	res := mustRewrite(t, p)
	var folds int
	for _, d := range res.Decisions {
		if d.Rule == rewrite.RuleFoldIdentity {
			folds++
		}
	}
	if folds != 2 {
		t.Fatalf("expected 2 folds, got %d: %v", folds, res.Decisions)
	}
	if n := len(res.Program.Nodes()); n != 2 {
		t.Fatalf("expected 2 surviving nodes (X, X*2), got %d:\n%s", n, rewrite.FormatProgram(res.Program))
	}
}

func TestDeadCodeElimination(t *testing.T) {
	p := expr.NewProgram()
	x := p.Var("X", 8, 8, 1)
	y := p.Var("Y", 8, 8, 1)
	p.Mul(x, y) // never assigned, never aggregated
	p.Assign("out", p.Add(x, x))

	res := mustRewrite(t, p)
	if !hasRule(t, res, rewrite.RuleDeadCode) {
		t.Fatalf("no dead-code decision: %v", res.Decisions)
	}
	for _, n := range res.Program.Nodes() {
		if n.Kind == expr.KindMul {
			t.Fatalf("dead product survived:\n%s", rewrite.FormatProgram(res.Program))
		}
	}
}

func TestSparsityRefinement(t *testing.T) {
	p := expr.NewProgram()
	v := p.Var("V", 40, 40, 0.1)
	g := p.Mul(v.T(), v)
	p.Assign("G", g)

	res := mustRewrite(t, p)
	if !hasRule(t, res, rewrite.RuleSparsity) {
		t.Fatalf("no sparsity decision: %v", res.Decisions)
	}
	var mul *expr.Node
	for _, n := range res.Program.Nodes() {
		if n.Kind == expr.KindMul {
			mul = n
		}
	}
	if mul == nil || mul.Sparsity >= 1 {
		t.Fatalf("product sparsity not refined:\n%s", rewrite.FormatProgram(res.Program))
	}
}

func TestCellMulSparsityRefinement(t *testing.T) {
	p := expr.NewProgram()
	a := p.Var("A", 8, 8, 0.1)
	b := p.Var("B", 8, 8, 0.2)
	p.Assign("out", p.CellMul(a, b))

	res := mustRewrite(t, p)
	var cell *expr.Node
	for _, n := range res.Program.Nodes() {
		if n.Kind == expr.KindCell {
			cell = n
		}
	}
	if cell == nil || cell.Sparsity != 0.1 {
		t.Fatalf("cell product sparsity not refined to min:\n%s", rewrite.FormatProgram(res.Program))
	}
}

// Disabling every rule must still re-emit a structurally identical program.
func TestAllRulesDisabled(t *testing.T) {
	p := expr.NewProgram()
	a := p.Var("A", 96, 6, 1)
	b := p.Var("B", 6, 96, 1)
	c := p.Var("C", 96, 6, 1)
	p.Assign("out", p.Mul(p.Mul(a, b), c))
	p.Scalar(matrix.ScalarMul, a, 1) // dead and foldable, but DCE still drops it

	r := rewrite.NewWithConfig(rewrite.Config{
		DisableChainReorder:      true,
		DisableTransposePushdown: true,
		DisableFolding:           true,
		DisableSparsity:          true,
	})
	res, err := r.Rewrite(p)
	if err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	for _, d := range res.Decisions {
		if d.Rule != rewrite.RuleDeadCode {
			t.Fatalf("unexpected decision with rules disabled: %v", d)
		}
	}
	// The live subprogram is unchanged: same chain structure.
	if got := len(res.Program.Nodes()); got != 5 {
		t.Fatalf("expected 5 live nodes, got %d:\n%s", got, rewrite.FormatProgram(res.Program))
	}
}

func TestRewriteRejectsInvalidProgram(t *testing.T) {
	p := expr.NewProgram()
	x := p.Var("X", 4, 4, 1)
	// Corrupt the program after construction: a self-referential input.
	x.Node.Inputs = []expr.Ref{x}
	if _, err := rewrite.New().Rewrite(p); err == nil {
		t.Fatal("expected error for invalid program")
	}
}

// Rewriting a rewritten program is a fixed point: identical rendering and
// Changed == false.
func TestRewriteFixedPoint(t *testing.T) {
	p := expr.NewProgram()
	a := p.Var("A", 96, 6, 0.3)
	b := p.Var("B", 6, 96, 1)
	c := p.Var("C", 96, 6, 0.5)
	ab := p.Mul(a, b)
	head := p.Mul(ab, c)
	p.Sum("s", head)
	p.Assign("out", p.Scalar(matrix.ScalarMul, head, 1))

	first := mustRewrite(t, p)
	second := mustRewrite(t, first.Program)
	if second.Changed {
		t.Fatalf("second rewrite changed the program:\n%s\nvs\n%s",
			rewrite.FormatProgram(first.Program), rewrite.FormatProgram(second.Program))
	}
	if g, w := rewrite.FormatProgram(second.Program), rewrite.FormatProgram(first.Program); g != w {
		t.Fatalf("fixed point violated:\n%s\nvs\n%s", w, g)
	}
}

func TestFormatProgramStable(t *testing.T) {
	p := expr.NewProgram()
	v := p.Var("V", 4, 4, 0.5)
	p.Assign("out", p.Mul(v.T(), v))
	s := rewrite.FormatProgram(p)
	if !strings.Contains(s, "assign out") || !strings.Contains(s, "var(V)") {
		t.Fatalf("unexpected rendering:\n%s", s)
	}
	if s != rewrite.FormatProgram(p) {
		t.Fatal("rendering not deterministic")
	}
}
