package rewrite_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dmac/internal/apps"
	"dmac/internal/core"
	"dmac/internal/dist"
	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/obs"
	"dmac/internal/rewrite"
	"dmac/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the rewriter's golden files")

// showcaseProgram pairs the two structural rules in one program: a product
// read only transposed (t(A%*%B)%*%C, rewritten so the transposes ride the
// fused multiply kernels) and a left-associated chain with a cheap interior
// ((GH)I, reordered to G(HI)).
func showcaseProgram() *expr.Program {
	p := expr.NewProgram()
	a := p.Var("A", 64, 8, 1)
	b := p.Var("B", 8, 64, 1)
	c := p.Var("C", 64, 32, 1)
	ab := p.Mul(a, b)
	p.Assign("pushdown", p.Mul(ab.T(), c))

	g := p.Var("G", 96, 6, 1)
	h := p.Var("H", 6, 96, 1)
	i := p.Var("I", 96, 6, 1)
	p.Assign("chain", p.Mul(p.Mul(g, h), i))
	return p
}

func gramProgram() *expr.Program {
	p := expr.NewProgram()
	v := p.Var("V", 48, 32, 0.2)
	gram := p.Mul(v.T(), v)
	p.Sum("gram_sum", gram)
	p.Assign("G", gram)
	return p
}

// TestGoldenRewrites pins the rewriter's output — original program,
// rewritten program, decisions and the DMac plan of the rewritten form — for
// the repo's flagship workloads. Re-generate with `go test -run Golden
// ./internal/rewrite/ -update` and review the diff.
func TestGoldenRewrites(t *testing.T) {
	cases := []struct {
		name string
		prog *expr.Program
	}{
		{"gnmf", apps.GNMFIteration(17770, 480189, 200, 0.0118)},
		{"pagerank", apps.PageRankIteration(4847571, 1.4e-5)},
		{"gram", gramProgram()},
		{"showcase", showcaseProgram()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := mustRewrite(t, tc.prog)
			var b strings.Builder
			b.WriteString("== original ==\n")
			b.WriteString(rewrite.FormatProgram(tc.prog))
			b.WriteString("\n== rewritten ==\n")
			b.WriteString(rewrite.FormatProgram(res.Program))
			b.WriteString("\n== decisions ==\n")
			b.WriteString(rewrite.FormatDecisions(res.Decisions))
			plan, err := core.Generate(res.Program, core.Config{Workers: 4})
			if err != nil {
				t.Fatalf("plan rewritten program: %v", err)
			}
			b.WriteString("\n== plan (DMac, 4 workers) ==\n")
			b.WriteString(plan.String())
			golden(t, tc.name, b.String())
		})
	}
}

func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch for %s (re-run with -update and review the diff)\n--- want\n%s\n--- got\n%s",
			name, want, got)
	}
}

// TestShowcaseFusedTransposeExecution is the acceptance check behind the
// showcase golden: executing the rewritten pushdown workload on the DMac
// engine performs no materializing transpose at all — the pushed-down
// transposes ride the fused transpose-multiply kernels — and the rewrite
// counters record the applied rules.
func TestShowcaseFusedTransposeExecution(t *testing.T) {
	const bs = 8
	prog := showcaseProgram()
	reg := obs.NewRegistry()
	e := engine.New(engine.DMac, dist.Config{Workers: 4, LocalParallelism: 2}, bs)
	e.SetObserver(nil, reg)
	e.SetRewriter(rewrite.New())
	seed := int64(5)
	for _, leaf := range []struct {
		name       string
		rows, cols int
	}{{"A", 64, 8}, {"B", 8, 64}, {"C", 64, 32}, {"G", 96, 6}, {"H", 6, 96}, {"I", 96, 6}} {
		if err := e.Bind(leaf.name, workload.DenseRandom(seed, leaf.rows, leaf.cols, bs)); err != nil {
			t.Fatal(err)
		}
		seed++
	}
	if _, err := e.Run(prog, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	snap := reg.Snapshot()
	if n := snap.Counters["exec.transpose.count"]; n != 0 {
		t.Errorf("executor materialized %d transposes; want 0 (fused)", n)
	}
	if n := snap.Counters["rewrite.applied."+rewrite.RuleTransposePushdown]; n == 0 {
		t.Error("transpose pushdown never applied")
	}
	if n := snap.Counters["rewrite.applied."+rewrite.RuleChainReorder]; n == 0 {
		t.Error("chain reorder never applied")
	}
	for _, out := range []string{"pushdown", "chain"} {
		if _, ok := e.Grid(out); !ok {
			t.Errorf("output %s missing", out)
		}
	}
}

// TestGoldenShowcaseDemonstratesPushdown guards the acceptance criterion
// textually: the committed showcase golden must contain a pushdown decision
// and a rewritten product of two transposed operands.
func TestGoldenShowcaseDemonstratesPushdown(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "showcase.golden"))
	if err != nil {
		t.Fatalf("missing showcase golden: %v", err)
	}
	s := string(data)
	for _, want := range []string{rewrite.RuleTransposePushdown, rewrite.RuleChainReorder, "ᵀ %*%"} {
		if !strings.Contains(s, want) {
			t.Errorf("showcase golden does not contain %q", want)
		}
	}
}
