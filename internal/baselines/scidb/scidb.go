// Package scidb simulates the SciDB baseline of Section 6.6: an array
// database whose linear-algebra operators delegate to ScaLAPACK.
//
// The paper attributes SciDB's slowness on matrix multiplication to two
// overheads on top of the ScaLAPACK compute itself, both modelled here:
//
//   - before the operation, the chunk-based storage must be redistributed
//     into ScaLAPACK's block-cyclic layout (and the result written back to
//     chunks), moving the dense footprint of the operands across instances;
//   - the system maintains failure-handling/versioning machinery during the
//     computation, which taxes every chunk processed.
package scidb

import (
	"fmt"

	"dmac/internal/baselines/scalapack"
	"dmac/internal/matrix"
)

// Config describes the simulated SciDB deployment.
type Config struct {
	// ScaLAPACK configures the delegated compute.
	ScaLAPACK scalapack.Config
	// ChunkSize is the side of a storage chunk. Defaults to the input's
	// block size.
	ChunkSize int
	// ChunkOverheadSec is the failure-handling/versioning cost per chunk
	// touched. Defaults to 5 ms.
	ChunkOverheadSec float64
	// RedistBandwidthBytesPerSec is the bandwidth of the chunk
	// redistribution path (storage-mediated, slower than the MPI
	// interconnect). Defaults to 256 MiB/s.
	RedistBandwidthBytesPerSec float64
}

func (c Config) withDefaults(bs int) Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = bs
	}
	if c.ChunkOverheadSec <= 0 {
		c.ChunkOverheadSec = 5e-3
	}
	if c.RedistBandwidthBytesPerSec <= 0 {
		c.RedistBandwidthBytesPerSec = 256 << 20
	}
	return c
}

// Result reports a simulated SciDB operation.
type Result struct {
	// Grid is the computed product.
	Grid *matrix.Grid
	// CommBytes includes both the redistribution and the delegated
	// ScaLAPACK traffic.
	CommBytes int64
	// Chunks is the number of chunks touched (inputs and output).
	Chunks int
	// ModelSeconds is the modelled end-to-end time.
	ModelSeconds float64
	// WallSeconds is the measured time of the real computation.
	WallSeconds float64
	// ScaLAPACK is the delegated compute's own result.
	ScaLAPACK scalapack.Result
}

func chunksOf(rows, cols, chunk int) int {
	cr := (rows + chunk - 1) / chunk
	cc := (cols + chunk - 1) / chunk
	return cr * cc
}

// Multiply runs a simulated SciDB gemm(): redistribute, delegate to
// ScaLAPACK, write back.
func Multiply(a, b *matrix.Grid, cfg Config) (Result, error) {
	if a.Cols() != b.Rows() {
		return Result{}, fmt.Errorf("scidb: shapes %dx%d * %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	cfg = cfg.withDefaults(a.BlockSize())
	inner, err := scalapack.Multiply(a, b, cfg.ScaLAPACK)
	if err != nil {
		return Result{}, err
	}
	// Redistribution moves the dense footprint of both operands in, and the
	// result out (SciDB stores arrays densely chunked for these operators).
	denseBytes := func(r, c int) int64 { return 8 * int64(r) * int64(c) }
	redist := denseBytes(a.Rows(), a.Cols()) + denseBytes(b.Rows(), b.Cols()) + denseBytes(a.Rows(), b.Cols())
	chunks := chunksOf(a.Rows(), a.Cols(), cfg.ChunkSize) +
		chunksOf(b.Rows(), b.Cols(), cfg.ChunkSize) +
		chunksOf(a.Rows(), b.Cols(), cfg.ChunkSize)
	model := inner.ModelSeconds +
		float64(redist)/cfg.RedistBandwidthBytesPerSec +
		float64(chunks)*cfg.ChunkOverheadSec
	return Result{
		Grid:         inner.Grid,
		CommBytes:    redist + inner.CommBytes,
		Chunks:       chunks,
		ModelSeconds: model,
		WallSeconds:  inner.WallSeconds,
		ScaLAPACK:    inner,
	}, nil
}
