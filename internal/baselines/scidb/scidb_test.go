package scidb

import (
	"math/rand"
	"testing"

	"dmac/internal/baselines/scalapack"
	"dmac/internal/matrix"
)

func randGrid(rng *rand.Rand, rows, cols, bs int, s float64) *matrix.Grid {
	var coords []matrix.Coord
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < s {
				coords = append(coords, matrix.Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return matrix.FromCoords(rows, cols, bs, coords)
}

func TestMultiplyCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randGrid(rng, 18, 12, 5, 0.4)
	b := randGrid(rng, 12, 16, 5, 0.6)
	res, err := Multiply(a, b, Config{ScaLAPACK: scalapack.Config{ProcRows: 2, ProcCols: 2}})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := matrix.MulGrid(a, b)
	if !matrix.GridEqual(res.Grid, want, 1e-9) {
		t.Error("product wrong")
	}
	if res.Chunks <= 0 {
		t.Error("no chunks accounted")
	}
}

func TestSciDBSlowerThanScaLAPACK(t *testing.T) {
	// The paper: SciDB pays redistribution + failure handling on top of
	// ScaLAPACK, so it must be strictly slower in the model.
	rng := rand.New(rand.NewSource(2))
	a := randGrid(rng, 30, 30, 10, 1)
	inner := scalapack.Config{ProcRows: 4, ProcCols: 4}
	sres, err := Multiply(a, a, Config{ScaLAPACK: inner})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := scalapack.Multiply(a, a, inner)
	if err != nil {
		t.Fatal(err)
	}
	if sres.ModelSeconds <= pres.ModelSeconds {
		t.Errorf("SciDB model %v should exceed ScaLAPACK %v", sres.ModelSeconds, pres.ModelSeconds)
	}
	if sres.CommBytes <= pres.CommBytes {
		t.Error("SciDB traffic should include redistribution")
	}
}

func TestShapeError(t *testing.T) {
	if _, err := Multiply(matrix.NewDenseGrid(3, 4, 2), matrix.NewDenseGrid(5, 3, 2), Config{}); err == nil {
		t.Error("expected shape error")
	}
}

func TestChunkAccounting(t *testing.T) {
	if got := chunksOf(10, 10, 5); got != 4 {
		t.Errorf("chunksOf(10,10,5) = %d, want 4", got)
	}
	if got := chunksOf(11, 10, 5); got != 6 {
		t.Errorf("chunksOf(11,10,5) = %d, want 6", got)
	}
	cfg := Config{}.withDefaults(7)
	if cfg.ChunkSize != 7 || cfg.ChunkOverheadSec <= 0 || cfg.RedistBandwidthBytesPerSec <= 0 {
		t.Errorf("defaults incomplete: %+v", cfg)
	}
}
