package scalapack

import (
	"math/rand"
	"testing"

	"dmac/internal/matrix"
)

func randSparseGrid(rng *rand.Rand, rows, cols, bs int, s float64) *matrix.Grid {
	var coords []matrix.Coord
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < s {
				coords = append(coords, matrix.Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return matrix.FromCoords(rows, cols, bs, coords)
}

func TestMultiplyCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randSparseGrid(rng, 20, 15, 6, 0.3)
	b := randSparseGrid(rng, 15, 18, 6, 0.5)
	res, err := Multiply(a, b, Config{ProcRows: 2, ProcCols: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := matrix.MulGrid(a, b)
	if !matrix.GridEqual(res.Grid, want, 1e-9) {
		t.Error("product wrong")
	}
	if res.WallSeconds < 0 || res.ModelSeconds <= 0 {
		t.Errorf("times: wall=%v model=%v", res.WallSeconds, res.ModelSeconds)
	}
}

func TestSparsityObliviousness(t *testing.T) {
	// ScaLAPACK treats sparse as dense: a near-empty matrix and a fully
	// dense one of the same shape must produce the same model time.
	rng := rand.New(rand.NewSource(2))
	sparse := randSparseGrid(rng, 30, 30, 10, 0.01)
	dense := randSparseGrid(rng, 30, 30, 10, 1)
	rs, err := Multiply(sparse, sparse, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Multiply(dense, dense, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.ModelSeconds != rd.ModelSeconds {
		t.Errorf("model times differ with sparsity: %v vs %v", rs.ModelSeconds, rd.ModelSeconds)
	}
	if rs.FLOPs != rd.FLOPs || rs.CommBytes != rd.CommBytes {
		t.Error("FLOPs/traffic must be sparsity-oblivious")
	}
}

func TestCommVolumeScalesWithGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSparseGrid(rng, 24, 24, 8, 1)
	small, err := Multiply(a, a, Config{ProcRows: 2, ProcCols: 2})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Multiply(a, a, Config{ProcRows: 8, ProcCols: 8})
	if err != nil {
		t.Fatal(err)
	}
	if large.CommBytes <= small.CommBytes {
		t.Errorf("SUMMA traffic should grow with the process grid: %d vs %d", large.CommBytes, small.CommBytes)
	}
	if large.Messages <= small.Messages {
		t.Error("message count should grow with the process grid")
	}
}

func TestShapeError(t *testing.T) {
	a := matrix.NewDenseGrid(3, 4, 2)
	b := matrix.NewDenseGrid(5, 3, 2)
	if _, err := Multiply(a, b, Config{}); err == nil {
		t.Error("expected shape error")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ProcRows != 8 || cfg.ProcCols != 8 {
		t.Errorf("default grid %dx%d", cfg.ProcRows, cfg.ProcCols)
	}
	if cfg.FlopsPerSecPerProc <= 0 || cfg.BandwidthBytesPerSec <= 0 || cfg.MsgLatencySec <= 0 || cfg.LocalParallelism != 64 {
		t.Errorf("defaults incomplete: %+v", cfg)
	}
}
