// Package scalapack simulates the ScaLAPACK baseline of Section 6.6: a
// distributed dense linear-algebra library over MPI with a two-dimensional
// block-cyclic data layout.
//
// The two behaviours the paper attributes to ScaLAPACK are modelled
// faithfully:
//
//   - sparse inputs are handled "the way on dense ones": the simulation
//     densifies operands, so arithmetic and traffic are independent of
//     sparsity (the MM-Sparse and MM-Dense rows of Table 4 come out almost
//     identical);
//   - processes exchange data through messages rather than shared memory: a
//     SUMMA-style multiplication broadcasts row panels of A and column
//     panels of B across the process grid, paying per-message latency.
//
// The multiplication itself is executed for real (densified), so results
// can be verified against the DMac engines.
package scalapack

import (
	"fmt"
	"time"

	"dmac/internal/matrix"
	"dmac/internal/sched"
)

// Config describes the simulated ScaLAPACK deployment.
type Config struct {
	// ProcRows x ProcCols is the process grid (P x Q). The paper uses 8
	// nodes x 8 processes = 64 processes, an 8x8 grid.
	ProcRows, ProcCols int
	// FlopsPerSecPerProc is the modelled throughput of one process.
	// Defaults to 2 GFLOP/s.
	FlopsPerSecPerProc float64
	// BandwidthBytesPerSec is the aggregate interconnect bandwidth.
	// Defaults to 1 GiB/s.
	BandwidthBytesPerSec float64
	// MsgLatencySec is the fixed cost per MPI broadcast step. Defaults to
	// 1 ms.
	MsgLatencySec float64
	// LocalParallelism bounds the threads used for the real computation
	// (not part of the model). Defaults to the number of processes.
	LocalParallelism int
}

func (c Config) withDefaults() Config {
	if c.ProcRows <= 0 {
		c.ProcRows = 8
	}
	if c.ProcCols <= 0 {
		c.ProcCols = 8
	}
	if c.FlopsPerSecPerProc <= 0 {
		c.FlopsPerSecPerProc = 2e9
	}
	if c.BandwidthBytesPerSec <= 0 {
		c.BandwidthBytesPerSec = 1 << 30
	}
	if c.MsgLatencySec <= 0 {
		c.MsgLatencySec = 1e-3
	}
	if c.LocalParallelism <= 0 {
		c.LocalParallelism = c.ProcRows * c.ProcCols
	}
	return c
}

// Result reports a simulated ScaLAPACK operation.
type Result struct {
	// Grid is the computed product.
	Grid *matrix.Grid
	// CommBytes is the modelled message traffic.
	CommBytes int64
	// Messages is the modelled number of broadcast steps.
	Messages int
	// FLOPs is the modelled arithmetic (dense, sparsity-oblivious).
	FLOPs float64
	// ModelSeconds is the modelled execution time.
	ModelSeconds float64
	// WallSeconds is the measured time of the real computation.
	WallSeconds float64
}

// densify returns a dense copy of the grid (ScaLAPACK has no sparse
// representation for PDGEMM).
func densify(g *matrix.Grid) *matrix.Grid {
	out := matrix.NewDenseGrid(g.Rows(), g.Cols(), g.BlockSize())
	for bi := 0; bi < g.BlockRows(); bi++ {
		for bj := 0; bj < g.BlockCols(); bj++ {
			out.SetBlock(bi, bj, g.Block(bi, bj).Dense().Clone())
		}
	}
	return out
}

// Multiply runs a simulated PDGEMM: C = A * B.
func Multiply(a, b *matrix.Grid, cfg Config) (Result, error) {
	if a.Cols() != b.Rows() {
		return Result{}, fmt.Errorf("scalapack: shapes %dx%d * %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	cfg = cfg.withDefaults()
	start := time.Now()
	da, db := densify(a), densify(b)
	exec := sched.NewExecutor(cfg.LocalParallelism, nil)
	grid, err := exec.Mul(da, db, sched.InPlace)
	if err != nil {
		return Result{}, err
	}
	wall := time.Since(start).Seconds()

	p, q := cfg.ProcRows, cfg.ProcCols
	procs := float64(p * q)
	m, k, n := float64(a.Rows()), float64(a.Cols()), float64(b.Cols())
	flops := 2 * m * k * n
	// SUMMA communication volume: every A panel is broadcast across its
	// process row (q-1 copies), every B panel across its process column
	// (p-1 copies). Dense element size is 8 bytes.
	bytesA := int64(8*m*k) * int64(q-1)
	bytesB := int64(8*k*n) * int64(p-1)
	panels := a.BlockCols()
	if panels < 1 {
		panels = 1
	}
	messages := panels * (p + q)
	model := flops/(procs*cfg.FlopsPerSecPerProc) +
		float64(bytesA+bytesB)/cfg.BandwidthBytesPerSec +
		float64(messages)*cfg.MsgLatencySec
	return Result{
		Grid:         grid,
		CommBytes:    bytesA + bytesB,
		Messages:     messages,
		FLOPs:        flops,
		ModelSeconds: model,
		WallSeconds:  wall,
	}, nil
}
