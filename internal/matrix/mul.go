package matrix

// Block multiplication kernels. MulAddInto is the In-Place primitive of
// Section 5.3: all block products contributing to the same result block are
// accumulated directly into that block, so no intermediate buffers are
// allocated. The kernels specialize on the four density combinations; every
// multiplication result is dense, matching the worst-case sparsity estimate
// of Section 5.1 (multiplication output sparsity = 1).

// MulAddInto computes dst += a * b. dst must be an owned dense block of
// shape a.Rows() x b.Cols().
func MulAddInto(dst *DenseBlock, a, b Block) error {
	if err := checkMulShape(a, b); err != nil {
		return err
	}
	if dst.Rows() != a.Rows() || dst.Cols() != b.Cols() {
		return checkSameShape(dst, NewDense(a.Rows(), b.Cols()))
	}
	switch at := a.(type) {
	case *DenseBlock:
		switch bt := b.(type) {
		case *DenseBlock:
			mulAddDD(dst, at, bt)
		case *CSCBlock:
			mulAddDS(dst, at, bt)
		default:
			mulAddGeneric(dst, a, b)
		}
	case *CSCBlock:
		switch bt := b.(type) {
		case *DenseBlock:
			mulAddSD(dst, at, bt)
		case *CSCBlock:
			mulAddSS(dst, at, bt)
		default:
			mulAddGeneric(dst, a, b)
		}
	default:
		mulAddGeneric(dst, a, b)
	}
	return nil
}

// Mul allocates and returns a * b as a dense block.
func Mul(a, b Block) (*DenseBlock, error) {
	if err := checkMulShape(a, b); err != nil {
		return nil, err
	}
	dst := NewDense(a.Rows(), b.Cols())
	if err := MulAddInto(dst, a, b); err != nil {
		return nil, err
	}
	return dst, nil
}

// mulAddDD is the dense x dense kernel (ikj loop order for cache locality).
func mulAddDD(dst, a, b *DenseBlock) {
	n, m, p := a.rows, a.cols, b.cols
	for i := 0; i < n; i++ {
		arow := a.Data[i*m : (i+1)*m]
		drow := dst.Data[i*p : (i+1)*p]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// mulAddSD computes dst += A*B with sparse A (CSC) and dense B. Column k of
// A pairs with row k of B: dst[i,:] += A[i,k] * B[k,:].
func mulAddSD(dst *DenseBlock, a *CSCBlock, b *DenseBlock) {
	p := b.cols
	for k := 0; k < a.cols; k++ {
		brow := b.Data[k*p : (k+1)*p]
		for idx := a.ColPtr[k]; idx < a.ColPtr[k+1]; idx++ {
			i := int(a.RowIdx[idx])
			av := a.Values[idx]
			drow := dst.Data[i*p : (i+1)*p]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// mulAddDS computes dst += A*B with dense A and sparse B (CSC). Column j of
// B selects columns of A: dst[:,j] += A[:,k] * B[k,j].
func mulAddDS(dst *DenseBlock, a *DenseBlock, b *CSCBlock) {
	m, p := a.cols, b.cols
	for j := 0; j < b.cols; j++ {
		for idx := b.ColPtr[j]; idx < b.ColPtr[j+1]; idx++ {
			k := int(b.RowIdx[idx])
			bv := b.Values[idx]
			for i := 0; i < a.rows; i++ {
				dst.Data[i*p+j] += a.Data[i*m+k] * bv
			}
		}
	}
}

// mulAddSS computes dst += A*B with both operands sparse. For every stored
// B[k,j], scatter column k of A scaled by B[k,j] into dst column j.
func mulAddSS(dst *DenseBlock, a, b *CSCBlock) {
	p := dst.cols
	for j := 0; j < b.cols; j++ {
		for idx := b.ColPtr[j]; idx < b.ColPtr[j+1]; idx++ {
			k := int(b.RowIdx[idx])
			bv := b.Values[idx]
			for ka := a.ColPtr[k]; ka < a.ColPtr[k+1]; ka++ {
				dst.Data[int(a.RowIdx[ka])*p+j] += a.Values[ka] * bv
			}
		}
	}
}

// mulAddGeneric is the fallback for unknown Block implementations.
func mulAddGeneric(dst *DenseBlock, a, b Block) {
	n, m, p := a.Rows(), a.Cols(), b.Cols()
	for i := 0; i < n; i++ {
		for k := 0; k < m; k++ {
			av := a.At(i, k)
			if av == 0 {
				continue
			}
			for j := 0; j < p; j++ {
				dst.Data[i*p+j] += av * b.At(k, j)
			}
		}
	}
}
