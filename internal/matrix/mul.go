package matrix

import "fmt"

// Block multiplication kernels. MulAddInto is the In-Place primitive of
// Section 5.3: all block products contributing to the same result block are
// accumulated directly into that block, so no intermediate buffers are
// allocated. The kernels specialize on the four density combinations; every
// multiplication result is dense, matching the worst-case sparsity estimate
// of Section 5.1 (multiplication output sparsity = 1).
//
// Every kernel additionally exists in transpose-fused form: MulAddTransInto
// computes dst += op(a)*op(b) where either operand may be logically
// transposed, reading the transposed operand by stride (dense) or by
// reinterpreting CSC as CSR (sparse) instead of materializing a transposed
// copy. The dense x dense path runs the register-tiled GEMM in gemm.go.

// MulAddInto computes dst += a * b. dst must be an owned dense block of
// shape a.Rows() x b.Cols().
func MulAddInto(dst *DenseBlock, a, b Block) error {
	return MulAddTransInto(dst, a, b, false, false)
}

// MulAddTransInto computes dst += op(a) * op(b), where op(x) is x when the
// corresponding flag is false and the transpose of x when true. dst must be
// an owned dense block of the logical result shape. Transposed operands are
// read in place — no transposed block is allocated on any path.
func MulAddTransInto(dst *DenseBlock, a, b Block, aT, bT bool) error {
	n, m := transDims(a, aT)
	mb, p := transDims(b, bT)
	if m != mb {
		return fmt.Errorf("%w: %dx%d * %dx%d", ErrShape, n, m, mb, p)
	}
	if dst.Rows() != n || dst.Cols() != p {
		return fmt.Errorf("%w: %dx%d vs %dx%d", ErrShape, dst.Rows(), dst.Cols(), n, p)
	}
	switch at := a.(type) {
	case *DenseBlock:
		switch bt := b.(type) {
		case *DenseBlock:
			mulAddDDTrans(dst, at, bt, aT, bT)
		case *CSCBlock:
			mulAddDS(dst, at, bt, aT, bT)
		default:
			mulAddGenericTrans(dst, a, b, aT, bT)
		}
	case *CSCBlock:
		switch bt := b.(type) {
		case *DenseBlock:
			mulAddSD(dst, at, bt, aT, bT)
		case *CSCBlock:
			mulAddSS(dst, at, bt, aT, bT)
		default:
			mulAddGenericTrans(dst, a, b, aT, bT)
		}
	default:
		mulAddGenericTrans(dst, a, b, aT, bT)
	}
	return nil
}

// Mul allocates and returns a * b as a dense block.
func Mul(a, b Block) (*DenseBlock, error) {
	if err := checkMulShape(a, b); err != nil {
		return nil, err
	}
	dst := NewDense(a.Rows(), b.Cols())
	if err := MulAddInto(dst, a, b); err != nil {
		return nil, err
	}
	return dst, nil
}

// MulAddNaive is the pre-tiling dense x dense kernel (ikj loop order with a
// per-element zero test). It is kept as the reference baseline for the kernel
// microbenchmarks; production code dispatches through MulAddTransInto.
func MulAddNaive(dst, a, b *DenseBlock) {
	m, p := a.cols, b.cols
	for i := 0; i < a.rows; i++ {
		arow := a.Data[i*m : (i+1)*m]
		drow := dst.Data[i*p : (i+1)*p]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// mulAddSD computes dst += op(A)*op(B) with sparse A (CSC) and dense B.
// Untransposed, column k of A pairs with row k of B: dst[i,:] += A[i,k]*B[k,:].
// With aT, stored column i of A is logical row i: dst[i,:] += A[k,i]*opB[k,:].
// With bT, row k of op(B) is stored column k of B, read by stride.
func mulAddSD(dst *DenseBlock, a *CSCBlock, b *DenseBlock, aT, bT bool) {
	p := dst.cols
	ldb := b.cols
	if aT {
		// op(A)[i,k] = A[k,i]: enumerate stored column i; entries are (k, av).
		for i := 0; i < a.cols; i++ {
			drow := dst.Data[i*p : (i+1)*p]
			for idx := a.ColPtr[i]; idx < a.ColPtr[i+1]; idx++ {
				k := int(a.RowIdx[idx])
				av := a.Values[idx]
				if bT {
					for j := 0; j < p; j++ {
						drow[j] += av * b.Data[j*ldb+k]
					}
				} else {
					brow := b.Data[k*ldb : k*ldb+p]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}
		return
	}
	for k := 0; k < a.cols; k++ {
		for idx := a.ColPtr[k]; idx < a.ColPtr[k+1]; idx++ {
			i := int(a.RowIdx[idx])
			av := a.Values[idx]
			drow := dst.Data[i*p : (i+1)*p]
			if bT {
				for j := 0; j < p; j++ {
					drow[j] += av * b.Data[j*ldb+k]
				}
			} else {
				brow := b.Data[k*ldb : k*ldb+p]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
}

// mulAddDS computes dst += op(A)*op(B) with dense A and sparse B (CSC).
// Untransposed, the result is built row-by-row: dst[i,j] is the dot product
// of dense row i with stored column j of B, so dst is written with unit
// stride (the old kernel scattered down dst columns, thrashing the cache).
// With bT, op(B) is the CSR view of B: stored column k of B lists the
// (j, bv) pairs of logical row k, giving a row-major saxpy.
func mulAddDS(dst *DenseBlock, a *DenseBlock, b *CSCBlock, aT, bT bool) {
	n := dst.rows
	p := dst.cols
	lda := a.cols
	if bT {
		// op(B)[k,j] = B[j,k]: stored column k of B holds row k of op(B).
		for i := 0; i < n; i++ {
			drow := dst.Data[i*p : (i+1)*p]
			for k := 0; k < b.cols; k++ {
				var av float64
				if aT {
					av = a.Data[k*lda+i]
				} else {
					av = a.Data[i*lda+k]
				}
				if av == 0 {
					continue
				}
				for idx := b.ColPtr[k]; idx < b.ColPtr[k+1]; idx++ {
					drow[b.RowIdx[idx]] += av * b.Values[idx]
				}
			}
		}
		return
	}
	for i := 0; i < n; i++ {
		drow := dst.Data[i*p : (i+1)*p]
		if aT {
			for j := 0; j < b.cols; j++ {
				s := 0.0
				for idx := b.ColPtr[j]; idx < b.ColPtr[j+1]; idx++ {
					s += a.Data[int(b.RowIdx[idx])*lda+i] * b.Values[idx]
				}
				drow[j] += s
			}
			continue
		}
		arow := a.Data[i*lda : (i+1)*lda]
		for j := 0; j < b.cols; j++ {
			s := 0.0
			for idx := b.ColPtr[j]; idx < b.ColPtr[j+1]; idx++ {
				s += arow[b.RowIdx[idx]] * b.Values[idx]
			}
			drow[j] += s
		}
	}
}

// mulAddSS computes dst += op(A)*op(B) with both operands sparse. Each
// transpose combination maps to a different iteration over the CSC storage:
//
//	NN: for every stored B[k,j], scatter column k of A into dst column j.
//	NT: outer products — column k of A times column k of B (CSR row of opB).
//	TN: dst[i,j] is the merge-dot of stored columns A[:,i] and B[:,j], whose
//	    row indices are sorted, so the intersection is a linear merge.
//	TT: stored column i of A is logical row i of op(A); chase its (k, av)
//	    entries into stored column k of B (logical row k of op(B)).
func mulAddSS(dst *DenseBlock, a, b *CSCBlock, aT, bT bool) {
	p := dst.cols
	switch {
	case !aT && !bT:
		for j := 0; j < b.cols; j++ {
			for idx := b.ColPtr[j]; idx < b.ColPtr[j+1]; idx++ {
				k := int(b.RowIdx[idx])
				bv := b.Values[idx]
				for ka := a.ColPtr[k]; ka < a.ColPtr[k+1]; ka++ {
					dst.Data[int(a.RowIdx[ka])*p+j] += a.Values[ka] * bv
				}
			}
		}
	case !aT && bT:
		for k := 0; k < a.cols; k++ {
			for ka := a.ColPtr[k]; ka < a.ColPtr[k+1]; ka++ {
				i := int(a.RowIdx[ka])
				av := a.Values[ka]
				drow := dst.Data[i*p : (i+1)*p]
				for kb := b.ColPtr[k]; kb < b.ColPtr[k+1]; kb++ {
					drow[b.RowIdx[kb]] += av * b.Values[kb]
				}
			}
		}
	case aT && !bT:
		for i := 0; i < a.cols; i++ {
			drow := dst.Data[i*p : (i+1)*p]
			for j := 0; j < b.cols; j++ {
				ka, kb := a.ColPtr[i], b.ColPtr[j]
				ea, eb := a.ColPtr[i+1], b.ColPtr[j+1]
				s := 0.0
				for ka < ea && kb < eb {
					ra, rb := a.RowIdx[ka], b.RowIdx[kb]
					switch {
					case ra == rb:
						s += a.Values[ka] * b.Values[kb]
						ka++
						kb++
					case ra < rb:
						ka++
					default:
						kb++
					}
				}
				drow[j] += s
			}
		}
	default: // aT && bT
		for i := 0; i < a.cols; i++ {
			drow := dst.Data[i*p : (i+1)*p]
			for ka := a.ColPtr[i]; ka < a.ColPtr[i+1]; ka++ {
				k := int(a.RowIdx[ka])
				av := a.Values[ka]
				for kb := b.ColPtr[k]; kb < b.ColPtr[k+1]; kb++ {
					drow[b.RowIdx[kb]] += av * b.Values[kb]
				}
			}
		}
	}
}

// mulAddGenericTrans is the At-based fallback for unknown Block
// implementations; transposition is absorbed by swapping indices.
func mulAddGenericTrans(dst *DenseBlock, a, b Block, aT, bT bool) {
	n, m := transDims(a, aT)
	_, p := transDims(b, bT)
	at := func(i, k int) float64 {
		if aT {
			return a.At(k, i)
		}
		return a.At(i, k)
	}
	bt := func(k, j int) float64 {
		if bT {
			return b.At(j, k)
		}
		return b.At(k, j)
	}
	for i := 0; i < n; i++ {
		for k := 0; k < m; k++ {
			av := at(i, k)
			if av == 0 {
				continue
			}
			for j := 0; j < p; j++ {
				dst.Data[i*p+j] += av * bt(k, j)
			}
		}
	}
}
