package matrix

import (
	"fmt"
	"sort"
)

// CSCBlock is a sparse sub-matrix in Compressed Sparse Column format
// (Section 5.3, Figure 5). Three arrays represent the block: ColPtr[j] is
// the offset in RowIdx/Values where column j starts, RowIdx holds the row
// index of each stored element, and Values holds the element values. Stored
// elements within a column are ordered by row index.
type CSCBlock struct {
	rows, cols int
	// ColPtr has cols+1 entries; column j occupies [ColPtr[j], ColPtr[j+1]).
	ColPtr []int32
	// RowIdx holds the row index of each stored element.
	RowIdx []int32
	// Values holds the stored element values.
	Values []float64
}

// Coord is a single (row, col, value) entry, used to build sparse blocks.
type Coord struct {
	Row, Col int
	Val      float64
}

// NewCSC builds a CSC block from unordered coordinates. Duplicate (row, col)
// pairs are summed. Zero-valued coordinates are kept (callers that want them
// dropped should filter first); this keeps the builder deterministic.
func NewCSC(rows, cols int, coords []Coord) *CSCBlock {
	for _, c := range coords {
		if c.Row < 0 || c.Row >= rows || c.Col < 0 || c.Col >= cols {
			panic(fmt.Sprintf("matrix: coord (%d,%d) outside %dx%d block", c.Row, c.Col, rows, cols))
		}
	}
	sorted := make([]Coord, len(coords))
	copy(sorted, coords)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Col != sorted[j].Col {
			return sorted[i].Col < sorted[j].Col
		}
		return sorted[i].Row < sorted[j].Row
	})
	b := &CSCBlock{rows: rows, cols: cols, ColPtr: make([]int32, cols+1)}
	for i := 0; i < len(sorted); {
		j := i + 1
		v := sorted[i].Val
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		b.RowIdx = append(b.RowIdx, int32(sorted[i].Row))
		b.Values = append(b.Values, v)
		b.ColPtr[sorted[i].Col+1]++
		i = j
	}
	for c := 0; c < cols; c++ {
		b.ColPtr[c+1] += b.ColPtr[c]
	}
	return b
}

// NewCSCEmpty returns an all-zero sparse block.
func NewCSCEmpty(rows, cols int) *CSCBlock {
	return &CSCBlock{rows: rows, cols: cols, ColPtr: make([]int32, cols+1)}
}

// Rows returns the number of rows.
func (s *CSCBlock) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *CSCBlock) Cols() int { return s.cols }

// NNZ returns the number of stored elements.
func (s *CSCBlock) NNZ() int { return len(s.Values) }

// At returns the element at (i, j) using binary search within column j.
func (s *CSCBlock) At(i, j int) float64 {
	if i < 0 || i >= s.rows || j < 0 || j >= s.cols {
		panic(fmt.Sprintf("matrix: At(%d,%d) outside %dx%d block", i, j, s.rows, s.cols))
	}
	lo, hi := int(s.ColPtr[j]), int(s.ColPtr[j+1])
	k := lo + sort.Search(hi-lo, func(k int) bool { return s.RowIdx[lo+k] >= int32(i) })
	if k < hi && s.RowIdx[k] == int32(i) {
		return s.Values[k]
	}
	return 0
}

// MemBytes implements the sparse branch of the paper's block memory model.
func (s *CSCBlock) MemBytes() int64 { return SparseMemBytes(s.cols, s.NNZ()) }

// IsSparse reports true for CSC blocks.
func (s *CSCBlock) IsSparse() bool { return true }

// Dense returns a dense copy of the block.
func (s *CSCBlock) Dense() *DenseBlock {
	d := NewDense(s.rows, s.cols)
	for j := 0; j < s.cols; j++ {
		for k := s.ColPtr[j]; k < s.ColPtr[j+1]; k++ {
			d.Data[int(s.RowIdx[k])*s.cols+j] = s.Values[k]
		}
	}
	return d
}

// Transpose returns the CSC transpose. Transposing CSC yields the CSR view
// of the same data, which is re-compressed into CSC of the flipped shape via
// a counting pass (O(nnz + rows)).
func (s *CSCBlock) Transpose() Block {
	t := &CSCBlock{
		rows:   s.cols,
		cols:   s.rows,
		ColPtr: make([]int32, s.rows+1),
		RowIdx: make([]int32, len(s.RowIdx)),
		Values: make([]float64, len(s.Values)),
	}
	// Count entries per original row (= per transposed column).
	for _, r := range s.RowIdx {
		t.ColPtr[r+1]++
	}
	for i := 0; i < s.rows; i++ {
		t.ColPtr[i+1] += t.ColPtr[i]
	}
	next := make([]int32, s.rows)
	copy(next, t.ColPtr[:s.rows])
	for j := 0; j < s.cols; j++ {
		for k := s.ColPtr[j]; k < s.ColPtr[j+1]; k++ {
			r := s.RowIdx[k]
			pos := next[r]
			next[r]++
			t.RowIdx[pos] = int32(j)
			t.Values[pos] = s.Values[k]
		}
	}
	return t
}

// Clone returns a deep copy of s.
func (s *CSCBlock) Clone() Block {
	c := &CSCBlock{
		rows:   s.rows,
		cols:   s.cols,
		ColPtr: make([]int32, len(s.ColPtr)),
		RowIdx: make([]int32, len(s.RowIdx)),
		Values: make([]float64, len(s.Values)),
	}
	copy(c.ColPtr, s.ColPtr)
	copy(c.RowIdx, s.RowIdx)
	copy(c.Values, s.Values)
	return c
}

// Scale returns a new sparse block with every stored element multiplied by
// alpha.
func (s *CSCBlock) Scale(alpha float64) Block {
	c := s.Clone().(*CSCBlock)
	for i := range c.Values {
		c.Values[i] *= alpha
	}
	return c
}

// Sum returns the sum of all stored elements.
func (s *CSCBlock) Sum() float64 {
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum
}

// EachNZ calls fn for every stored element in column-major order.
func (s *CSCBlock) EachNZ(fn func(i, j int, v float64)) {
	for j := 0; j < s.cols; j++ {
		for k := s.ColPtr[j]; k < s.ColPtr[j+1]; k++ {
			fn(int(s.RowIdx[k]), j, s.Values[k])
		}
	}
}

// Coords returns the stored elements as a coordinate list, in column-major
// order. Useful for re-blocking and for tests.
func (s *CSCBlock) Coords() []Coord {
	out := make([]Coord, 0, s.NNZ())
	s.EachNZ(func(i, j int, v float64) { out = append(out, Coord{Row: i, Col: j, Val: v}) })
	return out
}

// Sparsity returns NNZ / (rows*cols), the fraction of stored elements.
func Sparsity(b Block) float64 {
	cells := b.Rows() * b.Cols()
	if cells == 0 {
		return 0
	}
	return float64(b.NNZ()) / float64(cells)
}
