package matrix

// Multiply algorithm selection. The planner prices each dense multiply as
// classical (the tiled GEMM) or Strassen (strassen.go) and records its pick
// per operator; execution dispatches through MulAddTransAlgoInto. The algo
// is orthogonal to the paper's communication strategies: it decides how one
// node computes a block product, not how blocks move.

// KernelVersion identifies the numeric behavior of the multiply kernels. It
// is folded into plan-cache signatures so cached plans never cross-serve
// across kernel generations (v1: serial tiled GEMM; v2: parallel strips +
// Strassen strategy).
const KernelVersion = 2

// MulAlgo names the algorithm a dense multiply runs.
type MulAlgo uint8

const (
	// MulClassical is the cache-blocked tiled GEMM (gemm.go).
	MulClassical MulAlgo = iota
	// MulStrassen is the Strassen recursion over quadrant views
	// (strassen.go), bottoming out in the tiled GEMM.
	MulStrassen
)

func (a MulAlgo) String() string {
	if a == MulStrassen {
		return "strassen"
	}
	return "classical"
}

// StrassenCrossover is the dimension below which the recursion bottoms out
// into the tiled kernel. One halving step must produce quadrants still large
// enough for the packed kernel to win, so eligibility requires every
// dimension to be at least twice this. Measured on the kernel benchmark: a
// halving step below this trades ~14% of the flops for add passes that cost
// more than the savings, so 512-sized leaves are where recursion stops
// paying.
const StrassenCrossover = 512

// StrassenOK reports whether an n x m times m x p multiply is large enough
// for the Strassen recursion to take at least one halving step.
func StrassenOK(n, m, p int) bool {
	return n >= 2*StrassenCrossover && m >= 2*StrassenCrossover && p >= 2*StrassenCrossover
}

// MulAddTransAlgoInto computes dst += op(a) * op(b) using the requested
// algorithm. MulStrassen applies only to dense x dense shapes that clear
// StrassenOK; everything else silently runs the classical kernels, so a
// planner pick made from estimated shapes is always safe to execute.
func MulAddTransAlgoInto(dst *DenseBlock, a, b Block, aT, bT bool, algo MulAlgo) error {
	if algo == MulStrassen {
		ad, aok := a.(*DenseBlock)
		bd, bok := b.(*DenseBlock)
		if aok && bok {
			n, m := transDims(a, aT)
			mb, p := transDims(b, bT)
			if m == mb && StrassenOK(n, m, p) && dst.Rows() == n && dst.Cols() == p {
				strassenMulAdd(dst, ad, bd, aT, bT)
				return nil
			}
		}
	}
	return MulAddTransInto(dst, a, b, aT, bT)
}
