package matrix

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Intra-op parallelism for the dense kernels.
//
// One multiply is split into independent MC-strip tasks (disjoint result
// rows) executed by a single shared worker pool. The pool is bounded and
// long-lived: goroutines are spawned lazily up to the requested worker count
// and then reused for every subsequent kernel call, so steady-state
// multiplications start no goroutines. The submitting goroutine always
// participates in its own job, which makes the scheme deadlock-free even
// when kernels nest under the block executor's own task pool: a busy pool
// merely means the caller computes its strips itself.
//
// Each participant acquires its own A pack buffer for the duration of one
// job (per-worker arenas), so the pooled packing stays race-free while the
// shared packed-B strip is read-only. Strips own disjoint destination rows
// and the k-panel loop stays serial in the caller, so every output element
// accumulates its products in exactly the serial order: results are
// bit-identical to the single-worker kernel at every worker count.

// maxKernelWorkers bounds the shared pool. It intentionally exceeds any real
// core count so worker-scaling experiments can oversubscribe a small machine.
const maxKernelWorkers = 64

// kernelWorkers is the target intra-op parallelism of one dense multiply.
var kernelWorkers atomic.Int32

func init() {
	kernelWorkers.Store(int32(clampWorkers(runtime.GOMAXPROCS(0))))
}

func clampWorkers(n int) int {
	if n < 1 {
		return 1
	}
	if n > maxKernelWorkers {
		return maxKernelWorkers
	}
	return n
}

// SetKernelWorkers sets the number of workers one dense multiply is split
// across (clamped to [1, 64]) and returns the previous value. The default is
// GOMAXPROCS. One worker selects the serial kernel; results are bit-identical
// at every setting.
func SetKernelWorkers(n int) int {
	return int(kernelWorkers.Swap(int32(clampWorkers(n))))
}

// KernelWorkers returns the current intra-op parallelism of dense multiplies.
func KernelWorkers() int { return int(kernelWorkers.Load()) }

// stripJob is one parallel strip sweep: tasks [0, n) claimed off an atomic
// counter by every participant (the caller plus any pool workers that pick
// the job up).
type stripJob struct {
	n    int32
	next atomic.Int32
	wg   sync.WaitGroup
	// fn computes strip i using a participant-owned A pack buffer.
	fn func(i int, abuf []float64)
}

// run claims strips until the job is exhausted. The buffer is acquired only
// after winning a first strip, so a stale pickup of a finished job touches no
// pool state.
func (j *stripJob) run() {
	i := j.next.Add(1) - 1
	if i >= j.n {
		return
	}
	abufp := gemmABufPool.Get().(*[]float64)
	for ; i < j.n; i = j.next.Add(1) - 1 {
		j.fn(int(i), *abufp)
		j.wg.Done()
	}
	gemmABufPool.Put(abufp)
}

var (
	gemmPoolOnce    sync.Once
	gemmJobs        chan *stripJob
	gemmPoolWorkers atomic.Int32
)

// ensureGemmWorkers lazily grows the shared pool so at least n helper
// goroutines exist (bounded by maxKernelWorkers). Workers are never torn
// down; an idle pool costs only parked goroutines.
func ensureGemmWorkers(n int) {
	gemmPoolOnce.Do(func() {
		gemmJobs = make(chan *stripJob, maxKernelWorkers)
	})
	for int(gemmPoolWorkers.Load()) < n {
		id := gemmPoolWorkers.Add(1)
		if id > maxKernelWorkers {
			gemmPoolWorkers.Add(-1)
			return
		}
		go func() {
			for j := range gemmJobs {
				j.run()
			}
		}()
	}
}

// parallelStrips runs fn(i, abuf) for every strip i in [0, n) across at most
// `workers` participants and blocks until all strips completed. Helper
// pickups are best-effort (non-blocking sends): under pool contention the
// caller simply computes more strips itself.
func parallelStrips(n, workers int, fn func(i int, abuf []float64)) {
	j := &stripJob{n: int32(n), fn: fn}
	j.wg.Add(n)
	helpers := workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	ensureGemmWorkers(helpers)
offer:
	for h := 0; h < helpers; h++ {
		select {
		case gemmJobs <- j:
		default:
			break offer // pool saturated; the caller computes the rest
		}
	}
	j.run()
	j.wg.Wait()
}
