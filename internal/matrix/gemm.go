package matrix

import "sync"

// Cache-blocked, register-tiled dense GEMM (the DD branch of MulAddTransInto).
//
// The kernel follows the classic three-level blocking scheme (Goto/BLIS):
// the k dimension is split into panels of gemmKC, the result columns into
// strips of gemmNC and the result rows into strips of gemmMC, so that the
// packed B panel (gemmKC x gemmNR micro-panels) stays L1-resident and the
// packed A strip (gemmMC x gemmKC) stays L2-resident while the micro-kernel
// sweeps it. The innermost unit is a 2x4 register accumulator block
// (gemmMR x gemmNR): eight scalar accumulators that touch dst exactly once
// per (i,k,j) macro-tile, removing the load/store-per-element traffic of the
// naive ikj loop. 2x4 is chosen for amd64's sixteen XMM registers: the eight
// accumulators plus two A values and four B values (fourteen live floats)
// fit without spilling, whereas a 4x4 block's sixteen accumulators alone
// force spill traffic into every iteration of the k loop.
//
// Operand transposition is absorbed entirely by the packing routines: a
// transposed operand is read with swapped strides while being packed, so the
// NT/TN/TT variants run the exact same micro-kernel as NN and never
// materialize a transposed copy.
//
// Above gemmParMin flops the MC-strip loop is partitioned across the shared
// kernel worker pool (parallel.go): the packed B strip is shared read-only,
// every participant packs A strips into its own arena, and strips write
// disjoint result rows, so the parallel kernel is race-free and bit-identical
// to the serial one at every worker count (the k-panel loop — the only loop
// whose order reaches the floating-point accumulation — stays serial).
const (
	// gemmMR x gemmNR is the register accumulator block of the micro-kernel.
	gemmMR = 2
	gemmNR = 4
	// gemmKC is the k-panel depth: one packed B micro-panel is
	// gemmKC*gemmNR*8 = 8 KiB, comfortably L1-resident.
	gemmKC = 256
	// gemmMC rows of packed A per strip: gemmMC*gemmKC*8 = 128 KiB, sized
	// for L2.
	gemmMC = 64
	// gemmNC columns of packed B per strip: bounds the packed B buffer at
	// gemmKC*gemmNC*8 = 1 MiB.
	gemmNC = 512
	// gemmSmall is the flop threshold (n*m*p) below which the packing
	// overhead does not pay off and a plain strided triple loop is used.
	gemmSmall = 32 * 32 * 32
	// gemmParMin is the flop threshold (n*m*p) below which one multiply is
	// not worth fanning out across the worker pool: under ~2 Mflop the
	// per-macro-tile barrier costs more than the strips save.
	gemmParMin = 128 * 128 * 128
)

// Pack-buffer arenas. The A and B halves are pooled separately because the
// parallel kernel shares one packed B strip across all participants while
// every participant packs A strips into its own arena; sync.Pool hands each
// Get an exclusive buffer, which is exactly the per-worker ownership the
// race-free packing needs. Steady-state multiplications allocate nothing.
var gemmABufPool = sync.Pool{
	New: func() any {
		buf := make([]float64, gemmMC*gemmKC)
		return &buf
	},
}

var gemmBBufPool = sync.Pool{
	New: func() any {
		buf := make([]float64, gemmKC*gemmNC)
		return &buf
	},
}

// transDims returns the logical dimensions of op(x): x itself, or its
// transpose when t is set.
func transDims(x Block, t bool) (rows, cols int) {
	if t {
		return x.Cols(), x.Rows()
	}
	return x.Rows(), x.Cols()
}

// mulAddDDTrans computes dst += op(a) * op(b) for dense operands, where
// op(x) is x or its transpose. Large shapes run the packed tiled kernel;
// small ones fall back to a strided triple loop.
func mulAddDDTrans(dst, a, b *DenseBlock, aT, bT bool) {
	n, m := transDims(a, aT)
	_, p := transDims(b, bT)
	if n == 0 || m == 0 || p == 0 {
		return
	}
	if n*m*p < gemmSmall {
		mulAddDDSmall(dst, a, b, aT, bT)
		return
	}
	gemmStrided(dst.Data, dst.cols, n, p, a.Data, a.cols, aT, b.Data, b.cols, bT, m, KernelWorkers())
}

// gemmStrided is the packed tiled kernel over raw strided storage:
// C[0:n, 0:p] (leading dimension ldc) += op(A) * op(B), where op(A) is n x m
// read from a/lda (transposed when aT) and op(B) is m x p from b/ldb. It is
// shared by the block entry point above and by Strassen's quadrant views,
// which are strided sub-matrices with ld > cols.
func gemmStrided(c []float64, ldc, n, p int, a []float64, lda int, aT bool, b []float64, ldb int, bT bool, m, workers int) {
	bbufp := gemmBBufPool.Get().(*[]float64)
	bbuf := *bbufp
	iStrips := (n + gemmMC - 1) / gemmMC
	parallel := workers > 1 && iStrips > 1 && n*m*p >= gemmParMin
	var abufp *[]float64
	if !parallel {
		abufp = gemmABufPool.Get().(*[]float64)
	}
	for k0 := 0; k0 < m; k0 += gemmKC {
		kw := min(gemmKC, m-k0)
		for j0 := 0; j0 < p; j0 += gemmNC {
			jw := min(gemmNC, p-j0)
			gemmPackB(bbuf, b, ldb, bT, k0, kw, j0, jw)
			if parallel {
				k0, j0, kw, jw := k0, j0, kw, jw
				parallelStrips(iStrips, workers, func(s int, abuf []float64) {
					i0 := s * gemmMC
					iw := min(gemmMC, n-i0)
					gemmPackA(abuf, a, lda, aT, i0, iw, k0, kw)
					gemmMacro(c, ldc, i0, j0, iw, jw, kw, abuf, bbuf)
				})
				continue
			}
			for i0 := 0; i0 < n; i0 += gemmMC {
				iw := min(gemmMC, n-i0)
				gemmPackA(*abufp, a, lda, aT, i0, iw, k0, kw)
				gemmMacro(c, ldc, i0, j0, iw, jw, kw, *abufp, bbuf)
			}
		}
	}
	if abufp != nil {
		gemmABufPool.Put(abufp)
	}
	gemmBBufPool.Put(bbufp)
}

// mulAddDDSmall is the unpacked fallback for shapes too small to amortize
// packing: the seed ikj loop generalized to strided (transposed) reads,
// minus the per-element zero test.
func mulAddDDSmall(dst, a, b *DenseBlock, aT, bT bool) {
	n, m := transDims(a, aT)
	_, p := transDims(b, bT)
	mulAddSmallStrided(dst.Data, dst.cols, n, m, p, a.Data, a.cols, aT, b.Data, b.cols, bT)
}

// mulAddSmallStrided is the strided triple loop over raw storage, shared by
// the small-block fallback and Strassen's peeling leaves.
func mulAddSmallStrided(c []float64, ldc, n, m, p int, a []float64, lda int, aT bool, b []float64, ldb int, bT bool) {
	ra, ca := lda, 1
	if aT {
		ra, ca = 1, lda
	}
	rb, cb := ldb, 1
	if bT {
		rb, cb = 1, ldb
	}
	for i := 0; i < n; i++ {
		drow := c[i*ldc : i*ldc+p]
		for k := 0; k < m; k++ {
			av := a[i*ra+k*ca]
			bbase := k * rb
			if cb == 1 {
				brow := b[bbase : bbase+p]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			} else {
				for j := 0; j < p; j++ {
					drow[j] += av * b[bbase+j*cb]
				}
			}
		}
	}
}

// gemmPackA packs the iw x kw strip of op(A) starting at (i0, k0) into
// micro-panels of gemmMR rows, k-major within a panel:
// buf[panel*gemmMR*kw + k*gemmMR + r] = op(A)[i0+panel*gemmMR+r, k0+k],
// where op(A) is read from the strided storage a with leading dimension lda
// (swapped strides when aT). Ragged panels are zero-padded so the
// micro-kernel never branches on row count.
func gemmPackA(buf []float64, a []float64, lda int, aT bool, i0, iw, k0, kw int) {
	for ip := 0; ip < iw; ip += gemmMR {
		panel := buf[(ip/gemmMR)*gemmMR*kw:]
		ir := min(gemmMR, iw-ip)
		if aT {
			// op(A)[i,k] = A[k,i]: one stored row feeds one k slot.
			for k := 0; k < kw; k++ {
				row := a[(k0+k)*lda+i0+ip:]
				for r := 0; r < ir; r++ {
					panel[k*gemmMR+r] = row[r]
				}
				for r := ir; r < gemmMR; r++ {
					panel[k*gemmMR+r] = 0
				}
			}
			continue
		}
		for r := 0; r < ir; r++ {
			row := a[(i0+ip+r)*lda+k0:]
			for k := 0; k < kw; k++ {
				panel[k*gemmMR+r] = row[k]
			}
		}
		for r := ir; r < gemmMR; r++ {
			for k := 0; k < kw; k++ {
				panel[k*gemmMR+r] = 0
			}
		}
	}
}

// gemmPackB packs the kw x jw strip of op(B) starting at (k0, j0) into
// micro-panels of gemmNR columns, k-major within a panel:
// buf[panel*gemmNR*kw + k*gemmNR + c] = op(B)[k0+k, j0+panel*gemmNR+c],
// reading the strided storage b with leading dimension ldb.
func gemmPackB(buf []float64, b []float64, ldb int, bT bool, k0, kw, j0, jw int) {
	for jp := 0; jp < jw; jp += gemmNR {
		panel := buf[(jp/gemmNR)*gemmNR*kw:]
		jr := min(gemmNR, jw-jp)
		if bT {
			// op(B)[k,j] = B[j,k]: one stored row feeds one column slot.
			for c := 0; c < jr; c++ {
				row := b[(j0+jp+c)*ldb+k0:]
				for k := 0; k < kw; k++ {
					panel[k*gemmNR+c] = row[k]
				}
			}
			for c := jr; c < gemmNR; c++ {
				for k := 0; k < kw; k++ {
					panel[k*gemmNR+c] = 0
				}
			}
			continue
		}
		for k := 0; k < kw; k++ {
			row := b[(k0+k)*ldb:]
			for c := 0; c < jr; c++ {
				panel[k*gemmNR+c] = row[j0+jp+c]
			}
			for c := jr; c < gemmNR; c++ {
				panel[k*gemmNR+c] = 0
			}
		}
	}
}

// gemmMacro sweeps the packed strips with the register micro-kernel. The
// B micro-panel is held innermost-loop-invariant (L1) while A micro-panels
// stream from the packed L2 strip.
func gemmMacro(c []float64, ldc, i0, j0, iw, jw, kw int, abuf, bbuf []float64) {
	for jp := 0; jp < jw; jp += gemmNR {
		jr := min(gemmNR, jw-jp)
		bp := bbuf[(jp/gemmNR)*gemmNR*kw : (jp/gemmNR+1)*gemmNR*kw]
		for ip := 0; ip < iw; ip += gemmMR {
			ir := min(gemmMR, iw-ip)
			ap := abuf[(ip/gemmMR)*gemmMR*kw : (ip/gemmMR+1)*gemmMR*kw]
			ci := (i0+ip)*ldc + j0 + jp
			if ir == gemmMR && jr == gemmNR {
				if gemmHaveAVX {
					gemmMicroAVX(&c[ci], ldc, &ap[0], &bp[0], kw)
				} else {
					gemmMicro2x4(c[ci:], ldc, ap, bp, kw)
				}
			} else {
				gemmMicroEdge(c[ci:], ldc, ir, jr, ap, bp, kw)
			}
		}
	}
}

// gemmMicro2x4 accumulates a full 2x4 tile: c[0:2, 0:4] += Ap * Bp over kw,
// with the eight partial sums held in registers for the whole k loop. The k
// loop is unrolled twice; the array-pointer conversions replace the eight
// per-iteration bounds checks with one check per packed panel load.
func gemmMicro2x4(c []float64, ldc int, ap, bp []float64, kw int) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	for k := 0; k < kw; k++ {
		a := (*[gemmMR]float64)(ap[gemmMR*k:])
		b := (*[gemmNR]float64)(bp[gemmNR*k:])
		a0, a1 := a[0], a[1]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
	}
	r0 := (*[gemmNR]float64)(c)
	r1 := (*[gemmNR]float64)(c[ldc:])
	r0[0] += c00
	r0[1] += c01
	r0[2] += c02
	r0[3] += c03
	r1[0] += c10
	r1[1] += c11
	r1[2] += c12
	r1[3] += c13
}

// gemmMicroEdge handles ragged tiles (fewer than gemmMR rows or gemmNR
// columns): the packed panels are zero-padded so it can accumulate a full
// gemmMR x gemmNR tile locally and write back only the live ir x jr corner.
func gemmMicroEdge(c []float64, ldc, ir, jr int, ap, bp []float64, kw int) {
	var t [gemmMR * gemmNR]float64
	ap = ap[:gemmMR*kw]
	bp = bp[:gemmNR*kw]
	for k := 0; k < kw; k++ {
		b0 := bp[gemmNR*k]
		b1 := bp[gemmNR*k+1]
		b2 := bp[gemmNR*k+2]
		b3 := bp[gemmNR*k+3]
		for i := 0; i < gemmMR; i++ {
			av := ap[gemmMR*k+i]
			t[gemmNR*i] += av * b0
			t[gemmNR*i+1] += av * b1
			t[gemmNR*i+2] += av * b2
			t[gemmNR*i+3] += av * b3
		}
	}
	for i := 0; i < ir; i++ {
		for j := 0; j < jr; j++ {
			c[i*ldc+j] += t[gemmNR*i+j]
		}
	}
}
