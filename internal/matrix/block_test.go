package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func randDense(rng *rand.Rand, rows, cols int) *DenseBlock {
	d := NewDense(rows, cols)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

func randSparse(rng *rand.Rand, rows, cols int, sparsity float64) *CSCBlock {
	var coords []Coord
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < sparsity {
				coords = append(coords, Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return NewCSC(rows, cols, coords)
}

func TestDenseBasics(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(0, 0, 1)
	d.Set(1, 2, -4.5)
	if got := d.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v, want 1", got)
	}
	if got := d.At(1, 2); got != -4.5 {
		t.Errorf("At(1,2) = %v, want -4.5", got)
	}
	if got := d.At(0, 1); got != 0 {
		t.Errorf("At(0,1) = %v, want 0", got)
	}
	if d.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", d.NNZ())
	}
	if d.IsSparse() {
		t.Error("dense block reported sparse")
	}
	if d.Rows() != 2 || d.Cols() != 3 {
		t.Errorf("shape = %dx%d, want 2x3", d.Rows(), d.Cols())
	}
}

func TestDenseTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := randDense(rng, 3, 5)
	tr := d.Transpose()
	if tr.Rows() != 5 || tr.Cols() != 3 {
		t.Fatalf("transpose shape = %dx%d, want 5x3", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if d.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Double transpose is identity.
	if !Equal(d, tr.Transpose(), 0) {
		t.Error("double transpose is not identity")
	}
}

func TestDenseCloneIsDeep(t *testing.T) {
	d := NewDense(2, 2)
	d.Set(0, 0, 7)
	c := d.Clone().(*DenseBlock)
	c.Set(0, 0, 9)
	if d.At(0, 0) != 7 {
		t.Error("Clone shares storage with original")
	}
}

func TestDenseScaleAndScalarOps(t *testing.T) {
	d := NewDense(1, 3)
	copy(d.Data, []float64{1, 2, 3})
	s := d.Scale(2)
	want := []float64{2, 4, 6}
	for i, w := range want {
		if s.(*DenseBlock).Data[i] != w {
			t.Errorf("Scale[%d] = %v, want %v", i, s.(*DenseBlock).Data[i], w)
		}
	}
	if d.Data[0] != 1 {
		t.Error("Scale mutated the receiver")
	}
	d.ScaleInPlace(10)
	if d.Data[2] != 30 {
		t.Errorf("ScaleInPlace: got %v, want 30", d.Data[2])
	}
	d.AddScalarInPlace(1)
	if d.Data[0] != 11 {
		t.Errorf("AddScalarInPlace: got %v, want 11", d.Data[0])
	}
	d.Zero()
	if d.Sum() != 0 {
		t.Error("Zero did not clear block")
	}
}

func TestCSCConstructionAndAt(t *testing.T) {
	// The example of Figure 5 in the paper (4x4, 7 non-zeros).
	coords := []Coord{
		{1, 0, 2}, {0, 1, 3}, {2, 1, 2}, {0, 2, 2}, {1, 2, 4}, {3, 2, 2}, {2, 3, 1},
	}
	s := NewCSC(4, 4, coords)
	if s.NNZ() != 7 {
		t.Fatalf("NNZ = %d, want 7", s.NNZ())
	}
	wantColPtr := []int32{0, 1, 3, 6, 7}
	for i, w := range wantColPtr {
		if s.ColPtr[i] != w {
			t.Errorf("ColPtr[%d] = %d, want %d", i, s.ColPtr[i], w)
		}
	}
	for _, c := range coords {
		if got := s.At(c.Row, c.Col); got != c.Val {
			t.Errorf("At(%d,%d) = %v, want %v", c.Row, c.Col, got, c.Val)
		}
	}
	if got := s.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %v, want 0", got)
	}
	if s.Rows() != 4 || s.Cols() != 4 || !s.IsSparse() {
		t.Error("shape or IsSparse wrong")
	}
}

func TestCSCDuplicateCoordsSummed(t *testing.T) {
	s := NewCSC(2, 2, []Coord{{0, 0, 1}, {0, 0, 2.5}, {1, 1, -1}})
	if got := s.At(0, 0); got != 3.5 {
		t.Errorf("duplicate sum = %v, want 3.5", got)
	}
	if s.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", s.NNZ())
	}
}

func TestCSCDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randSparse(rng, 13, 7, 0.3)
	d := s.Dense()
	if !Equal(s, d, 0) {
		t.Error("Dense() does not match CSC contents")
	}
	// Rebuild CSC from the dense coords and compare.
	var coords []Coord
	for i := 0; i < 13; i++ {
		for j := 0; j < 7; j++ {
			if v := d.At(i, j); v != 0 {
				coords = append(coords, Coord{i, j, v})
			}
		}
	}
	s2 := NewCSC(13, 7, coords)
	if !Equal(s, s2, 0) {
		t.Error("CSC -> dense -> CSC round trip mismatch")
	}
}

func TestCSCTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randSparse(rng, 9, 14, 0.25)
	tr := s.Transpose()
	if tr.Rows() != 14 || tr.Cols() != 9 {
		t.Fatalf("transpose shape = %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 9; i++ {
		for j := 0; j < 14; j++ {
			if s.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !Equal(s, tr.Transpose(), 0) {
		t.Error("double transpose is not identity")
	}
	if tr.(*CSCBlock).NNZ() != s.NNZ() {
		t.Error("transpose changed NNZ")
	}
}

func TestCSCCoordsAndEachNZ(t *testing.T) {
	coords := []Coord{{0, 1, 5}, {2, 0, 3}}
	s := NewCSC(3, 2, coords)
	got := s.Coords()
	if len(got) != 2 {
		t.Fatalf("Coords len = %d", len(got))
	}
	// Column-major order: (2,0) before (0,1).
	if got[0] != (Coord{2, 0, 3}) || got[1] != (Coord{0, 1, 5}) {
		t.Errorf("Coords = %v", got)
	}
	n := 0
	s.EachNZ(func(i, j int, v float64) { n++ })
	if n != 2 {
		t.Errorf("EachNZ visited %d, want 2", n)
	}
}

func TestSparsity(t *testing.T) {
	s := NewCSC(4, 5, []Coord{{0, 0, 1}, {1, 1, 1}})
	if got := Sparsity(s); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Sparsity = %v, want 0.1", got)
	}
	if got := Sparsity(NewCSCEmpty(0, 0)); got != 0 {
		t.Errorf("Sparsity of empty = %v", got)
	}
}

func TestMemBytes(t *testing.T) {
	d := NewDense(10, 20)
	if got := d.MemBytes(); got != 8*10*20 {
		t.Errorf("dense MemBytes = %d, want %d", got, 8*10*20)
	}
	s := NewCSC(10, 20, []Coord{{0, 0, 1}, {5, 19, 2}})
	want := int64(4*(20+1) + 12*2)
	if got := s.MemBytes(); got != want {
		t.Errorf("sparse MemBytes = %d, want %d", got, want)
	}
}

func TestGridMemBytesMatchesEq2Shape(t *testing.T) {
	// Eq. 2: smaller blocks duplicate the column-pointer array, so memory
	// must be monotonically non-increasing in the block size.
	rows, cols, s := 10000, 10000, 0.001
	prev := int64(math.MaxInt64)
	for _, bs := range []int{100, 500, 1000, 5000, 10000} {
		m := GridMemBytes(rows, cols, s, bs, true)
		if m > prev {
			t.Errorf("GridMemBytes increased from %d to %d at bs=%d", prev, m, bs)
		}
		prev = m
	}
	// Dense accounting ignores the block size.
	if GridMemBytes(100, 100, 1, 10, false) != DenseMemBytes(100, 100) {
		t.Error("dense GridMemBytes should equal DenseMemBytes")
	}
}

func TestScalarOpsSparsityPreservation(t *testing.T) {
	s := NewCSC(3, 3, []Coord{{0, 0, 2}, {2, 2, 4}})
	mul := Scalar(ScalarMul, s, 3)
	if !mul.IsSparse() {
		t.Error("ScalarMul should keep block sparse")
	}
	if got := mul.At(0, 0); got != 6 {
		t.Errorf("ScalarMul At(0,0) = %v, want 6", got)
	}
	add := Scalar(ScalarAdd, s, 1)
	if add.IsSparse() {
		t.Error("ScalarAdd with c!=0 must densify")
	}
	if got := add.At(1, 1); got != 1 {
		t.Errorf("ScalarAdd At(1,1) = %v, want 1", got)
	}
	rsub := Scalar(ScalarRSub, s, 10)
	if got := rsub.At(0, 0); got != 8 {
		t.Errorf("ScalarRSub At(0,0) = %v, want 8", got)
	}
	if got := rsub.At(0, 1); got != 10 {
		t.Errorf("ScalarRSub At(0,1) = %v, want 10", got)
	}
}

func TestCellwiseDense(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	cases := []struct {
		op   BinOp
		want []float64
	}{
		{OpAdd, []float64{6, 8, 10, 12}},
		{OpSub, []float64{-4, -4, -4, -4}},
		{OpCellMul, []float64{5, 12, 21, 32}},
		{OpCellDiv, []float64{0.2, 2.0 / 6, 3.0 / 7, 0.5}},
	}
	for _, c := range cases {
		got, err := Cellwise(c.op, a, b)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if !Equal(got, NewDenseData(2, 2, c.want), 1e-15) {
			t.Errorf("%v: got %v, want %v", c.op, got.Dense().Data, c.want)
		}
	}
}

func TestCellwiseShapeError(t *testing.T) {
	a := NewDense(2, 2)
	b := NewDense(2, 3)
	if _, err := Cellwise(OpAdd, a, b); err == nil {
		t.Error("expected shape error")
	}
	if err := CellwiseInto(NewDense(2, 2), OpAdd, a, b); err == nil {
		t.Error("expected shape error from CellwiseInto")
	}
}

func TestCellMulSparseSparse(t *testing.T) {
	a := NewCSC(3, 3, []Coord{{0, 0, 2}, {1, 1, 3}, {2, 2, 4}})
	b := NewCSC(3, 3, []Coord{{0, 0, 5}, {2, 2, 6}, {0, 2, 9}})
	got, err := Cellwise(OpCellMul, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsSparse() {
		t.Error("sparse*sparse cell-mul should stay sparse")
	}
	if got.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2 (pattern intersection)", got.NNZ())
	}
	if got.At(0, 0) != 10 || got.At(2, 2) != 24 {
		t.Errorf("values wrong: %v %v", got.At(0, 0), got.At(2, 2))
	}
}

func TestCellwiseMixedDensities(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randSparse(rng, 6, 6, 0.4)
	d := randDense(rng, 6, 6)
	for _, op := range []BinOp{OpAdd, OpSub, OpCellMul} {
		got, err := Cellwise(op, s, d)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				want := op.apply(s.At(i, j), d.At(i, j))
				if math.Abs(got.At(i, j)-want) > 1e-12 {
					t.Fatalf("op %v at (%d,%d): got %v, want %v", op, i, j, got.At(i, j), want)
				}
			}
		}
	}
}

func TestCellwiseInto(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{4, 3, 2, 1})
	dst := NewDense(2, 2)
	if err := CellwiseInto(dst, OpAdd, a, b); err != nil {
		t.Fatal(err)
	}
	for _, v := range dst.Data {
		if v != 5 {
			t.Fatalf("CellwiseInto result = %v, want all 5", dst.Data)
		}
	}
}

func TestSumAndFrobenius(t *testing.T) {
	d := NewDenseData(2, 2, []float64{1, -2, 3, -4})
	if got := Sum(d); got != -2 {
		t.Errorf("Sum = %v, want -2", got)
	}
	if got := FrobeniusSq(d); got != 30 {
		t.Errorf("FrobeniusSq = %v, want 30", got)
	}
	s := NewCSC(2, 2, []Coord{{0, 0, 3}, {1, 1, 4}})
	if got := Sum(s); got != 7 {
		t.Errorf("sparse Sum = %v, want 7", got)
	}
	if got := FrobeniusSq(s); got != 25 {
		t.Errorf("sparse FrobeniusSq = %v, want 25", got)
	}
}

func TestBinOpScalarOpStrings(t *testing.T) {
	if OpAdd.String() != "+" || OpSub.String() != "-" || OpCellMul.String() != "*" || OpCellDiv.String() != "/" {
		t.Error("BinOp strings wrong")
	}
	if BinOp(99).String() != "?" {
		t.Error("unknown BinOp string")
	}
	for _, op := range []ScalarOp{ScalarMul, ScalarAdd, ScalarSub, ScalarDiv, ScalarRSub, ScalarRDiv} {
		if op.String() == "?c" {
			t.Errorf("ScalarOp %d has no string", op)
		}
	}
}
