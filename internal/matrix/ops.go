package matrix

// BinOp identifies a cell-wise binary operation between two blocks of the
// same shape. These are the element-wise operators of the DMac language:
// +, -, * (cell-wise multiplication) and / (cell-wise division).
type BinOp int

// The cell-wise binary operators supported by DMac (Section 3.1).
const (
	OpAdd BinOp = iota
	OpSub
	OpCellMul
	OpCellDiv
)

// String returns the R-like symbol of the operator.
func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpCellMul:
		return "*"
	case OpCellDiv:
		return "/"
	default:
		return "?"
	}
}

func (op BinOp) apply(a, b float64) float64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpCellMul:
		return a * b
	case OpCellDiv:
		return a / b
	default:
		panic("matrix: unknown BinOp")
	}
}

// Cellwise applies op element-wise to two blocks of identical shape and
// returns a new block. Sparse*sparse multiplication stays sparse
// (intersection of patterns); every other combination densifies, matching
// the worst-case sparsity model of Section 5.1.
func Cellwise(op BinOp, a, b Block) (Block, error) {
	if err := checkSameShape(a, b); err != nil {
		return nil, err
	}
	sa, okA := a.(*CSCBlock)
	sb, okB := b.(*CSCBlock)
	if okA && okB && op == OpCellMul {
		return cellMulSparse(sa, sb), nil
	}
	da, db := a.Dense(), b.Dense()
	out := NewDense(a.Rows(), a.Cols())
	for i, av := range da.Data {
		out.Data[i] = op.apply(av, db.Data[i])
	}
	return out, nil
}

// cellMulSparse intersects the sparsity patterns of two CSC blocks.
func cellMulSparse(a, b *CSCBlock) *CSCBlock {
	out := &CSCBlock{rows: a.rows, cols: a.cols, ColPtr: make([]int32, a.cols+1)}
	for j := 0; j < a.cols; j++ {
		ka, ea := a.ColPtr[j], a.ColPtr[j+1]
		kb, eb := b.ColPtr[j], b.ColPtr[j+1]
		for ka < ea && kb < eb {
			switch {
			case a.RowIdx[ka] < b.RowIdx[kb]:
				ka++
			case a.RowIdx[ka] > b.RowIdx[kb]:
				kb++
			default:
				out.RowIdx = append(out.RowIdx, a.RowIdx[ka])
				out.Values = append(out.Values, a.Values[ka]*b.Values[kb])
				ka++
				kb++
			}
		}
		out.ColPtr[j+1] = int32(len(out.Values))
	}
	return out
}

// CellwiseInto applies op element-wise into an owned dense destination:
// dst = a op b. The destination must have the operand shape.
func CellwiseInto(dst *DenseBlock, op BinOp, a, b Block) error {
	if err := checkSameShape(a, b); err != nil {
		return err
	}
	if err := checkSameShape(dst, a); err != nil {
		return err
	}
	da, db := a.Dense(), b.Dense()
	for i, av := range da.Data {
		dst.Data[i] = op.apply(av, db.Data[i])
	}
	return nil
}

// ScalarOp identifies an operation between a block and a scalar constant
// (the unary operator of Section 3.1).
type ScalarOp int

// Scalar operators: X*c, X+c, X-c, X/c, c-X and c/X.
const (
	ScalarMul ScalarOp = iota
	ScalarAdd
	ScalarSub
	ScalarDiv
	ScalarRSub // c - X
	ScalarRDiv // c / X
)

// String returns a printable name for the scalar operator.
func (op ScalarOp) String() string {
	switch op {
	case ScalarMul:
		return "*c"
	case ScalarAdd:
		return "+c"
	case ScalarSub:
		return "-c"
	case ScalarDiv:
		return "/c"
	case ScalarRSub:
		return "c-"
	case ScalarRDiv:
		return "c/"
	default:
		return "?c"
	}
}

func (op ScalarOp) apply(x, c float64) float64 {
	switch op {
	case ScalarMul:
		return x * c
	case ScalarAdd:
		return x + c
	case ScalarSub:
		return x - c
	case ScalarDiv:
		return x / c
	case ScalarRSub:
		return c - x
	case ScalarRDiv:
		return c / x
	default:
		panic("matrix: unknown ScalarOp")
	}
}

// SparsityPreserving reports whether applying the operator with constant c
// maps zero cells to zero, allowing a sparse block to stay sparse.
func (op ScalarOp) SparsityPreserving(c float64) bool {
	switch op {
	case ScalarMul, ScalarDiv:
		return true
	case ScalarAdd, ScalarSub:
		return c == 0
	case ScalarRSub:
		return c == 0
	default: // ScalarRDiv maps 0 -> c/0: never preserving.
		return false
	}
}

// Scalar applies a block-scalar operation and returns a new block. Sparse
// blocks stay sparse when the operation preserves zeros; otherwise the
// result densifies.
func Scalar(op ScalarOp, a Block, c float64) Block {
	if s, ok := a.(*CSCBlock); ok && op.SparsityPreserving(c) {
		out := s.Clone().(*CSCBlock)
		for i := range out.Values {
			out.Values[i] = op.apply(out.Values[i], c)
		}
		return out
	}
	d := a.Dense()
	out := NewDense(a.Rows(), a.Cols())
	for i, v := range d.Data {
		out.Data[i] = op.apply(v, c)
	}
	return out
}

// Equal reports whether two blocks have the same shape and all cells within
// tol of each other.
func Equal(a, b Block, tol float64) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return false
	}
	da, db := a.Dense(), b.Dense()
	for i := range da.Data {
		d := da.Data[i] - db.Data[i]
		if d > tol || d < -tol {
			return false
		}
	}
	return true
}

// Sum returns the sum of all elements of a block.
func Sum(b Block) float64 {
	switch t := b.(type) {
	case *DenseBlock:
		return t.Sum()
	case *CSCBlock:
		return t.Sum()
	default:
		s := 0.0
		for i := 0; i < b.Rows(); i++ {
			for j := 0; j < b.Cols(); j++ {
				s += b.At(i, j)
			}
		}
		return s
	}
}

// FrobeniusSq returns the squared Frobenius norm (sum of squared cells).
func FrobeniusSq(b Block) float64 {
	switch t := b.(type) {
	case *DenseBlock:
		s := 0.0
		for _, v := range t.Data {
			s += v * v
		}
		return s
	case *CSCBlock:
		s := 0.0
		for _, v := range t.Values {
			s += v * v
		}
		return s
	default:
		s := 0.0
		for i := 0; i < b.Rows(); i++ {
			for j := 0; j < b.Cols(); j++ {
				v := b.At(i, j)
				s += v * v
			}
		}
		return s
	}
}
