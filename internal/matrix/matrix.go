// Package matrix provides the block-based matrix substrate used by DMac.
//
// Matrices are split into rectangular blocks (sub-matrices); a block is the
// base unit of local computation and of distributed placement. Dense blocks
// store a row-major float64 array, sparse blocks use the Compressed Sparse
// Column (CSC) format described in Section 5.3 of the DMac paper.
//
// All block operations are pure functions or explicit in-place kernels so
// that the scheduler (internal/sched) can choose between the Buffer and
// In-Place aggregation strategies.
package matrix

import (
	"errors"
	"fmt"
)

// Common errors returned by block and grid operations.
var (
	// ErrShape is returned when operand dimensions are incompatible.
	ErrShape = errors.New("matrix: incompatible shapes")
	// ErrDivZero is returned by cell-wise division when the divisor has a
	// zero cell and strict checking is enabled.
	ErrDivZero = errors.New("matrix: cell-wise division by zero")
)

// Block is a sub-matrix, the base computing unit in DMac.
//
// Implementations are DenseBlock and CSCBlock. Blocks are immutable from the
// point of view of shared readers; only kernels that document in-place
// semantics (e.g. MulAddInto) mutate a block, and they require exclusive
// ownership of the destination.
type Block interface {
	// Rows returns the number of rows in the block.
	Rows() int
	// Cols returns the number of columns in the block.
	Cols() int
	// At returns the element at row i, column j. It panics if out of range.
	At(i, j int) float64
	// NNZ returns the number of explicitly stored non-zero elements.
	NNZ() int
	// MemBytes returns the memory footprint of the block in bytes, following
	// the accounting of Eq. 2 in the paper (see mem.go for the exact model).
	MemBytes() int64
	// IsSparse reports whether the block uses the CSC representation.
	IsSparse() bool
	// Dense returns a dense copy of the block (the receiver itself when it
	// is already a *DenseBlock).
	Dense() *DenseBlock
	// Transpose returns a new transposed block in the same representation.
	Transpose() Block
	// Clone returns a deep copy of the block.
	Clone() Block
	// Scale returns a new block with every element multiplied by alpha.
	Scale(alpha float64) Block
}

func checkSameShape(a, b Block) error {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
		return fmt.Errorf("%w: %dx%d vs %dx%d", ErrShape, a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	return nil
}

func checkMulShape(a, b Block) error {
	if a.Cols() != b.Rows() {
		return fmt.Errorf("%w: %dx%d * %dx%d", ErrShape, a.Rows(), a.Cols(), b.Rows(), b.Cols())
	}
	return nil
}

// blocksFor returns the number of blocks needed to cover dim elements with
// blocks of size bs.
func blocksFor(dim, bs int) int {
	if dim == 0 {
		return 0
	}
	return (dim + bs - 1) / bs
}
