package matrix

// Memory accounting follows the block memory model of Section 5.3:
//
//	Mem(b) = 4n + 8mns   (sparse m x n block with sparsity s)
//	Mem(b) = 4mn         (dense)
//
// The paper's constants assume 4-byte column pointers, a per-non-zero cost of
// 8 bytes, and 4-byte dense cells. This implementation stores float64 values
// and explicit 4-byte row indices, so the constants below are 4(n+1) + 12·nnz
// for sparse and 8·mn for dense. The *structure* of the model — a per-column
// pointer term that is duplicated across blocks, plus a per-element term that
// is invariant under blocking — is exactly the paper's, which is what drives
// the block-size experiments (Figure 8b).

// SparseMemBytes returns the memory footprint of a CSC block with the given
// number of columns and stored elements.
func SparseMemBytes(cols, nnz int) int64 {
	return 4*int64(cols+1) + 12*int64(nnz)
}

// DenseMemBytes returns the memory footprint of a dense rows x cols block.
func DenseMemBytes(rows, cols int) int64 {
	return 8 * int64(rows) * int64(cols)
}

// TransMemBytes returns the memory footprint the transpose of b would have if
// materialized. Dense blocks are symmetric under transposition; sparse blocks
// swap the per-column pointer term to the other dimension. Lazy transpose
// views use this so their byte accounting matches a materialized transpose
// exactly.
func TransMemBytes(b Block) int64 {
	if b.IsSparse() {
		return SparseMemBytes(b.Rows(), b.NNZ())
	}
	return b.MemBytes()
}

// GridMemBytes returns the total footprint of an M x N matrix with sparsity
// s partitioned into m x m blocks, following Eq. 2 of the paper: the row
// index and value arrays are invariant under partitioning, while every block
// column contributes its own column pointer entry.
func GridMemBytes(rows, cols int, sparsity float64, blockSize int, sparse bool) int64 {
	if !sparse {
		return DenseMemBytes(rows, cols)
	}
	blockRows := int64(blocksFor(rows, blockSize))
	nnz := int64(sparsity * float64(rows) * float64(cols))
	// Each of the blockRows block-rows stores a pointer array across all cols.
	colPtrBytes := 4 * blockRows * (int64(cols) + int64(blocksFor(cols, blockSize)))
	return colPtrBytes + 12*nnz
}
