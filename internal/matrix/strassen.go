package matrix

import "sync"

// Strassen multiplication over quadrant views.
//
// The recursion trades one multiply for extra additions: each level runs
// seven half-size products instead of eight, so the multiply flop count
// drops by (7/8)^levels while add passes grow linearly. Quadrants are strided
// views into the parent storage (no copies); odd dimensions are handled by
// dynamic peeling — the recursion covers the even-truncated core and exact
// rank-1 / matvec / vecmat fixups cover the peeled row, column and inner
// index. Recursion bottoms out into the tiled (and, for large leaves,
// parallel) GEMM of gemm.go once any dimension falls under
// 2*StrassenCrossover.
//
// Accuracy: Strassen's operand additions grow the error bound from the
// classical O(m)*eps to O(m^~1.2)*eps. The differential suite pins the
// observed error vs the classical kernel at <= 1e-9 for unit-scale inputs,
// and the planner only selects Strassen for shapes where the flop savings
// are material.

// sview is an n x p window into row-major storage with leading dimension ld.
// d[0] is the (0,0) element of the window.
type sview struct {
	d  []float64
	ld int
}

// strassenBufPool recycles the recursion's temporaries (the per-level operand
// scratches and product accumulator, and the top-level result scratch).
// Fresh allocations of these cost more than they look: Go zeroes every new
// slice and the first touch faults the pages in, which at large block sizes
// is tens of megabytes of hidden memory traffic per multiply — a material
// slice of exactly the add-pass budget Strassen has to stay inside. Reused
// buffers skip both; the callers that need zeroed contents clear explicitly.
var strassenBufPool = sync.Pool{New: func() any { return new([]float64) }}

// strassenTake returns an uninitialized length-n scratch and its pool token.
// Contents are arbitrary: callers either overwrite fully or clear first.
func strassenTake(n int) ([]float64, *[]float64) {
	bp := strassenBufPool.Get().(*[]float64)
	if cap(*bp) < n {
		*bp = make([]float64, n)
	}
	return (*bp)[:n:n], bp
}

// quad returns the view shifted by (i, j).
func (v sview) quad(i, j int) sview {
	return sview{d: v.d[i*v.ld+j:], ld: v.ld}
}

// strassenMulAdd computes dst += op(a) * op(b) via the Strassen recursion.
// Transposed operands are materialized once (an exact permutation, no
// rounding) so the recursion and its fixups always read plain row-major
// views. Products accumulate in a zeroed scratch which is added to dst at
// the end, keeping the += contract of the classical kernels.
func strassenMulAdd(dst, a, b *DenseBlock, aT, bT bool) {
	if aT {
		a = transposed(a)
	}
	if bT {
		b = transposed(b)
	}
	n, m, p := a.rows, a.cols, b.cols
	cd, ctok := strassenTake(n * p)
	for i := range cd {
		cd[i] = 0
	}
	strassenRec(sview{d: cd, ld: p}, sview{d: a.Data, ld: a.cols}, sview{d: b.Data, ld: b.cols}, n, m, p)
	for i := range dst.Data {
		dst.Data[i] += cd[i]
	}
	strassenBufPool.Put(ctok)
}

// transposed returns a newly allocated transpose of x.
func transposed(x *DenseBlock) *DenseBlock {
	t := NewDense(x.cols, x.rows)
	for i := 0; i < x.rows; i++ {
		row := x.Data[i*x.cols : (i+1)*x.cols]
		for j, v := range row {
			t.Data[j*t.cols+i] = v
		}
	}
	return t
}

// strassenRec computes c += a*b for an n x m times m x p product over
// strided views.
func strassenRec(c, a, b sview, n, m, p int) {
	if n < 2*StrassenCrossover || m < 2*StrassenCrossover || p < 2*StrassenCrossover {
		strassenLeaf(c, a, b, n, m, p)
		return
	}
	strassenStep(c, a, b, n, m, p, strassenRec)
}

// strassenStep runs one Strassen level — quadrant schedule plus odd-dim
// peeling — delegating sub-products to rec. Split out from strassenRec so
// tests can recurse with a reduced crossover.
func strassenStep(c, a, b sview, n, m, p int, rec func(c, a, b sview, n, m, p int)) {
	n2, m2, p2 := n/2, m/2, p/2
	ne, me, pe := 2*n2, 2*m2, 2*p2

	a11, a12 := a.quad(0, 0), a.quad(0, m2)
	a21, a22 := a.quad(n2, 0), a.quad(n2, m2)
	b11, b12 := b.quad(0, 0), b.quad(0, p2)
	b21, b22 := b.quad(m2, 0), b.quad(m2, p2)
	c11, c12 := c.quad(0, 0), c.quad(0, p2)
	c21, c22 := c.quad(n2, 0), c.quad(n2, p2)

	// Three temporaries per level: an operand scratch for each side and one
	// product accumulator. Each M_i is computed fresh and folded into the C
	// quadrants it contributes to. Pooled, never zeroed: t1/t2 are written
	// in full before any read, and mm is cleared per product below.
	t1d, t1tok := strassenTake(n2 * m2)
	t2d, t2tok := strassenTake(m2 * p2)
	mmd, mmtok := strassenTake(n2 * p2)
	t1 := sview{d: t1d, ld: m2}
	t2 := sview{d: t2d, ld: p2}
	mm := sview{d: mmd, ld: p2}
	defer func() {
		strassenBufPool.Put(t1tok)
		strassenBufPool.Put(t2tok)
		strassenBufPool.Put(mmtok)
	}()

	product := func(x, y sview) {
		clearView(mm, n2, p2)
		rec(mm, x, y, n2, m2, p2)
	}

	// M1 = (A11+A22)(B11+B22) -> C11, C22
	addViews(t1, a11, a22, n2, m2)
	addViews(t2, b11, b22, m2, p2)
	product(t1, t2)
	accView(c11, mm, n2, p2, 1)
	accView(c22, mm, n2, p2, 1)
	// M2 = (A21+A22) B11 -> C21, -C22
	addViews(t1, a21, a22, n2, m2)
	product(t1, b11)
	accView(c21, mm, n2, p2, 1)
	accView(c22, mm, n2, p2, -1)
	// M3 = A11 (B12-B22) -> C12, C22
	subViews(t2, b12, b22, m2, p2)
	product(a11, t2)
	accView(c12, mm, n2, p2, 1)
	accView(c22, mm, n2, p2, 1)
	// M4 = A22 (B21-B11) -> C11, C21
	subViews(t2, b21, b11, m2, p2)
	product(a22, t2)
	accView(c11, mm, n2, p2, 1)
	accView(c21, mm, n2, p2, 1)
	// M5 = (A11+A12) B22 -> -C11, C12
	addViews(t1, a11, a12, n2, m2)
	product(t1, b22)
	accView(c11, mm, n2, p2, -1)
	accView(c12, mm, n2, p2, 1)
	// M6 = (A21-A11)(B11+B12) -> C22
	subViews(t1, a21, a11, n2, m2)
	addViews(t2, b11, b12, m2, p2)
	product(t1, t2)
	accView(c22, mm, n2, p2, 1)
	// M7 = (A12-A22)(B21+B22) -> C11
	subViews(t1, a12, a22, n2, m2)
	addViews(t2, b21, b22, m2, p2)
	product(t1, t2)
	accView(c11, mm, n2, p2, 1)

	// Dynamic peeling fixups for odd dimensions. Together they cover every
	// (i, k, j) index with odd coordinate exactly once:
	//   odd m: the peeled inner index over the even core -> rank-1 update;
	//   odd p: the peeled result column over rows [0, ne), full m;
	//   odd n: the peeled result row over all columns, full m.
	if m != me {
		for i := 0; i < ne; i++ {
			av := a.d[i*a.ld+me]
			crow := c.d[i*c.ld : i*c.ld+pe]
			brow := b.d[me*b.ld : me*b.ld+pe]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	if p != pe {
		for i := 0; i < ne; i++ {
			var s float64
			arow := a.d[i*a.ld : i*a.ld+m]
			for k, av := range arow {
				s += av * b.d[k*b.ld+pe]
			}
			c.d[i*c.ld+pe] += s
		}
	}
	if n != ne {
		mulAddSmallStrided(c.d[ne*c.ld:], c.ld, 1, m, p, a.d[ne*a.ld:], a.ld, false, b.d, b.ld, false)
	}
}

// strassenLeaf runs the classical strided kernel on a view triple.
func strassenLeaf(c, a, b sview, n, m, p int) {
	if n*m*p < gemmSmall {
		mulAddSmallStrided(c.d, c.ld, n, m, p, a.d, a.ld, false, b.d, b.ld, false)
		return
	}
	gemmStrided(c.d, c.ld, n, p, a.d, a.ld, false, b.d, b.ld, false, m, KernelWorkers())
}

func clearView(v sview, n, p int) {
	for i := 0; i < n; i++ {
		row := v.d[i*v.ld : i*v.ld+p]
		for j := range row {
			row[j] = 0
		}
	}
}

// addViews writes dst = x + y over an n x p window.
func addViews(dst, x, y sview, n, p int) {
	for i := 0; i < n; i++ {
		drow := dst.d[i*dst.ld : i*dst.ld+p]
		xrow := x.d[i*x.ld : i*x.ld+p]
		yrow := y.d[i*y.ld : i*y.ld+p]
		for j := range drow {
			drow[j] = xrow[j] + yrow[j]
		}
	}
}

// subViews writes dst = x - y over an n x p window.
func subViews(dst, x, y sview, n, p int) {
	for i := 0; i < n; i++ {
		drow := dst.d[i*dst.ld : i*dst.ld+p]
		xrow := x.d[i*x.ld : i*x.ld+p]
		yrow := y.d[i*y.ld : i*y.ld+p]
		for j := range drow {
			drow[j] = xrow[j] - yrow[j]
		}
	}
}

// accView accumulates dst += sign * m over an n x p window.
func accView(dst, m sview, n, p, sign int) {
	for i := 0; i < n; i++ {
		drow := dst.d[i*dst.ld : i*dst.ld+p]
		mrow := m.d[i*m.ld : i*m.ld+p]
		if sign > 0 {
			for j := range drow {
				drow[j] += mrow[j]
			}
		} else {
			for j := range drow {
				drow[j] -= mrow[j]
			}
		}
	}
}
