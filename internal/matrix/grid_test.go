package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randGridDense(rng *rand.Rand, rows, cols, bs int) *Grid {
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return FromDense(rows, cols, bs, data)
}

func randGridSparse(rng *rand.Rand, rows, cols, bs int, sparsity float64) *Grid {
	var coords []Coord
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < sparsity {
				coords = append(coords, Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return FromCoords(rows, cols, bs, coords)
}

func TestGridShapeAndRaggedBlocks(t *testing.T) {
	g := NewGrid(10, 7, 4)
	if g.BlockRows() != 3 || g.BlockCols() != 2 {
		t.Fatalf("block grid = %dx%d, want 3x2", g.BlockRows(), g.BlockCols())
	}
	r, c := g.BlockDims(2, 1)
	if r != 2 || c != 3 {
		t.Errorf("ragged block dims = %dx%d, want 2x3", r, c)
	}
	r, c = g.BlockDims(0, 0)
	if r != 4 || c != 4 {
		t.Errorf("full block dims = %dx%d, want 4x4", r, c)
	}
}

func TestGridFromCoordsAt(t *testing.T) {
	coords := []Coord{{0, 0, 1}, {9, 6, 2}, {4, 4, 3}}
	g := FromCoords(10, 7, 4, coords)
	for _, c := range coords {
		if got := g.At(c.Row, c.Col); got != c.Val {
			t.Errorf("At(%d,%d) = %v, want %v", c.Row, c.Col, got, c.Val)
		}
	}
	if g.NNZ() != 3 {
		t.Errorf("NNZ = %d, want 3", g.NNZ())
	}
}

func TestGridTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	g := randGridSparse(rng, 17, 11, 5, 0.2)
	tr := g.Transpose()
	if tr.Rows() != 11 || tr.Cols() != 17 {
		t.Fatalf("transpose shape = %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 17; i++ {
		for j := 0; j < 11; j++ {
			if g.At(i, j) != tr.At(j, i) {
				t.Fatalf("mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !GridEqual(g, tr.Transpose(), 0) {
		t.Error("double transpose is not identity")
	}
}

func TestMulGridMatchesBlockMul(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randGridDense(rng, 13, 9, 4)
	b := randGridSparse(rng, 9, 15, 4, 0.3)
	got, err := MulGrid(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: multiply the fully materialized matrices with one block.
	fa := FromDense(13, 9, 16, a.ToDense())
	fb := FromDense(9, 15, 16, b.ToDense())
	want, err := MulGrid(fa, fb)
	if err != nil {
		t.Fatal(err)
	}
	if !GridEqual(got, want, 1e-9) {
		t.Error("blocked product differs from single-block product")
	}
}

func TestMulGridErrors(t *testing.T) {
	if _, err := MulGrid(NewDenseGrid(3, 4, 2), NewDenseGrid(5, 3, 2)); err == nil {
		t.Error("expected inner-dimension error")
	}
	if _, err := MulGrid(NewDenseGrid(3, 4, 2), NewDenseGrid(4, 3, 3)); err == nil {
		t.Error("expected block-size mismatch error")
	}
}

func TestCellwiseGridAndScalarGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randGridDense(rng, 8, 8, 3)
	b := randGridDense(rng, 8, 8, 3)
	sum, err := CellwiseGrid(OpAdd, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := a.At(i, j) + b.At(i, j)
			if d := sum.At(i, j) - want; d > 1e-12 || d < -1e-12 {
				t.Fatalf("sum mismatch at (%d,%d)", i, j)
			}
		}
	}
	if _, err := CellwiseGrid(OpAdd, a, NewDenseGrid(8, 8, 4)); err == nil {
		t.Error("expected block-size mismatch error")
	}
	sc := ScalarGrid(ScalarMul, a, -2)
	if d := sc.At(0, 0) - a.At(0, 0)*-2; d > 1e-12 || d < -1e-12 {
		t.Error("ScalarGrid wrong")
	}
}

func TestSumAndFrobeniusGrid(t *testing.T) {
	g := FromDense(2, 3, 2, []float64{1, 2, 3, 4, 5, 6})
	if got := SumGrid(g); got != 21 {
		t.Errorf("SumGrid = %v, want 21", got)
	}
	if got := FrobeniusSqGrid(g); got != 91 {
		t.Errorf("FrobeniusSqGrid = %v, want 91", got)
	}
}

func TestGridCloneIsDeep(t *testing.T) {
	g := NewDenseGrid(4, 4, 2)
	g.Set(0, 0, 5)
	c := g.Clone()
	c.Set(0, 0, 9)
	if g.At(0, 0) != 5 {
		t.Error("Clone shares blocks with original")
	}
}

// Property (testing/quick): ToDense o FromDense is the identity for any
// block size.
func TestQuickFromDenseRoundTrip(t *testing.T) {
	f := func(seed int64, bsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		bs := 1 + int(bsRaw)%12
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		g := FromDense(rows, cols, bs, data)
		got := g.ToDense()
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): the blocked product is independent of the block
// size.
func TestQuickMulGridBlockSizeInvariance(t *testing.T) {
	f := func(seed int64, bs1Raw, bs2Raw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, p := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		bs1 := 1 + int(bs1Raw)%10
		bs2 := 1 + int(bs2Raw)%10
		da := make([]float64, n*m)
		db := make([]float64, m*p)
		for i := range da {
			da[i] = rng.NormFloat64()
		}
		for i := range db {
			db[i] = rng.NormFloat64()
		}
		r1, err := MulGrid(FromDense(n, m, bs1, da), FromDense(m, p, bs1, db))
		if err != nil {
			return false
		}
		r2, err := MulGrid(FromDense(n, m, bs2, da), FromDense(m, p, bs2, db))
		if err != nil {
			return false
		}
		return GridEqual(r1, r2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): grid transpose equals element-wise transpose.
func TestQuickGridTranspose(t *testing.T) {
	f := func(seed int64, bsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(15), 1+rng.Intn(15)
		bs := 1 + int(bsRaw)%8
		g := randGridSparse(rng, rows, cols, bs, 0.3)
		tr := g.Transpose()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if g.At(i, j) != tr.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
