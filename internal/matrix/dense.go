package matrix

import "fmt"

// DenseBlock is a dense sub-matrix stored as a row-major float64 array
// (Section 5.3: "a one-dimensional array is used for dense block").
type DenseBlock struct {
	rows, cols int
	// Data holds the elements in row-major order; Data[i*cols+j] is (i, j).
	// It is exported read-only: kernels in this package may mutate it, other
	// packages must treat it as immutable unless they own the block.
	Data []float64
}

// NewDense returns a zeroed rows x cols dense block.
func NewDense(rows, cols int) *DenseBlock {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", rows, cols))
	}
	return &DenseBlock{rows: rows, cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseData wraps an existing row-major slice as a dense block. The slice
// is used directly (not copied); len(data) must equal rows*cols.
func NewDenseData(rows, cols int, data []float64) *DenseBlock {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: data length %d != %d*%d", len(data), rows, cols))
	}
	return &DenseBlock{rows: rows, cols: cols, Data: data}
}

// Rows returns the number of rows.
func (d *DenseBlock) Rows() int { return d.rows }

// Cols returns the number of columns.
func (d *DenseBlock) Cols() int { return d.cols }

// At returns the element at (i, j).
func (d *DenseBlock) At(i, j int) float64 { return d.Data[i*d.cols+j] }

// Set stores v at (i, j). The caller must own the block.
func (d *DenseBlock) Set(i, j int, v float64) { d.Data[i*d.cols+j] = v }

// NNZ counts the non-zero elements by scanning the data.
func (d *DenseBlock) NNZ() int {
	n := 0
	for _, v := range d.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// MemBytes implements the dense branch of the paper's block memory model.
func (d *DenseBlock) MemBytes() int64 { return DenseMemBytes(d.rows, d.cols) }

// IsSparse reports false for dense blocks.
func (d *DenseBlock) IsSparse() bool { return false }

// Dense returns the receiver.
func (d *DenseBlock) Dense() *DenseBlock { return d }

// Transpose returns a new dense block that is the transpose of d.
func (d *DenseBlock) Transpose() Block {
	t := NewDense(d.cols, d.rows)
	for i := 0; i < d.rows; i++ {
		row := d.Data[i*d.cols : (i+1)*d.cols]
		for j, v := range row {
			t.Data[j*d.rows+i] = v
		}
	}
	return t
}

// Clone returns a deep copy of d.
func (d *DenseBlock) Clone() Block {
	data := make([]float64, len(d.Data))
	copy(data, d.Data)
	return &DenseBlock{rows: d.rows, cols: d.cols, Data: data}
}

// Scale returns a new block with every element multiplied by alpha.
func (d *DenseBlock) Scale(alpha float64) Block {
	out := NewDense(d.rows, d.cols)
	for i, v := range d.Data {
		out.Data[i] = v * alpha
	}
	return out
}

// ScaleInPlace multiplies every element by alpha in place.
func (d *DenseBlock) ScaleInPlace(alpha float64) {
	for i := range d.Data {
		d.Data[i] *= alpha
	}
}

// AddScalarInPlace adds alpha to every element in place.
func (d *DenseBlock) AddScalarInPlace(alpha float64) {
	for i := range d.Data {
		d.Data[i] += alpha
	}
}

// Zero resets all elements to 0; used when a block is recycled through the
// result buffer pool.
func (d *DenseBlock) Zero() {
	clear(d.Data)
}

// CapBytes returns the footprint of the full backing array, including any
// slack capacity left by buffer-pool reuse. The pool accounts recycled blocks
// at CapBytes so charges stay consistent when a large pooled block serves a
// smaller request.
func (d *DenseBlock) CapBytes() int64 { return 8 * int64(cap(d.Data)) }

// Sum returns the sum of all elements.
func (d *DenseBlock) Sum() float64 {
	s := 0.0
	for _, v := range d.Data {
		s += v
	}
	return s
}
