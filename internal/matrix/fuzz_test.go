package matrix

import (
	"math/rand"
	"testing"
)

// FuzzMulKernels drives the full multiply surface — serial and parallel
// classical, Strassen, every transpose combination, dense and sparse
// operands — from one fuzzed seed and checks each result against the generic
// oracle. The parallel-vs-serial comparison is exact (bit identity is the
// kernel's contract); Strassen is held to its 1e-9 contract.
func FuzzMulKernels(f *testing.F) {
	for seed := int64(0); seed < 12; seed++ {
		f.Add(seed)
	}
	dims := []int{1, 2, 3, 17, 31, 33, 64, 65, 97, 130}
	f.Fuzz(func(t *testing.T, seed int64) {
		defer SetKernelWorkers(SetKernelWorkers(1))
		rng := rand.New(rand.NewSource(seed))
		n := dims[rng.Intn(len(dims))]
		m := dims[rng.Intn(len(dims))]
		p := dims[rng.Intn(len(dims))]
		aT, bT := rng.Intn(2) == 1, rng.Intn(2) == 1
		ar, ac := n, m
		if aT {
			ar, ac = m, n
		}
		br, bc := m, p
		if bT {
			br, bc = p, m
		}
		var a, b Block
		if rng.Intn(4) == 0 {
			a = randSparse(rng, ar, ac, 0.3)
		} else {
			a = randDense(rng, ar, ac)
		}
		if rng.Intn(4) == 0 {
			b = randSparse(rng, br, bc, 0.3)
		} else {
			b = randDense(rng, br, bc)
		}
		want := refMulTrans(a, b, aT, bT)

		SetKernelWorkers(1)
		serial := NewDense(n, p)
		if err := MulAddTransInto(serial, a, b, aT, bT); err != nil {
			t.Fatalf("serial: %v", err)
		}
		if !Equal(serial, want, 1e-9) {
			t.Fatalf("serial kernel differs from oracle (%dx%dx%d aT=%v bT=%v)", n, m, p, aT, bT)
		}

		SetKernelWorkers(2 + rng.Intn(6))
		par := NewDense(n, p)
		if err := MulAddTransInto(par, a, b, aT, bT); err != nil {
			t.Fatalf("parallel: %v", err)
		}
		for i := range par.Data {
			if par.Data[i] != serial.Data[i] {
				t.Fatalf("parallel result not bit-identical to serial (%dx%dx%d aT=%v bT=%v)", n, m, p, aT, bT)
			}
		}

		str := NewDense(n, p)
		if err := MulAddTransAlgoInto(str, a, b, aT, bT, MulStrassen); err != nil {
			t.Fatalf("strassen dispatch: %v", err)
		}
		if !Equal(str, want, 1e-9) {
			t.Fatalf("strassen dispatch differs from oracle (%dx%dx%d aT=%v bT=%v)", n, m, p, aT, bT)
		}

		// Force real recursion regardless of the production crossover, dense
		// operands only (the recursion itself is dense-on-dense).
		if ad, ok := a.(*DenseBlock); ok {
			if bd, ok := b.(*DenseBlock); ok && n >= 2 && m >= 2 && p >= 2 {
				am, bm := ad, bd
				if aT {
					am = transposed(ad)
				}
				if bT {
					bm = transposed(bd)
				}
				rec := NewDense(n, p)
				strassenRecAt(sview{d: rec.Data, ld: p}, sview{d: am.Data, ld: am.cols}, sview{d: bm.Data, ld: bm.cols}, n, m, p, 8)
				if !Equal(rec, want, 1e-9) {
					t.Fatalf("forced strassen recursion differs from oracle (%dx%dx%d aT=%v bT=%v)", n, m, p, aT, bT)
				}
			}
		}
	})
}
