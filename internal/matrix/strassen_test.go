package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// strassenTol is the accuracy contract of the Strassen path: for unit-scale
// inputs the result must agree with the classical tiled kernel to 1e-9 in
// every element.
const strassenTol = 1e-9

func maxAbsDiff(x, y []float64) float64 {
	var worst float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// strassenVsClassical computes dst += op(a)*op(b) both ways and returns the
// worst element difference. It drops the crossover temporarily so small test
// shapes still exercise real recursion levels.
func strassenVsClassical(t *testing.T, a, b *DenseBlock, aT, bT bool) float64 {
	t.Helper()
	n, m := transDims(a, aT)
	mb, p := transDims(b, bT)
	if m != mb {
		t.Fatalf("bad test shape: %dx%d * %dx%d", n, m, mb, p)
	}
	want := NewDense(n, p)
	if err := MulAddTransInto(want, a, b, aT, bT); err != nil {
		t.Fatal(err)
	}
	got := NewDense(n, p)
	strassenMulAdd(got, a, b, aT, bT)
	return maxAbsDiff(got.Data, want.Data)
}

// TestStrassenMatchesClassical covers seeded random shapes — even, odd in
// every dimension combination, and strongly rectangular — across all four
// transpose variants, at a reduced crossover so multiple recursion levels
// run.
func TestStrassenMatchesClassical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shapes := [][3]int{
		{128, 128, 128},
		{127, 129, 131}, // odd at every level
		{130, 62, 190},
		{256, 64, 64},
		{64, 256, 64},
		{95, 97, 93},
		{256, 256, 256},
	}
	for _, sh := range shapes {
		n, m, p := sh[0], sh[1], sh[2]
		for _, tr := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
			aT, bT := tr[0], tr[1]
			ar, ac := n, m
			if aT {
				ar, ac = m, n
			}
			br, bc := m, p
			if bT {
				br, bc = p, m
			}
			a := randDense(rng, ar, ac)
			b := randDense(rng, br, bc)
			if d := strassenTestDiff(t, a, b, aT, bT); d > strassenTol {
				t.Fatalf("%dx%dx%d aT=%v bT=%v: |strassen-classical| = %g > %g", n, m, p, aT, bT, d, strassenTol)
			}
		}
	}
}

// strassenTestDiff runs strassenVsClassical with the recursion forced on by
// calling strassenRec directly at a small threshold.
func strassenTestDiff(t *testing.T, a, b *DenseBlock, aT, bT bool) float64 {
	t.Helper()
	n, m := transDims(a, aT)
	_, p := transDims(b, bT)
	want := NewDense(n, p)
	if err := MulAddTransInto(want, a, b, aT, bT); err != nil {
		t.Fatal(err)
	}
	am, bm := a, b
	if aT {
		am = transposed(a)
	}
	if bT {
		bm = transposed(b)
	}
	got := NewDense(n, p)
	strassenRecAt(sview{d: got.Data, ld: p}, sview{d: am.Data, ld: am.cols}, sview{d: bm.Data, ld: bm.cols}, n, m, p, 16)
	return maxAbsDiff(got.Data, want.Data)
}

// strassenRecAt is strassenRec with an explicit crossover, for tests that
// need recursion on small shapes.
func strassenRecAt(c, a, b sview, n, m, p, crossover int) {
	if n < 2*crossover || m < 2*crossover || p < 2*crossover {
		strassenLeaf(c, a, b, n, m, p)
		return
	}
	strassenStep(c, a, b, n, m, p, func(c, a, b sview, n, m, p int) {
		strassenRecAt(c, a, b, n, m, p, crossover)
	})
}

// TestStrassenFullSize runs one production-path multiply above the real
// crossover so strassenMulAdd itself (materialization, scratch add, real
// recursion) is exercised end to end.
func TestStrassenFullSize(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size strassen in -short mode")
	}
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 1027, 1025)
	b := randDense(rng, 1025, 1029)
	if d := strassenVsClassical(t, a, b, false, false); d > strassenTol {
		t.Fatalf("|strassen-classical| = %g > %g", d, strassenTol)
	}
}

// TestStrassenAdversarial hits tiny, rank-deficient and adversarially scaled
// inputs: zero blocks, identical rows (rank 1), and mixed magnitudes.
func TestStrassenAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n, m, p := 96, 96, 96

	zero := NewDense(n, m)
	b := randDense(rng, m, p)
	if d := strassenTestDiff(t, zero, b, false, false); d != 0 {
		t.Fatalf("zero * B: diff %g, want exact 0", d)
	}

	rank1 := NewDense(n, m)
	row := make([]float64, m)
	for j := range row {
		row[j] = rng.Float64()*2 - 1
	}
	for i := 0; i < n; i++ {
		copy(rank1.Data[i*m:(i+1)*m], row)
	}
	if d := strassenTestDiff(t, rank1, b, false, false); d > strassenTol {
		t.Fatalf("rank-1 A: diff %g > %g", d, strassenTol)
	}

	mixed := randDense(rng, n, m)
	for i := range mixed.Data {
		if i%7 == 0 {
			mixed.Data[i] *= 1e6
		}
	}
	if d := strassenTestDiff(t, mixed, b, false, false); d > strassenTol*1e6 {
		t.Fatalf("mixed-scale A: diff %g > %g", d, strassenTol*1e6)
	}
}

// TestStrassenAccumulates checks the += contract: a non-zero destination
// must keep its prior contents.
func TestStrassenAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n, m, p := 96, 96, 96
	a := randDense(rng, n, m)
	b := randDense(rng, m, p)
	base := randDense(rng, n, p)

	want := NewDense(n, p)
	copy(want.Data, base.Data)
	if err := MulAddTransInto(want, a, b, false, false); err != nil {
		t.Fatal(err)
	}
	got := NewDense(n, p)
	copy(got.Data, base.Data)
	strassenMulAdd(got, a, b, false, false)
	if d := maxAbsDiff(got.Data, want.Data); d > strassenTol {
		t.Fatalf("accumulation diff %g > %g", d, strassenTol)
	}
}

// TestStrassenOK pins the eligibility rule the planner relies on.
func TestStrassenOK(t *testing.T) {
	lim := 2 * StrassenCrossover
	cases := []struct {
		n, m, p int
		want    bool
	}{
		{lim, lim, lim, true},
		{lim - 1, lim, lim, false},
		{lim, lim - 1, lim, false},
		{lim, lim, lim - 1, false},
		{4 * lim, lim, lim, true},
	}
	for _, c := range cases {
		if got := StrassenOK(c.n, c.m, c.p); got != c.want {
			t.Fatalf("StrassenOK(%d,%d,%d) = %v, want %v", c.n, c.m, c.p, got, c.want)
		}
	}
}

// TestMulAddTransAlgoIntoFallback: the strassen algo must silently run
// classical for ineligible shapes and sparse operands.
func TestMulAddTransAlgoIntoFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randDense(rng, 40, 40)
	b := randDense(rng, 40, 40)
	want := NewDense(40, 40)
	if err := MulAddTransInto(want, a, b, false, false); err != nil {
		t.Fatal(err)
	}
	got := NewDense(40, 40)
	if err := MulAddTransAlgoInto(got, a, b, false, false, MulStrassen); err != nil {
		t.Fatal(err)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatal("ineligible shape with MulStrassen must be bit-identical to classical")
		}
	}
}

func TestMulAlgoString(t *testing.T) {
	if MulClassical.String() != "classical" || MulStrassen.String() != "strassen" {
		t.Fatalf("MulAlgo strings: %q, %q", MulClassical, MulStrassen)
	}
}
