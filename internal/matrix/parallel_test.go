package matrix

import (
	"math/rand"
	"testing"
)

// TestParallelMatchesSerialBitIdentical pins the central claim of the
// parallel kernel: because the k-panel loop stays serial and strips own
// disjoint result rows, the output is bit-identical to the serial kernel at
// every worker count — including counts far above the machine's cores and
// shapes with ragged strips.
func TestParallelMatchesSerialBitIdentical(t *testing.T) {
	defer SetKernelWorkers(SetKernelWorkers(1))
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{
		{128, 128, 128},
		{200, 160, 150},
		{129, 257, 131}, // odd everything, ragged strips
		{65, 1024, 1024},
		{512, 33, 512},
	}
	for _, sh := range shapes {
		n, m, p := sh[0], sh[1], sh[2]
		for _, tr := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
			aT, bT := tr[0], tr[1]
			ar, ac := n, m
			if aT {
				ar, ac = m, n
			}
			br, bc := m, p
			if bT {
				br, bc = p, m
			}
			a := randDense(rng, ar, ac)
			b := randDense(rng, br, bc)
			want := NewDense(n, p)
			SetKernelWorkers(1)
			if err := MulAddTransInto(want, a, b, aT, bT); err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 3, 4, 8, 17} {
				SetKernelWorkers(w)
				got := NewDense(n, p)
				if err := MulAddTransInto(got, a, b, aT, bT); err != nil {
					t.Fatal(err)
				}
				for i := range got.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("%dx%dx%d aT=%v bT=%v workers=%d: element %d differs: %v vs %v",
							n, m, p, aT, bT, w, i, got.Data[i], want.Data[i])
					}
				}
			}
		}
	}
}

// TestParallelConcurrentCallers drives the shared pool from many goroutines
// at once (the executor's block tasks do exactly this) and checks each result
// against the serial kernel. Run under -race this pins the pool, the shared
// packed-B strip and the per-participant A arenas as race-free.
func TestParallelConcurrentCallers(t *testing.T) {
	defer SetKernelWorkers(SetKernelWorkers(4))
	rng := rand.New(rand.NewSource(7))
	n, m, p := 160, 140, 130
	a := randDense(rng, n, m)
	b := randDense(rng, m, p)
	want := NewDense(n, p)
	SetKernelWorkers(1)
	if err := MulAddTransInto(want, a, b, false, false); err != nil {
		t.Fatal(err)
	}
	SetKernelWorkers(4)
	const callers = 8
	errs := make(chan string, callers)
	for g := 0; g < callers; g++ {
		go func() {
			got := NewDense(n, p)
			if err := MulAddTransInto(got, a, b, false, false); err != nil {
				errs <- err.Error()
				return
			}
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					errs <- "parallel result differs from serial under concurrent callers"
					return
				}
			}
			errs <- ""
		}()
	}
	for g := 0; g < callers; g++ {
		if msg := <-errs; msg != "" {
			t.Fatal(msg)
		}
	}
}

func TestSetKernelWorkersClamps(t *testing.T) {
	defer SetKernelWorkers(SetKernelWorkers(1))
	SetKernelWorkers(0)
	if got := KernelWorkers(); got != 1 {
		t.Fatalf("workers after Set(0) = %d, want 1", got)
	}
	SetKernelWorkers(10_000)
	if got := KernelWorkers(); got != maxKernelWorkers {
		t.Fatalf("workers after Set(10000) = %d, want %d", got, maxKernelWorkers)
	}
	if prev := SetKernelWorkers(3); prev != maxKernelWorkers {
		t.Fatalf("Set returned %d, want previous %d", prev, maxKernelWorkers)
	}
}
