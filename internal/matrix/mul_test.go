package matrix

import (
	"math/rand"
	"testing"
)

// refMul computes the reference product via the naive At-based algorithm.
func refMul(a, b Block) *DenseBlock {
	out := NewDense(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			s := 0.0
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMulKernelsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	da := randDense(rng, 7, 5)
	db := randDense(rng, 5, 9)
	sa := randSparse(rng, 7, 5, 0.35)
	sb := randSparse(rng, 5, 9, 0.35)
	cases := []struct {
		name string
		a, b Block
	}{
		{"dense-dense", da, db},
		{"dense-sparse", da, sb},
		{"sparse-dense", sa, db},
		{"sparse-sparse", sa, sb},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := Mul(c.a, c.b)
			if err != nil {
				t.Fatal(err)
			}
			want := refMul(c.a, c.b)
			if !Equal(got, want, 1e-10) {
				t.Errorf("kernel result differs from reference")
			}
		})
	}
}

func TestMulAddIntoAccumulates(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 0, 0, 1})
	b := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	dst := NewDenseData(2, 2, []float64{10, 10, 10, 10})
	if err := MulAddInto(dst, a, b); err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 12, 13, 14}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Errorf("dst[%d] = %v, want %v", i, dst.Data[i], w)
		}
	}
}

func TestMulShapeErrors(t *testing.T) {
	if _, err := Mul(NewDense(2, 3), NewDense(2, 3)); err == nil {
		t.Error("expected inner-dimension mismatch error")
	}
	if err := MulAddInto(NewDense(3, 3), NewDense(2, 3), NewDense(3, 2)); err == nil {
		t.Error("expected destination shape error")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 6, 6)
	id := NewDense(6, 6)
	for i := 0; i < 6; i++ {
		id.Set(i, i, 1)
	}
	got, err := Mul(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, a, 1e-12) {
		t.Error("A * I != A")
	}
	got2, err := Mul(id, a)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got2, a, 1e-12) {
		t.Error("I * A != A")
	}
}

// quickBlocks generates a deterministic pseudo-random block pair for the
// property tests below.
func quickBlocks(seed int64) (Block, Block, Block) {
	rng := rand.New(rand.NewSource(seed))
	rows := 1 + rng.Intn(8)
	inner := 1 + rng.Intn(8)
	cols := 1 + rng.Intn(8)
	mk := func(r, c int) Block {
		if rng.Intn(2) == 0 {
			return randDense(rng, r, c)
		}
		return randSparse(rng, r, c, 0.4)
	}
	return mk(rows, inner), mk(inner, cols), mk(cols, 1+rng.Intn(8))
}

// Property: (A*B)^T == B^T * A^T for all representation combinations.
func TestPropertyTransposeOfProduct(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		a, b, _ := quickBlocks(seed)
		ab, err := Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		btat, err := Mul(b.Transpose(), a.Transpose())
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(ab.Transpose(), btat, 1e-9) {
			t.Fatalf("seed %d: (AB)^T != B^T A^T", seed)
		}
	}
}

// Property: matrix multiplication is associative: (AB)C == A(BC).
func TestPropertyMulAssociative(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		a, b, c := quickBlocks(seed)
		ab, err := Mul(a, b)
		if err != nil {
			t.Fatal(err)
		}
		abc1, err := Mul(ab, c)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := Mul(b, c)
		if err != nil {
			t.Fatal(err)
		}
		abc2, err := Mul(a, bc)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(abc1, abc2, 1e-8) {
			t.Fatalf("seed %d: associativity violated", seed)
		}
	}
}

// Property: A*(B+C) == A*B + A*C (distributivity).
func TestPropertyMulDistributive(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		n, m, p := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := randDense(rng, n, m)
		b := randSparse(rng, m, p, 0.5)
		c := randDense(rng, m, p)
		bc, err := Cellwise(OpAdd, b, c)
		if err != nil {
			t.Fatal(err)
		}
		lhs, err := Mul(a, bc)
		if err != nil {
			t.Fatal(err)
		}
		ab, _ := Mul(a, b)
		ac, _ := Mul(a, c)
		rhs, err := Cellwise(OpAdd, ab, ac)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(lhs, rhs, 1e-9) {
			t.Fatalf("seed %d: distributivity violated", seed)
		}
	}
}
