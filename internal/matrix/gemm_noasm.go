//go:build !amd64

package matrix

// gemmHaveAVX is false on architectures without the assembly micro-kernel;
// the pure-Go gemmMicro2x4 runs everywhere.
var gemmHaveAVX = false

// gemmMicroAVX is never called when gemmHaveAVX is false.
func gemmMicroAVX(c *float64, ldc int, ap, bp *float64, kw int) {
	panic("matrix: gemmMicroAVX without AVX support")
}
