package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func TestUFuncApply(t *testing.T) {
	cases := []struct {
		f    UFunc
		x    float64
		want float64
	}{
		{FuncSigmoid, 0, 0.5},
		{FuncExp, 0, 1},
		{FuncExp, 1, math.E},
		{FuncLog, math.E, 1},
		{FuncSqrt, 9, 3},
		{FuncAbs, -4, 4},
		{FuncSign, -7, -1},
		{FuncSign, 0, 0},
		{FuncSign, 2.5, 1},
	}
	for _, c := range cases {
		if got := c.f.Apply(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s(%v) = %v, want %v", c.f, c.x, got, c.want)
		}
	}
	if math.Abs(FuncSigmoid.Apply(100)-1) > 1e-9 {
		t.Error("sigmoid should saturate at 1")
	}
}

func TestUFuncValidityAndNames(t *testing.T) {
	for _, f := range []UFunc{FuncSigmoid, FuncExp, FuncLog, FuncSqrt, FuncAbs, FuncSign} {
		if !f.Valid() {
			t.Errorf("%s should be valid", f)
		}
		if f.String() == "" {
			t.Errorf("UFunc %d has no name", f)
		}
	}
	if UFunc(-1).Valid() || UFunc(99).Valid() {
		t.Error("out-of-range UFuncs must be invalid")
	}
}

func TestUFuncSparsityPreservation(t *testing.T) {
	preserving := []UFunc{FuncSqrt, FuncAbs, FuncSign}
	densifying := []UFunc{FuncSigmoid, FuncExp, FuncLog}
	for _, f := range preserving {
		if !f.SparsityPreserving() {
			t.Errorf("%s maps 0 to 0 and should preserve sparsity", f)
		}
		if f.Apply(0) != 0 {
			t.Errorf("%s(0) = %v, claimed zero-preserving", f, f.Apply(0))
		}
	}
	for _, f := range densifying {
		if f.SparsityPreserving() {
			t.Errorf("%s must densify (maps 0 to %v)", f, f.Apply(0))
		}
	}
}

func TestApplyBlockSparseAndDense(t *testing.T) {
	s := NewCSC(3, 3, []Coord{{0, 0, 4}, {2, 1, -9}})
	abs := ApplyBlock(FuncAbs, s)
	if !abs.IsSparse() {
		t.Error("abs of sparse block should stay sparse")
	}
	if abs.At(2, 1) != 9 || abs.At(0, 0) != 4 || abs.At(1, 1) != 0 {
		t.Error("abs values wrong")
	}
	sig := ApplyBlock(FuncSigmoid, s)
	if sig.IsSparse() {
		t.Error("sigmoid must densify")
	}
	if math.Abs(sig.At(1, 1)-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", sig.At(1, 1))
	}
	d := NewDenseData(2, 2, []float64{1, 4, 9, 16})
	sq := ApplyBlock(FuncSqrt, d)
	for i, want := range []float64{1, 2, 3, 4} {
		if sq.Dense().Data[i] != want {
			t.Errorf("sqrt[%d] = %v, want %v", i, sq.Dense().Data[i], want)
		}
	}
}

func TestApplyGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randGridDense(rng, 9, 7, 4)
	out := ApplyGrid(FuncExp, g)
	for i := 0; i < 9; i++ {
		for j := 0; j < 7; j++ {
			if math.Abs(out.At(i, j)-math.Exp(g.At(i, j))) > 1e-12 {
				t.Fatalf("exp mismatch at (%d,%d)", i, j)
			}
		}
	}
}
