package matrix

import "fmt"

// Grid is a logical matrix partitioned into square blocks of side BlockSize
// (trailing blocks are ragged). Grid is the first level of the two-level
// partitioning of Section 5.3: a matrix is split into blocks, and the
// distributed layer places whole blocks on workers according to the matrix's
// partition scheme.
type Grid struct {
	rows, cols int
	bs         int
	brows      int
	bcols      int
	blocks     []Block
}

// NewGrid creates a rows x cols grid with the given block size. All blocks
// start as empty sparse blocks; use SetBlock or the From* constructors to
// fill them.
func NewGrid(rows, cols, blockSize int) *Grid {
	if blockSize <= 0 {
		panic(fmt.Sprintf("matrix: non-positive block size %d", blockSize))
	}
	g := &Grid{
		rows:  rows,
		cols:  cols,
		bs:    blockSize,
		brows: blocksFor(rows, blockSize),
		bcols: blocksFor(cols, blockSize),
	}
	g.blocks = make([]Block, g.brows*g.bcols)
	for bi := 0; bi < g.brows; bi++ {
		for bj := 0; bj < g.bcols; bj++ {
			r, c := g.BlockDims(bi, bj)
			g.blocks[bi*g.bcols+bj] = NewCSCEmpty(r, c)
		}
	}
	return g
}

// NewDenseGrid creates a grid whose blocks are zeroed dense blocks.
func NewDenseGrid(rows, cols, blockSize int) *Grid {
	g := NewGrid(rows, cols, blockSize)
	for bi := 0; bi < g.brows; bi++ {
		for bj := 0; bj < g.bcols; bj++ {
			r, c := g.BlockDims(bi, bj)
			g.blocks[bi*g.bcols+bj] = NewDense(r, c)
		}
	}
	return g
}

// FromDense builds a dense grid from a row-major rows x cols slice.
func FromDense(rows, cols, blockSize int, data []float64) *Grid {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: data length %d != %d*%d", len(data), rows, cols))
	}
	g := NewDenseGrid(rows, cols, blockSize)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := data[i*cols+j]; v != 0 {
				g.Set(i, j, v)
			}
		}
	}
	return g
}

// FromCoords builds a sparse grid from a coordinate list addressed in global
// (matrix-level) indices.
func FromCoords(rows, cols, blockSize int, coords []Coord) *Grid {
	g := &Grid{
		rows:  rows,
		cols:  cols,
		bs:    blockSize,
		brows: blocksFor(rows, blockSize),
		bcols: blocksFor(cols, blockSize),
	}
	perBlock := make([][]Coord, g.brows*g.bcols)
	for _, c := range coords {
		if c.Row < 0 || c.Row >= rows || c.Col < 0 || c.Col >= cols {
			panic(fmt.Sprintf("matrix: coord (%d,%d) outside %dx%d matrix", c.Row, c.Col, rows, cols))
		}
		bi, bj := c.Row/blockSize, c.Col/blockSize
		idx := bi*g.bcols + bj
		perBlock[idx] = append(perBlock[idx], Coord{Row: c.Row % blockSize, Col: c.Col % blockSize, Val: c.Val})
	}
	g.blocks = make([]Block, g.brows*g.bcols)
	for bi := 0; bi < g.brows; bi++ {
		for bj := 0; bj < g.bcols; bj++ {
			r, c := g.BlockDims(bi, bj)
			g.blocks[bi*g.bcols+bj] = NewCSC(r, c, perBlock[bi*g.bcols+bj])
		}
	}
	return g
}

// Rows returns the logical row count.
func (g *Grid) Rows() int { return g.rows }

// Cols returns the logical column count.
func (g *Grid) Cols() int { return g.cols }

// BlockSize returns the block side length.
func (g *Grid) BlockSize() int { return g.bs }

// BlockRows returns the number of block rows.
func (g *Grid) BlockRows() int { return g.brows }

// BlockCols returns the number of block columns.
func (g *Grid) BlockCols() int { return g.bcols }

// BlockDims returns the dimensions of block (bi, bj), accounting for ragged
// edge blocks.
func (g *Grid) BlockDims(bi, bj int) (r, c int) {
	r, c = g.bs, g.bs
	if (bi+1)*g.bs > g.rows {
		r = g.rows - bi*g.bs
	}
	if (bj+1)*g.bs > g.cols {
		c = g.cols - bj*g.bs
	}
	return r, c
}

// Block returns the block at block coordinates (bi, bj).
func (g *Grid) Block(bi, bj int) Block { return g.blocks[bi*g.bcols+bj] }

// SetBlock replaces the block at (bi, bj). The block must have the exact
// dimensions reported by BlockDims.
func (g *Grid) SetBlock(bi, bj int, b Block) {
	r, c := g.BlockDims(bi, bj)
	if b.Rows() != r || b.Cols() != c {
		panic(fmt.Sprintf("matrix: block (%d,%d) must be %dx%d, got %dx%d", bi, bj, r, c, b.Rows(), b.Cols()))
	}
	g.blocks[bi*g.bcols+bj] = b
}

// At returns the element at global coordinates (i, j).
func (g *Grid) At(i, j int) float64 {
	return g.Block(i/g.bs, j/g.bs).At(i%g.bs, j%g.bs)
}

// Set stores v at global coordinates (i, j). The target block must be dense;
// Set panics on a sparse block (sparse grids are built via FromCoords).
func (g *Grid) Set(i, j int, v float64) {
	d, ok := g.Block(i/g.bs, j/g.bs).(*DenseBlock)
	if !ok {
		panic("matrix: Set on a sparse block; rebuild with FromCoords")
	}
	d.Set(i%g.bs, j%g.bs, v)
}

// NNZ returns the total number of stored non-zero elements.
func (g *Grid) NNZ() int {
	n := 0
	for _, b := range g.blocks {
		n += b.NNZ()
	}
	return n
}

// MemBytes returns the total block memory footprint.
func (g *Grid) MemBytes() int64 {
	var m int64
	for _, b := range g.blocks {
		m += b.MemBytes()
	}
	return m
}

// TransMemBytes returns the footprint the transposed grid would have if
// materialized; used by lazy transpose views for exact byte accounting.
func (g *Grid) TransMemBytes() int64 {
	var m int64
	for _, b := range g.blocks {
		m += TransMemBytes(b)
	}
	return m
}

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	out := &Grid{rows: g.rows, cols: g.cols, bs: g.bs, brows: g.brows, bcols: g.bcols}
	out.blocks = make([]Block, len(g.blocks))
	for i, b := range g.blocks {
		out.blocks[i] = b.Clone()
	}
	return out
}

// Transpose returns the grid transpose: the block layout is flipped and
// every block is transposed locally. This is the zero-communication
// transpose that backs the Transpose dependency.
func (g *Grid) Transpose() *Grid {
	out := &Grid{rows: g.cols, cols: g.rows, bs: g.bs, brows: g.bcols, bcols: g.brows}
	out.blocks = make([]Block, len(g.blocks))
	for bi := 0; bi < g.brows; bi++ {
		for bj := 0; bj < g.bcols; bj++ {
			out.blocks[bj*out.bcols+bi] = g.Block(bi, bj).Transpose()
		}
	}
	return out
}

// ToDense materializes the grid as a row-major slice; intended for tests and
// small matrices only.
func (g *Grid) ToDense() []float64 {
	out := make([]float64, g.rows*g.cols)
	for bi := 0; bi < g.brows; bi++ {
		for bj := 0; bj < g.bcols; bj++ {
			b := g.Block(bi, bj)
			r0, c0 := bi*g.bs, bj*g.bs
			switch t := b.(type) {
			case *DenseBlock:
				for i := 0; i < t.rows; i++ {
					copy(out[(r0+i)*g.cols+c0:(r0+i)*g.cols+c0+t.cols], t.Data[i*t.cols:(i+1)*t.cols])
				}
			case *CSCBlock:
				t.EachNZ(func(i, j int, v float64) {
					out[(r0+i)*g.cols+c0+j] = v
				})
			default:
				for i := 0; i < b.Rows(); i++ {
					for j := 0; j < b.Cols(); j++ {
						out[(r0+i)*g.cols+c0+j] = b.At(i, j)
					}
				}
			}
		}
	}
	return out
}

// GridEqual reports whether two grids represent the same logical matrix
// within tol, regardless of block size or representation.
func GridEqual(a, b *Grid, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	da, db := a.ToDense(), b.ToDense()
	for i := range da {
		d := da[i] - db[i]
		if d > tol || d < -tol {
			return false
		}
	}
	return true
}

// MulGrid returns the naive sequential product a*b; it is the reference
// implementation used by tests and by the estimator, not the parallel path.
func MulGrid(a, b *Grid) (*Grid, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	if a.bs != b.bs {
		return nil, fmt.Errorf("%w: block sizes %d vs %d", ErrShape, a.bs, b.bs)
	}
	out := NewDenseGrid(a.rows, b.cols, a.bs)
	for bi := 0; bi < a.brows; bi++ {
		for bj := 0; bj < b.bcols; bj++ {
			dst := out.Block(bi, bj).(*DenseBlock)
			for bk := 0; bk < a.bcols; bk++ {
				if err := MulAddInto(dst, a.Block(bi, bk), b.Block(bk, bj)); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// CellwiseGrid applies op element-wise to two grids of identical shape and
// block size.
func CellwiseGrid(op BinOp, a, b *Grid) (*Grid, error) {
	if a.rows != b.rows || a.cols != b.cols || a.bs != b.bs {
		return nil, fmt.Errorf("%w: %dx%d/bs=%d vs %dx%d/bs=%d", ErrShape, a.rows, a.cols, a.bs, b.rows, b.cols, b.bs)
	}
	out := &Grid{rows: a.rows, cols: a.cols, bs: a.bs, brows: a.brows, bcols: a.bcols}
	out.blocks = make([]Block, len(a.blocks))
	for i := range a.blocks {
		blk, err := Cellwise(op, a.blocks[i], b.blocks[i])
		if err != nil {
			return nil, err
		}
		out.blocks[i] = blk
	}
	return out, nil
}

// ScalarGrid applies a block-scalar operation to every block.
func ScalarGrid(op ScalarOp, a *Grid, c float64) *Grid {
	out := &Grid{rows: a.rows, cols: a.cols, bs: a.bs, brows: a.brows, bcols: a.bcols}
	out.blocks = make([]Block, len(a.blocks))
	for i := range a.blocks {
		out.blocks[i] = Scalar(op, a.blocks[i], c)
	}
	return out
}

// SumGrid returns the sum of all elements in the grid.
func SumGrid(g *Grid) float64 {
	s := 0.0
	for _, b := range g.blocks {
		s += Sum(b)
	}
	return s
}

// FrobeniusSqGrid returns the squared Frobenius norm of the grid.
func FrobeniusSqGrid(g *Grid) float64 {
	s := 0.0
	for _, b := range g.blocks {
		s += FrobeniusSq(b)
	}
	return s
}
