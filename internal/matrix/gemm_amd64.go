//go:build amd64

package matrix

// gemmHaveAVX gates the assembly micro-kernel; when false the pure-Go
// gemmMicro2x4 runs instead. Overridable in tests to force either path.
var gemmHaveAVX = cpuSupportsAVX()

// cpuSupportsAVX reports whether the CPU and OS support AVX YMM state.
// Implemented in gemm_amd64.s.
func cpuSupportsAVX() bool

// gemmMicroAVX is the AVX implementation of gemmMicro2x4 (bit-identical
// results). Implemented in gemm_amd64.s.
//
//go:noescape
func gemmMicroAVX(c *float64, ldc int, ap, bp *float64, kw int)
