package matrix

import (
	"fmt"
	"math"
)

// UFunc is a named element-wise unary function. Functions are enumerated
// (rather than arbitrary closures) so programs stay serializable and plans
// deterministic.
type UFunc int

// The element-wise functions supported by DMac programs.
const (
	// FuncSigmoid is 1/(1+e^-x) (logistic regression).
	FuncSigmoid UFunc = iota
	// FuncExp is e^x.
	FuncExp
	// FuncLog is the natural logarithm.
	FuncLog
	// FuncSqrt is the square root.
	FuncSqrt
	// FuncAbs is the absolute value.
	FuncAbs
	// FuncSign is -1/0/+1.
	FuncSign
)

// String names the function.
func (f UFunc) String() string {
	switch f {
	case FuncSigmoid:
		return "sigmoid"
	case FuncExp:
		return "exp"
	case FuncLog:
		return "log"
	case FuncSqrt:
		return "sqrt"
	case FuncAbs:
		return "abs"
	case FuncSign:
		return "sign"
	default:
		return fmt.Sprintf("UFunc(%d)", int(f))
	}
}

// Valid reports whether f is a known function.
func (f UFunc) Valid() bool { return f >= FuncSigmoid && f <= FuncSign }

// Apply evaluates the function at x.
func (f UFunc) Apply(x float64) float64 {
	switch f {
	case FuncSigmoid:
		return 1 / (1 + math.Exp(-x))
	case FuncExp:
		return math.Exp(x)
	case FuncLog:
		return math.Log(x)
	case FuncSqrt:
		return math.Sqrt(x)
	case FuncAbs:
		return math.Abs(x)
	case FuncSign:
		switch {
		case x > 0:
			return 1
		case x < 0:
			return -1
		default:
			return 0
		}
	default:
		panic("matrix: unknown UFunc")
	}
}

// SparsityPreserving reports whether f maps zero to zero, allowing sparse
// blocks to stay sparse.
func (f UFunc) SparsityPreserving() bool {
	switch f {
	case FuncSqrt, FuncAbs, FuncSign:
		return true
	default: // sigmoid(0)=0.5, exp(0)=1, log(0)=-Inf
		return false
	}
}

// ApplyBlock returns a new block with f applied to every cell. Sparse blocks
// stay sparse when f preserves zeros; otherwise the result densifies.
func ApplyBlock(f UFunc, b Block) Block {
	if s, ok := b.(*CSCBlock); ok && f.SparsityPreserving() {
		out := s.Clone().(*CSCBlock)
		for i := range out.Values {
			out.Values[i] = f.Apply(out.Values[i])
		}
		return out
	}
	d := b.Dense()
	out := NewDense(b.Rows(), b.Cols())
	for i, v := range d.Data {
		out.Data[i] = f.Apply(v)
	}
	return out
}

// ApplyGrid applies f to every block of a grid.
func ApplyGrid(f UFunc, g *Grid) *Grid {
	out := NewGrid(g.Rows(), g.Cols(), g.BlockSize())
	for bi := 0; bi < g.BlockRows(); bi++ {
		for bj := 0; bj < g.BlockCols(); bj++ {
			out.SetBlock(bi, bj, ApplyBlock(f, g.Block(bi, bj)))
		}
	}
	return out
}
