// AVX micro-kernel for the packed GEMM (see gemm.go). Guarded at runtime by
// cpuSupportsAVX; the pure-Go gemmMicro2x4 is the fallback.
//
// The kernel deliberately uses separate VMULPD+VADDPD (no FMA): each lane
// performs exactly the scalar kernel's mul-then-add with the same rounding
// and the same k order, so AVX and fallback results are bit-identical.

#include "textflag.h"

// func cpuSupportsAVX() bool
//
// True when the CPU reports AVX and OSXSAVE and the OS has enabled YMM
// state (XCR0 bits 1 and 2).
TEXT ·cpuSupportsAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	MOVL CX, R8
	ANDL $0x18000000, R8 // OSXSAVE (27) | AVX (28)
	CMPL R8, $0x18000000
	JNE  noavx
	XORL CX, CX
	XGETBV
	ANDL $6, AX          // XMM (1) | YMM (2) state enabled
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET

noavx:
	MOVB $0, ret+0(FP)
	RET

// func gemmMicroAVX(c *float64, ldc int, ap, bp *float64, kw int)
//
// c[0:2, 0:4] += Ap * Bp over kw, with Ap a packed gemmMR=2 row panel
// (k-major, stride 2) and Bp a packed gemmNR=4 column panel (k-major,
// stride 4). One YMM accumulator per result row; the k loop is unrolled
// four times. The caller guarantees kw >= 1 and that both full result rows
// are in bounds.
TEXT ·gemmMicroAVX(SB), NOSPLIT, $0-40
	MOVQ c+0(FP), DI
	MOVQ ldc+8(FP), DX
	MOVQ ap+16(FP), SI
	MOVQ bp+24(FP), BX
	MOVQ kw+32(FP), CX

	VXORPD Y0, Y0, Y0 // row 0 accumulator
	VXORPD Y1, Y1, Y1 // row 1 accumulator

	MOVQ CX, R9
	SHRQ $2, R9  // R9 = kw/4 unrolled iterations
	ANDQ $3, CX  // CX = kw%4 tail iterations
	TESTQ R9, R9
	JZ   tail

loop4:
	VMOVUPD      (BX), Y2
	VBROADCASTSD (SI), Y3
	VBROADCASTSD 8(SI), Y4
	VMULPD       Y2, Y3, Y3
	VADDPD       Y3, Y0, Y0
	VMULPD       Y2, Y4, Y4
	VADDPD       Y4, Y1, Y1

	VMOVUPD      32(BX), Y5
	VBROADCASTSD 16(SI), Y6
	VBROADCASTSD 24(SI), Y7
	VMULPD       Y5, Y6, Y6
	VADDPD       Y6, Y0, Y0
	VMULPD       Y5, Y7, Y7
	VADDPD       Y7, Y1, Y1

	VMOVUPD      64(BX), Y2
	VBROADCASTSD 32(SI), Y3
	VBROADCASTSD 40(SI), Y4
	VMULPD       Y2, Y3, Y3
	VADDPD       Y3, Y0, Y0
	VMULPD       Y2, Y4, Y4
	VADDPD       Y4, Y1, Y1

	VMOVUPD      96(BX), Y5
	VBROADCASTSD 48(SI), Y6
	VBROADCASTSD 56(SI), Y7
	VMULPD       Y5, Y6, Y6
	VADDPD       Y6, Y0, Y0
	VMULPD       Y5, Y7, Y7
	VADDPD       Y7, Y1, Y1

	ADDQ $64, SI
	ADDQ $128, BX
	DECQ R9
	JNZ  loop4

	TESTQ CX, CX
	JZ   done

tail:
	VMOVUPD      (BX), Y2
	VBROADCASTSD (SI), Y3
	VBROADCASTSD 8(SI), Y4
	VMULPD       Y2, Y3, Y3
	VADDPD       Y3, Y0, Y0
	VMULPD       Y2, Y4, Y4
	VADDPD       Y4, Y1, Y1
	ADDQ $16, SI
	ADDQ $32, BX
	DECQ CX
	JNZ  tail

done:
	VMOVUPD (DI), Y2
	VADDPD  Y0, Y2, Y2
	VMOVUPD Y2, (DI)
	LEAQ    (DI)(DX*8), DI
	VMOVUPD (DI), Y2
	VADDPD  Y1, Y2, Y2
	VMOVUPD Y2, (DI)
	VZEROUPPER
	RET
