package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// refMulTrans is the trusted oracle for the transpose-fused kernels: the
// At-based generic fallback, which shares no code with the specialized paths.
func refMulTrans(a, b Block, aT, bT bool) *DenseBlock {
	n, _ := transDims(a, aT)
	_, p := transDims(b, bT)
	out := NewDense(n, p)
	mulAddGenericTrans(out, a, b, aT, bT)
	return out
}

// gemmDims is the shape pool for the differential fuzz: empty and degenerate
// shapes, sizes straddling the gemmSmall cutoff, non-multiples of the
// micro-tile, and sizes larger than gemmMC so strip boundaries are crossed.
var gemmDims = []int{0, 1, 2, 3, 5, 17, 33, 40, 69, 70}

// TestMulAddTransDifferential fuzzes every kernel path (DD tiled and small,
// SD, DS, SS, each under all four transpose combinations) against the generic
// oracle on random shapes and densities, rotating the kernel worker count and
// the multiply algorithm so the parallel and Strassen dispatch paths see the
// same shape soup as the serial classical one.
func TestMulAddTransDifferential(t *testing.T) {
	defer SetKernelWorkers(SetKernelWorkers(1))
	rng := rand.New(rand.NewSource(42))
	mk := func(r, c int, kind int) Block {
		switch kind {
		case 0:
			return randDense(rng, r, c)
		default:
			return randSparse(rng, r, c, []float64{0.05, 0.4, 0.9}[rng.Intn(3)])
		}
	}
	for iter := 0; iter < 400; iter++ {
		n := gemmDims[rng.Intn(len(gemmDims))]
		m := gemmDims[rng.Intn(len(gemmDims))]
		p := gemmDims[rng.Intn(len(gemmDims))]
		aKind, bKind := rng.Intn(2), rng.Intn(2)
		aT, bT := rng.Intn(2) == 1, rng.Intn(2) == 1
		ar, ac := n, m
		if aT {
			ar, ac = m, n
		}
		br, bc := m, p
		if bT {
			br, bc = p, m
		}
		a := mk(ar, ac, aKind)
		b := mk(br, bc, bKind)
		SetKernelWorkers([]int{1, 2, 4}[rng.Intn(3)])
		algo := MulAlgo(rng.Intn(2))
		dst := NewDense(n, p)
		if err := MulAddTransAlgoInto(dst, a, b, aT, bT, algo); err != nil {
			t.Fatalf("iter %d (%dx%dx%d aT=%v bT=%v): %v", iter, n, m, p, aT, bT, err)
		}
		want := refMulTrans(a, b, aT, bT)
		if !Equal(dst, want, 1e-9) {
			t.Fatalf("iter %d: kernel (aKind=%d bKind=%d %dx%dx%d aT=%v bT=%v) differs from oracle",
				iter, aKind, bKind, n, m, p, aT, bT)
		}
	}
}

// TestMulAddTransAccumulates verifies the fused kernels accumulate into a
// non-zero destination rather than overwriting it.
func TestMulAddTransAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randDense(rng, 40, 41)
	b := randDense(rng, 42, 41) // b is stored transposed; op(b) is 41x42
	dst := NewDense(40, 42)
	for i := range dst.Data {
		dst.Data[i] = 1
	}
	if err := MulAddTransInto(dst, a, b, false, true); err != nil {
		t.Fatal(err)
	}
	want := refMulTrans(a, b, false, true)
	for i := range want.Data {
		want.Data[i]++
	}
	if !Equal(dst, want, 1e-9) {
		t.Error("fused NT kernel does not accumulate into dst")
	}
}

// TestGemmAVXMatchesGo requires the assembly micro-kernel and the pure-Go
// fallback to be bit-identical: the AVX path uses separate mul/add with the
// scalar kernel's operation order, so every output element must match exactly.
func TestGemmAVXMatchesGo(t *testing.T) {
	if !gemmHaveAVX {
		t.Skip("no AVX support on this machine")
	}
	rng := rand.New(rand.NewSource(99))
	for _, dims := range [][3]int{{40, 40, 40}, {70, 69, 65}, {64, 256, 512}} {
		n, m, p := dims[0], dims[1], dims[2]
		a := randDense(rng, n, m)
		b := randDense(rng, m, p)
		avx := NewDense(n, p)
		if err := MulAddTransInto(avx, a, b, false, false); err != nil {
			t.Fatal(err)
		}
		gemmHaveAVX = false
		goDst := NewDense(n, p)
		err := MulAddTransInto(goDst, a, b, false, false)
		gemmHaveAVX = true
		if err != nil {
			t.Fatal(err)
		}
		for i := range avx.Data {
			if avx.Data[i] != goDst.Data[i] {
				t.Fatalf("%dx%dx%d: AVX and Go kernels differ at %d: %g vs %g",
					n, m, p, i, avx.Data[i], goDst.Data[i])
			}
		}
	}
}

// TestMulAddTransIntoAllocFree verifies the steady-state dense multiply
// allocates nothing: the packing buffers come from the pool.
func TestMulAddTransIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 96, 96)
	b := randDense(rng, 96, 96)
	dst := NewDense(96, 96)
	if avg := testing.AllocsPerRun(10, func() {
		dst.Zero()
		if err := MulAddTransInto(dst, a, b, false, false); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("dense MulAddTransInto allocates %v times per op, want 0", avg)
	}
}

// TestTransDims covers the logical-shape helper.
func TestTransDims(t *testing.T) {
	b := NewDense(3, 5)
	if r, c := transDims(b, false); r != 3 || c != 5 {
		t.Errorf("transDims(false) = %dx%d", r, c)
	}
	if r, c := transDims(b, true); r != 5 || c != 3 {
		t.Errorf("transDims(true) = %dx%d", r, c)
	}
}

func benchDense(n int, seed int64) *DenseBlock {
	rng := rand.New(rand.NewSource(seed))
	d := NewDense(n, n)
	for i := range d.Data {
		d.Data[i] = rng.Float64()*2 - 1
	}
	return d
}

func benchGemm(b *testing.B, n int, f func(dst, x, y *DenseBlock)) {
	x := benchDense(n, 1)
	y := benchDense(n, 2)
	dst := NewDense(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		f(dst, x, y)
	}
	gf := 2 * float64(n) * float64(n) * float64(n) * float64(b.N) / b.Elapsed().Seconds() / 1e9
	b.ReportMetric(gf, "GFLOPS")
}

// BenchmarkMulAddDD measures the tiled dense kernel; compare against
// BenchmarkMulAddDDNaive (the pre-tiling seed kernel) at the same size.
func BenchmarkMulAddDD(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(sizeName(n), func(b *testing.B) {
			benchGemm(b, n, func(dst, x, y *DenseBlock) {
				if err := MulAddTransInto(dst, x, y, false, false); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

func BenchmarkMulAddDDNaive(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(sizeName(n), func(b *testing.B) {
			benchGemm(b, n, func(dst, x, y *DenseBlock) {
				MulAddNaive(dst, x, y)
			})
		})
	}
}

// BenchmarkMulAddDDTransposed measures the fused A^T*B path (reads A by
// stride during packing; no transposed copy).
func BenchmarkMulAddDDTransposed(b *testing.B) {
	for _, n := range []int{256, 512} {
		b.Run(sizeName(n), func(b *testing.B) {
			benchGemm(b, n, func(dst, x, y *DenseBlock) {
				if err := MulAddTransInto(dst, x, y, true, false); err != nil {
					b.Fatal(err)
				}
			})
		})
	}
}

func sizeName(n int) string {
	return "n" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestGemmPackRoundTrip checks the packing layouts directly: every packed
// element must equal the corresponding op(x) element, with zero padding.
func TestGemmPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 11, 9)
	for _, aT := range []bool{false, true} {
		rows, cols := transDims(a, aT)
		iw, kw := rows, cols
		buf := make([]float64, ((iw+gemmMR-1)/gemmMR)*gemmMR*kw)
		gemmPackA(buf, a.Data, a.cols, aT, 0, iw, 0, kw)
		at := func(i, k int) float64 {
			if aT {
				return a.At(k, i)
			}
			return a.At(i, k)
		}
		for ip := 0; ip < iw; ip += gemmMR {
			panel := buf[(ip/gemmMR)*gemmMR*kw:]
			for k := 0; k < kw; k++ {
				for r := 0; r < gemmMR; r++ {
					want := 0.0
					if ip+r < iw {
						want = at(ip+r, k)
					}
					if panel[k*gemmMR+r] != want {
						t.Fatalf("aT=%v: packed A panel %d mismatch at k=%d r=%d", aT, ip/gemmMR, k, r)
					}
				}
			}
		}
	}
	b := randDense(rng, 9, 13)
	for _, bT := range []bool{false, true} {
		rows, cols := transDims(b, bT)
		kw, jw := rows, cols
		buf := make([]float64, ((jw+gemmNR-1)/gemmNR)*gemmNR*kw)
		gemmPackB(buf, b.Data, b.cols, bT, 0, kw, 0, jw)
		bt := func(k, j int) float64 {
			if bT {
				return b.At(j, k)
			}
			return b.At(k, j)
		}
		for jp := 0; jp < jw; jp += gemmNR {
			panel := buf[(jp/gemmNR)*gemmNR*kw:]
			for k := 0; k < kw; k++ {
				for c := 0; c < gemmNR; c++ {
					want := 0.0
					if jp+c < jw {
						want = bt(k, jp+c)
					}
					if panel[k*gemmNR+c] != want {
						t.Fatalf("bT=%v: packed B panel %d mismatch at k=%d c=%d", bT, jp/gemmNR, k, c)
					}
				}
			}
		}
	}
}

// TestMulAddDDSmallNaNSafe: the tiled kernel must propagate NaN/Inf like the
// oracle (no zero-branch shortcuts on the dense path).
func TestMulAddDDNaNPropagation(t *testing.T) {
	a := NewDense(40, 40)
	b := NewDense(40, 40)
	a.Set(0, 0, math.NaN())
	b.Set(0, 0, 1)
	dst := NewDense(40, 40)
	if err := MulAddTransInto(dst, a, b, false, false); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(dst.At(0, 0)) {
		t.Error("NaN not propagated through the dense kernel")
	}
}
