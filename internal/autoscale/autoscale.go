// Package autoscale implements the model-based elastic autoscaler for the
// serve engine pool. It applies the paper's core move — price the options
// with a cost model, pick the cheapest — to capacity instead of execution
// strategy: every reconciliation tick it observes the serve plane (queue
// depth priced in the planner's estimated bytes, queue-wait quantiles, SLO
// burn rates) and computes the engine-pool size that keeps the latency
// objective within budget, then grows or shrinks the pool through the
// Pool interface with hysteresis, cooldown windows and min/max bounds.
//
// The capacity model combines three terms, any of which can demand slots:
//
//   - Backlog: the queued work, priced by the planner's block memory model
//     (workload.BuiltJob.EstimatedBytes summed over queued jobs) and divided
//     by the calibrated model throughput (bytes/sec a slot actually
//     delivers), must clear within the target queue wait.
//   - Utilization: Little's law — the arrival rate times the mean service
//     time, divided by the target per-slot utilization, is the steady-state
//     slot count that keeps queueing bounded.
//   - SLO escalation: when the measured queue-wait p99 or the fast-window
//     SLO burn rate is over budget while work is waiting, the model's answer
//     is overridden upward by one slot — the signal that the model is
//     underestimating.
//
// Scale-up is immediate (subject to a short cooldown); scale-down requires
// the desire to persist for DownStableTicks consecutive ticks and a longer
// cooldown, and retires one slot per decision, so a noisy workload never
// flaps the pool. The clock is injectable and Tick is exported, so the whole
// decision sequence is deterministic under test.
package autoscale

import (
	"math"
	"time"
)

// Config bounds and tunes the controller. Zero values pick serving-appropriate
// defaults.
type Config struct {
	// Min and Max bound the pool (defaults 1 and 8). The controller never
	// resizes outside [Min, Max].
	Min, Max int
	// TargetQueueWaitSec is the latency objective the controller defends:
	// the model sizes the pool so queued work clears within it (default 1s).
	TargetQueueWaitSec float64
	// TargetUtilization is the steady-state per-slot load the utilization
	// term aims for; lower means more headroom (default 0.7).
	TargetUtilization float64
	// Interval is the reconciliation period of the background loop
	// (default 2s). Tick can also be driven directly.
	Interval time.Duration
	// ScaleUpCooldown is the minimum gap between grow decisions (default
	// 1s): long enough that the last grow's slots can absorb queue before
	// the model asks again, short enough that a surge is chased promptly.
	ScaleUpCooldown time.Duration
	// ScaleDownCooldown is the minimum gap between the last scale decision
	// (either direction) and a shrink (default 30s).
	ScaleDownCooldown time.Duration
	// DownStableTicks is how many consecutive ticks the model must want
	// fewer slots before the controller shrinks (default 3).
	DownStableTicks int
	// DecisionLog bounds the grow/shrink decision ring (default 256).
	DecisionLog int
	// Now is the injectable clock (default time.Now).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 8
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.TargetQueueWaitSec <= 0 {
		c.TargetQueueWaitSec = 1
	}
	if c.TargetUtilization <= 0 || c.TargetUtilization > 1 {
		c.TargetUtilization = 0.7
	}
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.ScaleUpCooldown <= 0 {
		c.ScaleUpCooldown = time.Second
	}
	if c.ScaleDownCooldown <= 0 {
		c.ScaleDownCooldown = 30 * time.Second
	}
	if c.DownStableTicks <= 0 {
		c.DownStableTicks = 3
	}
	if c.DecisionLog <= 0 {
		c.DecisionLog = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Signals is one observation of the serve plane, the controller's whole view
// of the world. The cost-model terms price queued work in the same estimated
// bytes admission control uses, so a queue of ten heavy jobs asks for more
// capacity than a queue of ten trivial ones.
type Signals struct {
	// Pool shape.
	SlotsTotal    int `json:"slots_total"`
	SlotsFree     int `json:"slots_free"`
	SlotsDraining int `json:"slots_draining"`
	// Live load.
	QueueDepth int   `json:"queue_depth"`
	Running    int   `json:"running"`
	Submitted  int64 `json:"submitted"` // cumulative; the controller differentiates it into an arrival rate
	// Latency.
	QueueWaitP99Sec float64 `json:"queue_wait_p99_sec"`
	// MeanRunSec is the service's EWMA of per-job run seconds (0 until the
	// first completion).
	MeanRunSec float64 `json:"mean_run_sec"`
	// Cost-model terms: the queued jobs' summed EstimatedBytes, and the
	// calibrated rate at which one slot retires estimated bytes (EWMA of
	// estBytes/runSec over completed jobs; 0 until the first completion).
	QueuedEstBytes   int64   `json:"queued_est_bytes"`
	ModelBytesPerSec float64 `json:"model_bytes_per_sec"`
	// FastBurnRate is the worst per-tenant SLO burn rate over the fast
	// (5-minute) window; >1 means some tenant's error budget is burning
	// faster than sustainable.
	FastBurnRate float64 `json:"fast_burn_rate"`
}

// Active is the pool capacity the controller reasons about: live slots that
// are not draining away.
func (s Signals) Active() int { return s.SlotsTotal - s.SlotsDraining }

// Pool is the resizable engine pool the controller drives. Implementations
// must be safe for concurrent use; serve.Service is the production one.
type Pool interface {
	// Observe returns the current signals.
	Observe() Signals
	// Resize sets the desired pool size. Growing may be lazy (slots are
	// constructed when the dispatcher needs them); shrinking drains
	// gracefully and never cancels a running job.
	Resize(n int) error
}

// Decision is one grow or shrink the controller actually issued, kept in a
// bounded ring for /v1/stats and the bench's decision trace.
type Decision struct {
	At        time.Time `json:"at"`
	Direction string    `json:"direction"` // "up" | "down"
	From      int       `json:"from"`      // active slots before
	To        int       `json:"to"`        // desired slots after
	Desired   int       `json:"desired"`   // the model's unclamped-by-step answer
	Reason    string    `json:"reason"`
	Signals   Signals   `json:"signals"`
}

// Status is the controller's externally visible state (embedded in /v1/stats
// and the exit dump).
type Status struct {
	Min               int     `json:"min"`
	Max               int     `json:"max"`
	Desired           int     `json:"desired"`
	LastReason        string  `json:"last_reason,omitempty"`
	ArrivalRatePerSec float64 `json:"arrival_rate_per_sec"`
	Ups               int64   `json:"ups"`
	Downs             int64   `json:"downs"`
	Holds             int64   `json:"holds"`
	Ticks             int64   `json:"ticks"`
}

// desired computes the model's slot count for one observation. It returns
// the clamped answer and the dominating reason.
func (c Config) desired(sig Signals, arrivalPerSec float64) (int, string) {
	cur := sig.Active()
	svc := sig.MeanRunSec
	if svc <= 0 && sig.ModelBytesPerSec <= 0 {
		// Nothing has completed yet: the model is uncalibrated. Grow only on
		// the direct evidence of a backlog with no free capacity.
		if sig.QueueDepth > 0 && sig.SlotsFree == 0 {
			return clamp(cur+1, c.Min, c.Max), "uncalibrated_backlog"
		}
		return clamp(cur, c.Min, c.Max), "uncalibrated"
	}

	// Utilization term: steady-state slots for the offered load.
	nUtil := 0
	if svc > 0 {
		nUtil = int(math.Ceil(arrivalPerSec * svc / c.TargetUtilization))
	}

	// Backlog term: the model-priced queue must clear within the target
	// wait, on top of the slots the running jobs already occupy.
	var backlogSec float64
	switch {
	case sig.ModelBytesPerSec > 0:
		backlogSec = float64(sig.QueuedEstBytes) / sig.ModelBytesPerSec
	default:
		backlogSec = float64(sig.QueueDepth) * svc
	}
	nBacklog := sig.Running
	if backlogSec > 0 {
		horizon := c.TargetQueueWaitSec
		if svc > horizon {
			horizon = svc // can't clear faster than one service time
		}
		nBacklog = sig.Running + int(math.Ceil(backlogSec/horizon))
	}

	desired, reason := nUtil, "utilization"
	if nBacklog > desired {
		desired, reason = nBacklog, "backlog"
	}

	// SLO escalation: measured latency or burn over budget with work still
	// waiting means the model is underestimating — push one past current.
	if sig.QueueDepth > 0 &&
		(sig.QueueWaitP99Sec > c.TargetQueueWaitSec || sig.FastBurnRate > 1) &&
		desired <= cur {
		desired, reason = cur+1, "slo_burn"
	}

	if clamped := clamp(desired, c.Min, c.Max); clamped != desired {
		return clamped, reason + "_clamped"
	}
	return desired, reason
}

func clamp(n, lo, hi int) int {
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}
