package autoscale

import (
	"sync"
	"time"

	"dmac/internal/obs"
)

// Controller is the reconciliation loop: every Interval (or every explicit
// Tick) it observes the pool, runs the capacity model, and issues at most one
// resize. All methods are safe for concurrent use.
//
// Locking contract: the controller never calls the pool while holding its own
// mutex, and the pool implementation must never call back into the controller
// while holding the lock its Observe/Resize take — serve.Service reads the
// controller's Status before taking the service mutex for exactly this
// reason.
type Controller struct {
	cfg  Config
	pool Pool

	mu          sync.Mutex
	desired     int
	lastScale   time.Time // last grow or shrink (cooldowns anchor here)
	lastUp      time.Time
	belowTicks  int // consecutive ticks the model wanted fewer slots
	lastReason  string
	arrivalEWMA float64
	lastSub     int64
	lastTick    time.Time
	seeded      bool
	decisions   []Decision // ring, newest last
	ups, downs  int64
	holds       int64
	ticks       int64

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	doneCh    chan struct{}

	cDecisions *obs.CounterVec // direction: up | down | hold
}

// New builds a controller over the pool. The metrics registry may be nil.
func New(cfg Config, pool Pool, m *obs.Registry) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:    cfg,
		pool:   pool,
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
	if m != nil {
		c.cDecisions = m.CounterVec("autoscale.decisions", "direction")
	}
	return c
}

// Config returns the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Start launches the background reconciliation loop. Safe to call once;
// tests that drive Tick directly never call it.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		go c.run()
	})
}

// Stop halts the loop and waits for it to exit. Idempotent; a controller
// that was never started stops immediately.
func (c *Controller) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	c.startOnce.Do(func() { close(c.doneCh) }) // never started: nothing to wait out
	<-c.doneCh
}

func (c *Controller) run() {
	defer close(c.doneCh)
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.Tick()
		}
	}
}

// Tick runs one reconciliation: observe, model, and (maybe) resize. Exported
// so tests and alternative drivers can pace it deterministically.
func (c *Controller) Tick() {
	sig := c.pool.Observe()
	now := c.cfg.Now()

	c.mu.Lock()
	c.ticks++
	// Differentiate the cumulative submit counter into an arrival rate and
	// smooth it: new evidence at half weight, so a one-tick burst doesn't
	// whipsaw the pool but a sustained surge shows within a few ticks.
	if c.seeded {
		if dt := now.Sub(c.lastTick).Seconds(); dt > 0 {
			inst := float64(sig.Submitted-c.lastSub) / dt
			c.arrivalEWMA = 0.5*inst + 0.5*c.arrivalEWMA
		}
	} else {
		c.seeded = true
		c.desired = sig.Active()
		c.lastScale = now
	}
	c.lastSub = sig.Submitted
	c.lastTick = now
	arrival := c.arrivalEWMA

	desired, reason := c.cfg.desired(sig, arrival)
	c.lastReason = reason
	cur := sig.Active()

	var resizeTo int // 0 = hold
	var dir string
	switch {
	case desired > cur:
		c.belowTicks = 0
		if now.Sub(c.lastUp) >= c.cfg.ScaleUpCooldown {
			resizeTo, dir = desired, "up"
			c.lastUp = now
			c.lastScale = now
		}
	case desired < cur:
		c.belowTicks++
		if c.belowTicks >= c.cfg.DownStableTicks && now.Sub(c.lastScale) >= c.cfg.ScaleDownCooldown {
			// Retire one slot per decision: scale-down is cheap to repeat
			// and expensive to regret.
			resizeTo, dir = cur-1, "down"
			c.lastScale = now
			c.belowTicks = 0
		}
	default:
		c.belowTicks = 0
	}
	if resizeTo > 0 {
		c.desired = resizeTo
		d := Decision{
			At: now, Direction: dir, From: cur, To: resizeTo,
			Desired: desired, Reason: reason, Signals: sig,
		}
		c.decisions = append(c.decisions, d)
		if len(c.decisions) > c.cfg.DecisionLog {
			c.decisions = c.decisions[len(c.decisions)-c.cfg.DecisionLog:]
		}
		if dir == "up" {
			c.ups++
		} else {
			c.downs++
		}
	} else {
		c.desired = cur
		c.holds++
	}
	c.mu.Unlock()

	if c.cDecisions != nil {
		if resizeTo > 0 {
			c.cDecisions.With(dir).Inc()
		} else {
			c.cDecisions.With("hold").Inc()
		}
	}
	if resizeTo > 0 {
		_ = c.pool.Resize(resizeTo)
	}
}

// Status snapshots the controller's state.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Status{
		Min:               c.cfg.Min,
		Max:               c.cfg.Max,
		Desired:           c.desired,
		LastReason:        c.lastReason,
		ArrivalRatePerSec: c.arrivalEWMA,
		Ups:               c.ups,
		Downs:             c.downs,
		Holds:             c.holds,
		Ticks:             c.ticks,
	}
}

// Decisions returns the recorded grow/shrink decisions, oldest first.
func (c *Controller) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.decisions...)
}
