package autoscale

import (
	"sync"
	"testing"
	"time"

	"dmac/internal/obs"
)

// fakePool is a scripted Pool: tests mutate sig between ticks and record
// every Resize the controller issues. Resize updates the pool shape the way
// the real service's lazy grow would after the dispatcher catches up.
type fakePool struct {
	mu      sync.Mutex
	sig     Signals
	resizes []int
}

func (p *fakePool) Observe() Signals {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sig
}

func (p *fakePool) Resize(n int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.resizes = append(p.resizes, n)
	p.sig.SlotsTotal = n
	p.sig.SlotsDraining = 0
	return nil
}

func (p *fakePool) set(mut func(*Signals)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	mut(&p.sig)
}

// fakeClock is the injectable deterministic clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testConfig(clk *fakeClock) Config {
	return Config{
		Min:                1,
		Max:                8,
		TargetQueueWaitSec: 1,
		TargetUtilization:  0.7,
		ScaleUpCooldown:    time.Second,
		ScaleDownCooldown:  5 * time.Second,
		DownStableTicks:    3,
		Now:                clk.Now,
	}
}

func TestDesiredUncalibrated(t *testing.T) {
	cfg := testConfig(newFakeClock()).withDefaults()

	// Nothing has completed: no growth without direct backlog evidence.
	n, reason := cfg.desired(Signals{SlotsTotal: 2, SlotsFree: 2}, 0)
	if n != 2 || reason != "uncalibrated" {
		t.Fatalf("idle uncalibrated: got (%d, %s), want (2, uncalibrated)", n, reason)
	}
	// Queue with no free slot: grow by one on the direct evidence.
	n, reason = cfg.desired(Signals{SlotsTotal: 2, QueueDepth: 4, Running: 2}, 0)
	if n != 3 || reason != "uncalibrated_backlog" {
		t.Fatalf("backlogged uncalibrated: got (%d, %s), want (3, uncalibrated_backlog)", n, reason)
	}
}

func TestDesiredTerms(t *testing.T) {
	cfg := testConfig(newFakeClock()).withDefaults()
	calibrated := Signals{
		SlotsTotal: 2, SlotsFree: 1, Running: 1,
		MeanRunSec: 0.5, ModelBytesPerSec: 1 << 20,
	}

	// Utilization: 10 arrivals/sec x 0.5s service / 0.7 target = 8 slots.
	n, reason := cfg.desired(calibrated, 10)
	if n != 8 || reason != "utilization" {
		t.Fatalf("utilization: got (%d, %s), want (8, utilization)", n, reason)
	}

	// Backlog: 4 MiB queued at 1 MiB/s per slot must clear inside the 1s
	// target -> 4 slots on top of the 1 running.
	sig := calibrated
	sig.QueueDepth = 4
	sig.QueuedEstBytes = 4 << 20
	n, reason = cfg.desired(sig, 0)
	if n != 5 || reason != "backlog" {
		t.Fatalf("backlog: got (%d, %s), want (5, backlog)", n, reason)
	}

	// SLO escalation: model says hold, but the measured queue-wait p99 is
	// over target with work still waiting -> one past current.
	sig = calibrated
	sig.QueueDepth = 1
	sig.QueueWaitP99Sec = 2.5
	n, reason = cfg.desired(sig, 0)
	if n != 3 || reason != "slo_burn" {
		t.Fatalf("slo p99: got (%d, %s), want (3, slo_burn)", n, reason)
	}
	sig.QueueWaitP99Sec = 0
	sig.FastBurnRate = 1.5
	n, reason = cfg.desired(sig, 0)
	if n != 3 || reason != "slo_burn" {
		t.Fatalf("slo burn: got (%d, %s), want (3, slo_burn)", n, reason)
	}

	// Clamping: demand beyond Max is clamped and flagged.
	n, reason = cfg.desired(calibrated, 100)
	if n != 8 || reason != "utilization_clamped" {
		t.Fatalf("clamp: got (%d, %s), want (8, utilization_clamped)", n, reason)
	}
}

// TestControllerDecisionTrace drives the reconciliation loop tick by tick on
// the fake clock through a surge and a quiet period, pinning the exact resize
// sequence: immediate (cooldown-gated) growth, hysteresis-delayed one-step
// shrink.
func TestControllerDecisionTrace(t *testing.T) {
	clk := newFakeClock()
	pool := &fakePool{sig: Signals{SlotsTotal: 1, SlotsFree: 1}}
	c := New(testConfig(clk), pool, obs.NewRegistry())

	tick := func() {
		clk.Advance(time.Second)
		c.Tick()
	}

	// Quiet, calibrated service: hold at 1.
	pool.set(func(s *Signals) { s.MeanRunSec = 0.1; s.ModelBytesPerSec = 1 << 20 })
	tick()
	tick()
	if got := pool.resizes; len(got) != 0 {
		t.Fatalf("quiet ticks resized: %v", got)
	}

	// Surge: 3 MiB of priced backlog on a busy pool -> grow to 1+3=4.
	pool.set(func(s *Signals) {
		s.SlotsFree = 0
		s.Running = 1
		s.QueueDepth = 6
		s.QueuedEstBytes = 3 << 20
	})
	tick()
	if got := pool.resizes; len(got) != 1 || got[0] != 4 {
		t.Fatalf("surge tick: resizes %v, want [4]", got)
	}

	// Still surging: another grow is allowed once the up-cooldown passes.
	pool.set(func(s *Signals) { s.QueuedEstBytes = 5 << 20; s.QueueDepth = 10; s.Running = 4; s.SlotsFree = 0 })
	tick()
	// Model wants 4 running + 5s of backlog = 9, clamped to Max.
	if got := pool.resizes; len(got) != 2 || got[1] != 8 {
		t.Fatalf("second surge tick: resizes %v, want [4 8]", got)
	}

	// Quiet again: the model wants 1, but a shrink needs DownStableTicks
	// consecutive below-ticks AND the down-cooldown since the last scale.
	pool.set(func(s *Signals) {
		s.QueueDepth = 0
		s.QueuedEstBytes = 0
		s.Running = 0
		s.SlotsFree = s.SlotsTotal
	})
	tick() // below x1 (cooldown also not yet passed)
	tick() // below x2
	tick() // below x3, but last scale was 3s ago < 5s cooldown
	if got := pool.resizes; len(got) != 2 {
		t.Fatalf("shrink before cooldown: resizes %v", got)
	}
	tick() // below x4, 4s — still inside cooldown
	tick() // below x5, 5s since last scale: shrink one slot
	if got := pool.resizes; len(got) != 3 || got[2] != 7 {
		t.Fatalf("first shrink: resizes %v, want [... 7]", got)
	}
	// Next shrink needs the cooldown again (anchored at the last scale).
	tick()
	tick()
	tick()
	tick()
	if got := pool.resizes; len(got) != 3 {
		t.Fatalf("shrink ignored cooldown: resizes %v", got)
	}
	tick() // 5s since the down: next single-step shrink
	if got := pool.resizes; len(got) != 4 || got[3] != 6 {
		t.Fatalf("second shrink: resizes %v, want [... 6]", got)
	}

	// The decision ring recorded exactly the four resizes, in order, with
	// directions and reasons.
	ds := c.Decisions()
	if len(ds) != 4 {
		t.Fatalf("decisions: %d, want 4", len(ds))
	}
	wantDirs := []string{"up", "up", "down", "down"}
	for i, d := range ds {
		if d.Direction != wantDirs[i] {
			t.Errorf("decision %d: direction %s, want %s", i, d.Direction, wantDirs[i])
		}
	}
	if ds[0].Reason != "backlog" {
		t.Errorf("first grow reason %q, want backlog", ds[0].Reason)
	}
	st := c.Status()
	if st.Ups != 2 || st.Downs != 2 {
		t.Errorf("status ups/downs = %d/%d, want 2/2", st.Ups, st.Downs)
	}
	if st.Desired != 6 {
		t.Errorf("status desired = %d, want 6", st.Desired)
	}
}

// TestControllerArrivalRate pins the Submitted-counter differentiation: a
// steady 10 submits per 1s tick converges the arrival EWMA toward 10/s.
func TestControllerArrivalRate(t *testing.T) {
	clk := newFakeClock()
	pool := &fakePool{sig: Signals{SlotsTotal: 1, SlotsFree: 1}}
	c := New(testConfig(clk), pool, nil)
	for i := 0; i < 12; i++ {
		pool.set(func(s *Signals) { s.Submitted += 10 })
		clk.Advance(time.Second)
		c.Tick()
	}
	got := c.Status().ArrivalRatePerSec
	if got < 9.5 || got > 10.5 {
		t.Fatalf("arrival EWMA = %.2f, want ~10", got)
	}
}

func TestControllerStopIdempotent(t *testing.T) {
	pool := &fakePool{sig: Signals{SlotsTotal: 1, SlotsFree: 1}}

	// Never started: Stop returns immediately.
	c := New(Config{Interval: 10 * time.Millisecond}, pool, nil)
	c.Stop()
	c.Stop()

	// Started: Stop halts the loop and is safe to repeat.
	c2 := New(Config{Interval: time.Millisecond}, pool, nil)
	c2.Start()
	time.Sleep(5 * time.Millisecond)
	c2.Stop()
	c2.Stop()
	if c2.Status().Ticks == 0 {
		t.Error("started controller never ticked")
	}
}
