package bench

import (
	"fmt"

	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/workload"
)

// AblationMicro runs two micro-programs constructed to trigger each planner
// heuristic, and reports the communication with the heuristic on and off:
//
//   - pull-up: matrix A is first consumed by a CPMM (which partitions it
//     column-wise) and then by an RMM1 (which broadcasts it); Pull-Up
//     Broadcast (Heuristic 1) rewrites the earlier partition into the shared
//     broadcast plus a local extract, saving |A|. Both consumers are
//     multiplications, so the mul-first decomposition rule cannot already
//     reorder the broadcast ahead (for cell-wise consumers it does, which is
//     exactly why Section 4.2.3 schedules multiplications first);
//   - re-assign: a CPMM product is consumed by a cell-wise operator whose
//     other operand is cached column-partitioned; Re-assignment
//     (Heuristic 2) pins the flexible CPMM output to Col so the consumer
//     reads both operands for free.
func AblationMicro() (pullUp, reassign []AblationRow, err error) {
	const bs = 64

	// Pull-up scenario: AY = A %*% Y (CPMM: A(c) partition),
	// AG = A %*% G (RMM1: A broadcast; G is wide and cached (c)).
	for _, disable := range []bool{false, true} {
		m, err := runMicro(disable, false,
			func(e *engine.Engine) error {
				grids := map[string]*matrix.Grid{
					"A": workload.DenseRandom(1, 200, 600, bs),
					"Y": workload.DenseRandom(2, 600, 4, bs),
					"G": workload.DenseRandom(3, 600, 2000, bs),
					"U": workload.SparseUniform(4, 200, 600, bs, 0.01),
				}
				for name, g := range grids {
					if err := e.Bind(name, g); err != nil {
						return err
					}
				}
				// Warm-up caches G(c) (RMM1 right operand of U %*% G), so
				// only A's traffic varies afterwards.
				warm := expr.NewProgram()
				wg := warm.Var("G", 600, 2000, 1)
				wu := warm.Var("U", 200, 600, 0.01)
				warm.Assign("X", warm.Mul(wu, wg))
				_, err := e.Run(warm, nil)
				return err
			},
			func(p *expr.Program) {
				a := p.Load("A", 200, 600, 1)
				y := p.Var("Y", 600, 4, 1)
				g := p.Var("G", 600, 2000, 1)
				p.Assign("AY", p.Mul(a, y))
				p.Assign("AG", p.Mul(a, g))
			})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: ablation micro pull-up: %w", err)
		}
		name := "DMac (full)"
		if disable {
			name = "DMac w/o Pull-Up Broadcast"
		}
		pullUp = append(pullUp, AblationRow{Config: name, CommBytes: m.CommBytes, ModelSec: m.ModelSeconds})
	}

	// Re-assignment scenario: D = (A %*% B) + C where the multiplication
	// runs as CPMM (tall-thin output) and C is cached column-partitioned;
	// only with Re-assignment can the cell-wise addition read both operands
	// for free.
	for _, disable := range []bool{false, true} {
		m, err := runMicro(false, disable,
			func(e *engine.Engine) error {
				grids := map[string]*matrix.Grid{
					"A": workload.SparseUniform(11, 500, 8000, bs, 0.01),
					"B": workload.DenseRandom(12, 8000, 8, bs),
					"C": workload.DenseRandom(13, 500, 8, bs),
					"U": workload.SparseUniform(14, 500, 500, bs, 0.004),
				}
				for name, g := range grids {
					if err := e.Bind(name, g); err != nil {
						return err
					}
				}
				// Warm-up caches A(c) and B(r) (CPMM operands) and C(c)
				// (RMM1 right operand of U %*% C; U is small enough that
				// broadcasting it clearly beats broadcasting C).
				warm := expr.NewProgram()
				wa := warm.Var("A", 500, 8000, 0.01)
				wb := warm.Var("B", 8000, 8, 1)
				wc := warm.Var("C", 500, 8, 1)
				wu := warm.Var("U", 500, 500, 0.004)
				warm.Assign("AB0", warm.Mul(wa, wb))
				warm.Assign("X", warm.Mul(wu, wc))
				_, err := e.Run(warm, nil)
				return err
			},
			func(p *expr.Program) {
				a := p.Var("A", 500, 8000, 0.01)
				b := p.Var("B", 8000, 8, 1)
				c := p.Var("C", 500, 8, 1)
				p.Assign("D", p.Add(p.Mul(a, b), c))
			})
		if err != nil {
			return nil, nil, fmt.Errorf("bench: ablation micro re-assign: %w", err)
		}
		name := "DMac (full)"
		if disable {
			name = "DMac w/o Re-assignment"
		}
		reassign = append(reassign, AblationRow{Config: name, CommBytes: m.CommBytes, ModelSec: m.ModelSeconds})
	}
	return pullUp, reassign, nil
}

// runMicro sets up an engine with the given ablation flags, runs the warm-up
// via setup, then measures the program built by build.
func runMicro(disablePullUp, disableReassign bool, setup func(*engine.Engine) error, build func(*expr.Program)) (engine.Metrics, error) {
	e := newEngine(engine.DMac, DefaultWorkers, 64)
	e.SetAblation(disablePullUp, disableReassign, false)
	if err := setup(e); err != nil {
		return engine.Metrics{}, err
	}
	p := expr.NewProgram()
	build(p)
	return e.Run(p, nil)
}
