package bench

import (
	"fmt"
	"io"

	"dmac/internal/apps"
	"dmac/internal/engine"
	"dmac/internal/sched"
	"dmac/internal/workload"
)

// Fig9aRow is one dataset pair of Figure 9(a): PageRank per-iteration time.
type Fig9aRow struct {
	Graph            string
	Nodes, Edges     int
	DMacSec, SysSec  float64
	DMacComm, SysCom int64
}

// Fig9aScales are the default scale denominators per graph.
var Fig9aScales = map[string]int{
	"soc-pokec":   1000,
	"cit-Patents": 1000,
	"LiveJournal": 2000,
	"Wikipedia":   8000,
}

// Fig9a reproduces Figure 9(a): average per-iteration PageRank time on the
// four graph datasets, DMac vs SystemML-S. The average skips the first
// iteration (which pays the initial partitioning in both systems), matching
// the paper's steady-state reading.
func Fig9a(scales map[string]int, iterations int) ([]Fig9aRow, error) {
	if scales == nil {
		scales = Fig9aScales
	}
	if iterations < 3 {
		iterations = 3
	}
	var rows []Fig9aRow
	for _, spec := range workload.Graphs {
		denom, ok := scales[spec.Name]
		if !ok {
			continue
		}
		nodes := spec.ScaledNodes(denom)
		bs := sched.ChooseBlockSize(nodes, nodes, DefaultLocalParallelism, DefaultWorkers)
		row := Fig9aRow{Graph: spec.Name}
		for _, planner := range []engine.Planner{engine.DMac, engine.SystemMLS} {
			gen := spec.Generate(denom, bs)
			row.Nodes, row.Edges = gen.Nodes, gen.Edges
			e := newEngine(planner, DefaultWorkers, bs)
			run, err := apps.PageRank(e, gen.Adjacency, iterations, 42)
			if err != nil {
				return nil, fmt.Errorf("bench: fig9a %s %s: %w", spec.Name, planner, err)
			}
			var sec float64
			var comm int64
			for _, m := range run.PerIteration[1:] {
				sec += m.ModelSeconds
				comm += m.CommBytes
			}
			n := float64(len(run.PerIteration) - 1)
			if planner == engine.DMac {
				row.DMacSec, row.DMacComm = sec/n, comm/int64(n)
			} else {
				row.SysSec, row.SysCom = sec/n, comm/int64(n)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteFig9a prints Figure 9(a).
func WriteFig9a(w io.Writer, rows []Fig9aRow) {
	fmt.Fprintln(w, "Figure 9(a): PageRank per-iteration time (modelled seconds, steady state)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.Graph,
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Edges),
			fmt.Sprintf("%.4f", r.DMacSec),
			fmt.Sprintf("%.4f", r.SysSec),
			fmt.Sprintf("%.1fx", r.SysSec/r.DMacSec),
		}
	}
	writeTable(w, []string{"graph", "nodes", "edges", "DMac s", "SystemML-S s", "speedup"}, table)
}

// Fig9bRow is one application bar pair of Figure 9(b): execution time
// normalized to DMac = 1.
type Fig9bRow struct {
	App           string
	DMacSec       float64
	SysSec        float64
	NormalizedSys float64
}

// Fig9b reproduces Figure 9(b): Linear Regression on a synthetic sparse
// matrix, Collaborative Filtering and SVD on Netflix-shaped data, execution
// time normalized to DMac.
func Fig9b() ([]Fig9bRow, error) {
	var rows []Fig9bRow
	run := func(app string, f func(e *engine.Engine) (*apps.Result, error), bs int) error {
		row := Fig9bRow{App: app, DMacSec: -1}
		for _, planner := range []engine.Planner{engine.DMac, engine.SystemMLS} {
			e := newEngine(planner, DefaultWorkers, bs)
			res, err := f(e)
			if err != nil {
				return fmt.Errorf("bench: fig9b %s %s: %w", app, planner, err)
			}
			sec := res.Total().ModelSeconds
			if planner == engine.DMac {
				row.DMacSec = sec
			} else {
				row.SysSec = sec
			}
		}
		row.NormalizedSys = row.SysSec / row.DMacSec
		rows = append(rows, row)
		return nil
	}
	// Linear regression: the paper's V is 1e8 x 1e5 with 1e9 non-zeros
	// (10 per row); the scaled stand-in keeps 10 non-zeros per row.
	const lrRows, lrCols = 20000, 500
	bsLR := sched.ChooseBlockSize(lrRows, lrCols, DefaultLocalParallelism, DefaultWorkers)
	if err := run("LR", func(e *engine.Engine) (*apps.Result, error) {
		v := workload.SparseUniform(31, lrRows, lrCols, bsLR, 10.0/float64(lrCols))
		y := workload.DenseRandom(32, lrRows, 1, bsLR)
		return apps.LinReg(e, v, y, 1e-6, 5, 33)
	}, bsLR); err != nil {
		return nil, err
	}
	// Collaborative filtering on Netflix-shaped ratings.
	movies, users, _ := workload.Netflix.Scaled(40, 64)
	bsCF := sched.ChooseBlockSize(movies, users, DefaultLocalParallelism, DefaultWorkers)
	if err := run("CF", func(e *engine.Engine) (*apps.Result, error) {
		_, _, r := workload.Netflix.Scaled(40, bsCF)
		return apps.CF(e, r)
	}, bsCF); err != nil {
		return nil, err
	}
	// SVD (Lanczos) on the same shape.
	if err := run("SVD", func(e *engine.Engine) (*apps.Result, error) {
		_, _, v := workload.Netflix.Scaled(40, bsCF)
		res, _, err := apps.SVD(e, v, 16, 44)
		return res, err
	}, bsCF); err != nil {
		return nil, err
	}
	return rows, nil
}

// WriteFig9b prints Figure 9(b).
func WriteFig9b(w io.Writer, rows []Fig9bRow) {
	fmt.Fprintln(w, "Figure 9(b): LR / CF / SVD execution time ratio (DMac = 1)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.App,
			"1.00",
			fmt.Sprintf("%.2f", r.NormalizedSys),
			fmt.Sprintf("%.3fs", r.DMacSec),
			fmt.Sprintf("%.3fs", r.SysSec),
		}
	}
	writeTable(w, []string{"app", "DMac", "SystemML-S", "DMac abs", "SystemML-S abs"}, table)
}
