package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"time"

	"dmac/internal/matrix"
)

// Kernel microbenchmarks: single-block multiplication throughput for every
// local kernel path, against the pre-tiling naive kernel as baseline. The
// emitted BENCH_kernels.json is the repository's kernel perf trajectory —
// later PRs regenerate it and diff the numbers.

// KernelPoint is one (kernel, block size) measurement.
type KernelPoint struct {
	// Kernel names the measured path: dd-naive (pre-tiling ikj baseline),
	// dd-tiled, dd-nt / dd-tn (fused transpose GEMM), sd / ds (sparse-dense
	// at ~5% density), dd-par (tiled kernel at Workers kernel workers),
	// dd-strassen (Strassen recursion, eligible sizes only).
	Kernel string `json:"kernel"`
	// Size is the square block side.
	Size int `json:"size"`
	// Workers is the kernel worker count of a dd-par point; zero elsewhere
	// (those paths are measured at one worker).
	Workers int `json:"workers,omitempty"`
	// Reps is the number of timed repetitions.
	Reps int `json:"reps"`
	// NsPerOp is the mean wall time of one block multiplication.
	NsPerOp float64 `json:"ns_per_op"`
	// GFLOPS is the achieved throughput (effective flops for sparse paths).
	GFLOPS float64 `json:"gflops"`
	// Speedup is the ratio of a baseline's NsPerOp to this point's at the
	// same size: the dd-naive baseline for the dense tiled kernels, the
	// one-worker dd-par point for the worker curve, and dd-tiled (classical)
	// for dd-strassen — so a dd-strassen speedup above 1 marks the crossover.
	Speedup float64 `json:"speedup,omitempty"`
}

// KernelReport is the full microbenchmark output.
type KernelReport struct {
	GoOS   string        `json:"goos"`
	GoArch string        `json:"goarch"`
	NumCPU int           `json:"num_cpu"`
	Points []KernelPoint `json:"points"`
}

// kernelSparsity is the density of the sparse operands in the sd/ds paths.
const kernelSparsity = 0.05

// randDense returns a deterministic random dense block.
func randDense(rng *rand.Rand, n int) *matrix.DenseBlock {
	d := matrix.NewDense(n, n)
	for i := range d.Data {
		d.Data[i] = rng.Float64()*2 - 1
	}
	return d
}

// randSparse returns a deterministic random CSC block at kernelSparsity.
func randSparse(rng *rand.Rand, n int) *matrix.CSCBlock {
	nnz := int(kernelSparsity * float64(n) * float64(n))
	coords := make([]matrix.Coord, 0, nnz)
	for k := 0; k < nnz; k++ {
		coords = append(coords, matrix.Coord{
			Row: rng.Intn(n), Col: rng.Intn(n), Val: rng.Float64()*2 - 1,
		})
	}
	return matrix.NewCSC(n, n, coords)
}

// measure times f adaptively: repetitions are scaled so each measurement
// takes roughly 150 ms of wall time, bounded to [3, 1000] reps. The
// reported figure is the *minimum* repetition, not the mean: scheduler and
// frequency noise is strictly additive, and at block sizes where only a few
// repetitions fit the budget a single preempted rep would otherwise skew
// the point by tens of percent.
func measure(f func()) (nsPerOp float64, reps int) {
	f() // warm-up: page in operands, populate the GEMM buffer pool
	t0 := time.Now()
	f()
	per := time.Since(t0)
	if per <= 0 {
		per = time.Nanosecond
	}
	n := int(150 * time.Millisecond / per)
	if n < 3 {
		n = 3
	}
	if n > 1000 {
		n = 1000
	}
	best := time.Duration(math.MaxInt64)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	if best <= 0 {
		best = time.Nanosecond
	}
	return float64(best.Nanoseconds()), n
}

// Kernels runs the kernel microbenchmark suite over the given square block
// sizes and returns the report. The single-path kernels are measured at one
// kernel worker; every count in workerCounts adds a dd-par point per size
// (the multi-core speedup curve), and eligible sizes add a dd-strassen point
// whose speedup against dd-tiled is the classical-vs-Strassen crossover
// table. A nil workerCounts measures the worker curve at 1 only.
func Kernels(sizes []int, workerCounts []int) *KernelReport {
	if len(workerCounts) == 0 {
		workerCounts = []int{1}
	}
	defer matrix.SetKernelWorkers(matrix.SetKernelWorkers(1))
	rep := &KernelReport{GoOS: runtime.GOOS, GoArch: runtime.GOARCH, NumCPU: runtime.NumCPU()}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		a := randDense(rng, n)
		b := randDense(rng, n)
		sa := randSparse(rng, n)
		sb := randSparse(rng, n)
		dst := matrix.NewDense(n, n)
		denseFLOPs := 2 * float64(n) * float64(n) * float64(n)
		sparseFLOPs := 2 * float64(sa.NNZ()) * float64(n)
		mulTrans := func(x, y matrix.Block, xT, yT bool) func() {
			return func() {
				dst.Zero()
				if err := matrix.MulAddTransInto(dst, x, y, xT, yT); err != nil {
					panic(err)
				}
			}
		}
		runs := []struct {
			kernel string
			flops  float64
			f      func()
		}{
			{"dd-naive", denseFLOPs, func() {
				dst.Zero()
				matrix.MulAddNaive(dst, a, b)
			}},
			{"dd-tiled", denseFLOPs, mulTrans(a, b, false, false)},
			{"dd-nt", denseFLOPs, mulTrans(a, b, false, true)},
			{"dd-tn", denseFLOPs, mulTrans(a, b, true, false)},
			{"sd", sparseFLOPs, mulTrans(sa, b, false, false)},
			{"ds", 2 * float64(sb.NNZ()) * float64(n), mulTrans(a, sb, false, false)},
		}
		var naiveNs, tiledNs float64
		for _, r := range runs {
			ns, reps := measure(r.f)
			pt := KernelPoint{
				Kernel:  r.kernel,
				Size:    n,
				Reps:    reps,
				NsPerOp: ns,
				GFLOPS:  r.flops / ns,
			}
			switch r.kernel {
			case "dd-naive":
				naiveNs = ns
			case "dd-tiled", "dd-nt", "dd-tn":
				if r.kernel == "dd-tiled" {
					tiledNs = ns
				}
				if naiveNs > 0 && ns > 0 {
					pt.Speedup = naiveNs / ns
				}
			}
			rep.Points = append(rep.Points, pt)
		}
		// Worker curve: the same tiled multiply at each kernel worker count,
		// speedup against the one-worker dd-tiled measurement above.
		for _, wk := range workerCounts {
			matrix.SetKernelWorkers(wk)
			ns, reps := measure(mulTrans(a, b, false, false))
			matrix.SetKernelWorkers(1)
			rep.Points = append(rep.Points, KernelPoint{
				Kernel:  "dd-par",
				Size:    n,
				Workers: wk,
				Reps:    reps,
				NsPerOp: ns,
				GFLOPS:  denseFLOPs / ns,
				Speedup: tiledNs / ns,
			})
		}
		// Crossover table: the Strassen recursion against the classical tiled
		// kernel, at the sizes where the recursion is eligible at all.
		if matrix.StrassenOK(n, n, n) {
			ns, reps := measure(func() {
				dst.Zero()
				if err := matrix.MulAddTransAlgoInto(dst, a, b, false, false, matrix.MulStrassen); err != nil {
					panic(err)
				}
			})
			rep.Points = append(rep.Points, KernelPoint{
				Kernel:  "dd-strassen",
				Size:    n,
				Reps:    reps,
				NsPerOp: ns,
				GFLOPS:  denseFLOPs / ns, // classical-equivalent throughput
				Speedup: tiledNs / ns,
			})
		}
	}
	return rep
}

// WriteKernels renders the report as an aligned text table.
func WriteKernels(w io.Writer, r *KernelReport) {
	fmt.Fprintf(w, "Kernel microbenchmarks (%s/%s, %d CPU)\n", r.GoOS, r.GoArch, r.NumCPU)
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		speedup := "-"
		if p.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", p.Speedup)
		}
		workers := "-"
		if p.Workers > 0 {
			workers = fmt.Sprintf("%d", p.Workers)
		}
		rows = append(rows, []string{
			p.Kernel,
			fmt.Sprintf("%d", p.Size),
			workers,
			fmt.Sprintf("%.0f", p.NsPerOp),
			fmt.Sprintf("%.2f", p.GFLOPS),
			speedup,
			fmt.Sprintf("%d", p.Reps),
		})
	}
	writeTable(w, []string{"kernel", "size", "workers", "ns/op", "GFLOPS", "speedup", "reps"}, rows)
}

// WriteJSON writes the report as indented JSON (the BENCH_kernels.json
// artifact format).
func (r *KernelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
