package bench

import (
	"fmt"
	"io"

	"dmac/internal/apps"
	"dmac/internal/engine"
	"dmac/internal/sched"
	"dmac/internal/workload"
)

// Fig10Point is one x-position of a Figure 10 plot: per-iteration time of
// both engines at one data size or worker count.
type Fig10Point struct {
	X               float64 // millions of non-zeros (a,b) or workers (c,d)
	DMacSec, SysSec float64
}

// fig10K is the GNMF factor size used in the scalability study.
const fig10K = 16

// runScaling measures the average per-iteration modelled time of GNMF and
// LinReg for one (rows, cols, workers) configuration.
func runScaling(rows, cols, nnzPerRow, workers, iters int) (gnmf, linreg Fig10Point, err error) {
	sparsity := float64(nnzPerRow) / float64(cols)
	bs := sched.ChooseBlockSize(rows, cols, DefaultLocalParallelism, workers)
	x := float64(rows*nnzPerRow) / 1e6
	gnmf = Fig10Point{X: x}
	linreg = Fig10Point{X: x}
	for _, planner := range []engine.Planner{engine.DMac, engine.SystemMLS} {
		// GNMF.
		e := newEngine(planner, workers, bs)
		v := workload.SparseUniform(71, rows, cols, bs, sparsity)
		res, err := apps.GNMF(e, v, fig10K, iters, 72)
		if err != nil {
			return gnmf, linreg, fmt.Errorf("bench: fig10 gnmf: %w", err)
		}
		gsec := perIterSteadyState(res)
		// Linear regression on the same V.
		e2 := newEngine(planner, workers, bs)
		v2 := workload.SparseUniform(71, rows, cols, bs, sparsity)
		y := workload.DenseRandom(73, rows, 1, bs)
		res2, err := apps.LinReg(e2, v2, y, 1e-6, iters, 74)
		if err != nil {
			return gnmf, linreg, fmt.Errorf("bench: fig10 linreg: %w", err)
		}
		lsec := perIterSteadyState(res2)
		if planner == engine.DMac {
			gnmf.DMacSec, linreg.DMacSec = gsec, lsec
		} else {
			gnmf.SysSec, linreg.SysSec = gsec, lsec
		}
	}
	return gnmf, linreg, nil
}

// perIterSteadyState averages the modelled time of all iterations after the
// first (which pays the one-time input partitioning in both systems).
func perIterSteadyState(r *apps.Result) float64 {
	if len(r.PerIteration) <= 1 {
		return r.Total().ModelSeconds
	}
	var s float64
	for _, m := range r.PerIteration[1:] {
		s += m.ModelSeconds
	}
	return s / float64(len(r.PerIteration)-1)
}

// Fig10ab reproduces Figures 10(a) and 10(b): per-iteration time of GNMF and
// LinReg as the number of non-zeros in V grows (columns fixed, rows swept —
// the paper's generator recipe).
func Fig10ab(rowsList []int, cols, nnzPerRow, iters int) (gnmf, linreg []Fig10Point, err error) {
	if len(rowsList) == 0 {
		rowsList = []int{12500, 25000, 50000, 100000}
	}
	if cols <= 0 {
		cols = 1000
	}
	if nnzPerRow <= 0 {
		nnzPerRow = 10
	}
	if iters <= 0 {
		iters = 3
	}
	for _, rows := range rowsList {
		g, l, err := runScaling(rows, cols, nnzPerRow, DefaultWorkers, iters)
		if err != nil {
			return nil, nil, err
		}
		gnmf = append(gnmf, g)
		linreg = append(linreg, l)
	}
	return gnmf, linreg, nil
}

// Fig10cd reproduces Figures 10(c) and 10(d): per-iteration time of GNMF and
// LinReg as the number of workers grows from 4 to 24 on a fixed dataset.
func Fig10cd(workersList []int, rows, cols, nnzPerRow, iters int) (gnmf, linreg []Fig10Point, err error) {
	if len(workersList) == 0 {
		workersList = []int{4, 8, 12, 16, 20, 24}
	}
	if rows <= 0 {
		rows = 50000
	}
	if cols <= 0 {
		cols = 1000
	}
	if nnzPerRow <= 0 {
		nnzPerRow = 10
	}
	if iters <= 0 {
		iters = 3
	}
	for _, workers := range workersList {
		g, l, err := runScaling(rows, cols, nnzPerRow, workers, iters)
		if err != nil {
			return nil, nil, err
		}
		g.X, l.X = float64(workers), float64(workers)
		gnmf = append(gnmf, g)
		linreg = append(linreg, l)
	}
	return gnmf, linreg, nil
}

// WriteFig10 prints one Figure 10 panel.
func WriteFig10(w io.Writer, title, xLabel string, points []Fig10Point) {
	fmt.Fprintln(w, title)
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{
			fmt.Sprintf("%.1f", p.X),
			fmt.Sprintf("%.4f", p.DMacSec),
			fmt.Sprintf("%.4f", p.SysSec),
			fmt.Sprintf("%.1fx", p.SysSec/p.DMacSec),
		}
	}
	writeTable(w, []string{xLabel, "DMac s", "SystemML-S s", "gap"}, rows)
}
