package bench

import (
	"bytes"
	"strings"
	"testing"

	"dmac/internal/obs"
)

// TestTraceBytesMatchNetStats is the observability layer's accounting
// invariant: the byte sums of the trace's "comm" spans equal the bytes the
// instrumented network charged — exactly, over a full PageRank run. Every
// NetStats charge site must emit a matching comm span for this to hold.
func TestTraceBytesMatchNetStats(t *testing.T) {
	res, err := TracedRun("pagerank", 3, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	var spanBytes int64
	var commEvents int
	for _, s := range res.Tracer.Spans() {
		if s.Cat != "comm" {
			continue
		}
		commEvents++
		a, ok := s.Attr("bytes")
		if !ok {
			t.Fatalf("comm span %q has no bytes attribute", s.Name)
		}
		spanBytes += a.Int
	}
	if spanBytes != res.Net.Bytes {
		t.Fatalf("trace comm bytes = %d, NetStats.Bytes = %d (every charge site must trace)",
			spanBytes, res.Net.Bytes)
	}
	if commEvents != res.Net.CommEvents {
		t.Fatalf("trace comm events = %d, NetStats.CommEvents = %d", commEvents, res.Net.CommEvents)
	}
	// The same totals must survive the Chrome trace JSON round trip.
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, res.Tracer.Spans()); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace JSON holds no events")
	}
	sum := obs.Summarize(obs.EventsToSpans(events))
	if sum.TotalBytes != res.Net.Bytes {
		t.Fatalf("round-tripped trace bytes = %d, NetStats.Bytes = %d", sum.TotalBytes, res.Net.Bytes)
	}
}

// TestGNMFCommEventCounts pins the broadcast/shuffle event counts of a fixed
// GNMF plan (3 iterations at 1/100 Netflix scale on 4 workers). A planner or
// runtime change that alters how dependencies are satisfied shows up here as
// a count shift, which is the point: update deliberately, with the change
// that moved them.
func TestGNMFCommEventCounts(t *testing.T) {
	res, err := TracedRun("gnmf", 3, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	const wantBroadcasts, wantShuffles = 6, 11
	if res.Net.Broadcasts != wantBroadcasts {
		t.Errorf("Broadcasts = %d, want %d", res.Net.Broadcasts, wantBroadcasts)
	}
	if res.Net.Shuffles != wantShuffles {
		t.Errorf("Shuffles = %d, want %d", res.Net.Shuffles, wantShuffles)
	}
	if got := res.Net.Broadcasts + res.Net.Shuffles; got != res.Net.CommEvents {
		t.Errorf("Broadcasts+Shuffles = %d, CommEvents = %d (must partition exactly)",
			got, res.Net.CommEvents)
	}
}

// TestTracedRunTimeline checks the human-readable report names a dominant
// communication pattern and renders one row per stage.
func TestTracedRunTimeline(t *testing.T) {
	res, err := TracedRun("pagerank", 2, 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteTraceArtifacts(nil, nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dominant communication:", "stage", "comm kind"} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestTracedRunUnknownApp(t *testing.T) {
	if _, err := TracedRun("nope", 1, 40, 4); err == nil {
		t.Fatal("unknown app accepted")
	}
}
