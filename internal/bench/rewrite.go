package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/obs"
	"dmac/internal/rewrite"
	"dmac/internal/workload"
)

// RewriteRow is one workload of the rewrite A/B experiment: the same program
// executed with the algebraic rewrite pass detached and attached, plus the
// pass's own predictions so the report can compare predicted against
// measured savings.
type RewriteRow struct {
	Workload string `json:"workload"`

	// Measured, summed over all iterations.
	OffModelSec  float64 `json:"off_model_sec"`
	OnModelSec   float64 `json:"on_model_sec"`
	OffCommBytes int64   `json:"off_comm_bytes"`
	OnCommBytes  int64   `json:"on_comm_bytes"`
	OffFLOPs     float64 `json:"off_flops"`
	OnFLOPs      float64 `json:"on_flops"`

	// Predicted by the rewriter's cost model for one rewrite of the program.
	RewritesApplied     int64   `json:"rewrites_applied"`
	PredictedFLOPsSaved float64 `json:"predicted_flops_saved"`
	PredictedBytesSaved int64   `json:"predicted_bytes_saved"`
}

// MeasuredFLOPsSaved is the per-iteration measured FLOP reduction.
func (r RewriteRow) MeasuredFLOPsSaved(iters int) float64 {
	if iters <= 0 {
		iters = 1
	}
	return (r.OffFLOPs - r.OnFLOPs) / float64(iters)
}

// RewriteReport is the JSON artifact of `dmacbench -exp rewrite`.
type RewriteReport struct {
	Iterations int          `json:"iterations"`
	Workers    int          `json:"workers"`
	Rows       []RewriteRow `json:"rows"`
}

type rewriteLeaf struct {
	name       string
	rows, cols int
	sparsity   float64
}

type rewriteCase struct {
	name      string
	blockSize int
	leaves    []rewriteLeaf
	build     func() *expr.Program
}

// rewriteCases are the A/B workloads. The matrix-chain case is the headline:
// a left-associated chain whose interior explodes unless reordered. The
// pushdown case reads a product only transposed, gram is the t(V)V kernel,
// and gnmf-micro is a GNMF H-update step (a regression guard: the rewriter
// only refines sparsity estimates there — structure and measured cost must
// not change).
func rewriteCases() []rewriteCase {
	return []rewriteCase{
		{
			name:      "matrix-chain",
			blockSize: 32,
			leaves: []rewriteLeaf{
				{"A", 768, 24, 1}, {"B", 24, 768, 1}, {"C", 768, 24, 1}, {"D", 24, 96, 1},
			},
			build: func() *expr.Program {
				p := expr.NewProgram()
				a, b := p.Var("A", 768, 24, 1), p.Var("B", 24, 768, 1)
				c, d := p.Var("C", 768, 24, 1), p.Var("D", 24, 96, 1)
				p.Assign("out", p.Mul(p.Mul(p.Mul(a, b), c), d))
				return p
			},
		},
		{
			name:      "transpose-pushdown",
			blockSize: 32,
			leaves: []rewriteLeaf{
				{"A", 512, 32, 1}, {"B", 32, 512, 1}, {"C", 512, 64, 1},
			},
			build: func() *expr.Program {
				p := expr.NewProgram()
				a, b := p.Var("A", 512, 32, 1), p.Var("B", 32, 512, 1)
				c := p.Var("C", 512, 64, 1)
				ab := p.Mul(a, b)
				p.Assign("out", p.Mul(ab.T(), c))
				return p
			},
		},
		{
			name:      "gram",
			blockSize: 32,
			leaves: []rewriteLeaf{
				{"V", 512, 96, 0.1},
			},
			build: func() *expr.Program {
				p := expr.NewProgram()
				v := p.Var("V", 512, 96, 0.1)
				g := p.Mul(v.T(), v)
				p.Sum("gram_sum", g)
				p.Assign("G", g)
				return p
			},
		},
		{
			name:      "gnmf-micro",
			blockSize: 16,
			leaves: []rewriteLeaf{
				{"V", 160, 240, 0.05}, {"W", 160, 12, 1}, {"H", 12, 240, 1},
			},
			build: func() *expr.Program {
				p := expr.NewProgram()
				v := p.Var("V", 160, 240, 0.05)
				w := p.Var("W", 160, 12, 1)
				h := p.Var("H", 12, 240, 1)
				num := p.Mul(w.T(), v)
				den := p.Mul(p.Mul(w.T(), w), h)
				p.Assign("H", p.CellDiv(p.CellMul(h, num), den))
				return p
			},
		},
	}
}

// RunRewrite executes every A/B workload iters times with the rewrite pass
// off and on, verifies both configurations produce the same outputs, and
// reports measured cost next to the rewriter's predictions.
func RunRewrite(iters int) (*RewriteReport, error) {
	if iters <= 0 {
		iters = 3
	}
	rep := &RewriteReport{Iterations: iters, Workers: DefaultWorkers}
	for _, tc := range rewriteCases() {
		row := RewriteRow{Workload: tc.name}
		outputs := make(map[bool]map[string]*matrix.Grid)
		for _, on := range []bool{false, true} {
			reg := obs.NewRegistry()
			e := newEngine(engine.DMac, DefaultWorkers, tc.blockSize)
			e.SetObserver(nil, reg)
			if on {
				e.SetRewriter(rewrite.New())
			}
			seed := int64(301)
			for _, leaf := range tc.leaves {
				var g *matrix.Grid
				if leaf.sparsity < 1 {
					g = workload.SparseUniform(seed, leaf.rows, leaf.cols, tc.blockSize, leaf.sparsity)
				} else {
					g = workload.DenseRandom(seed, leaf.rows, leaf.cols, tc.blockSize)
				}
				if err := e.Bind(leaf.name, g); err != nil {
					return nil, fmt.Errorf("bench: rewrite %s: %w", tc.name, err)
				}
				seed++
			}
			prog := tc.build()
			for it := 0; it < iters; it++ {
				m, err := e.Run(prog, nil)
				if err != nil {
					return nil, fmt.Errorf("bench: rewrite %s (on=%v): %w", tc.name, on, err)
				}
				if on {
					row.OnModelSec += m.ModelSeconds
					row.OnCommBytes += m.CommBytes
					row.OnFLOPs += m.FLOPs
				} else {
					row.OffModelSec += m.ModelSeconds
					row.OffCommBytes += m.CommBytes
					row.OffFLOPs += m.FLOPs
				}
			}
			outputs[on] = make(map[string]*matrix.Grid)
			for _, a := range prog.Assignments() {
				if g, ok := e.Grid(a.Name); ok {
					outputs[on][a.Name] = g
				}
			}
			if on {
				snap := reg.Snapshot()
				row.RewritesApplied = snap.Counters["rewrite.applied"]
				row.PredictedFLOPsSaved = float64(snap.Counters["rewrite.predicted.flops_saved"])
				row.PredictedBytesSaved = snap.Counters["rewrite.predicted.bytes_saved"]
			}
		}
		for name, off := range outputs[false] {
			on, ok := outputs[true][name]
			if !ok || !matrix.GridEqual(off, on, 1e-9) {
				return nil, fmt.Errorf("bench: rewrite %s: output %q differs between off and on runs", tc.name, name)
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// Rewrite runs the A/B experiment, renders the comparison table and
// optionally writes the JSON artifact (BENCH_rewrite.json in CI).
func Rewrite(w io.Writer, iters int, jsonPath string, writeFile func(string, []byte) error) error {
	rep, err := RunRewrite(iters)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# rewrite A/B: %d iterations, %d workers (off = pass detached, on = pass attached)\n",
		rep.Iterations, rep.Workers)
	rows := make([][]string, 0, len(rep.Rows))
	for _, r := range rep.Rows {
		rows = append(rows, []string{
			r.Workload,
			fmt.Sprintf("%.4f", r.OffModelSec),
			fmt.Sprintf("%.4f", r.OnModelSec),
			fmt.Sprintf("%.3f", gb(r.OffCommBytes)),
			fmt.Sprintf("%.3f", gb(r.OnCommBytes)),
			fmt.Sprintf("%d", r.RewritesApplied),
			fmt.Sprintf("%.3g", r.PredictedFLOPsSaved),
			fmt.Sprintf("%.3g", r.MeasuredFLOPsSaved(rep.Iterations)),
		})
	}
	writeTable(w, []string{
		"workload", "off model s", "on model s", "off comm GB", "on comm GB",
		"rewrites", "pred FLOPs saved", "meas FLOPs saved",
	}, rows)
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := writeFile(jsonPath, append(data, '\n')); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}
