package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dmac/internal/autoscale"
	"dmac/internal/dist"
	"dmac/internal/engine"
	"dmac/internal/serve"
	"dmac/internal/workload"
)

// Open-loop load ramp for the elastic autoscaler: unlike the closed-loop
// generator (which politely slows down when the service is saturated, so a
// too-small pool just lowers throughput), an open-loop generator submits on a
// Poisson arrival process whose rate does not care how the service is doing —
// exactly the traffic that makes an undersized fixed pool blow its latency
// objective. The ramp runs warm → 10x surge → cool twice, once with the
// autoscaler on (pool starts at 1) and once with a fixed 1-slot pool, and the
// committed report shows the autoscaled pool absorbing the surge within the
// SLO target while the fixed pool queues its way to multi-second p99s.
//
// Rates are calibrated, not hardcoded: a throwaway 1-slot service measures
// the benchmark job's service time, and the surge rate is set to demand
// several slots' worth of capacity (clamped so the configured MaxSlots can
// still absorb it). Every job gets a unique seed parameter so the job cache
// never short-circuits the work.

// OpenLoopOptions configures the ramp. Zero values pick calibrated defaults.
type OpenLoopOptions struct {
	Workers   int
	BlockSize int
	Seed      int64
	// SurgeFactor is the surge-to-base arrival-rate ratio (default 10).
	SurgeFactor float64
	// MaxSlots bounds the autoscaled pool (default 6); the fixed baseline
	// always runs 1 slot.
	MaxSlots int
	// Phase durations (defaults 4s warm, 6s surge, 5s cool).
	WarmSec, SurgeSec, CoolSec float64
	// PaceCommSec is the real-time pacing per communication primitive
	// (dist.Config.PaceCommLatencySec; default 5ms). Pacing makes job wall
	// time genuine waiting, so pool capacity scales with slots rather than
	// host cores — without it, a CPU-bound job pool cannot beat a 1-slot
	// baseline on a small machine and the ramp demonstrates nothing.
	PaceCommSec float64
	Timeout     time.Duration
}

func (o OpenLoopOptions) withDefaults() OpenLoopOptions {
	if o.Workers <= 0 {
		o.Workers = DefaultWorkers
	}
	if o.BlockSize <= 0 {
		o.BlockSize = chaosBlockSize
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SurgeFactor <= 1 {
		o.SurgeFactor = 10
	}
	if o.MaxSlots <= 1 {
		o.MaxSlots = 6
	}
	if o.WarmSec <= 0 {
		o.WarmSec = 4
	}
	if o.SurgeSec <= 0 {
		o.SurgeSec = 6
	}
	if o.CoolSec <= 0 {
		o.CoolSec = 5
	}
	if o.PaceCommSec <= 0 {
		o.PaceCommSec = 0.005
	}
	if o.Timeout <= 0 {
		o.Timeout = 4 * time.Minute
	}
	return o
}

// openLoopJob is the single benchmark workload: sized for tens-of-millisecond
// service times so the ramp exercises capacity, not arithmetic. The unique
// per-job seed keeps the job cache out of the loop.
func openLoopJob(jobSeed int) (string, workload.Params) {
	return "pagerank", workload.Params{"nodes": 96, "iters": 3, "seed": float64(jobSeed)}
}

// OpenLoopPhase is one ramp phase's aggregate for one run.
type OpenLoopPhase struct {
	Name          string  `json:"name"`
	RatePerSec    float64 `json:"rate_per_sec"`
	DurationSec   float64 `json:"duration_sec"`
	Jobs          int     `json:"jobs"`
	Failed        int     `json:"failed"`
	Rejections    int64   `json:"rejections"`
	LatencyP50Sec float64 `json:"latency_p50_sec"`
	LatencyP95Sec float64 `json:"latency_p95_sec"`
	LatencyP99Sec float64 `json:"latency_p99_sec"`
	PeakSlots     int     `json:"peak_slots"`
}

// OpenLoopDecision is one autoscaler grow/shrink, timestamped relative to the
// run start so the committed trace is reproducible-looking and diffable.
type OpenLoopDecision struct {
	TSec      float64 `json:"t_sec"`
	Direction string  `json:"direction"`
	From      int     `json:"from"`
	To        int     `json:"to"`
	Reason    string  `json:"reason"`
}

// OpenLoopRun is one mode's (autoscaled or fixed) full ramp result.
type OpenLoopRun struct {
	Mode        string          `json:"mode"` // "autoscaled" | "fixed"
	StartSlots  int             `json:"start_slots"`
	PeakSlots   int             `json:"peak_slots"`
	FinalSlots  int             `json:"final_slots"`
	SurgeP99Sec float64         `json:"surge_p99_sec"`
	SLOHeld     bool            `json:"slo_held"`
	Phases      []OpenLoopPhase `json:"phases"`
	// Decisions is the autoscaler's grow/shrink trace (autoscaled run only).
	Decisions []OpenLoopDecision `json:"decisions,omitempty"`
	Ups       int64              `json:"ups,omitempty"`
	Downs     int64              `json:"downs,omitempty"`
}

// OpenLoopReport is the committed BENCH_autoscale.json shape.
type OpenLoopReport struct {
	Config struct {
		Workers         int     `json:"workers"`
		BlockSize       int     `json:"block_size"`
		Seed            int64   `json:"seed"`
		SurgeFactor     float64 `json:"surge_factor"`
		MaxSlots        int     `json:"max_slots"`
		ServiceSecEst   float64 `json:"service_sec_est"`
		BaseRatePerSec  float64 `json:"base_rate_per_sec"`
		SurgeRatePerSec float64 `json:"surge_rate_per_sec"`
		SLOTargetSec    float64 `json:"slo_target_sec"`
	} `json:"config"`
	Autoscaled OpenLoopRun `json:"autoscaled"`
	Fixed      OpenLoopRun `json:"fixed"`
	// Top-level verdicts for one-line jq checks.
	AutoHeldSLO      bool `json:"auto_held_slo"`
	FixedViolatedSLO bool `json:"fixed_violated_slo"`
}

// calibrateServiceSec measures the benchmark job's solo service time on a
// throwaway 1-slot pool (median of three) so arrival rates track the machine
// instead of a hardcoded guess.
func calibrateServiceSec(ctx context.Context, opts OpenLoopOptions) (float64, error) {
	svc, err := serve.NewService(serve.Options{
		Planner:       engine.DMac,
		Cluster:       openLoopCluster(opts),
		BlockSize:     opts.BlockSize,
		Slots:         1,
		QueueCapacity: 4,
		DefaultQuota:  serve.TenantQuota{MaxConcurrent: 2, MaxQueued: 2},
	})
	if err != nil {
		return 0, err
	}
	defer func() {
		stopCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = svc.Stop(stopCtx)
	}()
	var times []float64
	for i := 0; i < 3; i++ {
		name, params := openLoopJob(-1 - i)
		start := time.Now()
		st, err := svc.Submit(serve.JobSpec{Tenant: "calibrate", Workload: name, Params: params})
		if err != nil {
			return 0, err
		}
		fin, err := svc.Wait(ctx, st.ID)
		if err != nil {
			return 0, err
		}
		if fin.State != serve.StateDone {
			return 0, fmt.Errorf("calibration job %s: %s", fin.ID, fin.State)
		}
		times = append(times, time.Since(start).Seconds())
	}
	return percentile(times, 0.5), nil
}

type olPhaseSpec struct {
	name string
	rate float64
	dur  time.Duration
}

// openLoopCluster is the ramp's cluster config: the standard scaled model
// plus real-time comm pacing.
func openLoopCluster(opts OpenLoopOptions) dist.Config {
	cfg := clusterConfig(opts.Workers)
	cfg.PaceCommLatencySec = opts.PaceCommSec
	return cfg
}

// runOpenLoop drives one ramp against one service configuration.
func runOpenLoop(ctx context.Context, opts OpenLoopOptions, mode string, asCfg *autoscale.Config, phases []olPhaseSpec, sloTarget float64) (*OpenLoopRun, error) {
	svc, err := serve.NewService(serve.Options{
		Planner:         engine.DMac,
		Cluster:         openLoopCluster(opts),
		BlockSize:       opts.BlockSize,
		Slots:           1,
		QueueCapacity:   128,
		DefaultQuota:    serve.TenantQuota{MaxConcurrent: 8, MaxQueued: 64, MaxBytes: 1 << 30},
		DefaultDeadline: 2 * time.Minute,
		Autoscale:       asCfg,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		stopCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		_ = svc.Stop(stopCtx)
	}()

	// Seed the run-time and bytes/sec EWMAs (and warm the plan cache) with
	// two uncounted jobs, so the autoscaler's model is calibrated before the
	// ramp starts — mirroring a service that has been up for a while.
	for i := 0; i < 2; i++ {
		name, params := openLoopJob(-100 - i)
		st, err := svc.Submit(serve.JobSpec{Tenant: "warmup", Workload: name, Params: params})
		if err != nil {
			return nil, err
		}
		if _, err := svc.Wait(ctx, st.ID); err != nil {
			return nil, err
		}
	}

	type phaseAgg struct {
		mu         sync.Mutex
		lats       []float64
		failed     int
		rejections int64
	}
	aggs := make([]*phaseAgg, len(phases))
	for i := range aggs {
		aggs[i] = &phaseAgg{}
	}

	// Slot sampler: tracks the pool's size curve so each phase can report its
	// peak. curPhase is the index the arrival loop is currently in.
	var curPhase atomic.Int32
	peaks := make([]atomic.Int32, len(phases))
	var overallPeak atomic.Int32
	samplerDone := make(chan struct{})
	samplerStop := make(chan struct{})
	go func() {
		defer close(samplerDone)
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-samplerStop:
				return
			case <-t.C:
				st := svc.Stats()
				n := int32(st.SlotsTotal)
				if p := curPhase.Load(); p >= 0 && int(p) < len(peaks) {
					if n > peaks[p].Load() {
						peaks[p].Store(n)
					}
				}
				if n > overallPeak.Load() {
					overallPeak.Store(n)
				}
			}
		}
	}()

	start := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))
	var wg sync.WaitGroup
	jobSeq := 0
	for pi, ph := range phases {
		curPhase.Store(int32(pi))
		agg := aggs[pi]
		phaseStart := time.Now()
		for ctx.Err() == nil {
			gap := time.Duration(rng.ExpFloat64() / ph.rate * float64(time.Second))
			remaining := ph.dur - time.Since(phaseStart)
			if gap >= remaining {
				time.Sleep(remaining)
				break
			}
			time.Sleep(gap)
			jobSeq++
			seq := jobSeq
			wg.Add(1)
			go func() {
				defer wg.Done()
				arrival := time.Now()
				name, params := openLoopJob(seq)
				tenant := fmt.Sprintf("tenant-%d", seq%3)
				var st serve.JobStatus
				for {
					var err error
					st, err = svc.Submit(serve.JobSpec{Tenant: tenant, Workload: name, Params: params})
					if err == nil {
						break
					}
					var rej *serve.Rejection
					if errors.As(err, &rej) && rej.Retryable && ctx.Err() == nil {
						agg.mu.Lock()
						agg.rejections++
						agg.mu.Unlock()
						select {
						case <-time.After(rej.RetryAfter):
							continue
						case <-ctx.Done():
						}
					}
					// Non-retryable (or context over): count the job failed at
					// its observed latency so open-loop drops are never silent.
					agg.mu.Lock()
					agg.failed++
					agg.lats = append(agg.lats, time.Since(arrival).Seconds())
					agg.mu.Unlock()
					return
				}
				fin, err := svc.Wait(ctx, st.ID)
				lat := time.Since(arrival).Seconds()
				agg.mu.Lock()
				if err != nil || fin.State != serve.StateDone {
					agg.failed++
				}
				agg.lats = append(agg.lats, lat)
				agg.mu.Unlock()
			}()
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		close(samplerStop)
		<-samplerDone
		return nil, fmt.Errorf("open-loop ramp timed out: %w", err)
	}

	// Let the autoscaler shrink back: poll until the pool is at min (or give
	// up after the down-cooldown has comfortably passed).
	finalSlots := svc.Stats().SlotsTotal
	if asCfg != nil {
		deadline := time.Now().Add(asCfg.ScaleDownCooldown*time.Duration(opts.MaxSlots) + 10*time.Second)
		for time.Now().Before(deadline) && ctx.Err() == nil {
			finalSlots = svc.Stats().SlotsTotal
			if finalSlots <= asCfg.Min {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	close(samplerStop)
	<-samplerDone

	run := &OpenLoopRun{Mode: mode, StartSlots: 1, FinalSlots: finalSlots}
	run.PeakSlots = int(overallPeak.Load())
	for pi, ph := range phases {
		agg := aggs[pi]
		pr := OpenLoopPhase{
			Name:          ph.name,
			RatePerSec:    ph.rate,
			DurationSec:   ph.dur.Seconds(),
			Jobs:          len(agg.lats),
			Failed:        agg.failed,
			Rejections:    agg.rejections,
			LatencyP50Sec: percentile(agg.lats, 0.50),
			LatencyP95Sec: percentile(agg.lats, 0.95),
			LatencyP99Sec: percentile(agg.lats, 0.99),
			PeakSlots:     int(peaks[pi].Load()),
		}
		run.Phases = append(run.Phases, pr)
		if ph.name == "surge" {
			run.SurgeP99Sec = pr.LatencyP99Sec
		}
	}
	run.SLOHeld = run.SurgeP99Sec <= sloTarget
	if asCfg != nil {
		for _, d := range svc.AutoscaleDecisions() {
			run.Decisions = append(run.Decisions, OpenLoopDecision{
				TSec:      d.At.Sub(start).Seconds(),
				Direction: d.Direction,
				From:      d.From,
				To:        d.To,
				Reason:    d.Reason,
			})
		}
		if as := svc.AutoscaleStatus(); as != nil {
			run.Ups, run.Downs = as.Ups, as.Downs
		}
	}
	return run, nil
}

// RunOpenLoop runs the calibrated warm/surge/cool ramp twice (autoscaled,
// then fixed 1-slot) and aggregates the comparison report.
func RunOpenLoop(opts OpenLoopOptions) (*OpenLoopReport, error) {
	opts = opts.withDefaults()
	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	defer cancel()

	svcSec, err := calibrateServiceSec(ctx, opts)
	if err != nil {
		return nil, fmt.Errorf("calibrate: %w", err)
	}
	if svcSec <= 0 {
		svcSec = 0.01
	}
	// Surge demands ~60% of the autoscaled pool's max capacity (clamped to
	// 80 arrivals/sec so tiny service times don't explode the job count);
	// base is the surge divided back by the factor, so a 1-slot pool idles
	// through warm and drowns in surge.
	surgeRate := 0.6 * float64(opts.MaxSlots) / svcSec
	if surgeRate > 80 {
		surgeRate = 80
	}
	baseRate := surgeRate / opts.SurgeFactor
	sloTarget := 20 * svcSec
	if sloTarget < 1 {
		sloTarget = 1
	}
	phases := []olPhaseSpec{
		{"warm", baseRate, time.Duration(opts.WarmSec * float64(time.Second))},
		{"surge", surgeRate, time.Duration(opts.SurgeSec * float64(time.Second))},
		{"cool", baseRate, time.Duration(opts.CoolSec * float64(time.Second))},
	}

	asCfg := &autoscale.Config{
		Min:                1,
		Max:                opts.MaxSlots,
		TargetQueueWaitSec: maxf(0.15, 5*svcSec),
		Interval:           100 * time.Millisecond,
		ScaleUpCooldown:    100 * time.Millisecond,
		ScaleDownCooldown:  3 * time.Second,
		DownStableTicks:    5,
	}
	auto, err := runOpenLoop(ctx, opts, "autoscaled", asCfg, phases, sloTarget)
	if err != nil {
		return nil, fmt.Errorf("autoscaled run: %w", err)
	}
	fixed, err := runOpenLoop(ctx, opts, "fixed", nil, phases, sloTarget)
	if err != nil {
		return nil, fmt.Errorf("fixed run: %w", err)
	}

	rep := &OpenLoopReport{Autoscaled: *auto, Fixed: *fixed}
	rep.Config.Workers = opts.Workers
	rep.Config.BlockSize = opts.BlockSize
	rep.Config.Seed = opts.Seed
	rep.Config.SurgeFactor = opts.SurgeFactor
	rep.Config.MaxSlots = opts.MaxSlots
	rep.Config.ServiceSecEst = svcSec
	rep.Config.BaseRatePerSec = baseRate
	rep.Config.SurgeRatePerSec = surgeRate
	rep.Config.SLOTargetSec = sloTarget
	rep.AutoHeldSLO = auto.SLOHeld
	rep.FixedViolatedSLO = !fixed.SLOHeld
	return rep, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// OpenLoop runs the ramp, prints the comparison tables, and optionally writes
// the JSON report.
func OpenLoop(w io.Writer, opts OpenLoopOptions, jsonPath string, writeFile func(string, []byte) error) error {
	rep, err := RunOpenLoop(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# serve open-loop ramp: base %.1f/s, surge %.1f/s (x%.0f), service ~%.0fms, SLO p99 <= %.2fs\n",
		rep.Config.BaseRatePerSec, rep.Config.SurgeRatePerSec, rep.Config.SurgeFactor,
		1000*rep.Config.ServiceSecEst, rep.Config.SLOTargetSec)
	for _, run := range []OpenLoopRun{rep.Autoscaled, rep.Fixed} {
		fmt.Fprintf(w, "\n## %s (slots %d -> peak %d -> final %d)\n", run.Mode, run.StartSlots, run.PeakSlots, run.FinalSlots)
		var rows [][]string
		for _, ph := range run.Phases {
			rows = append(rows, []string{
				ph.Name,
				fmt.Sprintf("%.1f/s", ph.RatePerSec),
				fmt.Sprintf("%d (%d failed)", ph.Jobs, ph.Failed),
				fmt.Sprintf("%d", ph.Rejections),
				fmt.Sprintf("%.4f / %.4f / %.4f s", ph.LatencyP50Sec, ph.LatencyP95Sec, ph.LatencyP99Sec),
				fmt.Sprintf("%d", ph.PeakSlots),
			})
		}
		writeTable(w, []string{"phase", "rate", "jobs", "rejections", "latency p50/p95/p99", "peak slots"}, rows)
		if len(run.Decisions) > 0 {
			fmt.Fprintf(w, "decisions (%d up, %d down):\n", run.Ups, run.Downs)
			for _, d := range run.Decisions {
				fmt.Fprintf(w, "  t=%6.2fs %-4s %d -> %d (%s)\n", d.TSec, d.Direction, d.From, d.To, d.Reason)
			}
		}
	}
	fmt.Fprintf(w, "\nauto held SLO: %v; fixed violated SLO: %v (surge p99 %.3fs vs %.3fs, target %.2fs)\n",
		rep.AutoHeldSLO, rep.FixedViolatedSLO, rep.Autoscaled.SurgeP99Sec, rep.Fixed.SurgeP99Sec, rep.Config.SLOTargetSec)
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := writeFile(jsonPath, append(data, '\n')); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}
