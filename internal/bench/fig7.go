package bench

import (
	"fmt"
	"io"

	"dmac/internal/matrix"
	"dmac/internal/sched"
	"dmac/internal/workload"
)

// Fig7Row is one dataset bar pair of Figure 7: peak memory of the In-Place
// and Buffer implementations of the local block-based multiplication.
type Fig7Row struct {
	Graph        string
	Nodes, Edges int
	InPlacePeak  int64
	BufferPeak   int64
}

// Fig7Scales holds the default per-dataset scale denominators; Wikipedia is
// scaled harder so the dense product stays within a single machine, which is
// itself the point the paper makes (Buffer cannot finish Wikipedia at all).
var Fig7Scales = map[string]int{
	"soc-pokec":   4000,
	"cit-Patents": 4000,
	"LiveJournal": 4000,
	"Wikipedia":   12000,
}

// Fig7 reproduces Figure 7: multiply each graph's adjacency matrix with
// itself using both local aggregation strategies and record the peak block
// memory (analytic accounting, Section 5.3).
func Fig7(scales map[string]int) ([]Fig7Row, error) {
	if scales == nil {
		scales = Fig7Scales
	}
	var rows []Fig7Row
	for _, spec := range workload.Graphs {
		denom, ok := scales[spec.Name]
		if !ok {
			continue
		}
		// Six block-columns along the inner dimension gives the Buffer
		// strategy a realistic number of intermediates per result block.
		nodes := spec.ScaledNodes(denom)
		bs := (nodes + 5) / 6
		gen := spec.Generate(denom, bs)
		row := Fig7Row{Graph: spec.Name, Nodes: gen.Nodes, Edges: gen.Edges}
		for _, strategy := range []sched.MulStrategy{sched.InPlace, sched.Buffer} {
			mem := sched.NewMemTracker()
			exec := sched.NewExecutor(DefaultLocalParallelism, mem)
			// The inputs are resident during the multiplication.
			mem.Add(2 * gen.Adjacency.MemBytes())
			if _, err := exec.Mul(gen.Adjacency, gen.Adjacency, strategy); err != nil {
				return nil, fmt.Errorf("bench: fig7 %s %s: %w", spec.Name, strategy, err)
			}
			if strategy == sched.InPlace {
				row.InPlacePeak = mem.Peak()
			} else {
				row.BufferPeak = mem.Peak()
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteFig7 prints the figure as a table.
func WriteFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7: In-Place vs Buffer peak memory (adjacency self-multiplication)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		ratio := float64(r.BufferPeak) / float64(r.InPlacePeak)
		table[i] = []string{
			r.Graph,
			fmt.Sprintf("%d", r.Nodes),
			fmt.Sprintf("%d", r.Edges),
			fmt.Sprintf("%.3f", gb(r.InPlacePeak)),
			fmt.Sprintf("%.3f", gb(r.BufferPeak)),
			fmt.Sprintf("%.1fx", ratio),
		}
	}
	writeTable(w, []string{"graph", "nodes", "edges", "in-place GB", "buffer GB", "buffer/in-place"}, table)
}

// Fig7DenseProductBytes reports the dense footprint of the product for a
// scaled graph, used in reports to show why Buffer fails on Wikipedia.
func Fig7DenseProductBytes(name string, denom int) int64 {
	spec, ok := workload.GraphByName(name)
	if !ok {
		return 0
	}
	n := spec.ScaledNodes(denom)
	return matrix.DenseMemBytes(n, n)
}
