// Package bench is the experiment harness: for every table and figure in the
// paper's evaluation (Section 6) it provides a function that regenerates the
// corresponding rows or series on the simulated substrate, plus ablations of
// the planner's design choices. The cmd/dmacbench tool and the repository's
// bench_test.go both drive these functions.
//
// Reported execution times are the deterministic modelled times of the
// simulated cluster (compute spread over workers and threads plus network
// transfer and shuffle latency); communication is the exact byte count the
// instrumented network moved. Dataset scales are reduced from the paper's
// (see internal/workload); the comparisons preserve who wins and by roughly
// what factor, not absolute seconds.
package bench

import (
	"fmt"
	"io"
	"strings"

	"dmac/internal/dist"
	"dmac/internal/engine"
)

// Defaults mirroring the paper's 4-node cluster with 8-way local
// parallelism.
const (
	DefaultWorkers          = 4
	DefaultLocalParallelism = 8
)

// Time-model calibration constants (see dist.ScaledConfig for the
// rationale). All engines and all baselines use the same constants, so
// every comparison is internally consistent.
var scaledDefaults = dist.ScaledConfig(DefaultWorkers, DefaultLocalParallelism)

// Calibrated constants shared with the Table 4 baselines.
var (
	ModelFlopsPerSecPerThread = scaledDefaults.FlopsPerSecPerThread
	ModelBandwidthBytesPerSec = scaledDefaults.BandwidthBytesPerSec
	ModelShuffleLatencySec    = scaledDefaults.ShuffleLatencySec
)

func clusterConfig(workers int) dist.Config {
	return dist.ScaledConfig(workers, DefaultLocalParallelism)
}

func newEngine(p engine.Planner, workers, blockSize int) *engine.Engine {
	return engine.New(p, clusterConfig(workers), blockSize)
}

// gb converts bytes to gigabytes for report tables.
func gb(b int64) float64 { return float64(b) / 1e9 }

// writeTable renders a simple aligned text table.
func writeTable(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}
