package bench

import (
	"context"
	"testing"
)

// TestCheckpointSweepShapes asserts the qualitative trade-off the experiment
// reports: denser checkpointing replays fewer stages at higher snapshot
// cost, the lineage-only baseline writes nothing, and every configuration
// recovers to bit-identical ranks.
func TestCheckpointSweepShapes(t *testing.T) {
	intervals := []int{0, 2, 1}
	rows, killStage, err := CheckpointSweep(context.Background(), t.TempDir(), intervals, 3)
	if err != nil {
		t.Fatal(err)
	}
	if killStage < 2 {
		t.Fatalf("kill stage %d, want >= 2", killStage)
	}
	if len(rows) != len(intervals) {
		t.Fatalf("rows = %d, want %d", len(rows), len(intervals))
	}
	for _, r := range rows {
		if !r.Match {
			t.Errorf("interval %d: ranks diverged from the fault-free run", r.Interval)
		}
		if r.Retries == 0 {
			t.Errorf("interval %d: the scripted kill never fired", r.Interval)
		}
	}
	off, every2, every1 := rows[0], rows[1], rows[2]
	if off.CheckpointKB != 0 || off.StagesReplayed != 0 {
		t.Errorf("lineage-only row wrote %v KB, replayed %d stages; want zero both",
			off.CheckpointKB, off.StagesReplayed)
	}
	if every1.CheckpointKB <= every2.CheckpointKB {
		t.Errorf("interval 1 wrote %v KB, not above interval 2's %v KB",
			every1.CheckpointKB, every2.CheckpointKB)
	}
	if every1.StagesReplayed > every2.StagesReplayed {
		t.Errorf("interval 1 replayed %d stages, more than interval 2's %d",
			every1.StagesReplayed, every2.StagesReplayed)
	}
	if every1.StagesReplayed >= killStage-1 {
		t.Errorf("interval 1 replayed %d stages, not below the full lineage %d",
			every1.StagesReplayed, killStage-1)
	}
}
