package bench

import (
	"context"
	"fmt"
	"io"
	"path/filepath"

	"dmac/internal/apps"
	"dmac/internal/dist"
	"dmac/internal/engine"
	"dmac/internal/matrix"
	"dmac/internal/workload"
)

// CheckpointSweepRow is one row of the recovery-cost-vs-checkpoint-interval
// experiment: PageRank under a fixed fault plan, one run per interval.
type CheckpointSweepRow struct {
	// Interval is the checkpoint interval in stages; 0 runs without
	// checkpointing, so recovery replays the full lineage.
	Interval int
	// Retries counts stage attempts repeated after the injected failures.
	Retries int
	// StagesReplayed is the recomputation the recovery paid: stages re-run
	// between the restored snapshot (or the run's start) and the failure.
	StagesReplayed int
	// CheckpointKB is the durability cost: snapshot bytes written.
	CheckpointKB float64
	// RecoveryBytes is the communication spent re-partitioning the dead
	// worker's blocks.
	RecoveryBytes int64
	// ModelSec is the modelled run time, recovery included.
	ModelSec float64
	// Match reports bit-identical final ranks vs the fault-free run.
	Match bool
}

// CheckpointSweep measures recovery cost against checkpoint interval: the
// chaos harness's PageRank workload runs under a fixed FaultPlan (a boundary
// kill of worker 1 at the last stage of the iteration plan) once per
// interval, checkpointing into its own subdirectory of dir. It returns the
// rows and the stage the kill targets. Interval 0 is the lineage-only
// baseline the paper-style trade-off is measured against.
func CheckpointSweep(ctx context.Context, dir string, intervals []int, iters int) ([]CheckpointSweepRow, int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runPR := func(e *engine.Engine) (*apps.Result, error) {
		adj := workload.PowerLawGraph(2, 28, 3, chaosBlockSize)
		return apps.PageRank(e, adj, iters, 11)
	}
	// Fault-free baseline: reference ranks, plus the stage structure the
	// kill must target. Iteration plans can differ while session schemes
	// stabilize, so the kill targets the last stage every iteration has.
	base := newEngine(engine.DMac, DefaultWorkers, chaosBlockSize)
	base.SetBaseContext(ctx)
	bres, err := runPR(base)
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint sweep baseline: %w", err)
	}
	killStage := bres.PerIteration[0].Stages
	for _, m := range bres.PerIteration {
		if m.Stages < killStage {
			killStage = m.Stages
		}
	}
	if killStage < 2 {
		return nil, 0, fmt.Errorf("checkpoint sweep: PageRank plan has %d stages, need >= 2", killStage)
	}
	wantRank, ok := base.Grid("rank")
	if !ok {
		return nil, 0, fmt.Errorf("checkpoint sweep: baseline has no rank output")
	}
	faults := dist.FaultPlan{Events: []dist.FaultEvent{
		{Stage: killStage, Worker: 1, Attempt: 0, Kind: dist.FaultKillBoundary},
	}}
	if err := faults.Validate(); err != nil {
		return nil, 0, fmt.Errorf("checkpoint sweep: %w", err)
	}
	var rows []CheckpointSweepRow
	for _, interval := range intervals {
		if interval < 0 {
			return nil, 0, fmt.Errorf("checkpoint sweep: negative interval %d", interval)
		}
		cfg := clusterConfig(DefaultWorkers)
		cfg.Faults = faults
		e := engine.New(engine.DMac, cfg, chaosBlockSize)
		e.SetBaseContext(ctx)
		if interval > 0 {
			sub := filepath.Join(dir, fmt.Sprintf("interval-%d", interval))
			if err := e.SetCheckpoint(sub, engine.CheckpointPolicy{Interval: interval}); err != nil {
				return nil, 0, err
			}
		}
		res, err := runPR(e)
		if err != nil {
			return nil, 0, fmt.Errorf("checkpoint sweep interval %d: %w", interval, err)
		}
		got, gok := e.Grid("rank")
		t := res.Total()
		rows = append(rows, CheckpointSweepRow{
			Interval:       interval,
			Retries:        t.Retries,
			StagesReplayed: t.StagesReplayed,
			CheckpointKB:   float64(t.CheckpointBytes) / 1e3,
			RecoveryBytes:  t.RecoveryBytes,
			ModelSec:       t.ModelSeconds,
			Match:          gok && matrix.GridEqual(got, wantRank, 0),
		})
	}
	return rows, killStage, nil
}

// WriteCheckpointSweep renders the sweep as a report table.
func WriteCheckpointSweep(w io.Writer, killStage int, rows []CheckpointSweepRow) {
	fmt.Fprintf(w, "Recovery cost vs checkpoint interval: PageRank, boundary kill of worker 1 at stage %d\n\n", killStage)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		interval := fmt.Sprintf("%d", r.Interval)
		if r.Interval == 0 {
			interval = "off"
		}
		out = append(out, []string{
			interval,
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.StagesReplayed),
			fmt.Sprintf("%.1f", r.CheckpointKB),
			fmt.Sprintf("%d", r.RecoveryBytes),
			fmt.Sprintf("%.4f", r.ModelSec),
			fmt.Sprintf("%v", r.Match),
		})
	}
	writeTable(w, []string{"interval", "retries", "replayed", "ckpt KB", "recovery B", "model s", "bit-identical"}, out)
}
