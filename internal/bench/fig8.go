package bench

import (
	"fmt"
	"io"
	"time"

	"dmac/internal/sched"
	"dmac/internal/workload"
)

// Fig8Point is one x-position of Figure 8: execution time and memory of the
// local blocked self-multiplication at one block size.
type Fig8Point struct {
	BlockSize int
	// WallSec is the measured time of the real computation (single host).
	WallSec float64
	// ModelSec is the deterministic time model: work divided by the
	// effective parallelism min(tasks, K*L) plus a per-task overhead — the
	// two mechanisms behind the U-shape of Figure 8(a).
	ModelSec float64
	// PeakMem is the analytic peak block memory (Eq. 2 accounting).
	PeakMem int64
}

// fig8TaskOverheadSec is the fixed scheduling/footprint cost per task in the
// Figure 8 time model; small blocks create many tasks and pay it often.
const fig8TaskOverheadSec = 20e-6

// Fig8 reproduces Figure 8 for one graph: sweep the block size, multiply
// the adjacency matrix with itself, and record time and peak memory. It
// also returns the Eq. 3 threshold m* = sqrt(M*N/(L*K)) for the dataset.
func Fig8(graphName string, scaleDenominator int, blockSizes []int) ([]Fig8Point, float64, error) {
	spec, ok := workload.GraphByName(graphName)
	if !ok {
		return nil, 0, fmt.Errorf("bench: unknown graph %q", graphName)
	}
	nodes := spec.ScaledNodes(scaleDenominator)
	threshold := sched.BlockSizeBound(nodes, nodes, DefaultLocalParallelism, DefaultWorkers)
	if len(blockSizes) == 0 {
		for _, f := range []int{24, 12, 8, 6, 4, 3, 2, 1} {
			blockSizes = append(blockSizes, nodes/f)
		}
	}
	var points []Fig8Point
	for _, bs := range blockSizes {
		if bs < 1 || bs > nodes {
			continue
		}
		adj := workload.PowerLawGraph(spec.Seed, nodes, spec.AvgDegree(), bs)
		mem := sched.NewMemTracker()
		exec := sched.NewExecutor(DefaultLocalParallelism, mem)
		mem.Add(2 * adj.MemBytes())
		start := time.Now()
		out, err := exec.Mul(adj, adj, sched.InPlace)
		if err != nil {
			return nil, 0, fmt.Errorf("bench: fig8 bs=%d: %w", bs, err)
		}
		wall := time.Since(start).Seconds()
		tasks := out.BlockRows() * out.BlockCols()
		slots := DefaultWorkers * DefaultLocalParallelism
		eff := tasks
		if eff > slots {
			eff = slots
		}
		// Work estimate from the actual structure: each non-zero of the left
		// operand meets avgDegree matches on the right.
		flops := 2 * float64(adj.NNZ()) * spec.AvgDegree()
		model := flops/(float64(eff)*ModelFlopsPerSecPerThread) +
			float64(tasks)*fig8TaskOverheadSec/float64(slots)
		points = append(points, Fig8Point{BlockSize: bs, WallSec: wall, ModelSec: model, PeakMem: mem.Peak()})
	}
	return points, threshold, nil
}

// WriteFig8 prints the figure as a table.
func WriteFig8(w io.Writer, graph string, points []Fig8Point, threshold float64) {
	fmt.Fprintf(w, "Figure 8: block size sweep on %s (Eq. 3 threshold m* = %.0f)\n", graph, threshold)
	rows := make([][]string, len(points))
	for i, p := range points {
		rows[i] = []string{
			fmt.Sprintf("%d", p.BlockSize),
			fmt.Sprintf("%.4f", p.ModelSec),
			fmt.Sprintf("%.4f", p.WallSec),
			fmt.Sprintf("%.4f", gb(p.PeakMem)),
		}
	}
	writeTable(w, []string{"block size", "model s", "wall s", "peak GB"}, rows)
}
