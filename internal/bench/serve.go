package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dmac/internal/engine"
	"dmac/internal/serve"
	"dmac/internal/workload"
)

// ServeOptions configures the closed-loop serve load generator: K tenants
// each run a worker that keeps M jobs' worth of demand against an in-process
// Service, drawing from a mixed workload table. Closed-loop means every
// tenant has at most its quota in flight and submits the next job when one
// finishes (retrying after the hinted backoff on rejection), which is the
// steady-state traffic shape the admission controller is designed for.
type ServeOptions struct {
	Tenants       int
	JobsPerTenant int
	Slots         int
	Workers       int
	BlockSize     int
	Seed          int64
	Timeout       time.Duration
}

func (o ServeOptions) withDefaults() ServeOptions {
	if o.Tenants <= 0 {
		o.Tenants = 3
	}
	if o.JobsPerTenant <= 0 {
		o.JobsPerTenant = 8
	}
	if o.Slots <= 0 {
		o.Slots = 3
	}
	if o.Workers <= 0 {
		o.Workers = DefaultWorkers
	}
	if o.BlockSize <= 0 {
		o.BlockSize = chaosBlockSize
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
	return o
}

// serveMix is the workload table the load generator draws from — one entry
// per registered workload, sized to keep single-job latency in the tens of
// milliseconds so a bench run exercises scheduling, not arithmetic.
var serveMix = []struct {
	workload string
	params   workload.Params
}{
	{"pagerank", workload.Params{"nodes": 96, "iters": 3}},
	{"gram", workload.Params{"rows": 48, "cols": 32}},
	{"blend", workload.Params{"n": 48, "k": 8}},
}

// ServeReport is the committed BENCH_serve.json shape.
type ServeReport struct {
	Config struct {
		Tenants       int   `json:"tenants"`
		JobsPerTenant int   `json:"jobs_per_tenant"`
		Slots         int   `json:"slots"`
		Workers       int   `json:"workers"`
		BlockSize     int   `json:"block_size"`
		Seed          int64 `json:"seed"`
	} `json:"config"`
	Jobs          int     `json:"jobs"`
	Failed        int     `json:"failed"`
	Rejections    int64   `json:"rejections"`
	RejectionRate float64 `json:"rejection_rate"`
	WallSec       float64 `json:"wall_sec"`
	ThroughputJPS float64 `json:"throughput_jobs_per_sec"`

	LatencyP50Sec float64 `json:"latency_p50_sec"`
	LatencyP95Sec float64 `json:"latency_p95_sec"`
	LatencyP99Sec float64 `json:"latency_p99_sec"`

	QueueWaitP50Sec  float64 `json:"queue_wait_p50_sec"`
	QueueWaitP95Sec  float64 `json:"queue_wait_p95_sec"`
	QueueWaitP99Sec  float64 `json:"queue_wait_p99_sec"`
	QueueWaitMeanSec float64 `json:"queue_wait_mean_sec"`

	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
	JobCacheHits    int64 `json:"job_cache_hits"`
}

// RunServe drives the closed-loop load and aggregates the report.
func RunServe(opts ServeOptions) (*ServeReport, error) {
	opts = opts.withDefaults()
	svc, err := serve.NewService(serve.Options{
		Planner:       engine.DMac,
		Cluster:       clusterConfig(opts.Workers),
		BlockSize:     opts.BlockSize,
		Slots:         opts.Slots,
		QueueCapacity: opts.Tenants * 4,
		DefaultQuota:  serve.TenantQuota{MaxConcurrent: 2, MaxQueued: 2},
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	defer cancel()
	defer func() {
		stopCtx, stopCancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer stopCancel()
		_ = svc.Stop(stopCtx)
	}()

	type sample struct {
		latency float64
		failed  bool
	}
	var mu sync.Mutex
	var samples []sample
	var rejections int64

	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, opts.Tenants)
	for t := 0; t < opts.Tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(t)))
			tenant := fmt.Sprintf("tenant-%d", t)
			for j := 0; j < opts.JobsPerTenant; j++ {
				mix := serveMix[rng.Intn(len(serveMix))]
				params := workload.Params{"seed": float64(rng.Intn(4))}
				for k, v := range mix.params {
					params[k] = v
				}
				submitted := time.Now()
				var st serve.JobStatus
				for {
					var err error
					st, err = svc.Submit(serve.JobSpec{
						Tenant:   tenant,
						Workload: mix.workload,
						Params:   params,
						Priority: rng.Intn(3),
					})
					if err == nil {
						break
					}
					var rej *serve.Rejection
					if errors.As(err, &rej) && rej.Retryable && ctx.Err() == nil {
						mu.Lock()
						rejections++
						mu.Unlock()
						select {
						case <-time.After(rej.RetryAfter):
						case <-ctx.Done():
							errCh <- ctx.Err()
							return
						}
						continue
					}
					errCh <- fmt.Errorf("tenant %s: %w", tenant, err)
					return
				}
				fin, err := svc.Wait(ctx, st.ID)
				if err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				samples = append(samples, sample{
					latency: time.Since(submitted).Seconds(),
					failed:  fin.State != serve.StateDone,
				})
				mu.Unlock()
			}
		}(t)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	rep := &ServeReport{}
	rep.Config.Tenants = opts.Tenants
	rep.Config.JobsPerTenant = opts.JobsPerTenant
	rep.Config.Slots = opts.Slots
	rep.Config.Workers = opts.Workers
	rep.Config.BlockSize = opts.BlockSize
	rep.Config.Seed = opts.Seed
	rep.Jobs = len(samples)
	rep.WallSec = wall
	if wall > 0 {
		rep.ThroughputJPS = float64(len(samples)) / wall
	}
	var lats []float64
	for _, s := range samples {
		if s.failed {
			rep.Failed++
		}
		lats = append(lats, s.latency)
	}
	// Client-observed latency includes submission retries the server can't
	// see, so it stays a client-side percentile; queue-wait percentiles come
	// from the service's own histogram quantiles — the same numbers /v1/stats
	// serves — instead of being recomputed from raw samples here.
	rep.LatencyP50Sec = percentile(lats, 0.50)
	rep.LatencyP95Sec = percentile(lats, 0.95)
	rep.LatencyP99Sec = percentile(lats, 0.99)
	stats := svc.Stats()
	rep.QueueWaitP50Sec = stats.QueueWaitP50Sec
	rep.QueueWaitP95Sec = stats.QueueWaitP95Sec
	rep.QueueWaitP99Sec = stats.QueueWaitP99Sec
	if stats.QueueWaitCount > 0 {
		rep.QueueWaitMeanSec = stats.QueueWaitSum / float64(stats.QueueWaitCount)
	}
	rep.Rejections = rejections
	attempts := int64(len(samples)) + rejections
	if attempts > 0 {
		rep.RejectionRate = float64(rejections) / float64(attempts)
	}
	rep.PlanCacheHits = stats.PlanCache.Hits
	rep.PlanCacheMisses = stats.PlanCache.Misses
	rep.JobCacheHits = stats.JobCache.Hits
	return rep, nil
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}

// Serve runs the load generator, prints a summary table, and optionally
// writes the JSON report.
func Serve(w io.Writer, opts ServeOptions, jsonPath string, writeFile func(string, []byte) error) error {
	rep, err := RunServe(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# serve closed-loop load: %d tenants x %d jobs, %d slots\n",
		rep.Config.Tenants, rep.Config.JobsPerTenant, rep.Config.Slots)
	writeTable(w, []string{"metric", "value"}, [][]string{
		{"jobs", fmt.Sprintf("%d (failed %d)", rep.Jobs, rep.Failed)},
		{"wall", fmt.Sprintf("%.3fs", rep.WallSec)},
		{"throughput", fmt.Sprintf("%.1f jobs/s", rep.ThroughputJPS)},
		{"latency p50/p95/p99", fmt.Sprintf("%.4f / %.4f / %.4f s", rep.LatencyP50Sec, rep.LatencyP95Sec, rep.LatencyP99Sec)},
		{"queue wait p50/p95/p99", fmt.Sprintf("%.4f / %.4f / %.4f s", rep.QueueWaitP50Sec, rep.QueueWaitP95Sec, rep.QueueWaitP99Sec)},
		{"rejection rate", fmt.Sprintf("%.1f%% (%d rejections)", 100*rep.RejectionRate, rep.Rejections)},
		{"plan cache", fmt.Sprintf("%d hits / %d misses", rep.PlanCacheHits, rep.PlanCacheMisses)},
		{"job cache hits", fmt.Sprintf("%d", rep.JobCacheHits)},
	})
	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := writeFile(jsonPath, append(data, '\n')); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", jsonPath)
	}
	return nil
}
