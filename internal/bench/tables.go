package bench

import (
	"fmt"
	"io"

	"dmac/internal/baselines/scalapack"
	"dmac/internal/baselines/scidb"
	"dmac/internal/engine"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/sched"
	"dmac/internal/workload"
)

// Table3 prints the dataset registry against the paper's Table 3 and the
// realized statistics of the synthetic stand-ins at the Figure 9(a) scales.
func Table3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: graph datasets (paper statistics vs generated stand-ins)")
	for _, spec := range workload.Graphs {
		denom := Fig9aScales[spec.Name]
		gen := spec.Generate(denom, 1024)
		fmt.Fprintf(w, "  %s (scale 1/%d)\n", gen, denom)
	}
}

// Table4Row is one system row of Table 4.
type Table4Row struct {
	System    string
	SparseSec float64
	DenseSec  float64
}

// table4Workers mirrors the paper's 8-node, 8-process setup.
const table4Workers = 8

// Table4 reproduces Table 4: a single matrix multiplication V x H with
// sparse V1 (Netflix-shaped, sparsity 0.01) and dense V2 of the same
// dimensions, across ScaLAPACK, SciDB, SystemML-S and DMac. All systems run
// on the equivalent of 8 nodes x 8 processes.
func Table4(scaleDenominator int) ([]Table4Row, error) {
	movies, users, _ := workload.Netflix.Scaled(scaleDenominator, 64)
	k := 200 / (scaleDenominator / 8) // factor column count, scaled gently
	if k < 16 {
		k = 16
	}
	bs := sched.ChooseBlockSize(movies, users, DefaultLocalParallelism, table4Workers)
	h := workload.DenseRandom(81, users, k, bs)

	makeV := func(sparse bool) *matrix.Grid {
		if sparse {
			_, _, v := workload.Netflix.Scaled(scaleDenominator, bs)
			return v
		}
		return workload.DenseRandom(82, movies, users, bs)
	}

	rows := []Table4Row{
		{System: "ScaLAPACK"},
		{System: "SciDB"},
		{System: "SystemML-S"},
		{System: "DMac"},
	}
	for caseIdx, sparse := range []bool{true, false} {
		set := func(i int, sec float64) {
			if caseIdx == 0 {
				rows[i].SparseSec = sec
			} else {
				rows[i].DenseSec = sec
			}
		}
		v := makeV(sparse)
		// ScaLAPACK, with the same calibrated time-model constants as the
		// engines so the four systems are directly comparable.
		slCfg := scalapack.Config{
			ProcRows:             8,
			ProcCols:             8,
			LocalParallelism:     DefaultLocalParallelism,
			FlopsPerSecPerProc:   ModelFlopsPerSecPerThread,
			BandwidthBytesPerSec: ModelBandwidthBytesPerSec,
			MsgLatencySec:        ModelShuffleLatencySec,
		}
		slRes, err := scalapack.Multiply(v, h, slCfg)
		if err != nil {
			return nil, fmt.Errorf("bench: table4 scalapack: %w", err)
		}
		set(0, slRes.ModelSeconds)
		// SciDB.
		sdRes, err := scidb.Multiply(v, h, scidb.Config{ScaLAPACK: slCfg})
		if err != nil {
			return nil, fmt.Errorf("bench: table4 scidb: %w", err)
		}
		set(1, sdRes.ModelSeconds)
		// SystemML-S and DMac run the one-operator program V %*% H.
		for i, planner := range []engine.Planner{engine.SystemMLS, engine.DMac} {
			e := newEngine(planner, table4Workers, bs)
			if err := e.Bind("V", v.Clone()); err != nil {
				return nil, err
			}
			if err := e.Bind("H", h.Clone()); err != nil {
				return nil, err
			}
			p := expr.NewProgram()
			V := p.Var("V", movies, users, sparsityOfGrid(v))
			H := p.Var("H", users, k, 1)
			p.Assign("C", p.Mul(V, H))
			m, err := e.Run(p, nil)
			if err != nil {
				return nil, fmt.Errorf("bench: table4 %s: %w", planner, err)
			}
			set(2+i, m.ModelSeconds)
		}
	}
	return rows, nil
}

func sparsityOfGrid(g *matrix.Grid) float64 {
	return float64(g.NNZ()) / (float64(g.Rows()) * float64(g.Cols()))
}

// WriteTable4 prints Table 4.
func WriteTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4: matrix multiplication across systems (modelled seconds)")
	table := make([][]string, len(rows))
	for i, r := range rows {
		table[i] = []string{
			r.System,
			fmt.Sprintf("%.3f", r.SparseSec),
			fmt.Sprintf("%.3f", r.DenseSec),
		}
	}
	writeTable(w, []string{"system", "MM-Sparse", "MM-Dense"}, table)
}
