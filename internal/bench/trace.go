package bench

import (
	"fmt"
	"io"

	"dmac/internal/apps"
	"dmac/internal/dist"
	"dmac/internal/engine"
	"dmac/internal/obs"
	"dmac/internal/sched"
	"dmac/internal/workload"
)

// TraceResult bundles the observability artifacts of one traced
// application run: the recorded spans, the metrics registry, the network
// totals the run charged, and the per-iteration engine metrics.
type TraceResult struct {
	Tracer   *obs.Tracer
	Registry *obs.Registry
	// Net is the instrumented network's totals over the whole traced run.
	// By construction the byte sums of the trace's "comm" spans equal
	// Net.Bytes exactly (asserted in trace_test.go).
	Net    dist.Snapshot
	Result *apps.Result
}

// TracedRun executes one bundled application on a fresh DMac engine with a
// tracer and a metrics registry attached — the workload behind
// `dmacbench -trace` and `dmactrace -app`. scale is the dataset scale
// denominator (as in dmacrun).
func TracedRun(app string, iters, scale, workers int) (*TraceResult, error) {
	if iters <= 0 {
		iters = 5
	}
	if scale <= 0 {
		scale = 40
	}
	if workers <= 0 {
		workers = DefaultWorkers
	}
	tracer := obs.NewTracer()
	registry := obs.NewRegistry()
	cfg := clusterConfig(workers)
	var (
		res *apps.Result
		e   *engine.Engine
		err error
	)
	switch app {
	case "pagerank":
		spec, _ := workload.GraphByName("soc-pokec")
		nodes := spec.ScaledNodes(scale)
		bs := sched.ChooseBlockSize(nodes, nodes, DefaultLocalParallelism, workers)
		e = engine.New(engine.DMac, cfg, bs)
		e.SetObserver(tracer, registry)
		res, err = apps.PageRank(e, spec.Generate(scale, bs).Adjacency, iters, 7)
	case "gnmf":
		movies, users := workload.Netflix.Movies/scale, workload.Netflix.Users/scale
		bs := sched.ChooseBlockSize(movies, users, DefaultLocalParallelism, workers)
		e = engine.New(engine.DMac, cfg, bs)
		e.SetObserver(tracer, registry)
		_, _, v := workload.Netflix.Scaled(scale, bs)
		res, err = apps.GNMF(e, v, 8, iters, 42)
	case "linreg":
		rows, cols := 800000/scale, 500
		bs := sched.ChooseBlockSize(rows, cols, DefaultLocalParallelism, workers)
		e = engine.New(engine.DMac, cfg, bs)
		e.SetObserver(tracer, registry)
		v := workload.SparseUniform(3, rows, cols, bs, 10.0/float64(cols))
		y := workload.DenseRandom(4, rows, 1, bs)
		res, err = apps.LinReg(e, v, y, 1e-6, iters, 5)
	default:
		return nil, fmt.Errorf("bench: no traced workload %q (want pagerank, gnmf, linreg)", app)
	}
	if err != nil {
		return nil, err
	}
	return &TraceResult{
		Tracer:   tracer,
		Registry: registry,
		Net:      e.Cluster().Net().Snapshot(),
		Result:   res,
	}, nil
}

// WriteTraceArtifacts writes the Chrome trace JSON to traceOut and (when
// metricsOut is non-nil) the metrics dump, then prints the per-stage
// timeline to report.
func (t *TraceResult) WriteTraceArtifacts(traceOut, metricsOut, report io.Writer) error {
	spans := t.Tracer.Spans()
	if traceOut != nil {
		if err := obs.WriteChromeTrace(traceOut, spans); err != nil {
			return err
		}
	}
	if metricsOut != nil {
		if err := obs.WriteMetricsJSON(metricsOut, t.Registry.Snapshot()); err != nil {
			return err
		}
	}
	if report != nil {
		obs.WriteTimeline(report, spans)
	}
	return nil
}
