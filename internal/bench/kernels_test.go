package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"dmac/internal/matrix"
)

// TestKernelsSmoke runs the microbenchmark suite at tiny sizes and checks
// report shape: every kernel at every size, speedups on the dense tiled
// paths, a dd-par point per worker count, and a JSON round trip.
func TestKernelsSmoke(t *testing.T) {
	sizes := []int{8, 48}
	workers := []int{1, 2}
	rep := Kernels(sizes, workers)
	wantKernels := []string{"dd-naive", "dd-tiled", "dd-nt", "dd-tn", "sd", "ds"}
	// Six single-path kernels plus one dd-par point per worker count at each
	// size; no dd-strassen below the eligibility floor.
	if got, want := len(rep.Points), len(sizes)*(len(wantKernels)+len(workers)); got != want {
		t.Fatalf("%d points, want %d", got, want)
	}
	seen := map[string]int{}
	for _, p := range rep.Points {
		seen[p.Kernel]++
		if p.NsPerOp <= 0 || p.Reps <= 0 {
			t.Errorf("%s/%d: non-positive timing %v reps %d", p.Kernel, p.Size, p.NsPerOp, p.Reps)
		}
		if p.GFLOPS <= 0 {
			t.Errorf("%s/%d: non-positive GFLOPS", p.Kernel, p.Size)
		}
		switch p.Kernel {
		case "dd-tiled", "dd-nt", "dd-tn", "dd-par", "dd-strassen":
			if p.Speedup <= 0 {
				t.Errorf("%s/%d: speedup not set", p.Kernel, p.Size)
			}
		default:
			if p.Speedup != 0 {
				t.Errorf("%s/%d: unexpected speedup %v", p.Kernel, p.Size, p.Speedup)
			}
		}
		if p.Kernel == "dd-par" {
			if p.Workers != 1 && p.Workers != 2 {
				t.Errorf("dd-par/%d: unexpected worker count %d", p.Size, p.Workers)
			}
		} else if p.Workers != 0 {
			t.Errorf("%s/%d: unexpected workers %d", p.Kernel, p.Size, p.Workers)
		}
	}
	for _, k := range wantKernels {
		if seen[k] != len(sizes) {
			t.Errorf("kernel %s measured %d times, want %d", k, seen[k], len(sizes))
		}
	}
	if seen["dd-par"] != len(sizes)*len(workers) {
		t.Errorf("dd-par measured %d times, want %d", seen["dd-par"], len(sizes)*len(workers))
	}
	if matrix.KernelWorkers() != 1 {
		t.Errorf("Kernels left kernel workers at %d", matrix.KernelWorkers())
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back KernelReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(rep.Points) || back.GoArch != rep.GoArch {
		t.Error("JSON round trip lost data")
	}
	WriteKernels(&buf, rep) // must not panic
}

// TestKernelsStrassenPoint checks that an eligible size emits the Strassen
// crossover point and an ineligible one does not.
func TestKernelsStrassenPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-block strassen measurement in -short mode")
	}
	rep := Kernels([]int{1024}, []int{1})
	found := false
	for _, p := range rep.Points {
		if p.Kernel == "dd-strassen" {
			found = true
			if p.Speedup <= 0 {
				t.Errorf("dd-strassen speedup not set")
			}
		}
	}
	if !found {
		t.Fatal("no dd-strassen point at size 1024")
	}
}
