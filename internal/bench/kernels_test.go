package bench

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestKernelsSmoke runs the microbenchmark suite at tiny sizes and checks
// report shape: every kernel at every size, speedups on the dense tiled
// paths, and a JSON round trip.
func TestKernelsSmoke(t *testing.T) {
	sizes := []int{8, 48}
	rep := Kernels(sizes)
	wantKernels := []string{"dd-naive", "dd-tiled", "dd-nt", "dd-tn", "sd", "ds"}
	if got, want := len(rep.Points), len(sizes)*len(wantKernels); got != want {
		t.Fatalf("%d points, want %d", got, want)
	}
	seen := map[string]int{}
	for _, p := range rep.Points {
		seen[p.Kernel]++
		if p.NsPerOp <= 0 || p.Reps <= 0 {
			t.Errorf("%s/%d: non-positive timing %v reps %d", p.Kernel, p.Size, p.NsPerOp, p.Reps)
		}
		if p.GFLOPS <= 0 {
			t.Errorf("%s/%d: non-positive GFLOPS", p.Kernel, p.Size)
		}
		switch p.Kernel {
		case "dd-tiled", "dd-nt", "dd-tn":
			if p.Speedup <= 0 {
				t.Errorf("%s/%d: speedup not set", p.Kernel, p.Size)
			}
		default:
			if p.Speedup != 0 {
				t.Errorf("%s/%d: unexpected speedup %v", p.Kernel, p.Size, p.Speedup)
			}
		}
	}
	for _, k := range wantKernels {
		if seen[k] != len(sizes) {
			t.Errorf("kernel %s measured %d times, want %d", k, seen[k], len(sizes))
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back KernelReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(rep.Points) || back.GoArch != rep.GoArch {
		t.Error("JSON round trip lost data")
	}
	WriteKernels(&buf, rep) // must not panic
}
