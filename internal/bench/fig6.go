package bench

import (
	"fmt"
	"io"

	"dmac/internal/apps"
	"dmac/internal/engine"
	"dmac/internal/sched"
	"dmac/internal/workload"
)

// Fig6Point is one x-position of Figure 6: accumulated time and
// communication after the given iteration.
type Fig6Point struct {
	Iteration  int
	AccTimeSec float64
	AccCommGB  float64
}

// Fig6Result reproduces Figure 6 (GNMF on the Netflix dataset): accumulated
// execution time for DMac, SystemML-S and the single-machine R reference
// (6a) and accumulated communication for the two distributed engines (6b),
// plus the communication share of total time discussed in Section 6.2.
type Fig6Result struct {
	ScaleDenominator int
	FactorK          int
	DMac, SystemMLS  []Fig6Point
	R                []Fig6Point
	// DMacCommShare and SysCommShare are the fraction of modelled time
	// spent communicating (the paper reports ~6% vs ~44%).
	DMacCommShare, SysCommShare float64
}

// Fig6 runs GNMF for the given number of iterations on a Netflix-shaped
// matrix scaled down by scaleDenominator per dimension, with factor size k.
func Fig6(iterations, scaleDenominator, k int) (*Fig6Result, error) {
	movies, users, _ := workload.Netflix.Scaled(scaleDenominator, 64)
	bs := sched.ChooseBlockSize(movies, users, DefaultLocalParallelism, DefaultWorkers)
	res := &Fig6Result{ScaleDenominator: scaleDenominator, FactorK: k}
	for _, planner := range []engine.Planner{engine.DMac, engine.SystemMLS, engine.Local} {
		_, _, v := workload.Netflix.Scaled(scaleDenominator, bs)
		e := newEngine(planner, DefaultWorkers, bs)
		run, err := apps.GNMF(e, v, k, iterations, 42)
		if err != nil {
			return nil, fmt.Errorf("bench: fig6 %s: %w", planner, err)
		}
		points := make([]Fig6Point, 0, iterations)
		accTime, accBytes := 0.0, int64(0)
		var commTime, totalTime float64
		for i, m := range run.PerIteration {
			accTime += m.ModelSeconds
			accBytes += m.CommBytes
			points = append(points, Fig6Point{Iteration: i + 1, AccTimeSec: accTime, AccCommGB: gb(accBytes)})
			cfg := e.Cluster().Config()
			commTime += float64(m.CommBytes)/cfg.BandwidthBytesPerSec + float64(m.CommEvents)*cfg.ShuffleLatencySec
			totalTime += m.ModelSeconds
		}
		switch planner {
		case engine.DMac:
			res.DMac = points
			res.DMacCommShare = commTime / totalTime
		case engine.SystemMLS:
			res.SystemMLS = points
			res.SysCommShare = commTime / totalTime
		case engine.Local:
			res.R = points
		}
	}
	return res, nil
}

// Write prints the figure as two tables.
func (r *Fig6Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Figure 6: GNMF on Netflix-shaped data (1/%d scale, k=%d)\n", r.ScaleDenominator, r.FactorK)
	fmt.Fprintln(w, "\n(a) accumulated execution time (modelled seconds)")
	rows := make([][]string, len(r.DMac))
	for i := range r.DMac {
		rows[i] = []string{
			fmt.Sprintf("%d", r.DMac[i].Iteration),
			fmt.Sprintf("%.2f", r.DMac[i].AccTimeSec),
			fmt.Sprintf("%.2f", r.SystemMLS[i].AccTimeSec),
			fmt.Sprintf("%.2f", r.R[i].AccTimeSec),
		}
	}
	writeTable(w, []string{"iter", "DMac", "SystemML-S", "R"}, rows)
	fmt.Fprintln(w, "\n(b) accumulated communication (GB)")
	rows = rows[:0]
	for i := range r.DMac {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.DMac[i].Iteration),
			fmt.Sprintf("%.4f", r.DMac[i].AccCommGB),
			fmt.Sprintf("%.4f", r.SystemMLS[i].AccCommGB),
		})
	}
	writeTable(w, []string{"iter", "DMac", "SystemML-S"}, rows)
	fmt.Fprintf(w, "\ncommunication share of execution time: DMac %.0f%%, SystemML-S %.0f%% (paper: 6%% vs 44%%)\n",
		100*r.DMacCommShare, 100*r.SysCommShare)
}
