package bench

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"dmac/internal/apps"
	"dmac/internal/dist"
	"dmac/internal/dist/transport"
	"dmac/internal/engine"
	"dmac/internal/matrix"
	"dmac/internal/workload"
)

// chaosBlockSize keeps the chaos datasets multi-block so every scheme and
// strategy is exercised while runs stay fast.
const chaosBlockSize = 8

// ChaosWorkload is one registered workload of the chaos sweep: a seeded
// deterministic run plus the session variables and scalars whose final
// values must be bit-identical with and without injected faults.
type ChaosWorkload struct {
	// Name labels the workload in reports.
	Name string
	// Outputs are the session variables compared against the fault-free run.
	Outputs []string
	// Scalars are the driver scalars compared against the fault-free run.
	Scalars []string
	// Run executes the workload on a fresh engine. Data generation is
	// seeded, so every call sees identical inputs.
	Run func(e *engine.Engine) (*apps.Result, error)
}

// ChaosWorkloads registers every workload the chaos harness sweeps.
func ChaosWorkloads() []ChaosWorkload {
	return []ChaosWorkload{
		{
			Name:    "gnmf",
			Outputs: []string{"W", "H"},
			Run: func(e *engine.Engine) (*apps.Result, error) {
				v := workload.SparseUniform(1, 30, 40, chaosBlockSize, 0.3)
				return apps.GNMF(e, v, 5, 3, 42)
			},
		},
		{
			Name:    "pagerank",
			Outputs: []string{"rank"},
			Run: func(e *engine.Engine) (*apps.Result, error) {
				adj := workload.PowerLawGraph(2, 28, 3, chaosBlockSize)
				return apps.PageRank(e, adj, 3, 11)
			},
		},
		{
			Name:    "cf",
			Outputs: []string{"predict"},
			Scalars: []string{"result_norm"},
			Run: func(e *engine.Engine) (*apps.Result, error) {
				r := workload.Ratings(3, 24, 36, chaosBlockSize, 0.2)
				return apps.CF(e, r)
			},
		},
		{
			Name:    "linreg",
			Outputs: []string{"w"},
			Run: func(e *engine.Engine) (*apps.Result, error) {
				v, y, _ := apps.LabeledData(4, 30, 9, chaosBlockSize, 0.5)
				return apps.LinReg(e, v, y, 0.1, 3, 17)
			},
		},
	}
}

// ChaosPlan is a named fault plan of the sweep.
type ChaosPlan struct {
	Name string
	Plan dist.FaultPlan
}

// ChaosPlans returns the fixed fault plans of the chaos sweep. Stage 1
// exists in every plan (stages are 1-based), so the scripted kills and
// corruptions are guaranteed to fire; the random plans add seeded faults
// across all stages.
func ChaosPlans() []ChaosPlan {
	return []ChaosPlan{
		{
			Name: "boundary-kill",
			Plan: dist.FaultPlan{Events: []dist.FaultEvent{
				{Stage: 1, Worker: 1, Attempt: 0, Kind: dist.FaultKillBoundary},
				{Stage: 2, Worker: 2, Attempt: 0, Kind: dist.FaultDelay, DelaySec: 0.2},
			}},
		},
		{
			Name: "task-kill",
			Plan: dist.FaultPlan{Events: []dist.FaultEvent{
				{Stage: 1, Worker: 2, Attempt: 0, Kind: dist.FaultKillTask},
				{Stage: 2, Worker: 0, Attempt: 0, Kind: dist.FaultKillBoundary},
			}},
		},
		{
			Name: "random-15pct",
			Plan: dist.RandomFaultPlan(7, 0.15),
		},
		{
			// Pure block corruption: bytes flipped in transit must be caught
			// by the hand-off checksum, quarantined and re-fetched, leaving
			// results untouched.
			Name: "corrupt",
			Plan: dist.FaultPlan{Events: []dist.FaultEvent{
				{Stage: 1, Worker: 1, Attempt: 0, Kind: dist.FaultCorrupt},
				{Stage: 2, Worker: 3, Attempt: 0, Kind: dist.FaultCorrupt},
			}},
		},
		{
			// Combined regime: worker kills racing seeded corruption — the
			// acceptance gate for end-to-end integrity under recovery.
			Name: "kill+corrupt",
			Plan: dist.FaultPlan{
				Seed:        5,
				CorruptRate: 0.2,
				Events: []dist.FaultEvent{
					{Stage: 1, Worker: 2, Attempt: 0, Kind: dist.FaultCorrupt},
					{Stage: 2, Worker: 1, Attempt: 0, Kind: dist.FaultKillBoundary},
				},
			},
		},
		{
			// Lossy network: seeded frame drops healed by retransmit plus a
			// scripted delay. Nothing is lost, so results stay bit-identical;
			// only stall time grows.
			Name: "net-drop+delay",
			Plan: dist.FaultPlan{
				Seed:        11,
				NetDropRate: 0.3,
				Events: []dist.FaultEvent{
					{Stage: 2, Worker: 2, Attempt: 0, Kind: dist.FaultNetDelay, DelaySec: 0.2},
				},
			},
		},
		{
			// A worker cut off mid-job: the first collective reaching it fails
			// typed, recovery removes it, lineage re-partitions around it.
			// Stage 2 deliberately: stage 1 has no collective on several of
			// the swept workloads, so a stage-1 partition would never fire.
			Name: "net-partition",
			Plan: dist.FaultPlan{Events: []dist.FaultEvent{
				{Stage: 2, Worker: 1, Attempt: 0, Kind: dist.FaultNetPartition},
			}},
		},
	}
}

// planCorrupts reports whether a fault plan injects block corruption.
func planCorrupts(p dist.FaultPlan) bool {
	if p.CorruptRate > 0 {
		return true
	}
	for _, ev := range p.Events {
		if ev.Kind == dist.FaultCorrupt {
			return true
		}
	}
	return false
}

// ChaosOptions configures a chaos sweep. The zero value reproduces the
// default full sweep.
type ChaosOptions struct {
	// CheckpointDir, when non-empty, gives every faulted engine a durable
	// checkpoint directory (interval 1), so recovery restores snapshots
	// instead of replaying full lineage. Each sweep cell checkpoints into
	// its own subdirectory.
	CheckpointDir string
	// CorruptOnly restricts the sweep to fault plans that inject block
	// corruption — the CI smoke configuration.
	CorruptOnly bool
	// Timeout, when positive, bounds the whole sweep with a context
	// deadline observed between stages and between block tasks.
	Timeout time.Duration
	// Wire runs every faulted cell over a real loopback TCP data plane
	// (in-process transport workers), so the fault plans exercise the wire
	// transport — frames, CRCs, retransmits — instead of the in-process
	// hand-off. Baselines stay in-process; results must match regardless.
	Wire bool
}

// ChaosResult is one cell of the sweep: a workload run under a fault plan,
// compared against its fault-free baseline.
type ChaosResult struct {
	Workload      string
	Plan          string
	Retries       int
	RecoveryBytes int64
	CommBytes     int64
	ModelSec      float64
	DeadWorkers   int
	// CorruptionsInjected and CorruptionsDetected count fired block
	// corruptions and those the hand-off checksum caught; equal counts are
	// the integrity invariant.
	CorruptionsInjected int
	CorruptionsDetected int
	// StagesReplayed and CheckpointBytes report checkpoint-aware recovery
	// (zero unless ChaosOptions.CheckpointDir is set).
	StagesReplayed  int
	CheckpointBytes int64
	// WireBytes is the measured wire traffic of the faulted run (zero unless
	// ChaosOptions.Wire routed the cell over loopback TCP).
	WireBytes int64
	// NetDrops and NetDelays count fired network faults: dropped collectives
	// healed by retransmit, and scripted collective stalls.
	NetDrops  int
	NetDelays int
	// Match reports whether every output matched the fault-free run
	// bit-for-bit (tolerance zero).
	Match bool
}

// RunChaos sweeps every registered workload across every fault plan on the
// DMac engine, asserting nothing itself — the Match field carries the
// verdict for tests and reports. Every plan is validated before any engine
// runs.
func RunChaos(opts ChaosOptions) ([]ChaosResult, error) {
	plans := ChaosPlans()
	for _, cp := range plans {
		if err := cp.Plan.Validate(); err != nil {
			return nil, fmt.Errorf("chaos plan %s: %w", cp.Name, err)
		}
	}
	ctx := context.Background()
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	var addrs []string
	if opts.Wire {
		for i := 0; i < DefaultWorkers; i++ {
			w := transport.NewWorker(transport.WorkerConfig{})
			a, err := w.Listen("127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("chaos wire worker %d: %w", i, err)
			}
			go w.Serve()
			defer w.Close()
			addrs = append(addrs, a.String())
		}
	}
	var out []ChaosResult
	for _, wl := range ChaosWorkloads() {
		base := newEngine(engine.DMac, DefaultWorkers, chaosBlockSize)
		base.SetBaseContext(ctx)
		if _, err := wl.Run(base); err != nil {
			return nil, fmt.Errorf("chaos %s baseline: %w", wl.Name, err)
		}
		for _, cp := range plans {
			if opts.CorruptOnly && !planCorrupts(cp.Plan) {
				continue
			}
			cfg := clusterConfig(DefaultWorkers)
			cfg.Faults = cp.Plan
			cfg.WorkerAddrs = addrs
			e := engine.New(engine.DMac, cfg, chaosBlockSize)
			defer e.Close()
			e.SetBaseContext(ctx)
			if opts.CheckpointDir != "" {
				dir := filepath.Join(opts.CheckpointDir, wl.Name+"-"+cp.Name)
				if err := e.SetCheckpoint(dir, engine.CheckpointPolicy{Interval: 1}); err != nil {
					return nil, fmt.Errorf("chaos %s/%s: %w", wl.Name, cp.Name, err)
				}
			}
			res, err := wl.Run(e)
			if err != nil {
				return nil, fmt.Errorf("chaos %s/%s: %w", wl.Name, cp.Name, err)
			}
			match := true
			for _, name := range wl.Outputs {
				got, ok1 := e.Grid(name)
				want, ok2 := base.Grid(name)
				if !ok1 || !ok2 || !matrix.GridEqual(got, want, 0) {
					match = false
				}
			}
			for _, name := range wl.Scalars {
				got, ok1 := e.Scalar(name)
				want, ok2 := base.Scalar(name)
				if !ok1 || !ok2 || got != want {
					match = false
				}
			}
			total := res.Total()
			out = append(out, ChaosResult{
				Workload:            wl.Name,
				Plan:                cp.Name,
				Retries:             total.Retries,
				RecoveryBytes:       total.RecoveryBytes,
				CommBytes:           total.CommBytes,
				ModelSec:            total.ModelSeconds,
				DeadWorkers:         len(e.Cluster().DeadWorkers()),
				CorruptionsInjected: total.CorruptionsInjected,
				CorruptionsDetected: total.CorruptionsDetected,
				StagesReplayed:      total.StagesReplayed,
				CheckpointBytes:     total.CheckpointBytes,
				WireBytes:           total.WireBytes,
				NetDrops:            total.NetDropsInjected,
				NetDelays:           total.NetDelaysInjected,
				Match:               match,
			})
		}
	}
	return out, nil
}

// Chaos runs the sweep and renders it as a report table.
func Chaos(w io.Writer, opts ChaosOptions) error {
	results, err := RunChaos(opts)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Chaos sweep: DMac under injected worker faults vs fault-free run")
	fmt.Fprintln(w)
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			r.Workload,
			r.Plan,
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.RecoveryBytes),
			fmt.Sprintf("%.3f", gb(r.CommBytes)),
			fmt.Sprintf("%.3f", r.ModelSec),
			fmt.Sprintf("%d", r.DeadWorkers),
			fmt.Sprintf("%d/%d", r.CorruptionsDetected, r.CorruptionsInjected),
			fmt.Sprintf("%d", r.StagesReplayed),
			fmt.Sprintf("%d", r.WireBytes),
			fmt.Sprintf("%v", r.Match),
		})
	}
	writeTable(w, []string{"workload", "plan", "retries", "recovery B", "comm GB", "model s", "dead", "corrupt det/inj", "replayed", "wire B", "bit-identical"}, rows)
	return nil
}
