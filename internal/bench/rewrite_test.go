package bench

import (
	"bytes"
	"strings"
	"testing"
)

// The A/B experiment must show the rewrite pass paying off on the structural
// workloads and costing nothing on the no-op workload, with its predicted
// FLOP savings matching the measured deltas.
func TestRunRewriteShapes(t *testing.T) {
	rep, err := RunRewrite(2)
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string]RewriteRow, len(rep.Rows))
	for _, r := range rep.Rows {
		rows[r.Workload] = r
	}
	for _, name := range []string{"matrix-chain", "transpose-pushdown"} {
		r, ok := rows[name]
		if !ok {
			t.Fatalf("missing workload %s", name)
		}
		if r.OnFLOPs >= r.OffFLOPs {
			t.Errorf("%s: rewrite did not reduce FLOPs: %g -> %g", name, r.OffFLOPs, r.OnFLOPs)
		}
		if r.OnModelSec >= r.OffModelSec {
			t.Errorf("%s: rewrite did not reduce modelled time: %g -> %g", name, r.OffModelSec, r.OnModelSec)
		}
		if r.RewritesApplied == 0 {
			t.Errorf("%s: no rewrites recorded", name)
		}
		meas := r.MeasuredFLOPsSaved(rep.Iterations)
		if pred := r.PredictedFLOPsSaved; pred < 0.5*meas || pred > 2*meas {
			t.Errorf("%s: predicted FLOP savings %g far from measured %g", name, pred, meas)
		}
	}
	if r := rows["gnmf-micro"]; r.OnFLOPs != r.OffFLOPs {
		t.Errorf("gnmf-micro: rewrite changed FLOPs on a structurally fixed program: %g -> %g",
			r.OffFLOPs, r.OnFLOPs)
	}
}

func TestRewriteReportRendering(t *testing.T) {
	var buf bytes.Buffer
	var wrotePath string
	err := Rewrite(&buf, 1, "out.json", func(path string, data []byte) error {
		wrotePath = path
		if !bytes.Contains(data, []byte(`"matrix-chain"`)) {
			t.Error("JSON artifact missing workload rows")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if wrotePath != "out.json" {
		t.Errorf("wrote %q, want out.json", wrotePath)
	}
	out := buf.String()
	for _, want := range []string{"rewrite A/B", "matrix-chain", "pred FLOPs saved"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
