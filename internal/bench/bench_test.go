package bench

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// The tests here assert the qualitative shapes the paper reports for each
// experiment: who wins, monotonicity, and rough factors. Scales are kept
// small so the suite stays fast; cmd/dmacbench runs the full-size versions.

func TestFig6Shapes(t *testing.T) {
	res, err := Fig6(4, 60, 16)
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.DMac) - 1
	// DMac beats SystemML-S on accumulated time and communication.
	if res.DMac[last].AccTimeSec >= res.SystemMLS[last].AccTimeSec {
		t.Errorf("DMac time %.3f >= SystemML-S %.3f", res.DMac[last].AccTimeSec, res.SystemMLS[last].AccTimeSec)
	}
	if res.DMac[last].AccCommGB >= res.SystemMLS[last].AccCommGB/2 {
		t.Errorf("DMac comm %.4f not well below SystemML-S %.4f", res.DMac[last].AccCommGB, res.SystemMLS[last].AccCommGB)
	}
	// Both distributed engines beat the single-machine reference.
	if res.DMac[last].AccTimeSec >= res.R[last].AccTimeSec {
		t.Errorf("DMac %.3f not faster than R %.3f", res.DMac[last].AccTimeSec, res.R[last].AccTimeSec)
	}
	// Accumulated series are non-decreasing.
	for i := 1; i < len(res.DMac); i++ {
		if res.DMac[i].AccTimeSec < res.DMac[i-1].AccTimeSec || res.DMac[i].AccCommGB < res.DMac[i-1].AccCommGB {
			t.Fatal("accumulated series decreased")
		}
	}
	// Communication share: DMac far below SystemML-S (paper: 6% vs 44%).
	if res.DMacCommShare >= res.SysCommShare {
		t.Errorf("comm share DMac %.2f >= SystemML-S %.2f", res.DMacCommShare, res.SysCommShare)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Error("report missing title")
	}
}

func TestFig7Shapes(t *testing.T) {
	scales := map[string]int{
		"soc-pokec":   16000,
		"cit-Patents": 16000,
		"LiveJournal": 16000,
		"Wikipedia":   48000,
	}
	rows, err := Fig7(scales)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.BufferPeak <= r.InPlacePeak {
			t.Errorf("%s: Buffer peak %d not above In-Place %d", r.Graph, r.BufferPeak, r.InPlacePeak)
		}
	}
	var buf bytes.Buffer
	WriteFig7(&buf, rows)
	if !strings.Contains(buf.String(), "In-Place") {
		t.Error("report missing strategy name")
	}
}

func TestFig8Shapes(t *testing.T) {
	points, threshold, err := Fig8("soc-pokec", 16000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if threshold <= 0 {
		t.Fatal("no Eq.3 threshold")
	}
	if len(points) < 4 {
		t.Fatalf("only %d points", len(points))
	}
	// Memory decreases (weakly) as the block size grows (Eq. 2).
	byBS := make([]Fig8Point, len(points))
	copy(byBS, points)
	sort.Slice(byBS, func(i, j int) bool { return byBS[i].BlockSize < byBS[j].BlockSize })
	for i := 1; i < len(byBS); i++ {
		if byBS[i].PeakMem > byBS[i-1].PeakMem {
			t.Errorf("peak memory grew from bs=%d (%d) to bs=%d (%d)",
				byBS[i-1].BlockSize, byBS[i-1].PeakMem, byBS[i].BlockSize, byBS[i].PeakMem)
		}
	}
	// Model time is U-shaped: the largest block size is slower than the
	// best, and the smallest carries task overhead above the best.
	best := byBS[0].ModelSec
	for _, p := range byBS {
		if p.ModelSec < best {
			best = p.ModelSec
		}
	}
	if byBS[len(byBS)-1].ModelSec <= best {
		t.Error("largest block size should lose parallelism and slow down")
	}
	if byBS[0].ModelSec <= best {
		t.Error("smallest block size should pay task overhead")
	}
	var buf bytes.Buffer
	WriteFig8(&buf, "soc-pokec", points, threshold)
	if !strings.Contains(buf.String(), "threshold") {
		t.Error("report missing threshold")
	}
}

func TestFig9aShapes(t *testing.T) {
	scales := map[string]int{"soc-pokec": 8000, "LiveJournal": 8000}
	rows, err := Fig9a(scales, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DMacSec >= r.SysSec {
			t.Errorf("%s: DMac %.4f not faster than SystemML-S %.4f", r.Graph, r.DMacSec, r.SysSec)
		}
		if r.DMacComm >= r.SysCom {
			t.Errorf("%s: DMac comm %d not below SystemML-S %d", r.Graph, r.DMacComm, r.SysCom)
		}
	}
	var buf bytes.Buffer
	WriteFig9a(&buf, rows)
	if !strings.Contains(buf.String(), "PageRank") {
		t.Error("report missing title")
	}
}

func TestFig9bShapes(t *testing.T) {
	rows, err := Fig9b()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (LR, CF, SVD)", len(rows))
	}
	for _, r := range rows {
		if r.NormalizedSys <= 1 {
			t.Errorf("%s: SystemML-S ratio %.2f should exceed 1", r.App, r.NormalizedSys)
		}
	}
	// LR shows the largest gap in the paper (>7x); require it to be the
	// largest here too.
	if !(rows[0].App == "LR" && rows[0].NormalizedSys >= rows[1].NormalizedSys) {
		t.Logf("LR ratio %.2f, CF ratio %.2f (paper has LR largest)", rows[0].NormalizedSys, rows[1].NormalizedSys)
	}
	var buf bytes.Buffer
	WriteFig9b(&buf, rows)
	if !strings.Contains(buf.String(), "SVD") {
		t.Error("report missing app")
	}
}

func TestFig10abShapes(t *testing.T) {
	gnmf, linreg, err := Fig10ab([]int{5000, 10000, 20000}, 500, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range [][]Fig10Point{gnmf, linreg} {
		if len(series) != 3 {
			t.Fatalf("series length %d", len(series))
		}
		for i, p := range series {
			if p.DMacSec >= p.SysSec {
				t.Errorf("point %d: DMac %.4f not faster", i, p.DMacSec)
			}
		}
		// The gap grows with the input (paper: "the gap between
		// SystemML-S and DMac also increases").
		firstGap := series[0].SysSec - series[0].DMacSec
		lastGap := series[len(series)-1].SysSec - series[len(series)-1].DMacSec
		if lastGap <= firstGap {
			t.Errorf("gap did not grow: %.4f -> %.4f", firstGap, lastGap)
		}
	}
	var buf bytes.Buffer
	WriteFig10(&buf, "Figure 10(a)", "nnz (M)", gnmf)
	if !strings.Contains(buf.String(), "DMac") {
		t.Error("report missing engine")
	}
}

func TestFig10cdShapes(t *testing.T) {
	gnmf, linreg, err := Fig10cd([]int{4, 12, 20}, 20000, 500, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range [][]Fig10Point{gnmf, linreg} {
		// DMac gets faster with more workers.
		if series[len(series)-1].DMacSec >= series[0].DMacSec {
			t.Errorf("DMac did not speed up with workers: %.4f -> %.4f",
				series[0].DMacSec, series[len(series)-1].DMacSec)
		}
		for _, p := range series {
			if p.DMacSec >= p.SysSec {
				t.Errorf("workers=%v: DMac %.4f not faster than %.4f", p.X, p.DMacSec, p.SysSec)
			}
		}
	}
}

func TestTable4Shapes(t *testing.T) {
	rows, err := Table4(80)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(name string) Table4Row {
		for _, r := range rows {
			if r.System == name {
				return r
			}
		}
		t.Fatalf("missing system %s", name)
		return Table4Row{}
	}
	sl, sd, sm, dm := get("ScaLAPACK"), get("SciDB"), get("SystemML-S"), get("DMac")
	// ScaLAPACK is sparsity-oblivious: sparse within 10% of dense.
	if d := sl.SparseSec / sl.DenseSec; d < 0.9 || d > 1.1 {
		t.Errorf("ScaLAPACK sparse/dense = %.2f, want ~1", d)
	}
	// SciDB is the slowest everywhere.
	for _, other := range []Table4Row{sl, sm, dm} {
		if sd.SparseSec <= other.SparseSec || sd.DenseSec <= other.DenseSec {
			t.Errorf("SciDB should be slowest (vs %s)", other.System)
		}
	}
	// DMac and SystemML-S exploit sparsity: much faster than ScaLAPACK on
	// sparse input.
	if dm.SparseSec*2 >= sl.SparseSec {
		t.Errorf("DMac sparse %.3f not well below ScaLAPACK %.3f", dm.SparseSec, sl.SparseSec)
	}
	// On a single multiplication the DMac vs SystemML-S gap is small
	// (Section 6.6); both within 3x of each other.
	if r := sm.SparseSec / dm.SparseSec; r > 3 {
		t.Errorf("single-op gap too large: %.2f", r)
	}
	var buf bytes.Buffer
	WriteTable4(&buf, rows)
	if !strings.Contains(buf.String(), "MM-Sparse") {
		t.Error("report missing column")
	}
}

func TestTable3Report(t *testing.T) {
	var buf bytes.Buffer
	Table3(&buf)
	out := buf.String()
	for _, name := range []string{"soc-pokec", "cit-Patents", "LiveJournal", "Wikipedia"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table 3 report missing %s", name)
		}
	}
}

func TestAblations(t *testing.T) {
	gnmf, err := AblationGNMF(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(gnmf) != 5 {
		t.Fatalf("rows = %d", len(gnmf))
	}
	full := gnmf[0]
	for _, r := range gnmf[1:] {
		if r.CommBytes < full.CommBytes {
			t.Errorf("%s communicates less (%d) than the full planner (%d)", r.Config, r.CommBytes, full.CommBytes)
		}
	}
	// The baseline is the worst configuration.
	if gnmf[4].CommBytes <= full.CommBytes {
		t.Error("SystemML-S should be the upper bound")
	}
	cf, err := AblationCF()
	if err != nil {
		t.Fatal(err)
	}
	if cf[0].CommBytes > cf[4].CommBytes {
		t.Error("CF: full DMac should beat the baseline")
	}
	var buf bytes.Buffer
	WriteAblation(&buf, "ablation", gnmf)
	if !strings.Contains(buf.String(), "Pull-Up") {
		t.Error("report missing configuration")
	}
}

func TestAblationMicroShowsHeuristicSavings(t *testing.T) {
	pullUp, reassign, err := AblationMicro()
	if err != nil {
		t.Fatal(err)
	}
	if len(pullUp) != 2 || len(reassign) != 2 {
		t.Fatalf("rows: %d / %d", len(pullUp), len(reassign))
	}
	// Disabling each heuristic must strictly increase communication on its
	// trigger workload.
	if pullUp[0].CommBytes >= pullUp[1].CommBytes {
		t.Errorf("pull-up: full %d not below disabled %d", pullUp[0].CommBytes, pullUp[1].CommBytes)
	}
	if reassign[0].CommBytes >= reassign[1].CommBytes {
		t.Errorf("re-assign: full %d not below disabled %d", reassign[0].CommBytes, reassign[1].CommBytes)
	}
}
