package bench

import (
	"fmt"
	"io"

	"dmac/internal/apps"
	"dmac/internal/engine"
	"dmac/internal/sched"
	"dmac/internal/workload"
)

// AblationRow is one planner configuration of the heuristic ablation study
// (an extension beyond the paper's own evaluation: it quantifies each design
// choice DESIGN.md calls out).
type AblationRow struct {
	Config    string
	CommBytes int64
	ModelSec  float64
}

// AblationGNMF runs GNMF under the full DMac planner and with each heuristic
// disabled, plus the SystemML-S baseline, and reports total communication.
func AblationGNMF(iterations int) ([]AblationRow, error) {
	if iterations <= 0 {
		iterations = 3
	}
	movies, users, _ := workload.Netflix.Scaled(40, 64)
	bs := sched.ChooseBlockSize(movies, users, DefaultLocalParallelism, DefaultWorkers)
	configs := []struct {
		name                         string
		planner                      engine.Planner
		noPullUp, noReassign, noCPMM bool
	}{
		{name: "DMac (full)", planner: engine.DMac},
		{name: "DMac w/o Pull-Up Broadcast", planner: engine.DMac, noPullUp: true},
		{name: "DMac w/o Re-assignment", planner: engine.DMac, noReassign: true},
		{name: "DMac w/o CPMM", planner: engine.DMac, noCPMM: true},
		{name: "SystemML-S", planner: engine.SystemMLS},
	}
	var rows []AblationRow
	for _, cfg := range configs {
		e := newEngine(cfg.planner, DefaultWorkers, bs)
		e.SetAblation(cfg.noPullUp, cfg.noReassign, cfg.noCPMM)
		_, _, v := workload.Netflix.Scaled(40, bs)
		res, err := apps.GNMF(e, v, 24, iterations, 91)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s: %w", cfg.name, err)
		}
		t := res.Total()
		rows = append(rows, AblationRow{Config: cfg.name, CommBytes: t.CommBytes, ModelSec: t.ModelSeconds})
	}
	return rows, nil
}

// AblationCF runs the collaborative-filtering program (whose R %*% Rᵀ %*% R
// chain exercises Re-assignment and the broadcast sharing of Pull-Up) under
// the same configurations.
func AblationCF() ([]AblationRow, error) {
	movies, users, _ := workload.Netflix.Scaled(40, 64)
	bs := sched.ChooseBlockSize(movies, users, DefaultLocalParallelism, DefaultWorkers)
	configs := []struct {
		name                         string
		planner                      engine.Planner
		noPullUp, noReassign, noCPMM bool
	}{
		{name: "DMac (full)", planner: engine.DMac},
		{name: "DMac w/o Pull-Up Broadcast", planner: engine.DMac, noPullUp: true},
		{name: "DMac w/o Re-assignment", planner: engine.DMac, noReassign: true},
		{name: "DMac w/o CPMM", planner: engine.DMac, noCPMM: true},
		{name: "SystemML-S", planner: engine.SystemMLS},
	}
	var rows []AblationRow
	for _, cfg := range configs {
		e := newEngine(cfg.planner, DefaultWorkers, bs)
		e.SetAblation(cfg.noPullUp, cfg.noReassign, cfg.noCPMM)
		_, _, r := workload.Netflix.Scaled(40, bs)
		res, err := apps.CF(e, r)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation CF %s: %w", cfg.name, err)
		}
		t := res.Total()
		rows = append(rows, AblationRow{Config: cfg.name, CommBytes: t.CommBytes, ModelSec: t.ModelSeconds})
	}
	return rows, nil
}

// WriteAblation prints an ablation table.
func WriteAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(w, title)
	base := rows[0].CommBytes
	table := make([][]string, len(rows))
	for i, r := range rows {
		rel := "1.00x"
		if base > 0 {
			rel = fmt.Sprintf("%.2fx", float64(r.CommBytes)/float64(base))
		}
		table[i] = []string{
			r.Config,
			fmt.Sprintf("%.4f", gb(r.CommBytes)),
			rel,
			fmt.Sprintf("%.3f", r.ModelSec),
		}
	}
	writeTable(w, []string{"configuration", "comm GB", "vs full", "model s"}, table)
}
