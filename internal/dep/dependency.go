package dep

import "fmt"

// Type is one of the eight matrix-dependency types of Table 2. Each type
// names the matrix process needed to make the scheme of a produced matrix A
// satisfy the requirement of a consuming operator reading B, where B = A or
// B = Aᵀ.
type Type int

// The eight dependency types. The first four require communication, the
// last four do not (Section 3.2).
const (
	// NoDependency indicates the classification inputs do not match any of
	// the 18 combinations (e.g. an invalid scheme).
	NoDependency Type = iota
	// Partition: same matrix, opposed one-dimensional schemes; requires a
	// repartition (shuffle).
	Partition
	// TransposePartition: B = Aᵀ with equal one-dimensional schemes;
	// requires a transpose plus a repartition.
	TransposePartition
	// BroadcastDep: same matrix, consumer needs Broadcast of a
	// one-dimensionally partitioned matrix; requires replication.
	BroadcastDep
	// TransposeBroadcast: B = Aᵀ and the consumer needs Broadcast of a
	// one-dimensionally partitioned matrix.
	TransposeBroadcast
	// Reference: the produced scheme already satisfies the requirement.
	Reference
	// Transpose: B = Aᵀ with opposed schemes (or both Broadcast); a local
	// transpose suffices.
	Transpose
	// Extract: producer is Broadcast, consumer needs Row or Col; a local
	// filter suffices.
	Extract
	// ExtractTranspose: B = Aᵀ, producer Broadcast, consumer Row or Col;
	// local extract plus local transpose.
	ExtractTranspose
)

// String names the dependency type as in Table 2.
func (t Type) String() string {
	switch t {
	case NoDependency:
		return "none"
	case Partition:
		return "partition"
	case TransposePartition:
		return "transpose-partition"
	case BroadcastDep:
		return "broadcast"
	case TransposeBroadcast:
		return "transpose-broadcast"
	case Reference:
		return "reference"
	case Transpose:
		return "transpose"
	case Extract:
		return "extract"
	case ExtractTranspose:
		return "extract-transpose"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// NeedsCommunication reports whether the dependency belongs to the
// Communication Dependency category of Section 3.2.
func (t Type) NeedsCommunication() bool {
	switch t {
	case Partition, TransposePartition, BroadcastDep, TransposeBroadcast:
		return true
	default:
		return false
	}
}

// NeedsBroadcast reports whether satisfying the dependency replicates the
// matrix to every worker (cost N x |A| in the cost model, Situation 3 of
// Section 4.1).
func (t Type) NeedsBroadcast() bool {
	return t == BroadcastDep || t == TransposeBroadcast
}

// NeedsTransposeStep reports whether satisfying the dependency includes a
// transpose of the produced matrix.
func (t Type) NeedsTransposeStep() bool {
	switch t {
	case TransposePartition, TransposeBroadcast, Transpose, ExtractTranspose:
		return true
	default:
		return false
	}
}

// Classify maps an (output event, input event) pair onto its dependency
// type, implementing Table 2. transposed states whether the consumed matrix
// B is the transpose of the produced matrix A (B = Aᵀ); pOut is the scheme A
// was produced with, pIn the scheme the consumer requires for B.
func Classify(transposed bool, pOut, pIn Scheme) Type {
	if !pOut.Valid() || !pIn.Valid() {
		return NoDependency
	}
	if !transposed {
		switch {
		case Oppose(pOut, pIn):
			return Partition
		case Contain(pIn, pOut):
			return BroadcastDep
		case EqualRC(pOut, pIn) || EqualB(pOut, pIn):
			return Reference
		case Contain(pOut, pIn):
			return Extract
		}
		return NoDependency
	}
	switch {
	case EqualRC(pOut, pIn):
		return TransposePartition
	case Contain(pIn, pOut):
		return TransposeBroadcast
	case Oppose(pOut, pIn) || EqualB(pOut, pIn):
		return Transpose
	case Contain(pOut, pIn):
		return ExtractTranspose
	}
	return NoDependency
}

// Cost returns the communication cost of satisfying an input event whose
// dependency on its producing output event has type t, per the cost model of
// Section 4.1: 0 for non-communication dependencies, |A| for (transpose-)
// partition, N x |A| for (transpose-)broadcast. size is |A| in bytes (from
// the worst-case estimator) and workers is N.
func (t Type) Cost(size int64, workers int) int64 {
	switch {
	case !t.NeedsCommunication():
		return 0
	case t.NeedsBroadcast():
		return int64(workers) * size
	default:
		return size
	}
}
