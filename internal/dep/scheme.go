// Package dep defines DMac's partition schemes, input/output events, and the
// eight matrix-dependency types of Table 2 in the paper, together with their
// communication classification (Section 3).
package dep

import "fmt"

// Scheme is a distribution scheme of a matrix across the cluster
// (Section 3.1). DMac uses the two one-dimensional partition schemes plus
// Broadcast, which replicates every element on every worker.
type Scheme int

// The three schemes adopted by DMac.
const (
	// SchemeNone marks an unknown or not-yet-assigned scheme.
	SchemeNone Scheme = iota
	// Row partitions elements of the same row into the same partition.
	Row
	// Col partitions elements of the same column into the same partition.
	Col
	// Broadcast replicates every element at each partition.
	Broadcast
)

// String returns the single-letter notation used in the paper's figures
// (r, c, b).
func (s Scheme) String() string {
	switch s {
	case Row:
		return "r"
	case Col:
		return "c"
	case Broadcast:
		return "b"
	case SchemeNone:
		return "-"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Valid reports whether s is one of the three concrete schemes.
func (s Scheme) Valid() bool { return s == Row || s == Col || s == Broadcast }

// Opposite returns the complementary one-dimensional scheme (Row <-> Col).
// Broadcast is its own opposite: a local transpose of a broadcast replica is
// still a broadcast replica.
func (s Scheme) Opposite() Scheme {
	switch s {
	case Row:
		return Col
	case Col:
		return Row
	default:
		return s
	}
}

// The four scheme constraints of Table 1.

// EqualB reports whether both schemes are Broadcast.
func EqualB(pi, pj Scheme) bool { return pi == Broadcast && pj == Broadcast }

// EqualRC reports whether the schemes are the same one-dimensional scheme
// (both Row or both Col).
func EqualRC(pi, pj Scheme) bool {
	return pi == pj && (pi == Row || pi == Col)
}

// Oppose reports whether one scheme is Row and the other Col.
func Oppose(pi, pj Scheme) bool {
	return (pi == Row && pj == Col) || (pi == Col && pj == Row)
}

// Contain reports whether pi is Broadcast while pj is a one-dimensional
// scheme: a broadcast replica contains every one-dimensional partition.
func Contain(pi, pj Scheme) bool {
	return pi == Broadcast && (pj == Row || pj == Col)
}
