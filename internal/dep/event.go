package dep

import "fmt"

// MatrixID identifies a logical matrix value inside a program. Every
// operator output (and every loaded input) gets a fresh ID; reading the
// transpose of a matrix is expressed by the Transposed flag of the input
// event rather than by a new ID, which is exactly what lets the analyzer
// detect transpose dependencies.
type MatrixID int

// OutEvent is Out(A, p, op): operator Op produced matrix A with scheme
// Scheme (Section 3.1).
type OutEvent struct {
	Matrix MatrixID
	Scheme Scheme
	Op     int
}

// String formats the event in the paper's notation.
func (e OutEvent) String() string {
	return fmt.Sprintf("Out(m%d, %s, op%d)", e.Matrix, e.Scheme, e.Op)
}

// InEvent is In(B, p, op): operator Op requires matrix B with scheme Scheme,
// where B is matrix Matrix or its transpose when Transposed is set.
type InEvent struct {
	Matrix     MatrixID
	Transposed bool
	Scheme     Scheme
	Op         int
}

// String formats the event in the paper's notation.
func (e InEvent) String() string {
	t := ""
	if e.Transposed {
		t = "ᵀ"
	}
	return fmt.Sprintf("In(m%d%s, %s, op%d)", e.Matrix, t, e.Scheme, e.Op)
}

// Between classifies the matrix dependency of in on out per Definition 1:
// the input matrix must be the output matrix or its transpose, and the
// producing operator must precede the consuming one. It returns the
// dependency type and whether a dependency exists at all.
func Between(out OutEvent, in InEvent) (Type, bool) {
	if out.Matrix != in.Matrix || out.Op > in.Op {
		return NoDependency, false
	}
	t := Classify(in.Transposed, out.Scheme, in.Scheme)
	return t, t != NoDependency
}
