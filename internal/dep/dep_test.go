package dep

import (
	"testing"
	"testing/quick"
)

func TestSchemeStringsAndValidity(t *testing.T) {
	if Row.String() != "r" || Col.String() != "c" || Broadcast.String() != "b" || SchemeNone.String() != "-" {
		t.Error("scheme strings wrong")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme must still print")
	}
	if !Row.Valid() || !Col.Valid() || !Broadcast.Valid() || SchemeNone.Valid() {
		t.Error("Valid wrong")
	}
}

func TestSchemeOpposite(t *testing.T) {
	if Row.Opposite() != Col || Col.Opposite() != Row {
		t.Error("Row/Col opposite wrong")
	}
	if Broadcast.Opposite() != Broadcast {
		t.Error("Broadcast opposite should be Broadcast")
	}
}

func TestConstraints(t *testing.T) {
	if !EqualB(Broadcast, Broadcast) || EqualB(Row, Broadcast) || EqualB(Row, Row) {
		t.Error("EqualB wrong")
	}
	if !EqualRC(Row, Row) || !EqualRC(Col, Col) || EqualRC(Row, Col) || EqualRC(Broadcast, Broadcast) {
		t.Error("EqualRC wrong")
	}
	if !Oppose(Row, Col) || !Oppose(Col, Row) || Oppose(Row, Row) || Oppose(Broadcast, Row) {
		t.Error("Oppose wrong")
	}
	if !Contain(Broadcast, Row) || !Contain(Broadcast, Col) || Contain(Broadcast, Broadcast) || Contain(Row, Broadcast) {
		t.Error("Contain wrong")
	}
}

// TestClassifyTable2Exhaustive checks all 18 combinations (2 matrix
// relations x 3 producer schemes x 3 consumer schemes) against Table 2.
func TestClassifyTable2Exhaustive(t *testing.T) {
	type key struct {
		transposed bool
		pOut, pIn  Scheme
	}
	want := map[key]Type{
		// A = B (not transposed).
		{false, Row, Row}:             Reference,
		{false, Col, Col}:             Reference,
		{false, Row, Col}:             Partition,
		{false, Col, Row}:             Partition,
		{false, Row, Broadcast}:       BroadcastDep,
		{false, Col, Broadcast}:       BroadcastDep,
		{false, Broadcast, Row}:       Extract,
		{false, Broadcast, Col}:       Extract,
		{false, Broadcast, Broadcast}: Reference,
		// B = A^T.
		{true, Row, Row}:             TransposePartition,
		{true, Col, Col}:             TransposePartition,
		{true, Row, Col}:             Transpose,
		{true, Col, Row}:             Transpose,
		{true, Row, Broadcast}:       TransposeBroadcast,
		{true, Col, Broadcast}:       TransposeBroadcast,
		{true, Broadcast, Row}:       ExtractTranspose,
		{true, Broadcast, Col}:       ExtractTranspose,
		{true, Broadcast, Broadcast}: Transpose,
	}
	if len(want) != 18 {
		t.Fatalf("expected 18 combinations, listed %d", len(want))
	}
	for k, w := range want {
		if got := Classify(k.transposed, k.pOut, k.pIn); got != w {
			t.Errorf("Classify(transposed=%v, %s -> %s) = %s, want %s", k.transposed, k.pOut, k.pIn, got, w)
		}
	}
}

func TestClassifyInvalidSchemes(t *testing.T) {
	if Classify(false, SchemeNone, Row) != NoDependency {
		t.Error("invalid producer scheme should yield NoDependency")
	}
	if Classify(true, Row, SchemeNone) != NoDependency {
		t.Error("invalid consumer scheme should yield NoDependency")
	}
}

func TestCommunicationCategories(t *testing.T) {
	comm := []Type{Partition, TransposePartition, BroadcastDep, TransposeBroadcast}
	nonComm := []Type{Reference, Transpose, Extract, ExtractTranspose}
	for _, ty := range comm {
		if !ty.NeedsCommunication() {
			t.Errorf("%s should need communication", ty)
		}
	}
	for _, ty := range nonComm {
		if ty.NeedsCommunication() {
			t.Errorf("%s should not need communication", ty)
		}
	}
	if !BroadcastDep.NeedsBroadcast() || !TransposeBroadcast.NeedsBroadcast() {
		t.Error("broadcast deps should report NeedsBroadcast")
	}
	if Partition.NeedsBroadcast() || Reference.NeedsBroadcast() {
		t.Error("non-broadcast deps should not report NeedsBroadcast")
	}
	for _, ty := range []Type{TransposePartition, TransposeBroadcast, Transpose, ExtractTranspose} {
		if !ty.NeedsTransposeStep() {
			t.Errorf("%s should include a transpose step", ty)
		}
	}
	for _, ty := range []Type{Partition, BroadcastDep, Reference, Extract} {
		if ty.NeedsTransposeStep() {
			t.Errorf("%s should not include a transpose step", ty)
		}
	}
}

func TestCostModelSituations(t *testing.T) {
	const size, n = 1000, 4
	// Situation 1: non-communication -> 0.
	for _, ty := range []Type{Reference, Transpose, Extract, ExtractTranspose} {
		if got := ty.Cost(size, n); got != 0 {
			t.Errorf("%s cost = %d, want 0", ty, got)
		}
	}
	// Situation 2: partition-like -> |A|.
	for _, ty := range []Type{Partition, TransposePartition} {
		if got := ty.Cost(size, n); got != size {
			t.Errorf("%s cost = %d, want %d", ty, got, size)
		}
	}
	// Situation 3: broadcast-like -> N x |A|.
	for _, ty := range []Type{BroadcastDep, TransposeBroadcast} {
		if got := ty.Cost(size, n); got != n*size {
			t.Errorf("%s cost = %d, want %d", ty, got, n*size)
		}
	}
}

func TestBetween(t *testing.T) {
	out := OutEvent{Matrix: 1, Scheme: Row, Op: 0}
	// Same matrix, consumer after producer.
	ty, ok := Between(out, InEvent{Matrix: 1, Scheme: Col, Op: 2})
	if !ok || ty != Partition {
		t.Errorf("got (%s, %v), want (partition, true)", ty, ok)
	}
	// Transposed read.
	ty, ok = Between(out, InEvent{Matrix: 1, Transposed: true, Scheme: Col, Op: 2})
	if !ok || ty != Transpose {
		t.Errorf("got (%s, %v), want (transpose, true)", ty, ok)
	}
	// Different matrix: no dependency.
	if _, ok := Between(out, InEvent{Matrix: 2, Scheme: Col, Op: 2}); ok {
		t.Error("dependency across different matrices")
	}
	// Producer after consumer: Precede fails.
	if _, ok := Between(OutEvent{Matrix: 1, Scheme: Row, Op: 5}, InEvent{Matrix: 1, Scheme: Col, Op: 2}); ok {
		t.Error("dependency must respect program order")
	}
}

func TestEventStrings(t *testing.T) {
	o := OutEvent{Matrix: 3, Scheme: Broadcast, Op: 1}
	if o.String() != "Out(m3, b, op1)" {
		t.Errorf("OutEvent string = %q", o)
	}
	i := InEvent{Matrix: 3, Transposed: true, Scheme: Row, Op: 2}
	if i.String() != "In(m3ᵀ, r, op2)" {
		t.Errorf("InEvent string = %q", i)
	}
}

func TestTypeStrings(t *testing.T) {
	names := map[Type]string{
		NoDependency:       "none",
		Partition:          "partition",
		TransposePartition: "transpose-partition",
		BroadcastDep:       "broadcast",
		TransposeBroadcast: "transpose-broadcast",
		Reference:          "reference",
		Transpose:          "transpose",
		Extract:            "extract",
		ExtractTranspose:   "extract-transpose",
	}
	for ty, want := range names {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
	if Type(99).String() == "" {
		t.Error("unknown type must still print")
	}
}

// Property: every valid combination classifies into exactly one of the 8
// types, and the transpose-marked types appear iff the read is transposed...
func TestQuickClassifyTotalAndConsistent(t *testing.T) {
	schemes := []Scheme{Row, Col, Broadcast}
	f := func(tr bool, a, b uint8) bool {
		pOut, pIn := schemes[int(a)%3], schemes[int(b)%3]
		ty := Classify(tr, pOut, pIn)
		if ty == NoDependency {
			return false // must be total on valid schemes
		}
		// A transposed read must map to a type that includes a transpose
		// step or is satisfied by transposing locally — i.e. exactly the
		// four Aᵀ rows of Table 2.
		isTransposeType := ty == TransposePartition || ty == TransposeBroadcast || ty == Transpose || ty == ExtractTranspose
		return isTransposeType == tr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a Reference dependency exists iff schemes match exactly on a
// non-transposed read.
func TestQuickReferenceIffExactMatch(t *testing.T) {
	schemes := []Scheme{Row, Col, Broadcast}
	f := func(a, b uint8) bool {
		pOut, pIn := schemes[int(a)%3], schemes[int(b)%3]
		ty := Classify(false, pOut, pIn)
		return (ty == Reference) == (pOut == pIn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
