package dist

import (
	"context"
	"errors"
	"fmt"

	"dmac/internal/matrix"
	"dmac/internal/obs"
)

// Transport is the data plane of the cluster's collectives: it moves the
// blocks one shuffle or broadcast hands between workers. The cluster keeps
// the cost model (NetStats model charges, comm spans, corruption
// verification) on its side of this interface, so both implementations are
// accounted identically; what differs is whether bytes actually travel.
//
//   - The in-process transport (the default) moves nothing: blocks live in
//     one shared address space and a hand-off is a pointer. It still walks
//     every block of the collective and observes the context between blocks,
//     so a canceled job stops mid-collective exactly like a wire transport
//     blocked on a send would.
//   - The TCP transport (internal/dist/transport) frames every block with a
//     length prefix and a CRC32C, streams it to worker processes, and
//     reports the measured wire bytes, which the cluster records alongside
//     the model (NetStats WireBytes) so traced comm events reconcile against
//     real traffic.
//
// Implementations return *PeerDown when a destination worker is unreachable
// or failed mid-transfer; the cluster converts it into the typed
// *WorkerFailure the engine's lineage recovery already handles.
type Transport interface {
	// Name identifies the transport in metrics and logs ("inproc", "tcp").
	Name() string
	// Scatter moves each transfer's block to its destination worker. op
	// names the collective for tracing ("partition", "cpmm-shuffle", ...).
	Scatter(ctx context.Context, op string, stage int, xfers []BlockXfer) (Wire, error)
	// Ring replicates the blocks onto every listed worker by ring
	// forwarding: the coordinator sends each block to the first hop, each
	// hop forwards to the next. hops is the alive-worker ring order.
	Ring(ctx context.Context, op string, stage int, blocks []BlockXfer, hops []int) (Wire, error)
	// Collect gathers a small driver-side aggregate (8 bytes) from each
	// listed worker.
	Collect(ctx context.Context, stage int, workers []int) (Wire, error)
	// Close releases transport resources (connections, heartbeats). The
	// in-process transport has none.
	Close() error
}

// Wire is the measured traffic of one collective on the wire: payload and
// framing bytes actually written or relayed, and the frame count. The
// in-process transport always reports zero.
type Wire struct {
	Bytes  int64
	Frames int64
}

// add accumulates other into w.
func (w *Wire) add(other Wire) {
	w.Bytes += other.Bytes
	w.Frames += other.Frames
}

// BlockXfer is one block hand-off of a collective: the block (in its stored
// orientation — the receiver applies any pending transpose), its logical
// coordinates, and the destination worker.
type BlockXfer struct {
	Bi, Bj int
	To     int
	Block  matrix.Block
}

// PeerDown reports a transport peer that is unreachable or failed
// mid-transfer: the dial was refused after retries, the connection died, or
// heartbeats stopped being answered. The cluster converts it into a typed
// *WorkerFailure so lineage recovery and the checkpoint ladder fire exactly
// as they do for injected kills.
type PeerDown struct {
	// Worker is the cluster index of the dead peer.
	Worker int
	// Addr is the peer's dial address (empty for in-process peers).
	Addr string
	// Err is the underlying transport error.
	Err error
}

// Error describes the failure.
func (p *PeerDown) Error() string {
	if p.Addr != "" {
		return fmt.Sprintf("dist: worker %d (%s) down: %v", p.Worker, p.Addr, p.Err)
	}
	return fmt.Sprintf("dist: worker %d down: %v", p.Worker, p.Err)
}

// Unwrap exposes the underlying error.
func (p *PeerDown) Unwrap() error { return p.Err }

// inprocTransport is the default transport of the simulated cluster: blocks
// live in one shared Grid, so a hand-off moves nothing and measures zero
// wire bytes. It still iterates the collective's blocks and observes the
// context between them, which is what lets a canceled job abort
// mid-collective instead of finishing the stage.
type inprocTransport struct{}

func (inprocTransport) Name() string { return "inproc" }

// walk observes ctx once per block, the cancellation granularity a wire
// transport gets for free from its per-frame deadlines.
func (inprocTransport) walk(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

func (t inprocTransport) Scatter(ctx context.Context, op string, stage int, xfers []BlockXfer) (Wire, error) {
	return Wire{}, t.walk(ctx, len(xfers))
}

func (t inprocTransport) Ring(ctx context.Context, op string, stage int, blocks []BlockXfer, hops []int) (Wire, error) {
	return Wire{}, t.walk(ctx, len(blocks)*len(hops))
}

func (t inprocTransport) Collect(ctx context.Context, stage int, workers []int) (Wire, error) {
	return Wire{}, t.walk(ctx, len(workers))
}

func (inprocTransport) Close() error { return nil }

// SetTransport installs the cluster's data plane (nil restores the default
// in-process transport). When the configured fault plan injects network
// faults, the transport is additionally wrapped in the fault-injecting
// transport, so drops, delays and partitions exercise the in-process and
// TCP paths identically. Observers attached to the cluster are forwarded to
// transports that accept them.
func (c *Cluster) SetTransport(t Transport) {
	if t == nil {
		t = inprocTransport{}
	}
	c.base = t
	if o, ok := t.(interface {
		SetObserver(*obs.Tracer, *obs.Registry)
	}); ok {
		o.SetObserver(c.tracer.Load(), c.metrics.Load())
	}
	if c.cfg.Faults.injectsNet() {
		t = &netFaultTransport{inner: t, c: c}
	}
	c.transport = t
}

// Transport returns the active data plane (the fault wrapper, when network
// faults are configured).
func (c *Cluster) Transport() Transport { return c.transport }

// TransportName names the underlying transport ("inproc", "tcp"),
// unwrapping the fault injector.
func (c *Cluster) TransportName() string { return c.base.Name() }

// Close releases the cluster's transport (connections, heartbeat loops).
// Safe to call on a cluster using the in-process transport.
func (c *Cluster) Close() error { return c.base.Close() }

// aliveList returns the alive workers in ascending order — the ring order
// of broadcasts and the destination set of collects.
func (c *Cluster) aliveList() []int {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	out := make([]int, 0, c.aliveLocked())
	for w := 0; w < c.cfg.Workers; w++ {
		if !c.dead[w] {
			out = append(out, w)
		}
	}
	return out
}

// scatterXfers lists the block hand-offs that place m's blocks on their
// owners under m's scheme — the move set of a repartition or a materialized
// shuffle. copies > 1 replays the set per sending worker (the CPMM partial
// aggregation, where every alive worker ships its own partial of each
// block).
func (c *Cluster) scatterXfers(m *DistMatrix, copies int) []BlockXfer {
	br, bc := m.BlockRows(), m.BlockCols()
	out := make([]BlockXfer, 0, br*bc*copies)
	for copy := 0; copy < copies; copy++ {
		for bi := 0; bi < br; bi++ {
			for bj := 0; bj < bc; bj++ {
				out = append(out, BlockXfer{Bi: bi, Bj: bj, To: c.Owner(m, bi, bj), Block: m.StoredBlock(bi, bj)})
			}
		}
	}
	return out
}

// ringXfers lists m's blocks once each (destination filled per hop by the
// transport) — the payload of a ring broadcast.
func (m *DistMatrix) ringXfers() []BlockXfer {
	br, bc := m.BlockRows(), m.BlockCols()
	out := make([]BlockXfer, 0, br*bc)
	for bi := 0; bi < br; bi++ {
		for bj := 0; bj < bc; bj++ {
			out = append(out, BlockXfer{Bi: bi, Bj: bj, To: -1, Block: m.StoredBlock(bi, bj)})
		}
	}
	return out
}

// chargeWire records measured wire traffic alongside the model: NetStats
// wire totals, a "net" trace event, and the net.* labeled metric families.
// The in-process transport reports zero and charges nothing, so modelled
// accounting stays byte-for-byte what it was before transports existed.
func (c *Cluster) chargeWire(stage int, op string, w Wire) {
	if w.Bytes == 0 && w.Frames == 0 {
		return
	}
	c.net.AddWire(w.Bytes, w.Frames)
	if tr := c.tracer.Load(); tr.Enabled() {
		tr.Event("net", op, tr.Scope(),
			obs.Int64("stage", int64(stage)),
			obs.Int64("wire_bytes", w.Bytes),
			obs.Int64("frames", w.Frames))
	}
	if m := c.metrics.Load(); m != nil {
		m.CounterVec("net.wire.bytes", "op").With(op).Add(w.Bytes)
		m.CounterVec("net.wire.frames", "op").With(op).Add(w.Frames)
	}
}

// commFailure classifies a transport error: a dead peer becomes the typed
// *WorkerFailure the engine's recovery path handles (stage retried, worker
// removed, blocks re-partitioned from lineage); context errors and
// already-typed failures pass through unchanged.
func (c *Cluster) commFailure(err error, stage int) error {
	if err == nil {
		return nil
	}
	var wf *WorkerFailure
	if errors.As(err, &wf) {
		return err
	}
	var pd *PeerDown
	if errors.As(err, &pd) {
		if m := c.metrics.Load(); m != nil {
			m.Counter("net.peer.down").Inc()
		}
		return &WorkerFailure{
			Worker:  pd.Worker,
			Stage:   stage,
			Attempt: int(c.curAttempt.Load()),
			Kind:    FaultNetPartition,
		}
	}
	return err
}
