package dist

import (
	"fmt"
	"hash/fnv"
	"sort"

	"dmac/internal/obs"
)

// FaultKind discriminates the injectable faults. Kills model Spark worker
// loss: the stage attempt they hit fails, the worker leaves the cluster for
// good, and the engine recovers the lost blocks from lineage before
// retrying. Delays model transient stalls (GC pauses, slow disks) that cost
// time but no data.
type FaultKind int

// The injectable fault kinds.
const (
	// FaultKillBoundary kills the worker at the stage boundary, before any
	// task of the stage runs.
	FaultKillBoundary FaultKind = iota
	// FaultKillTask kills the worker while the stage's block tasks are
	// running: the work already done by the attempt is charged, then the
	// stage fails.
	FaultKillTask
	// FaultDelay stalls the stage by DelaySec without losing data.
	FaultDelay
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultKillBoundary:
		return "kill-boundary"
	case FaultKillTask:
		return "kill-task"
	case FaultDelay:
		return "delay"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent is one scripted fault: at the given stage, on the given retry
// attempt (0 = the first execution), the given worker fails or stalls.
type FaultEvent struct {
	// Stage is the 1-based stage index the fault fires at.
	Stage int
	// Worker is the victim worker index.
	Worker int
	// Attempt selects which execution attempt of the stage the fault fires
	// on; 0 is the first attempt, so retries succeed.
	Attempt int
	// Kind is the fault type.
	Kind FaultKind
	// DelaySec is the stall charged by a FaultDelay event.
	DelaySec float64
}

// FaultPlan deterministically injects worker faults at stage boundaries or
// into running block tasks. A plan combines scripted events with an optional
// seeded random component: with Rate > 0, each (stage, worker) pair fails
// with probability Rate, decided by a hash of (Seed, stage, worker) — the
// same plan always kills the same workers at the same stages, which is what
// lets the chaos harness assert bit-identical results across runs.
//
// Random kills fire on every attempt while their worker is alive, so a
// stage with several doomed workers loses them one retry at a time; scripted
// events fire only on their configured attempt. The cluster never kills its
// last surviving worker: events that would are ignored.
type FaultPlan struct {
	// Events are scripted faults.
	Events []FaultEvent
	// Seed drives the random component.
	Seed int64
	// Rate is the probability a given (stage, worker) pair fails. 0 disables
	// the random component.
	Rate float64
	// TaskFaults makes random kills fire mid-stage (FaultKillTask) instead
	// of at the stage boundary.
	TaskFaults bool
}

// Empty reports whether the plan injects nothing.
func (p FaultPlan) Empty() bool {
	return len(p.Events) == 0 && p.Rate <= 0
}

// RandomFaultPlan returns a purely seeded plan that kills each (stage,
// worker) pair at stage boundaries with the given probability.
func RandomFaultPlan(seed int64, rate float64) FaultPlan {
	return FaultPlan{Seed: seed, Rate: rate}
}

// hashUnit maps (seed, stage, worker) to a deterministic value in [0, 1).
func hashUnit(seed int64, stage, worker int) float64 {
	h := fnv.New64a()
	var buf [24]byte
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, uint64(seed))
	put(8, uint64(stage))
	put(16, uint64(worker))
	h.Write(buf[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// eventsAt lists the faults the plan fires for one stage attempt on a
// cluster of the given size, scripted events first, in deterministic order.
func (p FaultPlan) eventsAt(stage, attempt, workers int) []FaultEvent {
	var out []FaultEvent
	for _, ev := range p.Events {
		if ev.Stage == stage && ev.Attempt == attempt {
			out = append(out, ev)
		}
	}
	if p.Rate > 0 {
		kind := FaultKillBoundary
		if p.TaskFaults {
			kind = FaultKillTask
		}
		for w := 0; w < workers; w++ {
			if hashUnit(p.Seed, stage, w) < p.Rate {
				out = append(out, FaultEvent{Stage: stage, Worker: w, Attempt: attempt, Kind: kind})
			}
		}
	}
	return out
}

// WorkerFailure is the error a stage attempt fails with when an injected (or,
// in a real deployment, observed) fault kills a worker. The engine's execute
// path recovers from it: the dead worker's blocks are re-partitioned across
// survivors, the recovery shuffle is charged to NetStats, and the stage is
// retried with capped exponential backoff.
type WorkerFailure struct {
	// Worker is the index of the dead worker.
	Worker int
	// Stage is the stage the failure surfaced in.
	Stage int
	// Attempt is the execution attempt that failed (0-based).
	Attempt int
	// Kind is the fault that caused the failure.
	Kind FaultKind
}

// Error describes the failure.
func (f *WorkerFailure) Error() string {
	return fmt.Sprintf("dist: worker %d lost at stage %d attempt %d (%s)", f.Worker, f.Stage, f.Attempt, f.Kind)
}

// BeginStage marks the start of one execution attempt of a stage and injects
// the faults the configured plan scripts for it. Delay faults are charged
// immediately as stalled time; a boundary kill is returned as a
// *WorkerFailure; a task kill is armed and surfaces from one of the stage's
// operators (or at the stage's end if no operator consumed it). Faults
// naming dead workers, or whose victim is the last survivor, are ignored.
func (c *Cluster) BeginStage(stage, attempt int) error {
	c.curStage.Store(int64(stage))
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	c.pending = nil
	var boundary *WorkerFailure
	for _, ev := range c.cfg.Faults.eventsAt(stage, attempt, c.cfg.Workers) {
		if ev.Worker < 0 || ev.Worker >= c.cfg.Workers || c.dead[ev.Worker] {
			continue
		}
		switch ev.Kind {
		case FaultDelay:
			c.net.AddStall(ev.DelaySec)
		case FaultKillBoundary:
			if boundary == nil && c.aliveLocked() > 1 {
				boundary = &WorkerFailure{Worker: ev.Worker, Stage: stage, Attempt: attempt, Kind: ev.Kind}
			}
		case FaultKillTask:
			if c.pending == nil && c.aliveLocked() > 1 {
				c.pending = &WorkerFailure{Worker: ev.Worker, Stage: stage, Attempt: attempt, Kind: ev.Kind}
			}
		}
	}
	if boundary != nil {
		c.pending = nil
		return boundary
	}
	return nil
}

// TakeFault consumes the armed task fault, if any. Cluster operators call it
// so a doomed stage attempt aborts at the first operator after the fault;
// the engine calls it once more at stage end so a fault is never lost even
// if the stage ran no fault-checked operator.
func (c *Cluster) TakeFault() *WorkerFailure {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	f := c.pending
	c.pending = nil
	return f
}

// opFault adapts TakeFault to the error-returning cluster operators.
func (c *Cluster) opFault() error {
	if f := c.TakeFault(); f != nil {
		return f
	}
	return nil
}

// ChargeRecovery records a lineage-recovery shuffle after the given worker
// died: the bytes are charged to the network as ordinary communication
// feeding the stage, attributed separately as recovery cost, and — when
// observability is attached — surfaced as a "recovery" comm span and
// fault counters.
func (c *Cluster) ChargeRecovery(stage, worker int, bytes int64) {
	c.net.AddRecovery(stage, bytes)
	c.traceComm(stage, "recovery", bytes, obs.Int64("worker", int64(worker)))
	if m := c.metrics.Load(); m != nil {
		m.Counter("fault.recovery.bytes").Add(bytes)
	}
}

// KillWorker permanently removes a worker from the cluster. The last
// survivor cannot be killed; the return value reports whether the worker was
// actually removed. Subsequent block placement maps the dead worker's blocks
// onto survivors (see Owner), and broadcasts and driver collects are charged
// for the surviving workers only.
func (c *Cluster) KillWorker(w int) bool {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	if w < 0 || w >= c.cfg.Workers || c.dead[w] || c.aliveLocked() <= 1 {
		return false
	}
	if c.dead == nil {
		c.dead = make(map[int]bool)
	}
	c.dead[w] = true
	return true
}

// AliveWorkers returns the number of workers still in the cluster.
func (c *Cluster) AliveWorkers() int {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	return c.aliveLocked()
}

func (c *Cluster) aliveLocked() int {
	return c.cfg.Workers - len(c.dead)
}

// DeadWorkers lists the killed workers in ascending order.
func (c *Cluster) DeadWorkers() []int {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	out := make([]int, 0, len(c.dead))
	for w := range c.dead {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// reassignIfDead maps a block owner onto a surviving worker: dead workers'
// blocks are spread deterministically across the alive set.
func (c *Cluster) reassignIfDead(w int) int {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	if !c.dead[w] {
		return w
	}
	alive := make([]int, 0, c.aliveLocked())
	for i := 0; i < c.cfg.Workers; i++ {
		if !c.dead[i] {
			alive = append(alive, i)
		}
	}
	return alive[w%len(alive)]
}
