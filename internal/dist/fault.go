package dist

import (
	"fmt"
	"hash/fnv"
	"sort"

	"dmac/internal/mio"
	"dmac/internal/obs"
)

// FaultKind discriminates the injectable faults. Kills model Spark worker
// loss: the stage attempt they hit fails, the worker leaves the cluster for
// good, and the engine recovers the lost blocks from lineage before
// retrying. Delays model transient stalls (GC pauses, slow disks) that cost
// time but no data. Corruptions model silent data damage in transit or at
// rest: a byte of one block flips between sender and receiver, and the
// checksum verification at block hand-off must detect it, quarantine the
// damaged copy, and re-fetch the block from its source.
type FaultKind int

// The injectable fault kinds.
const (
	// FaultKillBoundary kills the worker at the stage boundary, before any
	// task of the stage runs.
	FaultKillBoundary FaultKind = iota
	// FaultKillTask kills the worker while the stage's block tasks are
	// running: the work already done by the attempt is charged, then the
	// stage fails.
	FaultKillTask
	// FaultDelay stalls the stage by DelaySec without losing data.
	FaultDelay
	// FaultCorrupt flips a byte of one block sent by the event's worker at
	// the stage's next block hand-off. The corruption is detected by the
	// CRC32C check at the receiver, counted in NetStats, and healed by
	// re-fetching the block — results stay bit-identical.
	FaultCorrupt
	// FaultNetDrop drops the blocks the stage sends to the event's worker;
	// the transport detects the loss and retransmits, so the fault costs a
	// retransmit round-trip (stall plus, on a wire transport, the repeated
	// bytes) but never data.
	FaultNetDrop
	// FaultNetDelay stalls the stage's traffic to the event's worker by
	// DelaySec without losing anything.
	FaultNetDelay
	// FaultNetPartition cuts the link to the event's worker: the first
	// collective that must reach it fails with a *WorkerFailure of this
	// kind, and the engine recovers exactly as for a killed worker (the
	// partitioned worker leaves the cluster, its blocks are re-partitioned
	// from lineage, the stage retries). Heartbeat-detected dead peers of the
	// TCP transport surface with this kind too.
	FaultNetPartition
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultKillBoundary:
		return "kill-boundary"
	case FaultKillTask:
		return "kill-task"
	case FaultDelay:
		return "delay"
	case FaultCorrupt:
		return "corrupt"
	case FaultNetDrop:
		return "net-drop"
	case FaultNetDelay:
		return "net-delay"
	case FaultNetPartition:
		return "net-partition"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultEvent is one scripted fault: at the given stage, on the given retry
// attempt (0 = the first execution), the given worker fails or stalls.
type FaultEvent struct {
	// Stage is the 1-based stage index the fault fires at.
	Stage int
	// Worker is the victim worker index.
	Worker int
	// Attempt selects which execution attempt of the stage the fault fires
	// on; 0 is the first attempt, so retries succeed.
	Attempt int
	// Kind is the fault type.
	Kind FaultKind
	// DelaySec is the stall charged by a FaultDelay event.
	DelaySec float64
}

// FaultPlan deterministically injects worker faults at stage boundaries or
// into running block tasks. A plan combines scripted events with an optional
// seeded random component: with Rate > 0, each (stage, worker) pair fails
// with probability Rate, decided by a hash of (Seed, stage, worker) — the
// same plan always kills the same workers at the same stages, which is what
// lets the chaos harness assert bit-identical results across runs.
//
// Random kills fire on every attempt while their worker is alive, so a
// stage with several doomed workers loses them one retry at a time; scripted
// events fire only on their configured attempt. The cluster never kills its
// last surviving worker: events that would are ignored.
type FaultPlan struct {
	// Events are scripted faults.
	Events []FaultEvent
	// Seed drives the random component.
	Seed int64
	// Rate is the probability a given (stage, worker) pair fails. 0 disables
	// the random component.
	Rate float64
	// TaskFaults makes random kills fire mid-stage (FaultKillTask) instead
	// of at the stage boundary.
	TaskFaults bool
	// CorruptRate is the probability a given (stage, worker) pair corrupts a
	// block it sends at that stage's first hand-off (decided by a hash of
	// (Seed, stage, worker), independent of Rate's kill decisions). 0
	// disables random corruption.
	CorruptRate float64
	// NetDropRate is the probability the network drops the blocks a stage's
	// first attempt sends to a given worker (decided by a salted hash of
	// (Seed, stage, worker), independent of the kill and corruption
	// decisions). Dropped transfers are retransmitted — the fault costs a
	// stall and repeated wire bytes, never data. 0 disables random drops.
	NetDropRate float64
	// NetPartition lists workers cut off from the cluster starting at stage
	// NetPartitionStage (0 means from the first stage). A partitioned worker
	// fails the first collective that must reach it with a *WorkerFailure of
	// kind FaultNetPartition and is then recovered like a killed worker.
	NetPartition []int
	// NetPartitionStage is the 1-based stage the partition begins at; 0
	// partitions from the start.
	NetPartitionStage int
}

// Empty reports whether the plan injects nothing.
func (p FaultPlan) Empty() bool {
	return len(p.Events) == 0 && p.Rate <= 0 && p.CorruptRate <= 0 && !p.injectsNet()
}

// injectsNet reports whether the plan injects network faults, which is what
// decides whether the cluster wraps its transport in the fault injector.
func (p FaultPlan) injectsNet() bool {
	if p.NetDropRate > 0 || len(p.NetPartition) > 0 {
		return true
	}
	for _, ev := range p.Events {
		switch ev.Kind {
		case FaultNetDrop, FaultNetDelay, FaultNetPartition:
			return true
		}
	}
	return false
}

// Validate rejects plans that would behave silently oddly: probabilities
// outside [0, 1], negative delays, and events naming negative stages,
// workers or attempts. Cluster setup records the verdict and the first
// BeginStage surfaces it, so a malformed plan fails a run with a descriptive
// error instead of injecting nothing (or hashing garbage).
func (p FaultPlan) Validate() error {
	if p.Rate < 0 || p.Rate > 1 {
		return fmt.Errorf("dist: fault plan Rate %v outside [0,1]", p.Rate)
	}
	if p.CorruptRate < 0 || p.CorruptRate > 1 {
		return fmt.Errorf("dist: fault plan CorruptRate %v outside [0,1]", p.CorruptRate)
	}
	if p.NetDropRate < 0 || p.NetDropRate > 1 {
		return fmt.Errorf("dist: fault plan NetDropRate %v outside [0,1]", p.NetDropRate)
	}
	if p.NetPartitionStage < 0 {
		return fmt.Errorf("dist: fault plan has negative NetPartitionStage %d", p.NetPartitionStage)
	}
	for i, w := range p.NetPartition {
		if w < 0 {
			return fmt.Errorf("dist: fault plan NetPartition[%d] is negative worker %d", i, w)
		}
	}
	for i, ev := range p.Events {
		switch {
		case ev.Stage < 0:
			return fmt.Errorf("dist: fault event %d has negative Stage %d", i, ev.Stage)
		case ev.Worker < 0:
			return fmt.Errorf("dist: fault event %d has negative Worker %d", i, ev.Worker)
		case ev.Attempt < 0:
			return fmt.Errorf("dist: fault event %d has negative Attempt %d", i, ev.Attempt)
		case ev.DelaySec < 0:
			return fmt.Errorf("dist: fault event %d has negative DelaySec %v", i, ev.DelaySec)
		case ev.Kind < FaultKillBoundary || ev.Kind > FaultNetPartition:
			return fmt.Errorf("dist: fault event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// ValidateFor is Validate plus the checks that need the cluster size:
// partitioning a worker the cluster does not have would silently inject
// nothing, so it is rejected here. (Scripted kill events naming out-of-range
// workers stay merely ignored, as documented on BeginStage — existing plans
// rely on that — but a partition is a topology statement and a typo'd worker
// index in one is always a bug.)
func (p FaultPlan) ValidateFor(workers int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	for i, w := range p.NetPartition {
		if w >= workers {
			return fmt.Errorf("dist: fault plan NetPartition[%d] names worker %d of a %d-worker cluster", i, w, workers)
		}
	}
	return nil
}

// RandomFaultPlan returns a purely seeded plan that kills each (stage,
// worker) pair at stage boundaries with the given probability.
func RandomFaultPlan(seed int64, rate float64) FaultPlan {
	return FaultPlan{Seed: seed, Rate: rate}
}

// hashUnit maps (seed, stage, worker) to a deterministic value in [0, 1).
func hashUnit(seed int64, stage, worker int) float64 {
	h := fnv.New64a()
	var buf [24]byte
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, uint64(seed))
	put(8, uint64(stage))
	put(16, uint64(worker))
	h.Write(buf[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// eventsAt lists the faults the plan fires for one stage attempt on a
// cluster of the given size, scripted events first, in deterministic order.
func (p FaultPlan) eventsAt(stage, attempt, workers int) []FaultEvent {
	var out []FaultEvent
	for _, ev := range p.Events {
		if ev.Stage == stage && ev.Attempt == attempt {
			out = append(out, ev)
		}
	}
	if p.Rate > 0 {
		kind := FaultKillBoundary
		if p.TaskFaults {
			kind = FaultKillTask
		}
		for w := 0; w < workers; w++ {
			if hashUnit(p.Seed, stage, w) < p.Rate {
				out = append(out, FaultEvent{Stage: stage, Worker: w, Attempt: attempt, Kind: kind})
			}
		}
	}
	if p.CorruptRate > 0 && attempt == 0 {
		// Corruption decisions are salted so they are independent of the kill
		// decisions at the same (stage, worker); they fire on the first
		// attempt only — retried attempts re-shuffle clean data, as a real
		// transient bit-flip would.
		for w := 0; w < workers; w++ {
			if hashUnit(p.Seed^corruptSalt, stage, w) < p.CorruptRate {
				out = append(out, FaultEvent{Stage: stage, Worker: w, Attempt: attempt, Kind: FaultCorrupt})
			}
		}
	}
	return out
}

// corruptSalt decorrelates random corruption from random kills under the
// same seed; netDropSalt does the same for random network drops.
const (
	corruptSalt int64 = 0x5bd1e995
	netDropSalt int64 = 0x27d4eb2f
)

// ErrWorkerLost is the sentinel all worker-loss failures match:
// errors.Is(err, dist.ErrWorkerLost) classifies injected kills, network
// partitions, and heartbeat-detected dead peers alike, without caring which
// kind the *WorkerFailure carries.
var ErrWorkerLost = errWorkerLost{}

type errWorkerLost struct{}

func (errWorkerLost) Error() string { return "dist: worker lost" }

// WorkerFailure is the error a stage attempt fails with when an injected (or,
// in a real deployment, observed) fault kills a worker. The engine's execute
// path recovers from it: the dead worker's blocks are re-partitioned across
// survivors, the recovery shuffle is charged to NetStats, and the stage is
// retried with capped exponential backoff.
type WorkerFailure struct {
	// Worker is the index of the dead worker.
	Worker int
	// Stage is the stage the failure surfaced in.
	Stage int
	// Attempt is the execution attempt that failed (0-based).
	Attempt int
	// Kind is the fault that caused the failure.
	Kind FaultKind
}

// Error describes the failure.
func (f *WorkerFailure) Error() string {
	return fmt.Sprintf("dist: worker %d lost at stage %d attempt %d (%s)", f.Worker, f.Stage, f.Attempt, f.Kind)
}

// Unwrap makes every worker failure match errors.Is(err, ErrWorkerLost).
func (f *WorkerFailure) Unwrap() error { return ErrWorkerLost }

// BeginStage marks the start of one execution attempt of a stage and injects
// the faults the configured plan scripts for it. Delay faults are charged
// immediately as stalled time; a boundary kill is returned as a
// *WorkerFailure; a task kill is armed and surfaces from one of the stage's
// operators (or at the stage's end if no operator consumed it); a corruption
// is armed and fires at the stage's next block hand-off (unconsumed
// corruptions are disarmed at the next BeginStage — a stage that moves no
// blocks gives a bit-flip nothing to damage). An invalid fault plan
// (FaultPlan.Validate) fails here with its descriptive error. Faults naming
// dead workers, or whose kill victim is the last survivor, are ignored.
func (c *Cluster) BeginStage(stage, attempt int) error {
	if c.faultErr != nil {
		return c.faultErr
	}
	c.curStage.Store(int64(stage))
	c.curAttempt.Store(int64(attempt))
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	c.pending = nil
	c.corrupt = nil
	c.netArmed = nil
	var boundary *WorkerFailure
	for _, ev := range c.cfg.Faults.eventsAt(stage, attempt, c.cfg.Workers) {
		if ev.Worker < 0 || ev.Worker >= c.cfg.Workers || c.dead[ev.Worker] {
			continue
		}
		switch ev.Kind {
		case FaultDelay:
			c.net.AddStall(ev.DelaySec)
		case FaultKillBoundary:
			if boundary == nil && c.aliveLocked() > 1 {
				boundary = &WorkerFailure{Worker: ev.Worker, Stage: stage, Attempt: attempt, Kind: ev.Kind}
			}
		case FaultKillTask:
			if c.pending == nil && c.aliveLocked() > 1 {
				c.pending = &WorkerFailure{Worker: ev.Worker, Stage: stage, Attempt: attempt, Kind: ev.Kind}
			}
		case FaultCorrupt:
			c.corrupt = append(c.corrupt, ev)
		case FaultNetDrop, FaultNetDelay, FaultNetPartition:
			c.netArmed = append(c.netArmed, ev)
		}
	}
	if boundary != nil {
		c.pending = nil
		return boundary
	}
	return nil
}

// TakeFault consumes the armed task fault, if any. Cluster operators call it
// so a doomed stage attempt aborts at the first operator after the fault;
// the engine calls it once more at stage end so a fault is never lost even
// if the stage ran no fault-checked operator.
func (c *Cluster) TakeFault() *WorkerFailure {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	f := c.pending
	c.pending = nil
	return f
}

// opFault adapts TakeFault to the error-returning cluster operators.
func (c *Cluster) opFault() error {
	if f := c.TakeFault(); f != nil {
		return f
	}
	return nil
}

// takeCorrupt consumes the corruption faults armed for the current stage
// attempt.
func (c *Cluster) takeCorrupt() []FaultEvent {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	evs := c.corrupt
	c.corrupt = nil
	return evs
}

// victimBlock picks the block a corruption event damages: the first block
// (row-major over logical coordinates) placed on the event's worker, falling
// back to (0, 0) when the worker owns none (a broadcast replica, say).
func (c *Cluster) victimBlock(m *DistMatrix, worker int) (int, int) {
	for bi := 0; bi < m.BlockRows(); bi++ {
		for bj := 0; bj < m.BlockCols(); bj++ {
			if c.Owner(m, bi, bj) == worker {
				return bi, bj
			}
		}
	}
	return 0, 0
}

// verifyTransfer is the receiver-side integrity check of one block hand-off:
// every communication primitive calls it after charging its transfer, and any
// corruption fault armed for the stage fires here. The fault flips a byte in
// the in-transit encoding of one block sent by the event's worker — a copy;
// the sender's stored block stays pristine — and the receiver compares the
// copy's CRC32C against the sender's checksum. A mismatch quarantines the
// damaged copy (it is simply never installed) and re-fetches the block from
// its source, charging the repeat transfer to the network; results therefore
// stay bit-identical to a fault-free run while every corruption is detected
// and accounted (NetStats CorruptionsInjected/CorruptionsDetected).
func (c *Cluster) verifyTransfer(m *DistMatrix, stage int, op string) {
	for _, ev := range c.takeCorrupt() {
		bi, bj := c.victimBlock(m, ev.Worker)
		blk := m.StoredBlock(bi, bj)
		enc := mio.EncodeBlock(blk)
		want := mio.BlockChecksum(blk)
		enc[len(enc)/2] ^= 0x04
		detected := mio.ChecksumBytes(enc) != want
		c.net.AddCorruption(detected)
		if mtr := c.metrics.Load(); mtr != nil {
			mtr.Counter("fault.corrupt.injected").Inc()
			if detected {
				mtr.Counter("fault.corrupt.detected").Inc()
			}
		}
		if !detected {
			// CRC32C detects every burst error shorter than 32 bits, so a
			// single flipped byte cannot get here; the branch guards future
			// multi-block damage models.
			continue
		}
		refetch := m.BlockBytes(bi, bj)
		c.net.AddComm(stage, refetch)
		c.traceComm(stage, "corrupt-refetch", refetch,
			obs.String("op", op), obs.Int64("worker", int64(ev.Worker)),
			obs.Int64("block_row", int64(bi)), obs.Int64("block_col", int64(bj)))
	}
}

// ChargeRecovery records a lineage-recovery shuffle after the given worker
// died: the bytes are charged to the network as ordinary communication
// feeding the stage, attributed separately as recovery cost, and — when
// observability is attached — surfaced as a "recovery" comm span and
// fault counters.
func (c *Cluster) ChargeRecovery(stage, worker int, bytes int64) {
	c.net.AddRecovery(stage, bytes)
	c.traceComm(stage, "recovery", bytes, obs.Int64("worker", int64(worker)))
	if m := c.metrics.Load(); m != nil {
		m.Counter("fault.recovery.bytes").Add(bytes)
	}
}

// KillWorker permanently removes a worker from the cluster. The last
// survivor cannot be killed; the return value reports whether the worker was
// actually removed. Subsequent block placement maps the dead worker's blocks
// onto survivors (see Owner), and broadcasts and driver collects are charged
// for the surviving workers only.
func (c *Cluster) KillWorker(w int) bool {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	if w < 0 || w >= c.cfg.Workers || c.dead[w] || c.aliveLocked() <= 1 {
		return false
	}
	if c.dead == nil {
		c.dead = make(map[int]bool)
	}
	c.dead[w] = true
	return true
}

// AliveWorkers returns the number of workers still in the cluster.
func (c *Cluster) AliveWorkers() int {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	return c.aliveLocked()
}

func (c *Cluster) aliveLocked() int {
	return c.cfg.Workers - len(c.dead)
}

// DeadWorkers lists the killed workers in ascending order.
func (c *Cluster) DeadWorkers() []int {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	out := make([]int, 0, len(c.dead))
	for w := range c.dead {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// reassignIfDead maps a block owner onto a surviving worker: dead workers'
// blocks are spread deterministically across the alive set.
func (c *Cluster) reassignIfDead(w int) int {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	if !c.dead[w] {
		return w
	}
	alive := make([]int, 0, c.aliveLocked())
	for i := 0; i < c.cfg.Workers; i++ {
		if !c.dead[i] {
			alive = append(alive, i)
		}
	}
	return alive[w%len(alive)]
}
