package dist

import (
	"context"
	"errors"
	"sort"
	"sync"
)

// errInjectedPartition is the root cause of an injected network partition;
// it surfaces wrapped in *PeerDown, then converted to *WorkerFailure.
var errInjectedPartition = errors.New("dist: injected network partition")

// netFaultTransport is the network fault injector: a Transport wrapping the
// real data plane, so drops, delays and partitions are injected at the exact
// layer a real network fails at, and exercise the in-process and TCP
// transports identically.
//
//   - A partition (plan NetPartition, or a scripted FaultNetPartition event)
//     fails the collective with *PeerDown before anything is sent: the link
//     to the worker is gone. The cluster converts it into *WorkerFailure,
//     and engine recovery removes the worker, after which it is no longer a
//     destination and the retry proceeds.
//   - A drop (plan NetDropRate on a first attempt, or a scripted
//     FaultNetDrop event) loses the blocks sent to one worker once; the
//     injector retransmits them through the wrapped transport — real
//     repeated bytes on a wire transport — and charges one retransmit
//     round-trip of stall. Drops fire at most once per (stage, worker) per
//     attempt.
//   - A delay (scripted FaultNetDelay) stalls the stage's first collective
//     by DelaySec; purely a model charge.
type netFaultTransport struct {
	inner Transport
	c     *Cluster

	// mu guards the one-shot bookkeeping below. stage/attempt identify the
	// stage attempt the bookkeeping belongs to; a new attempt resets it.
	mu        sync.Mutex
	stage     int
	attempt   int
	dropFired map[int]bool
	delayDone bool
}

func (t *netFaultTransport) Name() string { return t.inner.Name() }

func (t *netFaultTransport) Close() error { return t.inner.Close() }

// decide computes the injector's verdict for one collective reaching dests
// (alive workers, ascending): the partitioned worker to fail on (-1 for
// none), the workers whose transfer is dropped this time, and the delay to
// stall.
func (t *netFaultTransport) decide(stage int, dests []int) (partition int, drops []int, delaySec float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	attempt := int(t.c.curAttempt.Load())
	if t.stage != stage || t.attempt != attempt {
		t.stage, t.attempt = stage, attempt
		t.dropFired = nil
		t.delayDone = false
	}

	plan := t.c.cfg.Faults
	t.c.faultMu.Lock()
	armed := make([]FaultEvent, len(t.c.netArmed))
	copy(armed, t.c.netArmed)
	t.c.faultMu.Unlock()

	partition = -1
	planPart := func(w int) bool {
		if plan.NetPartitionStage > 0 && stage < plan.NetPartitionStage {
			return false
		}
		for _, p := range plan.NetPartition {
			if p == w {
				return true
			}
		}
		return false
	}
	// Armed events were selected for the current BeginStage attempt, but the
	// collectives of a stage may carry a different stage index than the
	// arming one; match the event's own stage so nothing fires twice.
	armedKind := func(w int, k FaultKind) bool {
		for _, ev := range armed {
			if ev.Worker == w && ev.Kind == k && ev.Stage == stage {
				return true
			}
		}
		return false
	}
	for _, w := range dests {
		if partition < 0 && (planPart(w) || armedKind(w, FaultNetPartition)) {
			partition = w
			continue
		}
		if t.dropFired[w] {
			continue
		}
		dropped := armedKind(w, FaultNetDrop) ||
			(attempt == 0 && plan.NetDropRate > 0 && hashUnit(plan.Seed^netDropSalt, stage, w) < plan.NetDropRate)
		if dropped {
			if t.dropFired == nil {
				t.dropFired = make(map[int]bool)
			}
			t.dropFired[w] = true
			drops = append(drops, w)
		}
	}
	if !t.delayDone {
		for _, ev := range armed {
			if ev.Kind == FaultNetDelay && ev.Stage == stage {
				delaySec += ev.DelaySec
			}
		}
		t.delayDone = true
	}
	return partition, drops, delaySec
}

// charge records the injector's non-fatal verdicts against the model: the
// delay and one retransmit round-trip (the configured per-shuffle latency)
// per drop.
func (t *netFaultTransport) charge(drops []int, delaySec float64) {
	c := t.c
	for range drops {
		c.net.AddNetDrop()
		c.net.AddStall(c.cfg.ShuffleLatencySec)
		if m := c.metrics.Load(); m != nil {
			m.Counter("fault.net.drops").Inc()
		}
	}
	if delaySec > 0 {
		c.net.AddNetDelay()
		c.net.AddStall(delaySec)
		if m := c.metrics.Load(); m != nil {
			m.Counter("fault.net.delays").Inc()
		}
	}
}

// destSet lists the distinct destination workers of a transfer set,
// ascending.
func destSet(xfers []BlockXfer) []int {
	seen := make(map[int]bool, 4)
	for _, x := range xfers {
		seen[x.To] = true
	}
	out := make([]int, 0, len(seen))
	for w := range seen {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

func (t *netFaultTransport) Scatter(ctx context.Context, op string, stage int, xfers []BlockXfer) (Wire, error) {
	partition, drops, delay := t.decide(stage, destSet(xfers))
	if partition >= 0 {
		return Wire{}, &PeerDown{Worker: partition, Err: errInjectedPartition}
	}
	w, err := t.inner.Scatter(ctx, op, stage, xfers)
	if err != nil {
		return w, err
	}
	t.charge(drops, delay)
	for _, d := range drops {
		var again []BlockXfer
		for _, x := range xfers {
			if x.To == d {
				again = append(again, x)
			}
		}
		rw, err := t.inner.Scatter(ctx, op, stage, again)
		w.add(rw)
		if err != nil {
			return w, err
		}
	}
	return w, nil
}

func (t *netFaultTransport) Ring(ctx context.Context, op string, stage int, blocks []BlockXfer, hops []int) (Wire, error) {
	partition, drops, delay := t.decide(stage, hops)
	if partition >= 0 {
		return Wire{}, &PeerDown{Worker: partition, Err: errInjectedPartition}
	}
	w, err := t.inner.Ring(ctx, op, stage, blocks, hops)
	if err != nil {
		return w, err
	}
	t.charge(drops, delay)
	for _, d := range drops {
		// The hop lost its copy; re-send the blocks to it point-to-point.
		again := make([]BlockXfer, len(blocks))
		copy(again, blocks)
		for i := range again {
			again[i].To = d
		}
		rw, err := t.inner.Scatter(ctx, op, stage, again)
		w.add(rw)
		if err != nil {
			return w, err
		}
	}
	return w, nil
}

func (t *netFaultTransport) Collect(ctx context.Context, stage int, workers []int) (Wire, error) {
	partition, drops, delay := t.decide(stage, workers)
	if partition >= 0 {
		return Wire{}, &PeerDown{Worker: partition, Err: errInjectedPartition}
	}
	w, err := t.inner.Collect(ctx, stage, workers)
	if err != nil {
		return w, err
	}
	t.charge(drops, delay)
	for _, d := range drops {
		rw, err := t.inner.Collect(ctx, stage, []int{d})
		w.add(rw)
		if err != nil {
			return w, err
		}
	}
	return w, nil
}
