package dist

import (
	"context"
	"fmt"
	"math"

	"dmac/internal/dep"
	"dmac/internal/matrix"
	"dmac/internal/obs"
	"dmac/internal/sched"
)

// MulStrategy selects the distributed multiplication strategy of Figure 2.
type MulStrategy int

// The three distributed multiplication strategies.
const (
	// RMM1: A(b) x B(c) -> C(c); each worker multiplies the full replica of
	// A against its column slice of B. No communication during execution.
	RMM1 MulStrategy = iota
	// RMM2: A(r) x B(b) -> C(r).
	RMM2
	// CPMM: A(c) x B(r); worker w computes the partial product of its
	// column slice of A with its row slice of B, and the partials are
	// shuffled and summed into the requested output scheme (cost N x |C|).
	CPMM
)

// String names the strategy.
func (s MulStrategy) String() string {
	switch s {
	case RMM1:
		return "RMM1"
	case RMM2:
		return "RMM2"
	case CPMM:
		return "CPMM"
	default:
		return fmt.Sprintf("MulStrategy(%d)", int(s))
	}
}

// mulFLOPs estimates the arithmetic of a product from the operands' actual
// non-zero structure. Dimensions are logical, so transpose views cost the
// same as their materialized counterparts.
func mulFLOPs(a, b *DistMatrix) float64 {
	an, bn := float64(a.Grid.NNZ()), float64(b.Grid.NNZ())
	inner := float64(a.Cols())
	if inner == 0 {
		return 0
	}
	// 2 multiply-adds per (nnz_A, matching row of B) pair; for sparse B the
	// matching density is nnz_B / inner per column of A.
	perRowB := bn / inner
	return 2 * an * math.Max(perRowB, 1)
}

// Multiply runs a distributed multiplication with the given strategy and
// the classical block kernel. The operand schemes must match the strategy's
// requirements; the output scheme for CPMM is outScheme (Row or Col),
// ignored for RMM1/RMM2.
func (c *Cluster) Multiply(ctx context.Context, a, b *DistMatrix, strategy MulStrategy, outScheme dep.Scheme, stage int) (*DistMatrix, error) {
	return c.MultiplyAlgo(ctx, a, b, strategy, matrix.MulClassical, outScheme, stage)
}

// MultiplyAlgo is Multiply with an explicit per-operator multiply algorithm:
// the communication strategy decides how blocks move, the algorithm decides
// how each worker computes its block products (classical tiled GEMM or
// Strassen). The two compose freely.
func (c *Cluster) MultiplyAlgo(ctx context.Context, a, b *DistMatrix, strategy MulStrategy, algo matrix.MulAlgo, outScheme dep.Scheme, stage int) (*DistMatrix, error) {
	var want [2]dep.Scheme
	switch strategy {
	case RMM1:
		want = [2]dep.Scheme{dep.Broadcast, dep.Col}
	case RMM2:
		want = [2]dep.Scheme{dep.Row, dep.Broadcast}
	case CPMM:
		want = [2]dep.Scheme{dep.Col, dep.Row}
	default:
		return nil, fmt.Errorf("dist: unknown multiplication strategy %d", strategy)
	}
	if a.Scheme != want[0] || b.Scheme != want[1] {
		return nil, fmt.Errorf("dist: %s requires schemes (%s,%s), got (%s,%s)",
			strategy, want[0], want[1], a.Scheme, b.Scheme)
	}
	c.addFLOPs(stage, mulFLOPs(a, b))
	if err := c.opFault(); err != nil {
		return nil, err
	}
	// Transpose views are fused into the multiply kernels: the stored grids
	// are read by stride, no transposed copy is allocated.
	grid, err := c.exec.MulTransAlgo(a.Grid, b.Grid, a.trans, b.trans, sched.InPlace, algo)
	if err != nil {
		return nil, err
	}
	out := &DistMatrix{Grid: grid}
	switch strategy {
	case RMM1:
		out.Scheme = dep.Col
	case RMM2:
		out.Scheme = dep.Row
	case CPMM:
		if outScheme != dep.Row && outScheme != dep.Col {
			return nil, fmt.Errorf("dist: CPMM output scheme %s", outScheme)
		}
		// Shuffled aggregation of the per-worker partial products, across
		// the workers still alive: every alive worker ships its partial of
		// each output block to the block's owner.
		workers := int64(c.AliveWorkers())
		out.Scheme = outScheme
		wire, werr := c.transport.Scatter(ctx, "cpmm-shuffle", stage, c.scatterXfers(out, int(workers)))
		if err := c.commFailure(werr, stage); err != nil {
			return nil, err
		}
		c.net.AddComm(stage, workers*out.Bytes())
		c.traceComm(stage, "cpmm-shuffle", workers*out.Bytes(),
			obs.String("strategy", "CPMM"), obs.String("to_scheme", outScheme.String()),
			obs.Int64("workers", workers))
		c.verifyTransfer(out, stage, "cpmm-shuffle")
		c.chargeWire(stage, "cpmm-shuffle", wire)
	}
	return out, nil
}

// Cellwise runs a cell-wise binary operator on two identically-placed
// matrices; no communication.
func (c *Cluster) Cellwise(op matrix.BinOp, a, b *DistMatrix) (*DistMatrix, error) {
	if a.Scheme != b.Scheme {
		return nil, fmt.Errorf("dist: cellwise on mismatched schemes %s vs %s", a.Scheme, b.Scheme)
	}
	if !a.Scheme.Valid() {
		return nil, fmt.Errorf("dist: cellwise on scheme %s", a.Scheme)
	}
	if err := c.opFault(); err != nil {
		return nil, err
	}
	c.addFLOPs(c.stage(), float64(a.Rows())*float64(a.Cols()))
	// Cell-wise ops commute with transposition: two views in the same
	// orientation combine on their stored grids and stay a view. Mixed
	// orientations force the view side to materialize first.
	if a.trans != b.trans {
		c.MaterializedGrid(a)
		c.MaterializedGrid(b)
	}
	grid, err := c.exec.Cellwise(op, a.Grid, b.Grid)
	if err != nil {
		return nil, err
	}
	return &DistMatrix{Grid: grid, Scheme: a.Scheme, trans: a.trans}, nil
}

// Scalar runs a matrix-scalar operator; the scheme is preserved and no
// communication happens.
func (c *Cluster) Scalar(op matrix.ScalarOp, a *DistMatrix, v float64) (*DistMatrix, error) {
	if !a.Scheme.Valid() {
		return nil, fmt.Errorf("dist: scalar op on scheme %s", a.Scheme)
	}
	if err := c.opFault(); err != nil {
		return nil, err
	}
	c.addFLOPs(c.stage(), float64(a.Grid.NNZ()))
	// Scalar ops are element-local, so a transpose view passes through.
	return &DistMatrix{Grid: c.exec.Scalar(op, a.Grid, v), Scheme: a.Scheme, trans: a.trans}, nil
}

// Apply evaluates a named element-wise function locally; the scheme is
// preserved and no communication happens.
func (c *Cluster) Apply(f matrix.UFunc, a *DistMatrix) (*DistMatrix, error) {
	if !a.Scheme.Valid() {
		return nil, fmt.Errorf("dist: ufunc on scheme %s", a.Scheme)
	}
	if err := c.opFault(); err != nil {
		return nil, err
	}
	c.addFLOPs(c.stage(), 4*float64(a.Rows())*float64(a.Cols())) // transcendental-ish cost
	// Element-wise functions commute with transposition as well.
	return &DistMatrix{Grid: c.exec.Apply(f, a.Grid), Scheme: a.Scheme, trans: a.trans}, nil
}

// collect charges a tiny driver collect (8 bytes per alive worker) for an
// aggregate operator; on the wire it gathers one aggregate frame per alive
// worker.
func (c *Cluster) collect(ctx context.Context, stage int) error {
	wire, err := c.transport.Collect(ctx, stage, c.aliveList())
	if err := c.commFailure(err, stage); err != nil {
		return err
	}
	bytes := 8 * int64(c.AliveWorkers())
	c.net.AddComm(stage, bytes)
	c.traceComm(stage, "collect", bytes)
	c.chargeWire(stage, "collect", wire)
	return nil
}

// Sum computes the sum of all cells: local partials plus a tiny driver
// collect (8 bytes per alive worker).
func (c *Cluster) Sum(ctx context.Context, a *DistMatrix, stage int) (float64, error) {
	c.addFLOPs(stage, float64(a.Grid.NNZ()))
	if err := c.collect(ctx, stage); err != nil {
		return 0, err
	}
	return matrix.SumGrid(a.Grid), nil
}

// Norm2 computes the Frobenius norm with the same collect cost as Sum.
func (c *Cluster) Norm2(ctx context.Context, a *DistMatrix, stage int) (float64, error) {
	c.addFLOPs(stage, 2*float64(a.Grid.NNZ()))
	if err := c.collect(ctx, stage); err != nil {
		return 0, err
	}
	return math.Sqrt(matrix.FrobeniusSqGrid(a.Grid)), nil
}

// Value extracts the single cell of a 1x1 matrix at the driver.
func (c *Cluster) Value(ctx context.Context, a *DistMatrix, stage int) (float64, error) {
	if a.Rows() != 1 || a.Cols() != 1 {
		return 0, fmt.Errorf("dist: value() on %dx%d matrix", a.Rows(), a.Cols())
	}
	if err := c.opFault(); err != nil {
		return 0, err
	}
	if err := c.collect(ctx, stage); err != nil {
		return 0, err
	}
	return a.Grid.At(0, 0), nil
}
