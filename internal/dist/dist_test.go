package dist

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"dmac/internal/dep"
	"dmac/internal/matrix"
)

func testCluster() *Cluster {
	return NewCluster(Config{Workers: 4, LocalParallelism: 2})
}

func randGrid(rng *rand.Rand, rows, cols, bs int, sparsity float64) *matrix.Grid {
	if sparsity >= 1 {
		data := make([]float64, rows*cols)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		return matrix.FromDense(rows, cols, bs, data)
	}
	var coords []matrix.Coord
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < sparsity {
				coords = append(coords, matrix.Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return matrix.FromCoords(rows, cols, bs, coords)
}

func TestConfigDefaults(t *testing.T) {
	c := NewCluster(Config{})
	cfg := c.Config()
	if cfg.Workers != 4 || cfg.LocalParallelism != 8 {
		t.Errorf("defaults: workers=%d L=%d", cfg.Workers, cfg.LocalParallelism)
	}
	if cfg.BandwidthBytesPerSec <= 0 || cfg.ShuffleLatencySec <= 0 || cfg.FlopsPerSecPerThread <= 0 {
		t.Error("time-model defaults missing")
	}
	if c.Workers() != 4 || c.LocalParallelism() != 8 {
		t.Error("accessors wrong")
	}
}

func TestPartitionChargesMatrixSize(t *testing.T) {
	c := testCluster()
	rng := rand.New(rand.NewSource(1))
	g := randGrid(rng, 20, 20, 5, 1)
	m := NewDistMatrix(g, dep.SchemeNone)
	out, err := c.Partition(context.Background(), m, dep.Row, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Scheme != dep.Row {
		t.Errorf("scheme = %s", out.Scheme)
	}
	s := c.Net().Snapshot()
	if s.Bytes != g.MemBytes() {
		t.Errorf("bytes = %d, want |A| = %d", s.Bytes, g.MemBytes())
	}
	if s.CommEvents != 1 || s.StageBytes[1] != g.MemBytes() {
		t.Errorf("events=%d stageBytes=%v", s.CommEvents, s.StageBytes)
	}
	if _, err := c.Partition(context.Background(), m, dep.Broadcast, 1); err == nil {
		t.Error("partition to broadcast must fail")
	}
}

func TestBroadcastChargesNTimes(t *testing.T) {
	c := testCluster()
	rng := rand.New(rand.NewSource(2))
	g := randGrid(rng, 12, 12, 4, 1)
	m := NewDistMatrix(g, dep.Row)
	out, err := c.Broadcast(context.Background(), m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Scheme != dep.Broadcast {
		t.Errorf("scheme = %s", out.Scheme)
	}
	if got := c.Net().Snapshot().Bytes; got != 4*g.MemBytes() {
		t.Errorf("bytes = %d, want N|A| = %d", got, 4*g.MemBytes())
	}
}

func TestExtractAndTransposeAreFree(t *testing.T) {
	c := testCluster()
	rng := rand.New(rand.NewSource(3))
	g := randGrid(rng, 10, 14, 4, 0.3)
	b := NewDistMatrix(g, dep.Broadcast)
	r, err := c.Extract(b, dep.Row)
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme != dep.Row {
		t.Errorf("extract scheme = %s", r.Scheme)
	}
	tr := c.Transpose(r)
	if tr.Scheme != dep.Col {
		t.Errorf("transpose scheme = %s, want c", tr.Scheme)
	}
	if tr.Rows() != 14 || tr.Cols() != 10 {
		t.Errorf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	if got := c.Net().Snapshot().Bytes; got != 0 {
		t.Errorf("local ops moved %d bytes", got)
	}
	if _, err := c.Extract(r, dep.Col); err == nil {
		t.Error("extract from non-broadcast must fail")
	}
	if _, err := c.Extract(b, dep.Broadcast); err == nil {
		t.Error("extract to broadcast must fail")
	}
}

func TestShuffleTransposeCharges(t *testing.T) {
	c := testCluster()
	rng := rand.New(rand.NewSource(4))
	g := randGrid(rng, 8, 8, 3, 1)
	m := NewDistMatrix(g, dep.Row)
	out, err := c.ShuffleTranspose(context.Background(), m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Scheme != dep.Col {
		t.Errorf("scheme = %s", out.Scheme)
	}
	if got := c.Net().Snapshot().Bytes; got != g.MemBytes() {
		t.Errorf("bytes = %d, want %d", got, g.MemBytes())
	}
}

func TestMultiplyStrategiesCorrectAndAccounted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ga := randGrid(rng, 15, 10, 4, 0.4)
	gb := randGrid(rng, 10, 12, 4, 1)
	want, err := matrix.MulGrid(ga, gb)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		strategy  MulStrategy
		sa, sb    dep.Scheme
		outScheme dep.Scheme
		wantOut   dep.Scheme
		comm      func(out *DistMatrix) int64
	}{
		{RMM1, dep.Broadcast, dep.Col, dep.SchemeNone, dep.Col, func(*DistMatrix) int64 { return 0 }},
		{RMM2, dep.Row, dep.Broadcast, dep.SchemeNone, dep.Row, func(*DistMatrix) int64 { return 0 }},
		{CPMM, dep.Col, dep.Row, dep.Row, dep.Row, func(o *DistMatrix) int64 { return 4 * o.Bytes() }},
		{CPMM, dep.Col, dep.Row, dep.Col, dep.Col, func(o *DistMatrix) int64 { return 4 * o.Bytes() }},
	}
	for _, tc := range cases {
		c := testCluster()
		a := NewDistMatrix(ga, tc.sa)
		b := NewDistMatrix(gb, tc.sb)
		out, err := c.Multiply(context.Background(), a, b, tc.strategy, tc.outScheme, 1)
		if err != nil {
			t.Fatalf("%s: %v", tc.strategy, err)
		}
		if !matrix.GridEqual(out.Grid, want, 1e-9) {
			t.Errorf("%s: wrong product", tc.strategy)
		}
		if out.Scheme != tc.wantOut {
			t.Errorf("%s: out scheme %s, want %s", tc.strategy, out.Scheme, tc.wantOut)
		}
		if got := c.Net().Snapshot().Bytes; got != tc.comm(out) {
			t.Errorf("%s: comm %d, want %d", tc.strategy, got, tc.comm(out))
		}
		if c.Net().Snapshot().FLOPs <= 0 {
			t.Errorf("%s: no FLOPs recorded", tc.strategy)
		}
	}
}

func TestMultiplySchemeValidation(t *testing.T) {
	c := testCluster()
	rng := rand.New(rand.NewSource(6))
	a := NewDistMatrix(randGrid(rng, 4, 4, 2, 1), dep.Row)
	b := NewDistMatrix(randGrid(rng, 4, 4, 2, 1), dep.Row)
	if _, err := c.Multiply(context.Background(), a, b, RMM1, dep.SchemeNone, 1); err == nil {
		t.Error("RMM1 with wrong schemes must fail")
	}
	if _, err := c.Multiply(context.Background(), a, b, MulStrategy(9), dep.SchemeNone, 1); err == nil {
		t.Error("unknown strategy must fail")
	}
	aCol := NewDistMatrix(a.Grid, dep.Col)
	if _, err := c.Multiply(context.Background(), aCol, b, CPMM, dep.Broadcast, 1); err == nil {
		t.Error("CPMM to broadcast must fail")
	}
}

func TestCellwiseAndScalar(t *testing.T) {
	c := testCluster()
	rng := rand.New(rand.NewSource(7))
	ga := randGrid(rng, 9, 9, 3, 1)
	gb := randGrid(rng, 9, 9, 3, 1)
	a := NewDistMatrix(ga, dep.Col)
	b := NewDistMatrix(gb, dep.Col)
	out, err := c.Cellwise(matrix.OpCellMul, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Scheme != dep.Col {
		t.Errorf("cellwise scheme %s", out.Scheme)
	}
	want, _ := matrix.CellwiseGrid(matrix.OpCellMul, ga, gb)
	if !matrix.GridEqual(out.Grid, want, 0) {
		t.Error("cellwise result wrong")
	}
	if got := c.Net().Snapshot().Bytes; got != 0 {
		t.Errorf("cellwise moved %d bytes", got)
	}
	if _, err := c.Cellwise(matrix.OpAdd, a, NewDistMatrix(gb, dep.Row)); err == nil {
		t.Error("mismatched schemes must fail")
	}
	if _, err := c.Cellwise(matrix.OpAdd, NewDistMatrix(ga, dep.SchemeNone), NewDistMatrix(gb, dep.SchemeNone)); err == nil {
		t.Error("hash scheme cellwise must fail")
	}
	sc, err := c.Scalar(matrix.ScalarMul, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.GridEqual(sc.Grid, matrix.ScalarGrid(matrix.ScalarMul, ga, 2), 0) {
		t.Error("scalar result wrong")
	}
	if _, err := c.Scalar(matrix.ScalarMul, NewDistMatrix(ga, dep.SchemeNone), 2); err == nil {
		t.Error("scalar on hash scheme must fail")
	}
}

func TestAggregates(t *testing.T) {
	c := testCluster()
	g := matrix.FromDense(2, 2, 2, []float64{1, 2, 3, 4})
	m := NewDistMatrix(g, dep.Row)
	if got, err := c.Sum(context.Background(), m, 1); err != nil || got != 10 {
		t.Errorf("Sum = %v, %v, want 10", got, err)
	}
	if got, err := c.Norm2(context.Background(), m, 1); err != nil || math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Errorf("Norm2 = %v, %v, want sqrt(30)", got, err)
	}
	one := NewDistMatrix(matrix.FromDense(1, 1, 1, []float64{7}), dep.Broadcast)
	v, err := c.Value(context.Background(), one, 1)
	if err != nil || v != 7 {
		t.Errorf("Value = %v, %v", v, err)
	}
	if _, err := c.Value(context.Background(), m, 1); err == nil {
		t.Error("Value on non-1x1 must fail")
	}
	// Each aggregate collected 8 bytes per worker.
	s := c.Net().Snapshot()
	if s.Bytes != 3*8*4 {
		t.Errorf("aggregate bytes = %d, want %d", s.Bytes, 3*8*4)
	}
}

func TestModelTime(t *testing.T) {
	c := NewCluster(Config{
		Workers:              4,
		LocalParallelism:     2,
		BandwidthBytesPerSec: 1000,
		ShuffleLatencySec:    0.5,
		FlopsPerSecPerThread: 100,
	})
	c.Net().AddComm(1, 2000) // 2 s transfer + 0.5 s latency
	c.Net().AddFLOPs(1600)   // 1600 / (4*2*100) = 2 s
	want := 2.0 + 0.5 + 2.0
	if got := c.ModelTimeSec(); math.Abs(got-want) > 1e-9 {
		t.Errorf("ModelTimeSec = %v, want %v", got, want)
	}
}

func TestStragglerInjection(t *testing.T) {
	base := Config{
		Workers:              4,
		LocalParallelism:     2,
		BandwidthBytesPerSec: 1000,
		ShuffleLatencySec:    0.5,
		FlopsPerSecPerThread: 100,
	}
	if got := base.withDefaults().MaxSlowdown(); got != 1 {
		t.Errorf("no stragglers: slowdown = %v", got)
	}
	slow := base
	slow.Stragglers = map[int]float64{2: 3}
	c0 := NewCluster(base)
	c1 := NewCluster(slow)
	for _, c := range []*Cluster{c0, c1} {
		c.Net().AddFLOPs(1600) // 2 s at full speed
		c.Net().AddComm(1, 2000)
	}
	// Compute triples; network is unaffected.
	want := 3*2.0 + 2.0 + 0.5
	if got := c1.ModelTimeSec(); math.Abs(got-want) > 1e-9 {
		t.Errorf("straggler model time = %v, want %v", got, want)
	}
	if got := c0.ModelTimeSec(); math.Abs(got-(2.0+2.5)) > 1e-9 {
		t.Errorf("baseline model time = %v", got)
	}
	// Out-of-range worker indices and sub-1 factors are ignored.
	odd := base
	odd.Stragglers = map[int]float64{99: 5, 1: 0.5}
	if got := odd.MaxSlowdown(); got != 1 {
		t.Errorf("invalid stragglers should be ignored, got %v", got)
	}
}

func TestNetStatsResetAndString(t *testing.T) {
	n := &NetStats{}
	n.AddComm(1, 100)
	n.AddComm(2, 50)
	n.AddFLOPs(10)
	s := n.Snapshot()
	if s.Bytes != 150 || s.CommEvents != 2 || s.FLOPs != 10 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.StageBytes[1] != 100 || s.StageBytes[2] != 50 {
		t.Errorf("stage bytes = %v", s.StageBytes)
	}
	if n.String() == "" {
		t.Error("empty String")
	}
	n.Reset()
	if s := n.Snapshot(); s.Bytes != 0 || s.CommEvents != 0 || s.FLOPs != 0 || len(s.StageBytes) != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

func TestMulFLOPsEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dense := randGrid(rng, 10, 10, 5, 1)
	sparse := randGrid(rng, 10, 10, 5, 0.1)
	dm := func(g *matrix.Grid) *DistMatrix { return NewDistMatrix(g, dep.Row) }
	dd := mulFLOPs(dm(dense), dm(dense))
	if want := 2.0 * 100 * 10; math.Abs(dd-want) > 1 {
		t.Errorf("dense-dense FLOPs = %v, want %v", dd, want)
	}
	sd := mulFLOPs(dm(sparse), dm(dense))
	if sd >= dd {
		t.Errorf("sparse-dense FLOPs %v should be below dense-dense %v", sd, dd)
	}
	if mulFLOPs(dm(sparse), dm(sparse)) <= 0 && sparse.NNZ() > 0 {
		t.Error("sparse-sparse FLOPs should be positive")
	}
}

func TestOwnerAndLoadImbalance(t *testing.T) {
	c := testCluster() // 4 workers
	// Uniform dense grid, Row placement: perfectly balanced when the block
	// rows divide evenly among workers.
	g := matrix.NewDenseGrid(32, 8, 4) // 8 block rows over 4 workers
	m := NewDistMatrix(g, dep.Row)
	if got := c.LoadImbalance(m); math.Abs(got-1) > 1e-12 {
		t.Errorf("uniform row imbalance = %v, want 1", got)
	}
	if c.Owner(m, 5, 0) != 1 {
		t.Errorf("owner of block row 5 = %d, want 1", c.Owner(m, 5, 0))
	}
	// Skewed: all mass in one block row.
	var coords []matrix.Coord
	for j := 0; j < 8; j++ {
		for i := 0; i < 4; i++ {
			coords = append(coords, matrix.Coord{Row: i, Col: j, Val: 1})
		}
	}
	sk := NewDistMatrix(matrix.FromCoords(32, 8, 4, coords), dep.Row)
	if got := c.LoadImbalance(sk); got <= 1.5 {
		t.Errorf("skewed imbalance = %v, want > 1.5", got)
	}
	// Broadcast is balanced by definition.
	if got := c.LoadImbalance(NewDistMatrix(g, dep.Broadcast)); got != 1 {
		t.Errorf("broadcast imbalance = %v", got)
	}
	// Col placement keys on block columns.
	mc := NewDistMatrix(g, dep.Col)
	if c.Owner(mc, 0, 1) != 1 || c.Owner(mc, 3, 0) != 0 {
		t.Error("column owners wrong")
	}
	// Hash placement spreads by both coordinates.
	mh := NewDistMatrix(g, dep.SchemeNone)
	if got := c.LoadImbalance(mh); got < 1 {
		t.Errorf("hash imbalance = %v", got)
	}
	// Empty matrix does not divide by zero.
	empty := NewDistMatrix(matrix.FromCoords(4, 4, 2, nil), dep.Row)
	if got := c.LoadImbalance(empty); got < 0.9 {
		t.Errorf("empty imbalance = %v", got)
	}
}

func TestDistMatrixString(t *testing.T) {
	m := NewDistMatrix(matrix.NewDenseGrid(3, 4, 2), dep.Row)
	if m.String() != "3x4(r)" {
		t.Errorf("String = %q", m.String())
	}
}
