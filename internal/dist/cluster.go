// Package dist is DMac's distributed runtime substrate. The paper runs on a
// Spark cluster; this package provides the equivalent in-process runtime: a
// cluster of N logical workers whose local computation runs in parallel on
// the block executor, and whose network is an instrumented accounting layer
// that records every byte a shuffle or broadcast would move. Execution time
// is modelled as local compute (estimated from the arithmetic actually
// performed, divided across workers and threads) plus network transfer time
// (bytes over a configured bandwidth, plus a per-shuffle latency). The model
// is deterministic, which is what the reproduction of the paper's figures
// needs; wall-clock time of the real computation is measured separately by
// the engine.
package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dmac/internal/obs"
	"dmac/internal/sched"
)

// Config describes the simulated cluster.
type Config struct {
	// Workers is the number of cluster nodes (N / K in the paper).
	Workers int
	// LocalParallelism is the number of threads per worker (L).
	LocalParallelism int
	// BandwidthBytesPerSec is the aggregate network bandwidth used to turn
	// shuffled bytes into modelled time. Defaults to 1 GiB/s.
	BandwidthBytesPerSec float64
	// ShuffleLatencySec is the fixed cost per communication operation
	// (job/stage setup in Spark terms). Defaults to 50 ms.
	ShuffleLatencySec float64
	// PaceCommLatencySec, when positive, spends this much wall-clock time on
	// every communication primitive in addition to charging the model. The
	// default (0) keeps runs model-only and as fast as the arithmetic allows,
	// which is what the figure reproductions want; serving benches and demos
	// turn pacing on so a job's wall time is dominated by genuine waiting —
	// like a real cluster's shuffles — and an engine pool's capacity scales
	// with its slot count instead of the host's core count.
	PaceCommLatencySec float64
	// FlopsPerSecPerThread is the modelled arithmetic throughput of one
	// worker thread. Defaults to 2 GFLOP/s.
	FlopsPerSecPerThread float64
	// Stragglers injects slow workers: worker index -> slowdown factor
	// (>= 1). Because stages are un-interleaved (Section 5.2), a stage
	// finishes only when its slowest worker does, so the modelled compute
	// time of every stage is multiplied by the largest slowdown. Used by
	// the failure-injection tests and the straggler ablation.
	Stragglers map[int]float64
	// Faults deterministically kills or delays workers at stage boundaries
	// or block tasks (seeded, reproducible). The engine recovers via
	// stage-level retry and lineage-based recomputation; see FaultPlan.
	Faults FaultPlan
	// MaxStageRetries caps how many times a stage is retried after worker
	// failures before the run fails. Defaults to Workers + 2, enough to
	// lose every expendable worker one retry at a time.
	MaxStageRetries int
	// RetryBackoffBaseSec is the modelled backoff before the first stage
	// retry; it doubles per attempt. Defaults to 50 ms.
	RetryBackoffBaseSec float64
	// RetryBackoffCapSec caps the exponential backoff. Defaults to 1 s.
	RetryBackoffCapSec float64
	// WorkerAddrs lists the TCP addresses of external worker processes
	// (dmacworker). Empty (the default) keeps the cluster fully in-process.
	// Non-empty, it fixes Workers to len(WorkerAddrs) and makes the engine
	// install the TCP transport, so every shuffle and broadcast moves real
	// framed bytes to those processes alongside the cost model.
	WorkerAddrs []string
	// DialTimeoutSec bounds one TCP dial attempt to a worker (dials are
	// additionally retried with jittered backoff). Defaults to 2 s.
	DialTimeoutSec float64
	// IOTimeoutSec bounds each frame read/write on a worker connection; the
	// run context's deadline tightens it further when sooner. Defaults to
	// 10 s.
	IOTimeoutSec float64
	// HeartbeatIntervalSec is the period of the transport's liveness probe
	// per worker. Defaults to 1 s.
	HeartbeatIntervalSec float64
	// HeartbeatMisses is how many consecutive unanswered heartbeats declare
	// a worker dead (surfaced as a *WorkerFailure, recovered like any
	// injected kill). Defaults to 3.
	HeartbeatMisses int
}

// MaxSlowdown returns the largest injected slowdown (at least 1).
func (c Config) MaxSlowdown() float64 {
	m := 1.0
	for w, s := range c.Stragglers {
		if w >= 0 && w < c.Workers && s > m {
			m = s
		}
	}
	return m
}

func (c Config) withDefaults() Config {
	if len(c.WorkerAddrs) > 0 {
		c.Workers = len(c.WorkerAddrs)
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.LocalParallelism <= 0 {
		c.LocalParallelism = 8
	}
	if c.BandwidthBytesPerSec <= 0 {
		c.BandwidthBytesPerSec = 1 << 30
	}
	if c.ShuffleLatencySec <= 0 {
		c.ShuffleLatencySec = 0.05
	}
	if c.FlopsPerSecPerThread <= 0 {
		c.FlopsPerSecPerThread = 2e9
	}
	if c.MaxStageRetries <= 0 {
		c.MaxStageRetries = c.Workers + 2
	}
	if c.RetryBackoffBaseSec <= 0 {
		c.RetryBackoffBaseSec = 0.05
	}
	if c.RetryBackoffCapSec <= 0 {
		c.RetryBackoffCapSec = 1.0
	}
	if c.DialTimeoutSec <= 0 {
		c.DialTimeoutSec = 2.0
	}
	if c.IOTimeoutSec <= 0 {
		c.IOTimeoutSec = 10.0
	}
	if c.HeartbeatIntervalSec <= 0 {
		c.HeartbeatIntervalSec = 1.0
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	return c
}

// ScaledConfig returns a configuration calibrated for reduced-scale
// reproductions of the paper's experiments. Scaled-down datasets shrink
// arithmetic much faster than fixed per-shuffle overheads, so with
// production constants every run would be pure latency; a deliberately slow
// modelled core (50 MFLOP/s per thread) and a 0.1 ms shuffle setup restore
// the paper's full-scale compute/communication balance. Use the same
// configuration for every engine being compared.
func ScaledConfig(workers, localParallelism int) Config {
	return Config{
		Workers:              workers,
		LocalParallelism:     localParallelism,
		FlopsPerSecPerThread: 5e7,
		BandwidthBytesPerSec: 1 << 30,
		ShuffleLatencySec:    1e-4,
	}
}

// Cluster is a simulated cluster: local parallel execution plus an
// instrumented network, and — when a FaultPlan is configured — a fault
// injector tracking which workers have been lost.
type Cluster struct {
	cfg  Config
	exec *sched.Executor
	net  *NetStats

	// tracer and metrics observe the cluster when set (see SetObserver):
	// every shuffle/broadcast emits a "comm" span carrying its byte count,
	// and the registry accumulates per-kind event counters and byte
	// histograms. Atomic so enabling observability never races with a run.
	tracer  atomic.Pointer[obs.Tracer]
	metrics atomic.Pointer[obs.Registry]
	// curStage is the stage the engine is currently executing (set by
	// BeginStage), used to attribute FLOPs of operators that do not carry an
	// explicit stage argument. curAttempt is the execution attempt, used to
	// attribute transport failures and gate first-attempt network faults.
	curStage   atomic.Int64
	curAttempt atomic.Int64

	// transport is the active data plane of the collectives (the fault
	// wrapper when the plan injects network faults); base is the transport
	// underneath the wrapper. Set by SetTransport; defaults to in-process.
	transport Transport
	base      Transport

	// faultMu guards the fault-injection state below.
	faultMu sync.Mutex
	// dead is the set of permanently lost workers.
	dead map[int]bool
	// pending is an armed task-kill fault waiting to surface from the next
	// cluster operator of the current stage attempt.
	pending *WorkerFailure
	// corrupt holds the armed corruption faults of the current stage attempt,
	// consumed (one per event) at the stage's block hand-offs.
	corrupt []FaultEvent
	// netArmed holds the scripted network faults of the current stage
	// attempt, read (not consumed — a stage may run several collectives) by
	// the fault-injecting transport wrapper.
	netArmed []FaultEvent
	// faultErr is the verdict of validating cfg.Faults at construction; a
	// non-nil verdict fails the first BeginStage with a descriptive error.
	faultErr error
}

// NewCluster creates a cluster from the configuration (zero fields take
// defaults). An invalid fault plan does not fail construction — the verdict
// is recorded and surfaces from the first BeginStage, so plan mistakes abort
// the run with FaultPlan.Validate's error instead of silently injecting
// nothing.
func NewCluster(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:      cfg,
		exec:     sched.NewExecutor(cfg.Workers*cfg.LocalParallelism, nil),
		net:      &NetStats{},
		faultErr: cfg.Faults.ValidateFor(cfg.Workers),
	}
	c.SetTransport(nil)
	return c
}

// Workers returns the number of simulated workers.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// LocalParallelism returns the threads per worker.
func (c *Cluster) LocalParallelism() int { return c.cfg.LocalParallelism }

// Executor exposes the cluster-wide block executor (used by the engine for
// local execution inside stages).
func (c *Cluster) Executor() *sched.Executor { return c.exec }

// Net returns the network statistics accumulated so far.
func (c *Cluster) Net() *NetStats { return c.net }

// SetObserver attaches a span tracer and a metrics registry to the cluster
// and its local executor. Either may be nil to disable that half. With a
// tracer attached, every communication primitive emits one "comm" span
// (zero-duration, parented under the tracer's current scope) whose "bytes"
// attribute is exactly what the instrumented network charged — summing them
// reproduces NetStats.Bytes.
func (c *Cluster) SetObserver(t *obs.Tracer, m *obs.Registry) {
	c.tracer.Store(t)
	c.metrics.Store(m)
	c.exec.SetObserver(t, m)
	if o, ok := c.base.(interface {
		SetObserver(*obs.Tracer, *obs.Registry)
	}); ok {
		o.SetObserver(t, m)
	}
}

// Tracer returns the attached tracer (nil when tracing is off; a nil tracer
// is a valid no-op receiver).
func (c *Cluster) Tracer() *obs.Tracer { return c.tracer.Load() }

// Metrics returns the attached metrics registry (nil when metrics are off).
func (c *Cluster) Metrics() *obs.Registry { return c.metrics.Load() }

// traceComm records one communication event in the tracer and the metrics
// registry: a zero-duration "comm" span with the exact charged bytes, a
// per-kind event counter, and byte histograms. It must be called by every
// code path that charges communication to NetStats, with the same byte
// count, so trace totals and network totals agree exactly.
func (c *Cluster) traceComm(stage int, name string, bytes int64, attrs ...obs.Attr) {
	if c.cfg.PaceCommLatencySec > 0 {
		time.Sleep(time.Duration(c.cfg.PaceCommLatencySec * float64(time.Second)))
	}
	if tr := c.tracer.Load(); tr.Enabled() {
		base := []obs.Attr{obs.Int64("stage", int64(stage)), obs.Int64("bytes", bytes)}
		tr.Event("comm", name, tr.Scope(), append(base, attrs...)...)
	}
	if m := c.metrics.Load(); m != nil {
		m.Counter("comm." + name + ".events").Inc()
		m.Counter("comm." + name + ".bytes").Add(bytes)
		m.Histogram("comm."+name+".bytes.hist", obs.BytesBuckets).Observe(float64(bytes))
	}
}

// stage returns the stage to attribute an operator without an explicit
// stage argument to: the stage the engine is currently executing.
func (c *Cluster) stage() int { return int(c.curStage.Load()) }

// addFLOPs attributes estimated arithmetic to a stage.
func (c *Cluster) addFLOPs(stage int, f float64) { c.net.AddStageFLOPs(stage, f) }

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// ModelTimeSec converts the accumulated statistics into modelled execution
// seconds: compute spread over all threads plus network transfer and
// per-shuffle latency.
func (c *Cluster) ModelTimeSec() float64 {
	s := c.net.Snapshot()
	compute := s.FLOPs * c.cfg.MaxSlowdown() /
		(float64(c.cfg.Workers*c.cfg.LocalParallelism) * c.cfg.FlopsPerSecPerThread)
	network := float64(s.Bytes)/c.cfg.BandwidthBytesPerSec + float64(s.CommEvents)*c.cfg.ShuffleLatencySec
	return compute + network + s.StallSec
}

// NetStats accumulates communication and compute statistics. All methods
// are safe for concurrent use.
type NetStats struct {
	mu            sync.Mutex
	bytes         int64
	commEvents    int
	broadcasts    int
	shuffles      int
	flops         float64
	stageBytes    map[int]int64
	stageEvents   map[int]int
	stageFLOPs    map[int]float64
	recoveryBytes int64
	retries       int
	stallSec      float64
	corruptInj    int
	corruptDet    int
	wireBytes     int64
	wireFrames    int64
	netDrops      int
	netDelays     int
}

// Snapshot is a point-in-time copy of the statistics.
type Snapshot struct {
	// Bytes is the total data moved across workers (recovery included).
	Bytes int64
	// CommEvents counts shuffle/broadcast operations.
	CommEvents int
	// Broadcasts counts replication events (Broadcast dependency
	// satisfactions); Shuffles counts every other communication event
	// (repartitions, CPMM aggregations, shuffle transposes, driver
	// collects, recovery shuffles). Broadcasts + Shuffles == CommEvents.
	Broadcasts int
	Shuffles   int
	// FLOPs is the estimated arithmetic performed.
	FLOPs float64
	// StageBytes maps stage index to bytes moved into that stage.
	StageBytes map[int]int64
	// StageEvents maps stage index to communication events feeding it.
	StageEvents map[int]int
	// StageFLOPs maps stage index to arithmetic attributed to it.
	StageFLOPs map[int]float64
	// RecoveryBytes is the share of Bytes moved to re-partition dead
	// workers' blocks across survivors after failures.
	RecoveryBytes int64
	// Retries counts stage attempts repeated after worker failures.
	Retries int
	// StallSec is modelled stalled time: injected delays plus retry
	// backoff.
	StallSec float64
	// CorruptionsInjected counts block corruptions the fault injector
	// actually fired (armed events whose stage moved at least one block);
	// CorruptionsDetected counts those caught by checksum verification at
	// block hand-off. Equality is the integrity invariant the chaos harness
	// asserts: every corruption that happens is detected.
	CorruptionsInjected int
	CorruptionsDetected int
	// WireBytes and WireFrames are the measured traffic the transport
	// actually put on the wire (payload plus framing), as opposed to Bytes,
	// which is the cost model's charge. Zero under the in-process transport;
	// over TCP, WireBytes reconciles with Bytes up to framing overhead and
	// retransmits.
	WireBytes  int64
	WireFrames int64
	// NetDropsInjected counts injected network drops (each healed by a
	// retransmit); NetDelaysInjected counts injected network delays (charged
	// as stall).
	NetDropsInjected  int
	NetDelaysInjected int
}

// addCommLocked is the shared body of the communication recorders.
func (n *NetStats) addCommLocked(stage int, bytes int64, broadcast bool) {
	n.bytes += bytes
	n.commEvents++
	if broadcast {
		n.broadcasts++
	} else {
		n.shuffles++
	}
	if n.stageBytes == nil {
		n.stageBytes = make(map[int]int64)
	}
	n.stageBytes[stage] += bytes
	if n.stageEvents == nil {
		n.stageEvents = make(map[int]int)
	}
	n.stageEvents[stage]++
}

// AddComm records a shuffle-style communication of the given bytes feeding
// the given stage.
func (n *NetStats) AddComm(stage int, bytes int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addCommLocked(stage, bytes, false)
}

// AddBroadcast records a replication event of the given bytes feeding the
// given stage. It counts toward CommEvents like any communication but is
// tallied separately, so strategy choices (broadcast vs repartition) are
// countable.
func (n *NetStats) AddBroadcast(stage int, bytes int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addCommLocked(stage, bytes, true)
}

// AddFLOPs records estimated arithmetic work not attributed to a stage.
func (n *NetStats) AddFLOPs(f float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.flops += f
}

// AddStageFLOPs records estimated arithmetic work attributed to a stage.
func (n *NetStats) AddStageFLOPs(stage int, f float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.flops += f
	if n.stageFLOPs == nil {
		n.stageFLOPs = make(map[int]float64)
	}
	n.stageFLOPs[stage] += f
}

// AddRecovery records the recovery shuffle that re-partitions a dead
// worker's blocks across survivors: the bytes count as ordinary
// communication feeding the given stage (one shuffle event), and are
// additionally attributed as recovery cost.
func (n *NetStats) AddRecovery(stage int, bytes int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.addCommLocked(stage, bytes, false)
	n.recoveryBytes += bytes
}

// AddCorruption records one injected block corruption and whether the
// checksum verification at hand-off caught it.
func (n *NetStats) AddCorruption(detected bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.corruptInj++
	if detected {
		n.corruptDet++
	}
}

// AddRetry records one repeated stage attempt.
func (n *NetStats) AddRetry() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.retries++
}

// AddStall records modelled stalled seconds (injected delays, retry
// backoff).
func (n *NetStats) AddStall(sec float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stallSec += sec
}

// AddWire records measured transport traffic: bytes actually written to (or
// relayed on) the wire and the frames that carried them.
func (n *NetStats) AddWire(bytes, frames int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.wireBytes += bytes
	n.wireFrames += frames
}

// AddNetDrop records one injected network drop (healed by retransmit).
func (n *NetStats) AddNetDrop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.netDrops++
}

// AddNetDelay records one injected network delay.
func (n *NetStats) AddNetDelay() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.netDelays++
}

// Snapshot returns a copy of the accumulated statistics.
func (n *NetStats) Snapshot() Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	sb := make(map[int]int64, len(n.stageBytes))
	for k, v := range n.stageBytes {
		sb[k] = v
	}
	se := make(map[int]int, len(n.stageEvents))
	for k, v := range n.stageEvents {
		se[k] = v
	}
	sf := make(map[int]float64, len(n.stageFLOPs))
	for k, v := range n.stageFLOPs {
		sf[k] = v
	}
	return Snapshot{
		Bytes:               n.bytes,
		CommEvents:          n.commEvents,
		Broadcasts:          n.broadcasts,
		Shuffles:            n.shuffles,
		FLOPs:               n.flops,
		StageBytes:          sb,
		StageEvents:         se,
		StageFLOPs:          sf,
		RecoveryBytes:       n.recoveryBytes,
		Retries:             n.retries,
		StallSec:            n.stallSec,
		CorruptionsInjected: n.corruptInj,
		CorruptionsDetected: n.corruptDet,
		WireBytes:           n.wireBytes,
		WireFrames:          n.wireFrames,
		NetDropsInjected:    n.netDrops,
		NetDelaysInjected:   n.netDelays,
	}
}

// Reset clears the statistics.
func (n *NetStats) Reset() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.bytes, n.commEvents, n.flops, n.stageBytes = 0, 0, 0, nil
	n.broadcasts, n.shuffles, n.stageEvents, n.stageFLOPs = 0, 0, nil, nil
	n.recoveryBytes, n.retries, n.stallSec = 0, 0, 0
	n.corruptInj, n.corruptDet = 0, 0
	n.wireBytes, n.wireFrames, n.netDrops, n.netDelays = 0, 0, 0, 0
}

// String summarizes the statistics.
func (n *NetStats) String() string {
	s := n.Snapshot()
	return fmt.Sprintf("net: %d bytes in %d comm ops, %.3g flops", s.Bytes, s.CommEvents, s.FLOPs)
}
