// Package dist is DMac's distributed runtime substrate. The paper runs on a
// Spark cluster; this package provides the equivalent in-process runtime: a
// cluster of N logical workers whose local computation runs in parallel on
// the block executor, and whose network is an instrumented accounting layer
// that records every byte a shuffle or broadcast would move. Execution time
// is modelled as local compute (estimated from the arithmetic actually
// performed, divided across workers and threads) plus network transfer time
// (bytes over a configured bandwidth, plus a per-shuffle latency). The model
// is deterministic, which is what the reproduction of the paper's figures
// needs; wall-clock time of the real computation is measured separately by
// the engine.
package dist

import (
	"fmt"
	"sync"

	"dmac/internal/sched"
)

// Config describes the simulated cluster.
type Config struct {
	// Workers is the number of cluster nodes (N / K in the paper).
	Workers int
	// LocalParallelism is the number of threads per worker (L).
	LocalParallelism int
	// BandwidthBytesPerSec is the aggregate network bandwidth used to turn
	// shuffled bytes into modelled time. Defaults to 1 GiB/s.
	BandwidthBytesPerSec float64
	// ShuffleLatencySec is the fixed cost per communication operation
	// (job/stage setup in Spark terms). Defaults to 50 ms.
	ShuffleLatencySec float64
	// FlopsPerSecPerThread is the modelled arithmetic throughput of one
	// worker thread. Defaults to 2 GFLOP/s.
	FlopsPerSecPerThread float64
	// Stragglers injects slow workers: worker index -> slowdown factor
	// (>= 1). Because stages are un-interleaved (Section 5.2), a stage
	// finishes only when its slowest worker does, so the modelled compute
	// time of every stage is multiplied by the largest slowdown. Used by
	// the failure-injection tests and the straggler ablation.
	Stragglers map[int]float64
	// Faults deterministically kills or delays workers at stage boundaries
	// or block tasks (seeded, reproducible). The engine recovers via
	// stage-level retry and lineage-based recomputation; see FaultPlan.
	Faults FaultPlan
	// MaxStageRetries caps how many times a stage is retried after worker
	// failures before the run fails. Defaults to Workers + 2, enough to
	// lose every expendable worker one retry at a time.
	MaxStageRetries int
	// RetryBackoffBaseSec is the modelled backoff before the first stage
	// retry; it doubles per attempt. Defaults to 50 ms.
	RetryBackoffBaseSec float64
	// RetryBackoffCapSec caps the exponential backoff. Defaults to 1 s.
	RetryBackoffCapSec float64
}

// MaxSlowdown returns the largest injected slowdown (at least 1).
func (c Config) MaxSlowdown() float64 {
	m := 1.0
	for w, s := range c.Stragglers {
		if w >= 0 && w < c.Workers && s > m {
			m = s
		}
	}
	return m
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.LocalParallelism <= 0 {
		c.LocalParallelism = 8
	}
	if c.BandwidthBytesPerSec <= 0 {
		c.BandwidthBytesPerSec = 1 << 30
	}
	if c.ShuffleLatencySec <= 0 {
		c.ShuffleLatencySec = 0.05
	}
	if c.FlopsPerSecPerThread <= 0 {
		c.FlopsPerSecPerThread = 2e9
	}
	if c.MaxStageRetries <= 0 {
		c.MaxStageRetries = c.Workers + 2
	}
	if c.RetryBackoffBaseSec <= 0 {
		c.RetryBackoffBaseSec = 0.05
	}
	if c.RetryBackoffCapSec <= 0 {
		c.RetryBackoffCapSec = 1.0
	}
	return c
}

// ScaledConfig returns a configuration calibrated for reduced-scale
// reproductions of the paper's experiments. Scaled-down datasets shrink
// arithmetic much faster than fixed per-shuffle overheads, so with
// production constants every run would be pure latency; a deliberately slow
// modelled core (50 MFLOP/s per thread) and a 0.1 ms shuffle setup restore
// the paper's full-scale compute/communication balance. Use the same
// configuration for every engine being compared.
func ScaledConfig(workers, localParallelism int) Config {
	return Config{
		Workers:              workers,
		LocalParallelism:     localParallelism,
		FlopsPerSecPerThread: 5e7,
		BandwidthBytesPerSec: 1 << 30,
		ShuffleLatencySec:    1e-4,
	}
}

// Cluster is a simulated cluster: local parallel execution plus an
// instrumented network, and — when a FaultPlan is configured — a fault
// injector tracking which workers have been lost.
type Cluster struct {
	cfg  Config
	exec *sched.Executor
	net  *NetStats

	// faultMu guards the fault-injection state below.
	faultMu sync.Mutex
	// dead is the set of permanently lost workers.
	dead map[int]bool
	// pending is an armed task-kill fault waiting to surface from the next
	// cluster operator of the current stage attempt.
	pending *WorkerFailure
}

// NewCluster creates a cluster from the configuration (zero fields take
// defaults).
func NewCluster(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	return &Cluster{
		cfg:  cfg,
		exec: sched.NewExecutor(cfg.Workers*cfg.LocalParallelism, nil),
		net:  &NetStats{},
	}
}

// Workers returns the number of simulated workers.
func (c *Cluster) Workers() int { return c.cfg.Workers }

// LocalParallelism returns the threads per worker.
func (c *Cluster) LocalParallelism() int { return c.cfg.LocalParallelism }

// Executor exposes the cluster-wide block executor (used by the engine for
// local execution inside stages).
func (c *Cluster) Executor() *sched.Executor { return c.exec }

// Net returns the network statistics accumulated so far.
func (c *Cluster) Net() *NetStats { return c.net }

// Config returns the effective configuration.
func (c *Cluster) Config() Config { return c.cfg }

// ModelTimeSec converts the accumulated statistics into modelled execution
// seconds: compute spread over all threads plus network transfer and
// per-shuffle latency.
func (c *Cluster) ModelTimeSec() float64 {
	s := c.net.Snapshot()
	compute := s.FLOPs * c.cfg.MaxSlowdown() /
		(float64(c.cfg.Workers*c.cfg.LocalParallelism) * c.cfg.FlopsPerSecPerThread)
	network := float64(s.Bytes)/c.cfg.BandwidthBytesPerSec + float64(s.CommEvents)*c.cfg.ShuffleLatencySec
	return compute + network + s.StallSec
}

// NetStats accumulates communication and compute statistics. All methods
// are safe for concurrent use.
type NetStats struct {
	mu            sync.Mutex
	bytes         int64
	commEvents    int
	flops         float64
	stageBytes    map[int]int64
	recoveryBytes int64
	retries       int
	stallSec      float64
}

// Snapshot is a point-in-time copy of the statistics.
type Snapshot struct {
	// Bytes is the total data moved across workers (recovery included).
	Bytes int64
	// CommEvents counts shuffle/broadcast operations.
	CommEvents int
	// FLOPs is the estimated arithmetic performed.
	FLOPs float64
	// StageBytes maps stage index to bytes moved into that stage.
	StageBytes map[int]int64
	// RecoveryBytes is the share of Bytes moved to re-partition dead
	// workers' blocks across survivors after failures.
	RecoveryBytes int64
	// Retries counts stage attempts repeated after worker failures.
	Retries int
	// StallSec is modelled stalled time: injected delays plus retry
	// backoff.
	StallSec float64
}

// AddComm records a communication of the given bytes feeding the given
// stage.
func (n *NetStats) AddComm(stage int, bytes int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.bytes += bytes
	n.commEvents++
	if n.stageBytes == nil {
		n.stageBytes = make(map[int]int64)
	}
	n.stageBytes[stage] += bytes
}

// AddFLOPs records estimated arithmetic work.
func (n *NetStats) AddFLOPs(f float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.flops += f
}

// AddRecovery records the recovery shuffle that re-partitions a dead
// worker's blocks across survivors: the bytes count as ordinary
// communication feeding the given stage (one shuffle event), and are
// additionally attributed as recovery cost.
func (n *NetStats) AddRecovery(stage int, bytes int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.bytes += bytes
	n.commEvents++
	if n.stageBytes == nil {
		n.stageBytes = make(map[int]int64)
	}
	n.stageBytes[stage] += bytes
	n.recoveryBytes += bytes
}

// AddRetry records one repeated stage attempt.
func (n *NetStats) AddRetry() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.retries++
}

// AddStall records modelled stalled seconds (injected delays, retry
// backoff).
func (n *NetStats) AddStall(sec float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stallSec += sec
}

// Snapshot returns a copy of the accumulated statistics.
func (n *NetStats) Snapshot() Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	sb := make(map[int]int64, len(n.stageBytes))
	for k, v := range n.stageBytes {
		sb[k] = v
	}
	return Snapshot{
		Bytes:         n.bytes,
		CommEvents:    n.commEvents,
		FLOPs:         n.flops,
		StageBytes:    sb,
		RecoveryBytes: n.recoveryBytes,
		Retries:       n.retries,
		StallSec:      n.stallSec,
	}
}

// Reset clears the statistics.
func (n *NetStats) Reset() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.bytes, n.commEvents, n.flops, n.stageBytes = 0, 0, 0, nil
	n.recoveryBytes, n.retries, n.stallSec = 0, 0, 0
}

// String summarizes the statistics.
func (n *NetStats) String() string {
	s := n.Snapshot()
	return fmt.Sprintf("net: %d bytes in %d comm ops, %.3g flops", s.Bytes, s.CommEvents, s.FLOPs)
}
