package dist

import (
	"fmt"

	"dmac/internal/dep"
	"dmac/internal/matrix"
	"dmac/internal/obs"
)

// DistMatrix is a matrix distributed across the cluster: block data plus the
// scheme describing how the blocks are placed on workers. SchemeNone means
// hash placement (blocks scattered by hash of their coordinates — the layout
// fresh loads and SystemML-S outputs have).
//
// The simulation stores the blocks in a single shared Grid; placement is
// logical and drives only the communication accounting and task ownership.
type DistMatrix struct {
	Grid   *matrix.Grid
	Scheme dep.Scheme
}

// NewDistMatrix wraps a grid with a placement scheme.
func NewDistMatrix(g *matrix.Grid, scheme dep.Scheme) *DistMatrix {
	return &DistMatrix{Grid: g, Scheme: scheme}
}

// Rows returns the logical row count.
func (m *DistMatrix) Rows() int { return m.Grid.Rows() }

// Cols returns the logical column count.
func (m *DistMatrix) Cols() int { return m.Grid.Cols() }

// Bytes returns the actual block memory footprint, which is what the
// instrumented network charges for moving the matrix.
func (m *DistMatrix) Bytes() int64 { return m.Grid.MemBytes() }

// String describes the matrix.
func (m *DistMatrix) String() string {
	return fmt.Sprintf("%dx%d(%s)", m.Rows(), m.Cols(), m.Scheme)
}

// Owner returns the worker a block is placed on under the matrix's scheme:
// block-rows round-robin for Row, block-columns for Col, hash of the block
// coordinates for hash placement. Broadcast replicas live everywhere
// (worker 0 is reported). Blocks whose nominal owner has been killed are
// deterministically re-assigned across the surviving workers.
func (c *Cluster) Owner(m *DistMatrix, bi, bj int) int {
	k := c.cfg.Workers
	var w int
	switch m.Scheme {
	case dep.Row:
		w = bi % k
	case dep.Col:
		w = bj % k
	case dep.Broadcast:
		w = 0
	default: // hash placement
		w = (bi*m.Grid.BlockCols() + bj) % k
	}
	return c.reassignIfDead(w)
}

// WorkerBytes returns the bytes of the matrix's blocks placed on the given
// worker — the data lost (and re-fetched from lineage) when that worker
// dies. Broadcast replicas cost nothing to lose: every survivor already
// holds a full copy.
func (c *Cluster) WorkerBytes(m *DistMatrix, w int) int64 {
	if m.Scheme == dep.Broadcast {
		return 0
	}
	var total int64
	for bi := 0; bi < m.Grid.BlockRows(); bi++ {
		for bj := 0; bj < m.Grid.BlockCols(); bj++ {
			if c.Owner(m, bi, bj) == w {
				total += m.Grid.Block(bi, bj).MemBytes()
			}
		}
	}
	return total
}

// LoadImbalance reports the skew of the matrix's stored bytes across
// workers under its placement: max worker load divided by the mean. 1 means
// perfectly balanced; real graph datasets with power-law degrees are skewed
// under one-dimensional partitioning, which is the effect the paper points
// to when measured block-size thresholds deviate slightly from Eq. 3
// (Section 6.3). Broadcast replicas are balanced by construction.
func (c *Cluster) LoadImbalance(m *DistMatrix) float64 {
	if m.Scheme == dep.Broadcast {
		return 1
	}
	loads := make([]int64, c.cfg.Workers)
	for bi := 0; bi < m.Grid.BlockRows(); bi++ {
		for bj := 0; bj < m.Grid.BlockCols(); bj++ {
			loads[c.Owner(m, bi, bj)] += m.Grid.Block(bi, bj).MemBytes()
		}
	}
	var max, total int64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(c.cfg.Workers)
	return float64(max) / mean
}

// Partition repartitions the matrix to a Row or Col scheme, charging |A| to
// the network (the repartition shuffle of the partition extended operator).
// stage attributes the traffic in per-stage statistics.
func (c *Cluster) Partition(m *DistMatrix, scheme dep.Scheme, stage int) (*DistMatrix, error) {
	if scheme != dep.Row && scheme != dep.Col {
		return nil, fmt.Errorf("dist: partition to invalid scheme %s", scheme)
	}
	if err := c.opFault(); err != nil {
		return nil, err
	}
	c.net.AddComm(stage, m.Bytes())
	c.traceComm(stage, "partition", m.Bytes(),
		obs.String("from_scheme", m.Scheme.String()), obs.String("to_scheme", scheme.String()))
	return &DistMatrix{Grid: m.Grid, Scheme: scheme}, nil
}

// Broadcast replicates the matrix on every alive worker, charging N x |A|
// for a full cluster and proportionally less once workers have been lost.
func (c *Cluster) Broadcast(m *DistMatrix, stage int) *DistMatrix {
	replicas := int64(c.AliveWorkers())
	c.net.AddBroadcast(stage, replicas*m.Bytes())
	c.traceComm(stage, "broadcast", replicas*m.Bytes(),
		obs.String("from_scheme", m.Scheme.String()), obs.Int64("replicas", replicas))
	return &DistMatrix{Grid: m.Grid, Scheme: dep.Broadcast}
}

// Extract locally filters a broadcast replica down to a Row or Col
// partition; no communication (the extract extended operator).
func (c *Cluster) Extract(m *DistMatrix, scheme dep.Scheme) (*DistMatrix, error) {
	if m.Scheme != dep.Broadcast {
		return nil, fmt.Errorf("dist: extract from scheme %s", m.Scheme)
	}
	if scheme != dep.Row && scheme != dep.Col {
		return nil, fmt.Errorf("dist: extract to invalid scheme %s", scheme)
	}
	if err := c.opFault(); err != nil {
		return nil, err
	}
	return &DistMatrix{Grid: m.Grid, Scheme: scheme}, nil
}

// Transpose locally transposes the matrix; the scheme flips between Row and
// Col (Broadcast and hash placements stay as they are). No communication
// (the transpose extended operator).
func (c *Cluster) Transpose(m *DistMatrix) *DistMatrix {
	c.addFLOPs(c.stage(), float64(m.Grid.NNZ()))
	return &DistMatrix{Grid: c.exec.Transpose(m.Grid), Scheme: m.Scheme.Opposite()}
}

// ShuffleTranspose is the baseline transpose job: a full shuffle that
// materializes the transpose (SystemML-S pays |A| for it).
func (c *Cluster) ShuffleTranspose(m *DistMatrix, stage int) *DistMatrix {
	c.net.AddComm(stage, m.Bytes())
	c.traceComm(stage, "shuffle-transpose", m.Bytes(),
		obs.String("from_scheme", m.Scheme.String()))
	c.addFLOPs(stage, float64(m.Grid.NNZ()))
	return &DistMatrix{Grid: c.exec.Transpose(m.Grid), Scheme: m.Scheme.Opposite()}
}
