package dist

import (
	"context"
	"fmt"

	"dmac/internal/dep"
	"dmac/internal/matrix"
	"dmac/internal/obs"
)

// DistMatrix is a matrix distributed across the cluster: block data plus the
// scheme describing how the blocks are placed on workers. SchemeNone means
// hash placement (blocks scattered by hash of their coordinates — the layout
// fresh loads and SystemML-S outputs have).
//
// The simulation stores the blocks in a single shared Grid; placement is
// logical and drives only the communication accounting and task ownership.
type DistMatrix struct {
	Grid   *matrix.Grid
	Scheme dep.Scheme
	// trans marks a lazy transpose view: Grid holds the blocks in their
	// stored orientation and every logical accessor (Rows, Cols, Bytes,
	// Owner, ...) swaps dimensions. Views cost nothing to create; they are
	// fused into multiplication kernels (sched.MulTrans) or materialized on
	// demand by Cluster.MaterializedGrid for consumers that need the blocks
	// laid out logically.
	trans bool
}

// NewDistMatrix wraps a grid with a placement scheme.
func NewDistMatrix(g *matrix.Grid, scheme dep.Scheme) *DistMatrix {
	return &DistMatrix{Grid: g, Scheme: scheme}
}

// NewDistMatrixView wraps a grid like NewDistMatrix but additionally marks it
// a lazy transpose view. Checkpoint restore uses it to reconstruct a value
// exactly as it was snapshotted: the grid holds the stored orientation, trans
// records the pending logical transpose.
func NewDistMatrixView(g *matrix.Grid, scheme dep.Scheme, trans bool) *DistMatrix {
	return &DistMatrix{Grid: g, Scheme: scheme, trans: trans}
}

// Rows returns the logical row count.
func (m *DistMatrix) Rows() int {
	if m.trans {
		return m.Grid.Cols()
	}
	return m.Grid.Rows()
}

// Cols returns the logical column count.
func (m *DistMatrix) Cols() int {
	if m.trans {
		return m.Grid.Rows()
	}
	return m.Grid.Cols()
}

// Trans reports whether the matrix is an unmaterialized transpose view.
func (m *DistMatrix) Trans() bool { return m.trans }

// Bytes returns the actual block memory footprint, which is what the
// instrumented network charges for moving the matrix. For a transpose view
// this is the footprint the transposed blocks would have if materialized, so
// byte accounting is identical whether or not the view has been realized.
func (m *DistMatrix) Bytes() int64 {
	if m.trans {
		return m.Grid.TransMemBytes()
	}
	return m.Grid.MemBytes()
}

// String describes the matrix.
func (m *DistMatrix) String() string {
	return fmt.Sprintf("%dx%d(%s)", m.Rows(), m.Cols(), m.Scheme)
}

// BlockRows returns the logical block-row count.
func (m *DistMatrix) BlockRows() int {
	if m.trans {
		return m.Grid.BlockCols()
	}
	return m.Grid.BlockRows()
}

// BlockCols returns the logical block-column count.
func (m *DistMatrix) BlockCols() int {
	if m.trans {
		return m.Grid.BlockRows()
	}
	return m.Grid.BlockCols()
}

// StoredBlock returns the block at logical coordinates (bi, bj) in its
// stored orientation — what actually travels on the wire for a transpose
// view, whose receiver applies the orientation itself.
func (m *DistMatrix) StoredBlock(bi, bj int) matrix.Block {
	if m.trans {
		return m.Grid.Block(bj, bi)
	}
	return m.Grid.Block(bi, bj)
}

// BlockBytes returns the footprint of the block at logical coordinates
// (bi, bj), accounting transposed sparse blocks at their materialized size.
func (m *DistMatrix) BlockBytes(bi, bj int) int64 {
	if m.trans {
		return matrix.TransMemBytes(m.Grid.Block(bj, bi))
	}
	return m.Grid.Block(bi, bj).MemBytes()
}

// Owner returns the worker a block is placed on under the matrix's scheme:
// block-rows round-robin for Row, block-columns for Col, hash of the block
// coordinates for hash placement. Broadcast replicas live everywhere
// (worker 0 is reported). Block coordinates are logical, so a transpose view
// places block (bi, bj) exactly where the materialized transpose would.
// Blocks whose nominal owner has been killed are deterministically
// re-assigned across the surviving workers.
func (c *Cluster) Owner(m *DistMatrix, bi, bj int) int {
	k := c.cfg.Workers
	var w int
	switch m.Scheme {
	case dep.Row:
		w = bi % k
	case dep.Col:
		w = bj % k
	case dep.Broadcast:
		w = 0
	default: // hash placement
		w = (bi*m.BlockCols() + bj) % k
	}
	return c.reassignIfDead(w)
}

// WorkerBytes returns the bytes of the matrix's blocks placed on the given
// worker — the data lost (and re-fetched from lineage) when that worker
// dies. Broadcast replicas cost nothing to lose: every survivor already
// holds a full copy.
func (c *Cluster) WorkerBytes(m *DistMatrix, w int) int64 {
	if m.Scheme == dep.Broadcast {
		return 0
	}
	var total int64
	for bi := 0; bi < m.BlockRows(); bi++ {
		for bj := 0; bj < m.BlockCols(); bj++ {
			if c.Owner(m, bi, bj) == w {
				total += m.BlockBytes(bi, bj)
			}
		}
	}
	return total
}

// LoadImbalance reports the skew of the matrix's stored bytes across
// workers under its placement: max worker load divided by the mean. 1 means
// perfectly balanced; real graph datasets with power-law degrees are skewed
// under one-dimensional partitioning, which is the effect the paper points
// to when measured block-size thresholds deviate slightly from Eq. 3
// (Section 6.3). Broadcast replicas are balanced by construction.
func (c *Cluster) LoadImbalance(m *DistMatrix) float64 {
	if m.Scheme == dep.Broadcast {
		return 1
	}
	loads := make([]int64, c.cfg.Workers)
	for bi := 0; bi < m.BlockRows(); bi++ {
		for bj := 0; bj < m.BlockCols(); bj++ {
			loads[c.Owner(m, bi, bj)] += m.BlockBytes(bi, bj)
		}
	}
	var max, total int64
	for _, l := range loads {
		total += l
		if l > max {
			max = l
		}
	}
	if total == 0 {
		return 1
	}
	mean := float64(total) / float64(c.cfg.Workers)
	return float64(max) / mean
}

// MaterializedGrid returns the matrix's grid in its logical orientation,
// realizing a lazy transpose view in place on first use. The modelled FLOPs
// for the transpose were already charged when the view was created, so
// materialization itself adds no model cost.
func (c *Cluster) MaterializedGrid(m *DistMatrix) *matrix.Grid {
	if m.trans {
		m.Grid = c.exec.Transpose(m.Grid)
		m.trans = false
	}
	return m.Grid
}

// Partition repartitions the matrix to a Row or Col scheme, charging |A| to
// the network (the repartition shuffle of the partition extended operator).
// stage attributes the traffic in per-stage statistics. The transport moves
// the blocks first — a canceled context or an unreachable worker aborts the
// collective before anything is charged to the model.
func (c *Cluster) Partition(ctx context.Context, m *DistMatrix, scheme dep.Scheme, stage int) (*DistMatrix, error) {
	if scheme != dep.Row && scheme != dep.Col {
		return nil, fmt.Errorf("dist: partition to invalid scheme %s", scheme)
	}
	if err := c.opFault(); err != nil {
		return nil, err
	}
	out := &DistMatrix{Grid: m.Grid, Scheme: scheme, trans: m.trans}
	// Destinations are the owners under the new scheme — where the shuffle
	// puts each block.
	wire, err := c.transport.Scatter(ctx, "partition", stage, c.scatterXfers(out, 1))
	if err := c.commFailure(err, stage); err != nil {
		return nil, err
	}
	c.net.AddComm(stage, m.Bytes())
	c.traceComm(stage, "partition", m.Bytes(),
		obs.String("from_scheme", m.Scheme.String()), obs.String("to_scheme", scheme.String()))
	c.verifyTransfer(m, stage, "partition")
	c.chargeWire(stage, "partition", wire)
	return out, nil
}

// Broadcast replicates the matrix on every alive worker, charging N x |A|
// for a full cluster and proportionally less once workers have been lost.
// On the wire the replication is a ring: the coordinator sends each block
// once and the alive workers forward it around the ring, so no single link
// carries the whole fan-out.
func (c *Cluster) Broadcast(ctx context.Context, m *DistMatrix, stage int) (*DistMatrix, error) {
	wire, err := c.transport.Ring(ctx, "broadcast", stage, m.ringXfers(), c.aliveList())
	if err := c.commFailure(err, stage); err != nil {
		return nil, err
	}
	replicas := int64(c.AliveWorkers())
	c.net.AddBroadcast(stage, replicas*m.Bytes())
	c.traceComm(stage, "broadcast", replicas*m.Bytes(),
		obs.String("from_scheme", m.Scheme.String()), obs.Int64("replicas", replicas))
	c.verifyTransfer(m, stage, "broadcast")
	c.chargeWire(stage, "broadcast", wire)
	return &DistMatrix{Grid: m.Grid, Scheme: dep.Broadcast, trans: m.trans}, nil
}

// Extract locally filters a broadcast replica down to a Row or Col
// partition; no communication (the extract extended operator).
func (c *Cluster) Extract(m *DistMatrix, scheme dep.Scheme) (*DistMatrix, error) {
	if m.Scheme != dep.Broadcast {
		return nil, fmt.Errorf("dist: extract from scheme %s", m.Scheme)
	}
	if scheme != dep.Row && scheme != dep.Col {
		return nil, fmt.Errorf("dist: extract to invalid scheme %s", scheme)
	}
	if err := c.opFault(); err != nil {
		return nil, err
	}
	return &DistMatrix{Grid: m.Grid, Scheme: scheme, trans: m.trans}, nil
}

// Transpose locally transposes the matrix; the scheme flips between Row and
// Col (Broadcast and hash placements stay as they are). No communication
// (the transpose extended operator). The result is a lazy view sharing the
// operand's blocks: downstream multiplications fuse it into their kernels,
// and other consumers materialize it on demand. The modelled FLOPs are
// charged here, when the transpose logically happens, so stage accounting is
// independent of whether the view is ever realized.
func (c *Cluster) Transpose(m *DistMatrix) *DistMatrix {
	c.addFLOPs(c.stage(), float64(m.Grid.NNZ()))
	return &DistMatrix{Grid: m.Grid, Scheme: m.Scheme.Opposite(), trans: !m.trans}
}

// ShuffleTranspose is the baseline transpose job: a full shuffle that
// materializes the transpose (SystemML-S pays |A| for it). On the wire each
// block travels once, to the owner of its transposed coordinates.
func (c *Cluster) ShuffleTranspose(ctx context.Context, m *DistMatrix, stage int) (*DistMatrix, error) {
	// The move set is m's blocks re-homed under the transposed placement.
	view := &DistMatrix{Grid: m.Grid, Scheme: m.Scheme.Opposite(), trans: !m.trans}
	wire, err := c.transport.Scatter(ctx, "shuffle-transpose", stage, c.scatterXfers(view, 1))
	if err := c.commFailure(err, stage); err != nil {
		return nil, err
	}
	c.net.AddComm(stage, m.Bytes())
	c.traceComm(stage, "shuffle-transpose", m.Bytes(),
		obs.String("from_scheme", m.Scheme.String()))
	c.verifyTransfer(m, stage, "shuffle-transpose")
	c.chargeWire(stage, "shuffle-transpose", wire)
	c.addFLOPs(stage, float64(m.Grid.NNZ()))
	if m.trans {
		// The stored grid already is the transpose of the view; the shuffle
		// materializes it as-is.
		return &DistMatrix{Grid: m.Grid, Scheme: m.Scheme.Opposite()}, nil
	}
	return &DistMatrix{Grid: c.exec.Transpose(m.Grid), Scheme: m.Scheme.Opposite()}, nil
}
