package dist

import (
	"sync"
	"testing"
)

// TestNetStatsConcurrent hammers every NetStats method from many goroutines;
// run with -race it proves the accounting layer is safe for the parallel
// stage tasks and the fault injector that share it.
func TestNetStatsConcurrent(t *testing.T) {
	var n NetStats
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				switch i % 6 {
				case 0:
					n.AddComm(g%3, 10)
				case 1:
					n.AddFLOPs(1)
				case 2:
					n.AddRecovery(g%3, 5)
				case 3:
					n.AddRetry()
				case 4:
					n.AddStall(0.001)
				case 5:
					_ = n.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := n.Snapshot()
	// Case r of the i%6 switch runs ceil((perG-r)/6) times per goroutine.
	hits := func(r int) int { return (perG - r + 5) / 6 }
	wantComm := int64(goroutines * hits(0) * 10)
	wantRecovery := int64(goroutines * hits(2) * 5)
	if s.Bytes != wantComm+wantRecovery {
		t.Errorf("bytes = %d, want %d", s.Bytes, wantComm+wantRecovery)
	}
	if s.RecoveryBytes != wantRecovery {
		t.Errorf("recovery bytes = %d, want %d", s.RecoveryBytes, wantRecovery)
	}
	if s.Retries != goroutines*hits(3) {
		t.Errorf("retries = %d, want %d", s.Retries, goroutines*hits(3))
	}
	var stageTotal int64
	for _, b := range s.StageBytes {
		stageTotal += b
	}
	if stageTotal != s.Bytes {
		t.Errorf("stage bytes sum %d != total bytes %d", stageTotal, s.Bytes)
	}
	n.Reset()
	if after := n.Snapshot(); after.Bytes != 0 || after.FLOPs != 0 || after.Retries != 0 {
		t.Errorf("Reset left state: %+v", after)
	}
}

// TestNetStatsConcurrentReset interleaves writers with Reset; only absence of
// data races is asserted (totals depend on interleaving).
func TestNetStatsConcurrentReset(t *testing.T) {
	var n NetStats
	var wg sync.WaitGroup
	wg.Add(8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if g == 0 && i%10 == 0 {
					n.Reset()
					continue
				}
				n.AddComm(i%4, 1)
				n.AddStall(0.0001)
				_ = n.Snapshot()
			}
		}(g)
	}
	wg.Wait()
}
