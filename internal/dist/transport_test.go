package dist

import (
	"context"
	"errors"
	"testing"

	"dmac/internal/dep"
	"dmac/internal/matrix"
)

// transportGoldenStats runs a fixed collective sequence — partition,
// broadcast, shuffle-transpose, CPMM multiply, sum — and returns the
// cluster's accumulated statistics. The pinned test below asserts the exact
// numbers this produced before the Transport interface existed, so the
// in-process transport is provably charge-identical to the direct-copy code
// it replaced.
func transportGoldenStats(t *testing.T, c *Cluster) Snapshot {
	t.Helper()
	ctx := context.Background()
	g := matrix.NewDenseGrid(12, 10, 4)
	for i := 0; i < 12; i++ {
		for j := 0; j < 10; j++ {
			g.Set(i, j, float64(i*10+j)+0.5)
		}
	}
	m := NewDistMatrix(g, dep.SchemeNone)
	rowed, err := c.Partition(ctx, m, dep.Row, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Broadcast(ctx, m, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ShuffleTranspose(ctx, rowed, 2); err != nil {
		t.Fatal(err)
	}
	ga := matrix.NewDenseGrid(8, 8, 4)
	gb := matrix.NewDenseGrid(8, 8, 4)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			ga.Set(i, j, float64(i+j)+1)
			gb.Set(i, j, float64(i*j)+2)
		}
	}
	out, err := c.Multiply(ctx, NewDistMatrix(ga, dep.Col), NewDistMatrix(gb, dep.Row), CPMM, dep.Row, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sum(ctx, out, 3); err != nil {
		t.Fatal(err)
	}
	return c.Net().Snapshot()
}

// TestInprocTransportChargesPinned pins the in-process transport to the
// exact NetStats charges the pre-transport direct-copy code produced for the
// same collective sequence. Any change to these numbers is a change to the
// cost model, not a refactor.
func TestInprocTransportChargesPinned(t *testing.T) {
	c := NewCluster(Config{Workers: 4, LocalParallelism: 2})
	s := transportGoldenStats(t, c)
	if s.Bytes != 7840 {
		t.Errorf("Bytes = %d, want 7840", s.Bytes)
	}
	if s.CommEvents != 5 || s.Broadcasts != 1 || s.Shuffles != 4 {
		t.Errorf("events = %d (b=%d, s=%d), want 5 (1, 4)", s.CommEvents, s.Broadcasts, s.Shuffles)
	}
	if s.FLOPs != 1208 {
		t.Errorf("FLOPs = %v, want 1208", s.FLOPs)
	}
	wantStageBytes := map[int]int64{1: 4800, 2: 960, 3: 2080}
	for st, want := range wantStageBytes {
		if s.StageBytes[st] != want {
			t.Errorf("StageBytes[%d] = %d, want %d", st, s.StageBytes[st], want)
		}
	}
	wantStageEvents := map[int]int{1: 2, 2: 1, 3: 2}
	for st, want := range wantStageEvents {
		if s.StageEvents[st] != want {
			t.Errorf("StageEvents[%d] = %d, want %d", st, s.StageEvents[st], want)
		}
	}
	// The in-process transport moves nothing: measured wire traffic is zero,
	// and that zero is what keeps the model untouched by the transport layer.
	if s.WireBytes != 0 || s.WireFrames != 0 {
		t.Errorf("wire = %d bytes / %d frames, want 0 / 0", s.WireBytes, s.WireFrames)
	}
	if c.TransportName() != "inproc" {
		t.Errorf("TransportName = %q, want inproc", c.TransportName())
	}
}

// TestCollectivesHonorCanceledContext is the regression test for context
// propagation through the cluster's communication loops: a canceled context
// must abort every collective with the context's error and charge nothing to
// the model.
func TestCollectivesHonorCanceledContext(t *testing.T) {
	c := NewCluster(Config{Workers: 4, LocalParallelism: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := matrix.NewDenseGrid(8, 8, 4)
	for i := 0; i < 8; i++ {
		g.Set(i, i, 1)
	}
	m := NewDistMatrix(g, dep.SchemeNone)

	if _, err := c.Partition(ctx, m, dep.Row, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("Partition under canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := c.Broadcast(ctx, m, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("Broadcast under canceled ctx = %v, want context.Canceled", err)
	}
	rowed := NewDistMatrix(g, dep.Row)
	if _, err := c.ShuffleTranspose(ctx, rowed, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("ShuffleTranspose under canceled ctx = %v, want context.Canceled", err)
	}
	if _, err := c.Sum(ctx, rowed, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("Sum under canceled ctx = %v, want context.Canceled", err)
	}
	a := NewDistMatrix(g, dep.Col)
	b := NewDistMatrix(g, dep.Row)
	if _, err := c.Multiply(ctx, a, b, CPMM, dep.Row, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("CPMM Multiply under canceled ctx = %v, want context.Canceled", err)
	}

	s := c.Net().Snapshot()
	if s.Bytes != 0 || s.CommEvents != 0 {
		t.Errorf("canceled collectives charged %d bytes / %d events, want none", s.Bytes, s.CommEvents)
	}
}

// TestNetFaultPlanValidate covers the validation of the network-fault fields:
// malformed rates, stages and partitions must be rejected with descriptive
// errors, and ValidateFor must additionally reject partitions naming workers
// the cluster does not have.
func TestNetFaultPlanValidate(t *testing.T) {
	valid := []FaultPlan{
		{},
		{NetDropRate: 0.5},
		{NetPartition: []int{1}, NetPartitionStage: 2},
		{Events: []FaultEvent{{Stage: 1, Worker: 0, Kind: FaultNetDrop}}},
		{Events: []FaultEvent{{Stage: 1, Worker: 0, Kind: FaultNetDelay, DelaySec: 0.1}}},
		{Events: []FaultEvent{{Stage: 1, Worker: 0, Kind: FaultNetPartition}}},
	}
	for i, p := range valid {
		if err := p.Validate(); err != nil {
			t.Errorf("valid plan %d rejected: %v", i, err)
		}
	}
	invalid := []FaultPlan{
		{NetDropRate: -0.1},
		{NetDropRate: 1.5},
		{NetPartitionStage: -1},
		{NetPartition: []int{-3}},
		{Events: []FaultEvent{{Stage: 1, Worker: 0, Kind: FaultKind(99)}}},
	}
	for i, p := range invalid {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid plan %d accepted", i)
		}
	}
	// Partition of a worker the cluster does not have: caught by ValidateFor.
	p := FaultPlan{NetPartition: []int{7}}
	if err := p.Validate(); err != nil {
		t.Errorf("size-dependent check leaked into Validate: %v", err)
	}
	if err := p.ValidateFor(4); err == nil {
		t.Error("ValidateFor(4) accepted partition of worker 7")
	}
	// And a cluster constructed with such a plan fails its first BeginStage.
	c := NewCluster(Config{Workers: 4, Faults: p})
	if err := c.BeginStage(1, 0); err == nil {
		t.Error("BeginStage accepted invalid net-fault plan")
	}
}

// TestNetFaultPartition checks the injected partition path: the first
// collective that must reach the partitioned worker fails with a typed
// *WorkerFailure of kind FaultNetPartition, classifiable via ErrWorkerLost.
func TestNetFaultPartition(t *testing.T) {
	c := NewCluster(Config{
		Workers:          4,
		LocalParallelism: 2,
		Faults:           FaultPlan{NetPartition: []int{2}},
	})
	if err := c.BeginStage(1, 0); err != nil {
		t.Fatal(err)
	}
	g := matrix.NewDenseGrid(12, 12, 4)
	for i := 0; i < 12; i++ {
		g.Set(i, i, 1)
	}
	m := NewDistMatrix(g, dep.SchemeNone)
	_, err := c.Partition(context.Background(), m, dep.Row, 1)
	var wf *WorkerFailure
	if !errors.As(err, &wf) {
		t.Fatalf("partitioned Partition = %v, want *WorkerFailure", err)
	}
	if wf.Worker != 2 || wf.Kind != FaultNetPartition {
		t.Errorf("failure = worker %d kind %s, want worker 2 net-partition", wf.Worker, wf.Kind)
	}
	if !errors.Is(err, ErrWorkerLost) {
		t.Error("partition failure does not match ErrWorkerLost")
	}
	// Once the engine-style recovery removes the worker, the retry goes
	// through: the partitioned worker is no longer a destination.
	if !c.KillWorker(2) {
		t.Fatal("KillWorker(2) refused")
	}
	if err := c.BeginStage(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Partition(context.Background(), m, dep.Row, 1); err != nil {
		t.Fatalf("retry after recovery failed: %v", err)
	}
}

// TestNetFaultDropAndDelay checks the non-fatal injections: drops are healed
// by retransmit (counted, stalled, results unchanged) and scripted delays
// charge stall. Results must stay identical to a fault-free run.
func TestNetFaultDropAndDelay(t *testing.T) {
	faulty := NewCluster(Config{
		Workers:          4,
		LocalParallelism: 2,
		Faults: FaultPlan{
			NetDropRate: 1, // drop every (stage, worker) once on first attempts
			Events: []FaultEvent{
				{Stage: 1, Worker: 1, Kind: FaultNetDelay, DelaySec: 0.25},
			},
		},
	})
	clean := NewCluster(Config{Workers: 4, LocalParallelism: 2})
	for _, c := range []*Cluster{faulty, clean} {
		if err := c.BeginStage(1, 0); err != nil {
			t.Fatal(err)
		}
	}

	transportGoldenStats(t, faulty)
	transportGoldenStats(t, clean)

	fs, cs := faulty.Net().Snapshot(), clean.Net().Snapshot()
	if fs.NetDropsInjected == 0 {
		t.Error("NetDropRate=1 injected no drops")
	}
	if fs.NetDelaysInjected != 1 {
		t.Errorf("NetDelaysInjected = %d, want 1", fs.NetDelaysInjected)
	}
	if fs.StallSec <= cs.StallSec {
		t.Errorf("faulty stall %v not above clean %v", fs.StallSec, cs.StallSec)
	}
	// Drops and delays never lose data: the model charges (bytes, events,
	// FLOPs) are identical to the clean run.
	if fs.Bytes != cs.Bytes || fs.CommEvents != cs.CommEvents || fs.FLOPs != cs.FLOPs {
		t.Errorf("faulty charges (%d, %d, %v) differ from clean (%d, %d, %v)",
			fs.Bytes, fs.CommEvents, fs.FLOPs, cs.Bytes, cs.CommEvents, cs.FLOPs)
	}
}

// TestKillFailureMatchesErrWorkerLost pins that the pre-existing kill path
// is classifiable through the same sentinel as the new network failures.
func TestKillFailureMatchesErrWorkerLost(t *testing.T) {
	var err error = &WorkerFailure{Worker: 1, Stage: 2, Kind: FaultKillBoundary}
	if !errors.Is(err, ErrWorkerLost) {
		t.Error("kill WorkerFailure does not match ErrWorkerLost")
	}
}
