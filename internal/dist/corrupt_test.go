package dist

import (
	"context"
	"strings"
	"testing"

	"dmac/internal/dep"
	"dmac/internal/matrix"
	"dmac/internal/workload"
)

func TestFaultPlanValidate(t *testing.T) {
	ok := []FaultPlan{
		{},
		{Rate: 1, CorruptRate: 1, Seed: 7},
		{Events: []FaultEvent{
			{Stage: 1, Worker: 0, Kind: FaultKillBoundary},
			{Stage: 2, Worker: 3, Attempt: 1, Kind: FaultKillTask},
			{Stage: 3, Worker: 1, Kind: FaultDelay, DelaySec: 0.5},
			{Stage: 4, Worker: 2, Kind: FaultCorrupt},
		}},
	}
	for i, p := range ok {
		if err := p.Validate(); err != nil {
			t.Errorf("valid plan %d rejected: %v", i, err)
		}
	}
	bad := []struct {
		name string
		plan FaultPlan
		want string
	}{
		{"negative rate", FaultPlan{Rate: -0.1}, "Rate"},
		{"rate above one", FaultPlan{Rate: 1.5}, "Rate"},
		{"negative corrupt rate", FaultPlan{CorruptRate: -1}, "CorruptRate"},
		{"corrupt rate above one", FaultPlan{CorruptRate: 2}, "CorruptRate"},
		{"negative stage", FaultPlan{Events: []FaultEvent{{Stage: -1}}}, "Stage"},
		{"negative worker", FaultPlan{Events: []FaultEvent{{Worker: -2}}}, "Worker"},
		{"negative attempt", FaultPlan{Events: []FaultEvent{{Attempt: -1}}}, "Attempt"},
		{"negative delay", FaultPlan{Events: []FaultEvent{{Kind: FaultDelay, DelaySec: -1}}}, "DelaySec"},
		{"unknown kind", FaultPlan{Events: []FaultEvent{{Kind: FaultKind(99)}}}, "kind"},
	}
	for _, tc := range bad {
		err := tc.plan.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// An invalid plan must not fail cluster construction but must abort the run
// with the validation error at the first stage.
func TestInvalidPlanSurfacesAtBeginStage(t *testing.T) {
	c := chaosCluster(FaultPlan{Rate: 2})
	err := c.BeginStage(1, 0)
	if err == nil {
		t.Fatal("BeginStage accepted an invalid fault plan")
	}
	if !strings.Contains(err.Error(), "Rate") {
		t.Errorf("error %q does not describe the invalid field", err)
	}
}

// A scripted corruption must be injected at the stage's first block hand-off,
// detected by the checksum verification, charged a re-fetch, and must leave
// the transferred data bit-identical to a fault-free run.
func TestScriptedCorruptionDetected(t *testing.T) {
	g := workload.SparseUniform(11, 40, 40, 10, 0.1)
	pristine := g.Clone()
	plan := FaultPlan{Events: []FaultEvent{
		{Stage: 1, Worker: 1, Kind: FaultCorrupt},
		{Stage: 1, Worker: 2, Kind: FaultCorrupt},
	}}
	c := chaosCluster(plan)
	m := NewDistMatrix(g, dep.SchemeNone)
	if err := c.BeginStage(1, 0); err != nil {
		t.Fatal(err)
	}
	clean := chaosCluster(FaultPlan{})
	if err := clean.BeginStage(1, 0); err != nil {
		t.Fatal(err)
	}
	mc := NewDistMatrix(pristine, dep.SchemeNone)
	if _, err := c.Partition(context.Background(), m, dep.Row, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := clean.Partition(context.Background(), mc, dep.Row, 1); err != nil {
		t.Fatal(err)
	}

	s := c.Net().Snapshot()
	if s.CorruptionsInjected != 2 {
		t.Errorf("CorruptionsInjected = %d, want 2", s.CorruptionsInjected)
	}
	if s.CorruptionsDetected != s.CorruptionsInjected {
		t.Errorf("CorruptionsDetected = %d, want %d (every corruption detected)",
			s.CorruptionsDetected, s.CorruptionsInjected)
	}
	cs := clean.Net().Snapshot()
	if s.Bytes <= cs.Bytes {
		t.Errorf("corrupted run moved %d bytes, clean run %d: re-fetches not charged", s.Bytes, cs.Bytes)
	}
	if !matrix.GridEqual(g, pristine, 0) {
		t.Error("corruption damaged the stored grid; bit-flips must hit only the in-transit copy")
	}
}

// Corruption events armed for a stage that performs no block hand-off must be
// disarmed at the next BeginStage, never mis-firing or leaking into the
// injected count.
func TestUnconsumedCorruptionDisarmed(t *testing.T) {
	plan := FaultPlan{Events: []FaultEvent{{Stage: 1, Worker: 0, Kind: FaultCorrupt}}}
	c := chaosCluster(plan)
	if err := c.BeginStage(1, 0); err != nil {
		t.Fatal(err)
	}
	// No transfer in stage 1; stage 2 does transfer.
	if err := c.BeginStage(2, 0); err != nil {
		t.Fatal(err)
	}
	g := workload.DenseRandom(3, 20, 20, 10)
	m := NewDistMatrix(g, dep.SchemeNone)
	if _, err := c.Partition(context.Background(), m, dep.Col, 2); err != nil {
		t.Fatal(err)
	}
	s := c.Net().Snapshot()
	if s.CorruptionsInjected != 0 || s.CorruptionsDetected != 0 {
		t.Errorf("stale corruption fired: injected=%d detected=%d, want 0/0",
			s.CorruptionsInjected, s.CorruptionsDetected)
	}
}

// The random corruption component must be deterministic under a fixed seed,
// independent of the kill decisions, and restricted to first attempts.
func TestCorruptRateDeterministicAndFirstAttemptOnly(t *testing.T) {
	p := FaultPlan{Seed: 9, CorruptRate: 0.5}
	first := p.eventsAt(2, 0, 8)
	again := p.eventsAt(2, 0, 8)
	if len(first) == 0 {
		t.Fatal("50% corruption over 8 workers armed nothing; salt or hash broken")
	}
	if len(first) != len(again) {
		t.Fatalf("event count changed across calls: %d vs %d", len(first), len(again))
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("event %d changed across calls: %+v vs %+v", i, first[i], again[i])
		}
		if first[i].Kind != FaultCorrupt {
			t.Fatalf("event %d has kind %s, want corrupt", i, first[i].Kind)
		}
	}
	if got := p.eventsAt(2, 1, 8); len(got) != 0 {
		t.Errorf("retry attempt armed %d corruptions, want 0 (retries re-shuffle clean data)", len(got))
	}
	// Salted independence: with both rates set, the union fires, and the
	// corrupt victims are decided independently of the kill victims.
	both := FaultPlan{Seed: 9, Rate: 0.5, CorruptRate: 0.5}
	var kills, corrupts int
	for _, ev := range both.eventsAt(2, 0, 8) {
		if ev.Kind == FaultCorrupt {
			corrupts++
		} else {
			kills++
		}
	}
	if corrupts != len(first) {
		t.Errorf("adding kills changed the corrupt set: %d vs %d", corrupts, len(first))
	}
	if kills == 0 {
		t.Error("50% kills over 8 workers armed nothing")
	}
}

// Corruption during a broadcast and a CPMM aggregation shuffle must also be
// detected — every hand-off path runs the verification.
func TestCorruptionAcrossHandoffKinds(t *testing.T) {
	a := workload.SparseUniform(21, 30, 30, 10, 0.2)
	b := workload.DenseRandom(22, 30, 30, 10)
	plan := FaultPlan{Events: []FaultEvent{
		{Stage: 1, Worker: 0, Kind: FaultCorrupt},
		{Stage: 2, Worker: 1, Kind: FaultCorrupt},
	}}
	c := chaosCluster(plan)
	if err := c.BeginStage(1, 0); err != nil {
		t.Fatal(err)
	}
	c.Broadcast(context.Background(), NewDistMatrix(a, dep.SchemeNone), 1)
	if err := c.BeginStage(2, 0); err != nil {
		t.Fatal(err)
	}
	ac := NewDistMatrix(a, dep.Col)
	bc := NewDistMatrix(b, dep.Row)
	if _, err := c.Multiply(context.Background(), ac, bc, CPMM, dep.Row, 2); err != nil {
		t.Fatal(err)
	}
	s := c.Net().Snapshot()
	if s.CorruptionsInjected != 2 || s.CorruptionsDetected != 2 {
		t.Errorf("injected=%d detected=%d, want 2/2", s.CorruptionsInjected, s.CorruptionsDetected)
	}
}
