package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"dmac/internal/dep"
	"dmac/internal/dist"
	"dmac/internal/matrix"
	"dmac/internal/mio"
)

// startWorker spins up one worker endpoint on loopback and returns it with
// its dial address, cleaned up with the test.
func startWorker(t *testing.T, cfg WorkerConfig) (*Worker, string) {
	t.Helper()
	w := NewWorker(cfg)
	addr, err := w.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve()
	t.Cleanup(func() { w.Close() })
	return w, addr.String()
}

// testBlock builds a small dense block with distinct values.
func testBlock(seed int) matrix.Block {
	data := make([]float64, 12)
	for i := range data {
		data[i] = float64(seed*100+i) + 0.25
	}
	return matrix.NewDenseData(3, 4, data)
}

// fastTCP builds a coordinator transport with short timeouts suited to tests,
// cleaned up with the test.
func fastTCP(t *testing.T, addrs ...string) *TCP {
	t.Helper()
	tr := NewTCP(Config{
		Addrs:                addrs,
		DialTimeoutSec:       0.5,
		IOTimeoutSec:         2,
		HeartbeatIntervalSec: 0.05,
		HeartbeatMisses:      3,
	})
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestScatterRoundTrip(t *testing.T) {
	w0, a0 := startWorker(t, WorkerConfig{})
	w1, a1 := startWorker(t, WorkerConfig{})
	tr := fastTCP(t, a0, a1)

	xfers := []dist.BlockXfer{
		{Bi: 0, Bj: 0, To: 0, Block: testBlock(1)},
		{Bi: 0, Bj: 1, To: 1, Block: testBlock(2)},
		{Bi: 1, Bj: 0, To: 1, Block: testBlock(3)},
	}
	wire, err := tr.Scatter(context.Background(), "partition", 1, xfers)
	if err != nil {
		t.Fatal(err)
	}
	if w0.BlockCount() != 1 || w1.BlockCount() != 2 {
		t.Errorf("stored blocks = %d / %d, want 1 / 2", w0.BlockCount(), w1.BlockCount())
	}
	// Two hellos (2 frames each) plus three PUT round-trips (2 frames each).
	if wire.Frames != 10 {
		t.Errorf("frames = %d, want 10", wire.Frames)
	}
	// Each block's payload (12 float64s) must be on the wire at least once.
	if wire.Bytes < 3*12*8 {
		t.Errorf("wire bytes = %d, want at least %d", wire.Bytes, 3*12*8)
	}
}

func TestScatterNewStageDropsOldBlocks(t *testing.T) {
	w0, a0 := startWorker(t, WorkerConfig{})
	tr := fastTCP(t, a0)
	ctx := context.Background()
	if _, err := tr.Scatter(ctx, "partition", 1, []dist.BlockXfer{{To: 0, Block: testBlock(1)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Scatter(ctx, "partition", 2, []dist.BlockXfer{{Bi: 5, To: 0, Block: testBlock(2)}}); err != nil {
		t.Fatal(err)
	}
	if w0.BlockCount() != 1 {
		t.Errorf("worker holds %d blocks after stage change, want 1 (newest stage only)", w0.BlockCount())
	}
}

func TestRingBroadcast(t *testing.T) {
	workers := make([]*Worker, 3)
	addrs := make([]string, 3)
	for i := range workers {
		workers[i], addrs[i] = startWorker(t, WorkerConfig{})
	}
	tr := fastTCP(t, addrs...)

	blocks := []dist.BlockXfer{
		{Bi: 0, Bj: 0, To: -1, Block: testBlock(7)},
		{Bi: 0, Bj: 1, To: -1, Block: testBlock(8)},
	}
	wire, err := tr.Ring(context.Background(), "broadcast", 1, blocks, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range workers {
		if w.BlockCount() != 2 {
			t.Errorf("worker %d stored %d blocks, want 2", i, w.BlockCount())
		}
	}
	// The ring relays the payload across three links; the measured total must
	// cover roughly three copies of the two-block payload.
	if wire.Bytes < 3*2*12*8 {
		t.Errorf("ring wire bytes = %d, want at least %d (3 links)", wire.Bytes, 3*2*12*8)
	}
	// hello(2) + coordinator RING round-trip (2) + two forward round-trips (2+2).
	if wire.Frames != 8 {
		t.Errorf("ring frames = %d, want 8", wire.Frames)
	}
}

func TestCollect(t *testing.T) {
	w0, a0 := startWorker(t, WorkerConfig{})
	_, a1 := startWorker(t, WorkerConfig{})
	tr := fastTCP(t, a0, a1)
	ctx := context.Background()
	if _, err := tr.Scatter(ctx, "partition", 3, []dist.BlockXfer{{To: 0, Block: testBlock(1)}}); err != nil {
		t.Fatal(err)
	}
	wire, err := tr.Collect(ctx, 3, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if w0.BlockCount() != 1 {
		t.Fatalf("worker 0 lost its block")
	}
	// One hello (worker 1 was not dialed yet) + two collect round-trips.
	if wire.Frames != 6 {
		t.Errorf("collect frames = %d, want 6", wire.Frames)
	}
}

// badCRCServer accepts one connection and answers the hello normally, then
// answers the first `rejects` PUT frames with badCRC before accepting.
func badCRCServer(t *testing.T, rejects int) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		left := rejects
		for {
			typ, _, _, err := readFrame(conn)
			if err != nil {
				return
			}
			switch typ {
			case fHello:
				writeFrame(conn, fHelloOK, nil)
			case fPing:
				writeFrame(conn, fPong, nil)
			case fPut:
				if left > 0 {
					left--
					writeFrame(conn, fPutBadCRC, nil)
				} else {
					writeFrame(conn, fPutOK, nil)
				}
			}
		}
	}()
	return ln.Addr().String()
}

func TestPutRetransmitsOnBadCRC(t *testing.T) {
	addr := badCRCServer(t, 2)
	tr := fastTCP(t, addr)
	wire, err := tr.Scatter(context.Background(), "partition", 1, []dist.BlockXfer{{To: 0, Block: testBlock(4)}})
	if err != nil {
		t.Fatalf("scatter with 2 CRC rejects failed: %v", err)
	}
	// hello (2 frames) + three PUT round-trips: two rejected, one accepted.
	if wire.Frames != 8 {
		t.Errorf("frames = %d, want 8 (two retransmits)", wire.Frames)
	}
	// The payload crossed the wire three times.
	if wire.Bytes < 3*12*8 {
		t.Errorf("wire bytes = %d, want at least three payload copies", wire.Bytes)
	}
}

func TestPutGivesUpAfterRepeatedBadCRC(t *testing.T) {
	addr := badCRCServer(t, 100)
	tr := fastTCP(t, addr)
	_, err := tr.Scatter(context.Background(), "partition", 1, []dist.BlockXfer{{To: 0, Block: testBlock(4)}})
	var pd *dist.PeerDown
	if !errors.As(err, &pd) {
		t.Fatalf("persistent CRC rejection = %v, want *dist.PeerDown", err)
	}
}

func TestWorkerAnswersBadCRCToCorruptFrame(t *testing.T) {
	_, addr := startWorker(t, WorkerConfig{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := mio.EncodeBlock(testBlock(9))
	crc := mio.ChecksumBytes(enc)
	enc[len(enc)-1] ^= 0x40 // flip a bit after checksumming: damage in transit
	if _, err := writeFrame(conn, fPut, putPayload(1, 0, 0, crc, enc)); err != nil {
		t.Fatal(err)
	}
	typ, _, _, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != fPutBadCRC {
		t.Errorf("corrupt PUT answered with frame type %d, want badCRC", typ)
	}
}

func TestDeadWorkerBecomesPeerDown(t *testing.T) {
	w0, a0 := startWorker(t, WorkerConfig{})
	tr := fastTCP(t, a0)
	ctx := context.Background()
	if _, err := tr.Scatter(ctx, "partition", 1, []dist.BlockXfer{{To: 0, Block: testBlock(1)}}); err != nil {
		t.Fatal(err)
	}
	w0.Close()
	_, err := tr.Scatter(ctx, "partition", 1, []dist.BlockXfer{{To: 0, Block: testBlock(2)}})
	var pd *dist.PeerDown
	if !errors.As(err, &pd) {
		t.Fatalf("scatter to killed worker = %v, want *dist.PeerDown", err)
	}
	if pd.Worker != 0 || pd.Addr != a0 {
		t.Errorf("PeerDown = worker %d addr %q, want worker 0 addr %q", pd.Worker, pd.Addr, a0)
	}
}

// TestRingToDeadFirstHopReturnsPeerDown is the regression test for a
// self-deadlock: Ring used to hold the first hop's peer mutex while blameRing
// pinged the hops through the same mutex, so a ring into a freshly dead first
// hop (warm connection, then SIGKILL) hung forever instead of failing.
func TestRingToDeadFirstHopReturnsPeerDown(t *testing.T) {
	w0, a0 := startWorker(t, WorkerConfig{})
	_, a1 := startWorker(t, WorkerConfig{})
	tr := fastTCP(t, a0, a1)
	ctx := context.Background()
	// Warm the connection to the first hop, then kill it.
	if _, err := tr.Scatter(ctx, "partition", 1, []dist.BlockXfer{{To: 0, Block: testBlock(1)}}); err != nil {
		t.Fatal(err)
	}
	w0.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := tr.Ring(ctx, "broadcast", 1, []dist.BlockXfer{{To: -1, Block: testBlock(2)}}, []int{0, 1})
		errCh <- err
	}()
	select {
	case err := <-errCh:
		var pd *dist.PeerDown
		if !errors.As(err, &pd) {
			t.Fatalf("ring through dead first hop = %v, want *dist.PeerDown", err)
		}
		if pd.Worker != 0 {
			t.Errorf("PeerDown blames worker %d, want 0", pd.Worker)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ring through dead first hop deadlocked")
	}
}

// TestRingBlamesDeadDownstreamHop kills a downstream hop: the forwarding
// failure surfaces on the first hop's connection, and blameRing's probes must
// attribute the PeerDown to the hop that actually died, not the messenger.
func TestRingBlamesDeadDownstreamHop(t *testing.T) {
	_, a0 := startWorker(t, WorkerConfig{})
	w1, a1 := startWorker(t, WorkerConfig{})
	tr := fastTCP(t, a0, a1)
	ctx := context.Background()
	if _, err := tr.Ring(ctx, "broadcast", 1, []dist.BlockXfer{{To: -1, Block: testBlock(1)}}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	w1.Close()
	_, err := tr.Ring(ctx, "broadcast", 2, []dist.BlockXfer{{To: -1, Block: testBlock(2)}}, []int{0, 1})
	var pd *dist.PeerDown
	if !errors.As(err, &pd) {
		t.Fatalf("ring through dead downstream hop = %v, want *dist.PeerDown", err)
	}
	if pd.Worker != 1 {
		t.Errorf("PeerDown blames worker %d, want 1 (the dead downstream hop)", pd.Worker)
	}
}

func TestHeartbeatMarksContactedPeerDead(t *testing.T) {
	w0, a0 := startWorker(t, WorkerConfig{})
	tr := fastTCP(t, a0)
	ctx := context.Background()
	if _, err := tr.Scatter(ctx, "partition", 1, []dist.BlockXfer{{To: 0, Block: testBlock(1)}}); err != nil {
		t.Fatal(err)
	}
	w0.Close()
	deadline := time.Now().Add(5 * time.Second)
	for !tr.peers[0].dead.Load() {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never marked the killed worker dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Once dead, operations fail immediately without dial backoff.
	start := time.Now()
	_, err := tr.Scatter(ctx, "partition", 1, []dist.BlockXfer{{To: 0, Block: testBlock(2)}})
	var pd *dist.PeerDown
	if !errors.As(err, &pd) {
		t.Fatalf("scatter to dead peer = %v, want *dist.PeerDown", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("dead-peer fast path took %v, want immediate failure", elapsed)
	}
}

// TestTCPClusterChargesMatchModel drives the cluster's collectives over a
// real loopback TCP data plane and checks the model charges are byte-for-byte
// identical to the in-process transport (the model is transport-independent),
// while the measured wire traffic is nonzero and at least the modeled payload
// (framing and acks only ever add bytes).
func TestTCPClusterChargesMatchModel(t *testing.T) {
	addrs := make([]string, 4)
	for i := range addrs {
		_, addrs[i] = startWorker(t, WorkerConfig{})
	}
	wired := dist.NewCluster(dist.Config{WorkerAddrs: addrs, LocalParallelism: 2})
	wired.SetTransport(fastTCP(t, addrs...))
	local := dist.NewCluster(dist.Config{Workers: 4, LocalParallelism: 2})

	run := func(c *dist.Cluster) dist.Snapshot {
		ctx := context.Background()
		g := matrix.NewDenseGrid(12, 10, 4)
		for i := 0; i < 12; i++ {
			for j := 0; j < 10; j++ {
				g.Set(i, j, float64(i*10+j)+0.5)
			}
		}
		m := dist.NewDistMatrix(g, dep.SchemeNone)
		rowed, err := c.Partition(ctx, m, dep.Row, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Broadcast(ctx, m, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ShuffleTranspose(ctx, rowed, 2); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Sum(ctx, rowed, 2); err != nil {
			t.Fatal(err)
		}
		return c.Net().Snapshot()
	}
	ws, ls := run(wired), run(local)
	if ws.Bytes != ls.Bytes || ws.CommEvents != ls.CommEvents || ws.Broadcasts != ls.Broadcasts || ws.Shuffles != ls.Shuffles {
		t.Errorf("TCP model charges (%d B, %d ev, %d bc, %d sh) differ from inproc (%d B, %d ev, %d bc, %d sh)",
			ws.Bytes, ws.CommEvents, ws.Broadcasts, ws.Shuffles, ls.Bytes, ls.CommEvents, ls.Broadcasts, ls.Shuffles)
	}
	if ls.WireBytes != 0 || ls.WireFrames != 0 {
		t.Errorf("inproc measured wire traffic: %d B / %d frames", ls.WireBytes, ls.WireFrames)
	}
	if ws.WireBytes <= ws.Bytes {
		t.Errorf("TCP measured %d wire bytes, want more than the %d modeled payload bytes", ws.WireBytes, ws.Bytes)
	}
	if ws.WireFrames == 0 {
		t.Error("TCP measured no frames")
	}
	if wired.TransportName() != "tcp" {
		t.Errorf("TransportName = %q, want tcp", wired.TransportName())
	}
}
