package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dmac/internal/mio"
)

// WorkerConfig tunes a worker process's transport endpoint.
type WorkerConfig struct {
	// IOTimeoutSec bounds each frame read/write on an accepted connection.
	// Defaults to 10 s. An idle coordinator connection is allowed to sit
	// quietly — the read timeout applies per frame once bytes start
	// arriving, and heartbeats keep the link warm in between.
	IOTimeoutSec float64
	// DialTimeoutSec bounds a ring-forward dial to the next hop. Defaults
	// to 2 s.
	DialTimeoutSec float64
	// MaxBlocks caps the worker's block store; the store keeps the newest
	// stage's blocks (older stages are dropped when a new stage arrives).
	// Defaults to 8192.
	MaxBlocks int
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.IOTimeoutSec <= 0 {
		c.IOTimeoutSec = 10
	}
	if c.DialTimeoutSec <= 0 {
		c.DialTimeoutSec = 2
	}
	if c.MaxBlocks <= 0 {
		c.MaxBlocks = 8192
	}
	return c
}

// blockKey identifies a stored block.
type blockKey struct{ bi, bj int }

// Worker is the worker-process side of the TCP transport: it accepts
// coordinator and ring-forward connections, verifies every incoming block
// frame against its CRC32C (answering badCRC to request a retransmit),
// stores the newest stage's blocks, forwards ring broadcasts to the next
// hop, and answers collects and heartbeats.
type Worker struct {
	cfg WorkerConfig
	ln  net.Listener

	mu       sync.Mutex
	index    int // worker index announced by the coordinator's hello
	stage    int
	blocks   map[blockKey][]byte
	fwd      map[string]net.Conn // ring-forward connections by next-hop address
	accepted map[net.Conn]bool
	closed   bool
}

// NewWorker creates a worker endpoint (not yet listening).
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg.withDefaults(), index: -1, blocks: make(map[blockKey][]byte), fwd: make(map[string]net.Conn), accepted: make(map[net.Conn]bool)}
}

// Listen binds the worker to addr ("host:port", port 0 for ephemeral) and
// returns the bound address.
func (w *Worker) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	w.ln = ln
	return ln.Addr(), nil
}

// Addr returns the bound address (nil before Listen).
func (w *Worker) Addr() net.Addr {
	if w.ln == nil {
		return nil
	}
	return w.ln.Addr()
}

// Serve accepts and serves connections until Close. Each connection gets its
// own goroutine; per-frame deadlines bound every read and write.
func (w *Worker) Serve() error {
	if w.ln == nil {
		return errors.New("transport: worker Serve before Listen")
	}
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return nil
		}
		w.accepted[conn] = true
		w.mu.Unlock()
		go w.serveConn(conn)
	}
}

// Close stops the listener and drops all connections.
func (w *Worker) Close() error {
	w.mu.Lock()
	w.closed = true
	for a, c := range w.fwd {
		c.Close()
		delete(w.fwd, a)
	}
	for c := range w.accepted {
		c.Close()
		delete(w.accepted, c)
	}
	w.mu.Unlock()
	if w.ln != nil {
		return w.ln.Close()
	}
	return nil
}

// BlockCount returns how many blocks of the current stage the worker holds
// (the aggregate a collect reports).
func (w *Worker) BlockCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.blocks)
}

// ioDeadline returns the per-frame deadline.
func (w *Worker) ioDeadline() time.Time {
	return time.Now().Add(time.Duration(w.cfg.IOTimeoutSec * float64(time.Second)))
}

// serveConn is one connection's frame loop. A read error (including the
// peer going away) ends the loop; the coordinator re-dials as needed.
func (w *Worker) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		w.mu.Lock()
		delete(w.accepted, conn)
		w.mu.Unlock()
	}()
	for {
		// The frame gap between requests is unbounded (an idle but live
		// coordinator); the deadline applies once the frame header arrives.
		conn.SetReadDeadline(time.Time{})
		typ, payload, _, err := readFrame(conn)
		if err != nil {
			return
		}
		conn.SetDeadline(w.ioDeadline())
		if err := w.handle(conn, typ, payload); err != nil {
			return
		}
	}
}

// handle dispatches one frame and writes its reply.
func (w *Worker) handle(conn net.Conn, typ byte, payload []byte) error {
	switch typ {
	case fHello:
		if len(payload) == 4 {
			w.mu.Lock()
			w.index = int(uint32(payload[0]) | uint32(payload[1])<<8 | uint32(payload[2])<<16 | uint32(payload[3])<<24)
			w.mu.Unlock()
		}
		_, err := writeFrame(conn, fHelloOK, nil)
		return err
	case fPing:
		_, err := writeFrame(conn, fPong, nil)
		return err
	case fPut:
		stage, bi, bj, crc, enc, err := parsePut(payload)
		if err != nil {
			return err
		}
		if mio.ChecksumBytes(enc) != crc {
			// Damaged in transit: refuse and let the sender retransmit.
			_, err := writeFrame(conn, fPutBadCRC, nil)
			return err
		}
		w.store(stage, bi, bj, enc)
		_, err = writeFrame(conn, fPutOK, nil)
		return err
	case fRing:
		stage, hops, blocks, err := parseRing(payload)
		if err != nil {
			return err
		}
		for _, b := range blocks {
			if mio.ChecksumBytes(b.enc) != b.crc {
				_, err := writeFrame(conn, fPutBadCRC, nil)
				return err
			}
		}
		for _, b := range blocks {
			w.store(stage, b.bi, b.bj, b.enc)
		}
		relayedBytes, relayedFrames, err := w.forward(stage, hops, blocks)
		if err != nil {
			// The next hop is unreachable: drop the connection so the
			// coordinator sees the ring break and recovers.
			return fmt.Errorf("transport: ring forward: %w", err)
		}
		_, err = writeFrame(conn, fRingOK, ringOKPayload(relayedBytes, relayedFrames))
		return err
	case fCollect:
		w.mu.Lock()
		n := len(w.blocks)
		w.mu.Unlock()
		var agg [8]byte
		agg[0] = byte(n)
		agg[1] = byte(n >> 8)
		agg[2] = byte(n >> 16)
		agg[3] = byte(n >> 24)
		_, err := writeFrame(conn, fCollectOK, agg[:])
		return err
	default:
		return fmt.Errorf("transport: unknown frame type %d", typ)
	}
}

// store records one verified block, keeping only the newest stage and at
// most MaxBlocks entries.
func (w *Worker) store(stage, bi, bj int, enc []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if stage != w.stage {
		w.stage = stage
		w.blocks = make(map[blockKey][]byte)
	}
	if len(w.blocks) >= w.cfg.MaxBlocks {
		return
	}
	cp := make([]byte, len(enc))
	copy(cp, enc)
	w.blocks[blockKey{bi, bj}] = cp
}

// forward relays a ring broadcast to the next hop and returns the bytes and
// frames relayed from this hop down (its own send plus everything the
// downstream hops report).
func (w *Worker) forward(stage int, hops []string, blocks []ringBlock) (int64, int64, error) {
	if len(hops) == 0 {
		return 0, 0, nil
	}
	next, rest := hops[0], hops[1:]
	conn, err := w.fwdConn(next)
	if err != nil {
		return 0, 0, err
	}
	fail := func(err error) (int64, int64, error) {
		w.dropFwd(next)
		return 0, 0, err
	}
	conn.SetDeadline(w.ioDeadline())
	sent, err := writeFrame(conn, fRing, ringPayload(stage, rest, blocks))
	if err != nil {
		return fail(err)
	}
	typ, payload, n, err := readFrame(conn)
	if err != nil {
		return fail(err)
	}
	if typ != fRingOK {
		return fail(fmt.Errorf("transport: ring ack type %d", typ))
	}
	downBytes, downFrames, err := parseRingOK(payload)
	if err != nil {
		return fail(err)
	}
	return sent + n + downBytes, 2 + downFrames, nil
}

// fwdConn returns a cached connection to the next hop, dialing on first use.
func (w *Worker) fwdConn(addr string) (net.Conn, error) {
	w.mu.Lock()
	conn, ok := w.fwd[addr]
	w.mu.Unlock()
	if ok {
		return conn, nil
	}
	conn, err := net.DialTimeout("tcp", addr, time.Duration(w.cfg.DialTimeoutSec*float64(time.Second)))
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	w.fwd[addr] = conn
	w.mu.Unlock()
	return conn, nil
}

// dropFwd discards a broken forward connection so the next ring re-dials.
func (w *Worker) dropFwd(addr string) {
	w.mu.Lock()
	if c, ok := w.fwd[addr]; ok {
		c.Close()
		delete(w.fwd, addr)
	}
	w.mu.Unlock()
}
