// Package transport is the wire data plane of the cluster: a TCP
// implementation of dist.Transport that moves length-prefixed, CRC32C-checked
// block frames between the coordinator and dmacworker processes, plus the
// worker side serving them. The cost model stays in the dist package — this
// package only moves bytes and measures them.
//
// Framing: every message is one frame,
//
//	u32 length | u8 type | payload
//
// where length covers the type byte and payload. Blocks travel in their mio
// binary encoding with the sender's CRC32C ahead of them; the receiver
// recomputes the checksum before accepting and answers badCRC to request a
// retransmit, so every block hand-off is integrity-checked on the wire
// exactly as the model's verifyTransfer checks it in the simulation.
//
// Broadcasts are rings: the coordinator sends each block once to the first
// hop and every hop forwards to the next, reporting the bytes it relayed in
// its ack, so the coordinator's Wire total covers the whole ring without any
// single link carrying the full fan-out.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame types.
const (
	// fHello introduces the coordinator to a worker (payload: u32 worker
	// index); fHelloOK acknowledges.
	fHello = byte(iota + 1)
	fHelloOK
	// fPut delivers one block (payload: u32 stage | u32 bi | u32 bj |
	// u32 crc | encoding); fPutOK acknowledges, fPutBadCRC requests a
	// retransmit after a checksum mismatch.
	fPut
	fPutOK
	fPutBadCRC
	// fRing delivers a block set to a broadcast ring hop (payload: u32
	// stage | u16 nhops | hops | u32 nblocks | blocks); the hop stores the
	// blocks, forwards the frame minus itself to the next hop, and answers
	// fRingOK (payload: u64 relayed bytes | u64 relayed frames) covering
	// everything downstream.
	fRing
	fRingOK
	// fCollect fetches a worker's 8-byte aggregate for a stage (payload:
	// u32 stage); fCollectOK carries the aggregate.
	fCollect
	fCollectOK
	// fPing/fPong is the heartbeat.
	fPing
	fPong
)

// maxFrame bounds a frame's length field; anything larger is a corrupt or
// hostile stream and aborts the connection.
const maxFrame = 1 << 30

// writeFrame writes one frame and returns the bytes put on the wire
// (header + type + payload).
func writeFrame(w io.Writer, typ byte, payload []byte) (int64, error) {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return 0, err
		}
	}
	return int64(5 + len(payload)), nil
}

// readFrame reads one frame and returns its type, payload, and size on the
// wire.
func readFrame(r io.Reader) (byte, []byte, int64, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > maxFrame {
		return 0, nil, 0, fmt.Errorf("transport: frame length %d out of range", n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, err
	}
	return hdr[4], payload, int64(5 + len(payload)), nil
}

// putPayload encodes an fPut payload.
func putPayload(stage, bi, bj int, crc uint32, enc []byte) []byte {
	p := make([]byte, 16+len(enc))
	binary.LittleEndian.PutUint32(p[0:4], uint32(stage))
	binary.LittleEndian.PutUint32(p[4:8], uint32(bi))
	binary.LittleEndian.PutUint32(p[8:12], uint32(bj))
	binary.LittleEndian.PutUint32(p[12:16], crc)
	copy(p[16:], enc)
	return p
}

// parsePut decodes an fPut payload.
func parsePut(p []byte) (stage, bi, bj int, crc uint32, enc []byte, err error) {
	if len(p) < 16 {
		return 0, 0, 0, 0, nil, fmt.Errorf("transport: put frame too short (%d bytes)", len(p))
	}
	return int(binary.LittleEndian.Uint32(p[0:4])),
		int(binary.LittleEndian.Uint32(p[4:8])),
		int(binary.LittleEndian.Uint32(p[8:12])),
		binary.LittleEndian.Uint32(p[12:16]),
		p[16:], nil
}

// ringBlock is one block of a ring frame in its wire form.
type ringBlock struct {
	bi, bj int
	crc    uint32
	enc    []byte
}

// ringPayload encodes an fRing payload: the remaining hop addresses and the
// block set.
func ringPayload(stage int, hops []string, blocks []ringBlock) []byte {
	n := 4 + 2
	for _, h := range hops {
		n += 2 + len(h)
	}
	n += 4
	for _, b := range blocks {
		n += 16 + len(b.enc)
	}
	p := make([]byte, 0, n)
	var u4 [4]byte
	var u2 [2]byte
	binary.LittleEndian.PutUint32(u4[:], uint32(stage))
	p = append(p, u4[:]...)
	binary.LittleEndian.PutUint16(u2[:], uint16(len(hops)))
	p = append(p, u2[:]...)
	for _, h := range hops {
		binary.LittleEndian.PutUint16(u2[:], uint16(len(h)))
		p = append(p, u2[:]...)
		p = append(p, h...)
	}
	binary.LittleEndian.PutUint32(u4[:], uint32(len(blocks)))
	p = append(p, u4[:]...)
	for _, b := range blocks {
		binary.LittleEndian.PutUint32(u4[:], uint32(b.bi))
		p = append(p, u4[:]...)
		binary.LittleEndian.PutUint32(u4[:], uint32(b.bj))
		p = append(p, u4[:]...)
		binary.LittleEndian.PutUint32(u4[:], b.crc)
		p = append(p, u4[:]...)
		binary.LittleEndian.PutUint32(u4[:], uint32(len(b.enc)))
		p = append(p, u4[:]...)
		p = append(p, b.enc...)
	}
	return p
}

// parseRing decodes an fRing payload.
func parseRing(p []byte) (stage int, hops []string, blocks []ringBlock, err error) {
	bad := func() (int, []string, []ringBlock, error) {
		return 0, nil, nil, fmt.Errorf("transport: malformed ring frame")
	}
	if len(p) < 6 {
		return bad()
	}
	stage = int(binary.LittleEndian.Uint32(p[0:4]))
	nh := int(binary.LittleEndian.Uint16(p[4:6]))
	off := 6
	for i := 0; i < nh; i++ {
		if off+2 > len(p) {
			return bad()
		}
		l := int(binary.LittleEndian.Uint16(p[off : off+2]))
		off += 2
		if off+l > len(p) {
			return bad()
		}
		hops = append(hops, string(p[off:off+l]))
		off += l
	}
	if off+4 > len(p) {
		return bad()
	}
	nb := int(binary.LittleEndian.Uint32(p[off : off+4]))
	off += 4
	for i := 0; i < nb; i++ {
		if off+16 > len(p) {
			return bad()
		}
		b := ringBlock{
			bi:  int(binary.LittleEndian.Uint32(p[off : off+4])),
			bj:  int(binary.LittleEndian.Uint32(p[off+4 : off+8])),
			crc: binary.LittleEndian.Uint32(p[off+8 : off+12]),
		}
		l := int(binary.LittleEndian.Uint32(p[off+12 : off+16]))
		off += 16
		if off+l > len(p) {
			return bad()
		}
		b.enc = p[off : off+l]
		off += l
		blocks = append(blocks, b)
	}
	return stage, hops, blocks, nil
}

// u32Payload encodes a single u32 (fHello worker index, fCollect stage).
func u32Payload(v int) []byte {
	var p [4]byte
	binary.LittleEndian.PutUint32(p[:], uint32(v))
	return p[:]
}

// ringOKPayload encodes an fRingOK payload.
func ringOKPayload(bytes, frames int64) []byte {
	var p [16]byte
	binary.LittleEndian.PutUint64(p[0:8], uint64(bytes))
	binary.LittleEndian.PutUint64(p[8:16], uint64(frames))
	return p[:]
}

// parseRingOK decodes an fRingOK payload.
func parseRingOK(p []byte) (bytes, frames int64, err error) {
	if len(p) != 16 {
		return 0, 0, fmt.Errorf("transport: malformed ring ack (%d bytes)", len(p))
	}
	return int64(binary.LittleEndian.Uint64(p[0:8])), int64(binary.LittleEndian.Uint64(p[8:16])), nil
}
