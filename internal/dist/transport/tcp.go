package transport

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dmac/internal/dist"
	"dmac/internal/mio"
	"dmac/internal/obs"
	"dmac/internal/retry"
)

// Config tunes the coordinator side of the TCP transport.
type Config struct {
	// Addrs are the worker dial addresses; index in this slice is the
	// cluster worker index.
	Addrs []string
	// DialTimeoutSec bounds one dial attempt (default 2 s). Dials retry
	// under a jittered backoff before the peer is reported down.
	DialTimeoutSec float64
	// IOTimeoutSec bounds each frame write and reply read (default 10 s); a
	// nearer context deadline tightens it.
	IOTimeoutSec float64
	// HeartbeatIntervalSec is the ping period per peer (default 1 s).
	HeartbeatIntervalSec float64
	// HeartbeatMisses is how many consecutive unanswered pings mark a peer
	// dead (default 3). A peer is only declared dead after it has been
	// successfully contacted once, so a slow-starting worker is waited for,
	// not buried.
	HeartbeatMisses int
}

func (c Config) withDefaults() Config {
	if c.DialTimeoutSec <= 0 {
		c.DialTimeoutSec = 2
	}
	if c.IOTimeoutSec <= 0 {
		c.IOTimeoutSec = 10
	}
	if c.HeartbeatIntervalSec <= 0 {
		c.HeartbeatIntervalSec = 1
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	return c
}

// crcRetries is how many times a block frame is retransmitted after the
// receiver answers badCRC before the transfer is abandoned.
const crcRetries = 3

// peer is the coordinator's view of one worker: its operation connection
// (frames serialized under mu), and the liveness verdict maintained by the
// heartbeat loop.
type peer struct {
	index int
	addr  string

	mu   sync.Mutex // serializes frames on conn and guards conn itself
	conn net.Conn

	contacted atomic.Bool // ever successfully contacted (gates heartbeat death)
	dead      atomic.Bool
	deadErr   atomic.Value // error
}

// down marks the peer dead with its root cause.
func (p *peer) down(err error) {
	p.deadErr.Store(err)
	p.dead.Store(true)
}

// downErr returns the stored death cause.
func (p *peer) downErr() error {
	if e, ok := p.deadErr.Load().(error); ok {
		return e
	}
	return fmt.Errorf("transport: peer %d down", p.index)
}

// TCP is the wire implementation of dist.Transport: blocks travel to worker
// processes as CRC32C-checked frames over per-peer TCP connections, dials
// retry under jittered backoff, every frame I/O carries a deadline, and a
// heartbeat loop per peer turns an unresponsive worker into *dist.PeerDown.
type TCP struct {
	cfg   Config
	peers []*peer
	done  chan struct{}
	once  sync.Once

	obsMu   sync.Mutex
	metrics *obs.Registry
}

// NewTCP creates the transport and starts one heartbeat loop per worker.
func NewTCP(cfg Config) *TCP {
	cfg = cfg.withDefaults()
	t := &TCP{cfg: cfg, done: make(chan struct{})}
	for i, a := range cfg.Addrs {
		t.peers = append(t.peers, &peer{index: i, addr: a})
	}
	for _, p := range t.peers {
		go t.heartbeat(p)
	}
	return t
}

func (t *TCP) Name() string { return "tcp" }

// SetObserver attaches the cluster's metric registry (the cluster forwards
// its observer here when the transport is installed).
func (t *TCP) SetObserver(_ *obs.Tracer, reg *obs.Registry) {
	t.obsMu.Lock()
	t.metrics = reg
	t.obsMu.Unlock()
}

// count bumps a transport counter if a registry is attached.
func (t *TCP) count(name string, n int64) {
	t.obsMu.Lock()
	reg := t.metrics
	t.obsMu.Unlock()
	if reg != nil && n > 0 {
		reg.Counter(name).Add(n)
	}
}

// Close stops the heartbeats and drops all connections.
func (t *TCP) Close() error {
	t.once.Do(func() { close(t.done) })
	for _, p := range t.peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
	return nil
}

// deadline is the per-frame I/O deadline: IOTimeout from now, tightened by
// the context's own deadline when that is nearer.
func (t *TCP) deadline(ctx context.Context) time.Time {
	d := time.Now().Add(time.Duration(t.cfg.IOTimeoutSec * float64(time.Second)))
	if cd, ok := ctx.Deadline(); ok && cd.Before(d) {
		d = cd
	}
	return d
}

// dialPolicy is the jittered dial backoff; the seed is the peer index so
// peers retrying against a busy endpoint spread out deterministically.
func dialPolicy(worker int) retry.Policy {
	return retry.Policy{BaseSec: 0.05, CapSec: 0.5, Jitter: 0.2, MaxAttempts: 4, Seed: int64(worker)}
}

// connLocked returns the peer's operation connection, dialing (with retry and
// a hello exchange announcing the worker's index) on first use. Wire bytes of
// the hello are added to w. Caller holds p.mu.
func (t *TCP) connLocked(ctx context.Context, p *peer, w *dist.Wire) (net.Conn, error) {
	if p.dead.Load() {
		return nil, p.downErr()
	}
	if p.conn != nil {
		return p.conn, nil
	}
	attempts := 0
	err := retry.Do(ctx, dialPolicy(p.index), func(ctx context.Context) error {
		attempts++
		conn, err := net.DialTimeout("tcp", p.addr, time.Duration(t.cfg.DialTimeoutSec*float64(time.Second)))
		if err != nil {
			return err
		}
		conn.SetDeadline(t.deadline(ctx))
		sent, err := writeFrame(conn, fHello, u32Payload(p.index))
		if err != nil {
			conn.Close()
			return err
		}
		typ, _, got, err := readFrame(conn)
		if err != nil || typ != fHelloOK {
			conn.Close()
			if err == nil {
				err = fmt.Errorf("transport: hello answered with frame type %d", typ)
			}
			return err
		}
		w.Bytes += sent + got
		w.Frames += 2
		p.conn = conn
		p.contacted.Store(true)
		return nil
	})
	t.count("net.dial.retries", int64(attempts-1))
	if err != nil {
		return nil, err
	}
	return p.conn, nil
}

// dropLocked discards the peer's broken connection. Caller holds p.mu.
func (p *peer) dropLocked() {
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
}

// peerDown wraps err as the typed unreachable-peer error.
func peerDown(p *peer, err error) error {
	return &dist.PeerDown{Worker: p.index, Addr: p.addr, Err: err}
}

// Scatter delivers each transfer's block to its destination worker as a PUT
// frame, retransmitting on a badCRC answer.
func (t *TCP) Scatter(ctx context.Context, op string, stage int, xfers []dist.BlockXfer) (dist.Wire, error) {
	var w dist.Wire
	byDest := make(map[int][]dist.BlockXfer)
	for _, x := range xfers {
		byDest[x.To] = append(byDest[x.To], x)
	}
	dests := make([]int, 0, len(byDest))
	for d := range byDest {
		dests = append(dests, d)
	}
	sort.Ints(dests)
	for _, d := range dests {
		if d < 0 || d >= len(t.peers) {
			return w, fmt.Errorf("transport: scatter to unknown worker %d", d)
		}
		if err := t.putAll(ctx, t.peers[d], stage, byDest[d], &w); err != nil {
			return w, err
		}
	}
	return w, nil
}

// putAll sends one destination's blocks over its connection.
func (t *TCP) putAll(ctx context.Context, p *peer, stage int, xfers []dist.BlockXfer, w *dist.Wire) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	conn, err := t.connLocked(ctx, p, w)
	if err != nil {
		return peerDown(p, err)
	}
	for _, x := range xfers {
		if err := ctx.Err(); err != nil {
			return err
		}
		enc := mio.EncodeBlock(x.Block)
		crc := mio.ChecksumBytes(enc)
		payload := putPayload(stage, x.Bi, x.Bj, crc, enc)
		accepted := false
		for try := 0; try <= crcRetries; try++ {
			conn.SetDeadline(t.deadline(ctx))
			sent, err := writeFrame(conn, fPut, payload)
			if err != nil {
				p.dropLocked()
				return peerDown(p, err)
			}
			typ, _, got, err := readFrame(conn)
			if err != nil {
				p.dropLocked()
				return peerDown(p, err)
			}
			w.Bytes += sent + got
			w.Frames += 2
			if typ == fPutOK {
				accepted = true
				break
			}
			if typ != fPutBadCRC {
				p.dropLocked()
				return peerDown(p, fmt.Errorf("transport: put answered with frame type %d", typ))
			}
			// Damaged in transit; the same payload goes again and the
			// retransmitted bytes are honestly part of the wire total.
			t.count("net.crc.retransmits", 1)
		}
		if !accepted {
			p.dropLocked()
			return peerDown(p, fmt.Errorf("transport: block (%d,%d) rejected %d times by CRC", x.Bi, x.Bj, crcRetries+1))
		}
	}
	return nil
}

// Ring replicates the blocks onto every hop by ring forwarding: one RING
// frame to the first hop carries the block set and the remaining hop
// addresses; each hop stores, forwards, and reports the bytes relayed
// downstream in its ack, so the returned Wire covers the whole ring.
func (t *TCP) Ring(ctx context.Context, op string, stage int, blocks []dist.BlockXfer, hops []int) (dist.Wire, error) {
	var w dist.Wire
	if len(hops) == 0 || len(blocks) == 0 {
		return w, nil
	}
	rbs := make([]ringBlock, 0, len(blocks))
	for _, x := range blocks {
		enc := mio.EncodeBlock(x.Block)
		rbs = append(rbs, ringBlock{bi: x.Bi, bj: x.Bj, crc: mio.ChecksumBytes(enc), enc: enc})
	}
	rest := make([]string, 0, len(hops)-1)
	for _, h := range hops[1:] {
		if h < 0 || h >= len(t.peers) {
			return w, fmt.Errorf("transport: ring through unknown worker %d", h)
		}
		rest = append(rest, t.peers[h].addr)
	}
	if first := hops[0]; first < 0 || first >= len(t.peers) {
		return w, fmt.Errorf("transport: ring through unknown worker %d", first)
	}
	p := t.peers[hops[0]]

	// The locked round-trip to the first hop. On an I/O failure the cause is
	// returned with ringBroke=true and the lock is released before blameRing
	// probes the hops — blameRing pings through the same peer mutexes, so
	// blaming under the lock would self-deadlock.
	ringBroke := false
	err := func() error {
		p.mu.Lock()
		defer p.mu.Unlock()
		conn, err := t.connLocked(ctx, p, &w)
		if err != nil {
			return peerDown(p, err)
		}
		// The whole ring must finish before the first hop acks; give the
		// round-trip one I/O budget per hop.
		ringDeadline := time.Now().Add(time.Duration(float64(len(hops)) * t.cfg.IOTimeoutSec * float64(time.Second)))
		if cd, ok := ctx.Deadline(); ok && cd.Before(ringDeadline) {
			ringDeadline = cd
		}
		conn.SetDeadline(ringDeadline)
		sent, err := writeFrame(conn, fRing, ringPayload(stage, rest, rbs))
		if err != nil {
			p.dropLocked()
			ringBroke = true
			return err
		}
		typ, payload, got, err := readFrame(conn)
		if err != nil {
			p.dropLocked()
			ringBroke = true
			return err
		}
		if typ != fRingOK {
			p.dropLocked()
			return peerDown(p, fmt.Errorf("transport: ring answered with frame type %d", typ))
		}
		downBytes, downFrames, err := parseRingOK(payload)
		if err != nil {
			p.dropLocked()
			return peerDown(p, err)
		}
		w.Bytes += sent + got + downBytes
		w.Frames += 2 + downFrames
		return nil
	}()
	if ringBroke {
		return w, t.blameRing(ctx, hops, err)
	}
	return w, err
}

// blameRing identifies the broken hop of a failed ring: a forwarding failure
// anywhere downstream surfaces as an error on the first hop's connection, so
// each hop is probed with a ping and the first unresponsive one is the peer
// reported down. If every hop answers, the first hop carries the blame.
func (t *TCP) blameRing(ctx context.Context, hops []int, cause error) error {
	for _, h := range hops {
		p := t.peers[h]
		if p.dead.Load() {
			return peerDown(p, p.downErr())
		}
		if err := t.ping(ctx, p); err != nil {
			p.mu.Lock()
			p.dropLocked()
			p.mu.Unlock()
			return peerDown(p, fmt.Errorf("ring broke at hop %d: %w (ring error: %v)", h, err, cause))
		}
	}
	return peerDown(t.peers[hops[0]], cause)
}

// ping does one PING round-trip on the peer's operation connection.
func (t *TCP) ping(ctx context.Context, p *peer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var scratch dist.Wire
	conn, err := t.connLocked(ctx, p, &scratch)
	if err != nil {
		return err
	}
	conn.SetDeadline(t.deadline(ctx))
	if _, err := writeFrame(conn, fPing, nil); err != nil {
		p.dropLocked()
		return err
	}
	typ, _, _, err := readFrame(conn)
	if err != nil {
		p.dropLocked()
		return err
	}
	if typ != fPong {
		p.dropLocked()
		return fmt.Errorf("transport: ping answered with frame type %d", typ)
	}
	return nil
}

// Collect fetches each worker's 8-byte stage aggregate.
func (t *TCP) Collect(ctx context.Context, stage int, workers []int) (dist.Wire, error) {
	var w dist.Wire
	for _, wk := range workers {
		if wk < 0 || wk >= len(t.peers) {
			return w, fmt.Errorf("transport: collect from unknown worker %d", wk)
		}
		p := t.peers[wk]
		if err := func() error {
			p.mu.Lock()
			defer p.mu.Unlock()
			conn, err := t.connLocked(ctx, p, &w)
			if err != nil {
				return peerDown(p, err)
			}
			conn.SetDeadline(t.deadline(ctx))
			sent, err := writeFrame(conn, fCollect, u32Payload(stage))
			if err != nil {
				p.dropLocked()
				return peerDown(p, err)
			}
			typ, payload, got, err := readFrame(conn)
			if err != nil {
				p.dropLocked()
				return peerDown(p, err)
			}
			if typ != fCollectOK || len(payload) != 8 {
				p.dropLocked()
				return peerDown(p, fmt.Errorf("transport: collect answered with frame type %d (%d bytes)", typ, len(payload)))
			}
			w.Bytes += sent + got
			w.Frames += 2
			return nil
		}(); err != nil {
			return w, err
		}
	}
	return w, nil
}

// heartbeat is one peer's liveness loop: a PING on a dedicated connection
// every interval. Consecutive misses beyond the configured allowance mark
// the peer dead — but only after it has been contacted successfully at least
// once, so workers still starting up are not buried. Heartbeat traffic rides
// its own connection and is deliberately not part of any collective's Wire
// measurement.
func (t *TCP) heartbeat(p *peer) {
	interval := time.Duration(t.cfg.HeartbeatIntervalSec * float64(time.Second))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	misses := 0
	for {
		select {
		case <-t.done:
			return
		case <-ticker.C:
		}
		if p.dead.Load() {
			return
		}
		ok := func() bool {
			if conn == nil {
				c, err := net.DialTimeout("tcp", p.addr, time.Duration(t.cfg.DialTimeoutSec*float64(time.Second)))
				if err != nil {
					return false
				}
				conn = c
			}
			conn.SetDeadline(time.Now().Add(interval))
			if _, err := writeFrame(conn, fPing, nil); err != nil {
				conn.Close()
				conn = nil
				return false
			}
			typ, _, _, err := readFrame(conn)
			if err != nil || typ != fPong {
				conn.Close()
				conn = nil
				return false
			}
			return true
		}()
		if ok {
			misses = 0
			p.contacted.Store(true)
			continue
		}
		misses++
		t.count("net.heartbeat.misses", 1)
		if p.contacted.Load() && misses >= t.cfg.HeartbeatMisses {
			p.down(fmt.Errorf("transport: %d consecutive heartbeats unanswered by %s", misses, p.addr))
			return
		}
	}
}
