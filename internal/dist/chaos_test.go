package dist_test

import (
	"testing"

	"dmac/internal/bench"
)

// TestChaosSweepBitIdentical is the chaos harness's acceptance gate: every
// registered workload, under every fault plan (scripted kills, seeded random
// kills, scripted and seeded block corruption, and the combined kill+corrupt
// regime), must complete via stage retry, lineage recovery, and checksum
// quarantine, and produce outputs bit-identical to the fault-free run — with
// the recovery work visible in the metrics and every injected corruption
// detected.
func TestChaosSweepBitIdentical(t *testing.T) {
	results, err := bench.RunChaos(bench.ChaosOptions{})
	if err != nil {
		t.Fatalf("chaos sweep: %v", err)
	}
	plans := len(bench.ChaosPlans())
	if plans < 4 {
		t.Fatalf("chaos sweep needs >= 4 fault plans (kills and corruption), have %d", plans)
	}
	wantCells := len(bench.ChaosWorkloads()) * plans
	if len(results) != wantCells {
		t.Fatalf("chaos sweep produced %d cells, want %d", len(results), wantCells)
	}
	retriesPerWorkload := make(map[string]int)
	recoveryPerWorkload := make(map[string]int64)
	injectedPerPlan := make(map[string]int)
	deadPerPlan := make(map[string]int)
	dropsPerPlan := make(map[string]int)
	delaysPerPlan := make(map[string]int)
	for _, r := range results {
		if !r.Match {
			t.Errorf("%s under plan %s diverged from the fault-free run", r.Workload, r.Plan)
		}
		if r.Retries > 0 && r.DeadWorkers == 0 {
			t.Errorf("%s/%s reports %d retries with no dead workers", r.Workload, r.Plan, r.Retries)
		}
		if r.CorruptionsInjected != r.CorruptionsDetected {
			t.Errorf("%s/%s: %d corruptions injected but %d detected — integrity invariant broken",
				r.Workload, r.Plan, r.CorruptionsInjected, r.CorruptionsDetected)
		}
		retriesPerWorkload[r.Workload] += r.Retries
		recoveryPerWorkload[r.Workload] += r.RecoveryBytes
		injectedPerPlan[r.Plan] += r.CorruptionsInjected
		deadPerPlan[r.Plan] += r.DeadWorkers
		dropsPerPlan[r.Plan] += r.NetDrops
		delaysPerPlan[r.Plan] += r.NetDelays
	}
	for wl, retries := range retriesPerWorkload {
		if retries == 0 {
			t.Errorf("workload %s never retried under any fault plan", wl)
		}
		if recoveryPerWorkload[wl] == 0 {
			t.Errorf("workload %s reported no recovery bytes under any fault plan", wl)
		}
	}
	for _, plan := range []string{"corrupt", "kill+corrupt"} {
		if injectedPerPlan[plan] == 0 {
			t.Errorf("plan %s never injected a corruption in any workload", plan)
		}
	}
	// The network plans must actually fire — a partition or drop event aimed
	// at a stage with no collective would otherwise pass as a silent no-op.
	if deadPerPlan["net-partition"] == 0 {
		t.Error("plan net-partition never cut a worker off in any workload")
	}
	if dropsPerPlan["net-drop+delay"] == 0 {
		t.Error("plan net-drop+delay never dropped a collective in any workload")
	}
	if delaysPerPlan["net-drop+delay"] == 0 {
		t.Error("plan net-drop+delay never stalled a collective in any workload")
	}
}

// TestChaosSweepDeterministic runs the sweep twice and requires identical
// accounting: the same plans must kill the same workers, corrupt the same
// blocks and charge the same recovery bytes — the reproducibility the seeded
// fault plans promise.
func TestChaosSweepDeterministic(t *testing.T) {
	a, err := bench.RunChaos(bench.ChaosOptions{})
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	b, err := bench.RunChaos(bench.ChaosOptions{})
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("sweeps differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cell %d differs across sweeps:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}

// TestChaosSweepCorruptOnlyWithCheckpoints is the CI smoke configuration:
// only corruption-bearing plans, every faulted engine checkpointing into a
// hermetic temp dir. Results must stay bit-identical and every corruption
// detected, with checkpoint-aware recovery visible where kills fired.
func TestChaosSweepCorruptOnlyWithCheckpoints(t *testing.T) {
	results, err := bench.RunChaos(bench.ChaosOptions{
		CorruptOnly:   true,
		CheckpointDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("corrupt-only sweep: %v", err)
	}
	if len(results) == 0 {
		t.Fatal("corrupt-only sweep produced no cells")
	}
	var injected, ckptBytes int64
	for _, r := range results {
		if !r.Match {
			t.Errorf("%s/%s diverged from the fault-free run", r.Workload, r.Plan)
		}
		if r.CorruptionsInjected != r.CorruptionsDetected {
			t.Errorf("%s/%s: injected %d != detected %d",
				r.Workload, r.Plan, r.CorruptionsInjected, r.CorruptionsDetected)
		}
		injected += int64(r.CorruptionsInjected)
		ckptBytes += r.CheckpointBytes
	}
	if injected == 0 {
		t.Error("corrupt-only sweep injected no corruption anywhere")
	}
	if ckptBytes == 0 {
		t.Error("checkpointing enabled but no checkpoint bytes written")
	}
}
