package dist_test

import (
	"testing"

	"dmac/internal/bench"
)

// TestChaosSweepBitIdentical is the chaos harness's acceptance gate: every
// registered workload, under every fault plan (two scripted, one seeded
// random), must complete via stage retry and lineage recovery and produce
// outputs bit-identical to the fault-free run — with the recovery work
// visible in the metrics.
func TestChaosSweepBitIdentical(t *testing.T) {
	results, err := bench.RunChaos()
	if err != nil {
		t.Fatalf("chaos sweep: %v", err)
	}
	plans := len(bench.ChaosPlans())
	if plans < 2 {
		t.Fatalf("chaos sweep needs >= 2 fault plans, have %d", plans)
	}
	wantCells := len(bench.ChaosWorkloads()) * plans
	if len(results) != wantCells {
		t.Fatalf("chaos sweep produced %d cells, want %d", len(results), wantCells)
	}
	retriesPerWorkload := make(map[string]int)
	recoveryPerWorkload := make(map[string]int64)
	for _, r := range results {
		if !r.Match {
			t.Errorf("%s under plan %s diverged from the fault-free run", r.Workload, r.Plan)
		}
		if r.Retries > 0 && r.DeadWorkers == 0 {
			t.Errorf("%s/%s reports %d retries with no dead workers", r.Workload, r.Plan, r.Retries)
		}
		retriesPerWorkload[r.Workload] += r.Retries
		recoveryPerWorkload[r.Workload] += r.RecoveryBytes
	}
	for wl, retries := range retriesPerWorkload {
		if retries == 0 {
			t.Errorf("workload %s never retried under any fault plan", wl)
		}
		if recoveryPerWorkload[wl] == 0 {
			t.Errorf("workload %s reported no recovery bytes under any fault plan", wl)
		}
	}
}

// TestChaosSweepDeterministic runs the sweep twice and requires identical
// accounting: the same plans must kill the same workers and charge the same
// recovery bytes — the reproducibility the seeded fault plans promise.
func TestChaosSweepDeterministic(t *testing.T) {
	a, err := bench.RunChaos()
	if err != nil {
		t.Fatalf("first sweep: %v", err)
	}
	b, err := bench.RunChaos()
	if err != nil {
		t.Fatalf("second sweep: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("sweeps differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("cell %d differs across sweeps:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}
