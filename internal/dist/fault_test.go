package dist

import (
	"errors"
	"testing"

	"dmac/internal/dep"
	"dmac/internal/matrix"
)

func chaosCluster(faults FaultPlan) *Cluster {
	return NewCluster(Config{Workers: 4, LocalParallelism: 2, Faults: faults})
}

func TestFaultPlanEmpty(t *testing.T) {
	if !(FaultPlan{}).Empty() {
		t.Error("zero plan should be empty")
	}
	if (FaultPlan{Rate: 0.1}).Empty() {
		t.Error("random plan should not be empty")
	}
	if (FaultPlan{Events: []FaultEvent{{Stage: 1}}}).Empty() {
		t.Error("scripted plan should not be empty")
	}
}

func TestRandomFaultPlanDeterministic(t *testing.T) {
	p := RandomFaultPlan(42, 0.3)
	first := p.eventsAt(3, 0, 8)
	for i := 0; i < 5; i++ {
		again := p.eventsAt(3, 0, 8)
		if len(again) != len(first) {
			t.Fatalf("event count changed across calls: %d vs %d", len(again), len(first))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("event %d changed across calls: %+v vs %+v", j, again[j], first[j])
			}
		}
	}
	other := RandomFaultPlan(43, 0.3).eventsAt(3, 0, 8)
	same := len(other) == len(first)
	if same {
		for j := range other {
			if other[j] != first[j] {
				same = false
				break
			}
		}
	}
	// Different seeds agreeing on every stage-3 victim would make the seed
	// meaningless; eventsAt over 8 workers at 30% should differ.
	if same && len(first) > 0 {
		t.Error("seeds 42 and 43 produced identical kill sets")
	}
}

func TestKillWorkerRefusesLastSurvivor(t *testing.T) {
	c := chaosCluster(FaultPlan{})
	for _, w := range []int{0, 1, 2} {
		if !c.KillWorker(w) {
			t.Fatalf("KillWorker(%d) refused with survivors left", w)
		}
	}
	if c.KillWorker(3) {
		t.Error("KillWorker killed the last survivor")
	}
	if c.KillWorker(1) {
		t.Error("KillWorker killed an already-dead worker")
	}
	if c.KillWorker(-1) || c.KillWorker(4) {
		t.Error("KillWorker accepted an out-of-range worker")
	}
	if got := c.AliveWorkers(); got != 1 {
		t.Errorf("AliveWorkers = %d, want 1", got)
	}
	if got := c.DeadWorkers(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("DeadWorkers = %v, want [0 1 2]", got)
	}
}

func TestOwnerRemapsDeadWorkers(t *testing.T) {
	c := chaosCluster(FaultPlan{})
	g := matrix.NewGrid(8, 8, 2) // 4x4 blocks
	m := NewDistMatrix(g, dep.Row)
	if got := c.Owner(m, 1, 0); got != 1 {
		t.Fatalf("Owner(row 1) = %d before kill, want 1", got)
	}
	c.KillWorker(1)
	got := c.Owner(m, 1, 0)
	if got == 1 {
		t.Error("Owner still places blocks on the dead worker")
	}
	if got < 0 || got >= 4 {
		t.Errorf("Owner = %d out of range", got)
	}
	// Deterministic: repeated calls agree.
	for i := 0; i < 3; i++ {
		if again := c.Owner(m, 1, 0); again != got {
			t.Fatalf("Owner changed across calls: %d vs %d", again, got)
		}
	}
}

func TestWorkerBytes(t *testing.T) {
	c := chaosCluster(FaultPlan{})
	g := matrix.NewGrid(8, 8, 2)
	for bi := 0; bi < 4; bi++ {
		for bj := 0; bj < 4; bj++ {
			g.SetBlock(bi, bj, matrix.NewDense(2, 2))
		}
	}
	row := NewDistMatrix(g, dep.Row)
	var total int64
	for w := 0; w < 4; w++ {
		total += c.WorkerBytes(row, w)
	}
	if total != g.MemBytes() {
		t.Errorf("row WorkerBytes sum %d != grid bytes %d", total, g.MemBytes())
	}
	if per := c.WorkerBytes(row, 2); per != g.MemBytes()/4 {
		t.Errorf("row WorkerBytes(2) = %d, want %d", per, g.MemBytes()/4)
	}
	bc := NewDistMatrix(g, dep.Broadcast)
	if got := c.WorkerBytes(bc, 0); got != 0 {
		t.Errorf("broadcast WorkerBytes = %d, want 0 (replicas survive)", got)
	}
}

func TestNetStatsRecoveryAccounting(t *testing.T) {
	var n NetStats
	n.AddRecovery(2, 100)
	n.AddRetry()
	n.AddStall(0.5)
	s := n.Snapshot()
	if s.Bytes != 100 || s.RecoveryBytes != 100 {
		t.Errorf("bytes=%d recovery=%d, want 100/100", s.Bytes, s.RecoveryBytes)
	}
	if s.CommEvents != 1 {
		t.Errorf("commEvents = %d, want 1 (recovery is one shuffle)", s.CommEvents)
	}
	if s.StageBytes[2] != 100 {
		t.Errorf("stageBytes[2] = %d, want 100", s.StageBytes[2])
	}
	if s.Retries != 1 || s.StallSec != 0.5 {
		t.Errorf("retries=%d stall=%v, want 1/0.5", s.Retries, s.StallSec)
	}
	n.Reset()
	s = n.Snapshot()
	if s.RecoveryBytes != 0 || s.Retries != 0 || s.StallSec != 0 {
		t.Errorf("Reset left recovery state: %+v", s)
	}
}

func TestBeginStageBoundaryKill(t *testing.T) {
	c := chaosCluster(FaultPlan{Events: []FaultEvent{
		{Stage: 1, Worker: 2, Attempt: 0, Kind: FaultKillBoundary},
	}})
	err := c.BeginStage(1, 0)
	var wf *WorkerFailure
	if !errors.As(err, &wf) {
		t.Fatalf("BeginStage = %v, want *WorkerFailure", err)
	}
	if wf.Worker != 2 || wf.Stage != 1 || wf.Attempt != 0 || wf.Kind != FaultKillBoundary {
		t.Errorf("failure = %+v", wf)
	}
	// The engine kills the worker on recovery; the event then stops firing.
	c.KillWorker(2)
	if err := c.BeginStage(1, 0); err != nil {
		t.Errorf("BeginStage after kill = %v, want nil (dead workers skipped)", err)
	}
}

func TestBeginStageTaskKillArmsPending(t *testing.T) {
	c := chaosCluster(FaultPlan{Events: []FaultEvent{
		{Stage: 2, Worker: 1, Attempt: 0, Kind: FaultKillTask},
	}})
	if err := c.BeginStage(2, 0); err != nil {
		t.Fatalf("BeginStage = %v, want nil (task kills surface later)", err)
	}
	f := c.TakeFault()
	if f == nil || f.Worker != 1 || f.Kind != FaultKillTask {
		t.Fatalf("TakeFault = %+v, want worker-1 task kill", f)
	}
	if again := c.TakeFault(); again != nil {
		t.Errorf("TakeFault fired twice: %+v", again)
	}
	// Retries of the same stage do not re-fire an attempt-0 scripted event.
	if err := c.BeginStage(2, 1); err != nil {
		t.Fatalf("BeginStage(attempt 1) = %v", err)
	}
	if f := c.TakeFault(); f != nil {
		t.Errorf("attempt-0 event re-fired on attempt 1: %+v", f)
	}
}

func TestBeginStageDelayChargesStall(t *testing.T) {
	c := chaosCluster(FaultPlan{Events: []FaultEvent{
		{Stage: 1, Worker: 0, Attempt: 0, Kind: FaultDelay, DelaySec: 0.25},
	}})
	before := c.Net().Snapshot().StallSec
	if err := c.BeginStage(1, 0); err != nil {
		t.Fatalf("BeginStage = %v", err)
	}
	if got := c.Net().Snapshot().StallSec - before; got != 0.25 {
		t.Errorf("stall delta = %v, want 0.25", got)
	}
	if f := c.TakeFault(); f != nil {
		t.Errorf("delay armed a kill: %+v", f)
	}
}

func TestBeginStageSparesLastSurvivor(t *testing.T) {
	c := chaosCluster(FaultPlan{Events: []FaultEvent{
		{Stage: 1, Worker: 3, Attempt: 0, Kind: FaultKillBoundary},
	}})
	for _, w := range []int{0, 1, 2} {
		c.KillWorker(w)
	}
	if err := c.BeginStage(1, 0); err != nil {
		t.Errorf("BeginStage = %v, want nil (last survivor spared)", err)
	}
}
