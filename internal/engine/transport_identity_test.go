package engine

import (
	"math"
	"testing"

	"dmac/internal/dist"
	"dmac/internal/workload"
)

// TestEngineChargesPinnedUnderTransport pins a full engine run (PageRank on
// the DMac planner) to the exact NetStats totals the engine produced before
// the Transport interface existed. The in-process transport must be
// charge-invisible: same bytes, same events, same FLOPs, zero measured wire
// traffic, same numeric result.
func TestEngineChargesPinnedUnderTransport(t *testing.T) {
	reg := workload.DefaultRegistry()
	built, err := reg.Build("pagerank", 8, workload.Params{"nodes": 48, "iters": 3})
	if err != nil {
		t.Fatal(err)
	}
	e := New(DMac, dist.Config{Workers: 4, LocalParallelism: 2}, 8)
	for name, g := range built.Inputs {
		if err := e.Bind(name, g); err != nil {
			t.Fatal(err)
		}
	}
	var total Metrics
	for i := 0; i < built.Iterations; i++ {
		m, err := e.Run(built.Program, built.Params)
		if err != nil {
			t.Fatal(err)
		}
		total.Add(m)
	}
	if total.CommBytes != 9216 {
		t.Errorf("CommBytes = %d, want 9216", total.CommBytes)
	}
	if total.CommEvents != 8 || total.Broadcasts != 3 || total.Shuffles != 5 {
		t.Errorf("events = %d (b=%d, s=%d), want 8 (3, 5)", total.CommEvents, total.Broadcasts, total.Shuffles)
	}
	if total.FLOPs != 1320 {
		t.Errorf("FLOPs = %v, want 1320", total.FLOPs)
	}
	if total.WireBytes != 0 || total.WireFrames != 0 {
		t.Errorf("wire = %d bytes / %d frames under in-process transport, want 0 / 0",
			total.WireBytes, total.WireFrames)
	}
	g, ok := e.Grid("rank")
	if !ok {
		t.Fatal("no rank output")
	}
	sum := 0.0
	for j := 0; j < g.Cols(); j++ {
		sum += g.At(0, j)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("rank mass = %v, want 1", sum)
	}
}
