package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"dmac/internal/core"
	"dmac/internal/dep"
	"dmac/internal/dist"
	"dmac/internal/expr"
	"dmac/internal/obs"
	"dmac/internal/retry"
)

// execState is the live state of one plan execution: the value table the
// stages fill in, the stage structure, and everything the checkpoint/restore
// machinery needs to rebuild or replay parts of it.
type execState struct {
	plan *core.Plan
	// sig is the plan signature of this run, stamped into checkpoint
	// manifests so a stale snapshot (different session, different plan) can
	// never be restored into this execution.
	sig        string
	vals       []*dist.DistMatrix
	valueStage []int
	stages     []int
	byStage    map[int][]*core.Op
	params     map[string]float64
}

// execStats is what execute reports beyond success: per-stage wall time and
// the durability counters of the run.
type execStats struct {
	stageWall         map[int]float64
	checkpointBytes   int64
	checkpointSeconds float64
	stagesReplayed    int
}

// execute materializes a validated plan on the cluster stage by stage, then
// folds assignments and scalar outputs back into the session.
//
// Stages are the fault-tolerance unit, exactly as on the paper's Spark
// substrate: every op's stage is >= the stage of each of its input values,
// so running stages in ascending order (keeping the plan's op order within a
// stage) is a valid topological order, and a failed stage can be retried in
// isolation once its inputs are recovered.
// It returns the measured wall-clock seconds of each executed stage (all
// attempts and recovery included) for per-stage metrics attribution, plus the
// run's durability counters.
//
// Between stages the run's context is observed: cancellation or an expired
// deadline aborts cleanly with the context's error (mid-stage, the executor's
// workers observe the same context between block tasks). With a checkpointer
// attached (SetCheckpoint), the policy is consulted after every completed
// stage and selected snapshots of the live values are written to disk.
func (e *Engine) execute(ctx context.Context, plan *core.Plan, sig string, params map[string]float64) (execStats, error) {
	st := &execState{
		plan:    plan,
		sig:     sig,
		vals:    make([]*dist.DistMatrix, len(plan.Values)),
		byStage: make(map[int][]*core.Op),
		params:  params,
	}
	for _, op := range plan.Ops {
		if _, ok := st.byStage[op.Stage]; !ok {
			st.stages = append(st.stages, op.Stage)
		}
		st.byStage[op.Stage] = append(st.byStage[op.Stage], op)
	}
	sort.Ints(st.stages)
	st.valueStage = make([]int, len(plan.Values))
	for i := range st.valueStage {
		st.valueStage[i] = -1
	}
	for _, op := range plan.Ops {
		if op.Output >= 0 {
			st.valueStage[op.Output] = op.Stage
		}
	}
	e.ckpt.beginRun()
	stats := execStats{stageWall: make(map[int]float64, len(st.stages))}
	for _, s := range st.stages {
		if err := ctx.Err(); err != nil {
			return stats, fmt.Errorf("engine: run cancelled before stage %d: %w", s, err)
		}
		span := e.tracer.Start("engine", fmt.Sprintf("stage %d", s), e.tracer.Scope(),
			obs.Int64("stage", int64(s)), obs.Int64("ops", int64(len(st.byStage[s]))))
		prev := e.tracer.SetScope(span)
		netBefore := e.cluster.Net().Snapshot()
		start := time.Now()
		err := e.runStage(ctx, st, s)
		stats.stageWall[s] = time.Since(start).Seconds()
		e.tracer.SetScope(prev)
		e.tracer.End(span)
		if err != nil {
			return stats, err
		}
		if e.metrics != nil {
			e.metrics.HistogramVec("engine.stage.seconds", obs.SecondsBuckets, "stage").
				With(strconv.Itoa(s)).Observe(stats.stageWall[s])
		}
		if e.ckpt != nil {
			e.ckpt.noteStage(e.modelCost(netBefore, e.cluster.Net().Snapshot()))
			if e.ckpt.shouldCheckpoint(estimateLiveBytes(st.vals)) {
				e.writeCheckpoint(st, s)
			}
		}
	}
	if e.ckpt != nil {
		stats.checkpointBytes = e.ckpt.bytes
		stats.checkpointSeconds = e.ckpt.seconds
		stats.stagesReplayed = e.ckpt.replayed
	}
	e.cacheLeafInstances(plan, st.vals)
	return stats, e.commitAssignments(plan, st.vals)
}

// modelCost prices a NetStats delta with the cluster's cost model: modelled
// compute seconds plus modelled network seconds — what re-running the work
// the delta describes would cost.
func (e *Engine) modelCost(before, after dist.Snapshot) float64 {
	cfg := e.cluster.Config()
	threads := float64(cfg.Workers * cfg.LocalParallelism)
	compute := (after.FLOPs - before.FLOPs) * cfg.MaxSlowdown() / (threads * cfg.FlopsPerSecPerThread)
	network := float64(after.Bytes-before.Bytes)/cfg.BandwidthBytesPerSec +
		float64(after.CommEvents-before.CommEvents)*cfg.ShuffleLatencySec
	return compute + network
}

// runStage executes one stage's ops, retrying on injected worker failures
// with capped exponential backoff. Each failed attempt recovers the stage's
// inputs from lineage (session instances and earlier stages' values) before
// the retry; the ops themselves are deterministic functions of their inputs,
// so a retried stage reproduces the exact blocks of a fault-free run. With a
// checkpointer attached, recovery additionally restores the newest valid
// on-disk snapshot and replays only the stages after it (the recovery ladder
// of restoreAndReplay), instead of relying on the full lineage.
func (e *Engine) runStage(ctx context.Context, st *execState, stage int) error {
	cfg := e.cluster.Config()
	ops := st.byStage[stage]
	for attempt := 0; ; attempt++ {
		span := e.tracer.Start("engine", "attempt", e.tracer.Scope(),
			obs.Int64("stage", int64(stage)), obs.Int64("attempt", int64(attempt)))
		prev := e.tracer.SetScope(span)
		err := e.cluster.BeginStage(stage, attempt)
		if err == nil {
			err = e.runOps(ctx, st.plan, stage, ops, st.vals, st.params)
		}
		if err == nil {
			// An armed task kill that no operator of this stage consumed
			// still fails the attempt.
			if f := e.cluster.TakeFault(); f != nil {
				err = f
			}
		}
		e.tracer.SetScope(prev)
		if err == nil {
			e.tracer.End(span)
			return nil
		}
		e.tracer.End(span, obs.String("error", err.Error()))
		var wf *dist.WorkerFailure
		if !errors.As(err, &wf) || attempt >= cfg.MaxStageRetries {
			return err
		}
		rec := e.tracer.Start("engine", "recover", e.tracer.Scope(),
			obs.Int64("stage", int64(stage)), obs.Int64("worker", int64(wf.Worker)))
		prev = e.tracer.SetScope(rec)
		e.recoverStage(st, stage, wf)
		var rerr error
		if e.ckpt != nil {
			_, rerr = e.restoreAndReplay(ctx, st, stage)
		}
		e.tracer.SetScope(prev)
		e.tracer.End(rec)
		if rerr != nil {
			return rerr
		}
		backoff := retry.Policy{BaseSec: cfg.RetryBackoffBaseSec, CapSec: cfg.RetryBackoffCapSec}.Backoff(attempt)
		e.cluster.Net().AddStall(backoff)
		e.cluster.Net().AddRetry()
		e.metrics.Counter("fault.retries").Inc()
	}
}

// recoverStage performs lineage-based recovery after a worker failure: the
// stage's inputs — values materialized by earlier stages plus the session
// instances its leaf ops read — lose the dead worker's blocks, which must be
// re-fetched from lineage and re-partitioned across survivors. The dead
// worker's share is measured against pre-failure ownership (before the kill
// takes effect), then the worker is removed and the recovery shuffle is
// charged.
func (e *Engine) recoverStage(st *execState, stage int, wf *dist.WorkerFailure) {
	var bytes int64
	seen := make(map[core.ValueID]bool)
	for _, op := range st.byStage[stage] {
		if op.Kind == core.OpLoad || op.Kind == core.OpVar {
			if inst, err := e.leafInstance(op, st.plan); err == nil {
				bytes += e.cluster.WorkerBytes(inst, wf.Worker)
			}
		}
		for _, id := range op.Inputs {
			if id < 0 || seen[id] || st.vals[id] == nil || st.valueStage[id] >= stage {
				continue
			}
			seen[id] = true
			bytes += e.cluster.WorkerBytes(st.vals[id], wf.Worker)
		}
	}
	if e.cluster.KillWorker(wf.Worker) {
		e.cluster.ChargeRecovery(stage, wf.Worker, bytes)
	}
}

// opSpan opens the span of one plan operator: name from the operator kind
// (plus the program node's label where there is one), attributes carrying
// stage, strategy and the dependency types satisfied on its input edges.
func (e *Engine) opSpan(plan *core.Plan, stage int, op *core.Op) obs.SpanID {
	if !e.tracer.Enabled() {
		return 0
	}
	name := op.Kind.String()
	if op.Node != nil {
		name += " " + op.Node.Label()
	}
	attrs := []obs.Attr{
		obs.Int64("stage", int64(stage)),
		obs.String("kind", op.Kind.String()),
	}
	if op.Kind == core.OpCompute {
		attrs = append(attrs, obs.String("strategy", op.Strategy.String()))
		if op.Node != nil && op.Node.Kind == expr.KindMul {
			attrs = append(attrs, obs.String("mul_algo", op.MulAlgo.String()))
		}
	}
	for j, d := range op.InDeps {
		if d != dep.NoDependency {
			attrs = append(attrs, obs.String(fmt.Sprintf("dep_in%d", j), d.String()))
		}
	}
	if op.Output >= 0 {
		attrs = append(attrs, obs.String("out_scheme", plan.Value(op.Output).Scheme.String()))
	}
	return e.tracer.Start("op", name, e.tracer.Scope(), attrs...)
}

// runOps executes one stage's ops in plan order against the shared value
// table, one "op" span and one time-histogram sample per operator.
func (e *Engine) runOps(ctx context.Context, plan *core.Plan, stage int, ops []*core.Op, vals []*dist.DistMatrix, params map[string]float64) error {
	for i, op := range ops {
		var (
			out *dist.DistMatrix
			err error
		)
		span := e.opSpan(plan, stage, op)
		prevScope := e.tracer.SetScope(span)
		opStart := time.Now()
		switch op.Kind {
		case core.OpLoad, core.OpVar:
			out, err = e.leafInstance(op, plan)
		case core.OpPartition:
			out, err = e.cluster.Partition(ctx, vals[op.Inputs[0]], plan.Value(op.Output).Scheme, op.Stage)
		case core.OpBroadcast:
			out, err = e.cluster.Broadcast(ctx, vals[op.Inputs[0]], op.Stage)
		case core.OpTranspose:
			if op.CommBytes > 0 {
				// Baseline transpose job: shuffle-based.
				out, err = e.cluster.ShuffleTranspose(ctx, vals[op.Inputs[0]], op.Stage)
			} else {
				out = e.cluster.Transpose(vals[op.Inputs[0]])
			}
		case core.OpExtract:
			out, err = e.cluster.Extract(vals[op.Inputs[0]], plan.Value(op.Output).Scheme)
		case core.OpCompute:
			out, err = e.compute(ctx, plan, op, vals, params)
		default:
			e.tracer.SetScope(prevScope)
			e.tracer.End(span)
			return fmt.Errorf("engine: stage %d op %d has unexpected kind %v", stage, i, op.Kind)
		}
		e.tracer.SetScope(prevScope)
		if e.metrics != nil {
			e.metrics.Histogram("op."+op.Kind.String()+".seconds", obs.SecondsBuckets).
				Observe(time.Since(opStart).Seconds())
			e.metrics.Counter("op." + op.Kind.String() + ".count").Inc()
		}
		if err != nil {
			e.tracer.End(span, obs.String("error", err.Error()))
			return fmt.Errorf("engine: stage %d op %d (%s): %w", stage, i, op.Kind, err)
		}
		e.tracer.End(span)
		if op.Output >= 0 {
			if out == nil {
				return fmt.Errorf("engine: stage %d op %d produced no value", stage, i)
			}
			vals[op.Output] = out
		}
	}
	return nil
}

// cacheLeafInstances merges the repartitioned instances of input variables
// back into the session, modelling Spark's RDD cache: once DMac has, e.g.,
// the Column scheme of the link matrix, later iterations reference it
// without communication (Section 6.4). Variables reassigned by this program
// are skipped — their data changed, so assignment handles them.
func (e *Engine) cacheLeafInstances(plan *core.Plan, vals []*dist.DistMatrix) {
	assigned := make(map[string]bool)
	for _, a := range plan.Program.Assignments() {
		assigned[a.Name] = true
	}
	for _, op := range plan.Ops {
		if op.Kind != core.OpLoad && op.Kind != core.OpVar {
			continue
		}
		name := op.Node.Name
		if assigned[name] {
			continue
		}
		vs := e.vars[name]
		if vs == nil {
			continue
		}
		for _, v := range plan.Values {
			dm := vals[v.ID]
			if dm == nil || v.Matrix != op.Node.ID || v.Transposed || v.Scheme == dep.SchemeNone {
				continue
			}
			if _, ok := vs.instances[v.Scheme]; !ok {
				vs.instances[v.Scheme] = dm
			}
		}
	}
}

// leafInstance resolves an OpLoad/OpVar to a session instance with the
// scheme the plan expects.
func (e *Engine) leafInstance(op *core.Op, plan *core.Plan) (*dist.DistMatrix, error) {
	name := op.Node.Name
	vs, ok := e.vars[name]
	if !ok {
		return nil, fmt.Errorf("no bound matrix %q", name)
	}
	if vs.rows != op.Node.Rows || vs.cols != op.Node.Cols {
		return nil, fmt.Errorf("%q is %dx%d, program declares %dx%d",
			name, vs.rows, vs.cols, op.Node.Rows, op.Node.Cols)
	}
	scheme := plan.Value(op.Output).Scheme
	inst, ok := vs.instances[scheme]
	if !ok {
		return nil, fmt.Errorf("%q has no cached instance with scheme %s", name, scheme)
	}
	return inst, nil
}

// compute executes an OpCompute with its chosen strategy.
func (e *Engine) compute(ctx context.Context, plan *core.Plan, op *core.Op, vals []*dist.DistMatrix, params map[string]float64) (*dist.DistMatrix, error) {
	n := op.Node
	in := func(i int) *dist.DistMatrix { return vals[op.Inputs[i]] }
	switch n.Kind {
	case expr.KindMul:
		var strat dist.MulStrategy
		switch op.Strategy {
		case core.RMM1:
			strat = dist.RMM1
		case core.RMM2:
			strat = dist.RMM2
		case core.CPMM:
			strat = dist.CPMM
		default:
			return nil, fmt.Errorf("multiplication with strategy %s", op.Strategy)
		}
		outScheme := dep.SchemeNone
		if op.Strategy == core.CPMM {
			outScheme = plan.Value(op.Output).Scheme
		}
		return e.cluster.MultiplyAlgo(ctx, in(0), in(1), strat, op.MulAlgo, outScheme, op.Stage)
	case expr.KindCell:
		return e.cluster.Cellwise(n.BinOp, in(0), in(1))
	case expr.KindScalar:
		c := n.Const
		if n.Param != "" {
			v, ok := params[n.Param]
			if !ok {
				return nil, fmt.Errorf("missing parameter %q", n.Param)
			}
			c = v
		}
		return e.cluster.Scalar(n.ScalarOp, in(0), c)
	case expr.KindUFunc:
		return e.cluster.Apply(n.UFunc, in(0))
	case expr.KindSum:
		v, err := e.cluster.Sum(ctx, in(0), op.Stage)
		if err != nil {
			return nil, err
		}
		e.scalars[op.ScalarName] = v
		return nil, nil
	case expr.KindNorm2:
		v, err := e.cluster.Norm2(ctx, in(0), op.Stage)
		if err != nil {
			return nil, err
		}
		e.scalars[op.ScalarName] = v
		return nil, nil
	case expr.KindValue:
		v, err := e.cluster.Value(ctx, in(0), op.Stage)
		if err != nil {
			return nil, err
		}
		e.scalars[op.ScalarName] = v
		return nil, nil
	default:
		return nil, fmt.Errorf("compute with node kind %v", n.Kind)
	}
}

// commitAssignments folds the program's assignments into the session. Every
// materialized instance of the assigned matrix is kept, so the next program
// execution sees all cached schemes (this is how DMac reuses, e.g., both
// W(r) and W(b) across GNMF iterations).
func (e *Engine) commitAssignments(plan *core.Plan, vals []*dist.DistMatrix) error {
	for _, a := range plan.Program.Assignments() {
		node := a.Ref.Node
		instances := make(map[dep.Scheme]*dist.DistMatrix)
		for _, v := range plan.Values {
			dm := vals[v.ID]
			if v.Matrix != node.ID || dm == nil {
				continue
			}
			if v.Transposed != a.Ref.Transposed {
				// The cached instance is the transpose of what the program
				// assigns; transpose locally (free) to store the assigned
				// orientation.
				dm = e.cluster.Transpose(dm)
			}
			if _, ok := instances[dm.Scheme]; !ok && dm.Scheme != dep.SchemeNone {
				instances[dm.Scheme] = dm
			}
		}
		if len(instances) == 0 {
			// Fall back to the primary value even if hash-partitioned.
			id, ok := plan.NodeValue[node.ID]
			if !ok || vals[id] == nil {
				return fmt.Errorf("engine: assignment %q has no materialized value", a.Name)
			}
			instances[vals[id].Scheme] = vals[id]
		}
		rows, cols := a.Ref.Rows(), a.Ref.Cols()
		e.vars[a.Name] = &varState{rows: rows, cols: cols, instances: instances}
	}
	return nil
}
