package engine

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dmac/internal/dist"
	"dmac/internal/matrix"
)

// ckptStages lists the distinct plan stages a GNMF iteration executes on a
// fresh DMac engine, in ascending order — the stage sequence the checkpoint
// policy and the replay assertions are pinned against.
func ckptStages(t *testing.T) []int {
	t.Helper()
	e := New(DMac, testConfig(), tBS)
	bindGNMF(t, e)
	plan, err := e.Plan(gnmfProgram(0.3))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	var stages []int
	for _, op := range plan.Ops {
		if !seen[op.Stage] {
			seen[op.Stage] = true
			stages = append(stages, op.Stage)
		}
	}
	for i := 1; i < len(stages); i++ {
		if stages[i] < stages[i-1] {
			t.Fatalf("plan op order is not stage-ascending: %v", stages)
		}
	}
	if len(stages) < 3 {
		t.Fatalf("GNMF plan has only %d stages; the checkpoint tests need more", len(stages))
	}
	return stages
}

// runGNMFCheckpointed runs one GNMF iteration with a scripted boundary kill
// at the plan's last stage, checkpointing under the given policy (dir == ""
// disables checkpointing entirely), and returns the run metrics.
func runGNMFCheckpointed(t *testing.T, dir string, policy CheckpointPolicy, faultStage int, tamper func(*checkpointer)) (Metrics, *Engine) {
	t.Helper()
	cfg := testConfig()
	if faultStage > 0 {
		cfg.Faults = dist.FaultPlan{Events: []dist.FaultEvent{
			{Stage: faultStage, Worker: 1, Attempt: 0, Kind: dist.FaultKillBoundary},
		}}
	}
	e := New(DMac, cfg, tBS)
	bindGNMF(t, e)
	if dir != "" {
		if err := e.SetCheckpoint(dir, policy); err != nil {
			t.Fatal(err)
		}
		if tamper != nil {
			e.ckpt.testPreRestore = func() { tamper(e.ckpt) }
		}
	}
	m, err := e.Run(gnmfProgram(0.3), nil)
	if err != nil {
		t.Fatal(err)
	}
	return m, e
}

// wantGNMF returns the fault-free, checkpoint-free result the recovery tests
// compare against bit-for-bit.
func wantGNMF(t *testing.T) (w, h *matrix.Grid) {
	t.Helper()
	_, e := runGNMFCheckpointed(t, "", CheckpointPolicy{}, 0, nil)
	w, _ = e.Grid("W")
	h, _ = e.Grid("H")
	return w, h
}

func checkGNMFResult(t *testing.T, label string, e *Engine, wantW, wantH *matrix.Grid) {
	t.Helper()
	gotW, _ := e.Grid("W")
	gotH, _ := e.Grid("H")
	if !matrix.GridEqual(gotW, wantW, 0) || !matrix.GridEqual(gotH, wantH, 0) {
		t.Errorf("%s: recovered results are not bit-identical to the fault-free run", label)
	}
}

// TestCheckpointReplayCountsPinned is the metrics-pinned recovery test: with
// a checkpoint every 2 stages and a kill at the last stage, recovery replays
// exactly the stages between the newest checkpoint and the failure; with the
// interval too large to ever fire, recovery replays the full lineage (every
// stage before the failure). Both recoveries must be bit-identical to the
// fault-free run.
func TestCheckpointReplayCountsPinned(t *testing.T) {
	stages := ckptStages(t)
	n := len(stages)
	last := stages[n-1]
	wantW, wantH := wantGNMF(t)

	// Interval 2: checkpoints land after the stages at positions 2, 4, ...
	// (1-based) of the stage sequence; the newest one before the failing last
	// stage is at position p = largest multiple of 2 <= n-1, leaving
	// (n-1) - p stages to replay.
	p := (n - 1) / 2 * 2
	wantReplay := (n - 1) - p
	m, e := runGNMFCheckpointed(t, t.TempDir(), CheckpointPolicy{Interval: 2}, last, nil)
	if m.StagesReplayed != wantReplay {
		t.Errorf("interval 2: StagesReplayed = %d, want %d (stages %v, fault at %d)",
			m.StagesReplayed, wantReplay, stages, last)
	}
	if m.CheckpointBytes <= 0 || m.CheckpointSeconds <= 0 {
		t.Errorf("interval 2: CheckpointBytes=%d CheckpointSeconds=%v, want both positive",
			m.CheckpointBytes, m.CheckpointSeconds)
	}
	if m.Retries != 1 {
		t.Errorf("interval 2: Retries = %d, want 1", m.Retries)
	}
	checkGNMFResult(t, "interval 2", e, wantW, wantH)

	// Interval larger than the stage count: checkpointing is enabled but
	// never fires, so recovery degrades to full lineage replay.
	m, e = runGNMFCheckpointed(t, t.TempDir(), CheckpointPolicy{Interval: 1000}, last, nil)
	if m.StagesReplayed != n-1 {
		t.Errorf("no checkpoint: StagesReplayed = %d, want %d (full lineage)", m.StagesReplayed, n-1)
	}
	if m.CheckpointBytes != 0 {
		t.Errorf("no checkpoint: CheckpointBytes = %d, want 0", m.CheckpointBytes)
	}
	if wantReplay >= n-1 {
		t.Errorf("checkpointed replay (%d) should beat full lineage (%d); stage sequence %v too short",
			wantReplay, n-1, stages)
	}
	checkGNMFResult(t, "full lineage", e, wantW, wantH)

	// Without SetCheckpoint the run recovers purely via the existing lineage
	// accounting and reports no replay.
	m, e = runGNMFCheckpointed(t, "", CheckpointPolicy{}, last, nil)
	if m.StagesReplayed != 0 || m.CheckpointBytes != 0 {
		t.Errorf("disabled: StagesReplayed=%d CheckpointBytes=%d, want 0/0", m.StagesReplayed, m.CheckpointBytes)
	}
	checkGNMFResult(t, "disabled", e, wantW, wantH)
}

// TestCostModelCheckpointing exercises the cost-model trigger: with a write
// bandwidth so high that snapshots are modelled as nearly free, every stage
// ends in a checkpoint; with a bandwidth so low that writes dwarf any
// recomputation, none does.
func TestCostModelCheckpointing(t *testing.T) {
	stages := ckptStages(t)
	m, _ := runGNMFCheckpointed(t, t.TempDir(),
		CheckpointPolicy{CostModel: true, WriteBytesPerSec: 1e18}, 0, nil)
	if m.CheckpointBytes <= 0 {
		t.Error("free writes: cost model never checkpointed")
	}
	m, _ = runGNMFCheckpointed(t, t.TempDir(),
		CheckpointPolicy{CostModel: true, WriteBytesPerSec: 1e-6}, 0, nil)
	if m.CheckpointBytes != 0 {
		t.Errorf("prohibitive writes: cost model checkpointed %d bytes, want 0", m.CheckpointBytes)
	}
	_ = stages
}

// Crash-mid-checkpoint: a truncated block file in the newest checkpoint must
// fail verification, and the ladder must fall back to the next older
// checkpoint — with bit-identical results.
func TestRecoveryLadderTruncatedBlockFile(t *testing.T) {
	stages := ckptStages(t)
	n := len(stages)
	last := stages[n-1]
	wantW, wantH := wantGNMF(t)
	// Interval 1: a checkpoint after every stage, so every stage before the
	// failing one is a candidate. Untampered, the newest checkpoint sits at
	// the stage right before the failure and recovery replays nothing;
	// damaging the newest makes the ladder restore the one before it, leaving
	// exactly 1 stage to replay — the pinned count that proves the skip.
	tamper := func(c *checkpointer) {
		if len(c.written) == 0 {
			t.Fatal("no checkpoints written before the fault")
		}
		newest := c.written[len(c.written)-1]
		ents, err := os.ReadDir(newest.dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range ents {
			if filepath.Ext(ent.Name()) != ".dmgr" {
				continue
			}
			path := filepath.Join(newest.dir, ent.Name())
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		t.Fatal("newest checkpoint holds no block files")
	}
	m, e := runGNMFCheckpointed(t, t.TempDir(), CheckpointPolicy{Interval: 1}, last, tamper)
	if m.StagesReplayed != 1 {
		t.Errorf("StagesReplayed = %d, want 1 (newest checkpoint skipped)", m.StagesReplayed)
	}
	checkGNMFResult(t, "truncated block", e, wantW, wantH)
}

// Crash-mid-checkpoint: a torn manifest (the crash happened before the
// atomic rename completed) must invalidate the checkpoint the same way.
func TestRecoveryLadderTornManifest(t *testing.T) {
	stages := ckptStages(t)
	last := stages[len(stages)-1]
	wantW, wantH := wantGNMF(t)
	tamper := func(c *checkpointer) {
		newest := c.written[len(c.written)-1]
		path := filepath.Join(newest.dir, "manifest.json")
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Half a JSON document, as a crash mid-write (pre-rename) leaves.
		if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, e := runGNMFCheckpointed(t, t.TempDir(), CheckpointPolicy{Interval: 1}, last, tamper)
	if m.StagesReplayed != 1 {
		t.Errorf("StagesReplayed = %d, want 1 (torn manifest skipped)", m.StagesReplayed)
	}
	checkGNMFResult(t, "torn manifest", e, wantW, wantH)
}

// The whole checkpoint directory disappearing (operator cleanup, disk
// replacement) must degrade recovery to full lineage replay, not fail it.
func TestRecoveryLadderDirectoryDeleted(t *testing.T) {
	stages := ckptStages(t)
	n := len(stages)
	last := stages[n-1]
	wantW, wantH := wantGNMF(t)
	dir := t.TempDir()
	tamper := func(c *checkpointer) {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
	}
	m, e := runGNMFCheckpointed(t, dir, CheckpointPolicy{Interval: 1}, last, tamper)
	if m.StagesReplayed != n-1 {
		t.Errorf("StagesReplayed = %d, want %d (full lineage after dir loss)", m.StagesReplayed, n-1)
	}
	checkGNMFResult(t, "dir deleted", e, wantW, wantH)
}

// Deleting the checkpoint directory between runs must not confuse later
// runs: the next Run recreates its own checkpoints and recovers normally.
func TestCheckpointDirDeletedBetweenRuns(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = dist.FaultPlan{Events: []dist.FaultEvent{
		{Stage: 2, Worker: 1, Attempt: 0, Kind: dist.FaultKillBoundary},
	}}
	dir := filepath.Join(t.TempDir(), "ckpts")
	e := New(DMac, cfg, tBS)
	bindGNMF(t, e)
	if err := e.SetCheckpoint(dir, CheckpointPolicy{Interval: 1}); err != nil {
		t.Fatal(err)
	}
	prog := gnmfProgram(0.3)
	if _, err := e.Run(prog, nil); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(prog, nil); err != nil {
		t.Fatalf("run after checkpoint dir deletion: %v", err)
	}

	ref := New(DMac, dist.Config{Workers: 4, LocalParallelism: 2, Faults: cfg.Faults}, tBS)
	bindGNMF(t, ref)
	for i := 0; i < 2; i++ {
		if _, err := ref.Run(prog, nil); err != nil {
			t.Fatal(err)
		}
	}
	checkGNMFResult(t, "dir deleted between runs", e, mustGrid(t, ref, "W"), mustGrid(t, ref, "H"))
}

func mustGrid(t *testing.T, e *Engine, name string) *matrix.Grid {
	t.Helper()
	g, ok := e.Grid(name)
	if !ok {
		t.Fatalf("%s not materialized", name)
	}
	return g
}

// SetCheckpoint rejects malformed policies and unusable directories.
func TestSetCheckpointValidation(t *testing.T) {
	e := New(DMac, testConfig(), tBS)
	if err := e.SetCheckpoint(t.TempDir(), CheckpointPolicy{Interval: -1}); err == nil {
		t.Error("negative interval accepted")
	}
	if err := e.SetCheckpoint(t.TempDir(), CheckpointPolicy{WriteBytesPerSec: -1}); err == nil {
		t.Error("negative write bandwidth accepted")
	}
	if err := e.SetCheckpoint("", CheckpointPolicy{}); err != nil {
		t.Errorf("disabling checkpoints: %v", err)
	}
	if e.ckpt != nil {
		t.Error("empty dir did not detach the checkpointer")
	}
}

// A cancelled context aborts RunCtx with the context's error instead of
// running the program.
func TestRunCtxCancelled(t *testing.T) {
	e := New(DMac, testConfig(), tBS)
	bindGNMF(t, e)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunCtx(ctx, gnmfProgram(0.3), nil); !errors.Is(err, context.Canceled) {
		t.Errorf("RunCtx under cancelled context = %v, want context.Canceled", err)
	}
	// The engine recovers once the context is live again.
	if _, err := e.RunCtx(context.Background(), gnmfProgram(0.3), nil); err != nil {
		t.Errorf("RunCtx after cancellation: %v", err)
	}
}
