package engine

import (
	"fmt"
	"math"
	"time"

	"dmac/internal/core"
	"dmac/internal/dep"
	"dmac/internal/dist"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/sched"
)

// localMulStrategy is the aggregation strategy of the local engine; In-Place
// is DMac's default (Section 5.3).
const localMulStrategy = sched.InPlace

// runLocal interprets a program on a single machine: the in-memory reference
// the paper compares against ("R" in Figure 6a). There is no planning, no
// partition schemes and no communication — only local parallel block
// computation on one worker.
func (e *Engine) runLocal(p *expr.Program, params map[string]float64) (Metrics, error) {
	if err := p.Validate(); err != nil {
		return Metrics{}, err
	}
	before := e.cluster.Net().Snapshot()
	start := time.Now()
	exec := e.cluster.Executor()
	net := e.cluster.Net()
	results := make(map[dep.MatrixID]*matrix.Grid, len(p.Nodes()))

	operand := func(r expr.Ref) *matrix.Grid {
		g := results[r.Node.ID]
		if r.Transposed {
			net.AddFLOPs(float64(g.NNZ()))
			return exec.Transpose(g)
		}
		return g
	}

	// fusedOperand resolves a multiplication input without materializing a
	// transposed grid: the trans flag is pushed into the multiply kernels,
	// which read the operand by stride. The modelled transpose FLOPs stay
	// charged per use, so accounting matches the materializing path exactly.
	fusedOperand := func(r expr.Ref) *matrix.Grid {
		g := results[r.Node.ID]
		if r.Transposed {
			net.AddFLOPs(float64(g.NNZ()))
		}
		return g
	}

	for _, idx := range p.OperatorOrder() {
		n := p.Nodes()[idx]
		switch n.Kind {
		case expr.KindLoad, expr.KindVar:
			vs, ok := e.vars[n.Name]
			if !ok {
				return Metrics{}, fmt.Errorf("engine: no bound matrix %q", n.Name)
			}
			inst := vs.instances[dep.SchemeNone]
			if inst == nil {
				for _, m := range vs.instances {
					inst = m
					break
				}
			}
			if inst == nil {
				return Metrics{}, fmt.Errorf("engine: %q has no data", n.Name)
			}
			if vs.rows != n.Rows || vs.cols != n.Cols {
				return Metrics{}, fmt.Errorf("engine: %q is %dx%d, program declares %dx%d",
					n.Name, vs.rows, vs.cols, n.Rows, n.Cols)
			}
			results[n.ID] = e.cluster.MaterializedGrid(inst)
		case expr.KindMul:
			ra, rb := n.Inputs[0], n.Inputs[1]
			a, b := fusedOperand(ra), fusedOperand(rb)
			net.AddFLOPs(localMulFLOPs(a, b, ra.Transposed))
			// The local engine makes the same per-operator algorithm pick the
			// distributed planner records on its plan ops.
			algo := core.ChooseMulAlgo(n.Rows, ra.Cols(), n.Cols,
				ra.Node.Sparsity, rb.Node.Sparsity, e.blockSize, matrix.KernelWorkers())
			g, err := exec.MulTransAlgo(a, b, ra.Transposed, rb.Transposed, localMulStrategy, algo)
			if err != nil {
				return Metrics{}, err
			}
			results[n.ID] = g
		case expr.KindCell:
			a, b := operand(n.Inputs[0]), operand(n.Inputs[1])
			net.AddFLOPs(float64(a.Rows()) * float64(a.Cols()))
			g, err := exec.Cellwise(n.BinOp, a, b)
			if err != nil {
				return Metrics{}, err
			}
			results[n.ID] = g
		case expr.KindScalar:
			c := n.Const
			if n.Param != "" {
				v, ok := params[n.Param]
				if !ok {
					return Metrics{}, fmt.Errorf("engine: missing parameter %q", n.Param)
				}
				c = v
			}
			a := operand(n.Inputs[0])
			net.AddFLOPs(float64(a.NNZ()))
			results[n.ID] = exec.Scalar(n.ScalarOp, a, c)
		case expr.KindUFunc:
			a := operand(n.Inputs[0])
			net.AddFLOPs(4 * float64(a.Rows()) * float64(a.Cols()))
			results[n.ID] = exec.Apply(n.UFunc, a)
		case expr.KindSum:
			a := operand(n.Inputs[0])
			net.AddFLOPs(float64(a.NNZ()))
			e.scalars[scalarNameFor(p, n)] = matrix.SumGrid(a)
		case expr.KindNorm2:
			a := operand(n.Inputs[0])
			net.AddFLOPs(2 * float64(a.NNZ()))
			e.scalars[scalarNameFor(p, n)] = math.Sqrt(matrix.FrobeniusSqGrid(a))
		case expr.KindValue:
			a := operand(n.Inputs[0])
			e.scalars[scalarNameFor(p, n)] = a.At(0, 0)
		default:
			return Metrics{}, fmt.Errorf("engine: unknown node kind %v", n.Kind)
		}
	}
	for _, a := range p.Assignments() {
		g := results[a.Ref.Node.ID]
		if a.Ref.Transposed {
			g = exec.Transpose(g)
		}
		e.vars[a.Name] = &varState{
			rows: a.Ref.Rows(),
			cols: a.Ref.Cols(),
			instances: map[dep.Scheme]*dist.DistMatrix{
				dep.SchemeNone: dist.NewDistMatrix(g, dep.SchemeNone),
			},
		}
	}
	wall := time.Since(start).Seconds()
	after := e.cluster.Net().Snapshot()
	return e.metricsDelta(before, after, wall, 0, execStats{}), nil
}

func scalarNameFor(p *expr.Program, n *expr.Node) string {
	for _, so := range p.ScalarOuts() {
		if so.Node == n {
			return so.Name
		}
	}
	return fmt.Sprintf("m%d", n.ID)
}

// localMulFLOPs estimates the multiply's arithmetic; the inner dimension is
// the logical one, so a fused transposed left operand costs the same as a
// materialized transpose would.
func localMulFLOPs(a, b *matrix.Grid, aT bool) float64 {
	an, bn := float64(a.NNZ()), float64(b.NNZ())
	inner := float64(a.Cols())
	if aT {
		inner = float64(a.Rows())
	}
	if inner == 0 {
		return 0
	}
	return 2 * an * math.Max(bn/inner, 1)
}
