package engine

import (
	"testing"

	"dmac/internal/dep"
	"dmac/internal/dist"
	"dmac/internal/matrix"
)

// TestGridDeterministicInstance is the regression test for Grid's old
// map-iteration nondeterminism: a variable cached under several schemes must
// always resolve to the same instance, in the fixed Row > Col > Broadcast >
// hash preference order.
func TestGridDeterministicInstance(t *testing.T) {
	e := New(DMac, testConfig(), tBS)
	mark := func(v float64) *matrix.Grid {
		g := matrix.NewDenseGrid(2, 2, tBS)
		g.Set(0, 0, v)
		return g
	}
	instances := map[dep.Scheme]*dist.DistMatrix{
		dep.Col:        dist.NewDistMatrix(mark(2), dep.Col),
		dep.SchemeNone: dist.NewDistMatrix(mark(4), dep.SchemeNone),
		dep.Broadcast:  dist.NewDistMatrix(mark(3), dep.Broadcast),
		dep.Row:        dist.NewDistMatrix(mark(1), dep.Row),
	}
	e.vars["X"] = &varState{rows: 2, cols: 2, instances: instances}
	for i := 0; i < 50; i++ {
		g, ok := e.Grid("X")
		if !ok {
			t.Fatal("Grid lost the variable")
		}
		if got := g.At(0, 0); got != 1 {
			t.Fatalf("call %d returned instance %v, want the Row instance (1)", i, got)
		}
	}
	// Without a Row instance the next scheme in the fixed order wins.
	delete(instances, dep.Row)
	if g, _ := e.Grid("X"); g.At(0, 0) != 2 {
		t.Errorf("without Row, Grid returned %v, want the Col instance (2)", g.At(0, 0))
	}
	if _, ok := e.Grid("missing"); ok {
		t.Error("Grid invented a variable")
	}
}

// TestPlanCacheInvalidationOnRebind mutates the session schemes between Run
// calls on the same *expr.Program — re-binding V resets it to a single
// hash-partitioned instance — and requires the cache to miss and re-plan
// correctly rather than reuse a plan whose leaf schemes no longer exist.
func TestPlanCacheInvalidationOnRebind(t *testing.T) {
	e := New(DMac, testConfig(), tBS)
	v, _, _ := bindGNMF(t, e)
	prog := gnmfProgram(0.3)
	for i := 0; i < 3; i++ {
		if _, err := e.Run(prog, nil); err != nil {
			t.Fatal(err)
		}
	}
	hitsBefore, missesBefore := e.PlanCacheStats()
	if hitsBefore == 0 {
		t.Fatalf("no cache hits after 3 identical runs (misses=%d)", missesBefore)
	}
	// V has been cached under the schemes the plan repartitioned it to;
	// re-binding wipes them, so the cached plan's signature is stale.
	if err := e.Bind("V", v.Clone()); err != nil {
		t.Fatal(err)
	}
	if got := e.VarSchemes("V"); len(got) != 1 || got[0] != dep.SchemeNone {
		t.Fatalf("re-bound V has schemes %v, want [none]", got)
	}
	m, err := e.Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, missesAfter := e.PlanCacheStats()
	if missesAfter != missesBefore+1 {
		t.Errorf("misses = %d after re-bind, want %d (stale plan must not be reused)", missesAfter, missesBefore+1)
	}
	// The re-plan repartitions the fresh hash-partitioned V again: real
	// communication, and a correct result.
	if m.CommBytes <= 0 {
		t.Errorf("re-planned run moved %d bytes, want > 0", m.CommBytes)
	}
	wGrid, ok := e.Grid("W")
	if !ok {
		t.Fatal("W missing after re-planned run")
	}
	if r, c := wGrid.Rows(), wGrid.Cols(); r != tRows || c != tK {
		t.Errorf("W is %dx%d, want %dx%d", r, c, tRows, tK)
	}
}
