package engine

import (
	"strings"
	"testing"

	"dmac/internal/dist"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/sched"
	"dmac/internal/workload"
)

// mulProgram builds A*B at the given logical shape and operand sparsities.
func mulProgram(n, m, p int, aSp, bSp float64) *expr.Program {
	pr := expr.NewProgram()
	a := pr.Var("A", n, m, aSp)
	b := pr.Var("B", m, p, bSp)
	pr.Assign("out", pr.Mul(a, b))
	return pr
}

// TestPlanSignatureEncodesKernelConfig: plans are priced from the block size
// and the kernel worker count, so two sessions differing in either must
// never share a plan-cache entry (the strategy-version regression the issue
// pins).
func TestPlanSignatureEncodesKernelConfig(t *testing.T) {
	p := signatureProgram()
	small := New(DMac, dist.Config{Workers: 2}, 4)
	big := New(DMac, dist.Config{Workers: 2}, 8)
	if small.planSignature(p) == big.planSignature(p) {
		t.Fatalf("plan signatures identical across block sizes: %q", small.planSignature(p))
	}

	e := New(DMac, dist.Config{Workers: 2}, 4)
	prev := matrix.SetKernelWorkers(1)
	sig1 := e.planSignature(p)
	matrix.SetKernelWorkers(8)
	sig8 := e.planSignature(p)
	matrix.SetKernelWorkers(prev)
	if sig1 == sig8 {
		t.Fatalf("plan signatures identical across kernel worker counts: %q", sig1)
	}
}

// TestSignaturePrefixEncodesKernelVersion: the shared-cache key prefix must
// carry the multiply-kernel generation so entries from a previous kernel
// generation can never be served.
func TestSignaturePrefixEncodesKernelVersion(t *testing.T) {
	prefix := SignaturePrefix()
	if !strings.Contains(prefix, "mk") {
		t.Fatalf("prefix %q does not encode the kernel version", prefix)
	}
	sig := ProgramSignature(signatureProgram())
	pc := NewPlanCache(8)
	e := New(DMac, dist.Config{Workers: 2}, 4)
	plan, err := e.Plan(signatureProgram())
	if err != nil {
		t.Fatal(err)
	}
	pc.Put(sig, plan)
	// A key minted under a different kernel generation must miss.
	legacy := strings.Replace(sig, prefix, "ps1;rw"+itoa(matrix.KernelVersion)+";mk1|", 1)
	if legacy != sig && pc.Get(legacy) != nil {
		t.Fatal("foreign kernel-version key hit the cache")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

// TestPlannerPicksStrassenWhereItWins: a large dense multiply at a big block
// size gets the Strassen algorithm on its compute op (and the plan rendering
// marks it), while small, small-blocked, or sparse multiplies stay classical.
func TestPlannerPicksStrassenWhereItWins(t *testing.T) {
	// Pin the kernel worker count: the pick prices core scaling, and the
	// machine default would make the expectations hardware-dependent.
	defer matrix.SetKernelWorkers(matrix.SetKernelWorkers(1))
	plan := func(blockSize int, prog *expr.Program) string {
		e := New(DMac, dist.Config{Workers: 2}, blockSize)
		pl, err := e.Plan(prog)
		if err != nil {
			t.Fatal(err)
		}
		return pl.String()
	}

	// 4096^3 dense at block size 2048: block products are 2048^3, two
	// recursion levels past the crossover — Strassen must be picked and
	// surfaced.
	if s := plan(2048, mulProgram(4096, 4096, 4096, 1, 1)); !strings.Contains(s, "[strassen]") {
		t.Fatalf("large dense multiply not planned as strassen:\n%s", s)
	}
	// Block products of 1024^3 are eligible but the modelled win is inside
	// the selection margin — the near-crossover tie stays classical.
	if s := plan(1024, mulProgram(2048, 2048, 2048, 1, 1)); strings.Contains(s, "strassen") {
		t.Fatalf("near-crossover multiply planned as strassen:\n%s", s)
	}
	// Same logical shape at block size 256: block products are 256^3, below
	// eligibility — classical.
	if s := plan(256, mulProgram(4096, 4096, 4096, 1, 1)); strings.Contains(s, "strassen") {
		t.Fatalf("small-blocked multiply planned as strassen:\n%s", s)
	}
	// Sparse operand: classical regardless of shape.
	if s := plan(2048, mulProgram(4096, 4096, 4096, 0.01, 1)); strings.Contains(s, "strassen") {
		t.Fatalf("sparse multiply planned as strassen:\n%s", s)
	}
	// Small shape: classical.
	if s := plan(2048, mulProgram(64, 64, 64, 1, 1)); strings.Contains(s, "strassen") {
		t.Fatalf("small multiply planned as strassen:\n%s", s)
	}
	// More cores shift the crossover up: the classical kernel's flops scale
	// with workers while Strassen's add passes do not, so the same shape that
	// wins at one worker is classical at eight.
	matrix.SetKernelWorkers(8)
	if s := plan(2048, mulProgram(4096, 4096, 4096, 1, 1)); strings.Contains(s, "strassen") {
		t.Fatalf("2048-block multiply still strassen at 8 workers:\n%s", s)
	}
}

// TestStrassenPlanExecutesCorrectly runs a Strassen-planned multiply end to
// end through the distributed engine and checks the numbers against the
// classical local reference.
func TestStrassenPlanExecutesCorrectly(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size strassen execution in -short mode")
	}
	const (
		n  = 2064
		bs = 2048
	)
	defer matrix.SetKernelWorkers(matrix.SetKernelWorkers(1))
	prog := mulProgram(n, n, n, 1, 1)
	e := New(DMac, dist.Config{Workers: 2, LocalParallelism: 1}, bs)
	pl, err := e.Plan(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pl.String(), "[strassen]") {
		t.Fatalf("test premise broken: plan is not strassen:\n%s", pl)
	}
	a := workload.DenseRandom(1, n, n, bs)
	b := workload.DenseRandom(2, n, n, bs)
	if err := e.Bind("A", a); err != nil {
		t.Fatal(err)
	}
	if err := e.Bind("B", b); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(prog, nil); err != nil {
		t.Fatal(err)
	}
	got, ok := e.Grid("out")
	if !ok {
		t.Fatal("no output grid")
	}
	// Classical reference computed directly on the blocks.
	want, err := sched.NewExecutor(1, nil).MulTrans(a, b, false, false, sched.InPlace)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 97 {
		for j := 0; j < n; j += 89 {
			g, w := got.At(i, j), want.At(i, j)
			d := g - w
			if d < 0 {
				d = -d
			}
			if d > 1e-9 {
				t.Fatalf("out[%d,%d] = %g, classical %g (diff %g)", i, j, g, w, d)
			}
		}
	}
}
