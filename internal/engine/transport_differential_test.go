package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"dmac/internal/core"
	"dmac/internal/dist"
	"dmac/internal/dist/transport"
	"dmac/internal/matrix"
)

// TestEngineRecoversFromKilledTCPWorker mirrors the multi-process CI smoke in
// pure Go: a program runs warm over a real loopback TCP data plane, then one
// worker process dies (its endpoint closes, exactly what SIGKILL looks like
// from the coordinator), and the next run must still complete — lineage
// recovery removes the dead worker after the transport reports it down — with
// visible retries and a result equal to the fault-free local reference.
func TestEngineRecoversFromKilledTCPWorker(t *testing.T) {
	const bs = 4
	workers := make([]*transport.Worker, 3)
	addrs := make([]string, 3)
	for i := range addrs {
		w := transport.NewWorker(transport.WorkerConfig{})
		a, err := w.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		workers[i] = w
		addrs[i] = a.String()
	}
	rng := rand.New(rand.NewSource(4242))
	prog, _ := core.RandomProgram(rng)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	data := denseLeafData(rng, prog, bs)

	ref := New(Local, dist.Config{Workers: 1, LocalParallelism: 2}, bs)
	defer ref.Close()
	e := New(DMac, dist.Config{
		WorkerAddrs:      addrs,
		LocalParallelism: 2,
		DialTimeoutSec:   0.5,
		IOTimeoutSec:     2,
	}, bs)
	defer e.Close()
	for name, g := range data {
		if err := ref.Bind(name, g.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := e.Bind(name, g.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ref.Run(prog, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(prog, nil); err != nil {
		t.Fatalf("warm run over TCP: %v", err)
	}
	workers[0].Close()
	done := make(chan struct{})
	var m Metrics
	var runErr error
	go func() {
		m, runErr = e.Run(prog, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run after worker kill hung (recovery deadlock)")
	}
	if runErr != nil {
		t.Fatalf("run after worker kill: %v", runErr)
	}
	if m.Retries == 0 {
		t.Error("run after worker kill reported no retries")
	}
	if m.WireBytes == 0 {
		t.Error("run after worker kill measured no wire traffic")
	}
	for _, a := range prog.Assignments() {
		want, _ := ref.Grid(a.Name)
		got, ok := e.Grid(a.Name)
		if !ok || !matrix.GridEqual(got, want, 1e-9) {
			t.Errorf("output %s differs from local reference after recovery", a.Name)
		}
	}
}

// TestDifferentialTCPUnderChaos is the wire transport's differential
// acceptance gate: 40 random programs run on the DMac engine with a real
// loopback TCP data plane under the combined chaos regime — a scripted
// boundary kill, seeded block corruption, seeded network frame drops, and a
// scripted network delay — and every result must match the Local engine's
// fault-free reference within 1e-9. Recovery (stage retry, lineage
// re-partition, CRC quarantine, retransmit) has to heal everything; the
// measured wire traffic must be visible in the metrics.
func TestDifferentialTCPUnderChaos(t *testing.T) {
	const bs = 4
	addrs := make([]string, 4)
	for i := range addrs {
		w := transport.NewWorker(transport.WorkerConfig{})
		a, err := w.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve()
		t.Cleanup(func() { w.Close() })
		addrs[i] = a.String()
	}
	faults := dist.FaultPlan{
		Seed:        31,
		CorruptRate: 0.25,
		NetDropRate: 0.2,
		Events: []dist.FaultEvent{
			{Stage: 1, Worker: 1, Attempt: 0, Kind: dist.FaultKillBoundary},
			{Stage: 2, Worker: 3, Attempt: 0, Kind: dist.FaultCorrupt},
			{Stage: 2, Worker: 2, Attempt: 0, Kind: dist.FaultNetDelay, DelaySec: 0.05},
		},
	}

	var wireBytes, retries int64
	var injected, detected, drops int
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 9000))
		prog, _ := core.RandomProgram(rng)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		data := denseLeafData(rng, prog, bs)

		run := func(planner Planner, cfg dist.Config) (map[string]*matrix.Grid, map[string]float64, Metrics) {
			e := New(planner, cfg, bs)
			defer e.Close()
			for name, g := range data {
				if err := e.Bind(name, g.Clone()); err != nil {
					t.Fatalf("seed %d %s: %v", seed, planner, err)
				}
			}
			var total Metrics
			for iter := 0; iter < 2; iter++ {
				m, err := e.Run(prog, nil)
				if err != nil {
					t.Fatalf("seed %d %s iter %d: %v", seed, planner, iter, err)
				}
				total.Add(m)
			}
			grids := map[string]*matrix.Grid{}
			scalars := map[string]float64{}
			for _, a := range prog.Assignments() {
				g, ok := e.Grid(a.Name)
				if !ok {
					t.Fatalf("seed %d %s: output %s missing", seed, planner, a.Name)
				}
				grids[a.Name] = g
			}
			for _, s := range prog.ScalarOuts() {
				v, ok := e.Scalar(s.Name)
				if !ok {
					t.Fatalf("seed %d %s: scalar %s missing", seed, planner, s.Name)
				}
				scalars[s.Name] = v
			}
			return grids, scalars, total
		}

		refGrids, refScalars, _ := run(Local, dist.Config{Workers: 1, LocalParallelism: 2})
		gotGrids, gotScalars, total := run(DMac, dist.Config{
			WorkerAddrs:      addrs,
			LocalParallelism: 2,
			Faults:           faults,
		})
		label := fmt.Sprintf("seed %d tcp/chaos", seed)
		for name, g := range refGrids {
			if !matrix.GridEqual(gotGrids[name], g, 1e-9) {
				t.Errorf("%s: output %s differs from local reference", label, name)
			}
		}
		for name, v := range refScalars {
			if d := gotScalars[name] - v; math.Abs(d) > 1e-9*(1+math.Abs(v)) {
				t.Errorf("%s: scalar %s = %v, local %v", label, name, gotScalars[name], v)
			}
		}
		// Wire traffic is measured, not modeled: it can sit below the model's
		// dense-payload charge when a block's encoding is sparse, and above it
		// from framing, acks and retransmits — but it can never be absent.
		if total.WireBytes == 0 || total.WireFrames == 0 {
			t.Errorf("%s: no measured wire traffic (%d B / %d frames)", label, total.WireBytes, total.WireFrames)
		}
		wireBytes += total.WireBytes
		retries += int64(total.Retries)
		injected += total.CorruptionsInjected
		detected += total.CorruptionsDetected
		drops += total.NetDropsInjected
	}
	if injected != detected {
		t.Errorf("corruptions injected %d != detected %d across seeds", injected, detected)
	}
	if injected == 0 {
		t.Error("chaos regime never injected a corruption across 40 seeds")
	}
	if retries == 0 {
		t.Error("chaos regime never forced a stage retry across 40 seeds")
	}
	if drops == 0 {
		t.Error("chaos regime never dropped a frame across 40 seeds")
	}
	if wireBytes == 0 {
		t.Error("no wire traffic measured across 40 seeds")
	}
}
