package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dmac/internal/dist"
	"dmac/internal/expr"
	"dmac/internal/matrix"
)

// randomExecProgram builds a random valid program plus dense positive data
// for its leaves, for cross-engine execution equivalence fuzzing.
func randomExecProgram(rng *rand.Rand, bs int) (*expr.Program, map[string]*matrix.Grid, []string, []string) {
	dims := []int{3, 5, 7}
	dim := func() int { return dims[rng.Intn(len(dims))] }
	p := expr.NewProgram()
	data := make(map[string]*matrix.Grid)
	var pool []expr.Ref

	nLeaves := 2 + rng.Intn(2)
	for i := 0; i < nLeaves; i++ {
		name := fmt.Sprintf("M%d", i)
		r, c := dim(), dim()
		ref := p.Var(name, r, c, 1)
		pool = append(pool, ref)
		g := matrix.NewDenseGrid(r, c, bs)
		for ri := 0; ri < r; ri++ {
			for ci := 0; ci < c; ci++ {
				g.Set(ri, ci, 0.2+rng.Float64())
			}
		}
		data[name] = g
	}

	pick := func() expr.Ref {
		r := pool[rng.Intn(len(pool))]
		if rng.Intn(3) == 0 {
			r = r.T()
		}
		return r
	}
	var scalars []string
	nOps := 3 + rng.Intn(8)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(6) {
		case 0, 1:
			var a, b expr.Ref
			found := false
			for try := 0; try < 20 && !found; try++ {
				a, b = pick(), pick()
				found = a.Cols() == b.Rows()
			}
			if found {
				pool = append(pool, p.Mul(a, b))
			}
		case 2:
			var a, b expr.Ref
			found := false
			for try := 0; try < 20 && !found; try++ {
				a, b = pick(), pick()
				found = a.Rows() == b.Rows() && a.Cols() == b.Cols()
			}
			if found {
				if rng.Intn(2) == 0 {
					pool = append(pool, p.Add(a, b))
				} else {
					pool = append(pool, p.CellMul(a, b))
				}
			}
		case 3:
			pool = append(pool, p.Scalar(matrix.ScalarMul, pick(), 0.5+rng.Float64()))
		case 4:
			name := fmt.Sprintf("s%d", i)
			p.Sum(name, pick())
			scalars = append(scalars, name)
		case 5:
			// Element-wise functions that are safe on any real input.
			funcs := []matrix.UFunc{matrix.FuncSigmoid, matrix.FuncAbs, matrix.FuncSign}
			pool = append(pool, p.Func(funcs[rng.Intn(len(funcs))], pick()))
		}
	}
	var outs []string
	for i := 0; i < 2 && i < len(pool); i++ {
		name := fmt.Sprintf("out%d", i)
		p.Assign(name, pool[len(pool)-1-i])
		outs = append(outs, name)
	}
	return p, data, outs, scalars
}

// TestFuzzExecutionEquivalence runs random programs on all three engines —
// twice each, so session scheme caching is exercised — and demands
// identical results.
func TestFuzzExecutionEquivalence(t *testing.T) {
	const bs = 4
	cfg := dist.Config{Workers: 3, LocalParallelism: 2}
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed + 5000))
		prog, data, outs, scalars := randomExecProgram(rng, bs)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		type result struct {
			grids   map[string]*matrix.Grid
			scalars map[string]float64
		}
		results := map[Planner]result{}
		for _, planner := range []Planner{Local, DMac, SystemMLS} {
			e := New(planner, cfg, bs)
			for name, g := range data {
				if err := e.Bind(name, g.Clone()); err != nil {
					t.Fatalf("seed %d %s: %v", seed, planner, err)
				}
			}
			for iter := 0; iter < 2; iter++ {
				if _, err := e.Run(prog, nil); err != nil {
					t.Fatalf("seed %d %s iter %d: %v\nprogram nodes: %d", seed, planner, iter, err, len(prog.Nodes()))
				}
			}
			res := result{grids: map[string]*matrix.Grid{}, scalars: map[string]float64{}}
			for _, name := range outs {
				g, ok := e.Grid(name)
				if !ok {
					t.Fatalf("seed %d %s: output %s missing", seed, planner, name)
				}
				res.grids[name] = g
			}
			for _, name := range scalars {
				v, ok := e.Scalar(name)
				if !ok {
					t.Fatalf("seed %d %s: scalar %s missing", seed, planner, name)
				}
				res.scalars[name] = v
			}
			results[planner] = res
		}
		ref := results[Local]
		for _, planner := range []Planner{DMac, SystemMLS} {
			got := results[planner]
			for name, g := range ref.grids {
				if !matrix.GridEqual(got.grids[name], g, 1e-8) {
					t.Errorf("seed %d: %s output %s differs from local", seed, planner, name)
				}
			}
			for name, v := range ref.scalars {
				if d := got.scalars[name] - v; math.Abs(d) > 1e-6*(1+math.Abs(v)) {
					t.Errorf("seed %d: %s scalar %s = %v, local %v", seed, planner, name, got.scalars[name], v)
				}
			}
		}
	}
}
