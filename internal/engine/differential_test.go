package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dmac/internal/core"
	"dmac/internal/dist"
	"dmac/internal/expr"
	"dmac/internal/matrix"
)

// differentialPlans are the fault regimes each random program runs under:
// fault-free, scripted kills, seeded random kills, scripted block
// corruption, and kills racing seeded corruption.
func differentialPlans() map[string]dist.FaultPlan {
	return map[string]dist.FaultPlan{
		"no-faults": {},
		"scripted": {Events: []dist.FaultEvent{
			{Stage: 1, Worker: 1, Attempt: 0, Kind: dist.FaultKillBoundary},
			{Stage: 2, Worker: 0, Attempt: 0, Kind: dist.FaultKillTask},
		}},
		"random": dist.RandomFaultPlan(99, 0.2),
		// Stage 1 of a generated plan holds only leaves and local transposes;
		// the first block hand-offs — where corruption can fire — are in
		// stage 2.
		"corrupt": {Events: []dist.FaultEvent{
			{Stage: 2, Worker: 2, Attempt: 0, Kind: dist.FaultCorrupt},
		}},
		"kill+corrupt": {
			Seed:        31,
			CorruptRate: 0.25,
			Events: []dist.FaultEvent{
				{Stage: 2, Worker: 3, Attempt: 0, Kind: dist.FaultCorrupt},
				{Stage: 1, Worker: 1, Attempt: 0, Kind: dist.FaultKillBoundary},
			},
		},
	}
}

// denseLeafData builds positive dense grids for every leaf of a random
// program (dimensions come from the Var nodes themselves).
func denseLeafData(rng *rand.Rand, p *expr.Program, bs int) map[string]*matrix.Grid {
	data := make(map[string]*matrix.Grid)
	for _, n := range p.Nodes() {
		if n.Kind != expr.KindVar && n.Kind != expr.KindLoad {
			continue
		}
		if _, ok := data[n.Name]; ok {
			continue
		}
		g := matrix.NewDenseGrid(n.Rows, n.Cols, bs)
		for ri := 0; ri < n.Rows; ri++ {
			for ci := 0; ci < n.Cols; ci++ {
				g.Set(ri, ci, 0.2+rng.Float64())
			}
		}
		data[n.Name] = g
	}
	return data
}

// TestDifferentialEnginesUnderChaos is the differential property test: random
// programs from the shared core generator must produce numerically equal
// results (within 1e-9) on Local, DMac, and SystemML-S — and injected worker
// failures must not move any distributed result by a single bit relative to
// its own fault-free run.
func TestDifferentialEnginesUnderChaos(t *testing.T) {
	const bs = 4
	injectedByPlan := make(map[string]int)
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 9000))
		prog, _ := core.RandomProgram(rng)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: invalid program: %v", seed, err)
		}
		data := denseLeafData(rng, prog, bs)
		var outs, scalars []string
		for _, a := range prog.Assignments() {
			outs = append(outs, a.Name)
		}
		for _, s := range prog.ScalarOuts() {
			scalars = append(scalars, s.Name)
		}

		type result struct {
			grids   map[string]*matrix.Grid
			scalars map[string]float64
			total   Metrics
		}
		runOne := func(planner Planner, faults dist.FaultPlan) result {
			cfg := dist.Config{Workers: 4, LocalParallelism: 2, Faults: faults}
			e := New(planner, cfg, bs)
			for name, g := range data {
				if err := e.Bind(name, g.Clone()); err != nil {
					t.Fatalf("seed %d %s: %v", seed, planner, err)
				}
			}
			var total Metrics
			for iter := 0; iter < 2; iter++ {
				m, err := e.Run(prog, nil)
				if err != nil {
					t.Fatalf("seed %d %s iter %d: %v", seed, planner, iter, err)
				}
				total.Add(m)
			}
			res := result{grids: map[string]*matrix.Grid{}, scalars: map[string]float64{}, total: total}
			for _, name := range outs {
				g, ok := e.Grid(name)
				if !ok {
					t.Fatalf("seed %d %s: output %s missing", seed, planner, name)
				}
				res.grids[name] = g
			}
			for _, name := range scalars {
				v, ok := e.Scalar(name)
				if !ok {
					t.Fatalf("seed %d %s: scalar %s missing", seed, planner, name)
				}
				res.scalars[name] = v
			}
			return res
		}

		ref := runOne(Local, dist.FaultPlan{})
		for planName, faults := range differentialPlans() {
			for _, planner := range []Planner{DMac, SystemMLS} {
				label := fmt.Sprintf("seed %d %s/%s", seed, planner, planName)
				got := runOne(planner, faults)
				for name, g := range ref.grids {
					if !matrix.GridEqual(got.grids[name], g, 1e-9) {
						t.Errorf("%s: output %s differs from local reference", label, name)
					}
				}
				for name, v := range ref.scalars {
					if d := got.scalars[name] - v; math.Abs(d) > 1e-9*(1+math.Abs(v)) {
						t.Errorf("%s: scalar %s = %v, local %v", label, name, got.scalars[name], v)
					}
				}
				if got.total.CorruptionsInjected != got.total.CorruptionsDetected {
					t.Errorf("%s: %d corruptions injected but %d detected",
						label, got.total.CorruptionsInjected, got.total.CorruptionsDetected)
				}
				injectedByPlan[planName] += got.total.CorruptionsInjected
			}
		}
	}
	// The corruption regimes must actually fire somewhere across the seeds —
	// otherwise the invariant above is vacuous.
	for _, plan := range []string{"corrupt", "kill+corrupt"} {
		if injectedByPlan[plan] == 0 {
			t.Errorf("plan %s never injected a corruption across all seeds", plan)
		}
	}
	for _, plan := range []string{"no-faults", "scripted", "random"} {
		if injectedByPlan[plan] != 0 {
			t.Errorf("plan %s injected %d corruptions; want none", plan, injectedByPlan[plan])
		}
	}
}
