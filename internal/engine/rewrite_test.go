package engine

import (
	"testing"

	"dmac/internal/dist"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/obs"
	"dmac/internal/rewrite"
	"dmac/internal/workload"
)

// rewriteWorkload exercises both structural rules: a product read only
// transposed and a left-associated chain with a cheap interior.
func rewriteWorkload() *expr.Program {
	p := expr.NewProgram()
	a := p.Var("A", 24, 6, 1)
	b := p.Var("B", 6, 24, 1)
	c := p.Var("C", 24, 10, 1)
	ab := p.Mul(a, b)
	p.Assign("pushdown", p.Mul(ab.T(), c))
	g := p.Var("G", 40, 4, 1)
	h := p.Var("H", 4, 40, 1)
	i := p.Var("I", 40, 4, 1)
	p.Assign("chain", p.Mul(p.Mul(g, h), i))
	p.Sum("total", p.Mul(g, h))
	return p
}

func bindRewriteLeaves(t *testing.T, e *Engine, bs int) {
	t.Helper()
	seed := int64(11)
	for _, leaf := range []struct {
		name       string
		rows, cols int
	}{{"A", 24, 6}, {"B", 6, 24}, {"C", 24, 10}, {"G", 40, 4}, {"H", 4, 40}, {"I", 40, 4}} {
		if err := e.Bind(leaf.name, workload.DenseRandom(seed, leaf.rows, leaf.cols, bs)); err != nil {
			t.Fatal(err)
		}
		seed++
	}
}

// With and without the rewriter, the DMac engine computes the same outputs;
// the rewriter-on engine records its decisions in the metrics registry.
func TestEngineRewriterEquivalence(t *testing.T) {
	const bs = 5
	run := func(withRewriter bool) (*Engine, *obs.Registry) {
		reg := obs.NewRegistry()
		e := New(DMac, dist.Config{Workers: 3, LocalParallelism: 2}, bs)
		e.SetObserver(nil, reg)
		if withRewriter {
			e.SetRewriter(rewrite.New())
		}
		bindRewriteLeaves(t, e, bs)
		if _, err := e.Run(rewriteWorkload(), nil); err != nil {
			t.Fatal(err)
		}
		return e, reg
	}

	plain, _ := run(false)
	rewritten, reg := run(true)

	for _, out := range []string{"pushdown", "chain"} {
		gp, ok1 := plain.Grid(out)
		gr, ok2 := rewritten.Grid(out)
		if !ok1 || !ok2 {
			t.Fatalf("output %s missing (plain=%v rewritten=%v)", out, ok1, ok2)
		}
		if !matrix.GridEqual(gp, gr, 1e-9) {
			t.Errorf("output %s differs between plain and rewritten runs", out)
		}
	}
	sp, _ := plain.Scalar("total")
	sr, _ := rewritten.Scalar("total")
	if diff := sp - sr; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("scalar total differs: %g vs %g", sp, sr)
	}

	snap := reg.Snapshot()
	if snap.Counters["rewrite.programs"] == 0 {
		t.Error("rewrite.programs counter not incremented")
	}
	if snap.Counters["rewrite.applied"] == 0 {
		t.Error("rewrite.applied counter not incremented")
	}
	if snap.Counters["rewrite.applied."+rewrite.RuleTransposePushdown] == 0 {
		t.Error("per-rule pushdown counter not incremented")
	}
	if snap.Counters["rewrite.predicted.flops_saved"] == 0 {
		t.Error("predicted FLOP savings not recorded")
	}
}

// Rewriting is memoized per program pointer: a second run of the same
// *expr.Program must not re-run the pass, and SetRewriter/Reset clear the
// memo.
func TestEngineRewriteCacheReuse(t *testing.T) {
	const bs = 5
	reg := obs.NewRegistry()
	e := New(DMac, dist.Config{Workers: 2, LocalParallelism: 2}, bs)
	e.SetObserver(nil, reg)
	e.SetRewriter(rewrite.New())
	bindRewriteLeaves(t, e, bs)

	p := rewriteWorkload()
	if _, err := e.Run(p, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["rewrite.programs"]; got != 1 {
		t.Fatalf("rewrite.programs = %d after first run, want 1", got)
	}
	if _, ok := e.rewriteCache[p]; !ok {
		t.Fatal("rewrite result not memoized")
	}
	if _, err := e.Run(p, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["rewrite.programs"]; got != 1 {
		t.Fatalf("rewrite.programs = %d after second run, want 1 (memoized)", got)
	}
	e.Reset()
	if e.rewriteCache != nil {
		t.Fatal("Reset did not clear the rewrite memo")
	}
	e.SetRewriter(nil)
	if e.Rewriter() != nil {
		t.Fatal("SetRewriter(nil) did not detach")
	}
	bindRewriteLeaves(t, e, bs)
	if _, err := e.Run(p, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["rewrite.programs"]; got != 1 {
		t.Fatalf("detached engine still rewrote: rewrite.programs = %d", got)
	}
}

// The Local planner goes through the same rewrite path.
func TestLocalPlannerUsesRewriter(t *testing.T) {
	const bs = 5
	reg := obs.NewRegistry()
	e := New(Local, dist.Config{Workers: 1, LocalParallelism: 1}, bs)
	e.SetObserver(nil, reg)
	e.SetRewriter(rewrite.New())
	bindRewriteLeaves(t, e, bs)
	if _, err := e.Run(rewriteWorkload(), nil); err != nil {
		t.Fatal(err)
	}
	if reg.Snapshot().Counters["rewrite.programs"] == 0 {
		t.Error("Local planner bypassed the rewrite pass")
	}
	if _, ok := e.Grid("pushdown"); !ok {
		t.Error("output missing after rewritten local run")
	}
}
