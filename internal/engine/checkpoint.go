package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"dmac/internal/dep"
	"dmac/internal/dist"
	"dmac/internal/mio"
	"dmac/internal/obs"
)

// CheckpointPolicy decides when the engine snapshots the live values of a run
// to disk. Both triggers may be combined; a policy with neither never writes
// (but SetCheckpoint still enables checkpoint-aware recovery, which then
// degrades to full lineage replay).
type CheckpointPolicy struct {
	// Interval checkpoints after every Interval-th completed stage. 0
	// disables the fixed-interval trigger.
	Interval int
	// CostModel checkpoints after a stage once the modelled cost of
	// recomputing the stages since the last checkpoint (their attributed
	// FLOPs and communication, priced by the cluster's cost model) exceeds
	// the modelled cost of writing the snapshot. This is the dependency-cost
	// analogue of the classic checkpoint-interval rule: pay the write when a
	// failure would cost more than the write does.
	CostModel bool
	// WriteBytesPerSec is the modelled checkpoint write bandwidth the cost
	// model prices the snapshot against. Defaults to 200 MB/s.
	WriteBytesPerSec float64
}

// Enabled reports whether the policy ever triggers a write.
func (p CheckpointPolicy) Enabled() bool { return p.Interval > 0 || p.CostModel }

func (p CheckpointPolicy) withDefaults() CheckpointPolicy {
	if p.WriteBytesPerSec <= 0 {
		p.WriteBytesPerSec = 200e6
	}
	return p
}

// Validate rejects policies that would behave silently oddly.
func (p CheckpointPolicy) Validate() error {
	if p.Interval < 0 {
		return fmt.Errorf("engine: checkpoint Interval %d is negative", p.Interval)
	}
	if p.WriteBytesPerSec < 0 {
		return fmt.Errorf("engine: checkpoint WriteBytesPerSec %v is negative", p.WriteBytesPerSec)
	}
	return nil
}

// manifestVersion versions the checkpoint manifest schema.
const manifestVersion = 1

// ckptManifest is the manifest of one checkpoint: which values (and driver
// scalars) the snapshot holds, identified by plan value ID, and the stage the
// snapshot was taken after. It is written last, atomically (temp file +
// rename), so a crash mid-checkpoint leaves a directory without a readable
// manifest — invalid by construction, skipped by the recovery ladder.
type ckptManifest struct {
	Version int                `json:"version"`
	Seq     int                `json:"seq"`
	Stage   int                `json:"stage"`
	PlanSig string             `json:"plan_sig"`
	Values  []ckptValue        `json:"values"`
	Scalars map[string]float64 `json:"scalars,omitempty"`
}

// ckptValue locates one snapshotted plan value inside the checkpoint
// directory. The grid file carries its own per-block CRC32C (mio version 2);
// Scheme and Trans restore the value's placement and lazy-transpose state.
type ckptValue struct {
	ID     int    `json:"id"`
	File   string `json:"file"`
	Scheme int    `json:"scheme"`
	Trans  bool   `json:"trans,omitempty"`
}

// writtenCkpt is the in-memory record of a checkpoint written by the current
// run — the candidates of the recovery ladder. Validity is never assumed:
// restore re-reads and re-verifies everything from disk.
type writtenCkpt struct {
	seq   int
	stage int
	dir   string
}

// checkpointer owns the checkpoint directory of an engine: the write policy,
// the sequence counter (monotone across runs, so directories never collide),
// and the per-run state the recovery ladder and the run metrics read.
type checkpointer struct {
	dir    string
	policy CheckpointPolicy
	seq    int

	// Per-run state, reset by beginRun.
	written     []writtenCkpt
	sinceLast   int
	pendingCost float64
	bytes       int64
	seconds     float64
	replayed    int

	// testPreRestore, when set (tests only), runs right before the recovery
	// ladder scans the checkpoints — the seam the crash-mid-checkpoint tests
	// use to damage on-disk state between write and restore.
	testPreRestore func()
}

// beginRun resets the per-run state. Earlier runs' checkpoints stay on disk
// but are no longer restore candidates: they describe a different plan's
// values.
func (c *checkpointer) beginRun() {
	if c == nil {
		return
	}
	c.written = c.written[:0]
	c.sinceLast, c.pendingCost = 0, 0
	c.bytes, c.seconds, c.replayed = 0, 0, 0
}

// noteStage records one completed stage and its modelled cost — what a
// failure right now would have to recompute.
func (c *checkpointer) noteStage(modelCost float64) {
	c.sinceLast++
	c.pendingCost += modelCost
}

// shouldCheckpoint applies the policy given the estimated snapshot size.
func (c *checkpointer) shouldCheckpoint(estBytes int64) bool {
	if c.policy.Interval > 0 && c.sinceLast >= c.policy.Interval {
		return true
	}
	if c.policy.CostModel {
		if c.pendingCost > float64(estBytes)/c.policy.WriteBytesPerSec {
			return true
		}
	}
	return false
}

// SetCheckpoint attaches a checkpoint directory and policy to the engine.
// Subsequent runs snapshot their live values after stages the policy selects,
// and the stage retry loop restores from the newest valid checkpoint instead
// of replaying the whole lineage. An empty dir detaches checkpointing and
// restores the engine's default recovery behaviour.
func (e *Engine) SetCheckpoint(dir string, policy CheckpointPolicy) error {
	if dir == "" {
		e.ckpt = nil
		return nil
	}
	if err := policy.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("engine: checkpoint dir: %w", err)
	}
	e.ckpt = &checkpointer{dir: dir, policy: policy.withDefaults()}
	return nil
}

// estimateLiveBytes prices the snapshot the checkpointer is deciding about:
// the footprint of every currently materialized value.
func estimateLiveBytes(vals []*dist.DistMatrix) int64 {
	var total int64
	for _, dm := range vals {
		if dm != nil {
			total += dm.Bytes()
		}
	}
	return total
}

// writeCheckpoint snapshots every materialized value (and the driver scalars)
// to a fresh checkpoint directory. Block files use the checksummed grid
// format; the manifest is written last via an atomic rename, so the
// checkpoint becomes visible only complete. A write failure is not a run
// failure — the half-written directory simply never gets a manifest and the
// run continues with one fewer restore candidate (traced and counted).
func (e *Engine) writeCheckpoint(st *execState, stage int) {
	c := e.ckpt
	span := e.tracer.Start("ckpt", "write", e.tracer.Scope(),
		obs.Int64("stage", int64(stage)), obs.Int64("seq", int64(c.seq)))
	start := time.Now()
	n, err := e.writeCheckpointFiles(st, stage)
	sec := time.Since(start).Seconds()
	if err != nil {
		e.tracer.End(span, obs.String("error", err.Error()))
		e.metrics.Counter("ckpt.write.failures").Inc()
		return
	}
	e.tracer.End(span, obs.Int64("bytes", n), obs.Float64("seconds", sec))
	e.metrics.Counter("ckpt.write.count").Inc()
	e.metrics.Counter("ckpt.write.bytes").Add(n)
	c.bytes += n
	c.seconds += sec
	c.sinceLast, c.pendingCost = 0, 0
}

// countingWriter counts the bytes written through it.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (e *Engine) writeCheckpointFiles(st *execState, stage int) (int64, error) {
	c := e.ckpt
	dir := filepath.Join(c.dir, fmt.Sprintf("ckpt-%06d-stage%d", c.seq, stage))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	man := ckptManifest{
		Version: manifestVersion,
		Seq:     c.seq,
		Stage:   stage,
		PlanSig: st.sig,
		Scalars: make(map[string]float64, len(e.scalars)),
	}
	for k, v := range e.scalars {
		man.Scalars[k] = v
	}
	var total int64
	for id, dm := range st.vals {
		if dm == nil {
			continue
		}
		name := fmt.Sprintf("v%04d.dmgr", id)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return total, err
		}
		cw := &countingWriter{w: f}
		err = mio.WriteGridChecked(cw, dm.Grid)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return total, err
		}
		total += cw.n
		man.Values = append(man.Values, ckptValue{
			ID: id, File: name, Scheme: int(dm.Scheme), Trans: dm.Trans(),
		})
	}
	blob, err := json.Marshal(&man)
	if err != nil {
		return total, err
	}
	tmp := filepath.Join(dir, "manifest.json.tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return total, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "manifest.json")); err != nil {
		return total, err
	}
	total += int64(len(blob))
	c.written = append(c.written, writtenCkpt{seq: c.seq, stage: stage, dir: dir})
	c.seq++
	return total, nil
}

// loadCheckpoint validates one restore candidate from disk: the manifest must
// parse, match the running plan, and every value file must read back through
// the checksummed decoder (a truncated file, a flipped bit, or a deleted
// directory all fail here). On success it returns the reconstructed values.
func (e *Engine) loadCheckpoint(w writtenCkpt, sig string) (*ckptManifest, map[int]*dist.DistMatrix, error) {
	blob, err := os.ReadFile(filepath.Join(w.dir, "manifest.json"))
	if err != nil {
		return nil, nil, fmt.Errorf("manifest: %w", err)
	}
	var man ckptManifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return nil, nil, fmt.Errorf("manifest: %w", err)
	}
	if man.Version != manifestVersion {
		return nil, nil, fmt.Errorf("manifest version %d, want %d", man.Version, manifestVersion)
	}
	if man.PlanSig != sig || man.Stage != w.stage {
		return nil, nil, fmt.Errorf("manifest describes a different run (stage %d, sig %q)", man.Stage, man.PlanSig)
	}
	restored := make(map[int]*dist.DistMatrix, len(man.Values))
	for _, v := range man.Values {
		f, err := os.Open(filepath.Join(w.dir, v.File))
		if err != nil {
			return nil, nil, fmt.Errorf("value %d: %w", v.ID, err)
		}
		g, err := mio.ReadGrid(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("value %d: %w", v.ID, err)
		}
		restored[v.ID] = dist.NewDistMatrixView(g, dep.Scheme(v.Scheme), v.Trans)
	}
	return &man, restored, nil
}

// restoreAndReplay is the recovery ladder of a checkpoint-enabled run. After
// a worker failure in failStage, it walks this run's checkpoints newest
// first, skipping any whose manifest or block files fail verification, and
// installs the first valid snapshot; then it replays the stages between the
// snapshot and the failed stage (no fault injection: replayed ops re-run
// deterministically, their communication and arithmetic charged as
// recomputation cost). With no valid checkpoint it replays the full lineage —
// every stage before the failure. It returns how many stages were replayed.
func (e *Engine) restoreAndReplay(ctx context.Context, st *execState, failStage int) (int, error) {
	c := e.ckpt
	if c.testPreRestore != nil {
		c.testPreRestore()
	}
	from := -1
	for i := len(c.written) - 1; i >= 0; i-- {
		w := c.written[i]
		if w.stage >= failStage {
			continue
		}
		vspan := e.tracer.Start("ckpt", "verify", e.tracer.Scope(),
			obs.Int64("stage", int64(w.stage)), obs.Int64("seq", int64(w.seq)))
		man, restored, err := e.loadCheckpoint(w, st.sig)
		e.metrics.Counter("ckpt.verify.count").Inc()
		if err != nil {
			e.tracer.End(vspan, obs.String("error", err.Error()))
			e.metrics.Counter("ckpt.verify.failures").Inc()
			continue
		}
		e.tracer.End(vspan)
		for id, dm := range restored {
			st.vals[id] = dm
		}
		for k, v := range man.Scalars {
			e.scalars[k] = v
		}
		from = w.stage
		break
	}
	span := e.tracer.Start("ckpt", "restore", e.tracer.Scope(),
		obs.Int64("fail_stage", int64(failStage)), obs.Int64("from_stage", int64(from)))
	replayed := 0
	for _, s := range st.stages {
		if s <= from || s >= failStage {
			continue
		}
		if err := e.runOps(ctx, st.plan, s, st.byStage[s], st.vals, st.params); err != nil {
			e.tracer.End(span, obs.String("error", err.Error()))
			return replayed, fmt.Errorf("engine: replaying stage %d after restore: %w", s, err)
		}
		replayed++
	}
	e.tracer.End(span, obs.Int64("stages_replayed", int64(replayed)))
	e.metrics.Counter("ckpt.restore.count").Inc()
	e.metrics.Counter("ckpt.replay.stages").Add(int64(replayed))
	c.replayed += replayed
	return replayed, nil
}
