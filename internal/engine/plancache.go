package engine

import (
	"container/list"
	"fmt"
	"strings"
	"sync"

	"dmac/internal/core"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/rewrite"
)

// signaturePrefix versions every program signature. The "ps" component is
// the serialization format; the "rw" component is the rewrite-pass rule
// version (rewrite.Version); the "mk" component is the multiply-kernel
// generation (matrix.KernelVersion), which plans depend on through the
// per-operator algorithm pick. Because the shared plan cache keys on the
// signature of the canonical *rewritten* program, a binary with a different
// rewrite-rule set or kernel generation must never be served an entry
// produced under the old one — bumping any component makes every stale key
// miss.
var signaturePrefix = fmt.Sprintf("ps1;rw%d;mk%d|", rewrite.Version, matrix.KernelVersion)

// SignaturePrefix returns the version prefix of every ProgramSignature;
// exported for cache-invalidation regression tests.
func SignaturePrefix() string { return signaturePrefix }

// ProgramSignature serializes the structure of a program into a canonical
// string: every node in construction order with its kind, operands (with
// transpose flags), shapes, sparsity estimates and scalar payloads, plus the
// program's assignments and scalar outputs. Two structurally identical
// programs — even distinct *expr.Program objects built by different jobs —
// share a signature, which is what lets a shared PlanCache hand a plan
// generated for one job to another.
//
// Node IDs are program-local construction indices, so they are stable across
// identical rebuilds and safe to embed.
func ProgramSignature(p *expr.Program) string {
	var b strings.Builder
	b.WriteString(signaturePrefix)
	ref := func(r expr.Ref) {
		if r.Transposed {
			fmt.Fprintf(&b, "m%dT", r.Node.ID)
		} else {
			fmt.Fprintf(&b, "m%d", r.Node.ID)
		}
	}
	for _, n := range p.Nodes() {
		fmt.Fprintf(&b, "%d:%d:%q:%dx%d:%g", n.ID, int(n.Kind), n.Name, n.Rows, n.Cols, n.Sparsity)
		switch n.Kind {
		case expr.KindCell:
			fmt.Fprintf(&b, ":%d", int(n.BinOp))
		case expr.KindScalar:
			fmt.Fprintf(&b, ":%d:%g:%q", int(n.ScalarOp), n.Const, n.Param)
		case expr.KindUFunc:
			fmt.Fprintf(&b, ":%d", int(n.UFunc))
		}
		b.WriteByte('(')
		for i, in := range n.Inputs {
			if i > 0 {
				b.WriteByte(',')
			}
			ref(in)
		}
		b.WriteString(");")
	}
	b.WriteByte('|')
	for _, a := range p.Assignments() {
		fmt.Fprintf(&b, "%q=", a.Name)
		ref(a.Ref)
		b.WriteByte(';')
	}
	b.WriteByte('|')
	for _, so := range p.ScalarOuts() {
		fmt.Fprintf(&b, "%q=m%d;", so.Name, so.Node.ID)
	}
	return b.String()
}

// PlanCache is a bounded LRU of generated plans shared across engines, keyed
// by the full plan signature (program structure plus the per-engine session
// signature: worker count, ablation flags and cached variable schemes). A
// fleet of engines serving many tenants submits structurally identical
// programs over and over — fresh *expr.Program objects every time, which the
// per-engine pointer-keyed cache can never hit — and the shared cache lets
// any engine reuse a plan another engine already generated for the same
// signature.
//
// Plans are immutable after generation (the engine only reads Ops, Values and
// the embedded program), so sharing one *core.Plan across engines running on
// different goroutines is safe. All methods are safe for concurrent use; a
// nil *PlanCache is a valid no-op receiver.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     list.List // of planCacheItem, front = most recent
	hits    int64
	misses  int64
}

type planCacheItem struct {
	key  string
	plan *core.Plan
}

// NewPlanCache creates a shared plan cache holding at most capacity plans
// (<= 0 means a default of 128).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &PlanCache{cap: capacity, entries: make(map[string]*list.Element)}
}

// Get returns the cached plan for the signature, or nil. A hit refreshes the
// entry's recency.
func (c *PlanCache) Get(sig string) *core.Plan {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[sig]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(planCacheItem).plan
}

// Put stores a plan under the signature, evicting the least recently used
// entry when the cache is full.
func (c *PlanCache) Put(sig string, plan *core.Plan) {
	if c == nil || plan == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[sig]; ok {
		c.lru.MoveToFront(el)
		el.Value = planCacheItem{key: sig, plan: plan}
		return
	}
	c.entries[sig] = c.lru.PushFront(planCacheItem{key: sig, plan: plan})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(planCacheItem).key)
	}
}

// Stats reports cumulative hits and misses and the current entry count.
func (c *PlanCache) Stats() (hits, misses int64, entries int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.lru.Len()
}
