package engine

import (
	"math/rand"
	"strings"
	"testing"

	"dmac/internal/dist"
	"dmac/internal/matrix"
	"dmac/internal/obs"
)

// TestRunTraced checks the span structure one traced Run emits: a run span
// carrying the plan-cache outcome, a stage span per stage, an op span per
// operator, and comm spans whose byte sums match the run's metrics exactly.
func TestRunTraced(t *testing.T) {
	e := New(DMac, testConfig(), tBS)
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	e.SetObserver(tr, reg)
	bindGNMF(t, e)
	prog := gnmfProgram(0.3)

	m, err := e.Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	var runs, stages, ops int
	var commBytes int64
	var commEvents int
	for _, s := range spans {
		switch {
		case s.Cat == "engine" && s.Name == "run":
			runs++
			if a, ok := s.Attr("plan_cache"); !ok || a.Str != "miss" {
				t.Errorf("first run plan_cache attr = %+v, want miss", a)
			}
			if s.Parent != 0 {
				t.Errorf("run span has parent %d", s.Parent)
			}
		case s.Cat == "engine" && strings.HasPrefix(s.Name, "stage "):
			stages++
		case s.Cat == "op":
			ops++
			if _, ok := s.Attr("stage"); !ok {
				t.Errorf("op span %q has no stage attr", s.Name)
			}
		case s.Cat == "comm":
			commEvents++
			a, ok := s.Attr("bytes")
			if !ok {
				t.Fatalf("comm span %q has no bytes attr", s.Name)
			}
			commBytes += a.Int
		}
	}
	if runs != 1 {
		t.Fatalf("got %d run spans, want 1", runs)
	}
	if stages != m.Stages {
		t.Fatalf("got %d stage spans, want %d", stages, m.Stages)
	}
	if ops == 0 {
		t.Fatal("no op spans recorded")
	}
	if commBytes != m.CommBytes {
		t.Fatalf("trace comm bytes = %d, Metrics.CommBytes = %d", commBytes, m.CommBytes)
	}
	if commEvents != m.CommEvents {
		t.Fatalf("trace comm events = %d, Metrics.CommEvents = %d", commEvents, m.CommEvents)
	}

	// Re-running the program converges the variable schemes and then hits
	// the plan cache (run 2 re-plans because schemes moved; run 3 hits);
	// counters and the run span attribute must agree with PlanCacheStats.
	for i := 0; i < 2; i++ {
		if _, err := e.Run(prog, nil); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := e.PlanCacheStats()
	snap := reg.Snapshot()
	if snap.Counters["plan.cache.hits"] != int64(hits) || snap.Counters["plan.cache.misses"] != int64(misses) {
		t.Fatalf("cache counters hits=%d misses=%d, PlanCacheStats=(%d, %d)",
			snap.Counters["plan.cache.hits"], snap.Counters["plan.cache.misses"], hits, misses)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	var hitRuns int
	for _, s := range tr.Spans() {
		if s.Cat == "engine" && s.Name == "run" {
			if a, ok := s.Attr("plan_cache"); ok && a.Str == "hit" {
				hitRuns++
			}
		}
	}
	if hitRuns != 1 {
		t.Fatalf("got %d cache-hit run spans, want 1", hitRuns)
	}
	if snap.Counters["op.compute.count"] == 0 {
		t.Fatal("op.compute.count not incremented")
	}
	if h, ok := snap.Histograms["op.compute.seconds"]; !ok || h.Count == 0 {
		t.Fatal("op.compute.seconds histogram empty")
	}
}

// TestMetricsPerStage checks the per-stage attribution satellite: stage
// rows partition the run totals exactly (bytes, events, FLOPs) and separate
// modelled network time from modelled compute time.
func TestMetricsPerStage(t *testing.T) {
	e := New(DMac, testConfig(), tBS)
	bindGNMF(t, e)
	m, err := e.Run(gnmfProgram(0.3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerStage) == 0 {
		t.Fatal("PerStage empty on a distributed run")
	}
	var bytes int64
	var events int
	var flops, wall, network, compute float64
	for i, st := range m.PerStage {
		if i > 0 && m.PerStage[i-1].Stage >= st.Stage {
			t.Fatalf("PerStage not sorted: %+v", m.PerStage)
		}
		bytes += st.CommBytes
		events += st.CommEvents
		flops += st.FLOPs
		wall += st.WallSeconds
		network += st.NetworkSeconds
		compute += st.ComputeSeconds
	}
	if bytes != m.CommBytes {
		t.Errorf("PerStage bytes sum = %d, CommBytes = %d", bytes, m.CommBytes)
	}
	if events != m.CommEvents {
		t.Errorf("PerStage events sum = %d, CommEvents = %d", events, m.CommEvents)
	}
	if flops != m.FLOPs {
		t.Errorf("PerStage FLOPs sum = %v, FLOPs = %v", flops, m.FLOPs)
	}
	if wall <= 0 || wall > m.WallSeconds {
		t.Errorf("PerStage wall sum = %v, run wall = %v", wall, m.WallSeconds)
	}
	if network <= 0 {
		t.Error("no stage reports modelled network time despite communication")
	}
	if compute <= 0 {
		t.Error("no stage reports modelled compute time")
	}
	// Metrics.Add must merge PerStage by stage, not concatenate.
	total := m
	total.Add(m)
	if len(total.PerStage) != len(m.PerStage) {
		t.Fatalf("Add grew PerStage to %d rows, want %d", len(total.PerStage), len(m.PerStage))
	}
	if total.PerStage[0].CommBytes != 2*m.PerStage[0].CommBytes {
		t.Fatal("Add did not accumulate per-stage bytes")
	}
}

// TestBroadcastShuffleSplit checks CommEvents is partitioned exactly into
// Broadcasts + Shuffles on a plan that exercises both.
func TestBroadcastShuffleSplit(t *testing.T) {
	e := New(DMac, testConfig(), tBS)
	bindGNMF(t, e)
	m, err := e.Run(gnmfProgram(0.3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.CommEvents == 0 {
		t.Fatal("plan moved no data; test needs communication")
	}
	if m.Broadcasts+m.Shuffles != m.CommEvents {
		t.Fatalf("Broadcasts(%d) + Shuffles(%d) != CommEvents(%d)",
			m.Broadcasts, m.Shuffles, m.CommEvents)
	}
	if m.Broadcasts == 0 {
		t.Error("GNMF plan should broadcast at least one small operand")
	}
	if m.Shuffles == 0 {
		t.Error("GNMF plan should shuffle at least once")
	}
}

// TestRunTracedWithFaults checks the retry/recovery episode spans: a killed
// worker produces more than one attempt span, a recover span, retry
// counters, and recovery comm spans whose bytes match RecoveryBytes.
func TestRunTracedWithFaults(t *testing.T) {
	cfg := testConfig()
	cfg.Faults = dist.FaultPlan{Events: []dist.FaultEvent{
		{Stage: 1, Worker: 1, Attempt: 0, Kind: dist.FaultKillBoundary},
	}}
	e := New(DMac, cfg, tBS)
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	e.SetObserver(tr, reg)
	bindGNMF(t, e)
	m, err := e.Run(gnmfProgram(0.3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Retries == 0 {
		t.Fatal("fault plan injected no retry")
	}
	var attempts, recovers int
	var recoveryBytes int64
	for _, s := range tr.Spans() {
		switch {
		case s.Cat == "engine" && s.Name == "attempt":
			attempts++
		case s.Cat == "engine" && s.Name == "recover":
			recovers++
		case s.Cat == "comm" && s.Name == "recovery":
			a, _ := s.Attr("bytes")
			recoveryBytes += a.Int
		}
	}
	if attempts <= m.Stages {
		t.Fatalf("got %d attempt spans over %d stages; retry not traced", attempts, m.Stages)
	}
	if recovers == 0 {
		t.Fatal("no recover span recorded")
	}
	if recoveryBytes != m.RecoveryBytes {
		t.Fatalf("recovery span bytes = %d, Metrics.RecoveryBytes = %d", recoveryBytes, m.RecoveryBytes)
	}
	if got := reg.Counter("fault.retries").Value(); got != int64(m.Retries) {
		t.Fatalf("fault.retries counter = %d, Metrics.Retries = %d", got, m.Retries)
	}
}

// TestUntracedRunUnchanged pins that attaching no observer changes nothing:
// results and metrics equal a traced run's (determinism guard for the
// zero-overhead claim).
func TestUntracedRunUnchanged(t *testing.T) {
	run := func(observe bool) (Metrics, float64) {
		e := New(DMac, testConfig(), tBS)
		if observe {
			e.SetObserver(obs.NewTracer(), obs.NewRegistry())
		}
		bindGNMF(t, e)
		m, err := e.Run(gnmfProgram(0.3), nil)
		if err != nil {
			t.Fatal(err)
		}
		h, _ := e.Grid("H")
		return m, h.At(0, 0)
	}
	mOff, hOff := run(false)
	mOn, hOn := run(true)
	if hOff != hOn {
		t.Fatalf("observer changed results: %v != %v", hOff, hOn)
	}
	if mOff.CommBytes != mOn.CommBytes || mOff.CommEvents != mOn.CommEvents ||
		mOff.ModelSeconds != mOn.ModelSeconds || mOff.FLOPs != mOn.FLOPs {
		t.Fatalf("observer changed metrics: %+v != %+v", mOff, mOn)
	}
}

// BenchmarkRunTracing measures the overhead of the observability layer on a
// full Run: "off" is the nil-observer fast path the <2% overhead budget
// applies to.
func BenchmarkRunTracing(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			e := New(DMac, testConfig(), tBS)
			if mode == "on" {
				e.SetObserver(obs.NewTracer(), obs.NewRegistry())
			}
			rng := rand.New(rand.NewSource(42))
			binds := map[string]*matrix.Grid{
				"V": randSparseGrid(rng, tRows, tCols, tBS, 0.3),
				"W": randDenseGrid(rng, tRows, tK, tBS),
				"H": randDenseGrid(rng, tK, tCols, tBS),
			}
			for name, g := range binds {
				if err := e.Bind(name, g); err != nil {
					b.Fatal(err)
				}
			}
			prog := gnmfProgram(0.3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(prog, nil); err != nil {
					b.Fatal(err)
				}
				if mode == "on" {
					e.Tracer().Reset()
				}
			}
		})
	}
}
