package engine

import (
	"math"
	"math/rand"
	"testing"

	"dmac/internal/dep"
	"dmac/internal/dist"
	"dmac/internal/expr"
	"dmac/internal/matrix"
)

const (
	tRows = 30 // movies
	tCols = 40 // users
	tK    = 5  // factor
	tBS   = 7  // block size
)

func testConfig() dist.Config {
	return dist.Config{Workers: 4, LocalParallelism: 2}
}

func randDenseGrid(rng *rand.Rand, rows, cols, bs int) *matrix.Grid {
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = rng.Float64() + 0.1 // positive, GNMF-friendly
	}
	return matrix.FromDense(rows, cols, bs, data)
}

func randSparseGrid(rng *rand.Rand, rows, cols, bs int, s float64) *matrix.Grid {
	var coords []matrix.Coord
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < s {
				coords = append(coords, matrix.Coord{Row: i, Col: j, Val: rng.Float64() + 0.5})
			}
		}
	}
	return matrix.FromCoords(rows, cols, bs, coords)
}

// gnmfProgram builds one full GNMF iteration (Code 1): the H update followed
// by the W update.
func gnmfProgram(vSparsity float64) *expr.Program {
	p := expr.NewProgram()
	V := p.Var("V", tRows, tCols, vSparsity)
	W := p.Var("W", tRows, tK, 1)
	H := p.Var("H", tK, tCols, 1)
	// H = H * (Wᵀ V) / (Wᵀ W H)
	WtV := p.Mul(W.T(), V)
	WtW := p.Mul(W.T(), W)
	WtWH := p.Mul(WtW, H)
	newH := p.CellDiv(p.CellMul(H, WtV), WtWH)
	// W = W * (V Hᵀ) / (W H Hᵀ)  — uses the updated H, as in Code 1.
	VHt := p.Mul(V, newH.T())
	HHt := p.Mul(newH, newH.T())
	WHHt := p.Mul(W, HHt)
	newW := p.CellDiv(p.CellMul(W, VHt), WHHt)
	p.Assign("H", newH)
	p.Assign("W", newW)
	return p
}

// refGNMFIteration computes one GNMF iteration sequentially.
func refGNMFIteration(v, w, h *matrix.Grid) (*matrix.Grid, *matrix.Grid) {
	mul := func(a, b *matrix.Grid) *matrix.Grid {
		g, err := matrix.MulGrid(a, b)
		if err != nil {
			panic(err)
		}
		return g
	}
	cell := func(op matrix.BinOp, a, b *matrix.Grid) *matrix.Grid {
		g, err := matrix.CellwiseGrid(op, a, b)
		if err != nil {
			panic(err)
		}
		return g
	}
	wt := w.Transpose()
	newH := cell(matrix.OpCellDiv, cell(matrix.OpCellMul, h, mul(wt, v)), mul(mul(wt, w), h))
	ht := newH.Transpose()
	newW := cell(matrix.OpCellDiv, cell(matrix.OpCellMul, w, mul(v, ht)), mul(w, mul(newH, ht)))
	return newH, newW
}

func bindGNMF(t *testing.T, e *Engine) (v, w, h *matrix.Grid) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	v = randSparseGrid(rng, tRows, tCols, tBS, 0.3)
	w = randDenseGrid(rng, tRows, tK, tBS)
	h = randDenseGrid(rng, tK, tCols, tBS)
	for name, g := range map[string]*matrix.Grid{"V": v, "W": w, "H": h} {
		if err := e.Bind(name, g.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	return v, w, h
}

func TestEnginesAgreeOnGNMF(t *testing.T) {
	const iters = 3
	// Reference.
	refV, refW, refH := func() (*matrix.Grid, *matrix.Grid, *matrix.Grid) {
		e := New(Local, testConfig(), tBS)
		return bindGNMF(t, e)
	}()
	wantW, wantH := refW, refH
	for i := 0; i < iters; i++ {
		wantH, wantW = refGNMFIteration(refV, wantW, wantH)
	}

	for _, planner := range []Planner{DMac, SystemMLS, Local} {
		e := New(planner, testConfig(), tBS)
		bindGNMF(t, e)
		prog := gnmfProgram(0.3)
		for i := 0; i < iters; i++ {
			if _, err := e.Run(prog, nil); err != nil {
				t.Fatalf("%s iteration %d: %v", planner, i, err)
			}
		}
		gotH, ok := e.Grid("H")
		if !ok {
			t.Fatalf("%s: H not materialized", planner)
		}
		gotW, _ := e.Grid("W")
		if !matrix.GridEqual(gotH, wantH, 1e-8) {
			t.Errorf("%s: H differs from reference", planner)
		}
		if !matrix.GridEqual(gotW, wantW, 1e-8) {
			t.Errorf("%s: W differs from reference", planner)
		}
	}
}

func TestDMacCommunicatesLessThanBaseline(t *testing.T) {
	var comm [2]int64
	for i, planner := range []Planner{DMac, SystemMLS} {
		e := New(planner, testConfig(), tBS)
		bindGNMF(t, e)
		prog := gnmfProgram(0.3)
		var total Metrics
		for it := 0; it < 3; it++ {
			m, err := e.Run(prog, nil)
			if err != nil {
				t.Fatal(err)
			}
			total.Add(m)
		}
		comm[i] = total.CommBytes
		if total.Stages == 0 || total.CommEvents == 0 {
			t.Errorf("%s: missing metrics: %+v", planner, total)
		}
	}
	if comm[0] >= comm[1] {
		t.Errorf("DMac comm %d >= SystemML-S comm %d", comm[0], comm[1])
	}
	// The paper reports ~27x on GNMF; on this tiny instance demand at
	// least 2x.
	if comm[1] < 2*comm[0] {
		t.Errorf("expected >= 2x communication gap, got DMac=%d SystemML-S=%d", comm[0], comm[1])
	}
}

func TestLocalEngineNeverCommunicates(t *testing.T) {
	e := New(Local, testConfig(), tBS)
	bindGNMF(t, e)
	m, err := e.Run(gnmfProgram(0.3), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.CommBytes != 0 || m.CommEvents != 0 {
		t.Errorf("local engine communicated: %+v", m)
	}
	if m.FLOPs <= 0 || m.ModelSeconds <= 0 {
		t.Errorf("local engine should model compute: %+v", m)
	}
}

func TestSessionSchemesCarryAcrossIterations(t *testing.T) {
	e := New(DMac, testConfig(), tBS)
	bindGNMF(t, e)
	prog := gnmfProgram(0.3)
	m1, err := e.Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	// After the first run H and W must be cached with concrete schemes.
	for _, name := range []string{"H", "W"} {
		schemes := e.VarSchemes(name)
		if len(schemes) == 0 {
			t.Fatalf("%s has no cached schemes", name)
		}
		for _, s := range schemes {
			if s == dep.SchemeNone {
				t.Errorf("%s cached hash-partitioned after a DMac run", name)
			}
		}
	}
	// Later iterations must not communicate more than the first (scheme
	// reuse): in particular V is never repartitioned again.
	m2, err := e.Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m2.CommBytes > m1.CommBytes {
		t.Errorf("iteration 2 comm %d > iteration 1 comm %d", m2.CommBytes, m1.CommBytes)
	}
}

func TestScalarParamsAndAggregates(t *testing.T) {
	for _, planner := range []Planner{DMac, SystemMLS, Local} {
		e := New(planner, testConfig(), 4)
		rng := rand.New(rand.NewSource(7))
		r := randDenseGrid(rng, 16, 1, 4)
		if err := e.Bind("r", r.Clone()); err != nil {
			t.Fatal(err)
		}
		p := expr.NewProgram()
		rv := p.Var("r", 16, 1, 1)
		scaled := p.ScalarParam(matrix.ScalarMul, rv, "alpha")
		rr := p.CellMul(scaled, scaled)
		p.Sum("norm", rr)
		rtr := p.Mul(rv.T(), rv)
		p.Value("dot", rtr)
		p.Norm2("n2", rv)
		p.Assign("r2", scaled)
		if _, err := e.Run(p, map[string]float64{"alpha": 2}); err != nil {
			t.Fatalf("%s: %v", planner, err)
		}
		wantDot := 0.0
		for i := 0; i < 16; i++ {
			wantDot += r.At(i, 0) * r.At(i, 0)
		}
		if got, ok := e.Scalar("norm"); !ok || math.Abs(got-4*wantDot) > 1e-9 {
			t.Errorf("%s: norm = %v, want %v", planner, got, 4*wantDot)
		}
		if got, _ := e.Scalar("dot"); math.Abs(got-wantDot) > 1e-9 {
			t.Errorf("%s: dot = %v, want %v", planner, got, wantDot)
		}
		if got, _ := e.Scalar("n2"); math.Abs(got-math.Sqrt(wantDot)) > 1e-9 {
			t.Errorf("%s: n2 = %v, want %v", planner, got, math.Sqrt(wantDot))
		}
		g, ok := e.Grid("r2")
		if !ok {
			t.Fatalf("%s: r2 missing", planner)
		}
		if math.Abs(g.At(3, 0)-2*r.At(3, 0)) > 1e-12 {
			t.Errorf("%s: r2 wrong", planner)
		}
		// Missing parameter must fail.
		if _, err := e.Run(p, nil); err == nil {
			t.Errorf("%s: expected missing-parameter error", planner)
		}
	}
}

func TestTransposedAssignment(t *testing.T) {
	e := New(DMac, testConfig(), 4)
	rng := rand.New(rand.NewSource(9))
	a := randDenseGrid(rng, 8, 12, 4)
	if err := e.Bind("A", a.Clone()); err != nil {
		t.Fatal(err)
	}
	p := expr.NewProgram()
	av := p.Var("A", 8, 12, 1)
	doubled := p.Scalar(matrix.ScalarMul, av, 2)
	p.Assign("At2", doubled.T())
	if _, err := e.Run(p, nil); err != nil {
		t.Fatal(err)
	}
	g, ok := e.Grid("At2")
	if !ok {
		t.Fatal("At2 missing")
	}
	if g.Rows() != 12 || g.Cols() != 8 {
		t.Fatalf("At2 shape %dx%d", g.Rows(), g.Cols())
	}
	if math.Abs(g.At(5, 2)-2*a.At(2, 5)) > 1e-12 {
		t.Error("transposed assignment wrong values")
	}
}

func TestRunErrors(t *testing.T) {
	e := New(DMac, testConfig(), 4)
	p := expr.NewProgram()
	v := p.Var("missing", 4, 4, 1)
	p.Assign("X", v)
	if _, err := e.Run(p, nil); err == nil {
		t.Error("expected error for unbound variable")
	}
	// Shape mismatch between binding and program declaration.
	if err := e.Bind("A", matrix.NewDenseGrid(4, 5, 4)); err != nil {
		t.Fatal(err)
	}
	p2 := expr.NewProgram()
	a := p2.Var("A", 5, 4, 1)
	p2.Assign("X", a)
	if _, err := e.Run(p2, nil); err == nil {
		t.Error("expected shape-mismatch error")
	}
	// Wrong block size at bind time.
	if err := e.Bind("B", matrix.NewDenseGrid(4, 4, 3)); err == nil {
		t.Error("expected block-size error")
	}
}

func TestPlannerStringsAndPlanExplain(t *testing.T) {
	if DMac.String() != "DMac" || SystemMLS.String() != "SystemML-S" || Local.String() != "R" {
		t.Error("planner names wrong")
	}
	e := New(DMac, testConfig(), tBS)
	bindGNMF(t, e)
	plan, err := e.Plan(gnmfProgram(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages < 2 {
		t.Errorf("GNMF plan has %d stages", plan.Stages)
	}
	eLocal := New(Local, testConfig(), tBS)
	if _, err := eLocal.Plan(gnmfProgram(0.3)); err == nil {
		t.Error("local engine should not produce distributed plans")
	}
}

func TestStragglerSlowsComputeNotComm(t *testing.T) {
	run := func(cfg dist.Config) (Metrics, *matrix.Grid) {
		e := New(DMac, cfg, tBS)
		bindGNMF(t, e)
		m, err := e.Run(gnmfProgram(0.3), nil)
		if err != nil {
			t.Fatal(err)
		}
		h, _ := e.Grid("H")
		return m, h
	}
	base, hBase := run(testConfig())
	slowCfg := testConfig()
	slowCfg.Stragglers = map[int]float64{1: 4}
	slow, hSlow := run(slowCfg)
	if slow.ModelSeconds <= base.ModelSeconds {
		t.Errorf("straggler did not slow the model: %v vs %v", slow.ModelSeconds, base.ModelSeconds)
	}
	if slow.CommBytes != base.CommBytes || slow.FLOPs != base.FLOPs {
		t.Error("straggler changed communication or work accounting")
	}
	if !matrix.GridEqual(hBase, hSlow, 0) {
		t.Error("straggler changed results")
	}
}

func TestPlanCacheReuseAndInvalidation(t *testing.T) {
	e := New(DMac, testConfig(), tBS)
	bindGNMF(t, e)
	prog := gnmfProgram(0.3)
	for i := 0; i < 4; i++ {
		if _, err := e.Run(prog, nil); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := e.PlanCacheStats()
	// Iteration 1 plans against hash-partitioned vars, iteration 2 against
	// the newly cached schemes; from then on the signature is stable.
	if misses > 2 {
		t.Errorf("misses = %d, want <= 2 (plan should be reused once schemes stabilize)", misses)
	}
	if hits < 2 {
		t.Errorf("hits = %d, want >= 2", hits)
	}
	// Cached plans must still produce correct results (covered by
	// TestEnginesAgreeOnGNMF running 3 iterations) and ablation changes
	// must invalidate the cache.
	e.SetAblation(true, false, false)
	if _, err := e.Run(prog, nil); err != nil {
		t.Fatal(err)
	}
	_, misses2 := e.PlanCacheStats()
	if misses2 <= misses {
		t.Error("SetAblation did not invalidate the plan cache")
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{WallSeconds: 1, ModelSeconds: 2, CommBytes: 10, CommEvents: 1, FLOPs: 5, Stages: 3,
		StageBytes: map[int]int64{1: 10}}
	b := Metrics{WallSeconds: 2, ModelSeconds: 1, CommBytes: 20, CommEvents: 2, FLOPs: 7, Stages: 2,
		StageBytes: map[int]int64{1: 5, 2: 20}}
	a.Add(b)
	if a.WallSeconds != 3 || a.ModelSeconds != 3 || a.CommBytes != 30 || a.CommEvents != 3 || a.FLOPs != 12 {
		t.Errorf("Add wrong: %+v", a)
	}
	if a.Stages != 3 {
		t.Errorf("Stages = %d, want max 3", a.Stages)
	}
	if a.StageBytes[1] != 15 || a.StageBytes[2] != 20 {
		t.Errorf("StageBytes = %v", a.StageBytes)
	}
	var zero Metrics
	zero.Add(b)
	if zero.CommBytes != 20 {
		t.Error("Add into zero value failed")
	}
}
