package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"dmac/internal/matrix"
)

// TestEngineReuseAcrossJobs is the engine-reuse regression test: a session
// that ran one job, was Reset, and was re-bound for an unrelated job must
// behave exactly like a fresh engine — no stale variables, scalars, plans or
// base context may leak from the first job into the second.
func TestEngineReuseAcrossJobs(t *testing.T) {
	reused := New(DMac, testConfig(), tBS)
	bindGNMF(t, reused)
	prog := gnmfProgram(0.3)
	if _, err := reused.Run(prog, nil); err != nil {
		t.Fatal(err)
	}
	// Poison the session with everything a sloppy pool would leak: a scalar,
	// a cancelled base context, and the (pointer-keyed) plan cache warmed.
	reused.SetScalar("leak", 123)
	poisoned, cancel := context.WithCancel(context.Background())
	cancel()
	reused.SetBaseContext(poisoned)

	reused.Reset()

	if _, ok := reused.Scalar("leak"); ok {
		t.Error("Reset kept a driver scalar from the previous job")
	}
	if _, ok := reused.Grid("W"); ok {
		t.Error("Reset kept a session variable from the previous job")
	}
	if hits, misses := reused.PlanCacheStats(); hits+misses == 0 {
		t.Error("plan cache counters should survive Reset (they are engine stats, not session state)")
	}

	// Job two: different data under the same names. The reused engine must
	// agree bit-for-bit with a fresh engine running only job two — and must
	// not observe the poisoned base context.
	fresh := New(DMac, testConfig(), tBS)
	rng1, rng2 := rand.New(rand.NewSource(99)), rand.New(rand.NewSource(99))
	for _, b := range []struct {
		e   *Engine
		rng *rand.Rand
	}{{reused, rng1}, {fresh, rng2}} {
		v := randSparseGrid(b.rng, tRows, tCols, tBS, 0.2)
		w := randDenseGrid(b.rng, tRows, tK, tBS)
		h := randDenseGrid(b.rng, tK, tCols, tBS)
		for name, g := range map[string]*matrix.Grid{"V": v, "W": w, "H": h} {
			if err := b.e.Bind(name, g); err != nil {
				t.Fatal(err)
			}
		}
	}
	prog2 := gnmfProgram(0.2)
	for i := 0; i < 2; i++ {
		if _, err := reused.Run(prog2, nil); err != nil {
			t.Fatalf("reused engine after Reset: %v", err)
		}
		if _, err := fresh.Run(prog2, nil); err != nil {
			t.Fatalf("fresh engine: %v", err)
		}
	}
	for _, name := range []string{"W", "H"} {
		got, ok1 := reused.Grid(name)
		want, ok2 := fresh.Grid(name)
		if !ok1 || !ok2 || !matrix.GridEqual(got, want, 0) {
			t.Errorf("%s diverged between reused and fresh engine", name)
		}
	}
}

// TestSharedPlanCacheAcrossEngines checks the cross-engine plan cache: a
// second engine submitting a structurally identical but freshly built program
// reuses the first engine's plan (no regeneration) and still computes
// bit-identical results.
func TestSharedPlanCacheAcrossEngines(t *testing.T) {
	shared := NewPlanCache(16)
	run := func(e *Engine) {
		t.Helper()
		bindGNMF(t, e)
		if _, err := e.Run(gnmfProgram(0.3), nil); err != nil {
			t.Fatal(err)
		}
	}
	e1 := New(DMac, testConfig(), tBS)
	e1.SetSharedPlanCache(shared)
	run(e1)
	if _, misses, _ := shared.Stats(); misses == 0 {
		t.Fatal("first engine should miss the shared cache")
	}

	e2 := New(DMac, testConfig(), tBS)
	e2.SetSharedPlanCache(shared)
	run(e2)
	hits, _, entries := shared.Stats()
	if hits == 0 {
		t.Error("second engine should hit the shared cache for an identical program")
	}
	if entries == 0 {
		t.Error("shared cache should hold entries")
	}
	if h2, m2 := e2.PlanCacheStats(); h2 == 0 || m2 != 0 {
		t.Errorf("second engine PlanCacheStats = (%d, %d), want shared hit and no regeneration", h2, m2)
	}

	// Differential: shared-plan execution matches an isolated engine.
	solo := New(DMac, testConfig(), tBS)
	run(solo)
	for _, name := range []string{"W", "H"} {
		got, ok1 := e2.Grid(name)
		want, ok2 := solo.Grid(name)
		if !ok1 || !ok2 || !matrix.GridEqual(got, want, 0) {
			t.Errorf("%s diverged under the shared plan cache", name)
		}
	}
}

// TestProgramSignatureDiscriminates pins the signature's sensitivity: a
// rebuilt identical program shares it, while changed shapes, constants or
// assignment names do not.
func TestProgramSignatureDiscriminates(t *testing.T) {
	base := ProgramSignature(gnmfProgram(0.3))
	if got := ProgramSignature(gnmfProgram(0.3)); got != base {
		t.Error("identical rebuild changed the signature")
	}
	if got := ProgramSignature(gnmfProgram(0.5)); got == base {
		t.Error("sparsity change kept the signature")
	}
}

// TestRunCtxCancelSurfacesCanceled covers cancellation propagation: a job
// cancelled while its multi-stage program runs must fail with an error that
// wraps context.Canceled, not a bare stage failure — that is how callers
// (the serve job service) distinguish a cancel from a genuine fault.
func TestRunCtxCancelSurfacesCanceled(t *testing.T) {
	e := New(DMac, testConfig(), tBS)
	bindGNMF(t, e)
	prog := gnmfProgram(0.3)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	var err error
	for i := 0; i < 100000; i++ {
		if _, err = e.RunCtx(ctx, prog, nil); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("run never observed the cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want an error wrapping context.Canceled", err)
	}

	// An already-expired deadline surfaces the same way.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := e.RunCtx(dctx, prog, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline returned %v, want context.DeadlineExceeded", err)
	}
}
