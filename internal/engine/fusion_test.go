package engine

import (
	"math/rand"
	"testing"

	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/obs"
)

// TestMulTransposeFusion: a program whose only transposes feed
// multiplications must materialize no transposed grid — the trans flags ride
// into the kernels, so the executor's transpose counter stays zero — while
// producing the same numbers as the materializing reference.
func TestMulTransposeFusion(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randDenseGrid(rng, tRows, tCols, tBS)

	at := a.Transpose()
	want, err := matrix.MulGrid(at, a)
	if err != nil {
		t.Fatal(err)
	}

	for _, planner := range []Planner{Local, DMac} {
		e := New(planner, testConfig(), tBS)
		if err := e.Bind("A", a.Clone()); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		e.SetObserver(nil, reg)

		p := expr.NewProgram()
		A := p.Var("A", tRows, tCols, 1)
		p.Assign("G", p.Mul(A.T(), A))
		if _, err := e.Run(p, nil); err != nil {
			t.Fatalf("%s: %v", planner, err)
		}
		got, ok := e.Grid("G")
		if !ok {
			t.Fatalf("%s: G not materialized", planner)
		}
		if !matrix.GridEqual(got, want, 1e-9) {
			t.Errorf("%s: t(A)*A differs from materializing reference", planner)
		}
		snap := reg.Snapshot()
		if n := snap.Counters["exec.transpose.count"]; n != 0 {
			t.Errorf("%s: %d transposed grids materialized on the multiply path, want 0", planner, n)
		}
		if n := snap.Counters["kernel.mul.count"]; n == 0 {
			t.Errorf("%s: kernel.mul.count = 0, expected the fused kernel to run", planner)
		}
	}
}
