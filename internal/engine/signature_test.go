package engine

import (
	"strings"
	"testing"

	"dmac/internal/dist"
	"dmac/internal/expr"
	"dmac/internal/rewrite"
	"dmac/internal/workload"
)

func signatureProgram() *expr.Program {
	p := expr.NewProgram()
	a := p.Var("A", 12, 8, 1)
	b := p.Var("B", 8, 12, 1)
	p.Assign("out", p.Mul(a, b))
	return p
}

// Every program signature must carry the version prefix that encodes both
// the serialization format and the rewrite-rule version. A key recorded by a
// binary with a different rule set (or no prefix at all, as produced before
// the rewriter existed) must miss in a shared PlanCache.
func TestProgramSignatureVersionPrefix(t *testing.T) {
	sig := ProgramSignature(signatureProgram())
	prefix := SignaturePrefix()
	if !strings.HasPrefix(sig, prefix) {
		t.Fatalf("signature %q lacks prefix %q", sig, prefix)
	}
	if !strings.Contains(prefix, "rw") {
		t.Fatalf("prefix %q does not encode the rewrite version", prefix)
	}

	pc := NewPlanCache(8)
	e := New(DMac, dist.Config{Workers: 2}, 4)
	plan, err := e.Plan(signatureProgram())
	if err != nil {
		t.Fatal(err)
	}
	pc.Put(sig, plan)
	if pc.Get(sig) == nil {
		t.Fatal("exact signature missed")
	}
	// A legacy key — the same structure serialized without the version
	// prefix — must not be served.
	legacy := strings.TrimPrefix(sig, prefix)
	if pc.Get(legacy) != nil {
		t.Fatal("un-versioned legacy key hit the cache")
	}
	// Neither must a key minted under a different rewrite-rule version.
	other := "ps1;rw999|" + legacy
	if pc.Get(other) != nil {
		t.Fatal("foreign rewrite-version key hit the cache")
	}
}

// Two engines sharing one PlanCache, one with the rewriter attached and one
// without, must never cross-serve plans: the planSignature embeds whether
// the rewrite pass ran, so the same program yields distinct cache keys.
func TestSharedCacheRewriterIsolation(t *testing.T) {
	const bs = 4
	pc := NewPlanCache(16)

	run := func(withRewriter bool) {
		e := New(DMac, dist.Config{Workers: 2, LocalParallelism: 2}, bs)
		e.SetSharedPlanCache(pc)
		if withRewriter {
			e.SetRewriter(rewrite.New())
		}
		if err := e.Bind("A", workload.DenseRandom(1, 12, 8, bs)); err != nil {
			t.Fatal(err)
		}
		if err := e.Bind("B", workload.DenseRandom(2, 8, 12, bs)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(signatureProgram(), nil); err != nil {
			t.Fatal(err)
		}
	}

	run(false)
	hits0, _, entries0 := pc.Stats()
	if hits0 != 0 {
		t.Fatalf("first run hit an empty cache: %d", hits0)
	}
	run(true)
	hits1, _, entries1 := pc.Stats()
	if hits1 != 0 {
		t.Fatalf("rewriter-on engine was served a rewriter-off plan: %d hits", hits1)
	}
	if entries1 <= entries0 {
		t.Fatalf("rewriter-on run did not add its own entry: %d -> %d", entries0, entries1)
	}
	// A second rewriter-off engine does share the rewriter-off entry.
	run(false)
	hits2, _, _ := pc.Stats()
	if hits2 == 0 {
		t.Fatal("identical rewriter-off engines failed to share a plan")
	}
}

// The planSignature must distinguish rewriter-on from rewriter-off sessions
// directly, independent of any program content.
func TestPlanSignatureEncodesRewriter(t *testing.T) {
	p := signatureProgram()
	off := New(DMac, dist.Config{Workers: 2}, 4)
	on := New(DMac, dist.Config{Workers: 2}, 4)
	on.SetRewriter(rewrite.New())
	if off.planSignature(p) == on.planSignature(p) {
		t.Fatalf("plan signatures identical with and without rewriter: %q", off.planSignature(p))
	}
}
