// Package engine executes matrix programs. It offers three engines over the
// same substrate, mirroring the paper's evaluation setup (Section 6.1):
//
//   - DMac: plans with the dependency-aware planner (internal/core.Generate)
//     and keeps the schemes of session variables across program executions,
//     so cross-iteration matrix dependencies are exploited.
//   - SystemML-S: identical runtime and local execution strategy, but plans
//     with core.GenerateSystemMLS — no dependency analysis, every operator
//     repartitions its inputs.
//   - Local: the single-machine in-memory reference ("R" in the paper's
//     figures): the whole program runs on one worker, no communication.
//
// An Engine owns a session: named variables materialized by previous Run
// calls (with their schemes) and named driver scalars produced by aggregate
// operators.
package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"dmac/internal/core"
	"dmac/internal/dep"
	"dmac/internal/dist"
	"dmac/internal/dist/transport"
	"dmac/internal/expr"
	"dmac/internal/matrix"
	"dmac/internal/obs"
	"dmac/internal/rewrite"
)

// Planner selects the planning mode of an engine.
type Planner int

// The three engines compared in the paper's experiments.
const (
	// DMac plans with matrix-dependency analysis (the paper's system).
	DMac Planner = iota
	// SystemMLS is the dependency-oblivious baseline.
	SystemMLS
	// Local is the single-machine in-memory reference.
	Local
)

// String names the planner as in the paper's figures.
func (p Planner) String() string {
	switch p {
	case DMac:
		return "DMac"
	case SystemMLS:
		return "SystemML-S"
	case Local:
		return "R"
	default:
		return fmt.Sprintf("Planner(%d)", int(p))
	}
}

// Metrics reports the cost of one Run.
type Metrics struct {
	// WallSeconds is the measured wall-clock time of the execution.
	WallSeconds float64
	// ModelSeconds is the deterministic modelled time: local compute spread
	// over workers and threads plus network transfer and shuffle latency.
	ModelSeconds float64
	// CommBytes is the data moved across workers.
	CommBytes int64
	// CommEvents counts shuffle/broadcast operations.
	CommEvents int
	// FLOPs is the estimated arithmetic performed.
	FLOPs float64
	// Stages is the number of un-interleaved stages of the executed plan
	// (0 for the local engine).
	Stages int
	// StageBytes maps plan stages to the bytes shuffled into them.
	StageBytes map[int]int64
	// Retries counts stage attempts repeated after worker failures.
	Retries int
	// RecoveryBytes is the share of CommBytes spent re-partitioning dead
	// workers' blocks across survivors after failures.
	RecoveryBytes int64
	// CheckpointBytes and CheckpointSeconds are the durability cost of the
	// run: bytes written to checkpoint snapshots and the measured wall time
	// spent writing them (zero without SetCheckpoint).
	CheckpointBytes   int64
	CheckpointSeconds float64
	// StagesReplayed counts stages re-executed during checkpoint-aware
	// recovery: after a worker failure the run restores the newest valid
	// snapshot and replays only the stages after it, so this is the
	// recomputation a checkpoint saved — or, with no valid checkpoint, the
	// full lineage it had to re-pay.
	StagesReplayed int
	// CorruptionsInjected and CorruptionsDetected count block corruptions
	// fired by the fault injector and those caught by checksum verification
	// at block hand-off; equal counts are the run's integrity invariant.
	CorruptionsInjected int
	CorruptionsDetected int
	// Broadcasts and Shuffles split CommEvents by kind, so strategy choices
	// (replicate vs repartition) are countable per run.
	Broadcasts int
	Shuffles   int
	// WireBytes and WireFrames are the traffic the transport actually put on
	// the wire (payload plus framing), measured rather than modelled. Zero
	// for the in-process transport; over TCP they reconcile with CommBytes
	// up to framing overhead and retransmits.
	WireBytes  int64
	WireFrames int64
	// NetDropsInjected and NetDelaysInjected count network faults fired by
	// the injector: frame drops healed by retransmit and scripted delays
	// charged as stall. Both leave results untouched by construction.
	NetDropsInjected  int
	NetDelaysInjected int
	// PerStage attributes the run to its stages, separating measured wall
	// time, modelled local compute time and modelled network time — the
	// per-stage decomposition the run-level ModelSeconds folds together.
	// Sorted by stage; empty for the local engine.
	PerStage []StageMetrics
}

// StageMetrics is the cost of one stage of one Run.
type StageMetrics struct {
	// Stage is the 1-based un-interleaved stage index.
	Stage int
	// WallSeconds is the measured wall-clock time of the stage (all
	// attempts, recovery included).
	WallSeconds float64
	// ComputeSeconds is the modelled local compute time of the stage: its
	// attributed FLOPs spread over all workers and threads, times the
	// straggler slowdown.
	ComputeSeconds float64
	// NetworkSeconds is the modelled (virtual) network time of the
	// communication feeding the stage: bytes over bandwidth plus per-event
	// shuffle latency.
	NetworkSeconds float64
	// CommBytes and CommEvents count the communication feeding the stage.
	CommBytes  int64
	CommEvents int
	// FLOPs is the arithmetic attributed to the stage.
	FLOPs float64
}

// Add accumulates other into m (for per-iteration totals).
func (m *Metrics) Add(other Metrics) {
	m.WallSeconds += other.WallSeconds
	m.ModelSeconds += other.ModelSeconds
	m.CommBytes += other.CommBytes
	m.CommEvents += other.CommEvents
	m.FLOPs += other.FLOPs
	m.Retries += other.Retries
	m.RecoveryBytes += other.RecoveryBytes
	m.Broadcasts += other.Broadcasts
	m.Shuffles += other.Shuffles
	m.CheckpointBytes += other.CheckpointBytes
	m.CheckpointSeconds += other.CheckpointSeconds
	m.StagesReplayed += other.StagesReplayed
	m.CorruptionsInjected += other.CorruptionsInjected
	m.CorruptionsDetected += other.CorruptionsDetected
	m.WireBytes += other.WireBytes
	m.WireFrames += other.WireFrames
	m.NetDropsInjected += other.NetDropsInjected
	m.NetDelaysInjected += other.NetDelaysInjected
	if other.Stages > m.Stages {
		m.Stages = other.Stages
	}
	if m.StageBytes == nil {
		m.StageBytes = make(map[int]int64)
	}
	for k, v := range other.StageBytes {
		m.StageBytes[k] += v
	}
	byStage := make(map[int]int, len(m.PerStage))
	for i, s := range m.PerStage {
		byStage[s.Stage] = i
	}
	for _, s := range other.PerStage {
		i, ok := byStage[s.Stage]
		if !ok {
			m.PerStage = append(m.PerStage, s)
			byStage[s.Stage] = len(m.PerStage) - 1
			continue
		}
		dst := &m.PerStage[i]
		dst.WallSeconds += s.WallSeconds
		dst.ComputeSeconds += s.ComputeSeconds
		dst.NetworkSeconds += s.NetworkSeconds
		dst.CommBytes += s.CommBytes
		dst.CommEvents += s.CommEvents
		dst.FLOPs += s.FLOPs
	}
	sort.Slice(m.PerStage, func(i, j int) bool { return m.PerStage[i].Stage < m.PerStage[j].Stage })
}

// varState is a session variable: its instances per scheme.
type varState struct {
	rows, cols int
	instances  map[dep.Scheme]*dist.DistMatrix
}

// Engine runs matrix programs and maintains the session between runs.
//
// Concurrency contract: an Engine is a session and must be driven by at most
// one goroutine at a time — Bind, Run/RunCtx, Reset, Grid and the setters all
// touch unsynchronized session state (and RunCtx installs the run's context
// on the cluster's executor for its duration). Run engines in parallel by
// giving each goroutine its own Engine; the serve job service does exactly
// that with a pool of engines, sharing only the concurrency-safe pieces (the
// metrics registry and the shared PlanCache) across them.
type Engine struct {
	planner   Planner
	cluster   *dist.Cluster
	blockSize int
	vars      map[string]*varState
	scalars   map[string]float64
	// ablation flags forwarded to the planner (see core.Config).
	disablePullUp   bool
	disableReassign bool
	disableCPMM     bool
	// planCache memoizes generated plans per program: iterative algorithms
	// run the same Program object every iteration, and once the session
	// schemes stabilize the plan is identical. Keyed by the Program pointer
	// and validated against a signature of the session schemes the program
	// reads.
	planCache map[*expr.Program]planCacheEntry
	cacheHits int
	cacheMiss int
	// shared, when set, is a plan cache shared across engines: keyed by the
	// full plan signature (program structure + session signature), it lets
	// this engine reuse plans generated by other engines for structurally
	// identical programs — the cross-job layer of the serve subsystem.
	shared *PlanCache
	// tracer and metrics observe execution when set (SetObserver); both are
	// valid nil (no-op) receivers.
	tracer  *obs.Tracer
	metrics *obs.Registry
	// rewriter, when set, canonicalizes every program through the algebraic
	// rewrite pass before planning and execution (SetRewriter); rewriteCache
	// memoizes its output per Program pointer, mirroring planCache.
	rewriter     *rewrite.Rewriter
	rewriteCache map[*expr.Program]*rewrite.Result
	// ckpt is the engine's checkpoint manager (nil without SetCheckpoint):
	// runs snapshot live values to disk under its policy and recover from the
	// newest valid snapshot instead of replaying the whole lineage.
	ckpt *checkpointer
	// baseCtx, when set, is the context Run uses in place of Background —
	// how process-level deadlines reach sessions driven through
	// context-oblivious call sites (the bundled applications).
	baseCtx context.Context
}

type planCacheEntry struct {
	sig  string
	plan *core.Plan
}

// PlanCacheStats reports how many Run calls reused a cached plan versus
// regenerated one. Plans served by a shared cache (SetSharedPlanCache) count
// as hits: the engine did not regenerate them.
func (e *Engine) PlanCacheStats() (hits, misses int) { return e.cacheHits, e.cacheMiss }

// SetSharedPlanCache attaches a plan cache shared with other engines (nil
// detaches). On a local plan-cache miss the engine consults it by full plan
// signature before regenerating, and publishes freshly generated plans into
// it. The cache is safe for concurrent use, so one PlanCache may back a whole
// pool of engines.
func (e *Engine) SetSharedPlanCache(pc *PlanCache) { e.shared = pc }

// Reset clears the session for reuse by an unrelated job: bound variables,
// driver scalars, the pointer-keyed plan cache (finished jobs' Program
// objects would otherwise pin plans forever), and the base context installed
// by the previous owner. The cluster, observers, ablation flags, checkpoint
// configuration and the shared plan cache survive — they are the engine's
// infrastructure, not session state.
func (e *Engine) Reset() {
	e.vars = make(map[string]*varState)
	e.scalars = make(map[string]float64)
	e.planCache = nil
	e.rewriteCache = nil
	e.baseCtx = nil
}

// SetRewriter attaches (or with nil, detaches) the algebraic rewrite pass:
// every program handed to Run/RunCtx/Plan is rewritten first, and planning,
// caching and execution all see the rewritten program. Changing the rewriter
// invalidates cached plans and rewrites.
func (e *Engine) SetRewriter(r *rewrite.Rewriter) {
	e.rewriter = r
	e.planCache = nil
	e.rewriteCache = nil
}

// Rewriter returns the attached rewriter (nil when rewriting is off).
func (e *Engine) Rewriter() *rewrite.Rewriter { return e.rewriter }

// rewritten resolves the program the engine actually plans and executes:
// the input itself without a rewriter, otherwise the memoized output of the
// rewrite pass. On a fresh rewrite it records the decisions as span events
// under an "engine/rewrite" span and feeds the rewrite counters. A rewrite
// failure (a rewriter bug, not a user error) falls back to the unrewritten
// program rather than failing the run.
func (e *Engine) rewritten(p *expr.Program) *expr.Program {
	if e.rewriter == nil {
		return p
	}
	if res, ok := e.rewriteCache[p]; ok {
		return res.Program
	}
	span := e.tracer.Start("engine", "rewrite", e.tracer.Scope())
	res, err := e.rewriter.Rewrite(p)
	if err != nil {
		e.metrics.Counter("rewrite.errors").Inc()
		e.tracer.End(span, obs.String("error", err.Error()))
		res = &rewrite.Result{Program: p}
	} else {
		for _, d := range res.Decisions {
			e.tracer.Event("rewrite", d.Rule, span,
				obs.String("node", d.Node),
				obs.String("detail", d.Detail),
				obs.Float64("flops_saved", d.FLOPsSaved),
				obs.Int64("bytes_saved", d.BytesSaved))
			e.metrics.Counter("rewrite.applied").Inc()
			e.metrics.Counter("rewrite.applied." + d.Rule).Inc()
		}
		e.metrics.Counter("rewrite.programs").Inc()
		e.metrics.Counter("rewrite.predicted.flops_saved").Add(int64(res.FLOPsSaved()))
		e.metrics.Counter("rewrite.predicted.bytes_saved").Add(res.BytesSaved())
		e.tracer.End(span,
			obs.Int64("applied", int64(len(res.Decisions))),
			obs.Float64("cost_before", res.CostBefore),
			obs.Float64("cost_after", res.CostAfter))
	}
	if e.rewriteCache == nil {
		e.rewriteCache = make(map[*expr.Program]*rewrite.Result)
	}
	e.rewriteCache[p] = res
	return res.Program
}

// planSignature captures everything outside the program that plan
// generation depends on: the cached schemes of the variables the program
// reads, the worker count, the ablation flags, whether (and under which rule
// version) the rewrite pass canonicalized the program, and the inputs of the
// multiply-algorithm pick — block size and kernel worker count — so a plan
// whose operators were priced for one kernel configuration can never be
// served under another.
func (e *Engine) planSignature(p *expr.Program) string {
	rw := 0
	if e.rewriter != nil {
		rw = rewrite.Version
	}
	var b strings.Builder
	fmt.Fprintf(&b, "w=%d;pu=%v;ra=%v;cp=%v;rw=%d;bs=%d;kw=%d;",
		e.cluster.Workers(), e.disablePullUp, e.disableReassign, e.disableCPMM, rw,
		e.blockSize, matrix.KernelWorkers())
	for _, n := range p.Nodes() {
		if n.Kind != expr.KindLoad && n.Kind != expr.KindVar {
			continue
		}
		fmt.Fprintf(&b, "%s:", n.Name)
		for _, s := range e.VarSchemes(n.Name) {
			b.WriteString(s.String())
		}
		b.WriteByte(';')
	}
	return b.String()
}

// SetAblation toggles the planner heuristics for ablation studies: Pull-Up
// Broadcast, Re-assignment, and the CPMM strategy. Changing the flags
// invalidates cached plans.
func (e *Engine) SetAblation(disablePullUp, disableReassign, disableCPMM bool) {
	e.disablePullUp = disablePullUp
	e.disableReassign = disableReassign
	e.disableCPMM = disableCPMM
	e.planCache = nil
}

// New creates an engine. blockSize is the block side used for all matrices
// in the session (pick with sched.ChooseBlockSize); cfg configures the
// simulated cluster.
func New(planner Planner, cfg dist.Config, blockSize int) *Engine {
	if blockSize <= 0 {
		blockSize = 256
	}
	if planner == Local {
		cfg.Workers = 1
		cfg.WorkerAddrs = nil
	}
	c := dist.NewCluster(cfg)
	if len(cfg.WorkerAddrs) > 0 {
		// Worker addresses turn the data plane real: blocks travel to the
		// listed dmacworker processes over TCP. The cost model is unchanged —
		// measured wire traffic lands next to it in Metrics.WireBytes.
		c.SetTransport(transport.NewTCP(transport.Config{
			Addrs:                cfg.WorkerAddrs,
			DialTimeoutSec:       cfg.DialTimeoutSec,
			IOTimeoutSec:         cfg.IOTimeoutSec,
			HeartbeatIntervalSec: cfg.HeartbeatIntervalSec,
			HeartbeatMisses:      cfg.HeartbeatMisses,
		}))
	}
	return &Engine{
		planner:   planner,
		cluster:   c,
		blockSize: blockSize,
		vars:      make(map[string]*varState),
		scalars:   make(map[string]float64),
	}
}

// Close releases the engine's transport resources (TCP connections and
// heartbeat loops when worker addresses are configured; a no-op for the
// in-process data plane).
func (e *Engine) Close() error { return e.cluster.Close() }

// SetObserver attaches a span tracer and a metrics registry to the engine,
// its cluster, and its local executor. Either may be nil to disable that
// half. With a tracer attached every Run emits a span tree — run → stage →
// attempt → operator, with communication events and task batches hanging
// under the operator that caused them — exportable via the obs package
// (Chrome trace JSON, per-stage table). With a registry attached the engine
// feeds per-operator time histograms and plan-cache/fault counters.
func (e *Engine) SetObserver(t *obs.Tracer, m *obs.Registry) {
	e.tracer = t
	e.metrics = m
	e.cluster.SetObserver(t, m)
}

// Tracer returns the attached tracer (nil when tracing is off).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// MetricsRegistry returns the attached metrics registry (nil when metrics
// are off).
func (e *Engine) MetricsRegistry() *obs.Registry { return e.metrics }

// Planner returns the engine's planning mode.
func (e *Engine) Planner() Planner { return e.planner }

// Cluster exposes the underlying simulated cluster.
func (e *Engine) Cluster() *dist.Cluster { return e.cluster }

// BlockSize returns the session block size.
func (e *Engine) BlockSize() int { return e.blockSize }

// Bind registers an input matrix under a name. The grid must use the
// session block size. Bound data starts hash-partitioned, like a fresh load
// in the paper; program Load/Var leaves with this name resolve to it.
func (e *Engine) Bind(name string, g *matrix.Grid) error {
	if g.BlockSize() != e.blockSize {
		return fmt.Errorf("engine: %s has block size %d, session uses %d", name, g.BlockSize(), e.blockSize)
	}
	e.vars[name] = &varState{
		rows: g.Rows(),
		cols: g.Cols(),
		instances: map[dep.Scheme]*dist.DistMatrix{
			dep.SchemeNone: dist.NewDistMatrix(g, dep.SchemeNone),
		},
	}
	return nil
}

// Scalar returns a driver scalar produced by an aggregate operator, and
// whether it exists.
func (e *Engine) Scalar(name string) (float64, bool) {
	v, ok := e.scalars[name]
	return v, ok
}

// SetScalar pre-sets a driver scalar (rarely needed; parameters are usually
// passed to Run).
func (e *Engine) SetScalar(name string, v float64) { e.scalars[name] = v }

// Grid returns a materialized session variable's data for verification and
// export, and whether the variable exists. Instances are probed in a fixed
// scheme order so repeated calls (and repeated runs) always return the same
// instance — map iteration order must not leak into results.
func (e *Engine) Grid(name string) (*matrix.Grid, bool) {
	vs, ok := e.vars[name]
	if !ok {
		return nil, false
	}
	for _, s := range []dep.Scheme{dep.Row, dep.Col, dep.Broadcast, dep.SchemeNone} {
		if inst, ok := vs.instances[s]; ok {
			// A lazy transpose view is realized here (in place, once): Grid
			// promises blocks in the variable's logical orientation.
			return e.cluster.MaterializedGrid(inst), true
		}
	}
	return nil, false
}

// VarSchemes lists the schemes a session variable is cached with; used to
// build the planner configuration and by tests.
func (e *Engine) VarSchemes(name string) []dep.Scheme {
	vs, ok := e.vars[name]
	if !ok {
		return nil
	}
	out := make([]dep.Scheme, 0, len(vs.instances))
	for _, s := range []dep.Scheme{dep.Row, dep.Col, dep.Broadcast, dep.SchemeNone} {
		if _, ok := vs.instances[s]; ok {
			out = append(out, s)
		}
	}
	return out
}

// planConfig builds the planner view of the current session.
func (e *Engine) planConfig() core.Config {
	vars := make(map[string][]dep.Scheme, len(e.vars))
	for name := range e.vars {
		schemes := e.VarSchemes(name)
		concrete := schemes[:0:0]
		for _, s := range schemes {
			if s != dep.SchemeNone {
				concrete = append(concrete, s)
			}
		}
		if len(concrete) > 0 {
			vars[name] = concrete
		}
		// Variables cached only hash-partitioned are left out: the planner
		// treats unknown variables as hash-partitioned already.
	}
	return core.Config{
		Workers:         e.cluster.Workers(),
		Vars:            vars,
		DisablePullUp:   e.disablePullUp,
		DisableReassign: e.disableReassign,
		DisableCPMM:     e.disableCPMM,
		BlockSize:       e.blockSize,
		Cores:           matrix.KernelWorkers(),
	}
}

// Run plans and executes a program against the session. params provides the
// values of named scalar parameters (expr.ScalarParam). On success the
// program's assignments update the session variables and its scalar outputs
// update the session scalars.
func (e *Engine) Run(p *expr.Program, params map[string]float64) (Metrics, error) {
	return e.RunCtx(e.baseCtx, p, params)
}

// SetBaseContext sets the context Run uses when the caller passes none
// (RunCtx with an explicit context is unaffected). It lets a deadline or
// cancellation reach every run of a session that is driven through
// context-oblivious call sites, such as the bundled applications. A nil
// context restores Background.
func (e *Engine) SetBaseContext(ctx context.Context) { e.baseCtx = ctx }

// RunCtx is Run under a context: cancellation or an expired deadline aborts
// the execution cleanly — between stages at the engine level, and between
// block tasks inside a stage (the executor's workers observe the same
// context) — returning the context's error. A nil context means Background.
func (e *Engine) RunCtx(ctx context.Context, p *expr.Program, params map[string]float64) (Metrics, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	exec := e.cluster.Executor()
	exec.SetContext(ctx)
	defer exec.SetContext(nil)
	// The rewrite pass (when attached) canonicalizes the program first;
	// everything downstream — the local interpreter, plan generation, both
	// plan caches and execution — sees the rewritten program. Caches stay
	// keyed by the caller's Program pointer.
	rp := e.rewritten(p)
	if e.planner == Local {
		return e.runLocal(rp, params)
	}
	sig := e.planSignature(rp)
	var plan *core.Plan
	source := "miss"
	if entry, ok := e.planCache[p]; ok && entry.sig == sig {
		plan = entry.plan
		e.cacheHits++
		source = "hit"
		e.metrics.Counter("plan.cache.hits").Inc()
	} else {
		// On a local miss, try the shared cache before regenerating: another
		// engine may have planned a structurally identical program already.
		// The shared key uses the canonical *rewritten* program, so
		// equivalent-but-differently-written jobs converge on one entry.
		fullSig := ""
		if e.shared != nil {
			fullSig = ProgramSignature(rp) + "|" + sig
			plan = e.shared.Get(fullSig)
		}
		if plan != nil {
			e.cacheHits++
			source = "shared"
			e.metrics.Counter("plan.cache.hits").Inc()
			e.metrics.Counter("plan.cache.shared.hits").Inc()
		} else {
			var err error
			cfg := e.planConfig()
			switch e.planner {
			case DMac:
				plan, err = core.Generate(rp, cfg)
			case SystemMLS:
				plan, err = core.GenerateSystemMLS(rp, cfg)
			default:
				return Metrics{}, fmt.Errorf("engine: unknown planner %d", e.planner)
			}
			if err != nil {
				return Metrics{}, err
			}
			if err := plan.Check(); err != nil {
				return Metrics{}, err
			}
			e.cacheMiss++
			e.metrics.Counter("plan.cache.misses").Inc()
			if e.shared != nil {
				e.shared.Put(fullSig, plan)
				e.metrics.Counter("plan.cache.shared.misses").Inc()
			}
		}
		if e.planCache == nil {
			e.planCache = make(map[*expr.Program]planCacheEntry)
		}
		e.planCache[p] = planCacheEntry{sig: sig, plan: plan}
	}
	before := e.cluster.Net().Snapshot()
	// The run span parents under the tracer's current scope, so a caller that
	// wraps runs in its own span (the serve job service's per-job root span)
	// gets the engine's whole stage tree under it; with no scope set the run
	// stays a root span as before.
	runSpan := e.tracer.Start("engine", "run", e.tracer.Scope(),
		obs.String("planner", e.planner.String()),
		obs.Int64("stages", int64(plan.Stages)),
		obs.Int64("ops", int64(len(plan.Ops))),
		obs.String("plan_cache", source))
	prevScope := e.tracer.SetScope(runSpan)
	start := time.Now()
	stats, err := e.execute(ctx, plan, sig, params)
	e.tracer.SetScope(prevScope)
	if err != nil {
		// A run aborted by its context must surface as that context's error:
		// callers (the serve job service above all) discriminate cancellation
		// from genuine stage failures with errors.Is. Most abort paths already
		// propagate ctx.Err() wrapped; this catches any that replaced it with
		// a stage-failure message.
		if cerr := ctx.Err(); cerr != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("engine: run aborted (%v): %w", err, cerr)
		}
		e.tracer.End(runSpan, obs.String("error", err.Error()))
		return Metrics{}, err
	}
	wall := time.Since(start).Seconds()
	after := e.cluster.Net().Snapshot()
	m := e.metricsDelta(before, after, wall, plan.Stages, stats)
	e.tracer.End(runSpan, obs.Int64("comm_bytes", m.CommBytes))
	return m, nil
}

// Plan returns the plan the engine would execute for a program against the
// current session, without executing it (the dmacplan explain path). Like
// Run, it plans the rewritten program when a rewriter is attached.
func (e *Engine) Plan(p *expr.Program) (*core.Plan, error) {
	rp := e.rewritten(p)
	switch e.planner {
	case DMac:
		return core.Generate(rp, e.planConfig())
	case SystemMLS:
		return core.GenerateSystemMLS(rp, e.planConfig())
	default:
		return nil, fmt.Errorf("engine: planner %s has no distributed plan", e.planner)
	}
}

func (e *Engine) metricsDelta(before, after dist.Snapshot, wall float64, stages int, stats execStats) Metrics {
	stageWall := stats.stageWall
	cfg := e.cluster.Config()
	bytes := after.Bytes - before.Bytes
	events := after.CommEvents - before.CommEvents
	flops := after.FLOPs - before.FLOPs
	stall := after.StallSec - before.StallSec
	threads := float64(cfg.Workers * cfg.LocalParallelism)
	computeSec := func(f float64) float64 {
		return f * cfg.MaxSlowdown() / (threads * cfg.FlopsPerSecPerThread)
	}
	networkSec := func(b int64, ev int) float64 {
		return float64(b)/cfg.BandwidthBytesPerSec + float64(ev)*cfg.ShuffleLatencySec
	}
	model := computeSec(flops) + networkSec(bytes, events) + stall
	stageBytes := make(map[int]int64)
	for k, v := range after.StageBytes {
		if d := v - before.StageBytes[k]; d > 0 {
			stageBytes[k] = d
		}
	}
	// Per-stage attribution: every stage that moved bytes, saw an event,
	// computed, or measured wall time gets a row, with virtual network time
	// and local compute time reported separately.
	stageSet := make(map[int]bool)
	for k := range stageBytes {
		stageSet[k] = true
	}
	for k, v := range after.StageEvents {
		if v-before.StageEvents[k] > 0 {
			stageSet[k] = true
		}
	}
	for k, v := range after.StageFLOPs {
		if v-before.StageFLOPs[k] > 0 {
			stageSet[k] = true
		}
	}
	for k := range stageWall {
		stageSet[k] = true
	}
	perStage := make([]StageMetrics, 0, len(stageSet))
	for k := range stageSet {
		db := stageBytes[k]
		de := after.StageEvents[k] - before.StageEvents[k]
		df := after.StageFLOPs[k] - before.StageFLOPs[k]
		perStage = append(perStage, StageMetrics{
			Stage:          k,
			WallSeconds:    stageWall[k],
			ComputeSeconds: computeSec(df),
			NetworkSeconds: networkSec(db, de),
			CommBytes:      db,
			CommEvents:     de,
			FLOPs:          df,
		})
	}
	sort.Slice(perStage, func(i, j int) bool { return perStage[i].Stage < perStage[j].Stage })
	return Metrics{
		WallSeconds:   wall,
		ModelSeconds:  model,
		CommBytes:     bytes,
		CommEvents:    events,
		Broadcasts:    after.Broadcasts - before.Broadcasts,
		Shuffles:      after.Shuffles - before.Shuffles,
		FLOPs:         flops,
		Stages:        stages,
		StageBytes:    stageBytes,
		PerStage:      perStage,
		Retries:       after.Retries - before.Retries,
		RecoveryBytes: after.RecoveryBytes - before.RecoveryBytes,

		CheckpointBytes:     stats.checkpointBytes,
		CheckpointSeconds:   stats.checkpointSeconds,
		StagesReplayed:      stats.stagesReplayed,
		CorruptionsInjected: after.CorruptionsInjected - before.CorruptionsInjected,
		CorruptionsDetected: after.CorruptionsDetected - before.CorruptionsDetected,
		WireBytes:           after.WireBytes - before.WireBytes,
		WireFrames:          after.WireFrames - before.WireFrames,
		NetDropsInjected:    after.NetDropsInjected - before.NetDropsInjected,
		NetDelaysInjected:   after.NetDelaysInjected - before.NetDelaysInjected,
	}
}
