package workload

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"dmac/internal/expr"
	"dmac/internal/matrix"
)

// Params carries the scalar parameters of a served job (parsed straight from
// the submit request's JSON). Builders read them with defaults and clamps, so
// a malformed or hostile request can size the dataset only within the bounds
// the builder allows.
type Params map[string]float64

// Get returns the named parameter or def.
func (p Params) Get(name string, def float64) float64 {
	if v, ok := p[name]; ok {
		return v
	}
	return def
}

// Int returns the named parameter as an int clamped to [min, max].
func (p Params) Int(name string, def, min, max int) int {
	v := int(p.Get(name, float64(def)))
	if v < min {
		v = min
	}
	if v > max {
		v = max
	}
	return v
}

// Key canonicalizes the parameters for cache keys: sorted name=value pairs.
func (p Params) Key() string {
	names := make([]string, 0, len(p))
	for n := range p {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%g&", n, p[n])
	}
	return b.String()
}

// BuiltJob is a job materialized by a registry builder: seeded deterministic
// inputs, the program to run against them, and the outputs a client reads
// back. Everything is a pure function of (blockSize, params), so two builds
// with the same arguments are bit-identical — which is what lets the serve
// layer cache built jobs across tenants and differentially verify served
// results against isolated runs.
type BuiltJob struct {
	// Inputs are the matrices bound into the session before the first run.
	Inputs map[string]*matrix.Grid
	// Program is the (re)executed program; Iterations is how many times.
	Program    *expr.Program
	Iterations int
	// Params are the scalar parameters passed to every execution.
	Params map[string]float64
	// Outputs are the session variables returned as the job's result;
	// Scalars are the driver scalars returned alongside.
	Outputs []string
	Scalars []string
}

// InputBytes is the memory footprint of the job's bound inputs.
func (b *BuiltJob) InputBytes() int64 {
	var t int64
	for _, g := range b.Inputs {
		t += g.MemBytes()
	}
	return t
}

// EstimatedBytes prices the job for admission control with the planner's
// block memory model (Eq. 2): the bound inputs at their realized size plus
// every non-leaf program value at its worst-case estimated footprint, times
// the iteration count's live set (two generations: the values being computed
// and the session instances they replace).
func (b *BuiltJob) EstimatedBytes(blockSize int) int64 {
	total := b.InputBytes()
	var perIter int64
	for _, n := range b.Program.Nodes() {
		if n.Kind == expr.KindLoad || n.Kind == expr.KindVar || n.Kind.IsAggregate() {
			continue
		}
		perIter += matrix.GridMemBytes(n.Rows, n.Cols, n.Sparsity, blockSize, n.Sparsity < 0.5)
	}
	return total + 2*perIter
}

// Builder materializes a job for one block size and parameter set.
type Builder func(blockSize int, params Params) (*BuiltJob, error)

// RegistryEntry is one named, describable served workload.
type RegistryEntry struct {
	Name        string
	Description string
	Build       Builder
}

// Registry maps served workload names to job builders. It is safe for
// concurrent use; the serve subsystem resolves every submitted job through
// one.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]RegistryEntry
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]RegistryEntry)}
}

// Register adds (or replaces) a workload.
func (r *Registry) Register(name, description string, build Builder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		r.order = append(r.order, name)
	}
	r.entries[name] = RegistryEntry{Name: name, Description: description, Build: build}
}

// Lookup returns the named workload and whether it exists.
func (r *Registry) Lookup(name string) (RegistryEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Names lists the registered workloads in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Build resolves and materializes a named workload.
func (r *Registry) Build(name string, blockSize int, params Params) (*BuiltJob, error) {
	e, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
	return e.Build(blockSize, params)
}

// DefaultRegistry returns the registry of bundled served workloads. Each is
// deterministic in its parameters and exercises a different operator mix:
// PageRank (sparse × dense-vector iteration), Gram (fused transpose-multiply
// with a scalar aggregate), and Blend (dense multiply through an elementwise
// nonlinearity).
func DefaultRegistry() *Registry {
	r := NewRegistry()
	r.Register("pagerank", "PageRank iterations on a seeded power-law graph (params: nodes, degree, iters, seed)", buildPageRank)
	r.Register("gram", "Gram matrix t(V) %*% V of a seeded sparse matrix, with its cell sum (params: rows, cols, sparsity, seed)", buildGram)
	r.Register("blend", "C = sigmoid(A %*% B) over seeded dense factors, with norm2(C) (params: n, k, iters, seed)", buildBlend)
	return r
}

func buildPageRank(blockSize int, params Params) (*BuiltJob, error) {
	nodes := params.Int("nodes", 64, 16, 4096)
	iters := params.Int("iters", 3, 1, 200)
	seed := int64(params.Get("seed", 1))
	degree := params.Get("degree", 3)
	if degree < 1 {
		degree = 1
	}
	adj := PowerLawGraph(seed, nodes, degree, blockSize)
	link := RowNormalize(adj)
	rank := DenseRandom(seed+1, 1, nodes, blockSize)
	rank = matrix.ScalarGrid(matrix.ScalarMul, rank, 1/matrix.SumGrid(rank))
	dData := make([]float64, nodes)
	for i := range dData {
		dData[i] = 1.0 / float64(nodes)
	}
	d := matrix.FromDense(1, nodes, blockSize, dData)

	sparsity := float64(link.NNZ()) / (float64(nodes) * float64(nodes))
	p := expr.NewProgram()
	linkRef := p.Var("link", nodes, nodes, sparsity)
	rankRef := p.Var("rank", 1, nodes, 1)
	dRef := p.Var("D", 1, nodes, 1)
	walked := p.Scalar(matrix.ScalarMul, p.Mul(rankRef, linkRef), 0.85)
	teleport := p.Scalar(matrix.ScalarMul, dRef, 0.15)
	p.Assign("rank", p.Add(walked, teleport))

	return &BuiltJob{
		Inputs:     map[string]*matrix.Grid{"link": link, "rank": rank, "D": d},
		Program:    p,
		Iterations: iters,
		Outputs:    []string{"rank"},
	}, nil
}

func buildGram(blockSize int, params Params) (*BuiltJob, error) {
	rows := params.Int("rows", 48, 8, 4096)
	cols := params.Int("cols", 32, 8, 4096)
	seed := int64(params.Get("seed", 2))
	sparsity := params.Get("sparsity", 0.2)
	if sparsity <= 0 || sparsity > 1 {
		sparsity = 0.2
	}
	v := SparseUniform(seed, rows, cols, blockSize, sparsity)

	real := float64(v.NNZ()) / (float64(rows) * float64(cols))
	p := expr.NewProgram()
	vRef := p.Var("V", rows, cols, real)
	g := p.Mul(vRef.T(), vRef)
	p.Sum("gram_sum", g)
	p.Assign("G", g)

	return &BuiltJob{
		Inputs:     map[string]*matrix.Grid{"V": v},
		Program:    p,
		Iterations: 1,
		Outputs:    []string{"G"},
		Scalars:    []string{"gram_sum"},
	}, nil
}

func buildBlend(blockSize int, params Params) (*BuiltJob, error) {
	n := params.Int("n", 48, 8, 4096)
	k := params.Int("k", 8, 2, 512)
	iters := params.Int("iters", 1, 1, 50)
	seed := int64(params.Get("seed", 3))
	a := DenseRandom(seed, n, k, blockSize)
	b := DenseRandom(seed+1, k, n, blockSize)

	p := expr.NewProgram()
	aRef := p.Var("A", n, k, 1)
	bRef := p.Var("B", k, n, 1)
	c := p.Func(matrix.FuncSigmoid, p.Mul(aRef, bRef))
	p.Norm2("c_norm", c)
	p.Assign("C", c)

	return &BuiltJob{
		Inputs:     map[string]*matrix.Grid{"A": a, "B": b},
		Program:    p,
		Iterations: iters,
		Outputs:    []string{"C"},
		Scalars:    []string{"c_norm"},
	}, nil
}
