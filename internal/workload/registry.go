package workload

import (
	"fmt"

	"dmac/internal/matrix"
)

// GraphSpec describes one of the real-world graphs of Table 3 together with
// a synthetic stand-in recipe.
type GraphSpec struct {
	// Name is the dataset name used in the paper.
	Name string
	// PaperNodes and PaperEdges are the original statistics (Table 3).
	PaperNodes, PaperEdges int64
	// Seed makes the synthetic stand-in deterministic per dataset.
	Seed int64
}

// AvgDegree returns the original average out-degree, which the scaled
// stand-in preserves.
func (s GraphSpec) AvgDegree() float64 {
	return float64(s.PaperEdges) / float64(s.PaperNodes)
}

// ScaledNodes returns the node count at a 1/denominator scale (at least 64).
func (s GraphSpec) ScaledNodes(denominator int) int {
	n := int(s.PaperNodes / int64(denominator))
	if n < 64 {
		n = 64
	}
	return n
}

// Generate builds the synthetic stand-in at the given scale denominator: a
// power-law graph with the original average degree.
func (s GraphSpec) Generate(denominator, blockSize int) GeneratedGraph {
	nodes := s.ScaledNodes(denominator)
	adj := PowerLawGraph(s.Seed, nodes, s.AvgDegree(), blockSize)
	return GeneratedGraph{Spec: s, Nodes: nodes, Edges: adj.NNZ(), Adjacency: adj}
}

// GeneratedGraph is a generated graph with its realized statistics.
type GeneratedGraph struct {
	Spec      GraphSpec
	Nodes     int
	Edges     int
	Adjacency *matrix.Grid
}

// String prints a Table 3 style row for the generated graph.
func (g GeneratedGraph) String() string {
	return fmt.Sprintf("%-12s paper: %9d nodes %11d edges | generated: %7d nodes %9d edges",
		g.Spec.Name, g.Spec.PaperNodes, g.Spec.PaperEdges, g.Nodes, g.Edges)
}

// Graphs is the registry of the four graph datasets of Table 3.
var Graphs = []GraphSpec{
	{Name: "soc-pokec", PaperNodes: 1632803, PaperEdges: 30622564, Seed: 1001},
	{Name: "cit-Patents", PaperNodes: 3774768, PaperEdges: 16518978, Seed: 1002},
	{Name: "LiveJournal", PaperNodes: 4847571, PaperEdges: 68993773, Seed: 1003},
	{Name: "Wikipedia", PaperNodes: 25942254, PaperEdges: 601038301, Seed: 1004},
}

// GraphByName returns the registry entry with the given name.
func GraphByName(name string) (GraphSpec, bool) {
	for _, g := range Graphs {
		if g.Name == name {
			return g, true
		}
	}
	return GraphSpec{}, false
}

// NetflixSpec describes the Netflix ratings dataset used by the GNMF, CF
// and SVD experiments (Section 6): 17770 movies x 480189 users, sparsity
// ~0.01.
type NetflixSpec struct {
	Movies, Users int
	Sparsity      float64
	Seed          int64
}

// Netflix is the registry entry for the Netflix dataset.
var Netflix = NetflixSpec{Movies: 17770, Users: 480189, Sparsity: 0.01, Seed: 2001}

// Scaled generates a Netflix-shaped ratings matrix at 1/denominator scale
// per dimension (sparsity preserved) and returns it with its dimensions.
func (n NetflixSpec) Scaled(denominator, blockSize int) (movies, users int, grid *matrix.Grid) {
	movies = n.Movies / denominator
	users = n.Users / denominator
	if movies < 32 {
		movies = 32
	}
	if users < 32 {
		users = 32
	}
	grid = Ratings(n.Seed, movies, users, blockSize, n.Sparsity)
	return movies, users, grid
}
