// Package workload generates the datasets of the paper's evaluation
// (Section 6.1) as deterministic synthetic equivalents:
//
//   - a random sparse matrix generator (d rows, w columns, sparsity s) —
//     the same generator family the paper uses for its scalability study;
//   - a Netflix-shaped ratings matrix (movies x users, integer ratings);
//   - power-law graphs shaped like the four real-world graphs of Table 3
//     (soc-pokec, cit-Patents, LiveJournal, Wikipedia), exposed through a
//     registry that records the original statistics and scales them down.
//
// All generators are seeded and reproducible: the same arguments always
// produce the same matrix.
package workload

import (
	"math"
	"math/rand"

	"dmac/internal/matrix"
)

// SparseUniform generates a rows x cols matrix with approximately the given
// sparsity; non-zero positions are uniform, values are uniform in [0.5, 1.5)
// (bounded away from zero so products stay well-conditioned).
func SparseUniform(seed int64, rows, cols, blockSize int, sparsity float64) *matrix.Grid {
	rng := rand.New(rand.NewSource(seed))
	target := int(sparsity * float64(rows) * float64(cols))
	coords := make([]matrix.Coord, 0, target)
	seen := make(map[int64]bool, target)
	for len(coords) < target {
		i, j := rng.Intn(rows), rng.Intn(cols)
		key := int64(i)*int64(cols) + int64(j)
		if seen[key] {
			continue
		}
		seen[key] = true
		coords = append(coords, matrix.Coord{Row: i, Col: j, Val: 0.5 + rng.Float64()})
	}
	return matrix.FromCoords(rows, cols, blockSize, coords)
}

// DenseRandom generates a dense rows x cols matrix with values uniform in
// [0.1, 1.1) (positive, as GNMF factors require).
func DenseRandom(seed int64, rows, cols, blockSize int) *matrix.Grid {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, rows*cols)
	for i := range data {
		data[i] = 0.1 + rng.Float64()
	}
	return matrix.FromDense(rows, cols, blockSize, data)
}

// Ratings generates a Netflix-shaped ratings matrix: movies x users with the
// given sparsity and integer ratings 1..5.
func Ratings(seed int64, movies, users, blockSize int, sparsity float64) *matrix.Grid {
	rng := rand.New(rand.NewSource(seed))
	target := int(sparsity * float64(movies) * float64(users))
	coords := make([]matrix.Coord, 0, target)
	seen := make(map[int64]bool, target)
	for len(coords) < target {
		i, j := rng.Intn(movies), rng.Intn(users)
		key := int64(i)*int64(users) + int64(j)
		if seen[key] {
			continue
		}
		seen[key] = true
		coords = append(coords, matrix.Coord{Row: i, Col: j, Val: float64(1 + rng.Intn(5))})
	}
	return matrix.FromCoords(movies, users, blockSize, coords)
}

// PowerLawGraph generates a directed graph with a Pareto out-degree
// distribution (exponent alpha = 2.1) whose total edge count approximates
// nodes x avgDegree. The adjacency matrix has A[i][j] = 1 for an edge
// i -> j; no self loops, no duplicate edges.
func PowerLawGraph(seed int64, nodes int, avgDegree float64, blockSize int) *matrix.Grid {
	const alpha = 2.1
	rng := rand.New(rand.NewSource(seed))
	raw := make([]float64, nodes)
	var sum float64
	maxDeg := float64(nodes-1) / 4
	if maxDeg < 1 {
		maxDeg = 1
	}
	for i := range raw {
		// Pareto(1, alpha-1): 1/u^(1/(alpha-1)).
		d := math.Pow(1/(1-rng.Float64()), 1/(alpha-1))
		if d > maxDeg {
			d = maxDeg
		}
		raw[i] = d
		sum += d
	}
	scale := avgDegree * float64(nodes) / sum
	var coords []matrix.Coord
	targets := make(map[int]bool)
	for i := 0; i < nodes; i++ {
		deg := int(raw[i]*scale + 0.5)
		if deg < 1 {
			deg = 1
		}
		if deg > nodes-1 {
			deg = nodes - 1
		}
		clear(targets)
		for len(targets) < deg {
			j := rng.Intn(nodes)
			if j == i || targets[j] {
				continue
			}
			targets[j] = true
			coords = append(coords, matrix.Coord{Row: i, Col: j, Val: 1})
		}
	}
	return matrix.FromCoords(nodes, nodes, blockSize, coords)
}

// RowNormalize returns a copy of the adjacency matrix with every non-empty
// row scaled to sum to 1 — the link matrix of the PageRank program (Code 2).
func RowNormalize(g *matrix.Grid) *matrix.Grid {
	rows, cols := g.Rows(), g.Cols()
	sums := make([]float64, rows)
	var coords []matrix.Coord
	for bi := 0; bi < g.BlockRows(); bi++ {
		for bj := 0; bj < g.BlockCols(); bj++ {
			r0, c0 := bi*g.BlockSize(), bj*g.BlockSize()
			b := g.Block(bi, bj)
			switch t := b.(type) {
			case *matrix.CSCBlock:
				t.EachNZ(func(i, j int, v float64) {
					sums[r0+i] += v
					coords = append(coords, matrix.Coord{Row: r0 + i, Col: c0 + j, Val: v})
				})
			default:
				for i := 0; i < b.Rows(); i++ {
					for j := 0; j < b.Cols(); j++ {
						if v := b.At(i, j); v != 0 {
							sums[r0+i] += v
							coords = append(coords, matrix.Coord{Row: r0 + i, Col: c0 + j, Val: v})
						}
					}
				}
			}
		}
	}
	for k := range coords {
		if s := sums[coords[k].Row]; s != 0 {
			coords[k].Val /= s
		}
	}
	return matrix.FromCoords(rows, cols, g.BlockSize(), coords)
}
