package workload

import (
	"math"
	"testing"

	"dmac/internal/matrix"
)

func TestSparseUniformDeterministicAndSized(t *testing.T) {
	a := SparseUniform(7, 100, 200, 32, 0.05)
	b := SparseUniform(7, 100, 200, 32, 0.05)
	if !matrix.GridEqual(a, b, 0) {
		t.Error("same seed must reproduce the same matrix")
	}
	c := SparseUniform(8, 100, 200, 32, 0.05)
	if matrix.GridEqual(a, c, 0) {
		t.Error("different seeds should differ")
	}
	want := int(0.05 * 100 * 200)
	if a.NNZ() != want {
		t.Errorf("nnz = %d, want %d", a.NNZ(), want)
	}
	// Values bounded away from zero.
	g := a.ToDense()
	for _, v := range g {
		if v != 0 && (v < 0.5 || v >= 1.5) {
			t.Fatalf("value %v out of range", v)
		}
	}
}

func TestDenseRandomPositive(t *testing.T) {
	g := DenseRandom(3, 20, 10, 8)
	if g.NNZ() != 200 {
		t.Errorf("dense generator produced zeros: nnz=%d", g.NNZ())
	}
	for _, v := range g.ToDense() {
		if v < 0.1 || v >= 1.1 {
			t.Fatalf("value %v out of range", v)
		}
	}
}

func TestRatingsIntegerValues(t *testing.T) {
	g := Ratings(5, 50, 80, 16, 0.1)
	if g.NNZ() != 400 {
		t.Errorf("nnz = %d, want 400", g.NNZ())
	}
	for _, v := range g.ToDense() {
		if v == 0 {
			continue
		}
		if v != math.Trunc(v) || v < 1 || v > 5 {
			t.Fatalf("rating %v not in 1..5", v)
		}
	}
}

func TestPowerLawGraphProperties(t *testing.T) {
	const nodes = 500
	const avgDeg = 8.0
	g := PowerLawGraph(11, nodes, avgDeg, 64)
	if g.Rows() != nodes || g.Cols() != nodes {
		t.Fatalf("shape %dx%d", g.Rows(), g.Cols())
	}
	// Edge count approximates nodes*avgDegree (within 30%).
	edges := float64(g.NNZ())
	if edges < 0.7*nodes*avgDeg || edges > 1.3*nodes*avgDeg {
		t.Errorf("edges = %v, want ~%v", edges, nodes*avgDeg)
	}
	// No self loops; at least one out-edge per node; 0/1 values.
	dense := g.ToDense()
	for i := 0; i < nodes; i++ {
		if dense[i*nodes+i] != 0 {
			t.Fatalf("self loop at %d", i)
		}
		deg := 0
		for j := 0; j < nodes; j++ {
			v := dense[i*nodes+j]
			if v != 0 && v != 1 {
				t.Fatalf("edge weight %v", v)
			}
			if v == 1 {
				deg++
			}
		}
		if deg == 0 {
			t.Fatalf("node %d has no out-edges", i)
		}
	}
	// Determinism.
	if !matrix.GridEqual(g, PowerLawGraph(11, nodes, avgDeg, 64), 0) {
		t.Error("graph generation not deterministic")
	}
	// Degree skew: the max out-degree should clearly exceed the average.
	maxDeg := 0
	for i := 0; i < nodes; i++ {
		deg := 0
		for j := 0; j < nodes; j++ {
			if dense[i*nodes+j] != 0 {
				deg++
			}
		}
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	if float64(maxDeg) < 3*avgDeg {
		t.Errorf("max degree %d shows no power-law skew (avg %v)", maxDeg, avgDeg)
	}
}

func TestRowNormalize(t *testing.T) {
	g := PowerLawGraph(13, 120, 5, 32)
	link := RowNormalize(g)
	dense := link.ToDense()
	for i := 0; i < 120; i++ {
		sum := 0.0
		for j := 0; j < 120; j++ {
			sum += dense[i*120+j]
		}
		if math.Abs(sum-1) > 1e-9 && sum != 0 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	if link.NNZ() != g.NNZ() {
		t.Error("normalization changed the sparsity pattern")
	}
}

func TestGraphRegistry(t *testing.T) {
	if len(Graphs) != 4 {
		t.Fatalf("registry has %d graphs, want 4 (Table 3)", len(Graphs))
	}
	// Table 3 statistics.
	wantNodes := map[string]int64{
		"soc-pokec":   1632803,
		"cit-Patents": 3774768,
		"LiveJournal": 4847571,
		"Wikipedia":   25942254,
	}
	for name, nodes := range wantNodes {
		spec, ok := GraphByName(name)
		if !ok {
			t.Fatalf("missing graph %s", name)
		}
		if spec.PaperNodes != nodes {
			t.Errorf("%s nodes = %d, want %d", name, spec.PaperNodes, nodes)
		}
		if spec.AvgDegree() <= 1 {
			t.Errorf("%s average degree %v", name, spec.AvgDegree())
		}
	}
	if _, ok := GraphByName("nope"); ok {
		t.Error("unknown graph found")
	}
}

func TestGraphSpecGenerate(t *testing.T) {
	spec, _ := GraphByName("soc-pokec")
	gen := spec.Generate(4000, 64)
	if gen.Nodes != spec.ScaledNodes(4000) {
		t.Errorf("nodes = %d", gen.Nodes)
	}
	wantEdges := float64(gen.Nodes) * spec.AvgDegree()
	if e := float64(gen.Edges); e < 0.7*wantEdges || e > 1.3*wantEdges {
		t.Errorf("edges = %d, want ~%v (degree preserved)", gen.Edges, wantEdges)
	}
	if gen.String() == "" {
		t.Error("empty description")
	}
	// Minimum size floor.
	if n := spec.ScaledNodes(1 << 30); n != 64 {
		t.Errorf("scale floor = %d, want 64", n)
	}
}

func TestNetflixScaled(t *testing.T) {
	movies, users, g := Netflix.Scaled(100, 32)
	if movies != 177 || users != 4801 {
		t.Errorf("scaled dims %dx%d", movies, users)
	}
	if g.Rows() != movies || g.Cols() != users {
		t.Errorf("grid dims %dx%d", g.Rows(), g.Cols())
	}
	wantNNZ := int(Netflix.Sparsity * float64(movies) * float64(users))
	if g.NNZ() != wantNNZ {
		t.Errorf("nnz = %d, want %d", g.NNZ(), wantNNZ)
	}
	// Floors.
	m2, u2, _ := Netflix.Scaled(1<<30, 32)
	if m2 != 32 || u2 != 32 {
		t.Errorf("floor dims %dx%d", m2, u2)
	}
}
