package workload

import (
	"testing"

	"dmac/internal/matrix"
)

func TestDefaultRegistryBuildsAllWorkloads(t *testing.T) {
	r := DefaultRegistry()
	names := r.Names()
	if len(names) != 3 {
		t.Fatalf("DefaultRegistry has %d workloads, want 3", len(names))
	}
	for _, name := range names {
		job, err := r.Build(name, 8, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(job.Inputs) == 0 {
			t.Errorf("%s: no inputs", name)
		}
		if err := job.Program.Validate(); err != nil {
			t.Errorf("%s: invalid program: %v", name, err)
		}
		if job.Iterations < 1 {
			t.Errorf("%s: Iterations = %d", name, job.Iterations)
		}
		if len(job.Outputs) == 0 {
			t.Errorf("%s: no outputs", name)
		}
		if got := job.EstimatedBytes(8); got <= job.InputBytes() {
			t.Errorf("%s: EstimatedBytes = %d, want > input bytes %d", name, got, job.InputBytes())
		}
	}
	if _, err := r.Build("nope", 8, nil); err == nil {
		t.Error("unknown workload should error")
	}
}

// TestBuildDeterministic pins the cacheability contract: two builds with the
// same (blockSize, params) produce bit-identical inputs.
func TestBuildDeterministic(t *testing.T) {
	r := DefaultRegistry()
	params := Params{"seed": 7, "iters": 2}
	for _, name := range r.Names() {
		a, err := r.Build(name, 8, params)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Build(name, 8, params)
		if err != nil {
			t.Fatal(err)
		}
		for in, g := range a.Inputs {
			if !matrix.GridEqual(g, b.Inputs[in], 0) {
				t.Errorf("%s: rebuild changed input %s", name, in)
			}
		}
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Params{"n": 10000, "seed": 5}
	if got := p.Int("n", 48, 8, 4096); got != 4096 {
		t.Errorf("Int did not clamp: %d", got)
	}
	if got := p.Int("missing", 48, 8, 4096); got != 48 {
		t.Errorf("Int default: %d", got)
	}
	if got := p.Get("seed", 1); got != 5 {
		t.Errorf("Get: %g", got)
	}
	k1 := Params{"a": 1, "b": 2}.Key()
	k2 := Params{"b": 2, "a": 1}.Key()
	if k1 != k2 {
		t.Errorf("Key not canonical: %q vs %q", k1, k2)
	}
	if k1 == (Params{"a": 1, "b": 3}).Key() {
		t.Error("Key ignores values")
	}
}
