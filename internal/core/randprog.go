package core

import (
	"fmt"
	"math/rand"

	"dmac/internal/dep"
	"dmac/internal/expr"
	"dmac/internal/matrix"
)

// RandomProgram builds a random but valid matrix program over a small pool
// of dimension sizes (so operand shapes frequently match) and returns it,
// together with the cached schemes its session variables should start with.
// Used by the planner fuzz tests and the engine's differential property
// tests: the same rng state always yields the same program.
func RandomProgram(rng *rand.Rand) (*expr.Program, map[string][]dep.Scheme) {
	dims := []int{3, 4, 6, 8}
	dim := func() int { return dims[rng.Intn(len(dims))] }
	p := expr.NewProgram()
	vars := make(map[string][]dep.Scheme)
	var pool []expr.Ref

	nLeaves := 2 + rng.Intn(3)
	for i := 0; i < nLeaves; i++ {
		name := fmt.Sprintf("M%d", i)
		r := p.Var(name, dim(), dim(), 0.1+0.9*rng.Float64())
		pool = append(pool, r)
		switch rng.Intn(4) {
		case 0:
			vars[name] = []dep.Scheme{dep.Row}
		case 1:
			vars[name] = []dep.Scheme{dep.Col}
		case 2:
			vars[name] = []dep.Scheme{dep.Row, dep.Broadcast}
			// case 3: unbound -> hash-partitioned.
		}
	}

	pick := func() expr.Ref {
		r := pool[rng.Intn(len(pool))]
		if rng.Intn(3) == 0 {
			r = r.T()
		}
		return r
	}

	nOps := 4 + rng.Intn(10)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(5) {
		case 0, 1: // multiplication: find a compatible pair
			var a, b expr.Ref
			found := false
			for try := 0; try < 20 && !found; try++ {
				a, b = pick(), pick()
				found = a.Cols() == b.Rows()
			}
			if found {
				pool = append(pool, p.Mul(a, b))
			}
		case 2: // cell-wise (avoid division: random zeros make Inf)
			var a, b expr.Ref
			found := false
			for try := 0; try < 20 && !found; try++ {
				a, b = pick(), pick()
				found = a.Rows() == b.Rows() && a.Cols() == b.Cols()
			}
			if found {
				switch rng.Intn(3) {
				case 0:
					pool = append(pool, p.Add(a, b))
				case 1:
					pool = append(pool, p.Sub(a, b))
				default:
					pool = append(pool, p.CellMul(a, b))
				}
			}
		case 3: // scalar op
			ops := []matrix.ScalarOp{matrix.ScalarMul, matrix.ScalarAdd, matrix.ScalarSub, matrix.ScalarRSub}
			pool = append(pool, p.Scalar(ops[rng.Intn(len(ops))], pick(), rng.NormFloat64()))
		case 4: // aggregate
			p.Sum(fmt.Sprintf("s%d", i), pick())
		}
	}
	// Assign the last few values so the program has outputs.
	for i := 0; i < 2 && i < len(pool); i++ {
		p.Assign(fmt.Sprintf("out%d", i), pool[len(pool)-1-i])
	}
	return p, vars
}
