// Package core implements the paper's primary contribution: the
// dependency-oriented cost model (Section 4.1), the execution-plan
// generation algorithm with its two heuristics (Section 4.2), the worst-case
// matrix size estimation (Section 5.1), and the stage scheduler
// (Section 5.2). It also contains the SystemML-S baseline planner used for
// the controlled comparison of Section 6: the same strategy space and the
// same runtime, but no matrix-dependency analysis.
package core

import (
	"dmac/internal/expr"
	"dmac/internal/matrix"
)

// sparseThreshold is the worst-case sparsity above which the estimator
// assumes a matrix is materialized densely. With the CSC cost of ~12 bytes
// per non-zero and 8 bytes per dense cell, the representations break even at
// s = 2/3; the engine switches a bit earlier.
const sparseThreshold = 0.5

// SizeBytes is the worst-case size estimate |A| used by the cost model
// (Section 5.1): the byte footprint of a rows x cols matrix with the given
// worst-case sparsity, in whichever representation the engine would pick.
func SizeBytes(rows, cols int, sparsity float64) int64 {
	if sparsity < 0 {
		sparsity = 0
	}
	if sparsity > 1 {
		sparsity = 1
	}
	if sparsity < sparseThreshold {
		nnz := int64(sparsity * float64(rows) * float64(cols))
		return matrix.SparseMemBytes(cols, int(nnz))
	}
	return matrix.DenseMemBytes(rows, cols)
}

// NodeSize returns |A| for a program node's output using its worst-case
// shape and sparsity.
func NodeSize(n *expr.Node) int64 {
	return SizeBytes(n.Rows, n.Cols, n.Sparsity)
}
