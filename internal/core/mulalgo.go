package core

import "dmac/internal/matrix"

// Multiply-algorithm selection: the compute-side twin of the paper's
// communication-strategy choice. For every multiplication operator the
// planner prices the classical tiled kernel against the Strassen recursion
// and records the cheaper one on the plan operator; execution dispatches on
// that choice per block product. The two decisions are orthogonal — a CPMM
// shuffle and a Strassen block product compose freely.
//
// The model prices one block product, because that is the unit the executor
// runs: a grid multiply of an n x m by m x p matrix at block size b executes
// products of at most b-sized operands, so the effective shape is the
// dimensions clamped to the block size.
//
// Classical cost is pure compute: 2nmp flops, spread over the kernel workers
// (the parallel strips scale near-linearly). Strassen replaces one eighth of
// the multiplies per level with half-size add passes; the multiplies still
// scale with workers, but the add passes are memory-bound single-threaded
// sweeps, so their cost is priced in bytes against memory bandwidth and does
// NOT divide by the core count. More cores therefore shift the crossover
// upward — exactly the behavior the measured crossover table shows.

const (
	// mulFlopsPerSec is the per-core throughput of the tiled kernel used for
	// pricing (the measured BENCH_kernels.json figure, rounded).
	mulFlopsPerSec = 1.7e10
	// addBytesPerSec is the memory bandwidth an unblocked add/sub sweep
	// achieves, used to price Strassen's side passes.
	addBytesPerSec = 2.0e10
	// strassenMargin: Strassen must be priced at least this much cheaper
	// than classical to be picked. Near the crossover its modelled win is
	// smaller than run-to-run timing noise on the kernel benchmark, and
	// classical is the safe default.
	strassenMargin = 0.9
)

// ChooseMulAlgo picks the multiply algorithm for an n x m times m x p
// operator whose operands have the given worst-case sparsities, on an engine
// with the given block size and kernel worker count. Sparse operands always
// run classical: the sparse kernels have no Strassen form, and a worst-case
// sparse estimate means the dense flop count never materializes.
func ChooseMulAlgo(n, m, p int, aSparsity, bSparsity float64, blockSize, cores int) matrix.MulAlgo {
	if aSparsity < sparseThreshold || bSparsity < sparseThreshold {
		return matrix.MulClassical
	}
	bn, bm, bp := effDim(n, blockSize), effDim(m, blockSize), effDim(p, blockSize)
	if !matrix.StrassenOK(bn, bm, bp) {
		return matrix.MulClassical
	}
	if strassenSeconds(bn, bm, bp, cores) < strassenMargin*classicalSeconds(bn, bm, bp, cores) {
		return matrix.MulStrassen
	}
	return matrix.MulClassical
}

// effDim clamps a logical dimension to the block size: block products never
// see operands larger than one block.
func effDim(d, blockSize int) int {
	if blockSize > 0 && d > blockSize {
		return blockSize
	}
	return d
}

// classicalSeconds prices the tiled kernel: 2nmp flops over cores.
func classicalSeconds(n, m, p, cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	return 2 * float64(n) * float64(m) * float64(p) / (float64(cores) * mulFlopsPerSec)
}

// strassenSeconds prices the Strassen recursion: the reduced multiply flops
// scale with cores (they bottom out in the parallel tiled kernel), the add
// passes are charged at memory bandwidth without core scaling.
func strassenSeconds(n, m, p, cores int) float64 {
	if cores < 1 {
		cores = 1
	}
	mulFlops, addBytes := strassenWork(n, m, p)
	return mulFlops/(float64(cores)*mulFlopsPerSec) + addBytes/addBytesPerSec
}

// strassenWork returns the multiply flops and add-pass bytes of the
// recursion, mirroring the schedule in matrix/strassen.go: per level, seven
// half-size products, five operand adds on each side, and twelve quadrant
// accumulations, each pass touching three values per element (two reads, one
// write).
func strassenWork(n, m, p int) (mulFlops, addBytes float64) {
	if !matrix.StrassenOK(n, m, p) {
		return 2 * float64(n) * float64(m) * float64(p), 0
	}
	n2, m2, p2 := n/2, m/2, p/2
	subMul, subAdd := strassenWork(n2, m2, p2)
	mulFlops = 7 * subMul
	addElems := 5*float64(n2)*float64(m2) + 5*float64(m2)*float64(p2) + 12*float64(n2)*float64(p2)
	addBytes = 7*subAdd + 24*addElems
	return mulFlops, addBytes
}
