package core

import (
	"strings"
	"testing"

	"dmac/internal/dep"
	"dmac/internal/expr"
	"dmac/internal/matrix"
)

// Netflix-shaped GNMF dimensions (V = movies x users, Section 6.2).
const (
	gnmfRows = 17770  // movies
	gnmfCols = 480189 // users
	gnmfK    = 200    // factor size
)

// gnmfHUpdate builds the H-update of Code 1 with session variables V(c),
// W(r), H(c): H = H * (Wᵀ V) / (Wᵀ W %*% H).
func gnmfHUpdate() *expr.Program {
	p := expr.NewProgram()
	V := p.Var("V", gnmfRows, gnmfCols, 0.01)
	W := p.Var("W", gnmfRows, gnmfK, 1)
	H := p.Var("H", gnmfK, gnmfCols, 1)
	WtV := p.Mul(W.T(), V)
	WtW := p.Mul(W.T(), W)
	WtWH := p.Mul(WtW, H)
	num := p.CellMul(H, WtV)
	p.Assign("H", p.CellDiv(num, WtWH))
	return p
}

func gnmfConfig() Config {
	return Config{
		Workers: 4,
		Vars: map[string][]dep.Scheme{
			"V": {dep.Col},
			"W": {dep.Row},
			"H": {dep.Col},
		},
	}
}

func TestSizeBytes(t *testing.T) {
	// Sparse branch below the threshold.
	if got, want := SizeBytes(1000, 1000, 0.01), matrix.SparseMemBytes(1000, 10000); got != want {
		t.Errorf("sparse SizeBytes = %d, want %d", got, want)
	}
	// Dense branch at or above the threshold.
	if got, want := SizeBytes(100, 100, 1), matrix.DenseMemBytes(100, 100); got != want {
		t.Errorf("dense SizeBytes = %d, want %d", got, want)
	}
	// Clamping.
	if SizeBytes(10, 10, -1) != SizeBytes(10, 10, 0) {
		t.Error("negative sparsity not clamped")
	}
	if SizeBytes(10, 10, 2) != SizeBytes(10, 10, 1) {
		t.Error("sparsity > 1 not clamped")
	}
}

func TestGenerateGNMFPlanIsValidAndCheap(t *testing.T) {
	prog := gnmfHUpdate()
	plan, err := Generate(prog, gnmfConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Check(); err != nil {
		t.Fatalf("plan check: %v\n%s", err, plan)
	}
	base, err := GenerateSystemMLS(prog, gnmfConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Check(); err != nil {
		t.Fatalf("baseline check: %v\n%s", err, base)
	}
	dm, sm := plan.TotalCommBytes(), base.TotalCommBytes()
	if dm >= sm {
		t.Errorf("DMac comm %d >= SystemML-S comm %d", dm, sm)
	}
	// The dependency-aware plan should save at least 5x on this workload
	// (the paper reports ~27x over a full GNMF iteration).
	if sm < 5*dm {
		t.Errorf("expected >5x communication gap, got DMac=%d SystemML-S=%d", dm, sm)
	}
	// The only heavy communication DMac needs is broadcasting Wᵀ (N x |W|)
	// and WᵀW; everything else rides on dependencies.
	wBytes := SizeBytes(gnmfRows, gnmfK, 1)
	wtwBytes := SizeBytes(gnmfK, gnmfK, 1)
	maxExpected := int64(4)*(wBytes+wtwBytes) + 1024
	if dm > maxExpected {
		t.Errorf("DMac comm %d exceeds expected bound %d\n%s", dm, maxExpected, plan)
	}
}

func TestGNMFCellOpsRideOnColumnScheme(t *testing.T) {
	// The paper (Section 6.2): H * (WᵀV) / (WᵀWH) runs without any
	// communication in DMac because all three operands end up in Column
	// scheme. Verify the cell ops have zero-cost Reference inputs.
	plan, err := Generate(gnmfHUpdate(), gnmfConfig())
	if err != nil {
		t.Fatal(err)
	}
	cellOps := 0
	for _, op := range plan.Ops {
		if op.Kind == OpCompute && op.Node.Kind == expr.KindCell {
			cellOps++
			if op.CommBytes != 0 {
				t.Errorf("cell op %s communicates %d bytes", op.Node.Label(), op.CommBytes)
			}
			if op.Strategy != CellCol {
				t.Errorf("cell op %s uses %s, want cell(c)", op.Node.Label(), op.Strategy)
			}
			for j, d := range op.InDeps {
				if d != dep.Reference {
					t.Errorf("cell op %s input %d has dependency %s, want reference", op.Node.Label(), j, d)
				}
			}
		}
	}
	if cellOps != 2 {
		t.Errorf("expected 2 cell ops, found %d", cellOps)
	}
}

func TestGNMFFirstMulUsesRMM1(t *testing.T) {
	// Wᵀ %*% V: |WᵀV| is larger than |Wᵀ| on the Netflix shape, so the
	// minimum-communication strategy broadcasts Wᵀ and multiplies against
	// V(c) (Section 4.2.4).
	plan, err := Generate(gnmfHUpdate(), gnmfConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range plan.Ops {
		if op.Kind == OpCompute && op.Node.Kind == expr.KindMul {
			if op.Strategy != RMM1 {
				t.Errorf("first mul uses %s, want RMM1\n%s", op.Strategy, plan)
			}
			break
		}
	}
}

func TestStagesAreUninterleaved(t *testing.T) {
	plan, err := Generate(gnmfHUpdate(), gnmfConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stages < 2 {
		t.Errorf("GNMF H-update should need >= 2 stages, got %d", plan.Stages)
	}
	// Stage indices never decrease along any value chain, and local ops
	// never cross a boundary (enforced by Check, re-asserted here).
	if err := plan.Check(); err != nil {
		t.Fatal(err)
	}
	// Stage numbering is contiguous from 1.
	seen := make(map[int]bool)
	for _, op := range plan.Ops {
		seen[op.Stage] = true
	}
	for s := 1; s <= plan.Stages; s++ {
		if !seen[s] {
			t.Errorf("stage %d missing from plan", s)
		}
	}
}

func TestSystemMLSAlwaysRepartitions(t *testing.T) {
	plan, err := GenerateSystemMLS(gnmfHUpdate(), gnmfConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every compute input edge must be satisfied through a communication
	// dependency: the baseline ignores cached schemes.
	for _, op := range plan.Ops {
		if op.Kind != OpCompute {
			continue
		}
		for j, d := range op.InDeps {
			if !d.NeedsCommunication() {
				t.Errorf("baseline op %s input %d has non-comm dependency %s", op.Node.Label(), j, d)
			}
		}
	}
}

func TestCPMMFlexibleOutputReassignment(t *testing.T) {
	// Build a program where CPMM wins for A %*% B (both operands cached in
	// CPMM-friendly schemes, output small relative to broadcasts) and the
	// consumer wants the result row-partitioned: the Re-assignment
	// heuristic must pin the CPMM output to Row so the consumer reads it
	// for free.
	p := expr.NewProgram()
	a := p.Var("A", 100000, 100000, 0.001) // large sparse
	b := p.Var("B", 100000, 200, 1)
	ab := p.Mul(a, b) // 100000 x 200: CPMM aggregation is cheap
	c := p.Var("C", 100000, 200, 1)
	p.Assign("S", p.Add(ab, c)) // consumer: cell op with C(r) cached
	cfg := Config{
		Workers: 4,
		Vars: map[string][]dep.Scheme{
			"A": {dep.Col},
			"B": {dep.Row},
			"C": {dep.Row},
		},
	}
	plan, err := Generate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Check(); err != nil {
		t.Fatalf("%v\n%s", err, plan)
	}
	var mulOp, cellOp *Op
	for _, op := range plan.Ops {
		if op.Kind != OpCompute {
			continue
		}
		switch op.Node.Kind {
		case expr.KindMul:
			mulOp = op
		case expr.KindCell:
			cellOp = op
		}
	}
	if mulOp == nil || cellOp == nil {
		t.Fatal("missing ops in plan")
	}
	if mulOp.Strategy != CPMM {
		t.Fatalf("mul uses %s, want CPMM\n%s", mulOp.Strategy, plan)
	}
	if got := plan.Value(mulOp.Output).Scheme; got != dep.Row {
		t.Errorf("CPMM output pinned to %s, want r (Re-assignment)\n%s", got, plan)
	}
	if cellOp.Strategy != CellRow {
		t.Errorf("consumer uses %s, want cell(r)", cellOp.Strategy)
	}
	for j, d := range cellOp.InDeps {
		if d != dep.Reference {
			t.Errorf("consumer input %d dependency %s, want reference", j, d)
		}
	}
}

func TestPullUpBroadcastHeuristic(t *testing.T) {
	// op_i reads A row-partitioned (pays a partition from hash), a later
	// op_j broadcasts A. Pull-Up Broadcast must rewrite the partition into
	// broadcast + extract, paying N|A| once instead of |A| + N|A|.
	p := expr.NewProgram()
	a := p.Load("A", 5000, 5000, 1) // hash-partitioned source
	b := p.Var("B", 5000, 5000, 1)
	// Force a row read of A: cell op with row-cached B.
	s1 := p.Add(a, b)
	// Force a broadcast read of A: multiplication with a huge dense right
	// operand cached in Col scheme, so RMM1 (A broadcast) wins over
	// broadcasting G (RMM2) or shuffling the huge product (CPMM).
	big := p.Var("G", 5000, 2000000, 1)
	s2 := p.Mul(a, big)
	p.Assign("S1", s1)
	p.Assign("S2", s2)
	cfg := Config{
		Workers: 4,
		Vars: map[string][]dep.Scheme{
			"B": {dep.Row},
			"G": {dep.Col},
		},
	}
	plan, err := Generate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Check(); err != nil {
		t.Fatalf("%v\n%s", err, plan)
	}
	// Count communication on matrix A's values: there must be exactly one
	// broadcast of A and no partition of A.
	aID := a.Node.ID
	var partitions, broadcasts, extracts int
	for _, op := range plan.Ops {
		if op.Output < 0 || plan.Value(op.Output).Matrix != aID {
			continue
		}
		switch op.Kind {
		case OpPartition:
			partitions++
		case OpBroadcast:
			broadcasts++
		case OpExtract:
			extracts++
		}
	}
	if partitions != 0 || broadcasts != 1 || extracts < 1 {
		t.Errorf("pull-up broadcast not applied: partitions=%d broadcasts=%d extracts=%d\n%s",
			partitions, broadcasts, extracts, plan)
	}
	aBytes := SizeBytes(5000, 5000, 1)
	// Total comm on A should be N|A| (one broadcast), not N|A| + |A|.
	var aComm int64
	for _, op := range plan.Ops {
		if op.Output >= 0 && plan.Value(op.Output).Matrix == aID {
			aComm += op.CommBytes
		}
	}
	if aComm != 4*aBytes {
		t.Errorf("comm on A = %d, want %d", aComm, 4*aBytes)
	}
}

func TestGenerateRejectsBadInputs(t *testing.T) {
	p := expr.NewProgram()
	a := p.Load("A", 2, 2, 1)
	p.Assign("A2", a)
	if _, err := Generate(p, Config{Workers: 0}); err == nil {
		t.Error("expected error for 0 workers")
	}
	// Corrupt program fails validation.
	bad := expr.NewProgram()
	x := bad.Load("X", 2, 2, 1)
	x.Node.ID = 7
	if _, err := Generate(bad, Config{Workers: 2}); err == nil {
		t.Error("expected validation error")
	}
}

func TestVarWithMultipleCachedSchemes(t *testing.T) {
	p := expr.NewProgram()
	v := p.Var("V", 1000, 1000, 0.1)
	w := p.Var("W", 1000, 10, 1)
	p.Assign("R", p.Mul(v.T(), w))
	cfg := Config{
		Workers: 4,
		Vars:    map[string][]dep.Scheme{"V": {dep.Row, dep.Col}, "W": {dep.Row}},
	}
	plan, err := Generate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Check(); err != nil {
		t.Fatalf("%v\n%s", err, plan)
	}
	// Both cached instances must appear as OpVar leaves.
	vars := 0
	for _, op := range plan.Ops {
		if op.Kind == OpVar && op.Node.Name == "V" {
			vars++
		}
	}
	if vars != 2 {
		t.Errorf("V leaves = %d, want 2", vars)
	}
}

func TestAggregatePlan(t *testing.T) {
	p := expr.NewProgram()
	r := p.Var("r", 100000, 1, 1)
	rr := p.CellMul(r, r)
	p.Sum("norm_r2", rr)
	cfg := Config{Workers: 4, Vars: map[string][]dep.Scheme{"r": {dep.Row}}}
	plan, err := Generate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Check(); err != nil {
		t.Fatalf("%v\n%s", err, plan)
	}
	found := false
	for _, op := range plan.Ops {
		if op.ScalarName == "norm_r2" {
			found = true
			if op.Output != -1 {
				t.Error("aggregate must not produce a matrix value")
			}
			if op.CommBytes != 32 {
				t.Errorf("aggregate comm = %d, want 32 (8 bytes x 4 workers)", op.CommBytes)
			}
		}
	}
	if !found {
		t.Error("scalar output not planned")
	}
}

func TestPlanStringAndDOT(t *testing.T) {
	plan, err := Generate(gnmfHUpdate(), gnmfConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	for _, want := range []string{"plan:", "RMM1", "var(V)", "stages"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
	d := plan.DOT()
	for _, want := range []string{"digraph plan", "->", "style=dashed"} {
		if !strings.Contains(d, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestStrategyAndOpKindStrings(t *testing.T) {
	for _, s := range []Strategy{RMM1, RMM2, CPMM, CellRow, CellCol, CellBcast, AggRow, AggCol, AggBcast, StrategyNone} {
		if s.String() == "" {
			t.Errorf("strategy %d has empty name", s)
		}
	}
	for _, k := range []OpKind{OpLoad, OpVar, OpCompute, OpPartition, OpBroadcast, OpTranspose, OpExtract, OpReference} {
		if k.String() == "" || strings.HasPrefix(k.String(), "OpKind(") {
			t.Errorf("op kind %d missing name", k)
		}
	}
	if !OpPartition.IsComm() || !OpBroadcast.IsComm() || OpTranspose.IsComm() || OpExtract.IsComm() {
		t.Error("IsComm wrong")
	}
}

func TestBaselineTransposedReadPaysExtra(t *testing.T) {
	p := expr.NewProgram()
	v := p.Var("V", 10000, 10000, 1)
	w := p.Var("W", 10000, 10, 1)
	p.Assign("R", p.Mul(v.T(), w))
	cfg := Config{Workers: 4, Vars: map[string][]dep.Scheme{"V": {dep.Row}, "W": {dep.Row}}}
	base, err := GenerateSystemMLS(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dmac, err := Generate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalCommBytes() <= dmac.TotalCommBytes() {
		t.Errorf("baseline %d should exceed DMac %d (transpose + repartition)",
			base.TotalCommBytes(), dmac.TotalCommBytes())
	}
}
