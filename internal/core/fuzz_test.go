package core

import (
	"math/rand"
	"testing"
)

func TestFuzzPlansValidAndCheaperThanBaseline(t *testing.T) {
	// Aggregate comparison of the full planner against its ablations. The
	// heuristics are greedy (strategies are chosen in program order,
	// Section 4.2), so on individual adversarial programs an ablated
	// planner can come out ahead; the invariant is that heuristics help in
	// aggregate, while DMac <= baseline holds per program.
	var fullTotal, ablatedBest int64
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog, vars := RandomProgram(rng)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid program: %v", seed, err)
		}
		cfg := Config{Workers: 1 + rng.Intn(8), Vars: vars}
		plan, err := Generate(prog, cfg)
		if err != nil {
			t.Fatalf("seed %d: Generate: %v", seed, err)
		}
		if err := plan.Check(); err != nil {
			t.Fatalf("seed %d: invalid DMac plan: %v\n%s", seed, err, plan)
		}
		base, err := GenerateSystemMLS(prog, cfg)
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		if err := base.Check(); err != nil {
			t.Fatalf("seed %d: invalid baseline plan: %v", seed, err)
		}
		// The dependency-aware plan never communicates more than the
		// dependency-oblivious one.
		if plan.TotalCommBytes() > base.TotalCommBytes() {
			t.Errorf("seed %d: DMac comm %d > baseline %d\nDMac:\n%s\nbaseline:\n%s",
				seed, plan.TotalCommBytes(), base.TotalCommBytes(), plan, base)
		}
		// Ablations also produce valid plans.
		seedBest := int64(-1)
		for _, abl := range []Config{
			{Workers: cfg.Workers, Vars: vars, DisablePullUp: true},
			{Workers: cfg.Workers, Vars: vars, DisableReassign: true},
			{Workers: cfg.Workers, Vars: vars, DisableCPMM: true},
		} {
			ap, err := Generate(prog, abl)
			if err != nil {
				t.Fatalf("seed %d: ablation Generate: %v", seed, err)
			}
			if err := ap.Check(); err != nil {
				t.Fatalf("seed %d: invalid ablated plan: %v", seed, err)
			}
			if c := ap.TotalCommBytes(); seedBest < 0 || c < seedBest {
				seedBest = c
			}
		}
		fullTotal += plan.TotalCommBytes()
		ablatedBest += seedBest
	}
	// Even against the per-seed best ablation, the full planner should at
	// worst be close in aggregate; against any single fixed ablation it
	// should win outright. Allow 10% slack on the adversarial best-of-3.
	if float64(fullTotal) > 1.1*float64(ablatedBest) {
		t.Errorf("full planner aggregate %d much worse than best-ablation aggregate %d", fullTotal, ablatedBest)
	}
}
