package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dmac/internal/dep"
	"dmac/internal/expr"
	"dmac/internal/matrix"
)

// randomProgram builds a random but valid matrix program over a small pool
// of dimension sizes (so operand shapes frequently match) and returns it.
// Leaves are session variables with random cached schemes recorded in vars.
func randomProgram(rng *rand.Rand) (*expr.Program, map[string][]dep.Scheme) {
	dims := []int{3, 4, 6, 8}
	dim := func() int { return dims[rng.Intn(len(dims))] }
	p := expr.NewProgram()
	vars := make(map[string][]dep.Scheme)
	var pool []expr.Ref

	nLeaves := 2 + rng.Intn(3)
	for i := 0; i < nLeaves; i++ {
		name := fmt.Sprintf("M%d", i)
		r := p.Var(name, dim(), dim(), 0.1+0.9*rng.Float64())
		pool = append(pool, r)
		switch rng.Intn(4) {
		case 0:
			vars[name] = []dep.Scheme{dep.Row}
		case 1:
			vars[name] = []dep.Scheme{dep.Col}
		case 2:
			vars[name] = []dep.Scheme{dep.Row, dep.Broadcast}
			// case 3: unbound -> hash-partitioned.
		}
	}

	pick := func() expr.Ref {
		r := pool[rng.Intn(len(pool))]
		if rng.Intn(3) == 0 {
			r = r.T()
		}
		return r
	}

	nOps := 4 + rng.Intn(10)
	for i := 0; i < nOps; i++ {
		switch rng.Intn(5) {
		case 0, 1: // multiplication: find a compatible pair
			var a, b expr.Ref
			found := false
			for try := 0; try < 20 && !found; try++ {
				a, b = pick(), pick()
				found = a.Cols() == b.Rows()
			}
			if found {
				pool = append(pool, p.Mul(a, b))
			}
		case 2: // cell-wise (avoid division: random zeros make Inf)
			var a, b expr.Ref
			found := false
			for try := 0; try < 20 && !found; try++ {
				a, b = pick(), pick()
				found = a.Rows() == b.Rows() && a.Cols() == b.Cols()
			}
			if found {
				switch rng.Intn(3) {
				case 0:
					pool = append(pool, p.Add(a, b))
				case 1:
					pool = append(pool, p.Sub(a, b))
				default:
					pool = append(pool, p.CellMul(a, b))
				}
			}
		case 3: // scalar op
			ops := []matrix.ScalarOp{matrix.ScalarMul, matrix.ScalarAdd, matrix.ScalarSub, matrix.ScalarRSub}
			pool = append(pool, p.Scalar(ops[rng.Intn(len(ops))], pick(), rng.NormFloat64()))
		case 4: // aggregate
			p.Sum(fmt.Sprintf("s%d", i), pick())
		}
	}
	// Assign the last few values so the program has outputs.
	for i := 0; i < 2 && i < len(pool); i++ {
		p.Assign(fmt.Sprintf("out%d", i), pool[len(pool)-1-i])
	}
	return p, vars
}

func TestFuzzPlansValidAndCheaperThanBaseline(t *testing.T) {
	// Aggregate comparison of the full planner against its ablations. The
	// heuristics are greedy (strategies are chosen in program order,
	// Section 4.2), so on individual adversarial programs an ablated
	// planner can come out ahead; the invariant is that heuristics help in
	// aggregate, while DMac <= baseline holds per program.
	var fullTotal, ablatedBest int64
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prog, vars := randomProgram(rng)
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid program: %v", seed, err)
		}
		cfg := Config{Workers: 1 + rng.Intn(8), Vars: vars}
		plan, err := Generate(prog, cfg)
		if err != nil {
			t.Fatalf("seed %d: Generate: %v", seed, err)
		}
		if err := plan.Check(); err != nil {
			t.Fatalf("seed %d: invalid DMac plan: %v\n%s", seed, err, plan)
		}
		base, err := GenerateSystemMLS(prog, cfg)
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		if err := base.Check(); err != nil {
			t.Fatalf("seed %d: invalid baseline plan: %v", seed, err)
		}
		// The dependency-aware plan never communicates more than the
		// dependency-oblivious one.
		if plan.TotalCommBytes() > base.TotalCommBytes() {
			t.Errorf("seed %d: DMac comm %d > baseline %d\nDMac:\n%s\nbaseline:\n%s",
				seed, plan.TotalCommBytes(), base.TotalCommBytes(), plan, base)
		}
		// Ablations also produce valid plans.
		seedBest := int64(-1)
		for _, abl := range []Config{
			{Workers: cfg.Workers, Vars: vars, DisablePullUp: true},
			{Workers: cfg.Workers, Vars: vars, DisableReassign: true},
			{Workers: cfg.Workers, Vars: vars, DisableCPMM: true},
		} {
			ap, err := Generate(prog, abl)
			if err != nil {
				t.Fatalf("seed %d: ablation Generate: %v", seed, err)
			}
			if err := ap.Check(); err != nil {
				t.Fatalf("seed %d: invalid ablated plan: %v", seed, err)
			}
			if c := ap.TotalCommBytes(); seedBest < 0 || c < seedBest {
				seedBest = c
			}
		}
		fullTotal += plan.TotalCommBytes()
		ablatedBest += seedBest
	}
	// Even against the per-seed best ablation, the full planner should at
	// worst be close in aggregate; against any single fixed ablation it
	// should win outright. Allow 10% slack on the adversarial best-of-3.
	if float64(fullTotal) > 1.1*float64(ablatedBest) {
		t.Errorf("full planner aggregate %d much worse than best-ablation aggregate %d", fullTotal, ablatedBest)
	}
}
