package core

import (
	"testing"

	"dmac/internal/dep"
	"dmac/internal/expr"
	"dmac/internal/matrix"
)

// gnmfFullIteration builds the complete GNMF iteration of Code 1 at the
// paper's Netflix shape (V = 17770 x 480189 movies x users, k = 200) — the
// program behind Figure 3.
func gnmfFullIteration() *expr.Program {
	const (
		rows = 17770
		cols = 480189
		k    = 200
	)
	p := expr.NewProgram()
	V := p.Var("V", rows, cols, 0.01)
	W := p.Var("W", rows, k, 1)
	H := p.Var("H", k, cols, 1)
	WtV := p.Mul(W.T(), V)
	WtW := p.Mul(W.T(), W)
	WtWH := p.Mul(WtW, H)
	newH := p.CellDiv(p.CellMul(H, WtV), WtWH)
	VHt := p.Mul(V, newH.T())
	HHt := p.Mul(newH, newH.T())
	WHHt := p.Mul(W, HHt)
	newW := p.CellDiv(p.CellMul(W, VHt), WHHt)
	p.Assign("H", newH)
	p.Assign("W", newW)
	return p
}

// TestGoldenGNMFPlanFigure3 pins the plan the generator produces for the
// Figure 3 scenario: 5 un-interleaved stages, the Wᵀ broadcast shared by
// both early multiplications, the H-update cell operators riding Column
// schemes for free, and CPMM for the W-update multiplications. Total
// estimated communication is pinned exactly; a change to this value is a
// planner behaviour change and must be deliberate.
func TestGoldenGNMFPlanFigure3(t *testing.T) {
	cfg := Config{
		Workers: 4,
		Vars: map[string][]dep.Scheme{
			"V": {dep.Col},
			"W": {dep.Row},
			"H": {dep.Col},
		},
	}
	plan, err := Generate(gnmfFullIteration(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Check(); err != nil {
		t.Fatalf("%v\n%s", err, plan)
	}
	if plan.Stages != 5 {
		t.Errorf("stages = %d, want 5 (Figure 3)\n%s", plan.Stages, plan)
	}
	// Strategy census.
	counts := map[Strategy]int{}
	broadcasts, partitions := 0, 0
	for _, op := range plan.Ops {
		switch op.Kind {
		case OpCompute:
			counts[op.Strategy]++
		case OpBroadcast:
			broadcasts++
		case OpPartition:
			partitions++
		}
	}
	if counts[RMM1] != 4 || counts[CPMM] != 2 {
		t.Errorf("multiplication strategies = %v, want 4 RMM1 + 2 CPMM\n%s", counts, plan)
	}
	if counts[CellRow]+counts[CellCol] != 4 {
		t.Errorf("cell strategies = %v, want 4 aligned cell ops", counts)
	}
	// Exactly two explicit broadcasts (Wᵀ and WᵀW) and one partition (the
	// final WHHᵀ alignment) — everything else is dependency reuse.
	if broadcasts != 2 || partitions != 1 {
		t.Errorf("broadcasts = %d, partitions = %d, want 2 and 1\n%s", broadcasts, partitions, plan)
	}
	// Pinned total: N|Wᵀ| + N|WᵀW| + CPMM aggregations + final partition.
	const want = 258448000
	if got := plan.TotalCommBytes(); got != want {
		t.Errorf("total comm = %d, want %d (golden)\n%s", got, want, plan)
	}
	// The whole H update communicates only through the two broadcasts:
	// every cell op on the H path has Reference inputs.
	for _, op := range plan.Ops {
		if op.Kind == OpCompute && op.Node.Kind == expr.KindCell && op.Strategy == CellCol {
			for j, d := range op.InDeps {
				if d != dep.Reference {
					t.Errorf("H-update cell input %d has dependency %s, want reference", j, d)
				}
			}
		}
	}
}

// TestGoldenGNMFBaselineWorse pins the baseline's behaviour on the same
// program: every operator repartitions, so its estimated traffic exceeds
// DMac's by a large factor.
func TestGoldenGNMFBaselineWorse(t *testing.T) {
	cfg := Config{
		Workers: 4,
		Vars: map[string][]dep.Scheme{
			"V": {dep.Col}, "W": {dep.Row}, "H": {dep.Col},
		},
	}
	prog := gnmfFullIteration()
	dm, err := Generate(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := GenerateSystemMLS(prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(base.TotalCommBytes()) / float64(dm.TotalCommBytes())
	// The paper reports ~27x over a full run; the per-iteration estimate at
	// the paper's shape lands in the same regime.
	if ratio < 8 {
		t.Errorf("baseline/DMac comm ratio = %.1f, want >= 8", ratio)
	}
}

// TestGoldenEstimatorAtPaperShape pins the worst-case size estimates that
// drive the Figure 3 decisions.
func TestGoldenEstimatorAtPaperShape(t *testing.T) {
	// |Wᵀ| (dense 200 x 17770) is far smaller than |WᵀV| (dense 200 x
	// 480189): that inequality is what makes RMM1 optimal for the first
	// multiplication (Section 4.2.4).
	w := SizeBytes(17770, 200, 1)
	wtv := SizeBytes(200, 480189, 1)
	if w >= wtv {
		t.Errorf("|W| = %d should be below |WᵀV| = %d", w, wtv)
	}
	if w != matrix.DenseMemBytes(17770, 200) {
		t.Errorf("dense estimate mismatch: %d", w)
	}
}
